// Section 5 benchmarks:
//   * distance scaling of RecursiveHTHC across k (Prop. 5.12 / 5.13 families);
//   * Lemma 5.16: no window of a backbone is crowded with way-points;
//   * Lemma 5.18: consecutive light way-points sit within 2n^{1/k};
//   * the deep-nest family: deterministic volume vs randomized waypoint
//     volume (the D-VOL / R-VOL separation for k >= 3).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "labels/generators.hpp"
#include "labels/hierarchy.hpp"
#include "lcl/adversary/hthc_adversary.hpp"
#include "lcl/algorithms/hthc_algos.hpp"
#include "lcl/algorithms/local_view.hpp"

namespace volcal::bench {
namespace {

using Src = InstanceSource<ColoredTreeLabeling>;

void distance_table(JsonReport& report) {
  auto ph = report.phase("distance");
  print_header("§5 — RecursiveHTHC distance on balanced instances (Θ(n^{1/k}))");
  stats::Table table({"k", "n", "backbone", "max distance", "window 2·n^{1/k}"});
  for (int k : {1, 2, 3, 4}) {
    Curve curve;
    const std::vector<NodeIndex> bs = k == 1   ? std::vector<NodeIndex>{512, 2048, 8192}
                                      : k == 2 ? std::vector<NodeIndex>{64, 192, 512}
                                      : k == 3 ? std::vector<NodeIndex>{16, 36, 72}
                                               : std::vector<NodeIndex>{8, 14, 24};
    for (NodeIndex b : bs) {
      auto inst = make_hierarchical_instance(k, b, 3);
      auto cfg = HthcConfig::make(k, inst.node_count(), false, nullptr);
      auto starts = sampled_starts(inst.node_count(), 16);
      auto cost = measure(inst.graph, inst.ids, starts, [&](Execution& exec) {
        Src src(inst, exec);
        HthcSolver<Src> solver(src, cfg);
        solver.solve();
      });
      curve.add(static_cast<double>(inst.node_count()),
                static_cast<double>(cost.max_distance));
      table.add_row({fmt_int(k), fmt_int(inst.node_count()), fmt_int(b),
                     fmt_int(cost.max_distance), fmt_int(cfg.window)});
    }
    std::printf("k=%d fitted: %s\n", k, curve.fitted().c_str());
    report.add("Hierarchical-THC(" + std::to_string(k) + ") / D-DIST", curve,
               "Θ(n^{1/" + std::to_string(k) + "})");
  }
  table.print();
}

void waypoint_lemmas_table(JsonReport& report) {
  auto ph = report.phase("waypoint-lemmas");
  print_header("§5 — way-point statistics (Lemmas 5.16 and 5.18)");
  stats::Table table({"n", "p = c·log n / n^{1/k}", "max way-points per window",
                      "8·c·log2 n bound", "max light-waypoint gap", "2·n^{1/k} bound"});
  const int k = 2;
  Curve crowd_c, gap_c;
  for (NodeIndex b : {256, 512, 1024}) {
    // Deep top over light floors: the regime Lemma 5.18 addresses.
    auto inst = make_hierarchical_instance_lens({6, b}, 5);
    const auto n = inst.node_count();
    RandomTape tape(inst.ids, 23);
    auto cfg = HthcConfig::make(k, n, true, &tape);
    const double p = cfg.waypoint_p(n);
    Hierarchy h(inst.graph, inst.labels.tree, k + 1);
    // Way-point indicator uses each node's own tape word at the reserved
    // offset, exactly as the solver does.
    auto is_waypoint = [&](NodeIndex v) {
      return tape.unit(v, v, cfg.waypoint_bit_base) < p;
    };
    std::int64_t max_per_window = 0, max_gap = 0;
    for (const auto& bb : h.backbones()) {
      if (bb.level != 2) continue;
      const auto len = static_cast<std::int64_t>(bb.nodes.size());
      std::vector<std::int64_t> prefix(len + 1, 0);
      std::int64_t last_light = -1;
      for (std::int64_t i = 0; i < len; ++i) {
        const bool wp = is_waypoint(bb.nodes[i]);
        prefix[i + 1] = prefix[i] + (wp ? 1 : 0);
        if (wp) {  // all floors are light here
          max_gap = std::max(max_gap, i - last_light);
          last_light = i;
        }
      }
      max_gap = std::max(max_gap, len - 1 - last_light);
      const std::int64_t window = std::min(len, cfg.window);
      for (std::int64_t i = 0; i + window <= len; ++i) {
        max_per_window = std::max(max_per_window, prefix[i + window] - prefix[i]);
      }
    }
    const double crowd_bound = 8 * cfg.waypoint_c * std::log2(static_cast<double>(n));
    char pbuf[32], cbuf[32];
    std::snprintf(pbuf, sizeof pbuf, "%.3f", p);
    std::snprintf(cbuf, sizeof cbuf, "%.0f", crowd_bound);
    table.add_row({fmt_int(n), pbuf, fmt_int(max_per_window), cbuf, fmt_int(max_gap),
                   fmt_int(cfg.window)});
    crowd_c.add(static_cast<double>(n), static_cast<double>(max_per_window));
    gap_c.add(static_cast<double>(n), static_cast<double>(max_gap));
  }
  table.print();
  report.add("Waypoints / max per window", crowd_c, "O(log n) (Lem. 5.16)");
  report.add("Waypoints / max light gap", gap_c, "<= 2*n^{1/k} (Lem. 5.18)");
}

void deep_nest_table(JsonReport& report) {
  auto ph = report.phase("deep-nest");
  print_header("§5 — deep-nest family: deterministic vs randomized volume");
  stats::Table table(
      {"k", "n", "det volume (mid level k-1)", "rnd volume", "det/rnd", "n^{1/k}"});
  for (int k : {3, 4}) {
    Curve det_c, rnd_c;
    const std::vector<NodeIndex> bs =
        k == 3 ? std::vector<NodeIndex>{400, 700, 1100} : std::vector<NodeIndex>{64, 100, 140};
    for (NodeIndex b : bs) {
      std::vector<NodeIndex> lens(static_cast<std::size_t>(k), b);
      lens.back() = 3;
      auto inst = make_hierarchical_instance_lens(lens, 5);
      const auto n = inst.node_count();
      RandomTape tape(inst.ids, 29);
      auto det_cfg = HthcConfig::make(k, n, false, nullptr);
      auto rnd_cfg = HthcConfig::make(k, n, true, &tape, /*c=*/0.5);
      Hierarchy h(inst.graph, inst.labels.tree, k + 1);
      NodeIndex start = kNoNode;
      for (const auto& bb : h.backbones()) {
        if (bb.level == k - 1) {
          start = bb.nodes[bb.nodes.size() / 2];
          break;
        }
      }
      std::int64_t det_vol = 0, rnd_vol = 0;
      {
        Execution exec(inst.graph, inst.ids, start);
        Src src(inst, exec);
        HthcSolver<Src> solver(src, det_cfg);
        solver.solve_at(start);
        det_vol = exec.volume();
      }
      {
        Execution exec(inst.graph, inst.ids, start);
        Src src(inst, exec);
        HthcSolver<Src> solver(src, rnd_cfg);
        solver.solve_at(start);
        rnd_vol = exec.volume();
      }
      char ratio[32], root[32];
      std::snprintf(ratio, sizeof ratio, "%.1fx",
                    static_cast<double>(det_vol) / std::max<std::int64_t>(rnd_vol, 1));
      std::snprintf(root, sizeof root, "%.0f",
                    std::pow(static_cast<double>(n), 1.0 / k));
      table.add_row({fmt_int(k), fmt_int(n), fmt_int(det_vol), fmt_int(rnd_vol), ratio,
                     root});
      det_c.add(static_cast<double>(n), static_cast<double>(det_vol));
      rnd_c.add(static_cast<double>(n), static_cast<double>(rnd_vol));
    }
    report.add("DeepNest(k=" + std::to_string(k) + ") / D-VOL", det_c, "Ω̃(n) (Prop. 5.20)");
    report.add("DeepNest(k=" + std::to_string(k) + ") / R-VOL", rnd_c,
               "Θ̃(n^{1/" + std::to_string(k) + "})");
  }
  table.print();
  std::printf(
      "\nOn nested just-deep backbones the deterministic scan pays a full\n"
      "floor walk per scanned node while the waypoint scan recurses only at\n"
      "sampled nodes — the executable content of the D-VOL vs R-VOL row of\n"
      "Table 1.  The fully adversarial Ω̃(n) bound is Prop. 5.20.\n");
}

void adversary_table(JsonReport& report) {
  auto ph = report.phase("adversary");
  print_header("§5 — Prop. 5.20 adversary: deterministic candidates vs budgets");
  stats::Table table({"candidate", "k", "n", "budget", "outcome", "level", "sims"});
  struct Candidate {
    const char* name;
    HthcCandidate fn;
  };
  RandomTape tape(IdAssignment::sequential(200000), 11);
  const Candidate candidates[] = {
      {"always D", [](HthcAdversarySource&) { return ThcColor::D; }},
      {"always X", [](HthcAdversarySource&) { return ThcColor::X; }},
      {"echo χ_in",
       [](HthcAdversarySource& s) { return to_thc(s.color(s.start())); }},
      {"RecursiveHTHC (Alg. 2)",
       [](HthcAdversarySource& s) {
         auto cfg = HthcConfig::make(2, s.n(), false, nullptr);
         HthcSolver<HthcAdversarySource> solver(s, cfg);
         return solver.solve();
       }},
      {"waypoint solver (coins fixed first)",
       [&tape](HthcAdversarySource& s) {
         auto cfg = HthcConfig::make(2, s.n(), true, &tape, 0.5);
         HthcSolver<HthcAdversarySource> solver(s, cfg);
         return solver.solve();
       }},
  };
  for (const auto& cand : candidates) {
    for (int k : {2, 3}) {
      const std::int64_t n = 60000;
      auto result = duel_hthc_adversary(cand.fn, k, n, n / 3);
      std::string outcome = result.exceeded_budget
                                ? "needs > n/3 volume (consistent with Ω̃(n))"
                                : (result.defeated ? "DEFEATED: " + result.verdict
                                                   : "survived (!)");
      if (outcome.size() > 72) outcome = outcome.substr(0, 69) + "...";
      table.add_row({cand.name, fmt_int(k), fmt_int(n), fmt_int(n / 3), outcome,
                     result.defeated ? fmt_int(result.defeat_level) : "-",
                     fmt_int(result.simulations)});
    }
  }
  table.print();
  std::printf(
      "\nThe adversary convicts every strategy that answers within the budget\n"
      "and starves the rest — including the paper's own Alg. 2, whose scans\n"
      "recursively explore a fresh deep component per step here.  The fixed-\n"
      "coin waypoint solver is defeated too: Prop. 5.14's whp guarantee is\n"
      "per-instance, not against a coin-aware adversary.\n");
}

void BM_RecursiveHTHC(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto inst = make_hierarchical_instance(k, k == 2 ? 256 : 32, 3);
  auto cfg = HthcConfig::make(k, inst.node_count(), false, nullptr);
  std::uint64_t i = 0;
  for (auto _ : state) {
    Execution exec(inst.graph, inst.ids, static_cast<NodeIndex>(i++ % 97));
    Src src(inst, exec);
    HthcSolver<Src> solver(src, cfg);
    benchmark::DoNotOptimize(solver.solve());
  }
  state.SetLabel("n=" + std::to_string(inst.node_count()));
}
BENCHMARK(BM_RecursiveHTHC)->Arg(2)->Arg(3);

}  // namespace
}  // namespace volcal::bench

int main(int argc, char** argv) {
  auto args = volcal::bench::Args::parse(&argc, argv, "bench_hierarchical");
  volcal::bench::Observer::install(args, "bench_hierarchical");
  volcal::bench::JsonReport report("bench_hierarchical");
  volcal::bench::distance_table(report);
  volcal::bench::waypoint_lemmas_table(report);
  volcal::bench::deep_nest_table(report);
  volcal::bench::adversary_table(report);
  report.write_file(args.json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
