// Regenerates Figure 1: the distance-complexity landscape.  Each row is one
// LCL problem plotted as a (deterministic distance, randomized distance)
// point; we measure both coordinates by running the corresponding algorithm
// across an n sweep and print the fitted class next to the paper's placement.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "labels/generators.hpp"
#include "lcl/algorithms/balanced_tree_algos.hpp"
#include "lcl/algorithms/hthc_algos.hpp"
#include "lcl/algorithms/hybrid_algos.hpp"
#include "lcl/algorithms/leaf_coloring_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "lcl/problems/ring_coloring.hpp"

namespace volcal::bench {
namespace {

struct Point {
  std::string problem;
  std::string klass;  // paper's class A/B/C/D
  std::string paper_det;
  std::string paper_rand;
  Curve det;
  Curve rand;
};

void run(const Args& args) {
  JsonReport report("bench_fig1_distance");
  std::vector<Point> points;

  // Class A witness: trivial parity — distance 0 by definition.
  {
    auto ph = report.phase("degree-parity");
    Point p{"DegreeParity", "A (local)", "Θ(1)", "Θ(1)", {}, {}};
    for (NodeIndex n : {1 << 10, 1 << 14, 1 << 18}) {
      p.det.add(static_cast<double>(n), 1.0);
      p.rand.add(static_cast<double>(n), 1.0);
    }
    points.push_back(std::move(p));
  }

  // Class B witness: ring 3-coloring via Cole-Vishkin.
  {
    auto ph = report.phase("ring-coloring");
    Point p{"Ring3Coloring", "B (symmetry breaking)", "Θ(log* n)", "Θ(log* n)", {}, {}};
    for (NodeIndex n : {1 << 10, 1 << 14, 1 << 18}) {
      auto ring = make_ring(n, 2);
      auto starts = sampled_starts(n, 12);
      auto cost = measure(ring.graph, ring.ids, starts, [&](Execution& exec) {
        ring_color_cole_vishkin(ring, exec);
      });
      p.det.add(static_cast<double>(n), static_cast<double>(cost.max_distance));
      p.rand.add(static_cast<double>(n), static_cast<double>(cost.max_distance));
    }
    points.push_back(std::move(p));
  }

  // Class D witnesses: the paper's constructions.
  {
    auto ph = report.phase("leafcoloring");
    Point p{"LeafColoring", "D (global)", "Θ(log n)", "Θ(log n)", {}, {}};
    for (int depth : {8, 11, 14, 17}) {
      auto inst = make_complete_binary_tree(depth, Color::Red, Color::Blue);
      auto starts = sampled_starts(inst.node_count(), 12);
      auto cost = measure(inst.graph, inst.ids, starts, [&](auto& exec) {
        InstanceSource<ColoredTreeLabeling, std::decay_t<decltype(exec)>> src(inst, exec);
        leafcoloring_nearest_leaf(src);
      });
      p.det.add(static_cast<double>(inst.node_count()),
                static_cast<double>(cost.max_distance));
      p.rand.add(static_cast<double>(inst.node_count()),
                 static_cast<double>(cost.max_distance));
    }
    points.push_back(std::move(p));
  }
  {
    auto ph = report.phase("balancedtree");
    Point p{"BalancedTree", "D (global)", "Θ(log n)", "Θ(log n)", {}, {}};
    for (int depth : {7, 10, 13, 15}) {
      auto inst = make_balanced_instance(depth);
      auto starts = sampled_starts(inst.node_count(), 10);
      auto cost = measure(inst.graph, inst.ids, starts, [&](auto& exec) {
        InstanceSource<BalancedTreeLabeling, std::decay_t<decltype(exec)>> src(inst, exec);
        balancedtree_solve(src);
      });
      p.det.add(static_cast<double>(inst.node_count()),
                static_cast<double>(cost.max_distance));
      p.rand.add(static_cast<double>(inst.node_count()),
                 static_cast<double>(cost.max_distance));
    }
    points.push_back(std::move(p));
  }
  for (int k : {2, 3}) {
    auto ph = report.phase("hierarchical-" + std::to_string(k));
    Point p{"Hierarchical-THC(" + std::to_string(k) + ")", "D (global)",
            "Θ(n^{1/" + std::to_string(k) + "})", "Θ(n^{1/" + std::to_string(k) + "})",
            {},
            {}};
    const std::vector<NodeIndex> bs =
        k == 2 ? std::vector<NodeIndex>{64, 160, 400, 768} : std::vector<NodeIndex>{16, 32, 56, 80};
    for (NodeIndex b : bs) {
      auto inst = make_hierarchical_instance(k, b, 3);
      auto cfg = HthcConfig::make(k, inst.node_count(), false, nullptr);
      auto starts = sampled_starts(inst.node_count(), 12);
      auto cost = measure(inst.graph, inst.ids, starts, [&](auto& exec) {
        InstanceSource<ColoredTreeLabeling, std::decay_t<decltype(exec)>> src(inst, exec);
        HthcSolver<std::decay_t<decltype(src)>> solver(src, cfg);
        solver.solve();
      });
      p.det.add(static_cast<double>(inst.node_count()),
                static_cast<double>(cost.max_distance));
      p.rand.add(static_cast<double>(inst.node_count()),
                 static_cast<double>(cost.max_distance));
    }
    points.push_back(std::move(p));
  }

  print_header("Figure 1 — LCLs classified by distance complexity");
  stats::Table table({"problem", "class", "D-DIST paper", "D-DIST fitted", "R-DIST paper",
                      "R-DIST fitted"});
  for (const auto& p : points) {
    table.add_row({p.problem, p.klass, p.paper_det, p.det.fitted(), p.paper_rand,
                   p.rand.fitted()});
    report.add(p.problem + " / D-DIST", p.det, p.paper_det);
    report.add(p.problem + " / R-DIST", p.rand, p.paper_rand);
  }
  table.print();
  report.write_file(args.json);
  std::printf(
      "\nGap regions (no LCLs exist between the classes) are theorems cited in\n"
      "§1 [2,3,5,9,12,13,15,20-22,29,33,34]; the shaded Fig.-1 area is not a\n"
      "measurable artifact.  Class C (Δ-coloring-style shattering) has no\n"
      "construction in this paper.  Θ(log* n) curves measure as flat: with\n"
      "64-bit IDs log* n <= 5 over any feasible sweep, so Θ(1) fits are the\n"
      "expected rendering of the class-B point.\n");
}

}  // namespace
}  // namespace volcal::bench

int main(int argc, char** argv) {
  auto args = volcal::bench::Args::parse(&argc, argv, "bench_fig1_distance");
  volcal::bench::Observer::install(args, "bench_fig1_distance");
  volcal::bench::run(args);
  return 0;
}
