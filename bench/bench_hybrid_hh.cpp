// Section 6 benchmarks: Hybrid-THC(k) and HH-THC(k, ℓ).
//   * the hybrid crossover: distance collapses to Θ(log n) while randomized
//     volume stays Θ̃(n^{1/k}) (Thm. 6.3);
//   * heavy-floor declines: lowering the lightness threshold flips whole
//     components to unanimous D without breaking validity;
//   * HH-THC: both knobs at once (Thm. 6.5) — distance tracks n^{1/ℓ},
//     volume tracks n^{1/k}.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "labels/generators.hpp"
#include "lcl/algorithms/hh_algos.hpp"
#include "lcl/algorithms/hybrid_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "lcl/problems/hybrid_thc.hpp"
#include "lcl/problems/hh_thc.hpp"

namespace volcal::bench {
namespace {

void hybrid_crossover_table(JsonReport& report) {
  auto ph = report.phase("hybrid-crossover");
  print_header("§6 — Hybrid-THC(2): distance (log n) vs randomized volume (Θ̃(√n))");
  stats::Table table({"n", "max distance", "log2 n", "max volume (waypoint)", "√n"});
  Curve dist, vol;
  for (const auto& [b, d] :
       std::vector<std::pair<NodeIndex, int>>{{16, 4}, {48, 5}, {128, 7}, {384, 8}}) {
    auto inst = make_hybrid_instance(2, b, d, 9);
    const auto n = inst.node_count();
    auto starts = sampled_starts(n, 16);
    {
      Hierarchy h(inst.graph, inst.labels.bal.tree, 3, inst.labels.level_in);
      for (NodeIndex v = 0; v < n && starts.size() < 22u; ++v) {
        if (inst.labels.level_in[v] == 2 && h.down(v) != kNoNode) starts.push_back(h.down(v));
      }
    }
    auto cfg = HybridConfig::make(2, n);
    auto det = measure(inst.graph, inst.ids, starts, [&](auto& exec) {
      InstanceSource<HybridLabeling, std::decay_t<decltype(exec)>> src(inst, exec);
      hybrid_solve_distance(src, cfg);
    });
    RandomTape tape(inst.ids, 7);
    auto rcfg = HybridConfig::make(2, n, true, &tape);
    auto rnd = measure(inst.graph, inst.ids, starts, [&](auto& exec) {
      InstanceSource<HybridLabeling, std::decay_t<decltype(exec)>> src(inst, exec);
      hybrid_solve_volume(src, rcfg);
    });
    dist.add(static_cast<double>(n), static_cast<double>(det.max_distance));
    vol.add(static_cast<double>(n), static_cast<double>(rnd.max_volume));
    char logn[32], root[32];
    std::snprintf(logn, sizeof logn, "%.1f", std::log2(static_cast<double>(n)));
    std::snprintf(root, sizeof root, "%.0f", std::sqrt(static_cast<double>(n)));
    table.add_row({fmt_int(n), fmt_int(det.max_distance), logn, fmt_int(rnd.max_volume),
                   root});
  }
  table.print();
  std::printf("fitted: distance %s, volume %s\n", dist.fitted().c_str(),
              vol.fitted().c_str());
  report.add("Hybrid-THC(2) / D-DIST", dist, "Θ(log n) (Thm. 6.3)");
  report.add("Hybrid-THC(2) / R-VOL", vol, "Θ̃(n^{1/2}) (Thm. 6.3)");
}

void decline_table(JsonReport& report) {
  auto ph = report.phase("declines");
  print_header("§6 — lightness threshold controls solve-vs-decline (still valid)");
  stats::Table table({"bt_limit", "solved floors", "declined floors", "valid"});
  auto inst = make_hybrid_instance(2, 16, 5, 11);
  RandomTape tape(inst.ids, 3);
  for (const std::int64_t limit : {std::int64_t{8}, std::int64_t{32}, std::int64_t{128}}) {
    auto cfg = HybridConfig::make(2, inst.node_count(), true, &tape);
    cfg.bt_limit = limit;
    FreeSource<HybridLabeling> src(inst);
    HybridVolumeSolver<FreeSource<HybridLabeling>> solver(src, cfg);
    std::vector<HybridOutput> out(inst.node_count());
    std::int64_t solved = 0, declined = 0;
    for (NodeIndex v = 0; v < inst.node_count(); ++v) {
      out[v] = solver.solve_at(v);
      if (inst.labels.level_in[v] == 1) {
        (out[v].is_bt ? solved : declined) += 1;
      }
    }
    HybridTHCProblem problem(inst, 2);
    const bool ok = verify_all(problem, inst, out).ok;
    table.add_row({fmt_int(limit), fmt_int(solved), fmt_int(declined),
                   ok ? "yes" : "NO"});
  }
  table.print();
}

void hh_table(JsonReport& report) {
  auto ph = report.phase("hh");
  print_header("§6.1 — HH-THC(k, ℓ): distance tracks n^{1/ℓ}, volume tracks n^{1/k}");
  stats::Table table({"(k,ℓ)", "n", "max distance", "n^{1/ℓ}", "max volume", "n^{1/k}"});
  for (const auto& [k, l] : std::vector<std::pair<int, int>>{{2, 2}, {2, 3}, {2, 4}, {3, 4}}) {
    Curve dist, vol;
    for (NodeIndex n_half : {8000, 40000, 200000, 1000000}) {
      auto inst = make_hh_instance(k, l, n_half, 13);
      const auto n = inst.node_count();
      auto starts = sampled_starts(n, 16);
      auto cfg = HHConfig::make(k, l, n);
      auto det = measure(inst.graph, inst.ids, starts, [&](auto& exec) {
        InstanceSource<HHLabeling, std::decay_t<decltype(exec)>> src(inst, exec);
        hh_solve_distance(src, cfg);
      });
      RandomTape tape(inst.ids, 7);
      auto rcfg = HHConfig::make(k, l, n, true, &tape);
      auto rnd = measure(inst.graph, inst.ids, starts, [&](auto& exec) {
        InstanceSource<HHLabeling, std::decay_t<decltype(exec)>> src(inst, exec);
        hh_solve_volume(src, rcfg);
      });
      dist.add(static_cast<double>(n), static_cast<double>(det.max_distance));
      vol.add(static_cast<double>(n), static_cast<double>(rnd.max_volume));
      char rl[32], rk[32];
      std::snprintf(rl, sizeof rl, "%.0f", std::pow(static_cast<double>(n), 1.0 / l));
      std::snprintf(rk, sizeof rk, "%.0f", std::pow(static_cast<double>(n), 1.0 / k));
      table.add_row({"(" + std::to_string(k) + "," + std::to_string(l) + ")", fmt_int(n),
                     fmt_int(det.max_distance), rl, fmt_int(rnd.max_volume), rk});
    }
    std::printf("(k=%d,ℓ=%d) fitted: distance %s, volume %s\n", k, l,
                dist.fitted().c_str(), vol.fitted().c_str());
    const std::string tag = "(" + std::to_string(k) + "," + std::to_string(l) + ")";
    report.add("HH-THC" + tag + " / D-DIST", dist,
               "Θ(n^{1/" + std::to_string(l) + "}) (Thm. 6.5)");
    report.add("HH-THC" + tag + " / R-VOL", vol,
               "Θ̃(n^{1/" + std::to_string(k) + "}) (Thm. 6.5)");
  }
  table.print();
}

}  // namespace
}  // namespace volcal::bench

int main(int argc, char** argv) {
  auto args = volcal::bench::Args::parse(&argc, argv, "bench_hybrid_hh");
  volcal::bench::Observer::install(args, "bench_hybrid_hh");
  volcal::bench::JsonReport report("bench_hybrid_hh");
  volcal::bench::hybrid_crossover_table(report);
  volcal::bench::decline_table(report);
  volcal::bench::hh_table(report);
  report.write_file(args.json);
  return 0;
}
