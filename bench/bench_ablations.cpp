// Ablations over the constructions' tunable constants — the design choices
// DESIGN.md calls out:
//   * RWtoLeaf truncation constant (Remark 3.11): where does whp kick in?
//   * way-point sampling constant c (Prop. 5.14): validity vs volume;
//   * shallow/deep window multiplier (Def. 5.10's 2·n^{1/k} threshold):
//     smaller windows cut volume until they start declaring real components
//     deep, larger ones explore more for no benefit.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "labels/generators.hpp"
#include "lcl/algorithms/hthc_algos.hpp"
#include "lcl/algorithms/leaf_coloring_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "lcl/problems/cp_thc.hpp"
#include "lcl/problems/hierarchical_thc.hpp"
#include "lcl/problems/leaf_coloring.hpp"
#include "runtime/success.hpp"

namespace volcal::bench {
namespace {

void truncation_ablation(JsonReport& report) {
  auto ph = report.phase("truncation");
  print_header("Ablation — RWtoLeaf truncation budget (multiples of log2 n)");
  stats::Table table({"multiplier", "success rate (12 tapes, all nodes)", "max volume"});
  auto inst = make_complete_binary_tree(12, Color::Red, Color::Blue);
  LeafColoringProblem problem;
  const double logn = std::log2(static_cast<double>(inst.node_count()));
  Curve succ_c, vol_c;  // abscissa: budget multiplier
  for (const double mult : {0.5, 1.0, 1.5, 2.0, 4.0, 16.0}) {
    const auto budget = static_cast<std::int64_t>(mult * logn);
    auto est = estimate_success(
        problem, inst,
        [&](RandomTape& tape) {
          return [&inst, &tape, budget](Execution& exec) {
            InstanceSource<ColoredTreeLabeling> src(inst, exec);
            return rw_to_leaf(src, tape, budget);
          };
        },
        /*trials=*/12);
    char m[16], r[24];
    std::snprintf(m, sizeof m, "%.1f", mult);
    std::snprintf(r, sizeof r, "%d/%d", est.successes, est.trials);
    table.add_row({m, r, fmt_int(est.max_volume)});
    succ_c.add(mult, static_cast<double>(est.successes));
    vol_c.add(mult, static_cast<double>(est.max_volume));
  }
  table.print();
  report.add("Truncation / successes vs budget", succ_c, "whp above ~1x log2 n");
  report.add("Truncation / max volume vs budget", vol_c);
  std::printf(
      "\nBelow ~1x log2 n the walk cannot even reach depth; Prop. 3.10's\n"
      "16·log n is far into the safe regime — the proof constant is loose,\n"
      "as expected of a Chernoff argument.\n");
}

void waypoint_constant_ablation(JsonReport& report) {
  auto ph = report.phase("waypoint-constant");
  print_header("Ablation — way-point constant c (p = c·log n / n^{1/k}), k = 2 deep top");
  stats::Table table({"c", "p", "valid", "max volume (sampled starts)"});
  auto inst = make_hierarchical_instance_lens({6, 900}, 7);
  const auto n = inst.node_count();
  HierarchicalTHCProblem problem(inst, 2);
  Curve vol_c;  // abscissa: the way-point constant c
  for (const double c : {0.005, 0.02, 0.1, 0.5, 3.0}) {
    RandomTape tape(inst.ids, 31);
    auto cfg = HthcConfig::make(2, n, true, &tape, c);
    // Global outputs for validity.
    FreeSource<ColoredTreeLabeling> src(inst);
    HthcSolver<FreeSource<ColoredTreeLabeling>> solver(src, cfg);
    std::vector<ThcColor> out(n);
    for (NodeIndex v = 0; v < n; ++v) out[v] = solver.solve_at(v);
    const bool ok = verify_all(problem, inst, out).ok;
    // Metered volume from sampled starts.
    std::int64_t max_vol = 0;
    for (NodeIndex v : sampled_starts(n, 16)) {
      Execution exec(inst.graph, inst.ids, v);
      InstanceSource<ColoredTreeLabeling> paid(inst, exec);
      HthcSolver<std::decay_t<decltype(paid)>> metered(paid, cfg);
      metered.solve();
      max_vol = std::max(max_vol, exec.volume());
    }
    char cb[16], pb[16];
    std::snprintf(cb, sizeof cb, "%.2f", c);
    std::snprintf(pb, sizeof pb, "%.3f", cfg.waypoint_p(n));
    table.add_row({cb, pb, ok ? "yes" : "NO", fmt_int(max_vol)});
    vol_c.add(c, static_cast<double>(max_vol));
  }
  table.print();
  report.add("Waypoint constant / max volume vs c", vol_c, "Lem. 5.18 trade-off");
  std::printf(
      "\nSmaller c means sparser way-points: volume falls until the gaps\n"
      "between certifying way-points exceed the window and validity breaks —\n"
      "the Lemma 5.18 trade-off, live.\n");
}

void window_ablation(JsonReport& report) {
  auto ph = report.phase("window");
  print_header("Ablation — shallow/deep window multiplier (baseline 2·n^{1/k})");
  stats::Table table({"multiplier", "window", "valid", "max volume", "declines"});
  auto inst = make_hierarchical_instance(2, 40, 9);  // b = 40 ≈ n^{1/2}
  const auto n = inst.node_count();
  HierarchicalTHCProblem problem(inst, 2);
  Curve vol_c, decl_c;  // abscissa: window multiplier
  for (const double mult : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    auto cfg = HthcConfig::make(2, n, false, nullptr);
    cfg.window = std::max<std::int64_t>(2, static_cast<std::int64_t>(cfg.window * mult));
    FreeSource<ColoredTreeLabeling> src(inst);
    HthcSolver<FreeSource<ColoredTreeLabeling>> solver(src, cfg);
    std::vector<ThcColor> out(n);
    std::int64_t declines = 0;
    for (NodeIndex v = 0; v < n; ++v) {
      out[v] = solver.solve_at(v);
      declines += out[v] == ThcColor::D ? 1 : 0;
    }
    const bool ok = verify_all(problem, inst, out).ok;
    std::int64_t max_vol = 0;
    for (NodeIndex v : sampled_starts(n, 16)) {
      Execution exec(inst.graph, inst.ids, v);
      InstanceSource<ColoredTreeLabeling> paid(inst, exec);
      HthcSolver<std::decay_t<decltype(paid)>> metered(paid, cfg);
      metered.solve();
      max_vol = std::max(max_vol, exec.volume());
    }
    char m[16];
    std::snprintf(m, sizeof m, "%.2f", mult);
    table.add_row({m, fmt_int(cfg.window), ok ? "yes" : "NO", fmt_int(max_vol),
                   fmt_int(declines)});
    vol_c.add(mult, static_cast<double>(max_vol));
    decl_c.add(mult, static_cast<double>(declines));
  }
  table.print();
  report.add("Window / max volume vs multiplier", vol_c, "baseline 2*n^{1/k} (Def. 5.10)");
  report.add("Window / declines vs multiplier", decl_c);
  std::printf(
      "\nAt multiplier < 1 the solver misclassifies genuine n^{1/2}-length\n"
      "backbones as deep; level-1 components then decline and the level-k\n"
      "scan must cover them — more volume and, once scans fail, invalid D's.\n"
      "The paper's 2·n^{1/k} is the smallest window that keeps the balanced\n"
      "family shallow.\n");
}

void remark57_ablation(JsonReport& report) {
  auto ph = report.phase("remark57");
  print_header(
      "Ablation — Remark 5.7: the paper's relaxed exemption vs Chang-Pettie-style "
      "mandatory exemption");
  stats::Table table({"rules", "way-point outputs valid", "violations"});
  auto inst = make_hierarchical_instance_lens({6, 900}, 7);
  const auto n = inst.node_count();
  RandomTape tape(inst.ids, 31);
  auto cfg = HthcConfig::make(2, n, true, &tape, 0.5);
  FreeSource<ColoredTreeLabeling> src(inst);
  HthcSolver<FreeSource<ColoredTreeLabeling>> solver(src, cfg);
  std::vector<ThcColor> out(n);
  for (NodeIndex v = 0; v < n; ++v) out[v] = solver.solve_at(v);

  HierarchicalTHCProblem relaxed(inst, 2);
  const auto rv = verify_all(relaxed, inst, out);
  CpTHCProblem cp(inst, 2);
  const auto cv = verify_all(cp, inst, out);
  table.add_row({"paper (relaxed, allows X)", rv.ok ? "yes" : "NO", fmt_int(rv.violations)});
  table.add_row({"CP-style (mandatory X)", cv.ok ? "yes" : "NO", fmt_int(cv.violations)});
  table.print();
  std::printf(
      "\nUnder mandatory exemption every node's output reveals whether its\n"
      "subtree solved, so the sampled (way-point) outputs are rejected and a\n"
      "correct algorithm must recurse below every scanned node — Remark 5.7's\n"
      "\"our modification seems necessary\" as a measurement.\n");
}

}  // namespace
}  // namespace volcal::bench

int main(int argc, char** argv) {
  auto args = volcal::bench::Args::parse(&argc, argv, "bench_ablations");
  volcal::bench::Observer::install(args, "bench_ablations");
  volcal::bench::JsonReport report("bench_ablations");
  volcal::bench::truncation_ablation(report);
  volcal::bench::waypoint_constant_ablation(report);
  volcal::bench::window_ablation(report);
  volcal::bench::remark57_ablation(report);
  report.write_file(args.json);
  return 0;
}
