// Ablations over the constructions' tunable constants — the design choices
// DESIGN.md calls out:
//   * RWtoLeaf truncation constant (Remark 3.11): where does whp kick in?
//   * way-point sampling constant c (Prop. 5.14): validity vs volume;
//   * shallow/deep window multiplier (Def. 5.10's 2·n^{1/k} threshold):
//     smaller windows cut volume until they start declaring real components
//     deep, larger ones explore more for no benefit.
//   * churn invalidation (PR 10's dynamic-graph regime): under localized
//     leaf rewires, radius-bounded invalidate_region vs the old global
//     flush — how much of the warm ball cache each keeps serving.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "graph/mutation.hpp"
#include "labels/generators.hpp"
#include "lcl/algorithms/hthc_algos.hpp"
#include "lcl/algorithms/leaf_coloring_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "lcl/problems/cp_thc.hpp"
#include "lcl/problems/hierarchical_thc.hpp"
#include "lcl/problems/leaf_coloring.hpp"
#include "runtime/batched_execution.hpp"
#include "runtime/success.hpp"
#include "runtime/view_cache.hpp"

namespace volcal::bench {
namespace {

void truncation_ablation(JsonReport& report) {
  auto ph = report.phase("truncation");
  print_header("Ablation — RWtoLeaf truncation budget (multiples of log2 n)");
  stats::Table table({"multiplier", "success rate (12 tapes, all nodes)", "max volume"});
  auto inst = make_complete_binary_tree(12, Color::Red, Color::Blue);
  LeafColoringProblem problem;
  const double logn = std::log2(static_cast<double>(inst.node_count()));
  Curve succ_c, vol_c;  // abscissa: budget multiplier
  for (const double mult : {0.5, 1.0, 1.5, 2.0, 4.0, 16.0}) {
    const auto budget = static_cast<std::int64_t>(mult * logn);
    auto est = estimate_success(
        problem, inst,
        [&](RandomTape& tape) {
          return [&inst, &tape, budget](Execution& exec) {
            InstanceSource<ColoredTreeLabeling> src(inst, exec);
            return rw_to_leaf(src, tape, budget);
          };
        },
        /*trials=*/12);
    char m[16], r[24];
    std::snprintf(m, sizeof m, "%.1f", mult);
    std::snprintf(r, sizeof r, "%d/%d", est.successes, est.trials);
    table.add_row({m, r, fmt_int(est.max_volume)});
    succ_c.add(mult, static_cast<double>(est.successes));
    vol_c.add(mult, static_cast<double>(est.max_volume));
  }
  table.print();
  report.add("Truncation / successes vs budget", succ_c, "whp above ~1x log2 n");
  report.add("Truncation / max volume vs budget", vol_c);
  std::printf(
      "\nBelow ~1x log2 n the walk cannot even reach depth; Prop. 3.10's\n"
      "16·log n is far into the safe regime — the proof constant is loose,\n"
      "as expected of a Chernoff argument.\n");
}

void waypoint_constant_ablation(JsonReport& report) {
  auto ph = report.phase("waypoint-constant");
  print_header("Ablation — way-point constant c (p = c·log n / n^{1/k}), k = 2 deep top");
  stats::Table table({"c", "p", "valid", "max volume (sampled starts)"});
  auto inst = make_hierarchical_instance_lens({6, 900}, 7);
  const auto n = inst.node_count();
  HierarchicalTHCProblem problem(inst, 2);
  Curve vol_c;  // abscissa: the way-point constant c
  for (const double c : {0.005, 0.02, 0.1, 0.5, 3.0}) {
    RandomTape tape(inst.ids, 31);
    auto cfg = HthcConfig::make(2, n, true, &tape, c);
    // Global outputs for validity.
    FreeSource<ColoredTreeLabeling> src(inst);
    HthcSolver<FreeSource<ColoredTreeLabeling>> solver(src, cfg);
    std::vector<ThcColor> out(n);
    for (NodeIndex v = 0; v < n; ++v) out[v] = solver.solve_at(v);
    const bool ok = verify_all(problem, inst, out).ok;
    // Metered volume from sampled starts.
    std::int64_t max_vol = 0;
    for (NodeIndex v : sampled_starts(n, 16)) {
      Execution exec(inst.graph, inst.ids, v);
      InstanceSource<ColoredTreeLabeling> paid(inst, exec);
      HthcSolver<std::decay_t<decltype(paid)>> metered(paid, cfg);
      metered.solve();
      max_vol = std::max(max_vol, exec.volume());
    }
    char cb[16], pb[16];
    std::snprintf(cb, sizeof cb, "%.2f", c);
    std::snprintf(pb, sizeof pb, "%.3f", cfg.waypoint_p(n));
    table.add_row({cb, pb, ok ? "yes" : "NO", fmt_int(max_vol)});
    vol_c.add(c, static_cast<double>(max_vol));
  }
  table.print();
  report.add("Waypoint constant / max volume vs c", vol_c, "Lem. 5.18 trade-off");
  std::printf(
      "\nSmaller c means sparser way-points: volume falls until the gaps\n"
      "between certifying way-points exceed the window and validity breaks —\n"
      "the Lemma 5.18 trade-off, live.\n");
}

void window_ablation(JsonReport& report) {
  auto ph = report.phase("window");
  print_header("Ablation — shallow/deep window multiplier (baseline 2·n^{1/k})");
  stats::Table table({"multiplier", "window", "valid", "max volume", "declines"});
  auto inst = make_hierarchical_instance(2, 40, 9);  // b = 40 ≈ n^{1/2}
  const auto n = inst.node_count();
  HierarchicalTHCProblem problem(inst, 2);
  Curve vol_c, decl_c;  // abscissa: window multiplier
  for (const double mult : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    auto cfg = HthcConfig::make(2, n, false, nullptr);
    cfg.window = std::max<std::int64_t>(2, static_cast<std::int64_t>(cfg.window * mult));
    FreeSource<ColoredTreeLabeling> src(inst);
    HthcSolver<FreeSource<ColoredTreeLabeling>> solver(src, cfg);
    std::vector<ThcColor> out(n);
    std::int64_t declines = 0;
    for (NodeIndex v = 0; v < n; ++v) {
      out[v] = solver.solve_at(v);
      declines += out[v] == ThcColor::D ? 1 : 0;
    }
    const bool ok = verify_all(problem, inst, out).ok;
    std::int64_t max_vol = 0;
    for (NodeIndex v : sampled_starts(n, 16)) {
      Execution exec(inst.graph, inst.ids, v);
      InstanceSource<ColoredTreeLabeling> paid(inst, exec);
      HthcSolver<std::decay_t<decltype(paid)>> metered(paid, cfg);
      metered.solve();
      max_vol = std::max(max_vol, exec.volume());
    }
    char m[16];
    std::snprintf(m, sizeof m, "%.2f", mult);
    table.add_row({m, fmt_int(cfg.window), ok ? "yes" : "NO", fmt_int(max_vol),
                   fmt_int(declines)});
    vol_c.add(mult, static_cast<double>(max_vol));
    decl_c.add(mult, static_cast<double>(declines));
  }
  table.print();
  report.add("Window / max volume vs multiplier", vol_c, "baseline 2*n^{1/k} (Def. 5.10)");
  report.add("Window / declines vs multiplier", decl_c);
  std::printf(
      "\nAt multiplier < 1 the solver misclassifies genuine n^{1/2}-length\n"
      "backbones as deep; level-1 components then decline and the level-k\n"
      "scan must cover them — more volume and, once scans fail, invalid D's.\n"
      "The paper's 2·n^{1/k} is the smallest window that keeps the balanced\n"
      "family shallow.\n");
}

void remark57_ablation(JsonReport& report) {
  auto ph = report.phase("remark57");
  print_header(
      "Ablation — Remark 5.7: the paper's relaxed exemption vs Chang-Pettie-style "
      "mandatory exemption");
  stats::Table table({"rules", "way-point outputs valid", "violations"});
  auto inst = make_hierarchical_instance_lens({6, 900}, 7);
  const auto n = inst.node_count();
  RandomTape tape(inst.ids, 31);
  auto cfg = HthcConfig::make(2, n, true, &tape, 0.5);
  FreeSource<ColoredTreeLabeling> src(inst);
  HthcSolver<FreeSource<ColoredTreeLabeling>> solver(src, cfg);
  std::vector<ThcColor> out(n);
  for (NodeIndex v = 0; v < n; ++v) out[v] = solver.solve_at(v);

  HierarchicalTHCProblem relaxed(inst, 2);
  const auto rv = verify_all(relaxed, inst, out);
  CpTHCProblem cp(inst, 2);
  const auto cv = verify_all(cp, inst, out);
  table.add_row({"paper (relaxed, allows X)", rv.ok ? "yes" : "NO", fmt_int(rv.violations)});
  table.add_row({"CP-style (mandatory X)", cv.ok ? "yes" : "NO", fmt_int(cv.violations)});
  table.print();
  std::printf(
      "\nUnder mandatory exemption every node's output reveals whether its\n"
      "subtree solved, so the sampled (way-point) outputs are rejected and a\n"
      "correct algorithm must recurse below every scanned node — Remark 5.7's\n"
      "\"our modification seems necessary\" as a measurement.\n");
}

// One serving-side churn simulation: a warm shared ball cache over every
// node, a stream of localized leaf rewires, and a fixed probe set queried
// after each update.  `region == true` migrates surviving entries with
// invalidate_region; `region == false` reproduces the pre-PR-10 behavior —
// rebinding to the new token, which flushes the whole cache.  Every cache
// hit is checked bit-for-bit against a cold recomputation on the mutated
// graph: a divergence here is a stale ball served to a client, and the
// ablation dies rather than report alongside it.
struct ChurnTally {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evicted = 0;
  std::int64_t retained = 0;
  Curve hit_rate;  // abscissa: update index (1-based)

  double rate() const {
    const double total = static_cast<double>(hits + misses);
    return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
  }
};

ChurnTally run_churn(const RegistryEntry& entry, NodeIndex n, std::uint64_t seed,
                     int updates, bool region) {
  ChurnTally tally;
  const std::int64_t radius = entry.plan.radius;
  ErasedInstance cur = entry.make(n, seed);
  n = cur.node_count();  // families may round n to their natural shape

  CacheConfig cfg;
  cfg.policy = CachePolicy::Shared;
  ViewCache cache(cfg);
  cache.bind(cur.graph());
  // Warm every center, the serve path's steady state.
  {
    BatchedBallExecutor warm;
    warm.bind(cur.graph());
    NodeIndex centers[BatchedBallExecutor::kMaxBatch];
    for (NodeIndex at = 0; at < n;) {
      int b = 0;
      for (; b < BatchedBallExecutor::kMaxBatch && at < n; ++b, ++at) centers[b] = at;
      warm.run({centers, static_cast<std::size_t>(b)}, radius);
      for (int s = 0; s < b; ++s) {
        cache.store(centers[s], warm.take_ball(s), cache.epoch(),
                    cur.graph().storage_identity());
      }
    }
  }

  const std::vector<NodeIndex> probes = sampled_starts(n, 256);
  for (int u = 1; u <= updates; ++u) {
    const MutationBatch batch =
        cur.propose_mutation(seed + 0x6368726eull * static_cast<std::uint64_t>(u),
                             /*rewires=*/1, /*label_updates=*/1);
    std::vector<NodeIndex> touched;
    ErasedInstance next = cur.mutated(batch, &touched);
    if (region) {
      const auto inv = cache.invalidate_region(cur.graph(), touched, radius,
                                               next.graph().storage_identity());
      if (inv.fell_back_to_flush) {
        std::fprintf(stderr,
                     "FATAL: churn ablation: invalidate_region fell back to the "
                     "full flush at update %d\n",
                     u);
        std::exit(1);
      }
      tally.evicted += static_cast<std::int64_t>(inv.evicted);
      tally.retained += static_cast<std::int64_t>(inv.retained);
    } else {
      // The old mutation signal: binding to the new token flushes everything.
      tally.evicted += static_cast<std::int64_t>(cache.entry_count());
      cache.bind(next.graph());
    }
    cur = std::move(next);

    std::int64_t round_hits = 0;
    BatchedBallExecutor cold;
    cold.bind(cur.graph());
    NodeIndex center[1];
    for (const NodeIndex v : probes) {
      center[0] = v;
      cold.run({center, 1}, radius);
      BallCosts costs;
      if (cache.serve_costs(cur.graph(), v, radius, &costs)) {
        ++round_hits;
        if (costs.volume != cold.volume(0) || costs.distance != cold.distance(0) ||
            costs.queries != cold.queries(0)) {
          std::fprintf(stderr,
                       "FATAL: churn ablation: %s served a stale ball at node %lld "
                       "after update %d (cached volume %lld, true volume %lld)\n",
                       region ? "invalidate_region" : "global flush",
                       static_cast<long long>(v), u,
                       static_cast<long long>(costs.volume),
                       static_cast<long long>(cold.volume(0)));
          std::exit(1);
        }
      } else {
        cache.store(v, cold.take_ball(0), cache.epoch(),
                    cur.graph().storage_identity());
      }
    }
    tally.hits += round_hits;
    tally.misses += static_cast<std::int64_t>(probes.size()) - round_hits;
    tally.hit_rate.add(static_cast<double>(u),
                       static_cast<double>(round_hits) /
                           static_cast<double>(probes.size()));
  }
  return tally;
}

void churn_invalidation_ablation(JsonReport& report) {
  auto ph = report.phase("churn");
  print_header(
      "Ablation — churn: radius-bounded invalidation vs global flush (ball-4)");
  const RegistryEntry* entry = ProblemRegistry::global().find("ball-4");
  if (entry == nullptr || !entry->plan.batchable()) {
    std::fprintf(stderr, "FATAL: churn ablation needs the batchable ball-4 family\n");
    std::exit(1);
  }
  const NodeIndex n = 4000;
  const int kUpdates = 32;
  const ChurnTally region = run_churn(*entry, n, 7, kUpdates, /*region=*/true);
  const ChurnTally flush = run_churn(*entry, n, 7, kUpdates, /*region=*/false);

  stats::Table table(
      {"invalidation", "probe hits", "probe misses", "hit rate", "evicted", "retained"});
  char rr[16], fr[16];
  std::snprintf(rr, sizeof rr, "%.3f", region.rate());
  std::snprintf(fr, sizeof fr, "%.3f", flush.rate());
  table.add_row({"region (radius-bounded)", fmt_int(region.hits), fmt_int(region.misses),
                 rr, fmt_int(region.evicted), fmt_int(region.retained)});
  table.add_row({"global flush", fmt_int(flush.hits), fmt_int(flush.misses), fr,
                 fmt_int(flush.evicted), fmt_int(flush.retained)});
  table.print();
  report.add("Churn / hit rate per update (region invalidation)", region.hit_rate,
             "localized rewires keep the cache warm");
  report.add("Churn / hit rate per update (global flush)", flush.hit_rate);
  std::printf(
      "\nEach leaf rewire touches O(1) nodes; only balls whose radius-%lld\n"
      "cone meets the touched set can change, so region invalidation keeps\n"
      "the rest serving (every hit above is checked bit-for-bit against a\n"
      "cold recomputation).  The global flush repays the whole warm set on\n"
      "every update — the per-query volume lens applied to maintenance.\n",
      static_cast<long long>(entry->plan.radius));
  if (region.rate() <= flush.rate()) {
    std::fprintf(stderr,
                 "FATAL: churn ablation: region invalidation hit rate %.3f did not "
                 "beat the global flush's %.3f on localized updates\n",
                 region.rate(), flush.rate());
    std::exit(1);
  }
}

}  // namespace
}  // namespace volcal::bench

int main(int argc, char** argv) {
  auto args = volcal::bench::Args::parse(&argc, argv, "bench_ablations");
  volcal::bench::Observer::install(args, "bench_ablations");
  volcal::bench::JsonReport report("bench_ablations");
  volcal::bench::truncation_ablation(report);
  volcal::bench::waypoint_constant_ablation(report);
  volcal::bench::window_ablation(report);
  volcal::bench::remark57_ablation(report);
  volcal::bench::churn_invalidation_ablation(report);
  report.write_file(args.json);
  return 0;
}
