// Section 4 / Figure 5 benchmarks:
//   * the disjointness embedding: g(E(a,b)) = disj(a,b), per-query
//     communication accounting (Thm. 2.9 machinery), and the Ω(N) bits any
//     solver pays;
//   * fooling-pair duels: budget-limited deterministic algorithms are fooled;
//   * solver cost curves (distance log n, volume n).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "comm/disjointness.hpp"
#include "labels/generators.hpp"
#include "lcl/algorithms/balanced_tree_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "util/hash.hpp"

namespace volcal::bench {
namespace {

using Src = InstanceSource<BalancedTreeLabeling>;

void embedding_table(JsonReport& report) {
  auto ph = report.phase("embedding");
  print_header("§4 / Fig. 5 — DISJ embedding: g(E(a,b)) vs disj(a,b) and bits paid");
  stats::Table table({"depth", "N", "instances", "g = disj everywhere", "solver bits (max)",
                      "2N floor"});
  Curve bits_c;  // abscissa: N = 2^(depth-1), the DISJ instance size
  for (int depth : {4, 6, 8, 10}) {
    const std::int64_t big_n = std::int64_t{1} << (depth - 1);
    bool all_match = true;
    std::int64_t max_bits = 0;
    const int trials = 12;
    for (int t = 0; t < trials; ++t) {
      std::vector<std::uint8_t> a(big_n), b(big_n);
      for (std::int64_t i = 0; i < big_n; ++i) {
        a[i] = mix64(11, t, i) & 1;
        b[i] = mix64(13, t, i) & 1;
      }
      auto emb = make_disj_embedding(depth, a, b);
      CommAccountant acc(emb);
      Execution exec(emb.instance.graph, emb.instance.ids, emb.root);
      Src src(emb.instance, exec);
      const bool g = balancedtree_solve(src).beta == Balance::Balanced;
      all_match &= g == disj(a, b);
      max_bits = std::max(max_bits, acc.bits_for(exec));
    }
    table.add_row({fmt_int(depth), fmt_int(big_n), fmt_int(trials),
                   all_match ? "yes" : "NO", fmt_int(max_bits), fmt_int(2 * big_n)});
    bits_c.add(static_cast<double>(big_n), static_cast<double>(max_bits));
  }
  table.print();
  report.add("DISJ embedding / solver bits", bits_c, "Ω(N) (Thm. 2.10)");
  std::printf(
      "\nEvery query outside the leaf pairs costs 0 bits; each pair costs 2.\n"
      "Any algorithm answering DISJ must pay Ω(N) bits (Thm. 2.10), hence\n"
      "Ω(N) queries (Thm. 2.9): R-VOL(BalancedTree) = Ω(n).\n");
}

void fooling_table(JsonReport& report) {
  auto ph = report.phase("fooling");
  print_header("§4 — fooling-pair duels: budget-limited deterministic solvers fail");
  stats::Table table({"depth", "n", "budget", "outcome", "untouched pair"});
  RootedBtAlgorithm solver = [](const BalancedTreeInstance& inst, Execution& exec) {
    Src src(inst, exec);
    return balancedtree_solve(src);
  };
  for (int depth : {6, 8, 10}) {
    const std::int64_t n = (std::int64_t{1} << (depth + 1)) - 1;
    for (const std::int64_t budget : {n / 4, n / 2, std::int64_t{0}}) {
      auto result = duel_balancedtree_volume(solver, depth, budget);
      std::string outcome;
      if (result.algorithm_exceeded_budget) {
        outcome = "needs more volume (consistent with Ω(n))";
      } else if (result.fooled) {
        outcome = "FOOLED (same answer on E(0,0) and E(e_i,e_i))";
      } else {
        outcome = "survived (touched every pair)";
      }
      table.add_row({fmt_int(depth), fmt_int(n),
                     budget == 0 ? "unlimited" : fmt_int(budget), outcome,
                     result.pair_index >= 0 ? fmt_int(result.pair_index) : "-"});
    }
  }
  table.print();
}

void cost_table(JsonReport& report) {
  auto ph = report.phase("cost-curves");
  print_header("§4 — BalancedTree solver costs (Thm. 4.5 shape)");
  stats::Table table({"n", "max distance", "max volume", "log2(n)"});
  Curve dist, vol;
  for (int depth : {7, 9, 11, 13}) {
    auto inst = make_balanced_instance(depth);
    auto starts = sampled_starts(inst.node_count(), 12);
    auto cost = measure(inst.graph, inst.ids, starts, [&](Execution& exec) {
      Src src(inst, exec);
      balancedtree_solve(src);
    });
    dist.add(static_cast<double>(inst.node_count()),
             static_cast<double>(cost.max_distance));
    vol.add(static_cast<double>(inst.node_count()), static_cast<double>(cost.max_volume));
    char logn[32];
    std::snprintf(logn, sizeof logn, "%.1f",
                  std::log2(static_cast<double>(inst.node_count())));
    table.add_row({fmt_int(inst.node_count()), fmt_int(cost.max_distance),
                   fmt_int(cost.max_volume), logn});
  }
  table.print();
  std::printf("fitted: distance %s, volume %s\n", dist.fitted().c_str(),
              vol.fitted().c_str());
  report.add("BalancedTree / D-DIST", dist, "Θ(log n)");
  report.add("BalancedTree / D-VOL", vol, "Θ(n)");
}

void BM_BalancedSolveRoot(benchmark::State& state) {
  auto inst = make_balanced_instance(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Execution exec(inst.graph, inst.ids, 0);
    Src src(inst, exec);
    benchmark::DoNotOptimize(balancedtree_solve(src));
  }
  state.SetLabel("n=" + std::to_string(inst.node_count()));
}
BENCHMARK(BM_BalancedSolveRoot)->Arg(8)->Arg(12);

}  // namespace
}  // namespace volcal::bench

int main(int argc, char** argv) {
  auto args = volcal::bench::Args::parse(&argc, argv, "bench_balancedtree");
  volcal::bench::Observer::install(args, "bench_balancedtree");
  volcal::bench::JsonReport report("bench_balancedtree");
  volcal::bench::embedding_table(report);
  volcal::bench::fooling_table(report);
  volcal::bench::cost_table(report);
  report.write_file(args.json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
