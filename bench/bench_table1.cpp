// Regenerates Table 1: the four complexity measures (R-DIST, D-DIST, R-VOL,
// D-VOL) of the five constructed LCL problems, measured by running the
// paper's own algorithms on the matching instance families and fitting the
// growth class of each curve.
//
// Lower-bound entries that the paper proves via adversaries/embeddings
// (D-VOL of LeafColoring, R-VOL/D-VOL of BalancedTree, D-VOL of the THC
// family) are tight against the matching exhaustive algorithms measured
// here; the interactive adversary demonstrations live in bench_leafcoloring
// and bench_balancedtree.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "labels/generators.hpp"
#include "lcl/algorithms/balanced_tree_algos.hpp"
#include "lcl/algorithms/hh_algos.hpp"
#include "lcl/algorithms/hybrid_algos.hpp"
#include "lcl/algorithms/hthc_algos.hpp"
#include "lcl/algorithms/leaf_coloring_algos.hpp"
#include "lcl/algorithms/local_view.hpp"

namespace volcal::bench {
namespace {

struct Row {
  std::string problem;
  std::string measure;
  std::string paper;
  Curve curve;
  std::string note;
};

void print_rows(const std::vector<Row>& rows) {
  stats::Table table({"Problem", "measure", "paper", "measured sup-cost over n sweep",
                      "fitted", "note"});
  for (const auto& row : rows) {
    std::string sweep;
    for (std::size_t i = 0; i < row.curve.ns.size(); ++i) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%s%.0f:%.0f", i ? " " : "", row.curve.ns[i],
                    row.curve.costs[i]);
      sweep += buf;
    }
    table.add_row({row.problem, row.measure, row.paper, sweep, row.curve.fitted(),
                   row.note});
  }
  table.print();
  // Machine-readable series for downstream plotting.
  if (std::getenv("VOLCAL_CSV") != nullptr) {
    std::printf("\ncsv,problem,measure,n,cost\n");
    for (const auto& row : rows) {
      for (std::size_t i = 0; i < row.curve.ns.size(); ++i) {
        std::printf("csv,%s,%s,%.0f,%.0f\n", row.problem.c_str(), row.measure.c_str(),
                    row.curve.ns[i], row.curve.costs[i]);
      }
    }
  }
}

// --- Row 1: LeafColoring ----------------------------------------------------

void leafcoloring_rows(std::vector<Row>& rows) {
  Curve dist, rvol, dvol;
  for (int depth : {8, 10, 12, 14, 16}) {
    auto inst = make_complete_binary_tree(depth, Color::Red, Color::Blue);
    const double n = static_cast<double>(inst.node_count());
    if (!Args::current().keep_n(inst.node_count())) continue;
    auto starts = sampled_starts(inst.node_count(), 24);
    // Deterministic nearest-leaf (Prop. 3.9): distance O(log n), volume Θ(n)
    // on this hard family — one run feeds both curves.
    auto det = measure(inst.graph, inst.ids, starts, [&](auto& exec) {
      InstanceSource<ColoredTreeLabeling, std::decay_t<decltype(exec)>> src(inst, exec);
      leafcoloring_nearest_leaf(src);
    });
    dist.add(n, static_cast<double>(det.max_distance), det.wall_seconds);
    dvol.add(n, static_cast<double>(det.max_volume), det.wall_seconds);
    // RWtoLeaf (Alg. 1): randomized volume, max over starts and 4 tapes.
    std::int64_t worst = 0;
    double rnd_seconds = 0.0;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      RandomTape tape(inst.ids, seed);
      auto rnd = measure(
          inst.graph, inst.ids, starts,
          [&](auto& exec) {
            InstanceSource<ColoredTreeLabeling, std::decay_t<decltype(exec)>> src(inst, exec);
            rw_to_leaf(src, tape);
          },
          &tape);
      worst = std::max(worst, rnd.max_volume);
      rnd_seconds += rnd.wall_seconds;
    }
    rvol.add(n, static_cast<double>(worst), rnd_seconds);
  }
  rows.push_back({"LeafColoring", "R-DIST = D-DIST", "Θ(log n)", dist, "Prop 3.9"});
  rows.push_back({"LeafColoring", "R-VOL", "Θ(log n)", rvol, "Alg 1 / Prop 3.10"});
  rows.push_back(
      {"LeafColoring", "D-VOL", "Θ(n)", dvol, "Prop 3.13 (adversary: bench_leafcoloring)"});
}

// --- Row 2: BalancedTree -----------------------------------------------------

void balancedtree_rows(std::vector<Row>& rows) {
  Curve dist, vol;
  for (int depth : {7, 9, 11, 13, 15}) {
    auto inst = make_balanced_instance(depth);
    const double n = static_cast<double>(inst.node_count());
    if (!Args::current().keep_n(inst.node_count())) continue;
    auto starts = sampled_starts(inst.node_count(), 16);
    auto cost = measure(inst.graph, inst.ids, starts, [&](auto& exec) {
      InstanceSource<BalancedTreeLabeling, std::decay_t<decltype(exec)>> src(inst, exec);
      balancedtree_solve(src);
    });
    dist.add(n, static_cast<double>(cost.max_distance), cost.wall_seconds);
    vol.add(n, static_cast<double>(cost.max_volume), cost.wall_seconds);
  }
  rows.push_back({"BalancedTree", "R-DIST = D-DIST", "Θ(log n)", dist, "Prop 4.8"});
  rows.push_back({"BalancedTree", "R-VOL = D-VOL", "Θ(n)", vol,
                  "Prop 4.9 (DISJ: bench_balancedtree)"});
}

// --- Rows 3: Hierarchical-THC(k) ----------------------------------------------

void hierarchical_rows(std::vector<Row>& rows, int k) {
  Curve dist, rvol, dvol;
  const std::vector<NodeIndex> bs = k == 2   ? std::vector<NodeIndex>{48, 96, 192, 384, 768}
                                    : k == 3 ? std::vector<NodeIndex>{16, 24, 36, 54, 80}
                                             : std::vector<NodeIndex>{8, 12, 17, 24, 32};
  for (const NodeIndex b : bs) {
    auto inst = make_hierarchical_instance(k, b, 11);
    const double n = static_cast<double>(inst.node_count());
    if (!Args::current().keep_n(inst.node_count())) continue;
    auto starts = sampled_starts(inst.node_count(), 20);
    auto det_cfg = HthcConfig::make(k, inst.node_count(), false, nullptr);
    auto det = measure(inst.graph, inst.ids, starts, [&](auto& exec) {
      InstanceSource<ColoredTreeLabeling, std::decay_t<decltype(exec)>> src(inst, exec);
      HthcSolver<std::decay_t<decltype(src)>> solver(src, det_cfg);
      solver.solve();
    });
    dist.add(n, static_cast<double>(det.max_distance));
    RandomTape tape(inst.ids, 3);
    auto rnd_cfg = HthcConfig::make(k, inst.node_count(), true, &tape);
    auto rnd = measure(
        inst.graph, inst.ids, starts,
        [&](auto& exec) {
          InstanceSource<ColoredTreeLabeling, std::decay_t<decltype(exec)>> src(inst, exec);
          HthcSolver<std::decay_t<decltype(src)>> solver(src, rnd_cfg);
          solver.solve();
        },
        &tape);
    rvol.add(n, static_cast<double>(rnd.max_volume), rnd.wall_seconds);
  }
  // Deterministic volume on the deep-nest hard family (k >= 3; for k = 2 the
  // hardness is adversarial only — see EXPERIMENTS.md).
  if (k >= 3) {
    // Backbones must exceed the 2·n^{1/k} window to be deep: for k = 4 and
    // n ≈ 3b³ that needs b > 48.
    const std::vector<NodeIndex> deep_bs = k == 3 ? std::vector<NodeIndex>{120, 200, 320, 512}
                                                  : std::vector<NodeIndex>{58, 70, 84, 100};
    for (const NodeIndex b : deep_bs) {
      std::vector<NodeIndex> lens(static_cast<std::size_t>(k), b);
      lens.back() = 3;
      auto inst = make_hierarchical_instance_lens(lens, 7);
      const double n = static_cast<double>(inst.node_count());
      if (!Args::current().keep_n(inst.node_count())) continue;
      auto cfg = HthcConfig::make(k, inst.node_count(), false, nullptr);
      if (b <= cfg.window + 1) continue;  // family must be genuinely deep
      // Worst starts sit mid-backbone at level k-1.
      Hierarchy h(inst.graph, inst.labels.tree, k + 1);
      std::vector<NodeIndex> starts;
      for (const auto& bb : h.backbones()) {
        if (bb.level == k - 1 && starts.size() < 4) {
          starts.push_back(bb.nodes[bb.nodes.size() / 2]);
        }
      }
      auto det = measure(inst.graph, inst.ids, starts, [&](auto& exec) {
        InstanceSource<ColoredTreeLabeling, std::decay_t<decltype(exec)>> src(inst, exec);
        HthcSolver<std::decay_t<decltype(src)>> solver(src, cfg);
        solver.solve();
      });
      dvol.add(n, static_cast<double>(det.max_volume));
    }
  }
  const std::string name = "Hierarchical-THC(" + std::to_string(k) + ")";
  const std::string root = "Θ(n^{1/" + std::to_string(k) + "})";
  rows.push_back({name, "R-DIST = D-DIST", root, dist, "Alg 2 / Prop 5.12"});
  rows.push_back({name, "R-VOL", "Θ̃(n^{1/" + std::to_string(k) + "})", rvol,
                  "way-points / Prop 5.14"});
  rows.push_back({name, "D-VOL", "Θ̃(n)", dvol,
                  k >= 3 ? "deep-nest family (static); Ω̃(n) adversarial (Prop 5.20)"
                         : "adversarial only for k=2 (Prop 5.20); see EXPERIMENTS.md"});
}

// --- Row 4: Hybrid-THC(k) ------------------------------------------------------

void hybrid_rows(std::vector<Row>& rows, int k) {
  Curve dist, rvol;
  const std::vector<std::pair<NodeIndex, int>> shapes =
      k == 2 ? std::vector<std::pair<NodeIndex, int>>{{16, 4}, {32, 5}, {64, 6}, {128, 7}, {256, 8}}
             // keep floor size 2^{d+1} ≈ backbone length b ≈ n^{1/3}
             : std::vector<std::pair<NodeIndex, int>>{{8, 2}, {11, 3}, {16, 4}, {23, 4}, {32, 5}};
  for (const auto& [b, d] : shapes) {
    auto inst = make_hybrid_instance(k, b, d, 9);
    const double n = static_cast<double>(inst.node_count());
    if (!Args::current().keep_n(inst.node_count())) continue;
    auto starts = sampled_starts(inst.node_count(), 20);
    // Include the worst-case starts: BalancedTree component roots (their
    // nearest-leaf search spans the whole floor depth).
    {
      Hierarchy h(inst.graph, inst.labels.bal.tree, k + 1, inst.labels.level_in);
      int added = 0;
      for (NodeIndex v = 0; v < inst.node_count() && added < 6; ++v) {
        if (inst.labels.level_in[v] == 2 && h.down(v) != kNoNode) {
          starts.push_back(h.down(v));
          ++added;
        }
      }
    }
    auto cfg = HybridConfig::make(k, inst.node_count());
    auto det = measure(inst.graph, inst.ids, starts, [&](auto& exec) {
      InstanceSource<HybridLabeling, std::decay_t<decltype(exec)>> src(inst, exec);
      hybrid_solve_distance(src, cfg);
    });
    dist.add(n, static_cast<double>(det.max_distance));
    RandomTape tape(inst.ids, 5);
    auto rcfg = HybridConfig::make(k, inst.node_count(), true, &tape);
    auto rnd = measure(
        inst.graph, inst.ids, starts,
        [&](auto& exec) {
          InstanceSource<HybridLabeling, std::decay_t<decltype(exec)>> src(inst, exec);
          hybrid_solve_volume(src, rcfg);
        },
        &tape);
    rvol.add(n, static_cast<double>(rnd.max_volume), rnd.wall_seconds);
  }
  const std::string name = "Hybrid-THC(" + std::to_string(k) + ")";
  rows.push_back({name, "R-DIST = D-DIST", "Θ(log n)", dist, "Thm 6.3"});
  rows.push_back({name, "R-VOL", "Θ̃(n^{1/" + std::to_string(k) + "})", rvol, "Thm 6.3"});
  rows.push_back({name, "D-VOL", "Θ̃(n)", Curve{}, "BalancedTree floors: Prop 4.9"});
}

// --- Row 5: HH-THC(k, ℓ) --------------------------------------------------------

void hh_rows(std::vector<Row>& rows, int k, int l) {
  Curve dist, rvol;
  for (const NodeIndex n_half : {2000, 8000, 32000, 128000}) {
    auto inst = make_hh_instance(k, l, n_half, 13);
    const double n = static_cast<double>(inst.node_count());
    if (!Args::current().keep_n(inst.node_count())) continue;
    auto starts = sampled_starts(inst.node_count(), 20);
    auto cfg = HHConfig::make(k, l, inst.node_count());
    auto det = measure(inst.graph, inst.ids, starts, [&](auto& exec) {
      InstanceSource<HHLabeling, std::decay_t<decltype(exec)>> src(inst, exec);
      hh_solve_distance(src, cfg);
    });
    dist.add(n, static_cast<double>(det.max_distance));
    RandomTape tape(inst.ids, 5);
    auto rcfg = HHConfig::make(k, l, inst.node_count(), true, &tape);
    auto rnd = measure(
        inst.graph, inst.ids, starts,
        [&](auto& exec) {
          InstanceSource<HHLabeling, std::decay_t<decltype(exec)>> src(inst, exec);
          hh_solve_volume(src, rcfg);
        },
        &tape);
    rvol.add(n, static_cast<double>(rnd.max_volume), rnd.wall_seconds);
  }
  const std::string name = "HH-THC(" + std::to_string(k) + "," + std::to_string(l) + ")";
  rows.push_back({name, "R-DIST = D-DIST", "Θ(n^{1/" + std::to_string(l) + "})", dist,
                  "Thm 6.5"});
  rows.push_back({name, "R-VOL", "Θ̃(n^{1/" + std::to_string(k) + "})", rvol, "Thm 6.5"});
  rows.push_back({name, "D-VOL", "Θ̃(n)", Curve{}, "hybrid side floors: Prop 4.9"});
}

}  // namespace
}  // namespace volcal::bench

int main(int argc, char** argv) {
  using namespace volcal::bench;
  auto args = Args::parse(&argc, argv, "bench_table1");
  Observer::install(args, "bench_table1");
  print_header(
      "Table 1 — complexities of the constructed LCLs "
      "(paper claim vs measured sup-cost + fitted growth class)");
  JsonReport report("bench_table1");
  std::vector<Row> rows;
  // One telemetry phase per table row family: the artifact shows where the
  // regeneration time goes.
  { auto p = report.phase("leafcoloring"); leafcoloring_rows(rows); }
  { auto p = report.phase("balancedtree"); balancedtree_rows(rows); }
  {
    auto p = report.phase("hierarchical");
    hierarchical_rows(rows, 2);
    hierarchical_rows(rows, 3);
    hierarchical_rows(rows, 4);
  }
  {
    auto p = report.phase("hybrid");
    hybrid_rows(rows, 2);
    hybrid_rows(rows, 3);
  }
  {
    auto p = report.phase("hh");
    hh_rows(rows, 2, 3);
    hh_rows(rows, 2, 4);
    hh_rows(rows, 3, 4);
  }
  print_rows(rows);
  std::printf(
      "\nNotes: sup-costs over sampled start nodes (root always included);\n"
      "'fitted' is the least-squares growth class over the sweep.  Empty\n"
      "curves mark entries whose hardness is realized adversarially; see the\n"
      "per-section benches and EXPERIMENTS.md.\n");
  for (const auto& row : rows) {
    report.add(row.problem + " / " + row.measure, row.curve, row.paper);
  }
  report.write_file(args.json);
  return 0;
}
