// Section 7.3 benchmarks:
//   * Observation 7.4 — BalancedTree solvable in O(log n) CONGEST rounds with
//     1-bit messages, despite its Ω(n) query lower bound;
//   * Example 7.6 — the two-tree gadget: O(log n) query volume vs Ω(n/B)
//     CONGEST rounds (the root edge is a bandwidth bottleneck).
#include <cmath>
#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "labels/generators.hpp"
#include "lcl/algorithms/congest_algos.hpp"

namespace volcal::bench {
namespace {

void flooding_table(JsonReport& report) {
  auto ph = report.phase("flooding");
  print_header("Obs. 7.4 — BalancedTree defect flooding (CONGEST, B = 1 bit)");
  stats::Table table({"n", "depth", "rounds used", "root informed", "total bits"});
  Curve rounds_c, bits_c;
  for (int depth : {5, 7, 9, 11}) {
    auto inst = make_unbalanced_instance(depth, depth - 1, 3);
    auto result = congest_balancedtree_flood(inst, 1, 4 * depth);
    table.add_row({fmt_int(inst.node_count()), fmt_int(depth),
                   fmt_int(result.stats.rounds),
                   result.defect_below[0] ? "yes" : "NO",
                   fmt_int(result.stats.total_bits)});
    rounds_c.add(static_cast<double>(inst.node_count()),
                 static_cast<double>(result.stats.rounds));
    bits_c.add(static_cast<double>(inst.node_count()),
               static_cast<double>(result.stats.total_bits));
  }
  table.print();
  report.add("BalancedTree flood / CONGEST rounds", rounds_c, "O(log n) (Obs. 7.4)");
  report.add("BalancedTree flood / total bits", bits_c);
  std::printf(
      "\nRounds stay O(depth) = O(log n) while the query model needs Ω(n)\n"
      "volume for the same problem (Prop. 4.9) — the Obs. 7.4 tightness.\n");
}

void leafcoloring_table(JsonReport& report) {
  auto ph = report.phase("convergecast");
  print_header("§7.3 — LeafColoring convergecast: CONGEST rounds track D-DIST, not D-VOL");
  stats::Table table({"n", "rounds (B = 1)", "depth (= D-DIST)", "D-VOL (query)"});
  Curve rounds_c;
  for (int depth : {8, 10, 12, 14}) {
    auto inst = make_complete_binary_tree(depth, Color::Red, Color::Blue);
    auto result = congest_leafcoloring(inst, 1, 4 * depth);
    table.add_row({fmt_int(inst.node_count()),
                   result.all_decided ? fmt_int(result.stats.rounds) : "timeout",
                   fmt_int(depth), fmt_int(inst.node_count())});
    rounds_c.add(static_cast<double>(inst.node_count()),
                 static_cast<double>(result.stats.rounds));
  }
  table.print();
  report.add("LeafColoring convergecast / CONGEST rounds", rounds_c,
             "Θ(depth) = Θ(log n)");
  std::printf(
      "\nOne-bit announcements of the nearest leaf's color converge in depth\n"
      "rounds: CONGEST behaves like distance here, while the query model pays\n"
      "Θ(n) deterministically (Obs. 7.4's ∆^O(T) bound is tight the other way\n"
      "— see the two-tree gadget below).\n");
}

void two_tree_table(JsonReport& report) {
  auto ph = report.phase("two-tree");
  print_header("Example 7.6 — two-tree gadget: query volume vs CONGEST rounds");
  stats::Table table({"n", "leaf bits N", "B", "CONGEST rounds", "N/B floor",
                      "query volume (max leaf)"});
  std::map<int, Curve> rounds_by_b;
  Curve qvol_c;
  for (int depth : {5, 7, 9}) {
    auto gadget = make_two_tree_gadget(depth, 7);
    const auto n = gadget.graph.node_count();
    const auto big_n = static_cast<std::int64_t>(gadget.bits.size());
    // Query side: every u-leaf walks to its mirror.
    std::int64_t max_vol = 0;
    for (std::size_t i = 0; i < gadget.u_leaves.size();
         i += std::max<std::size_t>(1, gadget.u_leaves.size() / 16)) {
      std::int64_t vol = 0;
      query_two_tree_bit(gadget, gadget.u_leaves[i], &vol);
      max_vol = std::max(max_vol, vol);
    }
    qvol_c.add(static_cast<double>(n), static_cast<double>(max_vol));
    for (const int bandwidth : {16, 64, 256}) {
      auto relay = congest_two_tree_relay(gadget, bandwidth, 1 << 18);
      table.add_row({fmt_int(n), fmt_int(big_n), fmt_int(bandwidth),
                     relay.stats.solved ? fmt_int(relay.stats.rounds) : "timeout",
                     fmt_int(big_n * 8 / bandwidth), fmt_int(max_vol)});
      rounds_by_b[bandwidth].add(static_cast<double>(n),
                                 static_cast<double>(relay.stats.rounds));
    }
  }
  table.print();
  report.add("TwoTree / query volume", qvol_c, "O(log n) (Ex. 7.6)");
  for (auto& [bandwidth, curve] : rounds_by_b) {
    report.add("TwoTree / CONGEST rounds (B=" + std::to_string(bandwidth) + ")", curve,
               "Ω(N/B) (Ex. 7.6)");
  }
  std::printf(
      "\nThe query column stays ~2·depth = O(log n); the CONGEST column grows\n"
      "with N/B because every (index, bit) record crosses the single root\n"
      "edge — Example 7.6's exponential gap, and why volume and CONGEST round\n"
      "complexity are incomparable in general (Obs. 7.4/7.5).\n");
}

}  // namespace
}  // namespace volcal::bench

int main(int argc, char** argv) {
  auto args = volcal::bench::Args::parse(&argc, argv, "bench_congest");
  volcal::bench::Observer::install(args, "bench_congest");
  volcal::bench::JsonReport report("bench_congest");
  volcal::bench::flooding_table(report);
  volcal::bench::leafcoloring_table(report);
  volcal::bench::two_tree_table(report);
  report.write_file(args.json);
  return 0;
}
