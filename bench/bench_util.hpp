// Shared measurement helpers for the bench binaries.  Each bench binary
// regenerates one table/figure of the paper: it prints the paper's claimed
// Θ-class next to the measured cost curve and the growth class fitted by
// stats::classify_growth.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "labels/ids.hpp"
#include "runtime/execution.hpp"
#include "stats/growth.hpp"
#include "stats/table.hpp"
#include "util/hash.hpp"

namespace volcal::bench {

struct Cost {
  std::int64_t max_volume = 0;
  std::int64_t max_distance = 0;
  std::int64_t starts = 0;
};

// Evenly spread sample of start nodes (always includes node 0 — the root of
// every generated instance — which is the worst case for the tree families).
inline std::vector<NodeIndex> sampled_starts(NodeIndex n, NodeIndex count) {
  std::vector<NodeIndex> out;
  const NodeIndex step = std::max<NodeIndex>(1, n / std::max<NodeIndex>(1, count));
  for (NodeIndex v = 0; v < n; v += step) out.push_back(v);
  return out;
}

// Runs `solve(Execution&)` from each start and aggregates sup-costs
// (Defs. 2.1-2.2 restricted to the sample).
template <typename Fn>
Cost measure(const Graph& g, const IdAssignment& ids, const std::vector<NodeIndex>& starts,
             Fn&& solve) {
  Cost cost;
  for (const NodeIndex v : starts) {
    Execution exec(g, ids, v);
    solve(exec);
    cost.max_volume = std::max(cost.max_volume, exec.volume());
    cost.max_distance = std::max(cost.max_distance, exec.distance());
    ++cost.starts;
  }
  return cost;
}

struct Curve {
  std::vector<double> ns;
  std::vector<double> costs;

  void add(double n, double cost) {
    ns.push_back(n);
    costs.push_back(cost);
  }
  std::string fitted() const {
    if (ns.size() < 3) return "(n/a)";
    return stats::classify_growth(ns, costs).label;
  }
};

inline std::string fmt_int(std::int64_t v) { return std::to_string(v); }

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace volcal::bench
