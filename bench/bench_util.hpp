// Shared measurement helpers for the bench binaries.  Each bench binary
// regenerates one table/figure of the paper: it prints the paper's claimed
// Θ-class next to the measured cost curve and the growth class fitted by
// stats::classify_growth.
//
// Sweeps run on the parallel flat-scratch engine (runtime/parallel_runner.hpp);
// thread count comes from VOLCAL_THREADS (default 1) and never changes the
// measured costs — the engine's results are bit-identical at any thread count.
//
// Every bench main accepts `--json <path>`: the curves it prints are also
// dumped as a JSON document (per point: n, sup-cost, wall-seconds; per curve:
// the fitted growth class) for downstream plotting.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "labels/ids.hpp"
#include "runtime/parallel_runner.hpp"
#include "stats/growth.hpp"
#include "stats/table.hpp"
#include "util/hash.hpp"

namespace volcal::bench {

struct Cost {
  std::int64_t max_volume = 0;
  std::int64_t max_distance = 0;
  std::int64_t starts = 0;
  std::int64_t total_queries = 0;
  double wall_seconds = 0.0;
};

class WallTimer {
 public:
  WallTimer() : begin_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - begin_).count();
  }

 private:
  std::chrono::steady_clock::time_point begin_;
};

// Evenly spread sample of at most `count` start nodes, always including node
// 0 (the root of every generated instance — the worst case for the tree
// families) and node n-1 (a deepest leaf).
inline std::vector<NodeIndex> sampled_starts(NodeIndex n, NodeIndex count) {
  std::vector<NodeIndex> out;
  if (n <= 0 || count <= 0) return out;
  const NodeIndex k = std::min(n, std::max<NodeIndex>(count, 2));
  out.reserve(static_cast<std::size_t>(k));
  for (NodeIndex i = 0; i < k; ++i) {
    // Endpoint-inclusive linear interpolation: i=0 -> 0, i=k-1 -> n-1.
    const NodeIndex v = (k == 1) ? 0 : static_cast<NodeIndex>(i * (n - 1) / (k - 1));
    if (out.empty() || out.back() != v) out.push_back(v);
  }
  return out;
}

// Runs `solve(Execution&)` from each start on the parallel sweep engine and
// aggregates sup-costs (Defs. 2.1-2.2 restricted to the sample).  `tape`, if
// given, gets per-worker bit-usage accounting; `threads` overrides the
// VOLCAL_THREADS default.
template <typename Fn>
Cost measure(const Graph& g, const IdAssignment& ids, const std::vector<NodeIndex>& starts,
             Fn&& solve, RandomTape* tape = nullptr, int threads = 0) {
  WallTimer timer;
  // The engine wants a Label-returning solver; benches often measure
  // cost-only solvers returning void.
  auto wrapped = [&](Execution& exec) {
    if constexpr (std::is_void_v<std::invoke_result_t<Fn&, Execution&>>) {
      solve(exec);
      return 0;
    } else {
      return solve(exec);
    }
  };
  auto run = ParallelRunner(threads).run_at(g, ids, std::span<const NodeIndex>(starts),
                                            wrapped, /*budget=*/0, tape);
  Cost cost;
  cost.max_volume = run.max_volume;
  cost.max_distance = run.max_distance;
  cost.starts = static_cast<std::int64_t>(starts.size());
  cost.total_queries = run.total_queries;
  cost.wall_seconds = timer.seconds();
  return cost;
}

struct Curve {
  std::vector<double> ns;
  std::vector<double> costs;
  std::vector<double> secs;  // wall seconds per point (0 when unmeasured)

  void add(double n, double cost, double wall_seconds = 0.0) {
    ns.push_back(n);
    costs.push_back(cost);
    secs.push_back(wall_seconds);
  }
  std::string fitted() const {
    if (ns.size() < 3) return "(n/a)";
    return stats::classify_growth(ns, costs).label;
  }
};

inline std::string fmt_int(std::int64_t v) { return std::to_string(v); }

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

// --- JSON report (--json <path>) -------------------------------------------

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes (Θ, …) pass through untouched
        }
    }
  }
  return out;
}

// Returns the argument of `--json <path>` (or `--json=<path>`), else nullptr.
inline const char* json_path_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) return argv[i + 1];
    if (std::strncmp(argv[i], "--json=", 7) == 0) return argv[i] + 7;
  }
  return nullptr;
}

// Collects named curves and serializes them as
//   {"tool": ..., "curves": [{"name", "fitted", "points": [{"n", "cost",
//   "wall_seconds"}]}]}.
class JsonReport {
 public:
  explicit JsonReport(std::string tool) : tool_(std::move(tool)) {}

  void add(std::string name, const Curve& curve) {
    curves_.push_back({std::move(name), curve});
  }

  std::string render() const {
    std::string out = "{\"tool\": \"" + json_escape(tool_) + "\", \"curves\": [";
    for (std::size_t c = 0; c < curves_.size(); ++c) {
      const auto& [name, curve] = curves_[c];
      if (c) out += ", ";
      out += "{\"name\": \"" + json_escape(name) + "\", \"fitted\": \"" +
             json_escape(curve.fitted()) + "\", \"points\": [";
      for (std::size_t i = 0; i < curve.ns.size(); ++i) {
        if (i) out += ", ";
        char buf[128];
        std::snprintf(buf, sizeof buf, "{\"n\": %.0f, \"cost\": %.17g, \"wall_seconds\": %.6g}",
                      curve.ns[i], curve.costs[i], curve.secs[i]);
        out += buf;
      }
      out += "]}";
    }
    out += "]}\n";
    return out;
  }

  // Writes the report if `path` is non-null; announces the file on stdout.
  bool write_file(const char* path) const {
    if (path == nullptr) return false;
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot open %s for writing\n", path);
      return false;
    }
    const std::string doc = render();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::printf("\n[json report: %s]\n", path);
    return true;
  }

 private:
  std::string tool_;
  std::vector<std::pair<std::string, Curve>> curves_;
};

}  // namespace volcal::bench
