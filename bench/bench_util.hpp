// Shared measurement helpers for the bench binaries.  Each bench binary
// regenerates one table/figure of the paper: it prints the paper's claimed
// Θ-class next to the measured cost curve and the growth class fitted by
// stats::classify_growth.
//
// Sweeps run on the parallel flat-scratch engine (runtime/parallel_runner.hpp);
// thread count comes from VOLCAL_THREADS (default 1) and never changes the
// measured costs — the engine's results are bit-identical at any thread count.
//
// Every bench main accepts the shared flag set of bench::Args (--json,
// --trace, --chrome-trace, --metrics, --filter, --max-n, --threads, --cache,
// --backend, --help);
// curves print as tables and dump as JSON, and the observability flags attach
// the obs/ layer (trace sinks + sweep metrics) to every measure() call.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "labels/ids.hpp"
#include "lcl/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "perf/artifact.hpp"
#include "perf/probe.hpp"
#include "runtime/parallel_runner.hpp"
#include "runtime/sweep_stats.hpp"
#include "stats/growth.hpp"
#include "stats/table.hpp"
#include "util/hash.hpp"

namespace volcal::bench {

class WallTimer {
 public:
  WallTimer() : begin_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - begin_).count();
  }

 private:
  std::chrono::steady_clock::time_point begin_;
};

// Evenly spread sample of at most `count` start nodes, always including node
// 0 (the root of every generated instance — the worst case for the tree
// families) and, whenever count >= 2, node n-1 (a deepest leaf).  count == 1
// honors the "at most" contract and returns {0}.
inline std::vector<NodeIndex> sampled_starts(NodeIndex n, NodeIndex count) {
  std::vector<NodeIndex> out;
  if (n <= 0 || count <= 0) return out;
  const NodeIndex k = std::min(n, count);
  out.reserve(static_cast<std::size_t>(k));
  for (NodeIndex i = 0; i < k; ++i) {
    // Endpoint-inclusive linear interpolation: i=0 -> 0, i=k-1 -> n-1.
    const NodeIndex v = (k == 1) ? 0 : static_cast<NodeIndex>(i * (n - 1) / (k - 1));
    if (out.empty() || out.back() != v) out.push_back(v);
  }
  return out;
}

// --- Shared command-line flags (every bench main) ---------------------------

// One parser for all bench binaries.  parse() strips the flags it recognizes
// out of argv (so google-benchmark mains can hand the remainder to
// benchmark::Initialize) and `--threads N` is applied by exporting
// VOLCAL_THREADS before any runner is built.
struct Args {
  const char* json = nullptr;          // --json <path>: curve report
  const char* trace = nullptr;         // --trace <path>: JSONL query trace
  const char* chrome_trace = nullptr;  // --chrome-trace <path>: trace_event
  const char* metrics = nullptr;       // --metrics <path>: SweepMetrics JSON
  std::string filter;                  // --filter <substr>: registry subset
  std::int64_t max_n = 0;              // --max-n <n>: skip larger instances
  int threads = 0;                     // --threads <t>
  const char* cache = nullptr;         // --cache off|perstart|shared
  const char* backend = nullptr;       // --backend basic|batched
  bool help = false;

  bool observing() const {
    return trace != nullptr || chrome_trace != nullptr || metrics != nullptr;
  }
  // true if an instance of this size should be run under --max-n.
  bool keep_n(std::int64_t n) const { return max_n <= 0 || n <= max_n; }

  static void print_help(const char* tool) {
    std::printf(
        "%s — volcal bench binary\n\n"
        "  --json <path>          write the printed curves as a JSON report\n"
        "  --trace <path>         record every query of every measured sweep (JSONL)\n"
        "  --chrome-trace <path>  per-execution timeline in Chrome trace_event format\n"
        "                         (open in chrome://tracing or ui.perfetto.dev)\n"
        "  --metrics <path>       aggregate sweep metrics (histograms, workers) as JSON\n"
        "  --filter <substr>      restrict registry-driven sections to matching entries\n"
        "  --max-n <n>            skip instances larger than n\n"
        "  --threads <t>          worker threads (same as VOLCAL_THREADS=t)\n"
        "  --cache <policy>       ball-view cache: off|perstart|shared\n"
        "                         (same as VOLCAL_CACHE=<policy>)\n"
        "  --backend <backend>    plan execution backend: basic|batched\n"
        "                         (same as VOLCAL_BACKEND=<backend>)\n"
        "  --help                 this message\n\n"
        "Problem registry (--filter matches the first column):\n",
        tool);
    for (const RegistryEntry& e : ProblemRegistry::global().entries()) {
      std::printf("  %-14s %-28s %s\n      %s\n", e.name.c_str(), e.title.c_str(),
                  e.theta.c_str(), e.algorithm.c_str());
    }
  }

  // The last installed Args (default-constructed before any install) — lets
  // helpers deep inside a bench honor --max-n without threading the struct
  // through every table builder.
  static const Args& current() { return mutable_current(); }

  // Explicit lifecycle for the process-wide Args: parse() installs its
  // result, tests that parse several Args sets call reset() (or install a
  // fixture of their own) so state cannot leak between cases.
  static void install(const Args& args) { mutable_current() = args; }
  static void reset() { mutable_current() = Args{}; }

  // Flags may be given as `--flag value` or `--flag=value`.  Unrecognized
  // arguments stay in argv for the binary's own parsing.
  static Args parse(int* argc, char** argv, const char* tool) {
    Args args;
    auto value_of = [&](int& i, const char* name, std::size_t len) -> const char* {
      if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
        return argv[i] + len + 1;
      }
      if (std::strcmp(argv[i], name) == 0 && i + 1 < *argc) return argv[++i];
      return nullptr;
    };
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
      const char* v = nullptr;
      if ((v = value_of(i, "--json", 6)) != nullptr) {
        args.json = v;
      } else if ((v = value_of(i, "--trace", 7)) != nullptr) {
        args.trace = v;
      } else if ((v = value_of(i, "--chrome-trace", 14)) != nullptr) {
        args.chrome_trace = v;
      } else if ((v = value_of(i, "--metrics", 9)) != nullptr) {
        args.metrics = v;
      } else if ((v = value_of(i, "--filter", 8)) != nullptr) {
        args.filter = v;
      } else if ((v = value_of(i, "--max-n", 7)) != nullptr) {
        args.max_n = std::atoll(v);
      } else if ((v = value_of(i, "--threads", 9)) != nullptr) {
        args.threads = std::atoi(v);
      } else if ((v = value_of(i, "--cache", 7)) != nullptr) {
        args.cache = v;
      } else if ((v = value_of(i, "--backend", 9)) != nullptr) {
        args.backend = v;
      } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
        args.help = true;
      } else {
        argv[out++] = argv[i];
      }
    }
    *argc = out;
    argv[out] = nullptr;
    if (args.help) {
      print_help(tool);
      std::exit(0);
    }
    if (args.threads > 0) {
      const std::string t = std::to_string(args.threads);
      setenv("VOLCAL_THREADS", t.c_str(), /*overwrite=*/1);
    }
    if (args.cache != nullptr) {
      CachePolicy parsed = CachePolicy::Off;
      if (!CacheConfig::policy_from_name(args.cache, &parsed)) {
        std::fprintf(stderr, "%s: unknown --cache policy '%s' (off|perstart|shared)\n",
                     tool, args.cache);
        std::exit(2);
      }
      // Exported rather than stored: every ParallelRunner the binary builds
      // picks the policy up through CacheConfig::from_env().
      setenv("VOLCAL_CACHE", args.cache, /*overwrite=*/1);
    }
    if (args.backend != nullptr) {
      ExecBackend parsed = ExecBackend::Batched;
      if (!backend_from_name(args.backend, &parsed)) {
        std::fprintf(stderr, "%s: unknown --backend '%s' (basic|batched)\n", tool,
                     args.backend);
        std::exit(2);
      }
      // Exported like --cache: every runner picks it up via backend_from_env().
      setenv("VOLCAL_BACKEND", args.backend, /*overwrite=*/1);
    }
    install(args);
    return args;
  }

 private:
  static Args& mutable_current() {
    static Args a;
    return a;
  }
};

// --- Observer: attaches the obs/ layer to every measure() call --------------
//
// Installed once per binary from the parsed Args.  While installed, measure()
// profiles every sweep, folds it into one SweepMetrics, and — when a trace
// path was requested and the solver is generic enough to run on
// TracedExecution — records full query traces.  Artifacts are written when
// the (static) observer is destroyed at exit, or on an explicit flush().
class Observer {
 public:
  static Observer* current() { return slot(); }

  static void install(const Args& args, std::string tool) {
    if (!args.observing()) return;
    static Observer holder;
    holder.tool_ = std::move(tool);
    holder.trace_path_ = args.trace != nullptr ? args.trace : "";
    holder.chrome_path_ = args.chrome_trace != nullptr ? args.chrome_trace : "";
    holder.metrics_path_ = args.metrics != nullptr ? args.metrics : "";
    slot() = &holder;
  }

  ~Observer() { flush(); }

  bool tracing() const { return !trace_path_.empty() || !chrome_path_.empty(); }

  void note_traced_sweep(std::int64_t n, std::vector<obs::ExecutionTrace> traces,
                         const SweepProfile* profile,
                         const ProbePlan& plan = ProbePlan::independent()) {
    obs::SweepTrace sweep;
    sweep.label = tool_ + "/sweep-" + std::to_string(sweep_seq_);
    sweep.n = n;
    sweep.plan = plan.name();
    sweep.traces = std::move(traces);
    if (profile != nullptr) sweep.profile = *profile;
    sweeps_.push_back(std::move(sweep));
  }

  template <typename Label>
  void note_metrics(const SweepResult<Label>& run, const SweepProfile* profile,
                    const RandomTape* tape) {
    ++sweep_seq_;
    metrics_.observe(run, profile, tape);
    // Phase accounting: every measured sweep's engine wall time folds into
    // one "sweep" phase, so --metrics shows how much of the binary's runtime
    // the engine itself owns.
    metrics_.phases.add("sweep", run.stats.wall_seconds);
  }

  void flush() {
    if (!trace_path_.empty() && obs::write_trace_jsonl(trace_path_, sweeps_)) {
      std::printf("[trace: %s]\n", trace_path_.c_str());
    }
    if (!chrome_path_.empty() && obs::write_chrome_trace(chrome_path_, sweeps_)) {
      std::printf("[chrome trace: %s]\n", chrome_path_.c_str());
    }
    if (!metrics_path_.empty() && metrics_.write_file(metrics_path_, tool_)) {
      std::printf("[metrics: %s]\n", metrics_path_.c_str());
    }
    trace_path_.clear();
    chrome_path_.clear();
    metrics_path_.clear();
  }

  const obs::SweepMetrics& metrics() const { return metrics_; }

 private:
  static Observer*& slot() {
    static Observer* p = nullptr;
    return p;
  }

  std::string tool_;
  std::string trace_path_;
  std::string chrome_path_;
  std::string metrics_path_;
  std::int64_t sweep_seq_ = 0;
  std::vector<obs::SweepTrace> sweeps_;
  obs::SweepMetrics metrics_;
};

// Runs `solve(exec)` from each start on the parallel sweep engine and
// aggregates sup-costs (Defs. 2.1-2.2 restricted to the sample).  `tape`, if
// given, gets per-worker bit-usage accounting; `threads` overrides the
// VOLCAL_THREADS default.  `plan` is the family's ProbePlan (registry
// entries carry one): batchable plans ride the batched backend when the
// environment allows (--backend / VOLCAL_BACKEND), with identical measured
// costs either way.
//
// Observability: when an Observer is installed, the sweep is profiled and
// folded into its metrics; when tracing was requested *and* the solver is
// invocable on TracedExecution& (write it as a generic lambda
// `[&](auto& exec)` over InstanceSource<Labels, std::decay_t<decltype(exec)>>
// for that), the sweep runs on the recording execution — costs and outputs
// are bit-identical either way.  Solvers hard-typed on Execution& degrade
// gracefully to metrics-only.
template <typename Fn>
SweepStats measure(GraphView g, const IdAssignment& ids,
                   const std::vector<NodeIndex>& starts, Fn&& solve,
                   RandomTape* tape = nullptr, int threads = 0,
                   const ProbePlan& plan = ProbePlan::independent()) {
  Observer* obs = Observer::current();
  ParallelRunner runner(threads);
  SweepProfile profile;
  SweepProfile* prof = obs != nullptr ? &profile : nullptr;
  // The engine wants a Label-returning solver; benches often measure
  // cost-only solvers returning void.
  auto wrapped = [&](auto& exec) {
    using Exec = std::remove_reference_t<decltype(exec)>;
    if constexpr (std::is_void_v<std::invoke_result_t<Fn&, Exec&>>) {
      solve(exec);
      return 0;
    } else {
      return solve(exec);
    }
  };
  if constexpr (std::is_invocable_v<Fn&, obs::TracedExecution&>) {
    if (obs != nullptr && obs->tracing()) {
      obs::TraceRecorder recorder;
      auto run = obs::run_at_traced(runner, g, ids, std::span<const NodeIndex>(starts),
                                    wrapped, recorder, /*budget=*/0, tape, prof);
      run.stats.plan = plan.kind;  // traces must see every query: always basic
      obs->note_traced_sweep(g.node_count(), std::move(recorder.traces()), prof, plan);
      obs->note_metrics(run, prof, tape);
      return run.stats;
    }
  }
  auto run = runner.run_planned(g, ids, std::span<const NodeIndex>(starts), plan, wrapped,
                                /*budget=*/0, tape, prof);
  if (obs != nullptr) obs->note_metrics(run, prof, tape);
  return run.stats;
}

struct Curve {
  std::vector<double> ns;
  std::vector<double> costs;
  std::vector<double> secs;  // wall seconds per point (0 when unmeasured)

  void add(double n, double cost, double wall_seconds = 0.0) {
    ns.push_back(n);
    costs.push_back(cost);
    secs.push_back(wall_seconds);
  }
  // The full fit (label + exponent + r²) — what the JSON report serializes.
  // Below 3 points there is nothing to fit and the label reads "(n/a)".
  stats::GrowthFit fit() const {
    if (ns.size() < 3) {
      stats::GrowthFit none;
      none.label = "(n/a)";
      return none;
    }
    return stats::classify_growth(ns, costs);
  }
  std::string fitted() const { return fit().label; }
};

inline std::string fmt_int(std::int64_t v) { return std::to_string(v); }

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

// --- JSON report (--json <path>) -------------------------------------------

inline std::string json_escape(const std::string& s) { return perf::json_escape(s); }

// Returns the argument of `--json <path>` (or `--json=<path>`), else nullptr.
inline const char* json_path_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) return argv[i + 1];
    if (std::strncmp(argv[i], "--json=", 7) == 0) return argv[i] + 7;
  }
  return nullptr;
}

// The canonical telemetry emitter behind every bench main's --json flag.
// Collects named curves (with the paper's Θ-claim where the caller has one)
// and per-section phase timings, and serializes the versioned
// perf::BenchArtifact schema — env fingerprint, fitted exponent + r² per
// curve, per-phase wall time, allocation counters, and the RSS high-water
// mark ride along with the cost curves.
class JsonReport {
 public:
  explicit JsonReport(std::string tool) : tool_(std::move(tool)) {}

  void add(std::string name, const Curve& curve, std::string claim = "") {
    curves_.push_back({std::move(name), std::move(claim), curve});
  }

  // Section timing: `auto p = report.phase("adversary");` scopes one named
  // phase; re-entering a name accumulates.
  perf::PhaseTimer::Scope phase(std::string name) {
    return phases_.scope(std::move(name));
  }
  perf::PhaseTimer& phases() { return phases_; }

  // Builds the artifact: deterministic content from the registered curves,
  // probes sampled at call time.
  perf::BenchArtifact artifact() const {
    perf::BenchArtifact a;
    a.kind = "bench-report";
    a.tool = tool_;
    for (const auto& [name, claim, curve] : curves_) {
      perf::ArtifactCurve c;
      c.name = name;
      c.claim = claim;
      const stats::GrowthFit fit = curve.fit();
      c.fitted = fit.label;
      c.exponent = fit.exponent;
      c.r_squared = fit.r_squared;
      for (std::size_t i = 0; i < curve.ns.size(); ++i) {
        c.points.push_back({curve.ns[i], curve.costs[i], curve.secs[i]});
      }
      a.curves.push_back(std::move(c));
    }
    a.phases = phases_.phases();
    a.total_wall_seconds = since_construction_.seconds();
    a.stamp_probes(detail::resolve_thread_count(0));
    return a;
  }

  std::string render() const { return artifact().to_json(); }

  // Writes the report if `path` is non-null; announces the file on stdout.
  bool write_file(const char* path) const {
    if (path == nullptr) return false;
    if (!artifact().write_file(path)) return false;
    std::printf("\n[json report: %s]\n", path);
    return true;
  }

 private:
  struct NamedCurve {
    std::string name;
    std::string claim;
    Curve curve;
  };

  std::string tool_;
  std::vector<NamedCurve> curves_;
  perf::PhaseTimer phases_;
  WallTimer since_construction_;
};

}  // namespace volcal::bench
