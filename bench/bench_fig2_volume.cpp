// Regenerates Figure 2: the (preliminary) volume-complexity landscape.
// Classes A and B carry over from distance (measured here); the paper's new
// contribution — the C+D region — is charted by the Figure-3/Table-1 benches.
#include <cstdio>

#include "bench_util.hpp"
#include "labels/generators.hpp"
#include "lcl/algorithms/leaf_coloring_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "lcl/problems/matching.hpp"
#include "lcl/problems/mis.hpp"
#include "lcl/problems/ring_coloring.hpp"

namespace volcal::bench {
namespace {

void run(const Args& args) {
  print_header("Figure 2 — preliminary volume landscape (classes A and B)");
  stats::Table table(
      {"problem", "class", "D-VOL paper", "D-VOL fitted", "R-VOL paper", "R-VOL fitted"});
  JsonReport report("bench_fig2_volume");

  // Class A: volume Θ(1) = distance Θ(1) (the simulation argument of §1.2).
  {
    auto ph = report.phase("degree-parity");
    Curve c;
    for (NodeIndex n : {1 << 10, 1 << 14, 1 << 18}) c.add(static_cast<double>(n), 1.0);
    table.add_row({"DegreeParity", "A", "Θ(1)", c.fitted(), "Θ(1)", c.fitted()});
    report.add("DegreeParity / VOL", c, "Θ(1)");
  }

  // Class B: ring coloring — volume O(log* n) via the Even et al. technique;
  // our Cole-Vishkin port already achieves it (volume = O(1) chain reads).
  {
    auto ph = report.phase("ring-coloring");
    Curve c;
    for (NodeIndex n : {1 << 10, 1 << 14, 1 << 18}) {
      auto ring = make_ring(n, 5);
      auto starts = sampled_starts(n, 10);
      auto cost = measure(ring.graph, ring.ids, starts, [&](Execution& exec) {
        ring_color_cole_vishkin(ring, exec);
      });
      c.add(static_cast<double>(n), static_cast<double>(cost.max_volume), cost.wall_seconds);
    }
    table.add_row(
        {"Ring3Coloring", "B", "Θ(log* n)", c.fitted(), "Θ(log* n)", c.fitted()});
    report.add("Ring3Coloring / VOL", c, "Θ(log* n)");
  }

  // Maximal independent set — the LCA-literature flagship the volume model
  // formalizes; randomized volume is polylog on bounded-degree graphs.
  {
    auto ph = report.phase("mis");
    Curve c;
    for (NodeIndex n : {1 << 10, 1 << 14, 1 << 18}) {
      auto ring = make_ring(n, 9);
      RandomTape tape(ring.ids, 3);
      auto starts = sampled_starts(n, 24);
      auto cost = measure(
          ring.graph, ring.ids, starts,
          [&](Execution& exec) { mis_lca_query(exec, tape); }, &tape);
      c.add(static_cast<double>(n), static_cast<double>(cost.max_volume), cost.wall_seconds);
    }
    table.add_row({"MaximalIndependentSet (rand)", "B-ish", "O(polylog) [39]", c.fitted(),
                   "O(polylog) [39]", c.fitted()});
    report.add("MaximalIndependentSet / R-VOL", c, "O(polylog) [39]");
  }

  {
    auto ph = report.phase("matching");
    Curve c;
    for (NodeIndex n : {1 << 10, 1 << 14, 1 << 18}) {
      auto ring = make_ring(n, 13);
      RandomTape tape(ring.ids, 5);
      auto starts = sampled_starts(n, 24);
      auto cost = measure(
          ring.graph, ring.ids, starts,
          [&](Execution& exec) { matching_lca_query(exec, tape); }, &tape);
      c.add(static_cast<double>(n), static_cast<double>(cost.max_volume), cost.wall_seconds);
    }
    table.add_row({"MaximalMatching (rand)", "B-ish", "O(polylog) [30,31]", c.fitted(),
                   "O(polylog) [30,31]", c.fitted()});
    report.add("MaximalMatching / R-VOL", c, "O(polylog) [30,31]");
  }

  // The C+D region openers: LeafColoring shows the region splits by
  // randomness (D-VOL Θ(n) vs R-VOL Θ(log n)) — the paper's headline.
  {
    auto ph = report.phase("leafcoloring");
    Curve dvol, rvol;
    for (int depth : {9, 12, 15, 17}) {
      auto inst = make_complete_binary_tree(depth, Color::Red, Color::Blue);
      auto starts = sampled_starts(inst.node_count(), 10);
      auto det = measure(inst.graph, inst.ids, starts, [&](Execution& exec) {
        InstanceSource<ColoredTreeLabeling> src(inst, exec);
        leafcoloring_nearest_leaf(src);
      });
      dvol.add(static_cast<double>(inst.node_count()),
               static_cast<double>(det.max_volume));
      RandomTape tape(inst.ids, 3);
      auto rnd = measure(
          inst.graph, inst.ids, starts,
          [&](Execution& exec) {
            InstanceSource<ColoredTreeLabeling> src(inst, exec);
            rw_to_leaf(src, tape);
          },
          &tape);
      rvol.add(static_cast<double>(inst.node_count()),
               static_cast<double>(rnd.max_volume), rnd.wall_seconds);
    }
    table.add_row(
        {"LeafColoring", "C+D", "Θ(n)", dvol.fitted(), "Θ(log n)", rvol.fitted()});
    report.add("LeafColoring / D-VOL", dvol, "Θ(n)");
    report.add("LeafColoring / R-VOL", rvol, "Θ(log n)");
  }
  table.print();
  report.write_file(args.json);
  std::printf(
      "\nClasses A and B coincide for distance and volume (§1.2): the measured\n"
      "volume of the class-B witness stays log*-flat.  Everything at and above\n"
      "Ω(log n) is the open C+D region the rest of the paper charts — see\n"
      "bench_fig3_overview and bench_table1.\n");
}

}  // namespace
}  // namespace volcal::bench

int main(int argc, char** argv) {
  auto args = volcal::bench::Args::parse(&argc, argv, "bench_fig2_volume");
  volcal::bench::Observer::install(args, "bench_fig2_volume");
  volcal::bench::run(args);
  return 0;
}
