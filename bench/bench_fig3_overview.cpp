// Regenerates Figure 3: the contribution overview.  Each constructed LCL is a
// "line" whose left end is its (randomized, deterministic) volume complexity
// and whose right end is its (randomized, deterministic) distance complexity.
// We print one row per problem with all four measured coordinates, so the
// crossovers the figure draws (volume != distance; randomness helps volume
// but not distance) can be read off directly.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "labels/generators.hpp"
#include "lcl/algorithms/balanced_tree_algos.hpp"
#include "lcl/algorithms/hh_algos.hpp"
#include "lcl/algorithms/hthc_algos.hpp"
#include "lcl/algorithms/hybrid_algos.hpp"
#include "lcl/algorithms/leaf_coloring_algos.hpp"
#include "lcl/algorithms/local_view.hpp"

namespace volcal::bench {
namespace {

struct Line {
  std::string problem;
  std::string paper;  // "R-VOL, D-VOL | R-DIST, D-DIST"
  Curve rvol{}, dvol{}, rdist{}, ddist{};
};

void run(const Args& args) {
  JsonReport report("bench_fig3_overview");
  std::vector<Line> lines;

  {  // LeafColoring
    auto ph = report.phase("leafcoloring");
    Line line{"LeafColoring", "log n, n | log n, log n"};
    for (int depth : {9, 12, 15}) {
      auto inst = make_complete_binary_tree(depth, Color::Red, Color::Blue);
      const double n = static_cast<double>(inst.node_count());
      auto starts = sampled_starts(inst.node_count(), 12);
      auto det = measure(inst.graph, inst.ids, starts, [&](auto& exec) {
        InstanceSource<ColoredTreeLabeling, std::decay_t<decltype(exec)>> src(inst, exec);
        leafcoloring_nearest_leaf(src);
      });
      RandomTape tape(inst.ids, 3);
      auto rnd = measure(
          inst.graph, inst.ids, starts,
          [&](auto& exec) {
            InstanceSource<ColoredTreeLabeling, std::decay_t<decltype(exec)>> src(inst, exec);
            rw_to_leaf(src, tape);
          },
          &tape);
      line.ddist.add(n, static_cast<double>(det.max_distance));
      line.rdist.add(n, static_cast<double>(det.max_distance));
      line.dvol.add(n, static_cast<double>(det.max_volume));
      line.rvol.add(n, static_cast<double>(rnd.max_volume));
    }
    lines.push_back(std::move(line));
  }

  {  // BalancedTree
    auto ph = report.phase("balancedtree");
    Line line{"BalancedTree", "n, n | log n, log n"};
    for (int depth : {8, 11, 14}) {
      auto inst = make_balanced_instance(depth);
      const double n = static_cast<double>(inst.node_count());
      auto starts = sampled_starts(inst.node_count(), 10);
      auto cost = measure(inst.graph, inst.ids, starts, [&](auto& exec) {
        InstanceSource<BalancedTreeLabeling, std::decay_t<decltype(exec)>> src(inst, exec);
        balancedtree_solve(src);
      });
      line.ddist.add(n, static_cast<double>(cost.max_distance));
      line.rdist.add(n, static_cast<double>(cost.max_distance));
      line.dvol.add(n, static_cast<double>(cost.max_volume));
      line.rvol.add(n, static_cast<double>(cost.max_volume));
    }
    lines.push_back(std::move(line));
  }

  for (int k : {2, 3}) {  // Hierarchical-THC(k)
    auto ph = report.phase("hierarchical-" + std::to_string(k));
    Line line{"Hierarchical-THC(" + std::to_string(k) + ")",
              "Θ̃(n^{1/k}), Θ̃(n) | n^{1/k}, n^{1/k}"};
    const std::vector<NodeIndex> bs =
        k == 2 ? std::vector<NodeIndex>{96, 256, 640} : std::vector<NodeIndex>{20, 42, 80};
    for (NodeIndex b : bs) {
      auto inst = make_hierarchical_instance(k, b, 7);
      const double n = static_cast<double>(inst.node_count());
      auto starts = sampled_starts(inst.node_count(), 12);
      auto det_cfg = HthcConfig::make(k, inst.node_count(), false, nullptr);
      auto det = measure(inst.graph, inst.ids, starts, [&](auto& exec) {
        InstanceSource<ColoredTreeLabeling, std::decay_t<decltype(exec)>> src(inst, exec);
        HthcSolver<std::decay_t<decltype(src)>> solver(src, det_cfg);
        solver.solve();
      });
      RandomTape tape(inst.ids, 5);
      auto rnd_cfg = HthcConfig::make(k, inst.node_count(), true, &tape);
      auto rnd = measure(
          inst.graph, inst.ids, starts,
          [&](auto& exec) {
            InstanceSource<ColoredTreeLabeling, std::decay_t<decltype(exec)>> src(inst, exec);
            HthcSolver<std::decay_t<decltype(src)>> solver(src, rnd_cfg);
            solver.solve();
          },
          &tape);
      line.ddist.add(n, static_cast<double>(det.max_distance));
      line.rdist.add(n, static_cast<double>(det.max_distance));
      line.dvol.add(n, static_cast<double>(det.max_volume));
      line.rvol.add(n, static_cast<double>(rnd.max_volume));
    }
    lines.push_back(std::move(line));
  }

  {  // Hybrid-THC(2)
    auto ph = report.phase("hybrid");
    Line line{"Hybrid-THC(2)", "Θ̃(n^{1/2}), Θ̃(n) | log n, log n"};
    for (const auto& [b, d] : std::vector<std::pair<NodeIndex, int>>{
             {16, 4}, {32, 5}, {96, 6}, {256, 8}}) {
      auto inst = make_hybrid_instance(2, b, d, 9);
      const double n = static_cast<double>(inst.node_count());
      auto starts = sampled_starts(inst.node_count(), 12);
      {
        Hierarchy h(inst.graph, inst.labels.bal.tree, 3, inst.labels.level_in);
        for (NodeIndex v = 0; v < inst.node_count() && starts.size() < 18u; ++v) {
          if (inst.labels.level_in[v] == 2 && h.down(v) != kNoNode) {
            starts.push_back(h.down(v));
          }
        }
      }
      auto cfg = HybridConfig::make(2, inst.node_count());
      auto det = measure(inst.graph, inst.ids, starts, [&](auto& exec) {
        InstanceSource<HybridLabeling, std::decay_t<decltype(exec)>> src(inst, exec);
        hybrid_solve_distance(src, cfg);
      });
      RandomTape tape(inst.ids, 3);
      auto rcfg = HybridConfig::make(2, inst.node_count(), true, &tape);
      auto rnd = measure(
          inst.graph, inst.ids, starts,
          [&](auto& exec) {
            InstanceSource<HybridLabeling, std::decay_t<decltype(exec)>> src(inst, exec);
            hybrid_solve_volume(src, rcfg);
          },
          &tape);
      line.ddist.add(n, static_cast<double>(det.max_distance));
      line.rdist.add(n, static_cast<double>(det.max_distance));
      // Deterministic volume floor: solving one BalancedTree component
      // exhaustively is forced (Prop. 4.9); its size is ~n^{1/2} per
      // component but Θ(n) worst-case adversarially.
      line.dvol.add(n, static_cast<double>(rnd.max_volume));
      line.rvol.add(n, static_cast<double>(rnd.max_volume));
    }
    lines.push_back(std::move(line));
  }

  {  // HH-THC(2,3)
    auto ph = report.phase("hh");
    Line line{"HH-THC(2,3)", "Θ̃(n^{1/2}), Θ̃(n) | n^{1/3}, n^{1/3}"};
    for (NodeIndex n_half : {4000, 20000, 100000, 500000}) {
      auto inst = make_hh_instance(2, 3, n_half, 13);
      const double n = static_cast<double>(inst.node_count());
      auto starts = sampled_starts(inst.node_count(), 12);
      auto cfg = HHConfig::make(2, 3, inst.node_count());
      auto det = measure(inst.graph, inst.ids, starts, [&](auto& exec) {
        InstanceSource<HHLabeling, std::decay_t<decltype(exec)>> src(inst, exec);
        hh_solve_distance(src, cfg);
      });
      RandomTape tape(inst.ids, 3);
      auto rcfg = HHConfig::make(2, 3, inst.node_count(), true, &tape);
      auto rnd = measure(
          inst.graph, inst.ids, starts,
          [&](auto& exec) {
            InstanceSource<HHLabeling, std::decay_t<decltype(exec)>> src(inst, exec);
            hh_solve_volume(src, rcfg);
          },
          &tape);
      line.ddist.add(n, static_cast<double>(det.max_distance));
      line.rdist.add(n, static_cast<double>(det.max_distance));
      line.dvol.add(n, static_cast<double>(rnd.max_volume));
      line.rvol.add(n, static_cast<double>(rnd.max_volume));
    }
    lines.push_back(std::move(line));
  }

  print_header("Figure 3 — overview: volume endpoints vs distance endpoints");
  stats::Table table({"problem", "paper (R-VOL, D-VOL | R-DIST, D-DIST)", "R-VOL fit",
                      "D-VOL fit", "R-DIST fit", "D-DIST fit"});
  for (const auto& line : lines) {
    table.add_row({line.problem, line.paper, line.rvol.fitted(), line.dvol.fitted(),
                   line.rdist.fitted(), line.ddist.fitted()});
    report.add(line.problem + " / R-VOL", line.rvol, line.paper);
    report.add(line.problem + " / D-VOL", line.dvol, line.paper);
    report.add(line.problem + " / R-DIST", line.rdist, line.paper);
    report.add(line.problem + " / D-DIST", line.ddist, line.paper);
  }
  table.print();
  report.write_file(args.json);
  std::printf(
      "\nReading the lines: LeafColoring separates volume from distance by\n"
      "randomness alone; Hybrid-THC moves the distance endpoint to log n while\n"
      "keeping volume polynomial; HH-THC places the two endpoints at any pair\n"
      "n^{1/k} / n^{1/ℓ}.  D-VOL entries marked by the exhaustive-algorithm\n"
      "upper bound where hardness is adversarial (see EXPERIMENTS.md).\n");
}

}  // namespace
}  // namespace volcal::bench

int main(int argc, char** argv) {
  auto args = volcal::bench::Args::parse(&argc, argv, "bench_fig3_overview");
  volcal::bench::Observer::install(args, "bench_fig3_overview");
  volcal::bench::run(args);
  return 0;
}
