// Section 7.4 benchmarks — flavors of randomness.
//
// The paper distinguishes public / private / secret randomness and gives the
// promise version of LeafColoring as the example where secret randomness
// already helps: with all leaves promised the same color, each node can walk
// down using only its *own* coins and any leaf it hits is the right answer.
// Without the promise, secret-coin walks from different nodes land on
// different leaves and the coordination-free outputs go globally invalid —
// the paper's intuition for why private (shared-on-visit) randomness is the
// right main model.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "labels/generators.hpp"
#include "lcl/algorithms/leaf_coloring_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "lcl/problems/leaf_coloring.hpp"
#include "volcal/runtime.hpp"

namespace volcal::bench {
namespace {

using Src = InstanceSource<ColoredTreeLabeling>;

// Secret-randomness walk: step i of the walk from v0 is decided by r_{v0}(i)
// alone — legal in the secret model, where visited nodes' tapes are opaque.
Color rw_to_leaf_secret(Src& src, RandomTape& tape) {
  TreeView<Src> view(src);
  const NodeIndex v0 = src.start();
  NodeIndex cur = v0;
  std::uint64_t step = 0;
  while (view.internal(cur)) {
    const bool b = tape.bit(v0, v0, step++);
    const NodeIndex next = b ? view.right(cur) : view.left(cur);
    if (next == kNoNode) break;
    cur = next;
  }
  return src.color(cur);
}

void models_table(JsonReport& report) {
  auto ph = report.phase("models");
  print_header("§7.4 — randomness models on LeafColoring (promise vs general)");
  stats::Table table({"instance", "model", "valid runs / trials", "max volume"});
  const int depth = 10;
  const int trials = 16;
  struct Setup {
    const char* name;
    LeafColoringInstance inst;
  };
  Setup setups[] = {
      {"promise (unanimous leaves)",
       make_complete_binary_tree(depth, Color::Red, Color::Blue)},
      {"general (random colors)", make_random_full_binary_tree(2047, 3)},
  };
  LeafColoringProblem problem;
  int setup_idx = 0;  // abscissa for the per-model validity curves
  Curve valid_c[3];
  for (auto& setup : setups) {
    ++setup_idx;
    const auto& inst = setup.inst;
    for (const RandomnessModel model :
         {RandomnessModel::Public, RandomnessModel::Private, RandomnessModel::Secret}) {
      const bool secret = model == RandomnessModel::Secret;
      int valid = 0;
      std::int64_t max_vol = 0;
      for (int t = 0; t < trials; ++t) {
        RandomTape tape(inst.ids, 500 + static_cast<std::uint64_t>(t), model);
        auto result = run_at_all_nodes(inst.graph, inst.ids, [&](Execution& exec) {
          Src src(inst, exec);
          return secret ? rw_to_leaf_secret(src, tape) : rw_to_leaf(src, tape);
        });
        valid += verify_all(problem, inst, result.output).ok ? 1 : 0;
        max_vol = std::max(max_vol, result.stats.max_volume);
      }
      const char* name = model == RandomnessModel::Public    ? "public"
                         : model == RandomnessModel::Private ? "private"
                                                             : "secret";
      table.add_row({setup.name, name,
                     std::to_string(valid) + "/" + std::to_string(trials),
                     fmt_int(max_vol)});
      valid_c[static_cast<int>(model)].add(static_cast<double>(setup_idx),
                                           static_cast<double>(valid));
    }
  }
  table.print();
  report.add("LeafColoring / valid runs (public)",
             valid_c[static_cast<int>(RandomnessModel::Public)], "promise=1, general=2");
  report.add("LeafColoring / valid runs (private)",
             valid_c[static_cast<int>(RandomnessModel::Private)], "promise=1, general=2");
  report.add("LeafColoring / valid runs (secret)",
             valid_c[static_cast<int>(RandomnessModel::Secret)], "promise=1, general=2");
  std::printf(
      "\nPromise LeafColoring: both models succeed with O(log n) volume —\n"
      "secret coins suffice because any leaf answers.  General LeafColoring:\n"
      "the private model's walks coalesce (they reread the *same* bit at each\n"
      "node, Alg. 1) and stay valid; secret-coin walks diverge and the global\n"
      "output goes invalid — no non-promise LCL separating secret randomness\n"
      "from determinism is known (open per §7.4).\n");
}

void enforcement_demo(JsonReport& report) {
  auto ph = report.phase("enforcement");
  print_header("§7.4 — model enforcement: cross-node tape reads are rejected");
  auto inst = make_complete_binary_tree(4, Color::Red, Color::Blue);
  RandomTape secret(inst.ids, 1, RandomnessModel::Secret);
  Execution exec(inst.graph, inst.ids, 0);
  Src src(inst, exec);
  bool rejected = false;
  try {
    rw_to_leaf(src, secret);  // Alg. 1 reads visited nodes' tapes: illegal here
  } catch (const std::logic_error&) {
    rejected = true;
  }
  std::printf("Algorithm 1 under a secret tape: %s\n",
              rejected ? "rejected (cross-node read caught)" : "NOT rejected (bug!)");
  // Public model: every node sees one shared string.
  RandomTape pub(inst.ids, 1, RandomnessModel::Public);
  const bool same = pub.bit(0, 0, 0) == pub.bit(3, 3, 0) && pub.bit(0, 0, 1) == pub.bit(5, 5, 1);
  std::printf("Public model shares one tape across nodes: %s\n", same ? "yes" : "NO");
}

void bit_budget_table(JsonReport& report) {
  auto ph = report.phase("bit-budget");
  print_header("§7.4 / §2.2 footnote — bits consumed per node (sequential access)");
  stats::Table table({"n", "max bits used on any node's string", "note"});
  Curve bits_c;
  for (int depth : {8, 12, 16}) {
    auto inst = make_complete_binary_tree(depth, Color::Red, Color::Blue);
    RandomTape tape(inst.ids, 9);
    for (NodeIndex v : sampled_starts(inst.node_count(), 64)) {
      Execution exec(inst.graph, inst.ids, v);
      Src src(inst, exec);
      rw_to_leaf(src, tape);
    }
    table.add_row({fmt_int(inst.node_count()),
                   fmt_int(static_cast<std::int64_t>(tape.max_bits_used_anywhere())),
                   "Alg. 1 reads one bit per node: b is O(1), satisfying the model's"
                   " bounded-bits assumption"});
    bits_c.add(static_cast<double>(inst.node_count()),
               static_cast<double>(tape.max_bits_used_anywhere()));
  }
  table.print();
  report.add("RandomTape / max bits per node", bits_c, "O(1) (§2.2 fn. 1)");
}

}  // namespace
}  // namespace volcal::bench

int main(int argc, char** argv) {
  auto args = volcal::bench::Args::parse(&argc, argv, "bench_randomness_models");
  volcal::bench::Observer::install(args, "bench_randomness_models");
  volcal::bench::JsonReport report("bench_randomness_models");
  volcal::bench::models_table(report);
  volcal::bench::enforcement_demo(report);
  volcal::bench::bit_budget_table(report);
  report.write_file(args.json);
  return 0;
}
