// Engine throughput: whole-graph sweeps on the historical map-based
// Execution (serial) vs the flat epoch-stamped Execution, serial and
// parallel (runtime/parallel_runner.hpp).
//
// All engines compute identical results — asserted below per workload — so
// the only thing that varies is wall time.  Two workloads on complete binary
// trees:
//   * ball     — explore_ball(r) from every node: the pure engine loop
//                (query + stamp + layer), no solver logic on top;
//   * nearleaf — Prop. 3.9 nearest-leaf from every node: a real Table-1
//                solver with label reads through InstanceSource.
//
// Usage: bench_runner [bench::Args flags; see --help].  Thread counts for the parallel rows
// are fixed at 2/4/8 (on a single-core host they measure scheduling overhead,
// not speedup; the flat-vs-map row is the hardware-independent headline).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "labels/generators.hpp"
#include "lcl/algorithms/leaf_coloring_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "runtime/reference_execution.hpp"

namespace volcal::bench {
namespace {

struct SweepCost {
  std::int64_t max_volume = 0;
  std::int64_t max_distance = 0;
  std::int64_t total_volume = 0;  // visited nodes summed over starts
  double seconds = 0.0;

  bool same_costs(const SweepCost& other) const {
    return max_volume == other.max_volume && max_distance == other.max_distance &&
           total_volume == other.total_volume;
  }
};

// Serial sweep on the historical unordered_map Execution: one map allocation
// and O(volume) rehashing per start node.
template <typename Fn>
SweepCost sweep_map(const Graph& g, const IdAssignment& ids,
                    const std::vector<NodeIndex>& starts, Fn&& solve) {
  WallTimer timer;
  SweepCost cost;
  for (const NodeIndex v : starts) {
    ReferenceMapExecution exec(g, ids, v);
    solve(exec);
    cost.max_volume = std::max(cost.max_volume, exec.volume());
    cost.max_distance = std::max(cost.max_distance, exec.distance());
    cost.total_volume += exec.volume();
  }
  cost.seconds = timer.seconds();
  return cost;
}

template <typename Fn>
SweepCost sweep_flat(const Graph& g, const IdAssignment& ids,
                     const std::vector<NodeIndex>& starts, Fn&& solve, int threads) {
  WallTimer timer;
  auto run = ParallelRunner(threads).run_at(g, ids, std::span<const NodeIndex>(starts),
                                            [&](Execution& exec) {
                                              solve(exec);
                                              return 0;
                                            });
  SweepCost cost;
  cost.max_volume = run.stats.max_volume;
  cost.max_distance = run.stats.max_distance;
  cost.total_volume = run.stats.total_volume;
  cost.seconds = timer.seconds();
  return cost;
}

struct EngineRow {
  std::string engine;
  SweepCost cost;
};

template <typename FlatFn, typename MapFn>
void run_workload(const std::string& workload, const Graph& g, const IdAssignment& ids,
                  const std::vector<NodeIndex>& starts, int repeats, FlatFn&& flat_solve,
                  MapFn&& map_solve, stats::Table& table, JsonReport& report) {
  auto ph = report.phase(workload);
  const double n = static_cast<double>(g.node_count());
  const double total_starts = static_cast<double>(starts.size()) * repeats;
  auto repeat = [&](auto&& sweep) {
    SweepCost cost = sweep();
    for (int r = 1; r < repeats; ++r) {
      const SweepCost again = sweep();
      cost.seconds += again.seconds;
      cost.total_volume += again.total_volume;
    }
    return cost;
  };
  std::vector<EngineRow> rows;
  rows.push_back({"map x1", repeat([&] { return sweep_map(g, ids, starts, map_solve); })});
  for (const int threads : {1, 2, 4, 8}) {
    rows.push_back({"flat x" + std::to_string(threads),
                    repeat([&] { return sweep_flat(g, ids, starts, flat_solve, threads); })});
  }
  const SweepCost& base = rows.front().cost;
  for (const auto& row : rows) {
    if (!row.cost.same_costs(base)) {
      std::fprintf(stderr, "FATAL: engine '%s' diverged from the map reference on %s\n",
                   row.engine.c_str(), workload.c_str());
      std::exit(1);
    }
    char starts_s[32], nodes_s[32], speedup[32];
    std::snprintf(starts_s, sizeof starts_s, "%.0f", total_starts / row.cost.seconds);
    std::snprintf(nodes_s, sizeof nodes_s, "%.3g",
                  static_cast<double>(row.cost.total_volume) / row.cost.seconds);
    std::snprintf(speedup, sizeof speedup, "%.2fx", base.seconds / row.cost.seconds);
    table.add_row({workload, fmt_int(static_cast<std::int64_t>(n)), row.engine, starts_s,
                   nodes_s, speedup});
    Curve c;
    c.add(n, static_cast<double>(row.cost.total_volume) / row.cost.seconds,
          row.cost.seconds);
    report.add(workload + " / " + row.engine, c);
  }
}

void run(const Args& args) {
  print_header("Sweep-engine throughput: map-based vs flat-scratch vs parallel");
  stats::Table table({"workload", "n", "engine", "starts/s", "visited nodes/s", "speedup"});
  JsonReport report("bench_runner");
  for (const int depth : {12, 14, 15}) {
    auto inst = make_complete_binary_tree(depth, Color::Red, Color::Blue);
    if (!args.keep_n(inst.node_count())) continue;
    // All-nodes ball sweep: the pure engine loop.
    std::vector<NodeIndex> all(static_cast<std::size_t>(inst.node_count()));
    for (NodeIndex v = 0; v < inst.node_count(); ++v) all[static_cast<std::size_t>(v)] = v;
    run_workload(
        "ball(r=6)", inst.graph, inst.ids, all, /*repeats=*/1,
        [](Execution& exec) { explore_ball(exec, 6); },
        [](ReferenceMapExecution& exec) { explore_ball(exec, 6); }, table, report);
    // Whole-graph nearest-leaf sweep: a real Table-1 solver from every node,
    // mostly small executions — the sweep regime the flat scratch targets.
    run_workload(
        "nearleaf/all", inst.graph, inst.ids, all, /*repeats=*/1,
        [&](Execution& exec) {
          InstanceSource<ColoredTreeLabeling> src(inst, exec);
          leafcoloring_nearest_leaf(src);
        },
        [&](ReferenceMapExecution& exec) {
          InstanceSource<ColoredTreeLabeling, ReferenceMapExecution> src(inst, exec);
          leafcoloring_nearest_leaf(src);
        },
        table, report);
    // The Table-1 row-1 sampled sweep: 24 starts including the root, whose
    // execution visits Θ(n) nodes — large resident visited sets, the regime
    // where per-query lookup cost (hash vs array) is the whole difference.
    run_workload(
        "nearleaf/t1", inst.graph, inst.ids, sampled_starts(inst.node_count(), 24),
        /*repeats=*/4,
        [&](Execution& exec) {
          InstanceSource<ColoredTreeLabeling> src(inst, exec);
          leafcoloring_nearest_leaf(src);
        },
        [&](ReferenceMapExecution& exec) {
          InstanceSource<ColoredTreeLabeling, ReferenceMapExecution> src(inst, exec);
          leafcoloring_nearest_leaf(src);
        },
        table, report);
  }
  table.print();
  std::printf(
      "\nAll engines produced identical sup-costs and total visited nodes\n"
      "(verified per row).  'speedup' is wall-time vs the serial map engine\n"
      "on the same workload; thread rows only help on multi-core hosts.\n"
      "The flat scratch shines on sweeps of many small executions (ball,\n"
      "nearleaf/all — the run_at_all_nodes regime); on single Θ(n)-volume\n"
      "executions (nearleaf/t1 root start) both engines are memory-bound and\n"
      "the gap narrows to the per-lookup hash-vs-array difference.\n");
  report.write_file(args.json);
}

}  // namespace
}  // namespace volcal::bench

int main(int argc, char** argv) {
  auto args = volcal::bench::Args::parse(&argc, argv, "bench_runner");
  volcal::bench::Observer::install(args, "bench_runner");
  volcal::bench::run(args);
  return 0;
}
