// Engine throughput: whole-graph sweeps on the historical map-based
// Execution (serial) vs the flat epoch-stamped Execution, serial and
// parallel (runtime/parallel_runner.hpp).
//
// All engines compute identical results — asserted below per workload — so
// the only thing that varies is wall time.  Two workloads on complete binary
// trees:
//   * ball     — explore_ball(r) from every node: the pure engine loop
//                (query + stamp + layer), no solver logic on top;
//   * nearleaf — Prop. 3.9 nearest-leaf from every node: a real Table-1
//                solver with label reads through InstanceSource.
//
// Usage: bench_runner [bench::Args flags; see --help].  Thread counts for the parallel rows
// are fixed at 2/4/8 (on a single-core host they measure scheduling overhead,
// not speedup; the flat-vs-map row is the hardware-independent headline).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "labels/generators.hpp"
#include "lcl/algorithms/leaf_coloring_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "runtime/reference_execution.hpp"
#include "util/hash.hpp"

namespace volcal::bench {
namespace {

struct SweepCost {
  std::int64_t max_volume = 0;
  std::int64_t max_distance = 0;
  std::int64_t total_volume = 0;  // visited nodes summed over starts
  double seconds = 0.0;

  bool same_costs(const SweepCost& other) const {
    return max_volume == other.max_volume && max_distance == other.max_distance &&
           total_volume == other.total_volume;
  }
};

// Serial sweep on the historical unordered_map Execution: one map allocation
// and O(volume) rehashing per start node.
template <typename Fn>
SweepCost sweep_map(const Graph& g, const IdAssignment& ids,
                    const std::vector<NodeIndex>& starts, Fn&& solve) {
  WallTimer timer;
  SweepCost cost;
  for (const NodeIndex v : starts) {
    ReferenceMapExecution exec(g, ids, v);
    solve(exec);
    cost.max_volume = std::max(cost.max_volume, exec.volume());
    cost.max_distance = std::max(cost.max_distance, exec.distance());
    cost.total_volume += exec.volume();
  }
  cost.seconds = timer.seconds();
  return cost;
}

template <typename Fn>
SweepCost sweep_flat(const Graph& g, const IdAssignment& ids,
                     const std::vector<NodeIndex>& starts, Fn&& solve, int threads) {
  WallTimer timer;
  auto run = ParallelRunner(threads).run_at(g, ids, std::span<const NodeIndex>(starts),
                                            [&](Execution& exec) {
                                              solve(exec);
                                              return 0;
                                            });
  SweepCost cost;
  cost.max_volume = run.stats.max_volume;
  cost.max_distance = run.stats.max_distance;
  cost.total_volume = run.stats.total_volume;
  cost.seconds = timer.seconds();
  return cost;
}

struct EngineRow {
  std::string engine;
  SweepCost cost;
};

// One plan-dispatched sweep under an explicit (cache policy, backend) pair,
// keeping the aggregate stats (hit/miss and batch counters), the optional
// profile (per-worker batch occupancy) and the per-start outputs (for the
// divergence check).
template <typename Fn>
SweepCost sweep_policy(const Graph& g, const IdAssignment& ids,
                       const std::vector<NodeIndex>& starts, Fn&& solve, int threads,
                       CachePolicy policy, ExecBackend backend, const ProbePlan& plan,
                       SweepStats* stats_out, SweepProfile* profile_out,
                       std::vector<int>* output_out) {
  CacheConfig cfg;
  cfg.policy = policy;
  ParallelRunner runner(threads, cfg);
  runner.set_backend(backend);
  WallTimer timer;
  auto run = runner.run_planned(g, ids, std::span<const NodeIndex>(starts), plan,
                                [&](Execution& exec) { return solve(exec); },
                                /*budget=*/0, /*tape=*/nullptr, profile_out);
  SweepCost cost;
  cost.max_volume = run.stats.max_volume;
  cost.max_distance = run.stats.max_distance;
  cost.total_volume = run.stats.total_volume;
  cost.seconds = timer.seconds();
  if (stats_out != nullptr) *stats_out = run.stats;
  if (output_out != nullptr) *output_out = std::move(run.output);
  return cost;
}

struct AblationRow {
  ExecBackend backend;
  CachePolicy policy;
  int threads;
  SweepCost cost;
  SweepStats stats;
  SweepProfile profile;
  std::vector<int> output;
};

std::string row_engine(const AblationRow& row) {
  return std::string(cache_policy_name(row.policy)) + " x" + std::to_string(row.threads) +
         (row.backend == ExecBackend::Batched ? "/batched" : "");
}

// Runs the {backend} x {threads} x {policy} grid of one ball workload,
// verifying every row bit-identical against the first (basic / off / serial)
// and emitting one table row + one report curve per cell.
template <typename Fn>
std::vector<AblationRow> run_ablation_rows(
    const Graph& g, const IdAssignment& ids, const std::vector<NodeIndex>& starts,
    Fn&& solve, const ProbePlan& plan, std::initializer_list<CachePolicy> policies,
    int repeats, const char* workload, stats::Table& table, JsonReport& report,
    const char* report_prefix) {
  std::vector<AblationRow> rows;
  for (const ExecBackend backend : {ExecBackend::Basic, ExecBackend::Batched}) {
    for (const int threads : {1, 8}) {
      for (const CachePolicy policy : policies) {
        AblationRow row{backend, policy, threads, {}, {}, {}, {}};
        row.cost = sweep_policy(g, ids, starts, solve, threads, policy, backend, plan,
                                &row.stats, &row.profile, &row.output);
        for (int r = 1; r < repeats; ++r) {
          const SweepCost again = sweep_policy(g, ids, starts, solve, threads, policy,
                                               backend, plan, nullptr, nullptr, nullptr);
          row.cost.seconds += again.seconds;
          row.cost.total_volume += again.total_volume;
        }
        rows.push_back(std::move(row));
      }
    }
  }
  const AblationRow& base = rows.front();  // basic / off / x1
  const double total_starts = static_cast<double>(starts.size()) * repeats;
  for (const AblationRow& row : rows) {
    if (!row.cost.same_costs(base.cost) || row.output != base.output) {
      std::fprintf(stderr, "FATAL: '%s' diverged from the basic uncached sweep on %s\n",
                   row_engine(row).c_str(), workload);
      std::exit(1);
    }
    char starts_s[32], nodes_s[32], speedup[32];
    std::snprintf(starts_s, sizeof starts_s, "%.0f", total_starts / row.cost.seconds);
    std::snprintf(nodes_s, sizeof nodes_s, "%.3g",
                  static_cast<double>(row.cost.total_volume) / row.cost.seconds);
    std::snprintf(speedup, sizeof speedup, "%.2fx", base.cost.seconds / row.cost.seconds);
    table.add_row({workload, fmt_int(static_cast<std::int64_t>(g.node_count())),
                   row_engine(row), starts_s, nodes_s, speedup});
    Curve c;
    c.add(static_cast<double>(g.node_count()),
          static_cast<double>(row.cost.total_volume) / row.cost.seconds, row.cost.seconds);
    report.add(std::string(report_prefix) + " / " + row_engine(row), c);
  }
  return rows;
}

const AblationRow* find_row(const std::vector<AblationRow>& rows, ExecBackend backend,
                            CachePolicy policy, int threads) {
  for (const AblationRow& row : rows) {
    if (row.backend == backend && row.policy == policy && row.threads == threads) {
      return &row;
    }
  }
  return nullptr;
}

// Per-worker batch occupancy of one batched row: starts per wave is the
// amortization factor — how many balls each union-frontier wave advanced.
void print_batch_occupancy(const AblationRow& row) {
  std::printf("  %s per-worker batch occupancy:", row_engine(row).c_str());
  for (std::size_t w = 0; w < row.profile.worker_batches.size(); ++w) {
    const double waves = static_cast<double>(row.profile.worker_waves[w]);
    const double occupancy =
        waves > 0.0 ? static_cast<double>(row.profile.worker_batched_starts[w]) / waves : 0.0;
    std::printf(" w%zu=%.1f", w, occupancy);
  }
  std::printf(" starts/wave (batches=%lld starts=%lld waves=%lld)\n",
              static_cast<long long>(row.stats.batch.batches),
              static_cast<long long>(row.stats.batch.batched_starts),
              static_cast<long long>(row.stats.batch.waves));
}

// View-cache ablation on the serving workload the shared cache targets:
// starts drawn from a small hot set of centers, so whole balls repeat across
// starts.  Off rebuilds every ball; Shared builds each distinct ball once and
// serves every repeat as a prefix install.  Outputs and cost meters must be
// bit-identical across policies — only wall time may move.
void run_cache_ablation(const Args& args, stats::Table& table, JsonReport& report) {
  const auto inst = make_complete_binary_tree(15, Color::Red, Color::Blue);  // 2^16 - 1
  if (!args.keep_n(inst.node_count())) return;
  auto ph = report.phase("cache-ablation");
  constexpr std::size_t kHotCenters = 256;
  constexpr std::size_t kStarts = 32768;
  constexpr int kRadius = 6;
  constexpr int kRepeats = 2;
  std::vector<NodeIndex> hot(kHotCenters);
  for (std::size_t j = 0; j < kHotCenters; ++j) {
    hot[j] = static_cast<NodeIndex>(mix64(0x686f74ull /* "hot" */, j) %
                                    static_cast<std::uint64_t>(inst.node_count()));
  }
  std::vector<NodeIndex> starts(kStarts);
  for (std::size_t i = 0; i < kStarts; ++i) {
    starts[i] = hot[mix64(0x73727665ull /* "srve" */, i) % kHotCenters];
  }
  auto solve = [](Execution& exec) { return static_cast<int>(explore_ball(exec, kRadius).size()); };

  const std::vector<AblationRow> rows = run_ablation_rows(
      inst.graph, inst.ids, starts, solve, ProbePlan::batched_ball(kRadius),
      {CachePolicy::Off, CachePolicy::PerStart, CachePolicy::Shared}, kRepeats,
      "ball(r=6)/hot", table, report, "cache-ablation");
  const AblationRow* off8 = find_row(rows, ExecBackend::Basic, CachePolicy::Off, 8);
  const AblationRow* shared8 = find_row(rows, ExecBackend::Basic, CachePolicy::Shared, 8);
  const double gain = off8->cost.seconds / shared8->cost.seconds;
  std::printf(
      "\ncache ablation (ball(r=%d), %zu starts over %zu hot centers, n=%lld):\n"
      "  shared x8: hits=%lld misses=%lld served_nodes=%lld\n"
      "  shared x8 vs off x8: %.2fx (target >= 3x: %s)\n",
      kRadius, kStarts, kHotCenters, static_cast<long long>(inst.node_count()),
      static_cast<long long>(shared8->stats.cache.hits),
      static_cast<long long>(shared8->stats.cache.misses),
      static_cast<long long>(shared8->stats.cache.served_nodes), gain,
      gain >= 3.0 ? "MET" : "MISSED");
  // The hot-set workload is the cache's regime, not the batched backend's:
  // repeats are served from the shared cache and only the distinct centers
  // batch, so occupancy here shows the serve/batch composition.
  print_batch_occupancy(*find_row(rows, ExecBackend::Batched, CachePolicy::Off, 8));
  print_batch_occupancy(*find_row(rows, ExecBackend::Batched, CachePolicy::Shared, 8));
}

// Backend ablation on the whole-graph ball sweep — every start distinct, so
// the shared cache cannot serve within the sweep and the batched backend's
// fused wave traversal is the only lever.  This is the >= 2x headline the
// per-backend baselines (bench/baselines-batched/) pin in CI.
void run_backend_ablation(const Args& args, stats::Table& table, JsonReport& report) {
  const auto inst = make_complete_binary_tree(15, Color::Red, Color::Blue);  // 2^16 - 1
  if (!args.keep_n(inst.node_count())) return;
  auto ph = report.phase("backend-ablation");
  constexpr int kRadius = 6;
  constexpr int kRepeats = 2;
  std::vector<NodeIndex> all(static_cast<std::size_t>(inst.node_count()));
  for (NodeIndex v = 0; v < inst.node_count(); ++v) all[static_cast<std::size_t>(v)] = v;
  auto solve = [](Execution& exec) { return static_cast<int>(explore_ball(exec, kRadius).size()); };

  const std::vector<AblationRow> rows = run_ablation_rows(
      inst.graph, inst.ids, all, solve, ProbePlan::batched_ball(kRadius),
      {CachePolicy::Off, CachePolicy::Shared}, kRepeats, "ball(r=6)/all", table, report,
      "backend-ablation");
  // Two comparisons: same-config (the backend's own instruction-count win,
  // thread-invariant) and vs the shared-cache serving config at 8 threads —
  // the previous best lever, which cannot help a whole-graph sweep (every
  // center distinct, so it pays store overhead for zero hits).
  const AblationRow* basic_off1 = find_row(rows, ExecBackend::Basic, CachePolicy::Off, 1);
  const AblationRow* batched_off1 = find_row(rows, ExecBackend::Batched, CachePolicy::Off, 1);
  const AblationRow* basic_off8 = find_row(rows, ExecBackend::Basic, CachePolicy::Off, 8);
  const AblationRow* basic_shared8 =
      find_row(rows, ExecBackend::Basic, CachePolicy::Shared, 8);
  const AblationRow* batched_off8 = find_row(rows, ExecBackend::Batched, CachePolicy::Off, 8);
  const double serial_gain = basic_off1->cost.seconds / batched_off1->cost.seconds;
  const double gain8 = basic_off8->cost.seconds / batched_off8->cost.seconds;
  const double vs_serving = basic_shared8->cost.seconds / batched_off8->cost.seconds;
  std::printf(
      "\nbackend ablation (ball(r=%d), whole graph, n=%lld):\n"
      "  batched off x1 vs basic off x1: %.2fx\n"
      "  batched off x8 vs basic off x8: %.2fx\n"
      "  batched off x8 vs basic shared x8 (the serving-config lever): %.2fx "
      "(target >= 2x: %s)\n",
      kRadius, static_cast<long long>(inst.node_count()), serial_gain, gain8, vs_serving,
      vs_serving >= 2.0 ? "MET" : "MISSED");
  print_batch_occupancy(*batched_off8);
}

template <typename FlatFn, typename MapFn>
void run_workload(const std::string& workload, const Graph& g, const IdAssignment& ids,
                  const std::vector<NodeIndex>& starts, int repeats, FlatFn&& flat_solve,
                  MapFn&& map_solve, stats::Table& table, JsonReport& report) {
  auto ph = report.phase(workload);
  const double n = static_cast<double>(g.node_count());
  const double total_starts = static_cast<double>(starts.size()) * repeats;
  auto repeat = [&](auto&& sweep) {
    SweepCost cost = sweep();
    for (int r = 1; r < repeats; ++r) {
      const SweepCost again = sweep();
      cost.seconds += again.seconds;
      cost.total_volume += again.total_volume;
    }
    return cost;
  };
  std::vector<EngineRow> rows;
  rows.push_back({"map x1", repeat([&] { return sweep_map(g, ids, starts, map_solve); })});
  for (const int threads : {1, 2, 4, 8}) {
    rows.push_back({"flat x" + std::to_string(threads),
                    repeat([&] { return sweep_flat(g, ids, starts, flat_solve, threads); })});
  }
  const SweepCost& base = rows.front().cost;
  for (const auto& row : rows) {
    if (!row.cost.same_costs(base)) {
      std::fprintf(stderr, "FATAL: engine '%s' diverged from the map reference on %s\n",
                   row.engine.c_str(), workload.c_str());
      std::exit(1);
    }
    char starts_s[32], nodes_s[32], speedup[32];
    std::snprintf(starts_s, sizeof starts_s, "%.0f", total_starts / row.cost.seconds);
    std::snprintf(nodes_s, sizeof nodes_s, "%.3g",
                  static_cast<double>(row.cost.total_volume) / row.cost.seconds);
    std::snprintf(speedup, sizeof speedup, "%.2fx", base.seconds / row.cost.seconds);
    table.add_row({workload, fmt_int(static_cast<std::int64_t>(n)), row.engine, starts_s,
                   nodes_s, speedup});
    Curve c;
    c.add(n, static_cast<double>(row.cost.total_volume) / row.cost.seconds,
          row.cost.seconds);
    report.add(workload + " / " + row.engine, c);
  }
}

void run(const Args& args) {
  print_header("Sweep-engine throughput: map-based vs flat-scratch vs parallel");
  stats::Table table({"workload", "n", "engine", "starts/s", "visited nodes/s", "speedup"});
  JsonReport report("bench_runner");
  for (const int depth : {12, 14, 15}) {
    auto inst = make_complete_binary_tree(depth, Color::Red, Color::Blue);
    if (!args.keep_n(inst.node_count())) continue;
    // All-nodes ball sweep: the pure engine loop.
    std::vector<NodeIndex> all(static_cast<std::size_t>(inst.node_count()));
    for (NodeIndex v = 0; v < inst.node_count(); ++v) all[static_cast<std::size_t>(v)] = v;
    run_workload(
        "ball(r=6)", inst.graph, inst.ids, all, /*repeats=*/1,
        [](Execution& exec) { explore_ball(exec, 6); },
        [](ReferenceMapExecution& exec) { explore_ball(exec, 6); }, table, report);
    // Whole-graph nearest-leaf sweep: a real Table-1 solver from every node,
    // mostly small executions — the sweep regime the flat scratch targets.
    run_workload(
        "nearleaf/all", inst.graph, inst.ids, all, /*repeats=*/1,
        [&](Execution& exec) {
          InstanceSource<ColoredTreeLabeling> src(inst, exec);
          leafcoloring_nearest_leaf(src);
        },
        [&](ReferenceMapExecution& exec) {
          InstanceSource<ColoredTreeLabeling, ReferenceMapExecution> src(inst, exec);
          leafcoloring_nearest_leaf(src);
        },
        table, report);
    // The Table-1 row-1 sampled sweep: 24 starts including the root, whose
    // execution visits Θ(n) nodes — large resident visited sets, the regime
    // where per-query lookup cost (hash vs array) is the whole difference.
    run_workload(
        "nearleaf/t1", inst.graph, inst.ids, sampled_starts(inst.node_count(), 24),
        /*repeats=*/4,
        [&](Execution& exec) {
          InstanceSource<ColoredTreeLabeling> src(inst, exec);
          leafcoloring_nearest_leaf(src);
        },
        [&](ReferenceMapExecution& exec) {
          InstanceSource<ColoredTreeLabeling, ReferenceMapExecution> src(inst, exec);
          leafcoloring_nearest_leaf(src);
        },
        table, report);
  }
  run_cache_ablation(args, table, report);
  run_backend_ablation(args, table, report);
  table.print();
  std::printf(
      "\nAll engines produced identical sup-costs and total visited nodes\n"
      "(verified per row).  'speedup' is wall-time vs the serial map engine\n"
      "on the same workload; thread rows only help on multi-core hosts.\n"
      "The flat scratch shines on sweeps of many small executions (ball,\n"
      "nearleaf/all — the run_at_all_nodes regime); on single Θ(n)-volume\n"
      "executions (nearleaf/t1 root start) both engines are memory-bound and\n"
      "the gap narrows to the per-lookup hash-vs-array difference.\n");
  report.write_file(args.json);
}

}  // namespace
}  // namespace volcal::bench

int main(int argc, char** argv) {
  auto args = volcal::bench::Args::parse(&argc, argv, "bench_runner");
  volcal::bench::Observer::install(args, "bench_runner");
  volcal::bench::run(args);
  return 0;
}
