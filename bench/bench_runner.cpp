// Engine throughput: whole-graph sweeps on the historical map-based
// Execution (serial) vs the flat epoch-stamped Execution, serial and
// parallel (runtime/parallel_runner.hpp).
//
// All engines compute identical results — asserted below per workload — so
// the only thing that varies is wall time.  Two workloads on complete binary
// trees:
//   * ball     — explore_ball(r) from every node: the pure engine loop
//                (query + stamp + layer), no solver logic on top;
//   * nearleaf — Prop. 3.9 nearest-leaf from every node: a real Table-1
//                solver with label reads through InstanceSource.
//
// Usage: bench_runner [bench::Args flags; see --help].  Thread counts for the parallel rows
// are fixed at 2/4/8 (on a single-core host they measure scheduling overhead,
// not speedup; the flat-vs-map row is the hardware-independent headline).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "labels/generators.hpp"
#include "lcl/algorithms/leaf_coloring_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "runtime/reference_execution.hpp"
#include "util/hash.hpp"

namespace volcal::bench {
namespace {

struct SweepCost {
  std::int64_t max_volume = 0;
  std::int64_t max_distance = 0;
  std::int64_t total_volume = 0;  // visited nodes summed over starts
  double seconds = 0.0;

  bool same_costs(const SweepCost& other) const {
    return max_volume == other.max_volume && max_distance == other.max_distance &&
           total_volume == other.total_volume;
  }
};

// Serial sweep on the historical unordered_map Execution: one map allocation
// and O(volume) rehashing per start node.
template <typename Fn>
SweepCost sweep_map(const Graph& g, const IdAssignment& ids,
                    const std::vector<NodeIndex>& starts, Fn&& solve) {
  WallTimer timer;
  SweepCost cost;
  for (const NodeIndex v : starts) {
    ReferenceMapExecution exec(g, ids, v);
    solve(exec);
    cost.max_volume = std::max(cost.max_volume, exec.volume());
    cost.max_distance = std::max(cost.max_distance, exec.distance());
    cost.total_volume += exec.volume();
  }
  cost.seconds = timer.seconds();
  return cost;
}

template <typename Fn>
SweepCost sweep_flat(const Graph& g, const IdAssignment& ids,
                     const std::vector<NodeIndex>& starts, Fn&& solve, int threads) {
  WallTimer timer;
  auto run = ParallelRunner(threads).run_at(g, ids, std::span<const NodeIndex>(starts),
                                            [&](Execution& exec) {
                                              solve(exec);
                                              return 0;
                                            });
  SweepCost cost;
  cost.max_volume = run.stats.max_volume;
  cost.max_distance = run.stats.max_distance;
  cost.total_volume = run.stats.total_volume;
  cost.seconds = timer.seconds();
  return cost;
}

struct EngineRow {
  std::string engine;
  SweepCost cost;
};

// One sweep under an explicit cache policy, keeping the aggregate stats (for
// the hit/miss counters) and the per-start outputs (for the divergence check).
template <typename Fn>
SweepCost sweep_policy(const Graph& g, const IdAssignment& ids,
                       const std::vector<NodeIndex>& starts, Fn&& solve, int threads,
                       CachePolicy policy, SweepStats* stats_out,
                       std::vector<int>* output_out) {
  CacheConfig cfg;
  cfg.policy = policy;
  WallTimer timer;
  auto run = ParallelRunner(threads, cfg).run_at(g, ids, std::span<const NodeIndex>(starts),
                                                 [&](Execution& exec) { return solve(exec); });
  SweepCost cost;
  cost.max_volume = run.stats.max_volume;
  cost.max_distance = run.stats.max_distance;
  cost.total_volume = run.stats.total_volume;
  cost.seconds = timer.seconds();
  if (stats_out != nullptr) *stats_out = run.stats;
  if (output_out != nullptr) *output_out = std::move(run.output);
  return cost;
}

// View-cache ablation on the serving workload the shared cache targets:
// starts drawn from a small hot set of centers, so whole balls repeat across
// starts.  Off rebuilds every ball; Shared builds each distinct ball once and
// serves every repeat as a prefix install.  Outputs and cost meters must be
// bit-identical across policies — only wall time may move.
void run_cache_ablation(const Args& args, stats::Table& table, JsonReport& report) {
  const auto inst = make_complete_binary_tree(15, Color::Red, Color::Blue);  // 2^16 - 1
  if (!args.keep_n(inst.node_count())) return;
  auto ph = report.phase("cache-ablation");
  constexpr std::size_t kHotCenters = 256;
  constexpr std::size_t kStarts = 32768;
  constexpr int kRadius = 6;
  constexpr int kRepeats = 2;
  std::vector<NodeIndex> hot(kHotCenters);
  for (std::size_t j = 0; j < kHotCenters; ++j) {
    hot[j] = static_cast<NodeIndex>(mix64(0x686f74ull /* "hot" */, j) %
                                    static_cast<std::uint64_t>(inst.node_count()));
  }
  std::vector<NodeIndex> starts(kStarts);
  for (std::size_t i = 0; i < kStarts; ++i) {
    starts[i] = hot[mix64(0x73727665ull /* "srve" */, i) % kHotCenters];
  }
  auto solve = [](Execution& exec) { return static_cast<int>(explore_ball(exec, kRadius).size()); };

  struct AblationRow {
    CachePolicy policy;
    int threads;
    SweepCost cost;
    SweepStats stats;
    std::vector<int> output;
  };
  std::vector<AblationRow> rows;
  for (const int threads : {1, 8}) {
    for (const CachePolicy policy :
         {CachePolicy::Off, CachePolicy::PerStart, CachePolicy::Shared}) {
      AblationRow row{policy, threads, {}, {}, {}};
      row.cost = sweep_policy(inst.graph, inst.ids, starts, solve, threads, policy,
                              &row.stats, &row.output);
      for (int r = 1; r < kRepeats; ++r) {
        const SweepCost again = sweep_policy(inst.graph, inst.ids, starts, solve, threads,
                                             policy, nullptr, nullptr);
        row.cost.seconds += again.seconds;
        row.cost.total_volume += again.total_volume;
      }
      rows.push_back(std::move(row));
    }
  }
  const AblationRow& base = rows.front();  // off x1
  const double total_starts = static_cast<double>(kStarts) * kRepeats;
  for (const AblationRow& row : rows) {
    if (!row.cost.same_costs(base.cost) || row.output != base.output) {
      std::fprintf(stderr,
                   "FATAL: cache policy '%s' x%d diverged from the uncached sweep\n",
                   cache_policy_name(row.policy), row.threads);
      std::exit(1);
    }
    char starts_s[32], nodes_s[32], speedup[32];
    std::snprintf(starts_s, sizeof starts_s, "%.0f", total_starts / row.cost.seconds);
    std::snprintf(nodes_s, sizeof nodes_s, "%.3g",
                  static_cast<double>(row.cost.total_volume) / row.cost.seconds);
    std::snprintf(speedup, sizeof speedup, "%.2fx", base.cost.seconds / row.cost.seconds);
    table.add_row({"ball(r=6)/hot", fmt_int(inst.node_count()),
                   std::string(cache_policy_name(row.policy)) + " x" +
                       std::to_string(row.threads),
                   starts_s, nodes_s, speedup});
    Curve c;
    c.add(static_cast<double>(inst.node_count()),
          static_cast<double>(row.cost.total_volume) / row.cost.seconds, row.cost.seconds);
    report.add(std::string("cache-ablation / ") + cache_policy_name(row.policy) + " x" +
                   std::to_string(row.threads),
               c);
  }
  const AblationRow* off8 = nullptr;
  const AblationRow* shared8 = nullptr;
  for (const AblationRow& row : rows) {
    if (row.threads == 8 && row.policy == CachePolicy::Off) off8 = &row;
    if (row.threads == 8 && row.policy == CachePolicy::Shared) shared8 = &row;
  }
  const double gain = off8->cost.seconds / shared8->cost.seconds;
  std::printf(
      "\ncache ablation (ball(r=%d), %zu starts over %zu hot centers, n=%lld):\n"
      "  shared x8: hits=%lld misses=%lld served_nodes=%lld\n"
      "  shared x8 vs off x8: %.2fx (target >= 3x: %s)\n",
      kRadius, kStarts, kHotCenters, static_cast<long long>(inst.node_count()),
      static_cast<long long>(shared8->stats.cache.hits),
      static_cast<long long>(shared8->stats.cache.misses),
      static_cast<long long>(shared8->stats.cache.served_nodes), gain,
      gain >= 3.0 ? "MET" : "MISSED");
}

template <typename FlatFn, typename MapFn>
void run_workload(const std::string& workload, const Graph& g, const IdAssignment& ids,
                  const std::vector<NodeIndex>& starts, int repeats, FlatFn&& flat_solve,
                  MapFn&& map_solve, stats::Table& table, JsonReport& report) {
  auto ph = report.phase(workload);
  const double n = static_cast<double>(g.node_count());
  const double total_starts = static_cast<double>(starts.size()) * repeats;
  auto repeat = [&](auto&& sweep) {
    SweepCost cost = sweep();
    for (int r = 1; r < repeats; ++r) {
      const SweepCost again = sweep();
      cost.seconds += again.seconds;
      cost.total_volume += again.total_volume;
    }
    return cost;
  };
  std::vector<EngineRow> rows;
  rows.push_back({"map x1", repeat([&] { return sweep_map(g, ids, starts, map_solve); })});
  for (const int threads : {1, 2, 4, 8}) {
    rows.push_back({"flat x" + std::to_string(threads),
                    repeat([&] { return sweep_flat(g, ids, starts, flat_solve, threads); })});
  }
  const SweepCost& base = rows.front().cost;
  for (const auto& row : rows) {
    if (!row.cost.same_costs(base)) {
      std::fprintf(stderr, "FATAL: engine '%s' diverged from the map reference on %s\n",
                   row.engine.c_str(), workload.c_str());
      std::exit(1);
    }
    char starts_s[32], nodes_s[32], speedup[32];
    std::snprintf(starts_s, sizeof starts_s, "%.0f", total_starts / row.cost.seconds);
    std::snprintf(nodes_s, sizeof nodes_s, "%.3g",
                  static_cast<double>(row.cost.total_volume) / row.cost.seconds);
    std::snprintf(speedup, sizeof speedup, "%.2fx", base.seconds / row.cost.seconds);
    table.add_row({workload, fmt_int(static_cast<std::int64_t>(n)), row.engine, starts_s,
                   nodes_s, speedup});
    Curve c;
    c.add(n, static_cast<double>(row.cost.total_volume) / row.cost.seconds,
          row.cost.seconds);
    report.add(workload + " / " + row.engine, c);
  }
}

void run(const Args& args) {
  print_header("Sweep-engine throughput: map-based vs flat-scratch vs parallel");
  stats::Table table({"workload", "n", "engine", "starts/s", "visited nodes/s", "speedup"});
  JsonReport report("bench_runner");
  for (const int depth : {12, 14, 15}) {
    auto inst = make_complete_binary_tree(depth, Color::Red, Color::Blue);
    if (!args.keep_n(inst.node_count())) continue;
    // All-nodes ball sweep: the pure engine loop.
    std::vector<NodeIndex> all(static_cast<std::size_t>(inst.node_count()));
    for (NodeIndex v = 0; v < inst.node_count(); ++v) all[static_cast<std::size_t>(v)] = v;
    run_workload(
        "ball(r=6)", inst.graph, inst.ids, all, /*repeats=*/1,
        [](Execution& exec) { explore_ball(exec, 6); },
        [](ReferenceMapExecution& exec) { explore_ball(exec, 6); }, table, report);
    // Whole-graph nearest-leaf sweep: a real Table-1 solver from every node,
    // mostly small executions — the sweep regime the flat scratch targets.
    run_workload(
        "nearleaf/all", inst.graph, inst.ids, all, /*repeats=*/1,
        [&](Execution& exec) {
          InstanceSource<ColoredTreeLabeling> src(inst, exec);
          leafcoloring_nearest_leaf(src);
        },
        [&](ReferenceMapExecution& exec) {
          InstanceSource<ColoredTreeLabeling, ReferenceMapExecution> src(inst, exec);
          leafcoloring_nearest_leaf(src);
        },
        table, report);
    // The Table-1 row-1 sampled sweep: 24 starts including the root, whose
    // execution visits Θ(n) nodes — large resident visited sets, the regime
    // where per-query lookup cost (hash vs array) is the whole difference.
    run_workload(
        "nearleaf/t1", inst.graph, inst.ids, sampled_starts(inst.node_count(), 24),
        /*repeats=*/4,
        [&](Execution& exec) {
          InstanceSource<ColoredTreeLabeling> src(inst, exec);
          leafcoloring_nearest_leaf(src);
        },
        [&](ReferenceMapExecution& exec) {
          InstanceSource<ColoredTreeLabeling, ReferenceMapExecution> src(inst, exec);
          leafcoloring_nearest_leaf(src);
        },
        table, report);
  }
  run_cache_ablation(args, table, report);
  table.print();
  std::printf(
      "\nAll engines produced identical sup-costs and total visited nodes\n"
      "(verified per row).  'speedup' is wall-time vs the serial map engine\n"
      "on the same workload; thread rows only help on multi-core hosts.\n"
      "The flat scratch shines on sweeps of many small executions (ball,\n"
      "nearleaf/all — the run_at_all_nodes regime); on single Θ(n)-volume\n"
      "executions (nearleaf/t1 root start) both engines are memory-bound and\n"
      "the gap narrows to the per-lookup hash-vs-array difference.\n");
  report.write_file(args.json);
}

}  // namespace
}  // namespace volcal::bench

int main(int argc, char** argv) {
  auto args = volcal::bench::Args::parse(&argc, argv, "bench_runner");
  volcal::bench::Observer::install(args, "bench_runner");
  volcal::bench::run(args);
  return 0;
}
