// Section 3 micro-benchmarks:
//   * walk-length distribution of RWtoLeaf vs the 16·log n bound claimed in
//     Prop. 3.10;
//   * success probability under truncation budgets (Remark 3.11);
//   * the Prop. 3.13 adversary duel — every deterministic candidate that
//     halts within an o(n) budget is defeated;
//   * google-benchmark timings of the solvers.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "labels/generators.hpp"
#include "lcl/adversary/leafcoloring_adversary.hpp"
#include "lcl/algorithms/leaf_coloring_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "lcl/problems/leaf_coloring.hpp"
#include "volcal/runtime.hpp"

namespace volcal::bench {
namespace {

using Src = InstanceSource<ColoredTreeLabeling>;

void walk_length_table(JsonReport& report) {
  auto ph = report.phase("walk-length");
  print_header("§3 — RWtoLeaf walk lengths vs the 16·log2(n) bound (Prop. 3.10)");
  stats::Table table({"family", "n", "mean steps", "p95", "max", "16·log2(n)"});
  const auto families = std::vector<std::pair<std::string, LeafColoringInstance>>{
      {"complete d=12", make_complete_binary_tree(12, Color::Red, Color::Blue)},
      {"complete d=16", make_complete_binary_tree(16, Color::Red, Color::Blue)},
      {"random n=32k", make_random_full_binary_tree(32769, 7)},
      {"caterpillar", make_caterpillar(4000, 3)},
      {"cycle 64x8", make_cycle_pseudotree(64, 8, 9)},
  };
  Curve mean_c, max_c;  // over the complete-tree sub-family (monotone n)
  for (const auto& [name, inst] : families) {
    RandomTape tape(inst.ids, 17);
    std::vector<double> steps;
    for (NodeIndex v : sampled_starts(inst.node_count(), 400)) {
      Execution exec(inst.graph, inst.ids, v);
      Src src(inst, exec);
      steps.push_back(static_cast<double>(rw_to_leaf_stats(src, tape).steps));
    }
    auto s = stats::summarize(steps);
    const double bound = 16 * std::log2(static_cast<double>(inst.node_count()));
    char mean[32], p95[32], mx[32], bd[32];
    std::snprintf(mean, sizeof mean, "%.1f", s.mean);
    std::snprintf(p95, sizeof p95, "%.0f", s.p95);
    std::snprintf(mx, sizeof mx, "%.0f", s.max);
    std::snprintf(bd, sizeof bd, "%.0f", bound);
    table.add_row({name, fmt_int(inst.node_count()), mean, p95, mx, bd});
    if (name.rfind("complete", 0) == 0) {
      mean_c.add(static_cast<double>(inst.node_count()), s.mean);
      max_c.add(static_cast<double>(inst.node_count()), s.max);
    }
  }
  table.print();
  report.add("RWtoLeaf / mean steps", mean_c, "O(log n) (Prop. 3.10)");
  report.add("RWtoLeaf / max steps", max_c, "16*log2(n) bound");
}

void truncation_table(JsonReport& report) {
  auto ph = report.phase("truncation");
  print_header("§3 — success probability under truncation budgets (Remark 3.11)");
  stats::Table table({"budget (x log2 n)", "valid runs / trials", "note"});
  auto inst = make_complete_binary_tree(13, Color::Red, Color::Blue);
  const double logn = std::log2(static_cast<double>(inst.node_count()));
  LeafColoringProblem problem;
  Curve valid_c;  // abscissa: budget multiplier, not n
  for (const double mult : {0.5, 1.0, 2.0, 4.0, 16.0}) {
    const auto budget = static_cast<std::int64_t>(mult * logn);
    int valid = 0;
    const int trials = 24;
    for (int t = 0; t < trials; ++t) {
      RandomTape tape(inst.ids, 100 + static_cast<std::uint64_t>(t));
      auto result = run_at_all_nodes(inst.graph, inst.ids, [&](Execution& exec) {
        Src src(inst, exec);
        return rw_to_leaf(src, tape, budget);
      });
      valid += verify_all(problem, inst, result.output).ok ? 1 : 0;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", mult);
    table.add_row({buf, std::to_string(valid) + "/" + std::to_string(trials),
                   mult >= 16 ? "whp regime" : ""});
    valid_c.add(mult, static_cast<double>(valid));
  }
  table.print();
  report.add("RWtoLeaf / valid runs vs budget", valid_c, "whp at 16*log2(n) (Rmk. 3.11)");
}

void adversary_table(JsonReport& report) {
  auto ph = report.phase("adversary");
  print_header("§3 — Prop. 3.13 adversary: deterministic candidates vs volume budgets");
  stats::Table table({"candidate", "declared n", "budget", "outcome", "|G_A|"});
  struct Candidate {
    const char* name;
    Color (*fn)(LeafColoringAdversarySource&);
  };
  const Candidate candidates[] = {
      {"nearest-leaf BFS", +[](LeafColoringAdversarySource& s) {
         return leafcoloring_nearest_leaf(s);
       }},
      {"leftmost descent", +[](LeafColoringAdversarySource& s) {
         return leafcoloring_leftmost_descent(s);
       }},
      {"input echo", +[](LeafColoringAdversarySource& s) { return s.color(s.start()); }},
  };
  for (const auto& cand : candidates) {
    for (const std::int64_t n : {std::int64_t{3000}, std::int64_t{30000}}) {
      auto result = duel_leafcoloring_adversary(cand.fn, n, n / 3);
      std::string outcome = result.algorithm_exceeded_budget
                                ? "needs > n/3 volume (consistent with Ω(n))"
                                : (result.algorithm_failed ? "DEFEATED (invalid output)"
                                                           : "survived (!)");
      table.add_row({cand.name, fmt_int(n), fmt_int(n / 3), outcome,
                     result.algorithm_exceeded_budget ? "-" : fmt_int(result.instance_size)});
    }
  }
  table.print();
  std::printf(
      "\nEvery deterministic strategy either exceeds the n/3 volume budget or\n"
      "is handed an instance on which its committed output is invalid — the\n"
      "executable content of D-VOL(LeafColoring) = Ω(n).\n");
}

// --- google-benchmark timings -------------------------------------------------

void BM_RwToLeaf(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  auto inst = make_complete_binary_tree(depth, Color::Red, Color::Blue);
  RandomTape tape(inst.ids, 1);
  std::uint64_t i = 0;
  for (auto _ : state) {
    Execution exec(inst.graph, inst.ids, static_cast<NodeIndex>(i++ % 7));
    Src src(inst, exec);
    benchmark::DoNotOptimize(rw_to_leaf(src, tape));
  }
  state.SetLabel("n=" + std::to_string(inst.node_count()));
}
BENCHMARK(BM_RwToLeaf)->Arg(10)->Arg(14)->Arg(18);

void BM_NearestLeafFromRoot(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  auto inst = make_complete_binary_tree(depth, Color::Red, Color::Blue);
  for (auto _ : state) {
    Execution exec(inst.graph, inst.ids, 0);
    Src src(inst, exec);
    benchmark::DoNotOptimize(leafcoloring_nearest_leaf(src));
  }
  state.SetLabel("n=" + std::to_string(inst.node_count()));
}
BENCHMARK(BM_NearestLeafFromRoot)->Arg(10)->Arg(14);

}  // namespace
}  // namespace volcal::bench

int main(int argc, char** argv) {
  auto args = volcal::bench::Args::parse(&argc, argv, "bench_leafcoloring");
  volcal::bench::Observer::install(args, "bench_leafcoloring");
  volcal::bench::JsonReport report("bench_leafcoloring");
  volcal::bench::walk_length_table(report);
  volcal::bench::truncation_table(report);
  volcal::bench::adversary_table(report);
  report.write_file(args.json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
