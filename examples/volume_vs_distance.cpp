// "Seeing far vs. seeing wide": the paper's headline separation, live.
//
// LeafColoring solved four ways across a size sweep; the printed curves show
// that looking FAR (distance) costs Θ(log n) no matter what, while looking
// WIDE (volume) costs Θ(n) deterministically but only Θ(log n) with
// randomness — the exponential gap of Theorem 3.6.
#include <cmath>
#include <cstdio>

#include "labels/generators.hpp"
#include "lcl/algorithms/leaf_coloring_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "lcl/problems/leaf_coloring.hpp"
#include "volcal/runtime.hpp"
#include "stats/table.hpp"

int main() {
  using namespace volcal;
  stats::Table table({"n", "D-DIST (nearest leaf)", "D-VOL (nearest leaf)",
                      "R-VOL (RWtoLeaf)", "log2 n"});
  for (int depth : {8, 10, 12, 14, 16}) {
    auto inst = make_complete_binary_tree(depth, Color::Red, Color::Blue);
    const auto n = inst.node_count();

    // Deterministic: explore descendants to the nearest leaf (Prop. 3.9).
    // From the root this reads the whole tree, but never looks farther than
    // depth hops: small distance, huge volume.
    Execution det(inst.graph, inst.ids, 0);
    {
      InstanceSource<ColoredTreeLabeling> src(inst, det);
      leafcoloring_nearest_leaf(src);
    }

    // Randomized: one coin per node steers a walk to a leaf (Algorithm 1):
    // small distance AND small volume, with high probability.
    RandomTape tape(inst.ids, 7);
    std::int64_t rvol = 0;
    for (NodeIndex v = 0; v < n; v += std::max<NodeIndex>(1, n / 128)) {
      Execution exec(inst.graph, inst.ids, v);
      InstanceSource<ColoredTreeLabeling> src(inst, exec);
      rw_to_leaf(src, tape);
      rvol = std::max(rvol, exec.volume());
    }

    char logn[16];
    std::snprintf(logn, sizeof logn, "%.0f", std::log2(static_cast<double>(n)));
    table.add_row({std::to_string(n), std::to_string(det.distance()),
                   std::to_string(det.volume()), std::to_string(rvol), logn});
  }
  table.print();
  std::printf(
      "\nD-DIST tracks log2 n (seeing far is cheap), D-VOL tracks n (a\n"
      "deterministic algorithm must see wide — Prop. 3.13 proves no trick\n"
      "avoids it), R-VOL tracks log n again (randomness collapses the width).\n");
  return 0;
}
