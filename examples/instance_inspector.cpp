// Instance inspector: generate (or read) an instance, print a structural
// summary, and emit the serialized form and/or a Graphviz rendering — the
// tooling face of the library.
//
//   $ ./instance_inspector leafcoloring --depth 4 --dot        # DOT to stdout
//   $ ./instance_inspector leafcoloring --depth 6 --save       # text format
//   $ ./instance_inspector balancedtree --depth 3 --dot
//   $ ./instance_inspector hierarchical --k 3 --b 5
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "graph/bfs.hpp"
#include "labels/generators.hpp"
#include "labels/hierarchy.hpp"
#include "volcal/io.hpp"

namespace {

int find_arg(int argc, char** argv, const char* name, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atoi(argv[i + 1]);
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

template <typename Instance>
void summarize(const Instance& inst) {
  using namespace volcal;
  const auto comps = connected_components(inst.graph);
  std::printf("n = %lld, m = %lld edges, Δ = %d, components = %lld\n",
              static_cast<long long>(inst.node_count()),
              static_cast<long long>(inst.graph.edge_count()), inst.graph.max_degree(),
              static_cast<long long>(comps.count));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace volcal;
  const char* kind = argc > 1 ? argv[1] : "leafcoloring";
  const bool dot = has_flag(argc, argv, "--dot");
  const bool save = has_flag(argc, argv, "--save");

  if (std::strcmp(kind, "leafcoloring") == 0) {
    const int depth = find_arg(argc, argv, "--depth", 4);
    auto inst = make_complete_binary_tree(depth, Color::Red, Color::Blue);
    summarize(inst);
    auto f = build_pseudo_forest(inst.graph, inst.labels.tree);
    std::int64_t internals = 0, leaves = 0;
    for (NodeIndex v = 0; v < inst.node_count(); ++v) {
      internals += f.kind[v] == NodeKind::Internal;
      leaves += f.kind[v] == NodeKind::Leaf;
    }
    std::printf("G_T: %lld internal, %lld leaves\n", static_cast<long long>(internals),
                static_cast<long long>(leaves));
    if (dot) std::cout << io::to_dot(inst, 127);
    if (save) io::write_instance(std::cout, inst);
  } else if (std::strcmp(kind, "balancedtree") == 0) {
    const int depth = find_arg(argc, argv, "--depth", 3);
    auto inst = make_balanced_instance(depth);
    summarize(inst);
    if (dot) std::cout << io::to_dot(inst, 127);
    if (save) io::write_instance(std::cout, inst);
  } else if (std::strcmp(kind, "hierarchical") == 0) {
    const int k = find_arg(argc, argv, "--k", 3);
    const NodeIndex b = find_arg(argc, argv, "--b", 5);
    auto inst = make_hierarchical_instance(k, b, 1);
    summarize(inst);
    Hierarchy h(inst.graph, inst.labels.tree, k + 1);
    std::printf("backbones: %zu across %d levels\n", h.backbones().size(), k);
  } else {
    std::fprintf(stderr, "unknown kind '%s' (leafcoloring|balancedtree|hierarchical)\n",
                 kind);
    return 2;
  }
  return 0;
}
