// Quickstart: build a LeafColoring instance, run the paper's O(log n)-volume
// randomized algorithm (RWtoLeaf, Algorithm 1) from every node, verify the
// global output with the LCL checker, and print the cost accounting.
//
//   $ ./quickstart [depth]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "labels/generators.hpp"
#include "lcl/algorithms/leaf_coloring_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "lcl/problems/leaf_coloring.hpp"
#include "volcal/runtime.hpp"

int main(int argc, char** argv) {
  using namespace volcal;
  const int depth = argc > 1 ? std::atoi(argv[1]) : 12;

  // 1. An input instance: a complete binary tree whose internal nodes are
  //    red and whose leaves are blue (the Prop. 3.12 hard distribution with
  //    the coin fixed to blue).
  LeafColoringInstance instance = make_complete_binary_tree(depth, Color::Red, Color::Blue);
  std::printf("instance: complete binary tree, depth %d, n = %lld nodes\n", depth,
              static_cast<long long>(instance.node_count()));

  // 2. Per-node random strings (part of the input, shared on visit).
  RandomTape tape(instance.ids, /*seed=*/2026);

  // 3. Run Algorithm 1 from every node.  Each node gets a fresh Execution —
  //    the cost meter of the query model (Defs. 2.1-2.2).
  auto result = run_at_all_nodes(instance.graph, instance.ids, [&](Execution& exec) {
    InstanceSource<ColoredTreeLabeling> source(instance, exec);
    return rw_to_leaf(source, tape);
  });

  // 4. Verify: LeafColoring is locally checkable (Def. 3.4); with unanimous
  //    blue leaves the unique valid output colors every node blue.
  LeafColoringProblem problem;
  const VerifyResult verdict = verify_all(problem, instance, result.output);
  std::printf("valid output: %s\n", verdict.ok ? "yes" : "NO");

  // 5. Costs: volume stays logarithmic although the tree has ~2^depth nodes.
  const double logn = std::log2(static_cast<double>(instance.node_count()));
  std::printf("sup volume  VOL_n(A)  = %lld   (16·log2 n = %.0f)\n",
              static_cast<long long>(result.stats.max_volume), 16 * logn);
  std::printf("sup distance DIST_n(A) = %lld  (depth = %d)\n",
              static_cast<long long>(result.stats.max_distance), depth);
  std::printf("Lemma 2.5 sandwich (DIST <= VOL <= Δ^DIST + 1): %s\n",
              satisfies_lemma_2_5(instance.graph, result) ? "holds" : "VIOLATED");

  // 6. Contrast: the deterministic nearest-leaf algorithm from the root must
  //    see the whole tree (D-VOL(LeafColoring) = Θ(n), Prop. 3.13).
  Execution exec(instance.graph, instance.ids, 0);
  InstanceSource<ColoredTreeLabeling> source(instance, exec);
  leafcoloring_nearest_leaf(source);
  std::printf("deterministic nearest-leaf from the root: volume %lld of n = %lld\n",
              static_cast<long long>(exec.volume()),
              static_cast<long long>(instance.node_count()));
  return verdict.ok ? 0 : 1;
}
