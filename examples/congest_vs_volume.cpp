// Example 7.6 live: the two-tree gadget where query volume and CONGEST round
// complexity diverge exponentially.  Every u-leaf must output the bit stored
// at its mirrored v-leaf: a query algorithm walks 2·depth+1 hops; a CONGEST
// algorithm must squeeze all 2^depth bits through the single root-root edge.
//
//   $ ./congest_vs_volume [depth] [bandwidth_bits]
#include <cstdio>
#include <cstdlib>

#include "labels/generators.hpp"
#include "lcl/algorithms/congest_algos.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace volcal;
  const int depth = argc > 1 ? std::atoi(argv[1]) : 8;
  const int bandwidth = argc > 2 ? std::atoi(argv[2]) : 32;

  auto gadget = make_two_tree_gadget(depth, 11);
  const auto n = gadget.graph.node_count();
  const auto leaves = static_cast<std::int64_t>(gadget.bits.size());
  std::printf("two complete binary trees of depth %d joined at the roots: n = %lld,\n",
              depth, static_cast<long long>(n));
  std::printf("%lld leaf bits must cross the root edge, B = %d bits/round\n\n",
              static_cast<long long>(leaves), bandwidth);

  // Query model: every u-leaf fetches its own bit.
  std::int64_t max_vol = 0;
  bool all_correct = true;
  for (std::size_t i = 0; i < gadget.u_leaves.size(); ++i) {
    std::int64_t vol = 0;
    const auto bit = query_two_tree_bit(gadget, gadget.u_leaves[i], &vol);
    all_correct &= bit == gadget.bits[i];
    max_vol = std::max(max_vol, vol);
  }
  std::printf("query model : all %lld leaves correct: %s, max volume %lld (= 2·depth+%lld)\n",
              static_cast<long long>(leaves), all_correct ? "yes" : "NO",
              static_cast<long long>(max_vol),
              static_cast<long long>(max_vol - 2 * depth));

  // CONGEST: pipeline all bits through the bottleneck.
  auto relay = congest_two_tree_relay(gadget, bandwidth, 1 << 20);
  bool relay_correct = relay.stats.solved;
  for (std::size_t i = 0; i < gadget.bits.size() && relay_correct; ++i) {
    relay_correct &= relay.learned[i] == gadget.bits[i];
  }
  std::printf("CONGEST     : delivered: %s, rounds %d (information floor N/B = %lld)\n",
              relay_correct ? "yes" : "NO", relay.stats.rounds,
              static_cast<long long>(leaves * 8 / bandwidth));
  std::printf(
      "\nVolume is O(log n) while CONGEST needs Ω(n/B) rounds — the two cost\n"
      "models are genuinely incomparable (paper §7.3, Observations 7.4-7.5).\n");
  return all_correct && relay_correct ? 0 : 1;
}
