// Hierarchy explorer: walks a Hierarchical-THC(k) instance, prints its level
// structure (backbones, weights, light/heavy split of Def. 5.10), then solves
// it with both the deterministic RecursiveHTHC (Alg. 2) and the randomized
// waypoint variant, reporting outputs per level and the cost split — the
// infinite-hierarchy picture behind Figure 3's family of lines.
//
//   $ ./hierarchy_explorer [k] [backbone_len]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "labels/generators.hpp"
#include "labels/hierarchy.hpp"
#include "lcl/algorithms/hthc_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "lcl/problems/hierarchical_thc.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace volcal;
  const int k = argc > 1 ? std::atoi(argv[1]) : 3;
  const NodeIndex b = argc > 2 ? std::atoll(argv[2]) : 12;

  auto inst = make_hierarchical_instance(k, b, 42);
  const auto n = inst.node_count();
  std::printf("Hierarchical-THC(%d), backbones of length %lld, n = %lld\n", k,
              static_cast<long long>(b), static_cast<long long>(n));

  Hierarchy h(inst.graph, inst.labels.tree, k + 1);
  const double root_k = std::pow(static_cast<double>(n), 1.0 / k);
  std::printf("n^{1/k} = %.1f, shallow/deep threshold 2·n^{1/k} = %.1f\n\n", root_k,
              2 * root_k);

  {  // structure summary per level
    stats::Table table({"level", "backbones", "nodes", "light subtrees", "heavy subtrees"});
    std::map<int, std::array<std::int64_t, 4>> rows;  // backbones, nodes, light, heavy
    for (std::size_t i = 0; i < h.backbones().size(); ++i) {
      const auto& bb = h.backbones()[i];
      auto& r = rows[bb.level];
      r[0] += 1;
      r[1] += static_cast<std::int64_t>(bb.nodes.size());
      const double light_bound = std::pow(static_cast<double>(n),
                                          static_cast<double>(bb.level) / k);
      (static_cast<double>(h.subtree_weight(static_cast<std::int64_t>(i))) <= light_bound
           ? r[2]
           : r[3]) += 1;
    }
    for (const auto& [level, r] : rows) {
      table.add_row({std::to_string(level), std::to_string(r[0]), std::to_string(r[1]),
                     std::to_string(r[2]), std::to_string(r[3])});
    }
    table.print();
  }

  // Solve with both variants via the global pass; tally outputs per level.
  RandomTape tape(inst.ids, 99);
  for (const bool waypoints : {false, true}) {
    auto cfg = HthcConfig::make(k, n, waypoints, &tape);
    FreeSource<ColoredTreeLabeling> src(inst);
    HthcSolver<FreeSource<ColoredTreeLabeling>> solver(src, cfg);
    std::map<int, std::map<char, std::int64_t>> tally;
    std::vector<ThcColor> out(n);
    for (NodeIndex v = 0; v < n; ++v) {
      out[v] = solver.solve_at(v);
      tally[h.level(v)][thc_char(out[v])]++;
    }
    HierarchicalTHCProblem problem(inst, k);
    const auto verdict = verify_all(problem, inst, out);
    std::printf("\n%s solver: output %s\n",
                waypoints ? "randomized (waypoint)" : "deterministic (Alg. 2)",
                verdict.ok ? "VALID" : "INVALID");
    for (const auto& [level, counts] : tally) {
      std::printf("  level %d:", level);
      for (const auto& [symbol, count] : counts) {
        std::printf("  %c x%lld", symbol, static_cast<long long>(count));
      }
      std::printf("\n");
    }
    // Cost from the root under real accounting, with the work breakdown.
    Execution exec(inst.graph, inst.ids, 0);
    InstanceSource<ColoredTreeLabeling> paid(inst, exec);
    HthcSolver<InstanceSource<ColoredTreeLabeling>> metered(paid, cfg);
    metered.solve();
    const auto& s = metered.stats();
    std::printf("  cost from node 0: volume %lld, distance %lld\n",
                static_cast<long long>(exec.volume()),
                static_cast<long long>(exec.distance()));
    std::printf(
        "  work: %lld computes (%lld shallow, %lld scans over %lld steps), "
        "%lld certify recursions, %lld waypoint skips\n",
        static_cast<long long>(s.computes), static_cast<long long>(s.shallow_hits),
        static_cast<long long>(s.scans), static_cast<long long>(s.scan_steps),
        static_cast<long long>(s.certify_calls),
        static_cast<long long>(s.waypoint_skips));
  }
  return 0;
}
