// Tour of the problem registry: every catalogued family, one small instance
// each — solve from a sample of starts through the erased interface, verify
// the joint output (Def. 2.6), and print the measured sup-costs next to the
// paper's Θ-claims.
//
// Usage: registry_tour [filter-substring] [n_target]
//
// This binary never names a concrete problem type: generator, solver, and
// verifier all come out of the registry entry, which is exactly how the
// bench binaries' --filter flag resolves families.
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "lcl/registry.hpp"
#include "runtime/parallel_runner.hpp"

int main(int argc, char** argv) {
  using namespace volcal;
  const char* filter = argc > 1 ? argv[1] : "";
  const NodeIndex n_target = argc > 2 ? std::atoll(argv[2]) : 2000;

  const auto matched = ProblemRegistry::global().match(filter);
  if (matched.empty()) {
    std::fprintf(stderr, "no registry entry matches '%s'; known entries:\n", filter);
    for (const auto& e : ProblemRegistry::global().entries()) {
      std::fprintf(stderr, "  %s\n", e.name.c_str());
    }
    return 1;
  }

  std::printf("%-14s %8s %8s %8s %8s  %s\n", "entry", "n", "starts", "sup-vol",
              "sup-dist", "paper claim");
  for (const RegistryEntry* entry : matched) {
    const ErasedInstance inst = entry->make(n_target, /*seed=*/11);

    // Every node starts once; outputs land in preassigned slots.
    std::vector<NodeIndex> starts(static_cast<std::size_t>(inst.node_count()));
    for (NodeIndex v = 0; v < inst.node_count(); ++v) {
      starts[static_cast<std::size_t>(v)] = v;
    }
    auto run = ParallelRunner().run_at(inst.graph(), inst.ids(),
                                       std::span<const NodeIndex>(starts),
                                       [&](Execution& exec) { return inst.solve(exec); });

    const VerifyResult verdict = inst.verify(run.output);
    std::printf("%-14s %8lld %8lld %8lld %8lld  %s\n", entry->name.c_str(),
                static_cast<long long>(inst.node_count()),
                static_cast<long long>(run.stats.starts),
                static_cast<long long>(run.stats.max_volume),
                static_cast<long long>(run.stats.max_distance), entry->theta.c_str());
    if (!verdict.ok) {
      std::fprintf(stderr, "FATAL: %s produced an invalid joint output (%lld violations, "
                   "first at node %lld)\n",
                   entry->name.c_str(), static_cast<long long>(verdict.violations),
                   static_cast<long long>(verdict.first_bad));
      return 1;
    }
  }
  std::printf("\nAll joint outputs verified against each entry's LCL predicate.\n");
  return 0;
}
