// Adversary duel: runs the Prop. 3.13 process P live against deterministic
// LeafColoring strategies with shrinking volume budgets, printing each round
// of the game — the executable form of D-VOL(LeafColoring) = Ω(n).
//
//   $ ./adversary_duel [declared_n]
#include <cstdio>
#include <cstdlib>

#include "lcl/adversary/hthc_adversary.hpp"
#include "lcl/adversary/leafcoloring_adversary.hpp"
#include "lcl/algorithms/hthc_algos.hpp"
#include "lcl/algorithms/leaf_coloring_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace volcal;
  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 10000;

  struct Candidate {
    const char* name;
    Color (*fn)(LeafColoringAdversarySource&);
  };
  const Candidate candidates[] = {
      {"nearest-leaf BFS (Prop. 3.9)",
       +[](LeafColoringAdversarySource& s) { return leafcoloring_nearest_leaf(s); }},
      {"leftmost descent",
       +[](LeafColoringAdversarySource& s) { return leafcoloring_leftmost_descent(s); }},
      {"echo own color",
       +[](LeafColoringAdversarySource& s) { return s.color(s.start()); }},
      {"probe 8 then guess", +[](LeafColoringAdversarySource& s) {
         TreeView<LeafColoringAdversarySource> view(s);
         NodeIndex cur = s.start();
         for (int i = 0; i < 8 && view.internal(cur); ++i) cur = view.left(cur);
         return s.color(cur);
       }},
  };

  std::printf("The adversary answers every query with a fresh internal-looking red\n");
  std::printf("node; whatever the algorithm answers, the unexplored ports become\n");
  std::printf("leaves of the opposite color.  declared n = %lld\n\n",
              static_cast<long long>(n));

  stats::Table table({"candidate", "budget", "spawned", "verdict"});
  for (const auto& cand : candidates) {
    for (const std::int64_t budget : {n, n / 3, n / 30}) {
      auto result = duel_leafcoloring_adversary(cand.fn, n, budget);
      std::string verdict;
      if (result.algorithm_exceeded_budget) {
        verdict = "ran out of budget before answering (needs Ω(n) volume)";
      } else if (result.algorithm_failed) {
        verdict = "answered '" + std::string(1, color_char(result.root_output)) +
                  "' -> instance completed with opposite leaves: WRONG";
      } else {
        verdict = "survived";
      }
      table.add_row({cand.name, std::to_string(budget),
                     std::to_string(result.nodes_spawned), verdict});
    }
  }
  table.print();
  std::printf(
      "\nNo deterministic strategy wins: answer early and the adversary turns\n"
      "the unseen leaves against you; insist on seeing a leaf and you pay\n"
      "Ω(n) queries first.  Randomized walks evade this because the adversary\n"
      "must commit to the instance before the coins are drawn.\n");

  // Round two: the multi-phase Prop. 5.20 process against Hierarchical-THC.
  std::printf("\n--- Prop. 5.20: the hierarchical adversary (k = 2, n = %lld) ---\n\n",
              static_cast<long long>(n));
  stats::Table table2({"candidate", "outcome"});
  const std::pair<const char*, HthcCandidate> hthc_candidates[] = {
      {"always decline", [](HthcAdversarySource&) { return ThcColor::D; }},
      {"always exempt", [](HthcAdversarySource&) { return ThcColor::X; }},
      {"echo χ_in",
       [](HthcAdversarySource& s) { return to_thc(s.color(s.start())); }},
      {"RecursiveHTHC (Alg. 2)", [](HthcAdversarySource& s) {
         auto cfg = HthcConfig::make(2, s.n(), false, nullptr);
         HthcSolver<HthcAdversarySource> solver(s, cfg);
         return solver.solve();
       }},
  };
  for (const auto& [cname, fn] : hthc_candidates) {
    auto r = duel_hthc_adversary(fn, 2, n, n / 3);
    table2.add_row({cname, r.exceeded_budget
                               ? "starved: needs > n/3 volume"
                               : (r.defeated ? "DEFEATED: " + r.verdict : "survived")});
  }
  table2.print();
  return 0;
}
