file(REMOVE_RECURSE
  "libvolcal.a"
)
