# Empty dependencies file for volcal.
# This may be replaced when dependencies are built.
