
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/disjointness.cpp" "src/CMakeFiles/volcal.dir/comm/disjointness.cpp.o" "gcc" "src/CMakeFiles/volcal.dir/comm/disjointness.cpp.o.d"
  "/root/repo/src/graph/bfs.cpp" "src/CMakeFiles/volcal.dir/graph/bfs.cpp.o" "gcc" "src/CMakeFiles/volcal.dir/graph/bfs.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/volcal.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/volcal.dir/graph/graph.cpp.o.d"
  "/root/repo/src/io/serialize.cpp" "src/CMakeFiles/volcal.dir/io/serialize.cpp.o" "gcc" "src/CMakeFiles/volcal.dir/io/serialize.cpp.o.d"
  "/root/repo/src/labels/generators.cpp" "src/CMakeFiles/volcal.dir/labels/generators.cpp.o" "gcc" "src/CMakeFiles/volcal.dir/labels/generators.cpp.o.d"
  "/root/repo/src/labels/hierarchy.cpp" "src/CMakeFiles/volcal.dir/labels/hierarchy.cpp.o" "gcc" "src/CMakeFiles/volcal.dir/labels/hierarchy.cpp.o.d"
  "/root/repo/src/labels/ids.cpp" "src/CMakeFiles/volcal.dir/labels/ids.cpp.o" "gcc" "src/CMakeFiles/volcal.dir/labels/ids.cpp.o.d"
  "/root/repo/src/labels/tree_labeling.cpp" "src/CMakeFiles/volcal.dir/labels/tree_labeling.cpp.o" "gcc" "src/CMakeFiles/volcal.dir/labels/tree_labeling.cpp.o.d"
  "/root/repo/src/lcl/adversary/hthc_adversary.cpp" "src/CMakeFiles/volcal.dir/lcl/adversary/hthc_adversary.cpp.o" "gcc" "src/CMakeFiles/volcal.dir/lcl/adversary/hthc_adversary.cpp.o.d"
  "/root/repo/src/lcl/adversary/leafcoloring_adversary.cpp" "src/CMakeFiles/volcal.dir/lcl/adversary/leafcoloring_adversary.cpp.o" "gcc" "src/CMakeFiles/volcal.dir/lcl/adversary/leafcoloring_adversary.cpp.o.d"
  "/root/repo/src/lcl/algorithms/congest_algos.cpp" "src/CMakeFiles/volcal.dir/lcl/algorithms/congest_algos.cpp.o" "gcc" "src/CMakeFiles/volcal.dir/lcl/algorithms/congest_algos.cpp.o.d"
  "/root/repo/src/lcl/description.cpp" "src/CMakeFiles/volcal.dir/lcl/description.cpp.o" "gcc" "src/CMakeFiles/volcal.dir/lcl/description.cpp.o.d"
  "/root/repo/src/lcl/problems/balanced_tree.cpp" "src/CMakeFiles/volcal.dir/lcl/problems/balanced_tree.cpp.o" "gcc" "src/CMakeFiles/volcal.dir/lcl/problems/balanced_tree.cpp.o.d"
  "/root/repo/src/lcl/problems/cp_thc.cpp" "src/CMakeFiles/volcal.dir/lcl/problems/cp_thc.cpp.o" "gcc" "src/CMakeFiles/volcal.dir/lcl/problems/cp_thc.cpp.o.d"
  "/root/repo/src/lcl/problems/hh_thc.cpp" "src/CMakeFiles/volcal.dir/lcl/problems/hh_thc.cpp.o" "gcc" "src/CMakeFiles/volcal.dir/lcl/problems/hh_thc.cpp.o.d"
  "/root/repo/src/lcl/problems/hierarchical_thc.cpp" "src/CMakeFiles/volcal.dir/lcl/problems/hierarchical_thc.cpp.o" "gcc" "src/CMakeFiles/volcal.dir/lcl/problems/hierarchical_thc.cpp.o.d"
  "/root/repo/src/lcl/problems/hybrid_thc.cpp" "src/CMakeFiles/volcal.dir/lcl/problems/hybrid_thc.cpp.o" "gcc" "src/CMakeFiles/volcal.dir/lcl/problems/hybrid_thc.cpp.o.d"
  "/root/repo/src/lcl/problems/ring_coloring.cpp" "src/CMakeFiles/volcal.dir/lcl/problems/ring_coloring.cpp.o" "gcc" "src/CMakeFiles/volcal.dir/lcl/problems/ring_coloring.cpp.o.d"
  "/root/repo/src/runtime/congest.cpp" "src/CMakeFiles/volcal.dir/runtime/congest.cpp.o" "gcc" "src/CMakeFiles/volcal.dir/runtime/congest.cpp.o.d"
  "/root/repo/src/runtime/execution.cpp" "src/CMakeFiles/volcal.dir/runtime/execution.cpp.o" "gcc" "src/CMakeFiles/volcal.dir/runtime/execution.cpp.o.d"
  "/root/repo/src/stats/growth.cpp" "src/CMakeFiles/volcal.dir/stats/growth.cpp.o" "gcc" "src/CMakeFiles/volcal.dir/stats/growth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
