# Empty dependencies file for congest_vs_volume.
# This may be replaced when dependencies are built.
