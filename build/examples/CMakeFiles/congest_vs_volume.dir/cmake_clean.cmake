file(REMOVE_RECURSE
  "CMakeFiles/congest_vs_volume.dir/congest_vs_volume.cpp.o"
  "CMakeFiles/congest_vs_volume.dir/congest_vs_volume.cpp.o.d"
  "congest_vs_volume"
  "congest_vs_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congest_vs_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
