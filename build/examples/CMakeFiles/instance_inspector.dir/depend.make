# Empty dependencies file for instance_inspector.
# This may be replaced when dependencies are built.
