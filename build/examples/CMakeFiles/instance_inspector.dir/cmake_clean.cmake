file(REMOVE_RECURSE
  "CMakeFiles/instance_inspector.dir/instance_inspector.cpp.o"
  "CMakeFiles/instance_inspector.dir/instance_inspector.cpp.o.d"
  "instance_inspector"
  "instance_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
