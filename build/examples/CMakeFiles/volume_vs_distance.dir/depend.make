# Empty dependencies file for volume_vs_distance.
# This may be replaced when dependencies are built.
