file(REMOVE_RECURSE
  "CMakeFiles/volume_vs_distance.dir/volume_vs_distance.cpp.o"
  "CMakeFiles/volume_vs_distance.dir/volume_vs_distance.cpp.o.d"
  "volume_vs_distance"
  "volume_vs_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volume_vs_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
