# Empty compiler generated dependencies file for bench_hybrid_hh.
# This may be replaced when dependencies are built.
