file(REMOVE_RECURSE
  "CMakeFiles/bench_hybrid_hh.dir/bench_hybrid_hh.cpp.o"
  "CMakeFiles/bench_hybrid_hh.dir/bench_hybrid_hh.cpp.o.d"
  "bench_hybrid_hh"
  "bench_hybrid_hh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hybrid_hh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
