# Empty dependencies file for bench_fig2_volume.
# This may be replaced when dependencies are built.
