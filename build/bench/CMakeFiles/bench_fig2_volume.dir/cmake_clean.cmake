file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_volume.dir/bench_fig2_volume.cpp.o"
  "CMakeFiles/bench_fig2_volume.dir/bench_fig2_volume.cpp.o.d"
  "bench_fig2_volume"
  "bench_fig2_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
