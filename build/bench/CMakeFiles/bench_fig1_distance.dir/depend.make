# Empty dependencies file for bench_fig1_distance.
# This may be replaced when dependencies are built.
