# Empty compiler generated dependencies file for bench_leafcoloring.
# This may be replaced when dependencies are built.
