file(REMOVE_RECURSE
  "CMakeFiles/bench_leafcoloring.dir/bench_leafcoloring.cpp.o"
  "CMakeFiles/bench_leafcoloring.dir/bench_leafcoloring.cpp.o.d"
  "bench_leafcoloring"
  "bench_leafcoloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_leafcoloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
