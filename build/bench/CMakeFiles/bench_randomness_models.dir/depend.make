# Empty dependencies file for bench_randomness_models.
# This may be replaced when dependencies are built.
