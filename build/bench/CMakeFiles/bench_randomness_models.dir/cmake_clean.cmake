file(REMOVE_RECURSE
  "CMakeFiles/bench_randomness_models.dir/bench_randomness_models.cpp.o"
  "CMakeFiles/bench_randomness_models.dir/bench_randomness_models.cpp.o.d"
  "bench_randomness_models"
  "bench_randomness_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_randomness_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
