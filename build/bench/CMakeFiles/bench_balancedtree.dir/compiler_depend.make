# Empty compiler generated dependencies file for bench_balancedtree.
# This may be replaced when dependencies are built.
