file(REMOVE_RECURSE
  "CMakeFiles/bench_balancedtree.dir/bench_balancedtree.cpp.o"
  "CMakeFiles/bench_balancedtree.dir/bench_balancedtree.cpp.o.d"
  "bench_balancedtree"
  "bench_balancedtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_balancedtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
