# Empty compiler generated dependencies file for labels_test.
# This may be replaced when dependencies are built.
