file(REMOVE_RECURSE
  "CMakeFiles/hybrid_checker_test.dir/hybrid_checker_test.cpp.o"
  "CMakeFiles/hybrid_checker_test.dir/hybrid_checker_test.cpp.o.d"
  "hybrid_checker_test"
  "hybrid_checker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
