# Empty dependencies file for hybrid_checker_test.
# This may be replaced when dependencies are built.
