file(REMOVE_RECURSE
  "CMakeFiles/success_test.dir/success_test.cpp.o"
  "CMakeFiles/success_test.dir/success_test.cpp.o.d"
  "success_test"
  "success_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/success_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
