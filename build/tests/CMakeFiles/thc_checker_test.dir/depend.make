# Empty dependencies file for thc_checker_test.
# This may be replaced when dependencies are built.
