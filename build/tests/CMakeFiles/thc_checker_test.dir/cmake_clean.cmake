file(REMOVE_RECURSE
  "CMakeFiles/thc_checker_test.dir/thc_checker_test.cpp.o"
  "CMakeFiles/thc_checker_test.dir/thc_checker_test.cpp.o.d"
  "thc_checker_test"
  "thc_checker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thc_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
