file(REMOVE_RECURSE
  "CMakeFiles/promise_test.dir/promise_test.cpp.o"
  "CMakeFiles/promise_test.dir/promise_test.cpp.o.d"
  "promise_test"
  "promise_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
