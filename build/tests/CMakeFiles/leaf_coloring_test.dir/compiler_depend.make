# Empty compiler generated dependencies file for leaf_coloring_test.
# This may be replaced when dependencies are built.
