file(REMOVE_RECURSE
  "CMakeFiles/leaf_coloring_test.dir/leaf_coloring_test.cpp.o"
  "CMakeFiles/leaf_coloring_test.dir/leaf_coloring_test.cpp.o.d"
  "leaf_coloring_test"
  "leaf_coloring_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leaf_coloring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
