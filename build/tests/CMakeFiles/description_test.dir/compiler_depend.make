# Empty compiler generated dependencies file for description_test.
# This may be replaced when dependencies are built.
