# Empty compiler generated dependencies file for table1_integration_test.
# This may be replaced when dependencies are built.
