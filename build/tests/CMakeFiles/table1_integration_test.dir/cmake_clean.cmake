file(REMOVE_RECURSE
  "CMakeFiles/table1_integration_test.dir/table1_integration_test.cpp.o"
  "CMakeFiles/table1_integration_test.dir/table1_integration_test.cpp.o.d"
  "table1_integration_test"
  "table1_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
