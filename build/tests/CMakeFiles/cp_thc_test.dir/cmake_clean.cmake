file(REMOVE_RECURSE
  "CMakeFiles/cp_thc_test.dir/cp_thc_test.cpp.o"
  "CMakeFiles/cp_thc_test.dir/cp_thc_test.cpp.o.d"
  "cp_thc_test"
  "cp_thc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cp_thc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
