# Empty compiler generated dependencies file for cp_thc_test.
# This may be replaced when dependencies are built.
