# Empty dependencies file for bt_checker_test.
# This may be replaced when dependencies are built.
