file(REMOVE_RECURSE
  "CMakeFiles/bt_checker_test.dir/bt_checker_test.cpp.o"
  "CMakeFiles/bt_checker_test.dir/bt_checker_test.cpp.o.d"
  "bt_checker_test"
  "bt_checker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bt_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
