file(REMOVE_RECURSE
  "CMakeFiles/lcl_locality_test.dir/lcl_locality_test.cpp.o"
  "CMakeFiles/lcl_locality_test.dir/lcl_locality_test.cpp.o.d"
  "lcl_locality_test"
  "lcl_locality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcl_locality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
