# Empty compiler generated dependencies file for lcl_locality_test.
# This may be replaced when dependencies are built.
