# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for lcl_locality_test.
