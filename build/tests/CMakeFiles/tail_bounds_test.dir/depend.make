# Empty dependencies file for tail_bounds_test.
# This may be replaced when dependencies are built.
