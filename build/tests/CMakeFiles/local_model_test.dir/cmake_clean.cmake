file(REMOVE_RECURSE
  "CMakeFiles/local_model_test.dir/local_model_test.cpp.o"
  "CMakeFiles/local_model_test.dir/local_model_test.cpp.o.d"
  "local_model_test"
  "local_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
