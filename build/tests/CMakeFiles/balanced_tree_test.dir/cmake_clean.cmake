file(REMOVE_RECURSE
  "CMakeFiles/balanced_tree_test.dir/balanced_tree_test.cpp.o"
  "CMakeFiles/balanced_tree_test.dir/balanced_tree_test.cpp.o.d"
  "balanced_tree_test"
  "balanced_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balanced_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
