# Empty dependencies file for balanced_tree_test.
# This may be replaced when dependencies are built.
