file(REMOVE_RECURSE
  "CMakeFiles/hybrid_hh_test.dir/hybrid_hh_test.cpp.o"
  "CMakeFiles/hybrid_hh_test.dir/hybrid_hh_test.cpp.o.d"
  "hybrid_hh_test"
  "hybrid_hh_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_hh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
