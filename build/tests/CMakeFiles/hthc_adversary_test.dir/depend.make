# Empty dependencies file for hthc_adversary_test.
# This may be replaced when dependencies are built.
