file(REMOVE_RECURSE
  "CMakeFiles/hthc_adversary_test.dir/hthc_adversary_test.cpp.o"
  "CMakeFiles/hthc_adversary_test.dir/hthc_adversary_test.cpp.o.d"
  "hthc_adversary_test"
  "hthc_adversary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hthc_adversary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
