// volcal_fuzz — seeded differential fuzzing and invariant checking across
// the whole problem registry (src/check/).
//
//   volcal_fuzz --seed 1 --iters 500              # the CI smoke invocation
//   volcal_fuzz --family hthc --iters 50          # one family, quick
//   volcal_fuzz --seed 7 --out-dir repros         # write minimized failures
//   volcal_fuzz --replay tests/corpus/x.repro     # re-run a reproducer
//
// Exit status: 0 when every case (or replayed reproducer) passes, 1 on any
// failure, 2 on usage errors.  Failures are minimized before reporting; with
// --out-dir each minimized case is also written as a .repro file that
// tests/fuzz_regression_test.cpp can replay once committed to the corpus.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "check/fuzz.hpp"
#include "check/repro.hpp"

namespace {

void print_help() {
  std::printf(
      "volcal_fuzz — differential fuzzing & invariant checking harness\n\n"
      "  --seed <s>      base seed; a run is a pure function of (seed, iters) [1]\n"
      "  --iters <k>     cases to generate, round-robin over the registry [200]\n"
      "  --family <sub>  restrict to registry families whose name contains <sub>\n"
      "  --max-n <n>     upper bound for generated instance sizes [600]\n"
      "  --out-dir <d>   write minimized reproducers (*.repro) into <d>\n"
      "  --replay <f>    replay one reproducer file instead of fuzzing\n"
      "  --cache         also run the view-cache policy differential per case\n"
      "  --backend       also run the basic-vs-batched backend differential per case\n"
      "  --snapshot      also run the snapshot save/mmap-load round-trip differential\n"
      "  --mutate        also run the dynamic-graph mutation differential per case\n"
      "  --log           print every generated case\n"
      "  --help          this message\n");
}

int replay_file(const std::string& path, bool cache, bool backend, bool snapshot,
                bool mutate) {
  volcal::check::FuzzCase c;
  std::string recorded_error;
  std::string why;
  if (!volcal::check::load_repro_file(path, &c, &recorded_error, &why)) {
    std::fprintf(stderr, "volcal_fuzz: cannot replay %s: %s\n", path.c_str(), why.c_str());
    return 2;
  }
  std::printf("replaying %s\n  %s\n", path.c_str(), volcal::check::describe(c).c_str());
  if (!recorded_error.empty()) {
    std::printf("  originally failed with: %s\n", recorded_error.c_str());
  }
  volcal::check::CheckResult result = volcal::check::check_case(c);
  if (result.ok && cache) result = volcal::check::check_cache_case(c);
  if (result.ok && backend) result = volcal::check::check_backend_case(c);
  if (result.ok && snapshot) result = volcal::check::check_snapshot_case(c);
  if (result.ok && mutate) result = volcal::check::check_mutation_case(c);
  if (!result.ok) {
    std::printf("  STILL FAILING: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("  ok\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  volcal::check::FuzzOptions opts;
  std::vector<std::string> replays;
  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* name) -> const char* {
      const std::size_t len = std::strlen(name);
      if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
        return argv[i] + len + 1;
      }
      if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    const char* v = nullptr;
    if ((v = value("--seed")) != nullptr) {
      opts.seed = std::strtoull(v, nullptr, 10);
    } else if ((v = value("--iters")) != nullptr) {
      opts.iters = std::atoi(v);
    } else if ((v = value("--family")) != nullptr) {
      opts.family_filter = v;
    } else if ((v = value("--max-n")) != nullptr) {
      opts.max_n = static_cast<volcal::NodeIndex>(std::atoll(v));
    } else if ((v = value("--out-dir")) != nullptr) {
      opts.out_dir = v;
    } else if ((v = value("--replay")) != nullptr) {
      replays.push_back(v);
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      opts.cache = true;
    } else if (std::strcmp(argv[i], "--backend") == 0) {
      opts.backend = true;
    } else if (std::strcmp(argv[i], "--snapshot") == 0) {
      opts.snapshot = true;
    } else if (std::strcmp(argv[i], "--mutate") == 0) {
      opts.mutate = true;
    } else if (std::strcmp(argv[i], "--log") == 0) {
      opts.log_cases = true;
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      print_help();
      return 0;
    } else {
      std::fprintf(stderr, "volcal_fuzz: unknown argument %s (try --help)\n", argv[i]);
      return 2;
    }
  }

  if (!replays.empty()) {
    int status = 0;
    for (const std::string& path : replays) {
      status = std::max(status, replay_file(path, opts.cache, opts.backend, opts.snapshot,
                                            opts.mutate));
    }
    return status;
  }

  const volcal::check::FuzzReport report = volcal::check::run_fuzz(opts);
  if (report.ok()) {
    std::printf("volcal_fuzz: %d cases ok (seed %llu)\n", report.iters_run,
                static_cast<unsigned long long>(opts.seed));
    return 0;
  }
  std::printf("volcal_fuzz: %zu failure(s) in %d cases (seed %llu)\n",
              report.failures.size(), report.iters_run,
              static_cast<unsigned long long>(opts.seed));
  for (const auto& f : report.failures) {
    std::printf("  %s\n    %s\n", f.error.c_str(),
                volcal::check::describe(f.minimized).c_str());
    if (!f.repro_path.empty()) std::printf("    reproducer: %s\n", f.repro_path.c_str());
  }
  return 1;
}
