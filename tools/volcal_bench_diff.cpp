// volcal_bench_diff — compares two benchmark telemetry artifact sets (the
// perf/diff.hpp policy): cost curves, growth classes, and fit parameters are
// deterministic, so any drift is a hard failure; wall time is gated against a
// configurable tolerance with per-curve/per-phase attribution when it trips.
//
// Usage: volcal_bench_diff [--wall-tolerance X] [--ignore-wall] BASE CAND
//   BASE / CAND   a BENCH_*.json / --json artifact file, or a directory of
//                 BENCH_*.json files (e.g. bench/baselines)
//
// Exit codes: 0 = no regression, 1 = regression (hard or wall), 2 = usage or
// unreadable/invalid artifacts.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "perf/artifact.hpp"
#include "perf/diff.hpp"

namespace volcal::perf {
namespace {

namespace fs = std::filesystem;

// Loads one artifact set: a single artifact file (bench-family or
// bench-report), a bench-summary file (its embedded families), or a
// directory of BENCH_*.json files.  Returns false on any unreadable or
// schema-invalid input — the diff must never silently compare less than the
// caller asked for.
bool load_set(const std::string& path, std::vector<BenchArtifact>& out) {
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    std::vector<std::string> files;
    for (const auto& ent : fs::directory_iterator(path, ec)) {
      if (!ent.is_regular_file()) continue;
      const std::string name = ent.path().filename().string();
      if (name.rfind("BENCH_", 0) != 0 || ent.path().extension() != ".json") continue;
      if (name == "BENCH_SUMMARY.json") continue;  // families are on disk already
      files.push_back(ent.path().string());
    }
    if (ec) {
      std::fprintf(stderr, "volcal_bench_diff: cannot list %s: %s\n", path.c_str(),
                   ec.message().c_str());
      return false;
    }
    if (files.empty()) {
      std::fprintf(stderr, "volcal_bench_diff: no BENCH_*.json artifacts in %s\n",
                   path.c_str());
      return false;
    }
    std::sort(files.begin(), files.end());
    for (const std::string& f : files) {
      std::string err;
      auto art = BenchArtifact::load(f, &err);
      if (!art) {
        std::fprintf(stderr, "volcal_bench_diff: %s: %s\n", f.c_str(), err.c_str());
        return false;
      }
      out.push_back(std::move(*art));
    }
    return true;
  }

  std::string err;
  if (auto summary = BenchSummary::load(path, &err)) {
    out = std::move(summary->families);
    return true;
  }
  auto art = BenchArtifact::load(path, &err);
  if (!art) {
    std::fprintf(stderr, "volcal_bench_diff: %s: %s\n", path.c_str(), err.c_str());
    return false;
  }
  out.push_back(std::move(*art));
  return true;
}

int run(int argc, char** argv) {
  DiffOptions opt;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ignore-wall") == 0) {
      opt.ignore_wall = true;
    } else if (std::strcmp(argv[i], "--wall-tolerance") == 0 && i + 1 < argc) {
      opt.wall_tolerance = std::atof(argv[++i]);
    } else if (std::strncmp(argv[i], "--wall-tolerance=", 17) == 0) {
      opt.wall_tolerance = std::atof(argv[i] + 17);
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "volcal_bench_diff [--wall-tolerance X] [--ignore-wall] BASE CAND\n\n"
          "Compares telemetry artifact sets (files or directories of\n"
          "BENCH_*.json).  Cost-curve drift is always a hard failure; total\n"
          "wall time may exceed the baseline by the tolerance (default %.0f%%)\n"
          "unless --ignore-wall.  Exit: 0 ok, 1 regression, 2 usage/io.\n",
          opt.wall_tolerance * 100);
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "volcal_bench_diff: unknown flag '%s' (try --help)\n", argv[i]);
      return 2;
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr, "volcal_bench_diff: need exactly BASE and CAND (try --help)\n");
    return 2;
  }

  std::vector<BenchArtifact> base, cand;
  if (!load_set(paths[0], base) || !load_set(paths[1], cand)) return 2;

  const DiffResult result = diff_artifact_sets(base, cand, opt);
  std::fputs(result.render().c_str(), stdout);
  return result.ok() ? 0 : 1;
}

}  // namespace
}  // namespace volcal::perf

int main(int argc, char** argv) { return volcal::perf::run(argc, argv); }
