// volcal_top — live terminal dashboard for a running volcal_serve.
//
// Polls the server's Stats frame (serve/protocol.hpp) over the serve socket
// at a fixed interval and renders the snapshot: throughput (QPS derived
// from the completed-counter delta between polls), queue depth and
// in-flight, since-start and windowed latency percentiles, shed and
// slow-query counts, cache hit ratio, batch occupancy, and connection
// count.  Stats polls are answered on the server's reader thread — they
// never enter the admission queue, so watching a loaded server does not
// displace queries.  Derived columns subtract the dashboard's own footprint
// (its poll connection); --raw prints the server's JSON verbatim.
//
// Modes:
//   default        redraw every --interval seconds until ^C (ANSI clear
//                  when stdout is a TTY, plain append otherwise)
//   --once         print one snapshot and exit (CI polls mid-load with
//                  this: --once --raw captures the exact stats JSON for
//                  check_artifacts.py --stats-snapshot)
//   --count N      exit after N polls
//   --raw          print the raw stats JSON line instead of the dashboard
//
// Usage: volcal_top --socket PATH [--interval SEC] [--count N] [--once]
//                   [--raw]
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "perf/json.hpp"
#include "volcal/serve.hpp"

namespace volcal {
namespace {

struct Snapshot {
  perf::JsonValue doc;
  std::string raw;
  std::chrono::steady_clock::time_point at;
};

bool poll_stats(const std::string& socket_path, Snapshot* out) {
  // One connection per poll: the dashboard must observe the server the way
  // any client would, and a fresh connect doubles as a liveness check.  The
  // snapshot therefore always contains the dashboard itself — its own live
  // connection is up while the Stats frame is built — which render()
  // subtracts back out of the derived columns.
  serve::ServeClient client;
  if (!client.connect(socket_path)) return false;
  if (!client.stats(&out->raw)) return false;
  out->at = std::chrono::steady_clock::now();
  std::string err;
  out->doc = perf::parse_json(out->raw, &err);
  if (out->doc.is_null()) {
    std::fprintf(stderr, "volcal_top: bad stats payload: %s\n", err.c_str());
    return false;
  }
  return true;
}

void render(const Snapshot& snap, const Snapshot* prev, bool clear) {
  const perf::JsonValue& d = snap.doc;
  if (clear) std::printf("\x1b[H\x1b[2J");

  const std::int64_t completed = d.int_at("completed");
  double qps = 0.0;
  if (prev != nullptr) {
    const double dt = std::chrono::duration<double>(snap.at - prev->at).count();
    const std::int64_t before = prev->doc.int_at("completed");
    if (dt > 0.0 && completed >= before) {
      qps = static_cast<double>(completed - before) / dt;
    }
  }

  // Self-poll correction: the dashboard's poll connection is live while the
  // server builds the Stats frame, so the raw gauge always counts us.  The
  // derived column subtracts that one connection — "conns" is the clients
  // being served, not the instrument watching them.  (QPS needs no such
  // correction: stats polls are answered on the reader thread and never
  // touch the accepted/completed counters.)  The raw JSON (--raw) is left
  // untouched so snapshots stay comparable with server-side artifacts.
  const std::int64_t raw_conns = [&] {
    const perf::JsonValue* m = d.find("metrics");
    const perf::JsonValue* g = m ? m->find("gauges") : nullptr;
    return g ? g->int_at("serve.connections") : std::int64_t{0};
  }();
  std::printf("volcal_serve  up %.1f s  |  %.0f qps  |  queue %lld  in-flight %lld"
              "  conns %lld\n",
              d.number_at("uptime_seconds"), qps,
              static_cast<long long>(d.int_at("queue_depth")),
              static_cast<long long>(d.int_at("in_flight")),
              static_cast<long long>(std::max<std::int64_t>(0, raw_conns - 1)));
  std::printf("requests      accepted %lld  completed %lld  shed %lld  invalid %lld"
              "  slow %lld\n",
              static_cast<long long>(d.int_at("accepted")),
              static_cast<long long>(completed),
              static_cast<long long>(d.int_at("shed")),
              static_cast<long long>(d.int_at("invalid")),
              static_cast<long long>(d.int_at("slow_queries")));
  if (const perf::JsonValue* lat = d.find("latency")) {
    std::printf("latency       p50 %.0f ns  p95 %.0f ns  p99 %.0f ns  (%lld samples"
                " since start)\n",
                lat->number_at("p50_ns"), lat->number_at("p95_ns"),
                lat->number_at("p99_ns"),
                static_cast<long long>(lat->int_at("count")));
  }
  if (const perf::JsonValue* win = d.find("window")) {
    if (const perf::JsonValue* lat = win->find("latency")) {
      std::printf("window %.0fs    p50 %.0f ns  p95 %.0f ns  p99 %.0f ns  (%lld"
                  " samples)\n",
                  win->number_at("seconds"), lat->number_at("p50_ns"),
                  lat->number_at("p95_ns"), lat->number_at("p99_ns"),
                  static_cast<long long>(lat->int_at("count")));
    }
  }
  if (const perf::JsonValue* cache = d.find("cache")) {
    const std::int64_t hits = cache->int_at("hits");
    const std::int64_t misses = cache->int_at("misses");
    const std::int64_t lookups = hits + misses;
    std::printf("cache         hits %lld  misses %lld  (%.1f%% hit)  evictions %lld"
                "  %.1f MiB inserted\n",
                static_cast<long long>(hits), static_cast<long long>(misses),
                lookups > 0 ? 100.0 * static_cast<double>(hits) /
                                  static_cast<double>(lookups)
                            : 0.0,
                static_cast<long long>(cache->int_at("evictions")),
                static_cast<double>(cache->int_at("inserted_bytes")) /
                    (1024.0 * 1024.0));
  }
  if (const perf::JsonValue* batch = d.find("batch")) {
    std::printf("batching      waves %lld  fused runs %lld  occupancy %.1f / %lld\n",
                static_cast<long long>(batch->int_at("waves")),
                static_cast<long long>(batch->int_at("batched_runs")),
                batch->number_at("mean_occupancy"),
                static_cast<long long>(batch->int_at("batch_max")));
  }
  std::fflush(stdout);
}

int run(int argc, char** argv) {
  std::string socket_path;
  double interval_s = 1.0;
  std::int64_t count = -1;  // -1 = until interrupted
  bool raw = false;
  for (int i = 1; i < argc; ++i) {
    auto value_of = [&](const char* name) -> const char* {
      const std::size_t len = std::strlen(name);
      if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
        return argv[i] + len + 1;
      }
      if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = value_of("--socket")) {
      socket_path = v;
    } else if (const char* v = value_of("--interval")) {
      interval_s = std::atof(v);
    } else if (const char* v = value_of("--count")) {
      count = std::atoll(v);
    } else if (std::strcmp(argv[i], "--once") == 0) {
      count = 1;
    } else if (std::strcmp(argv[i], "--raw") == 0) {
      raw = true;
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "volcal_top — live dashboard over a volcal_serve Stats socket\n\n"
          "  --socket <p>    serve socket to poll (required)\n"
          "  --interval <s>  seconds between polls [1]\n"
          "  --count <n>     exit after n polls [until ^C]\n"
          "  --once          single poll (same as --count 1)\n"
          "  --raw           print the raw stats JSON line(s) instead\n");
      return 0;
    } else {
      std::fprintf(stderr, "volcal_top: unknown argument '%s' (try --help)\n", argv[i]);
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "volcal_top: --socket is required (try --help)\n");
    return 2;
  }

  const bool tty = ::isatty(STDOUT_FILENO) != 0;
  Snapshot prev;
  bool have_prev = false;
  for (std::int64_t polls = 0; count < 0 || polls < count; ++polls) {
    if (polls > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
    }
    Snapshot snap;
    if (!poll_stats(socket_path, &snap)) {
      std::fprintf(stderr, "volcal_top: cannot poll %s (server gone?)\n",
                   socket_path.c_str());
      return 1;
    }
    if (raw) {
      std::printf("%s\n", snap.raw.c_str());
      std::fflush(stdout);
    } else {
      render(snap, have_prev ? &prev : nullptr, tty && count != 1);
    }
    prev = std::move(snap);
    have_prev = true;
  }
  return 0;
}

}  // namespace
}  // namespace volcal

int main(int argc, char** argv) { return volcal::run(argc, argv); }
