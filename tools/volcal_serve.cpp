// volcal_serve — long-running query front-end over a loaded instance.
//
// Loads a .vsnap snapshot (or generates a registry instance), then serves
// per-node label queries over a Unix-domain socket speaking the
// length-prefixed frame protocol (src/serve/protocol.hpp).  Queries are
// batched onto the fused multi-start backend where the family's probe plan
// allows, share one cross-request ball cache, and are admission-controlled
// by a bounded queue (overload answers Shed + retry-after instead of
// building unbounded backlog).
//
// Signals:
//   SIGTERM / SIGINT  graceful drain: stop admission, answer every accepted
//                     request, write the perf artifact, exit 0.
//   SIGHUP            hot swap: reload --snapshot and atomically replace the
//                     served instance; in-flight batches finish against the
//                     old mapping, the ball cache re-keys via the new
//                     storage token (never by address — see the pointer-ABA
//                     notes in runtime/view_cache.hpp).
//
// Usage: volcal_serve --snapshot FILE | --family NAME [--n N] [--seed S]
//                     --socket PATH [--threads N] [--queue N] [--batch N]
//                     [--cache off|shared] [--cache-mb N]
//                     [--retry-after-ms N] [--artifact FILE]
//                     [--stats-interval SEC] [--stats-log FILE]
//                     [--stats-window SEC] [--trace-serve FILE]
//                     [--slow-ms MS] [--slow-log FILE]
//
// The artifact (--artifact) is a schema-v2 bench-report with the "serve"
// block: accepted/completed/shed counters, nearest-rank p50/p95/p99 latency,
// sustained QPS, and the shared cache's hit counters —
// tools/check_artifacts.py --serve-report validates it in CI.
//
// Live observability: --stats-interval writes the service's stats_json()
// snapshot as one JSONL line per tick (to --stats-log, else stdout) plus one
// final line after the drain — so the log's last line reconciles exactly
// with the artifact's end-of-run totals (check_artifacts.py --stats-jsonl
// asserts counters are monotone across lines and percentiles are ordered
// within each).  The same snapshot answers the protocol's Stats frame at any
// moment (tools/volcal_top polls it).  --trace-serve collects per-request
// spans and exports a Chrome trace on drain; --slow-ms enables the bounded
// slow-query log (written as JSONL by --slow-log).
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "perf/artifact.hpp"
#include "volcal/io.hpp"
#include "volcal/problems.hpp"
#include "volcal/serve.hpp"

namespace volcal {
namespace {

// Self-pipe signal plumbing: handlers record the signal and poke the pipe;
// the main loop polls the read end.
int g_signal_pipe[2] = {-1, -1};
std::atomic<int> g_drain_signal{0};
std::atomic<int> g_reload_signal{0};

void on_drain_signal(int) {
  g_drain_signal.store(1, std::memory_order_relaxed);
  const char byte = 'q';
  [[maybe_unused]] const ssize_t rc = ::write(g_signal_pipe[1], &byte, 1);
}

void on_reload_signal(int) {
  g_reload_signal.store(1, std::memory_order_relaxed);
  const char byte = 'r';
  [[maybe_unused]] const ssize_t rc = ::write(g_signal_pipe[1], &byte, 1);
}

serve::ServeTarget load_target(const std::string& snapshot_path,
                               const std::string& family, NodeIndex n,
                               std::uint64_t seed) {
  if (!snapshot_path.empty()) {
    ErasedInstance inst = io::load_instance(snapshot_path);
    return serve::make_serve_target(
        std::make_shared<const ErasedInstance>(std::move(inst)));
  }
  const RegistryEntry* entry = ProblemRegistry::global().find(family);
  if (entry == nullptr) {
    throw std::runtime_error("unknown family '" + family + "'");
  }
  return serve::make_serve_target(
      std::make_shared<const ErasedInstance>(entry->make(n, seed)));
}

bool write_artifact(const std::string& path, const serve::QueryService& service,
                    double wall_seconds) {
  const serve::ServeCounters counters = service.counters();
  const stats::Summary latency = service.latency_summary();

  perf::BenchArtifact artifact;
  artifact.kind = "bench-report";
  artifact.tool = "volcal_serve";
  artifact.stamp_probes(service.threads());
  artifact.cache = service.cache_stats();
  artifact.total_wall_seconds = wall_seconds;
  artifact.phases.push_back({"serve", wall_seconds});

  perf::ServeStatsBlock serve_block;
  serve_block.accepted = counters.accepted;
  serve_block.completed = counters.completed;
  serve_block.shed = counters.shed;
  serve_block.invalid = counters.invalid;
  serve_block.swaps = counters.swaps;
  serve_block.latency_samples = static_cast<std::int64_t>(latency.count);
  serve_block.p50_ns = latency.median;
  serve_block.p95_ns = latency.p95;
  serve_block.p99_ns = latency.p99;
  serve_block.mean_ns = latency.mean;
  serve_block.max_ns = latency.max;
  serve_block.wall_seconds = wall_seconds;
  serve_block.qps =
      wall_seconds > 0.0 ? static_cast<double>(counters.completed) / wall_seconds : 0.0;
  artifact.serve = serve_block;

  // The latency percentiles double as the artifact's curve (schema requires
  // at least one): abscissa = percentile, cost = nanoseconds.
  perf::ArtifactCurve curve;
  curve.name = "latency-percentiles";
  curve.claim = "";
  curve.points.push_back({50.0, latency.median, 0.0});
  curve.points.push_back({95.0, latency.p95, 0.0});
  curve.points.push_back({99.0, latency.p99, 0.0});
  curve.refit();
  artifact.curves.push_back(std::move(curve));
  return artifact.write_file(path);
}

int run(int argc, char** argv) {
  std::string snapshot_path;
  std::string family;
  std::string socket_path;
  std::string artifact_path;
  std::string stats_log_path;
  std::string trace_path;
  std::string slow_log_path;
  double stats_interval_s = 0.0;  // 0 disables the periodic export
  NodeIndex n = 4096;
  std::uint64_t seed = 7;
  serve::ServeConfig config;
  config.cache.policy = CachePolicy::Shared;

  for (int i = 1; i < argc; ++i) {
    auto value_of = [&](const char* name) -> const char* {
      const std::size_t len = std::strlen(name);
      if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
        return argv[i] + len + 1;
      }
      if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = value_of("--snapshot")) {
      snapshot_path = v;
    } else if (const char* v = value_of("--family")) {
      family = v;
    } else if (const char* v = value_of("--socket")) {
      socket_path = v;
    } else if (const char* v = value_of("--artifact")) {
      artifact_path = v;
    } else if (const char* v = value_of("--n")) {
      n = static_cast<NodeIndex>(std::atoll(v));
    } else if (const char* v = value_of("--seed")) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--threads")) {
      config.threads = std::atoi(v);
    } else if (const char* v = value_of("--queue")) {
      config.queue_capacity = static_cast<std::size_t>(std::atoll(v));
    } else if (const char* v = value_of("--batch")) {
      config.batch_max = std::atoi(v);
    } else if (const char* v = value_of("--retry-after-ms")) {
      config.retry_after_ms = static_cast<std::uint32_t>(std::atoi(v));
    } else if (const char* v = value_of("--cache")) {
      if (!CacheConfig::policy_from_name(v, &config.cache.policy)) {
        std::fprintf(stderr, "volcal_serve: unknown cache policy '%s'\n", v);
        return 2;
      }
    } else if (const char* v = value_of("--cache-mb")) {
      config.cache.byte_budget = static_cast<std::size_t>(std::atoll(v)) << 20;
    } else if (const char* v = value_of("--stats-interval")) {
      stats_interval_s = std::atof(v);
    } else if (const char* v = value_of("--stats-log")) {
      stats_log_path = v;
    } else if (const char* v = value_of("--stats-window")) {
      config.stats_window_seconds = std::atof(v);
    } else if (const char* v = value_of("--trace-serve")) {
      trace_path = v;
    } else if (const char* v = value_of("--slow-ms")) {
      config.slow_threshold_ns =
          static_cast<std::int64_t>(std::atof(v) * 1e6);
    } else if (const char* v = value_of("--slow-log")) {
      slow_log_path = v;
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "volcal_serve — per-node label query service over a loaded instance\n\n"
          "  --snapshot <f>       serve this .vsnap (SIGHUP reloads it in place)\n"
          "  --family <s>         generate and serve a registry instance instead\n"
          "  --n <n>              generated instance size [4096]\n"
          "  --seed <s>           generator seed [7]\n"
          "  --socket <p>         Unix socket path to listen on (required)\n"
          "  --threads <n>        worker threads [VOLCAL_THREADS, else 1]\n"
          "  --queue <n>          admission queue capacity [1024]\n"
          "  --batch <n>          max requests fused per wave [64]\n"
          "  --retry-after-ms <n> shed backoff hint [50]\n"
          "  --cache <p>          off | shared [shared]\n"
          "  --cache-mb <n>       ball-cache budget in MiB [256]\n"
          "  --artifact <f>       write the serve perf artifact on drain\n"
          "  --stats-interval <s> write a stats JSONL line every s seconds\n"
          "  --stats-log <f>      periodic stats destination [stdout]\n"
          "  --stats-window <s>   sliding window for windowed percentiles [10]\n"
          "  --trace-serve <f>    collect request spans, write Chrome trace on drain\n"
          "  --slow-ms <ms>       slow-query threshold (enables the slow log)\n"
          "  --slow-log <f>       write the slow-query JSONL on drain\n");
      return 0;
    } else {
      std::fprintf(stderr, "volcal_serve: unknown argument '%s' (try --help)\n", argv[i]);
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "volcal_serve: --socket is required (try --help)\n");
    return 2;
  }
  if (snapshot_path.empty() == family.empty()) {
    std::fprintf(stderr, "volcal_serve: give exactly one of --snapshot / --family\n");
    return 2;
  }

  serve::ServeTarget target;
  try {
    target = load_target(snapshot_path, family, n, seed);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "volcal_serve: cannot load instance: %s\n", e.what());
    return 1;
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::perror("volcal_serve: pipe");
    return 1;
  }
  // Non-blocking read end: the main loop drains whatever bytes handlers
  // wrote without ever sleeping inside read().
  ::fcntl(g_signal_pipe[0], F_SETFL, O_NONBLOCK);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = on_drain_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  sa.sa_handler = on_reload_signal;
  ::sigaction(SIGHUP, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // dead clients surface as write errors

  // The tracer must outlive the service (workers record spans until drain).
  std::unique_ptr<serve::ServeTracer> tracer;
  if (!trace_path.empty()) {
    tracer = std::make_unique<serve::ServeTracer>();
    config.tracer = tracer.get();
  }

  serve::QueryService service(std::move(target), config);
  serve::SocketServer server;
  if (!server.start(service, socket_path)) return 1;

  std::FILE* stats_file = stdout;
  if (stats_interval_s > 0.0 && !stats_log_path.empty()) {
    stats_file = std::fopen(stats_log_path.c_str(), "w");
    if (stats_file == nullptr) {
      std::fprintf(stderr, "volcal_serve: cannot open %s for writing\n",
                   stats_log_path.c_str());
      return 1;
    }
  }
  auto emit_stats_line = [&] {
    const std::string line = service.stats_json();
    std::fwrite(line.data(), 1, line.size(), stats_file);
    std::fputc('\n', stats_file);
    std::fflush(stats_file);
  };
  std::printf("volcal_serve: serving %s (n=%lld) on %s, %d thread(s)\n",
              snapshot_path.empty() ? family.c_str() : snapshot_path.c_str(),
              static_cast<long long>(service.node_count()), socket_path.c_str(),
              service.threads());
  std::fflush(stdout);

  const auto serve_begin = std::chrono::steady_clock::now();
  auto next_stats = serve_begin + std::chrono::duration_cast<
                                      std::chrono::steady_clock::duration>(
                                      std::chrono::duration<double>(
                                          stats_interval_s > 0.0 ? stats_interval_s
                                                                 : 0.0));
  while (true) {
    int timeout_ms = -1;
    if (stats_interval_s > 0.0) {
      const auto until = next_stats - std::chrono::steady_clock::now();
      timeout_ms = std::max(
          0, static_cast<int>(
                 std::chrono::duration_cast<std::chrono::milliseconds>(until)
                     .count()));
    }
    pollfd pfd{g_signal_pipe[0], POLLIN, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0 && errno != EINTR) break;
    if (stats_interval_s > 0.0 &&
        std::chrono::steady_clock::now() >= next_stats) {
      emit_stats_line();
      next_stats += std::chrono::duration_cast<
          std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(stats_interval_s));
    }
    char drain_buf[64];
    while (::read(g_signal_pipe[0], drain_buf, sizeof drain_buf) > 0) {
    }
    if (g_reload_signal.exchange(0, std::memory_order_relaxed) != 0) {
      if (snapshot_path.empty()) {
        std::fprintf(stderr, "volcal_serve: SIGHUP ignored (no --snapshot to reload)\n");
      } else {
        try {
          service.swap_target(load_target(snapshot_path, family, n, seed));
          std::printf("volcal_serve: reloaded %s (swap #%lld)\n", snapshot_path.c_str(),
                      static_cast<long long>(service.counters().swaps));
          std::fflush(stdout);
        } catch (const std::exception& e) {
          // Keep serving the old target: a bad reload must not take the
          // service down.
          std::fprintf(stderr, "volcal_serve: reload failed, keeping old target: %s\n",
                       e.what());
        }
      }
    }
    if (g_drain_signal.load(std::memory_order_relaxed) != 0) break;
  }

  // Graceful drain: stop admission and answer everything accepted, then
  // close the transport and report.
  service.drain_and_stop();
  server.stop();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - serve_begin)
          .count();

  if (stats_interval_s > 0.0) {
    // One final post-drain line: the log's last snapshot equals the
    // artifact's end-of-run totals exactly (everything accepted has
    // completed, the queue is empty).
    emit_stats_line();
  }
  if (stats_file != stdout && stats_file != nullptr) std::fclose(stats_file);

  if (tracer) {
    const std::vector<serve::RequestSpan> spans = tracer->spans();
    if (serve::write_serve_chrome_trace(trace_path, spans)) {
      std::printf("volcal_serve: wrote %zu request spans to %s%s\n", spans.size(),
                  trace_path.c_str(),
                  tracer->dropped() > 0 ? " (capacity hit; newest spans dropped)"
                                        : "");
    }
  }
  if (!slow_log_path.empty()) {
    const std::vector<serve::SlowQuery> slow = service.slow_queries();
    if (serve::write_slow_query_log(slow_log_path, slow)) {
      std::printf("volcal_serve: wrote %zu slow-query records to %s\n",
                  slow.size(), slow_log_path.c_str());
    }
  }

  const serve::ServeCounters counters = service.counters();
  const stats::Summary latency = service.latency_summary();
  const CacheStats cache = service.cache_stats();
  std::printf(
      "volcal_serve: drained — accepted %lld, completed %lld, shed %lld, "
      "invalid %lld, swaps %lld\n",
      static_cast<long long>(counters.accepted),
      static_cast<long long>(counters.completed),
      static_cast<long long>(counters.shed), static_cast<long long>(counters.invalid),
      static_cast<long long>(counters.swaps));
  std::printf(
      "volcal_serve: latency p50 %.0f ns, p95 %.0f ns, p99 %.0f ns over %zu "
      "samples; cache hits %lld / misses %lld\n",
      latency.median, latency.p95, latency.p99, latency.count,
      static_cast<long long>(cache.hits), static_cast<long long>(cache.misses));

  if (!artifact_path.empty() && !write_artifact(artifact_path, service, wall_seconds)) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace volcal

int main(int argc, char** argv) { return volcal::run(argc, argv); }
