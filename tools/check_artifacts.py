#!/usr/bin/env python3
"""Validate the artifacts a bench binary writes under --json / --metrics /
--trace / --chrome-trace, plus the canonical perf artifacts volcal_bench
writes (BENCH_<family>.json, BENCH_SUMMARY.json).

CI runs a small bench with all four flags and then this script; a schema
drift in any exporter (bench JsonReport, obs SweepMetrics, trace JSONL,
Chrome trace_event, perf BenchArtifact) fails the job.  Internal
cross-checks go beyond JSON well-formedness: metrics totals must be
self-consistent with the histograms, every trace query line must belong to
a declared sweep/exec, and bench-family n-sweeps must be strictly monotone
with finite non-negative costs.

Usage:
  check_artifacts.py --json b.json --metrics m.json --trace t.jsonl \
                     --chrome-trace c.json \
                     --bench-family BENCH_leaf-coloring.json \
                     --bench-summary BENCH_SUMMARY.json
All flags optional; at least one must be given.  --bench-family may be
repeated once per family artifact.  --serve-report validates a
volcal_serve / volcal_load artifact, whose schema-v2 'serve' block
(admission counters + latency percentiles) is mandatory; repeatable.

Live-observability artifacts: --stats-jsonl validates a volcal_serve
--stats-log stream (every counter monotone across lines, percentiles
ordered within each), --stats-snapshot a single captured Stats poll, and
--against-serve reconciles both with the end-of-run serve artifact — no
snapshot may exceed the final totals, and the last JSONL line (written
after drain) must equal them exactly.
"""

import argparse
import json
import math
import sys

ARTIFACT_SCHEMA_VERSION = 2
MIN_ARTIFACT_SCHEMA_VERSION = 1  # v1 = pre-view-cache, no "cache" block
CACHE_POLICIES = ("off", "perstart", "shared")
CACHE_COUNTERS = ("hits", "misses", "evictions", "served_nodes",
                  "inserted_bytes")
BACKENDS = ("basic", "batched")
SERVE_COUNTERS = ("accepted", "completed", "shed", "invalid", "swaps",
                  "latency_samples")
SERVE_GAUGES = ("p50_ns", "p95_ns", "p99_ns", "mean_ns", "max_ns", "qps",
                "wall_seconds")
BATCH_COUNTERS = ("batched_sweeps", "batches", "batched_starts", "waves",
                  "expanded_nodes")
MUTATE_COUNTERS = ("updates", "applied", "rejected", "cache_evicted",
                   "cache_retained", "flushes")
MUTATE_GAUGES = ("update_p50_ns", "update_p95_ns", "update_p99_ns",
                 "apply_p50_ns")

failures = []


def check(ok, what):
    if not ok:
        failures.append(what)
    return ok


def require_keys(obj, keys, where):
    for k in keys:
        check(k in obj, f"{where}: missing key '{k}'")


def check_schema_version(doc, where):
    v = doc.get("schema_version")
    check(isinstance(v, int)
          and MIN_ARTIFACT_SCHEMA_VERSION <= v <= ARTIFACT_SCHEMA_VERSION,
          f"{where}: schema_version {v} outside supported range "
          f"[{MIN_ARTIFACT_SCHEMA_VERSION}, {ARTIFACT_SCHEMA_VERSION}]")
    return v


def check_cache_block(doc, where):
    """Schema v2: the view-cache counters between 'phases' and 'alloc'."""
    cache = doc.get("cache")
    if not check(isinstance(cache, dict), f"{where}: missing 'cache' block"):
        return
    require_keys(cache, ("policy",) + CACHE_COUNTERS, f"{where} cache")
    check(cache.get("policy") in CACHE_POLICIES,
          f"{where} cache: unknown policy {cache.get('policy')!r}")
    for k in CACHE_COUNTERS:
        v = cache.get(k, -1)
        check(isinstance(v, int) and v >= 0,
              f"{where} cache: {k} must be a non-negative integer, got {v!r}")


def check_serve_block(doc, where):
    """Schema v2 optional block: volcal_serve / volcal_load query-service
    counters and latency percentiles.  Required only under --serve-report."""
    serve = doc.get("serve")
    if not check(isinstance(serve, dict), f"{where}: missing 'serve' block"):
        return
    require_keys(serve, SERVE_COUNTERS + SERVE_GAUGES, f"{where} serve")
    for k in SERVE_COUNTERS:
        v = serve.get(k, -1)
        check(isinstance(v, int) and v >= 0,
              f"{where} serve: {k} must be a non-negative integer, got {v!r}")
    for k in SERVE_GAUGES:
        v = serve.get(k, -1.0)
        check(isinstance(v, (int, float)) and math.isfinite(v) and v >= 0,
              f"{where} serve: {k} must be finite and >= 0, got {v!r}")
    check(serve.get("completed", 0) <= serve.get("accepted", 0),
          f"{where} serve: completed {serve.get('completed')} exceeds "
          f"accepted {serve.get('accepted')}")
    p50, p95, p99 = (serve.get("p50_ns", 0), serve.get("p95_ns", 0),
                     serve.get("p99_ns", 0))
    check(p50 <= p95 <= p99,
          f"{where} serve: percentiles not monotone "
          f"(p50 {p50}, p95 {p95}, p99 {p99})")
    check(p99 <= serve.get("max_ns", 0),
          f"{where} serve: p99 {p99} exceeds max {serve.get('max_ns')}")
    if serve.get("latency_samples", 0) > 0:
        check(serve.get("completed", 0) > 0,
              f"{where} serve: latency samples without completed requests")
    # Optional shed-accounting fields (volcal_load --retry-sheds); absent in
    # older artifacts, defaulting to zero.
    sp50, sp95, sp99 = (serve.get("shed_p50_ns", 0),
                        serve.get("shed_p95_ns", 0),
                        serve.get("shed_p99_ns", 0))
    check(sp50 <= sp95 <= sp99,
          f"{where} serve: shed percentiles not monotone "
          f"(p50 {sp50}, p95 {sp95}, p99 {sp99})")
    check(serve.get("shed_latency_samples", 0) <= serve.get("shed", 0),
          f"{where} serve: more shed latency samples "
          f"({serve.get('shed_latency_samples')}) than shed responses "
          f"({serve.get('shed')})")
    check(serve.get("retry_compliant", 0) <= serve.get("retries", 0),
          f"{where} serve: retry_compliant {serve.get('retry_compliant')} "
          f"exceeds retries {serve.get('retries')}")


def check_mutate_block(doc, where, required=False):
    """Schema v2 optional block: volcal_load --update-rate mutation tallies.
    Validated whenever present; `required` (--expect-mutate) additionally
    demands the block exists and records applied updates."""
    mutate = doc.get("mutate")
    if mutate is None:
        check(not required, f"{where}: missing 'mutate' block "
                            f"(--expect-mutate)")
        return
    if not check(isinstance(mutate, dict), f"{where}: 'mutate' is not an object"):
        return
    require_keys(mutate, MUTATE_COUNTERS + MUTATE_GAUGES, f"{where} mutate")
    for k in MUTATE_COUNTERS:
        v = mutate.get(k, -1)
        check(isinstance(v, int) and v >= 0,
              f"{where} mutate: {k} must be a non-negative integer, got {v!r}")
    for k in MUTATE_GAUGES:
        v = mutate.get(k, -1.0)
        check(isinstance(v, (int, float)) and math.isfinite(v) and v >= 0,
              f"{where} mutate: {k} must be finite and >= 0, got {v!r}")
    updates = mutate.get("updates", 0)
    applied = mutate.get("applied", 0)
    rejected = mutate.get("rejected", 0)
    check(applied + rejected <= updates,
          f"{where} mutate: applied {applied} + rejected {rejected} "
          f"exceeds updates {updates}")
    check(mutate.get("flushes", 0) <= applied,
          f"{where} mutate: flushes {mutate.get('flushes')} exceeds "
          f"applied {applied}")
    p50, p95, p99 = (mutate.get("update_p50_ns", 0),
                     mutate.get("update_p95_ns", 0),
                     mutate.get("update_p99_ns", 0))
    check(p50 <= p95 <= p99,
          f"{where} mutate: update percentiles not monotone "
          f"(p50 {p50}, p95 {p95}, p99 {p99})")
    if required:
        check(applied > 0, f"{where} mutate: no applied updates "
                           f"(--expect-mutate)")


def check_artifact_body(doc, where, kind, monotone_n):
    """Shared checks for the canonical perf artifact (schema v1/v2).

    `monotone_n` enforces a strictly increasing n-sweep per curve — required
    for bench-family artifacts (volcal_bench's doubling sweep), but not for
    bench-report curves, whose abscissa may be a budget multiplier or a
    tuning constant rather than n.
    """
    require_keys(doc, ["schema_version", "kind", "tool", "env", "curves",
                       "phases", "alloc", "rss_high_water_kb",
                       "total_wall_seconds"], where)
    version = check_schema_version(doc, where)
    if version == 2:
        check_cache_block(doc, where)
    check(doc.get("kind") == kind,
          f"{where}: kind {doc.get('kind')!r} != {kind!r}")
    require_keys(doc.get("env", {}),
                 ["git_sha", "compiler", "flags", "build_type", "os",
                  "threads"], f"{where} env")
    if version == 2:
        # v2 artifacts stamp the plan execution backend; v1 readers default
        # it to "basic".
        require_keys(doc.get("env", {}), ["backend"], f"{where} env")
        check(doc.get("env", {}).get("backend") in BACKENDS,
              f"{where} env: unknown backend "
              f"{doc.get('env', {}).get('backend')!r}")
    check(isinstance(doc.get("curves"), list) and doc["curves"],
          f"{where}: 'curves' must be a non-empty list")
    for curve in doc.get("curves", []):
        cwhere = f"{where} curve {curve.get('name', '?')!r}"
        require_keys(curve, ["name", "claim", "fitted", "exponent",
                             "r_squared", "points"], cwhere)
        prev_n = None
        for pt in curve.get("points", []):
            require_keys(pt, ["n", "cost", "wall_seconds"], f"{cwhere} point")
            n, cost = pt.get("n", 0), pt.get("cost", -1)
            check(n > 0, f"{cwhere}: point with n <= 0")
            check(math.isfinite(cost) and cost >= 0,
                  f"{cwhere}: cost must be finite and >= 0, got {cost}")
            if monotone_n and prev_n is not None:
                check(n > prev_n,
                      f"{cwhere}: n-sweep not strictly monotone "
                      f"({prev_n} then {n})")
            prev_n = n
    require_keys(doc.get("alloc", {}),
                 ["instrumented", "allocs", "frees", "bytes", "peak_bytes"],
                 f"{where} alloc")
    for ph in doc.get("phases", []):
        require_keys(ph, ["name", "wall_seconds"], f"{where} phase")
        check(bool(ph.get("name")), f"{where}: phase with an empty name")
        wall = ph.get("wall_seconds")
        check(isinstance(wall, (int, float)) and math.isfinite(wall) and wall >= 0,
              f"{where} phase {ph.get('name', '?')!r}: wall_seconds must be "
              f"finite and >= 0, got {wall}")


def check_expected_phases(doc, where, expect_phases):
    """--expect-phase: the artifact must have spent wall time in each named
    phase (how CI asserts a --snapshot-dir bench actually took the mmap-load
    path rather than silently regenerating)."""
    present = {ph.get("name"): ph.get("wall_seconds", 0)
               for ph in doc.get("phases", [])}
    for name in expect_phases:
        check(name in present,
              f"{where}: expected phase {name!r}, have {sorted(present)}")
        if name in present:
            check(present[name] > 0,
                  f"{where}: phase {name!r} recorded no wall time")


def check_bench_json(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    check_artifact_body(doc, path, kind="bench-report", monotone_n=False)
    print(f"ok  {path}: {len(doc.get('curves', []))} curves")


def check_serve_report(path, expect_mutate=False):
    """A bench-report artifact from volcal_serve or volcal_load: the usual
    body checks plus a mandatory, internally consistent 'serve' block.  The
    optional 'mutate' block (volcal_load --update-rate) is validated when
    present and required under --expect-mutate."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    check_artifact_body(doc, path, kind="bench-report", monotone_n=False)
    check_serve_block(doc, path)
    check_mutate_block(doc, path, required=expect_mutate)
    serve = doc.get("serve", {}) if isinstance(doc.get("serve"), dict) else {}
    mutate = doc.get("mutate", {}) if isinstance(doc.get("mutate"), dict) else {}
    extra = (f", {mutate.get('applied', 0)} updates applied"
             if mutate else "")
    print(f"ok  {path}: serve block, {serve.get('completed', 0)} completed, "
          f"{serve.get('shed', 0)} shed, qps {serve.get('qps', 0.0):.1f}"
          f"{extra}")


def check_bench_family(path, expect_phases=()):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    check_artifact_body(doc, path, kind="bench-family", monotone_n=True)
    require_keys(doc, ["family", "title", "theta", "algorithm"], path)
    check(bool(doc.get("family")), f"{path}: empty family name")
    check_expected_phases(doc, path, expect_phases)
    print(f"ok  {path}: family {doc.get('family', '?')!r}, "
          f"{len(doc.get('curves', []))} curves")


def check_bench_summary(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    require_keys(doc, ["schema_version", "kind", "tool", "env", "families",
                       "total_wall_seconds"], path)
    check_schema_version(doc, path)
    check(doc.get("kind") == "bench-summary",
          f"{path}: kind {doc.get('kind')!r} != 'bench-summary'")
    families = doc.get("families", [])
    check(isinstance(families, list) and families,
          f"{path}: 'families' must be a non-empty list")
    for fam in families:
        fwhere = f"{path} family {fam.get('family', '?')!r}"
        check_artifact_body(fam, fwhere, kind="bench-family", monotone_n=True)
        require_keys(fam, ["family", "title", "theta", "algorithm"], fwhere)
    print(f"ok  {path}: {len(families)} families")


def check_metrics_json(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    require_keys(doc, ["tool", "sweeps", "totals", "tape_max_bits",
                       "volume", "distance", "queries", "workers", "cache",
                       "batch"], path)
    check_cache_block(doc, path)
    batch = doc.get("batch", {})
    if check(isinstance(batch, dict), f"{path}: 'batch' must be an object"):
        require_keys(batch, BATCH_COUNTERS, f"{path} batch")
        for k in BATCH_COUNTERS:
            v = batch.get(k, -1)
            check(isinstance(v, int) and v >= 0,
                  f"{path} batch: {k} must be a non-negative integer, got {v!r}")
        check(batch.get("batched_sweeps", 0) <= doc.get("sweeps", 0),
              f"{path}: batched_sweeps {batch.get('batched_sweeps')} exceeds "
              f"sweeps {doc.get('sweeps')}")
    workers = doc.get("workers", [])
    worker_batches = 0
    worker_waves = 0
    for w in workers:
        wwhere = f"{path} worker {w.get('worker', '?')}"
        require_keys(w, ["worker", "starts", "busy_ns", "batches",
                         "batched_starts", "waves", "batch_occupancy"], wwhere)
        waves = w.get("waves", 0)
        expected = w.get("batched_starts", 0) / waves if waves > 0 else 0.0
        # batch_occupancy (starts per wave) is emitted with %.3f precision.
        check(abs(w.get("batch_occupancy", -1.0) - expected) < 2e-3,
              f"{wwhere}: batch_occupancy {w.get('batch_occupancy')} != "
              f"batched_starts/waves {expected:.3f}")
        worker_batches += w.get("batches", 0)
        worker_waves += w.get("waves", 0)
    # Per-worker columns fold only profiled sweeps; the batch block folds all.
    check(worker_batches <= batch.get("batches", 0),
          f"{path}: worker batches {worker_batches} exceed batch total "
          f"{batch.get('batches')}")
    check(worker_waves <= batch.get("waves", 0),
          f"{path}: worker waves {worker_waves} exceed batch total "
          f"{batch.get('waves')}")
    totals = doc.get("totals", {})
    require_keys(totals, ["starts", "max_volume", "max_distance",
                          "total_queries", "total_volume", "truncated",
                          "wall_seconds"], f"{path} totals")
    check(doc.get("sweeps", 0) > 0, f"{path}: no sweeps recorded")
    check(totals.get("starts", 0) > 0, f"{path}: no starts recorded")
    for name in ("volume", "distance", "queries"):
        hist = doc.get(name, {})
        require_keys(hist, ["count", "min", "max", "sum", "buckets"],
                     f"{path} {name} histogram")
        bucket_total = sum(hist.get("buckets", {}).values())
        check(bucket_total == hist.get("count"),
              f"{path}: {name} buckets sum {bucket_total} != count {hist.get('count')}")
        # One histogram sample per start, every sweep.
        check(hist.get("count") == totals.get("starts"),
              f"{path}: {name} count {hist.get('count')} != starts {totals.get('starts')}")
    check(doc["volume"].get("sum") == totals.get("total_volume"),
          f"{path}: volume sum != totals.total_volume")
    check(doc["volume"].get("max") == totals.get("max_volume"),
          f"{path}: volume max != totals.max_volume")
    check(doc["queries"].get("sum") == totals.get("total_queries"),
          f"{path}: queries sum != totals.total_queries")
    print(f"ok  {path}: {doc['sweeps']} sweeps, {totals['starts']} starts")


def check_trace_jsonl(path):
    sweeps = {}      # seq -> declared start count
    execs = {}       # (sweep, start) -> declared query count
    queries = {}     # (sweep, start) -> seen query lines
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            where = f"{path}:{lineno}"
            t = rec.get("type")
            if t == "sweep":
                require_keys(rec, ["seq", "label", "n", "plan", "starts"],
                             where)
                sweeps[rec["seq"]] = rec["starts"]
            elif t == "exec":
                require_keys(rec, ["sweep", "start", "volume", "distance",
                                   "queries", "truncated"], where)
                check(rec["sweep"] in sweeps,
                      f"{where}: exec before its sweep header")
                execs[(rec["sweep"], rec["start"])] = rec["queries"]
            elif t == "query":
                require_keys(rec, ["sweep", "start", "seq", "queried", "port",
                                   "found", "found_id", "found_degree",
                                   "layer", "volume"], where)
                key = (rec["sweep"], rec["start"])
                check(key in execs, f"{where}: query before its exec line")
                queries[key] = queries.get(key, 0) + 1
                check(rec["port"] >= 1, f"{where}: port must be 1-based")
                check(rec["volume"] >= 1, f"{where}: running volume must be >= 1")
            else:
                check(False, f"{where}: unknown line type {t!r}")
    check(bool(sweeps), f"{path}: no sweep headers")
    check(bool(execs), f"{path}: no exec lines")
    declared = sum(sweeps.values())
    check(len(execs) == declared,
          f"{path}: {len(execs)} exec lines but sweeps declare {declared} starts")
    for key, declared_q in execs.items():
        seen = queries.get(key, 0)
        # Truncated execs have one more query (the one that blew the budget)
        # than recorded events; completed execs match exactly.
        check(seen in (declared_q, declared_q - 1),
              f"{path}: sweep {key[0]} start {key[1]}: {seen} query lines "
              f"vs declared queries {declared_q}")
    print(f"ok  {path}: {len(sweeps)} sweeps, {len(execs)} execs, "
          f"{sum(queries.values())} queries")


STATS_MONOTONE = ("accepted", "completed", "shed", "invalid", "swaps",
                  "slow_queries")


def check_stats_line(doc, where):
    """One serve-stats JSON object (a --stats-log line, a Stats frame
    payload, or volcal_top --raw output)."""
    require_keys(doc, ["kind", "schema_version", "uptime_seconds",
                       "queue_depth", "in_flight", "latency", "window",
                       "cache", "batch", "metrics"] + list(STATS_MONOTONE),
                 where)
    check(doc.get("kind") == "serve-stats",
          f"{where}: kind {doc.get('kind')!r} != 'serve-stats'")
    for k in STATS_MONOTONE + ("queue_depth", "in_flight"):
        v = doc.get(k, -1)
        check(isinstance(v, int) and v >= 0,
              f"{where}: {k} must be a non-negative integer, got {v!r}")
    check(doc.get("completed", 0) <= doc.get("accepted", 0),
          f"{where}: completed {doc.get('completed')} exceeds accepted "
          f"{doc.get('accepted')}")
    for block in ("latency", ("window", "latency")):
        if isinstance(block, tuple):
            lat = doc.get(block[0], {}).get(block[1], {})
            lwhere = f"{where} window latency"
        else:
            lat = doc.get(block, {})
            lwhere = f"{where} latency"
        if not check(isinstance(lat, dict), f"{lwhere}: missing"):
            continue
        p50, p95, p99 = (lat.get("p50_ns", 0), lat.get("p95_ns", 0),
                         lat.get("p99_ns", 0))
        check(p50 <= p95 <= p99,
              f"{lwhere}: percentiles not monotone "
              f"(p50 {p50}, p95 {p95}, p99 {p99})")
        check(lat.get("count", -1) >= 0, f"{lwhere}: negative sample count")
    # The window is a subset of history: it can never hold more samples than
    # ever completed.
    win = doc.get("window", {}).get("latency", {})
    check(win.get("count", 0) <= doc.get("latency", {}).get("count", 0),
          f"{where}: window holds more samples than exist since start")


def stats_vs_serve_block(doc, serve, where, final):
    """Counters of one stats snapshot against an end-of-run artifact's serve
    block: <= mid-run (counters only grow), == for the final snapshot."""
    for k in ("accepted", "completed", "shed", "invalid", "swaps"):
        snap, total = doc.get(k, 0), serve.get(k, 0)
        if final:
            check(snap == total,
                  f"{where}: final {k} {snap} != artifact total {total}")
        else:
            check(snap <= total,
                  f"{where}: mid-run {k} {snap} exceeds artifact total {total}")
    if final:
        check(doc.get("latency", {}).get("count", 0)
              == serve.get("latency_samples", 0),
              f"{where}: final latency count "
              f"{doc.get('latency', {}).get('count')} != artifact "
              f"latency_samples {serve.get('latency_samples')}")
        check(doc.get("queue_depth", -1) == 0 and doc.get("in_flight", -1) == 0,
              f"{where}: final snapshot not quiescent (queue "
              f"{doc.get('queue_depth')}, in-flight {doc.get('in_flight')})")


def load_serve_block(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    serve = doc.get("serve")
    if not check(isinstance(serve, dict),
                 f"{path}: missing 'serve' block for stats reconciliation"):
        return {}
    return serve


def check_stats_jsonl(path, against=None):
    """A --stats-interval JSONL: every line well-formed, every counter
    monotone non-decreasing across lines, uptime strictly advancing; with
    --against-serve, the final (post-drain) line must equal the artifact's
    serve totals and earlier lines must never exceed them."""
    lines = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            doc = json.loads(line)
            where = f"{path}:{lineno}"
            check_stats_line(doc, where)
            lines.append((where, doc))
    if not check(bool(lines), f"{path}: no stats lines"):
        return
    prev_where, prev = lines[0]
    for where, doc in lines[1:]:
        for k in STATS_MONOTONE:
            check(doc.get(k, 0) >= prev.get(k, 0),
                  f"{where}: {k} went backwards "
                  f"({prev.get(k)} at {prev_where} then {doc.get(k)})")
        check(doc.get("uptime_seconds", 0) > prev.get("uptime_seconds", 0),
              f"{where}: uptime did not advance")
        prev_where, prev = where, doc
    if against is not None:
        serve = load_serve_block(against)
        if serve:
            for where, doc in lines[:-1]:
                stats_vs_serve_block(doc, serve, where, final=False)
            stats_vs_serve_block(lines[-1][1], serve, lines[-1][0], final=True)
    print(f"ok  {path}: {len(lines)} stats lines, "
          f"{lines[-1][1].get('completed', 0)} completed at shutdown")


def check_stats_snapshot(path, against=None):
    """A single mid-load stats snapshot (volcal_top --once --raw): live
    values, each counter bounded by the end-of-run artifact totals."""
    with open(path, encoding="utf-8") as f:
        doc = json.loads(f.read().strip())
    check_stats_line(doc, path)
    if against is not None:
        serve = load_serve_block(against)
        if serve:
            stats_vs_serve_block(doc, serve, path, final=False)
    print(f"ok  {path}: snapshot at uptime "
          f"{doc.get('uptime_seconds', 0.0):.2f}s, "
          f"{doc.get('completed', 0)} completed")


def check_chrome_trace(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    require_keys(doc, ["traceEvents", "displayTimeUnit"], path)
    events = doc.get("traceEvents", [])
    check(isinstance(events, list) and events,
          f"{path}: 'traceEvents' must be a non-empty list")
    for ev in events:
        require_keys(ev, ["name", "cat", "ph", "ts", "dur", "pid", "tid",
                          "args"], f"{path} event")
        check(ev.get("ph") == "X", f"{path}: expected complete ('X') events")
        check(ev.get("dur", -1) >= 0, f"{path}: negative duration")
        require_keys(ev.get("args", {}),
                     ["volume", "distance", "queries", "truncated"],
                     f"{path} event args")
    print(f"ok  {path}: {len(events)} trace events")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", help="bench curve report")
    parser.add_argument("--metrics", help="SweepMetrics JSON")
    parser.add_argument("--trace", help="query trace JSONL")
    parser.add_argument("--chrome-trace", dest="chrome_trace",
                        help="Chrome trace_event JSON")
    parser.add_argument("--serve-report", dest="serve_report",
                        action="append", default=[],
                        help="volcal_serve / volcal_load artifact whose "
                             "'serve' block is mandatory (repeatable)")
    parser.add_argument("--expect-mutate", dest="expect_mutate",
                        action="append", default=[],
                        help="volcal_load artifact that must carry a "
                             "'mutate' block with applied updates "
                             "(repeatable; also run it as --serve-report)")
    parser.add_argument("--stats-jsonl", dest="stats_jsonl",
                        help="volcal_serve --stats-log JSONL (periodic live "
                             "snapshots; counters must be monotone)")
    parser.add_argument("--stats-snapshot", dest="stats_snapshot",
                        action="append", default=[],
                        help="single mid-load stats snapshot, e.g. captured "
                             "volcal_top --once --raw output (repeatable)")
    parser.add_argument("--against-serve", dest="against_serve",
                        help="volcal_serve artifact to reconcile "
                             "--stats-jsonl / --stats-snapshot against: "
                             "snapshots never exceed its serve totals and "
                             "the final JSONL line equals them")
    parser.add_argument("--bench-family", dest="bench_family",
                        action="append", default=[],
                        help="volcal_bench BENCH_<family>.json (repeatable)")
    parser.add_argument("--bench-summary", dest="bench_summary",
                        help="volcal_bench BENCH_SUMMARY.json")
    parser.add_argument("--expect-phase", dest="expect_phase",
                        action="append", default=[],
                        help="require each --bench-family artifact to have "
                             "spent wall time in this phase (repeatable)")
    opts = parser.parse_args()
    if not any([opts.json, opts.metrics, opts.trace, opts.chrome_trace,
                opts.bench_family, opts.bench_summary, opts.serve_report,
                opts.expect_mutate, opts.stats_jsonl, opts.stats_snapshot]):
        parser.error("give at least one artifact to check")
    if opts.json:
        check_bench_json(opts.json)
    for path in opts.serve_report:
        check_serve_report(path, expect_mutate=path in opts.expect_mutate)
    for path in opts.expect_mutate:
        if path not in opts.serve_report:
            check_serve_report(path, expect_mutate=True)
    if opts.metrics:
        check_metrics_json(opts.metrics)
    if opts.trace:
        check_trace_jsonl(opts.trace)
    if opts.chrome_trace:
        check_chrome_trace(opts.chrome_trace)
    if opts.stats_jsonl:
        check_stats_jsonl(opts.stats_jsonl, against=opts.against_serve)
    for path in opts.stats_snapshot:
        check_stats_snapshot(path, against=opts.against_serve)
    for path in opts.bench_family:
        check_bench_family(path, expect_phases=opts.expect_phase)
    if opts.bench_summary:
        check_bench_summary(opts.bench_summary)
    if failures:
        for f in failures:
            print(f"FAIL {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
