#!/usr/bin/env python3
"""Validate the artifacts a bench binary writes under --json / --metrics /
--trace / --chrome-trace.

CI runs a small bench with all four flags and then this script; a schema
drift in any exporter (bench JsonReport, obs SweepMetrics, trace JSONL,
Chrome trace_event) fails the job.  Internal cross-checks go beyond JSON
well-formedness: metrics totals must be self-consistent with the histograms,
and every trace query line must belong to a declared sweep/exec.

Usage:
  check_artifacts.py --json b.json --metrics m.json --trace t.jsonl \
                     --chrome-trace c.json
All flags optional; at least one must be given.
"""

import argparse
import json
import sys

failures = []


def check(ok, what):
    if not ok:
        failures.append(what)
    return ok


def require_keys(obj, keys, where):
    for k in keys:
        check(k in obj, f"{where}: missing key '{k}'")


def check_bench_json(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    require_keys(doc, ["tool", "curves"], path)
    check(isinstance(doc.get("curves"), list) and doc["curves"],
          f"{path}: 'curves' must be a non-empty list")
    for curve in doc.get("curves", []):
        require_keys(curve, ["name", "fitted", "points"], f"{path} curve")
        for pt in curve.get("points", []):
            require_keys(pt, ["n", "cost", "wall_seconds"], f"{path} point")
            check(pt.get("n", 0) > 0, f"{path}: point with n <= 0")
            check(pt.get("cost", -1) >= 0, f"{path}: point with cost < 0")
    print(f"ok  {path}: {len(doc['curves'])} curves")


def check_metrics_json(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    require_keys(doc, ["tool", "sweeps", "totals", "tape_max_bits",
                       "volume", "distance", "queries", "workers"], path)
    totals = doc.get("totals", {})
    require_keys(totals, ["starts", "max_volume", "max_distance",
                          "total_queries", "total_volume", "truncated",
                          "wall_seconds"], f"{path} totals")
    check(doc.get("sweeps", 0) > 0, f"{path}: no sweeps recorded")
    check(totals.get("starts", 0) > 0, f"{path}: no starts recorded")
    for name in ("volume", "distance", "queries"):
        hist = doc.get(name, {})
        require_keys(hist, ["count", "min", "max", "sum", "buckets"],
                     f"{path} {name} histogram")
        bucket_total = sum(hist.get("buckets", {}).values())
        check(bucket_total == hist.get("count"),
              f"{path}: {name} buckets sum {bucket_total} != count {hist.get('count')}")
        # One histogram sample per start, every sweep.
        check(hist.get("count") == totals.get("starts"),
              f"{path}: {name} count {hist.get('count')} != starts {totals.get('starts')}")
    check(doc["volume"].get("sum") == totals.get("total_volume"),
          f"{path}: volume sum != totals.total_volume")
    check(doc["volume"].get("max") == totals.get("max_volume"),
          f"{path}: volume max != totals.max_volume")
    check(doc["queries"].get("sum") == totals.get("total_queries"),
          f"{path}: queries sum != totals.total_queries")
    print(f"ok  {path}: {doc['sweeps']} sweeps, {totals['starts']} starts")


def check_trace_jsonl(path):
    sweeps = {}      # seq -> declared start count
    execs = {}       # (sweep, start) -> declared query count
    queries = {}     # (sweep, start) -> seen query lines
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            where = f"{path}:{lineno}"
            t = rec.get("type")
            if t == "sweep":
                require_keys(rec, ["seq", "label", "n", "starts"], where)
                sweeps[rec["seq"]] = rec["starts"]
            elif t == "exec":
                require_keys(rec, ["sweep", "start", "volume", "distance",
                                   "queries", "truncated"], where)
                check(rec["sweep"] in sweeps,
                      f"{where}: exec before its sweep header")
                execs[(rec["sweep"], rec["start"])] = rec["queries"]
            elif t == "query":
                require_keys(rec, ["sweep", "start", "seq", "queried", "port",
                                   "found", "found_id", "found_degree",
                                   "layer", "volume"], where)
                key = (rec["sweep"], rec["start"])
                check(key in execs, f"{where}: query before its exec line")
                queries[key] = queries.get(key, 0) + 1
                check(rec["port"] >= 1, f"{where}: port must be 1-based")
                check(rec["volume"] >= 1, f"{where}: running volume must be >= 1")
            else:
                check(False, f"{where}: unknown line type {t!r}")
    check(bool(sweeps), f"{path}: no sweep headers")
    check(bool(execs), f"{path}: no exec lines")
    declared = sum(sweeps.values())
    check(len(execs) == declared,
          f"{path}: {len(execs)} exec lines but sweeps declare {declared} starts")
    for key, declared_q in execs.items():
        seen = queries.get(key, 0)
        # Truncated execs have one more query (the one that blew the budget)
        # than recorded events; completed execs match exactly.
        check(seen in (declared_q, declared_q - 1),
              f"{path}: sweep {key[0]} start {key[1]}: {seen} query lines "
              f"vs declared queries {declared_q}")
    print(f"ok  {path}: {len(sweeps)} sweeps, {len(execs)} execs, "
          f"{sum(queries.values())} queries")


def check_chrome_trace(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    require_keys(doc, ["traceEvents", "displayTimeUnit"], path)
    events = doc.get("traceEvents", [])
    check(isinstance(events, list) and events,
          f"{path}: 'traceEvents' must be a non-empty list")
    for ev in events:
        require_keys(ev, ["name", "cat", "ph", "ts", "dur", "pid", "tid",
                          "args"], f"{path} event")
        check(ev.get("ph") == "X", f"{path}: expected complete ('X') events")
        check(ev.get("dur", -1) >= 0, f"{path}: negative duration")
        require_keys(ev.get("args", {}),
                     ["volume", "distance", "queries", "truncated"],
                     f"{path} event args")
    print(f"ok  {path}: {len(events)} trace events")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", help="bench curve report")
    parser.add_argument("--metrics", help="SweepMetrics JSON")
    parser.add_argument("--trace", help="query trace JSONL")
    parser.add_argument("--chrome-trace", dest="chrome_trace",
                        help="Chrome trace_event JSON")
    opts = parser.parse_args()
    if not any([opts.json, opts.metrics, opts.trace, opts.chrome_trace]):
        parser.error("give at least one artifact to check")
    if opts.json:
        check_bench_json(opts.json)
    if opts.metrics:
        check_metrics_json(opts.metrics)
    if opts.trace:
        check_trace_jsonl(opts.trace)
    if opts.chrome_trace:
        check_chrome_trace(opts.chrome_trace)
    if failures:
        for f in failures:
            print(f"FAIL {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
