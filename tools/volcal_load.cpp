// volcal_load — open-loop load generator for volcal_serve.
//
// Drives a serve socket with Zipfian per-node queries (hot centers repeat —
// the regime the cross-request ball cache exists for), measures client-side
// latency and sustained throughput, and optionally verifies every response
// against the offline engine.
//
// Open loop: requests are sent on a fixed schedule (--rate) regardless of
// response progress, so an overloaded server sheds instead of silently
// slowing the generator down.  Shed responses are accounted separately from
// query latency — their round-trips get their own summary (shed_* artifact
// fields), so the query percentiles measure served work only.  With
// --retry-sheds each shed request is replayed once after honoring the
// server's advertised retry_after_ms, and the artifact records how many
// retries actually waited the full backoff ("retries" / "retry_compliant").
//
// --verify FILE loads the same snapshot the server is serving, labels every
// node offline with the per-start engine (run_at_all_nodes), and fails
// unless every served label is bit-identical to the offline output for that
// node — the end-to-end check that the serving path (batched backend + ball
// cache + admission + hot swap) never changes an answer.
//
// --update-rate F mixes mutations into the workload: F * --requests
// MutationBatches (deterministic draws from propose_mutation) are applied
// synchronously on a dedicated connection, spread across the load window,
// while the query connections keep firing.  Requires --verify — the local
// snapshot is what batches are proposed against and mutated in lockstep
// with every server acknowledgment.  Per-response label verification is
// suspended during churn (a query racing an update may legitimately see
// either graph); instead, after the window drains, every node is re-queried
// synchronously and must match the offline labels of the locally-mutated
// instance bit for bit — the end-to-end differential that server-side
// mutate-then-query equals client-side mutate-then-solve.
//
// Usage: volcal_load --socket PATH [--requests N] [--connections C]
//                    [--rate QPS] [--zipf THETA] [--seed S] [--nodes N]
//                    [--retry-sheds] [--update-rate F] [--verify FILE]
//                    [--artifact FILE]
#include <signal.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "perf/artifact.hpp"
#include "util/hash.hpp"
#include "volcal/io.hpp"
#include "volcal/problems.hpp"
#include "volcal/runtime.hpp"
#include "volcal/serve.hpp"

namespace volcal {
namespace {

// Zipfian(theta) sampler over [0, n): inverse-CDF by binary search on the
// precomputed cumulative weights 1/(i+1)^theta.  theta == 0 is uniform.
class ZipfSampler {
 public:
  ZipfSampler(std::int64_t n, double theta) : cdf_(static_cast<std::size_t>(n)) {
    double total = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      cdf_[static_cast<std::size_t>(i)] = total;
    }
    total_ = total;
  }

  std::int64_t sample(std::uint64_t* state) const {
    *state = splitmix64(*state + 0x9e3779b97f4a7c15ull);
    const double u =
        static_cast<double>(*state >> 11) * (1.0 / 9007199254740992.0) * total_;
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    const auto idx = static_cast<std::int64_t>(it - cdf_.begin());
    return std::min<std::int64_t>(idx, static_cast<std::int64_t>(cdf_.size()) - 1);
  }

 private:
  std::vector<double> cdf_;
  double total_ = 0.0;
};

struct ConnectionTally {
  std::int64_t sent = 0;
  std::int64_t results = 0;
  std::int64_t shed = 0;
  std::int64_t invalid = 0;
  std::int64_t mismatches = 0;
  std::int64_t retries = 0;          // shed requests replayed (--retry-sheds)
  std::int64_t retry_compliant = 0;  // replays that waited >= retry_after_ms
  std::vector<std::int64_t> latencies_ns;       // served results only
  std::vector<std::int64_t> shed_latencies_ns;  // shed round-trips, separately
};

struct LoadPlan {
  std::string socket_path;
  std::int64_t requests = 2000;
  int connections = 1;
  double rate = 0.0;  // total target QPS across connections; 0 = max speed
  double zipf = 0.99;
  std::uint64_t seed = 7;
  std::int64_t nodes = 0;
  bool retry_sheds = false;
  double update_rate = 0.0;   // fraction of --requests sent as MutationBatches
  std::int64_t updates = 0;   // derived: llround(requests * update_rate)
  const std::vector<int>* expected = nullptr;  // offline labels, when verifying
};

// The updater connection's ledger: one entry per Update round-trip, plus the
// eviction/retention totals the server reported for its region invalidations.
struct UpdateTally {
  std::int64_t updates = 0;
  std::int64_t applied = 0;
  std::int64_t rejected = 0;
  std::int64_t cache_evicted = 0;
  std::int64_t cache_retained = 0;
  std::int64_t flushes = 0;
  std::vector<std::int64_t> update_latencies_ns;  // client round-trip
  std::vector<double> apply_ns;                   // server-side apply time
};

// One shed response eligible for replay: the node, the advertised backoff,
// and when the shed arrived (compliance = replay waited >= the backoff).
struct ShedRetry {
  std::int64_t node = 0;
  std::uint32_t retry_after_ms = 0;
  std::chrono::steady_clock::time_point shed_at;
};

// One connection: a sender on this thread, a receiver on a helper thread.
// Every query is answered by exactly one Result or Shed, so the receiver
// exits after `sent` responses (Bye frames are ignored).
bool run_connection(const LoadPlan& plan, int conn_index, ConnectionTally* tally) {
  serve::ServeClient client;
  if (!client.connect(plan.socket_path)) {
    std::fprintf(stderr, "volcal_load: cannot connect to %s\n",
                 plan.socket_path.c_str());
    return false;
  }
  const std::int64_t base = plan.requests / plan.connections;
  const std::int64_t extra = plan.requests % plan.connections;
  const std::int64_t to_send = base + (conn_index < extra ? 1 : 0);
  if (to_send == 0) return true;

  // Send timestamps by request id, shared between sender and receiver.
  std::mutex inflight_mu;
  std::unordered_map<std::uint64_t, std::chrono::steady_clock::time_point> inflight;
  std::unordered_map<std::uint64_t, std::int64_t> node_of;
  std::vector<ShedRetry> retry_queue;  // filled by the receiver under inflight_mu

  bool receiver_ok = true;
  std::thread receiver([&] {
    serve::Frame frame;
    std::int64_t answered = 0;
    while (answered < to_send) {
      if (!client.poll(&frame)) {
        receiver_ok = false;
        return;
      }
      if (frame.type == serve::FrameType::Bye) continue;
      std::uint64_t id = 0;
      if (frame.type == serve::FrameType::Result) {
        id = frame.result.request_id;
      } else if (frame.type == serve::FrameType::Shed) {
        id = frame.shed.request_id;
      } else {
        continue;
      }
      std::chrono::steady_clock::time_point sent_at;
      std::int64_t node = -1;
      {
        std::lock_guard lock(inflight_mu);
        const auto it = inflight.find(id);
        if (it == inflight.end()) {
          receiver_ok = false;  // response for a request we never sent
          return;
        }
        sent_at = it->second;
        inflight.erase(it);
        node = node_of[id];
        node_of.erase(id);
      }
      ++answered;
      const auto received_at = std::chrono::steady_clock::now();
      if (frame.type == serve::FrameType::Shed) {
        ++tally->shed;
        // Shed round-trips are timed into their own series — never into the
        // query latency summary.
        tally->shed_latencies_ns.push_back(
            std::chrono::duration_cast<std::chrono::nanoseconds>(received_at -
                                                                 sent_at)
                .count());
        if (plan.retry_sheds && frame.shed.retry_after_ms > 0) {
          std::lock_guard lock(inflight_mu);
          retry_queue.push_back({node, frame.shed.retry_after_ms, received_at});
        }
        continue;
      }
      ++tally->results;
      tally->latencies_ns.push_back(
          std::chrono::duration_cast<std::chrono::nanoseconds>(received_at -
                                                               sent_at)
              .count());
      if (frame.result.status != serve::QueryStatus::Ok) {
        ++tally->invalid;
        continue;
      }
      if (plan.expected != nullptr) {
        if (node < 0 || node >= static_cast<std::int64_t>(plan.expected->size()) ||
            frame.result.label !=
                (*plan.expected)[static_cast<std::size_t>(node)]) {
          ++tally->mismatches;
        }
      }
    }
  });

  ZipfSampler sampler(plan.nodes, plan.zipf);
  std::uint64_t rng = splitmix64(plan.seed + static_cast<std::uint64_t>(conn_index));
  const double per_conn_rate = plan.rate / static_cast<double>(plan.connections);
  const auto begin = std::chrono::steady_clock::now();
  bool sender_ok = true;
  for (std::int64_t i = 0; i < to_send; ++i) {
    if (per_conn_rate > 0.0) {
      const auto due =
          begin + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(static_cast<double>(i) /
                                                    per_conn_rate));
      std::this_thread::sleep_until(due);  // open loop: never waits on responses
    }
    const std::int64_t node = sampler.sample(&rng);
    const std::uint64_t id =
        (static_cast<std::uint64_t>(conn_index) << 48) | static_cast<std::uint64_t>(i);
    {
      std::lock_guard lock(inflight_mu);
      inflight.emplace(id, std::chrono::steady_clock::now());
      node_of.emplace(id, node);
    }
    if (!client.post_query(id, node)) {
      std::fprintf(stderr, "volcal_load: send failed on connection %d\n", conn_index);
      {
        std::lock_guard lock(inflight_mu);
        inflight.erase(id);
        node_of.erase(id);
      }
      sender_ok = false;
      break;
    }
    ++tally->sent;
  }
  if (!sender_ok) client.close();  // unblocks the receiver via EOF
  receiver.join();

  // Replay phase (--retry-sheds): after the open-loop window every shed
  // request is re-sent exactly once, honoring the advertised backoff.
  // Synchronous — one request in flight — so it cannot perturb what the
  // open-loop phase measured.
  if (sender_ok && receiver_ok && plan.retry_sheds && !retry_queue.empty()) {
    std::uint64_t retry_seq = 0;
    serve::Frame frame;
    for (const ShedRetry& r : retry_queue) {
      std::this_thread::sleep_until(r.shed_at +
                                    std::chrono::milliseconds(r.retry_after_ms));
      ++tally->retries;
      if (std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - r.shed_at)
              .count() >= static_cast<std::int64_t>(r.retry_after_ms)) {
        ++tally->retry_compliant;
      }
      const std::uint64_t id = (static_cast<std::uint64_t>(conn_index) << 48) |
                               (std::uint64_t{1} << 40) | retry_seq++;
      const auto sent_at = std::chrono::steady_clock::now();
      if (!client.post_query(id, r.node)) {
        sender_ok = false;
        break;
      }
      ++tally->sent;
      bool got = false;
      while (client.poll(&frame)) {
        const auto received_at = std::chrono::steady_clock::now();
        const auto rtt_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                received_at - sent_at)
                                .count();
        if (frame.type == serve::FrameType::Result &&
            frame.result.request_id == id) {
          ++tally->results;
          tally->latencies_ns.push_back(rtt_ns);
          if (frame.result.status != serve::QueryStatus::Ok) {
            ++tally->invalid;
          } else if (plan.expected != nullptr &&
                     (r.node >= static_cast<std::int64_t>(plan.expected->size()) ||
                      frame.result.label !=
                          (*plan.expected)[static_cast<std::size_t>(r.node)])) {
            ++tally->mismatches;
          }
          got = true;
          break;
        }
        if (frame.type == serve::FrameType::Shed && frame.shed.request_id == id) {
          // Shed again: count it, replay only once.
          ++tally->shed;
          tally->shed_latencies_ns.push_back(rtt_ns);
          got = true;
          break;
        }
        // Bye or stray frame between replays: keep reading.
      }
      if (!got) {
        receiver_ok = false;
        break;
      }
    }
  }

  client.close();
  return sender_ok && receiver_ok;
}

// The updater connection (--update-rate): `plan.updates` MutationBatches,
// each a deterministic propose_mutation draw against `local`, applied
// synchronously (one Update in flight) and mirrored onto `local` only after
// the server acknowledges Ok — so client and server graphs stay in lockstep
// batch-for-batch.  With a target --rate the updates are spread evenly
// across the expected load window; at max speed the synchronous round-trips
// pace themselves.
bool run_updater(const LoadPlan& plan, ErasedInstance* local, UpdateTally* tally) {
  serve::ServeClient client;
  if (!client.connect(plan.socket_path)) {
    std::fprintf(stderr, "volcal_load: updater cannot connect to %s\n",
                 plan.socket_path.c_str());
    return false;
  }
  const double window_seconds =
      plan.rate > 0.0 ? static_cast<double>(plan.requests) / plan.rate : 0.0;
  const auto begin = std::chrono::steady_clock::now();
  for (std::int64_t u = 0; u < plan.updates; ++u) {
    if (window_seconds > 0.0) {
      const double at = window_seconds * (static_cast<double>(u) + 0.5) /
                        static_cast<double>(plan.updates);
      std::this_thread::sleep_until(
          begin + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(at)));
    }
    const MutationBatch batch = local->propose_mutation(
        splitmix64(plan.seed + 0x75706474ull /* "updt" */ + static_cast<std::uint64_t>(u)),
        /*rewires=*/2, /*label_updates=*/2);
    const auto sent_at = std::chrono::steady_clock::now();
    const serve::ServeClient::UpdateReply reply = client.update(batch);
    if (!reply.ok) {
      std::fprintf(stderr, "volcal_load: update %lld lost its connection\n",
                   static_cast<long long>(u));
      return false;
    }
    ++tally->updates;
    tally->update_latencies_ns.push_back(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - sent_at)
            .count());
    if (reply.result.status != serve::UpdateStatus::Ok) {
      // Batches are proposed against the acknowledged graph, so a rejection
      // means the two sides disagree about the current structure — fatal.
      ++tally->rejected;
      std::fprintf(stderr, "volcal_load: server rejected update %lld\n",
                   static_cast<long long>(u));
      return false;
    }
    ++tally->applied;
    tally->cache_evicted += static_cast<std::int64_t>(reply.result.cache_evicted);
    tally->cache_retained += static_cast<std::int64_t>(reply.result.cache_retained);
    if (reply.result.flushed != 0) ++tally->flushes;
    tally->apply_ns.push_back(static_cast<double>(reply.result.apply_ns));
    *local = local->mutated(batch);
  }
  client.bye();
  return true;
}

// Post-churn differential: every node queried synchronously against the
// offline labels of the final locally-mutated instance.  Sheds are retried
// after the advertised backoff (the load window has drained; the server
// should be idle).
bool final_verify(const LoadPlan& plan, const std::vector<int>& expected,
                  std::int64_t* mismatches) {
  serve::ServeClient client;
  if (!client.connect(plan.socket_path)) {
    std::fprintf(stderr, "volcal_load: verifier cannot connect to %s\n",
                 plan.socket_path.c_str());
    return false;
  }
  for (std::int64_t node = 0; node < static_cast<std::int64_t>(expected.size()); ++node) {
    serve::ServeClient::QueryReply reply;
    for (int attempt = 0; attempt < 100; ++attempt) {
      reply = client.query(node);
      if (!reply.ok || !reply.shed) break;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::max<std::uint32_t>(reply.retry_after_ms, 1)));
    }
    if (!reply.ok || reply.shed) {
      std::fprintf(stderr, "volcal_load: verify query for node %lld got no answer\n",
                   static_cast<long long>(node));
      return false;
    }
    if (reply.result.status != serve::QueryStatus::Ok ||
        reply.result.label != expected[static_cast<std::size_t>(node)]) {
      ++*mismatches;
    }
  }
  client.bye();
  return true;
}

bool write_artifact(const std::string& path, const ConnectionTally& total,
                    const stats::Summary& latency, const stats::Summary& shed_latency,
                    const UpdateTally& updates, double wall_seconds) {
  perf::BenchArtifact artifact;
  artifact.kind = "bench-report";
  artifact.tool = "volcal_load";
  artifact.stamp_probes(1);
  artifact.total_wall_seconds = wall_seconds;
  artifact.phases.push_back({"load", wall_seconds});

  perf::ServeStatsBlock serve_block;
  serve_block.accepted = total.sent;
  serve_block.completed = total.results;
  serve_block.shed = total.shed;
  serve_block.invalid = total.invalid;
  serve_block.swaps = 0;
  serve_block.latency_samples = static_cast<std::int64_t>(latency.count);
  serve_block.p50_ns = latency.median;
  serve_block.p95_ns = latency.p95;
  serve_block.p99_ns = latency.p99;
  serve_block.mean_ns = latency.mean;
  serve_block.max_ns = latency.max;
  serve_block.wall_seconds = wall_seconds;
  serve_block.qps =
      wall_seconds > 0.0 ? static_cast<double>(total.results) / wall_seconds : 0.0;
  serve_block.shed_latency_samples = static_cast<std::int64_t>(shed_latency.count);
  serve_block.shed_p50_ns = shed_latency.median;
  serve_block.shed_p95_ns = shed_latency.p95;
  serve_block.shed_p99_ns = shed_latency.p99;
  serve_block.retries = total.retries;
  serve_block.retry_compliant = total.retry_compliant;
  artifact.serve = serve_block;

  perf::ArtifactCurve curve;
  curve.name = "latency-percentiles";
  curve.points.push_back({50.0, latency.median, 0.0});
  curve.points.push_back({95.0, latency.p95, 0.0});
  curve.points.push_back({99.0, latency.p99, 0.0});
  curve.refit();
  artifact.curves.push_back(std::move(curve));

  if (updates.updates > 0) {
    perf::MutateStatsBlock mutate;
    mutate.updates = updates.updates;
    mutate.applied = updates.applied;
    mutate.rejected = updates.rejected;
    mutate.cache_evicted = updates.cache_evicted;
    mutate.cache_retained = updates.cache_retained;
    mutate.flushes = updates.flushes;
    std::vector<double> rtts(updates.update_latencies_ns.begin(),
                             updates.update_latencies_ns.end());
    const stats::Summary rtt = stats::summarize(std::move(rtts));
    mutate.update_p50_ns = rtt.median;
    mutate.update_p95_ns = rtt.p95;
    mutate.update_p99_ns = rtt.p99;
    std::vector<double> applies(updates.apply_ns);
    mutate.apply_p50_ns = stats::summarize(std::move(applies)).median;
    artifact.mutate = mutate;
  }
  return artifact.write_file(path);
}

int run(int argc, char** argv) {
  ::signal(SIGPIPE, SIG_IGN);  // a dying server surfaces as a send error
  LoadPlan plan;
  std::string verify_path;
  std::string artifact_path;
  for (int i = 1; i < argc; ++i) {
    auto value_of = [&](const char* name) -> const char* {
      const std::size_t len = std::strlen(name);
      if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
        return argv[i] + len + 1;
      }
      if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = value_of("--socket")) {
      plan.socket_path = v;
    } else if (const char* v = value_of("--requests")) {
      plan.requests = std::atoll(v);
    } else if (const char* v = value_of("--connections")) {
      plan.connections = std::atoi(v);
    } else if (const char* v = value_of("--rate")) {
      plan.rate = std::atof(v);
    } else if (const char* v = value_of("--zipf")) {
      plan.zipf = std::atof(v);
    } else if (const char* v = value_of("--seed")) {
      plan.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--nodes")) {
      plan.nodes = std::atoll(v);
    } else if (std::strcmp(argv[i], "--retry-sheds") == 0) {
      plan.retry_sheds = true;
    } else if (const char* v = value_of("--update-rate")) {
      plan.update_rate = std::atof(v);
    } else if (const char* v = value_of("--verify")) {
      verify_path = v;
    } else if (const char* v = value_of("--artifact")) {
      artifact_path = v;
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "volcal_load — open-loop Zipfian load generator for volcal_serve\n\n"
          "  --socket <p>       serve socket to drive (required)\n"
          "  --requests <n>     total queries across connections [2000]\n"
          "  --connections <c>  parallel connections [1]\n"
          "  --rate <qps>       open-loop send rate, 0 = max speed [0]\n"
          "  --zipf <theta>     Zipf exponent, 0 = uniform [0.99]\n"
          "  --seed <s>         traffic seed [7]\n"
          "  --nodes <n>        node universe (required unless --verify)\n"
          "  --retry-sheds      replay each shed once after its retry-after\n"
          "  --update-rate <f>  mix in f * requests mutation batches on a\n"
          "                     dedicated connection (requires --verify)\n"
          "  --verify <f>       offline-label this snapshot and compare every\n"
          "                     response bit-for-bit (with --update-rate: the\n"
          "                     comparison runs post-churn on the mutated graph)\n"
          "  --artifact <f>     write the client-side perf artifact\n");
      return 0;
    } else {
      std::fprintf(stderr, "volcal_load: unknown argument '%s' (try --help)\n", argv[i]);
      return 2;
    }
  }
  if (plan.socket_path.empty()) {
    std::fprintf(stderr, "volcal_load: --socket is required (try --help)\n");
    return 2;
  }
  if (plan.connections < 1 || plan.requests < 1) {
    std::fprintf(stderr, "volcal_load: need >= 1 connection and >= 1 request\n");
    return 2;
  }
  if (plan.update_rate < 0.0 || plan.update_rate >= 1.0) {
    std::fprintf(stderr, "volcal_load: --update-rate must be in [0, 1)\n");
    return 2;
  }
  if (plan.update_rate > 0.0 && verify_path.empty()) {
    std::fprintf(stderr,
                 "volcal_load: --update-rate needs --verify (mutation batches are "
                 "proposed against the local snapshot)\n");
    return 2;
  }
  if (plan.update_rate > 0.0) {
    plan.updates = std::max<std::int64_t>(
        1, std::llround(static_cast<double>(plan.requests) * plan.update_rate));
  }

  // Offline ground truth: label every node with the per-start engine (the
  // serving path must match it bit for bit regardless of backend/cache).
  // Under churn (--update-rate) the per-response comparison is suspended —
  // an in-flight query may race an update and legitimately see either graph
  // — and the offline labels are computed AFTER the run, from the locally
  // mutated instance.
  std::vector<int> expected;
  std::optional<ErasedInstance> local;
  if (!verify_path.empty()) {
    try {
      local.emplace(io::load_instance(verify_path));
      plan.nodes = static_cast<std::int64_t>(local->node_count());
      if (plan.updates == 0) {
        const auto offline = run_at_all_nodes(
            local->graph(), local->ids(), [&](Execution& e) { return local->solve(e); });
        expected = offline.output;
        plan.expected = &expected;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "volcal_load: cannot verify against %s: %s\n",
                   verify_path.c_str(), e.what());
      return 1;
    }
  }
  if (plan.nodes < 1) {
    std::fprintf(stderr, "volcal_load: give --nodes (or --verify) to size the traffic\n");
    return 2;
  }

  std::vector<ConnectionTally> tallies(static_cast<std::size_t>(plan.connections));
  std::vector<std::thread> threads;
  std::vector<char> ok(static_cast<std::size_t>(plan.connections), 1);
  UpdateTally updates;
  bool updater_ok = true;
  const auto begin = std::chrono::steady_clock::now();
  for (int c = 0; c < plan.connections; ++c) {
    threads.emplace_back([&, c] {
      ok[static_cast<std::size_t>(c)] =
          run_connection(plan, c, &tallies[static_cast<std::size_t>(c)]) ? 1 : 0;
    });
  }
  if (plan.updates > 0) {
    threads.emplace_back(
        [&] { updater_ok = run_updater(plan, &*local, &updates); });
  }
  for (std::thread& t : threads) t.join();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();

  ConnectionTally total;
  std::vector<double> latencies;
  std::vector<double> shed_latencies;
  for (const ConnectionTally& t : tallies) {
    total.sent += t.sent;
    total.results += t.results;
    total.shed += t.shed;
    total.invalid += t.invalid;
    total.mismatches += t.mismatches;
    total.retries += t.retries;
    total.retry_compliant += t.retry_compliant;
    total.latencies_ns.insert(total.latencies_ns.end(), t.latencies_ns.begin(),
                              t.latencies_ns.end());
    shed_latencies.insert(shed_latencies.end(), t.shed_latencies_ns.begin(),
                          t.shed_latencies_ns.end());
  }
  latencies.assign(total.latencies_ns.begin(), total.latencies_ns.end());
  const stats::Summary latency = stats::summarize(std::move(latencies));
  const stats::Summary shed_latency = stats::summarize(std::move(shed_latencies));

  std::printf(
      "volcal_load: sent %lld, results %lld, shed %lld, invalid %lld in %.3f s "
      "(%.0f qps)\n",
      static_cast<long long>(total.sent), static_cast<long long>(total.results),
      static_cast<long long>(total.shed), static_cast<long long>(total.invalid),
      wall_seconds,
      wall_seconds > 0 ? static_cast<double>(total.results) / wall_seconds : 0.0);
  std::printf("volcal_load: latency p50 %.0f ns, p95 %.0f ns, p99 %.0f ns (%zu samples)\n",
              latency.median, latency.p95, latency.p99, latency.count);
  if (shed_latency.count > 0) {
    std::printf(
        "volcal_load: shed round-trips p50 %.0f ns, p99 %.0f ns (%zu samples)"
        "; retries %lld (%lld honored retry-after)\n",
        shed_latency.median, shed_latency.p99, shed_latency.count,
        static_cast<long long>(total.retries),
        static_cast<long long>(total.retry_compliant));
  }
  if (plan.expected != nullptr) {
    std::printf("volcal_load: verify %s — %lld mismatch(es) across %lld result(s)\n",
                total.mismatches == 0 ? "OK" : "FAILED",
                static_cast<long long>(total.mismatches),
                static_cast<long long>(total.results));
  }

  // Post-churn differential: offline-label the locally-mutated instance and
  // re-query every node synchronously against the post-update server.
  std::int64_t churn_mismatches = 0;
  bool churn_verify_ok = true;
  if (plan.updates > 0) {
    std::printf(
        "volcal_load: updates %lld applied (%lld rejected), cache evicted %lld / "
        "retained %lld, %lld full flushes\n",
        static_cast<long long>(updates.applied),
        static_cast<long long>(updates.rejected),
        static_cast<long long>(updates.cache_evicted),
        static_cast<long long>(updates.cache_retained),
        static_cast<long long>(updates.flushes));
    if (updater_ok) {
      const auto offline = run_at_all_nodes(
          local->graph(), local->ids(), [&](Execution& e) { return local->solve(e); });
      churn_verify_ok = final_verify(plan, offline.output, &churn_mismatches);
      std::printf(
          "volcal_load: post-churn verify %s — %lld mismatch(es) across %lld node(s)\n",
          churn_verify_ok && churn_mismatches == 0 ? "OK" : "FAILED",
          static_cast<long long>(churn_mismatches),
          static_cast<long long>(plan.nodes));
    }
  }

  if (!artifact_path.empty() &&
      !write_artifact(artifact_path, total, latency, shed_latency, updates,
                      wall_seconds)) {
    return 1;
  }
  for (const char c : ok) {
    if (c == 0) return 1;
  }
  if (total.mismatches > 0) return 1;
  if (!updater_ok || !churn_verify_ok || churn_mismatches > 0) return 1;
  return 0;
}

}  // namespace
}  // namespace volcal

int main(int argc, char** argv) { return volcal::run(argc, argv); }
