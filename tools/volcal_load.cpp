// volcal_load — open-loop load generator for volcal_serve.
//
// Drives a serve socket with Zipfian per-node queries (hot centers repeat —
// the regime the cross-request ball cache exists for), measures client-side
// latency and sustained throughput, and optionally verifies every response
// against the offline engine.
//
// Open loop: requests are sent on a fixed schedule (--rate) regardless of
// response progress, so an overloaded server sheds instead of silently
// slowing the generator down.  Shed responses are accounted separately from
// query latency — their round-trips get their own summary (shed_* artifact
// fields), so the query percentiles measure served work only.  With
// --retry-sheds each shed request is replayed once after honoring the
// server's advertised retry_after_ms, and the artifact records how many
// retries actually waited the full backoff ("retries" / "retry_compliant").
//
// --verify FILE loads the same snapshot the server is serving, labels every
// node offline with the per-start engine (run_at_all_nodes), and fails
// unless every served label is bit-identical to the offline output for that
// node — the end-to-end check that the serving path (batched backend + ball
// cache + admission + hot swap) never changes an answer.
//
// Usage: volcal_load --socket PATH [--requests N] [--connections C]
//                    [--rate QPS] [--zipf THETA] [--seed S] [--nodes N]
//                    [--retry-sheds] [--verify FILE] [--artifact FILE]
#include <signal.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "perf/artifact.hpp"
#include "util/hash.hpp"
#include "volcal/io.hpp"
#include "volcal/problems.hpp"
#include "volcal/runtime.hpp"
#include "volcal/serve.hpp"

namespace volcal {
namespace {

// Zipfian(theta) sampler over [0, n): inverse-CDF by binary search on the
// precomputed cumulative weights 1/(i+1)^theta.  theta == 0 is uniform.
class ZipfSampler {
 public:
  ZipfSampler(std::int64_t n, double theta) : cdf_(static_cast<std::size_t>(n)) {
    double total = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      cdf_[static_cast<std::size_t>(i)] = total;
    }
    total_ = total;
  }

  std::int64_t sample(std::uint64_t* state) const {
    *state = splitmix64(*state + 0x9e3779b97f4a7c15ull);
    const double u =
        static_cast<double>(*state >> 11) * (1.0 / 9007199254740992.0) * total_;
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    const auto idx = static_cast<std::int64_t>(it - cdf_.begin());
    return std::min<std::int64_t>(idx, static_cast<std::int64_t>(cdf_.size()) - 1);
  }

 private:
  std::vector<double> cdf_;
  double total_ = 0.0;
};

struct ConnectionTally {
  std::int64_t sent = 0;
  std::int64_t results = 0;
  std::int64_t shed = 0;
  std::int64_t invalid = 0;
  std::int64_t mismatches = 0;
  std::int64_t retries = 0;          // shed requests replayed (--retry-sheds)
  std::int64_t retry_compliant = 0;  // replays that waited >= retry_after_ms
  std::vector<std::int64_t> latencies_ns;       // served results only
  std::vector<std::int64_t> shed_latencies_ns;  // shed round-trips, separately
};

struct LoadPlan {
  std::string socket_path;
  std::int64_t requests = 2000;
  int connections = 1;
  double rate = 0.0;  // total target QPS across connections; 0 = max speed
  double zipf = 0.99;
  std::uint64_t seed = 7;
  std::int64_t nodes = 0;
  bool retry_sheds = false;
  const std::vector<int>* expected = nullptr;  // offline labels, when verifying
};

// One shed response eligible for replay: the node, the advertised backoff,
// and when the shed arrived (compliance = replay waited >= the backoff).
struct ShedRetry {
  std::int64_t node = 0;
  std::uint32_t retry_after_ms = 0;
  std::chrono::steady_clock::time_point shed_at;
};

// One connection: a sender on this thread, a receiver on a helper thread.
// Every query is answered by exactly one Result or Shed, so the receiver
// exits after `sent` responses (Bye frames are ignored).
bool run_connection(const LoadPlan& plan, int conn_index, ConnectionTally* tally) {
  serve::SocketClient client;
  if (!client.connect(plan.socket_path)) {
    std::fprintf(stderr, "volcal_load: cannot connect to %s\n",
                 plan.socket_path.c_str());
    return false;
  }
  const std::int64_t base = plan.requests / plan.connections;
  const std::int64_t extra = plan.requests % plan.connections;
  const std::int64_t to_send = base + (conn_index < extra ? 1 : 0);
  if (to_send == 0) return true;

  // Send timestamps by request id, shared between sender and receiver.
  std::mutex inflight_mu;
  std::unordered_map<std::uint64_t, std::chrono::steady_clock::time_point> inflight;
  std::unordered_map<std::uint64_t, std::int64_t> node_of;
  std::vector<ShedRetry> retry_queue;  // filled by the receiver under inflight_mu

  bool receiver_ok = true;
  std::thread receiver([&] {
    serve::Frame frame;
    std::int64_t answered = 0;
    while (answered < to_send) {
      if (!client.recv_frame(&frame)) {
        receiver_ok = false;
        return;
      }
      if (frame.type == serve::FrameType::Bye) continue;
      std::uint64_t id = 0;
      if (frame.type == serve::FrameType::Result) {
        id = frame.result.request_id;
      } else if (frame.type == serve::FrameType::Shed) {
        id = frame.shed.request_id;
      } else {
        continue;
      }
      std::chrono::steady_clock::time_point sent_at;
      std::int64_t node = -1;
      {
        std::lock_guard lock(inflight_mu);
        const auto it = inflight.find(id);
        if (it == inflight.end()) {
          receiver_ok = false;  // response for a request we never sent
          return;
        }
        sent_at = it->second;
        inflight.erase(it);
        node = node_of[id];
        node_of.erase(id);
      }
      ++answered;
      const auto received_at = std::chrono::steady_clock::now();
      if (frame.type == serve::FrameType::Shed) {
        ++tally->shed;
        // Shed round-trips are timed into their own series — never into the
        // query latency summary.
        tally->shed_latencies_ns.push_back(
            std::chrono::duration_cast<std::chrono::nanoseconds>(received_at -
                                                                 sent_at)
                .count());
        if (plan.retry_sheds && frame.shed.retry_after_ms > 0) {
          std::lock_guard lock(inflight_mu);
          retry_queue.push_back({node, frame.shed.retry_after_ms, received_at});
        }
        continue;
      }
      ++tally->results;
      tally->latencies_ns.push_back(
          std::chrono::duration_cast<std::chrono::nanoseconds>(received_at -
                                                               sent_at)
              .count());
      if (frame.result.status != serve::QueryStatus::Ok) {
        ++tally->invalid;
        continue;
      }
      if (plan.expected != nullptr) {
        if (node < 0 || node >= static_cast<std::int64_t>(plan.expected->size()) ||
            frame.result.label !=
                (*plan.expected)[static_cast<std::size_t>(node)]) {
          ++tally->mismatches;
        }
      }
    }
  });

  ZipfSampler sampler(plan.nodes, plan.zipf);
  std::uint64_t rng = splitmix64(plan.seed + static_cast<std::uint64_t>(conn_index));
  const double per_conn_rate = plan.rate / static_cast<double>(plan.connections);
  const auto begin = std::chrono::steady_clock::now();
  bool sender_ok = true;
  for (std::int64_t i = 0; i < to_send; ++i) {
    if (per_conn_rate > 0.0) {
      const auto due =
          begin + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(static_cast<double>(i) /
                                                    per_conn_rate));
      std::this_thread::sleep_until(due);  // open loop: never waits on responses
    }
    const std::int64_t node = sampler.sample(&rng);
    const std::uint64_t id =
        (static_cast<std::uint64_t>(conn_index) << 48) | static_cast<std::uint64_t>(i);
    {
      std::lock_guard lock(inflight_mu);
      inflight.emplace(id, std::chrono::steady_clock::now());
      node_of.emplace(id, node);
    }
    if (!client.send_query(id, node)) {
      std::fprintf(stderr, "volcal_load: send failed on connection %d\n", conn_index);
      {
        std::lock_guard lock(inflight_mu);
        inflight.erase(id);
        node_of.erase(id);
      }
      sender_ok = false;
      break;
    }
    ++tally->sent;
  }
  if (!sender_ok) client.close();  // unblocks the receiver via EOF
  receiver.join();

  // Replay phase (--retry-sheds): after the open-loop window every shed
  // request is re-sent exactly once, honoring the advertised backoff.
  // Synchronous — one request in flight — so it cannot perturb what the
  // open-loop phase measured.
  if (sender_ok && receiver_ok && plan.retry_sheds && !retry_queue.empty()) {
    std::uint64_t retry_seq = 0;
    serve::Frame frame;
    for (const ShedRetry& r : retry_queue) {
      std::this_thread::sleep_until(r.shed_at +
                                    std::chrono::milliseconds(r.retry_after_ms));
      ++tally->retries;
      if (std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - r.shed_at)
              .count() >= static_cast<std::int64_t>(r.retry_after_ms)) {
        ++tally->retry_compliant;
      }
      const std::uint64_t id = (static_cast<std::uint64_t>(conn_index) << 48) |
                               (std::uint64_t{1} << 40) | retry_seq++;
      const auto sent_at = std::chrono::steady_clock::now();
      if (!client.send_query(id, r.node)) {
        sender_ok = false;
        break;
      }
      ++tally->sent;
      bool got = false;
      while (client.recv_frame(&frame)) {
        const auto received_at = std::chrono::steady_clock::now();
        const auto rtt_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                received_at - sent_at)
                                .count();
        if (frame.type == serve::FrameType::Result &&
            frame.result.request_id == id) {
          ++tally->results;
          tally->latencies_ns.push_back(rtt_ns);
          if (frame.result.status != serve::QueryStatus::Ok) {
            ++tally->invalid;
          } else if (plan.expected != nullptr &&
                     (r.node >= static_cast<std::int64_t>(plan.expected->size()) ||
                      frame.result.label !=
                          (*plan.expected)[static_cast<std::size_t>(r.node)])) {
            ++tally->mismatches;
          }
          got = true;
          break;
        }
        if (frame.type == serve::FrameType::Shed && frame.shed.request_id == id) {
          // Shed again: count it, replay only once.
          ++tally->shed;
          tally->shed_latencies_ns.push_back(rtt_ns);
          got = true;
          break;
        }
        // Bye or stray frame between replays: keep reading.
      }
      if (!got) {
        receiver_ok = false;
        break;
      }
    }
  }

  client.close();
  return sender_ok && receiver_ok;
}

bool write_artifact(const std::string& path, const ConnectionTally& total,
                    const stats::Summary& latency,
                    const stats::Summary& shed_latency, double wall_seconds) {
  perf::BenchArtifact artifact;
  artifact.kind = "bench-report";
  artifact.tool = "volcal_load";
  artifact.stamp_probes(1);
  artifact.total_wall_seconds = wall_seconds;
  artifact.phases.push_back({"load", wall_seconds});

  perf::ServeStatsBlock serve_block;
  serve_block.accepted = total.sent;
  serve_block.completed = total.results;
  serve_block.shed = total.shed;
  serve_block.invalid = total.invalid;
  serve_block.swaps = 0;
  serve_block.latency_samples = static_cast<std::int64_t>(latency.count);
  serve_block.p50_ns = latency.median;
  serve_block.p95_ns = latency.p95;
  serve_block.p99_ns = latency.p99;
  serve_block.mean_ns = latency.mean;
  serve_block.max_ns = latency.max;
  serve_block.wall_seconds = wall_seconds;
  serve_block.qps =
      wall_seconds > 0.0 ? static_cast<double>(total.results) / wall_seconds : 0.0;
  serve_block.shed_latency_samples = static_cast<std::int64_t>(shed_latency.count);
  serve_block.shed_p50_ns = shed_latency.median;
  serve_block.shed_p95_ns = shed_latency.p95;
  serve_block.shed_p99_ns = shed_latency.p99;
  serve_block.retries = total.retries;
  serve_block.retry_compliant = total.retry_compliant;
  artifact.serve = serve_block;

  perf::ArtifactCurve curve;
  curve.name = "latency-percentiles";
  curve.points.push_back({50.0, latency.median, 0.0});
  curve.points.push_back({95.0, latency.p95, 0.0});
  curve.points.push_back({99.0, latency.p99, 0.0});
  curve.refit();
  artifact.curves.push_back(std::move(curve));
  return artifact.write_file(path);
}

int run(int argc, char** argv) {
  ::signal(SIGPIPE, SIG_IGN);  // a dying server surfaces as a send error
  LoadPlan plan;
  std::string verify_path;
  std::string artifact_path;
  for (int i = 1; i < argc; ++i) {
    auto value_of = [&](const char* name) -> const char* {
      const std::size_t len = std::strlen(name);
      if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
        return argv[i] + len + 1;
      }
      if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = value_of("--socket")) {
      plan.socket_path = v;
    } else if (const char* v = value_of("--requests")) {
      plan.requests = std::atoll(v);
    } else if (const char* v = value_of("--connections")) {
      plan.connections = std::atoi(v);
    } else if (const char* v = value_of("--rate")) {
      plan.rate = std::atof(v);
    } else if (const char* v = value_of("--zipf")) {
      plan.zipf = std::atof(v);
    } else if (const char* v = value_of("--seed")) {
      plan.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--nodes")) {
      plan.nodes = std::atoll(v);
    } else if (std::strcmp(argv[i], "--retry-sheds") == 0) {
      plan.retry_sheds = true;
    } else if (const char* v = value_of("--verify")) {
      verify_path = v;
    } else if (const char* v = value_of("--artifact")) {
      artifact_path = v;
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "volcal_load — open-loop Zipfian load generator for volcal_serve\n\n"
          "  --socket <p>       serve socket to drive (required)\n"
          "  --requests <n>     total queries across connections [2000]\n"
          "  --connections <c>  parallel connections [1]\n"
          "  --rate <qps>       open-loop send rate, 0 = max speed [0]\n"
          "  --zipf <theta>     Zipf exponent, 0 = uniform [0.99]\n"
          "  --seed <s>         traffic seed [7]\n"
          "  --nodes <n>        node universe (required unless --verify)\n"
          "  --retry-sheds      replay each shed once after its retry-after\n"
          "  --verify <f>       offline-label this snapshot and compare every\n"
          "                     response bit-for-bit\n"
          "  --artifact <f>     write the client-side perf artifact\n");
      return 0;
    } else {
      std::fprintf(stderr, "volcal_load: unknown argument '%s' (try --help)\n", argv[i]);
      return 2;
    }
  }
  if (plan.socket_path.empty()) {
    std::fprintf(stderr, "volcal_load: --socket is required (try --help)\n");
    return 2;
  }
  if (plan.connections < 1 || plan.requests < 1) {
    std::fprintf(stderr, "volcal_load: need >= 1 connection and >= 1 request\n");
    return 2;
  }

  // Offline ground truth: label every node with the per-start engine (the
  // serving path must match it bit for bit regardless of backend/cache).
  std::vector<int> expected;
  if (!verify_path.empty()) {
    try {
      const ErasedInstance inst = io::load_instance(verify_path);
      const auto offline = run_at_all_nodes(
          inst.graph(), inst.ids(), [&](Execution& e) { return inst.solve(e); });
      expected = offline.output;
      plan.nodes = static_cast<std::int64_t>(inst.node_count());
      plan.expected = &expected;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "volcal_load: cannot verify against %s: %s\n",
                   verify_path.c_str(), e.what());
      return 1;
    }
  }
  if (plan.nodes < 1) {
    std::fprintf(stderr, "volcal_load: give --nodes (or --verify) to size the traffic\n");
    return 2;
  }

  std::vector<ConnectionTally> tallies(static_cast<std::size_t>(plan.connections));
  std::vector<std::thread> threads;
  std::vector<char> ok(static_cast<std::size_t>(plan.connections), 1);
  const auto begin = std::chrono::steady_clock::now();
  for (int c = 0; c < plan.connections; ++c) {
    threads.emplace_back([&, c] {
      ok[static_cast<std::size_t>(c)] =
          run_connection(plan, c, &tallies[static_cast<std::size_t>(c)]) ? 1 : 0;
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();

  ConnectionTally total;
  std::vector<double> latencies;
  std::vector<double> shed_latencies;
  for (const ConnectionTally& t : tallies) {
    total.sent += t.sent;
    total.results += t.results;
    total.shed += t.shed;
    total.invalid += t.invalid;
    total.mismatches += t.mismatches;
    total.retries += t.retries;
    total.retry_compliant += t.retry_compliant;
    total.latencies_ns.insert(total.latencies_ns.end(), t.latencies_ns.begin(),
                              t.latencies_ns.end());
    shed_latencies.insert(shed_latencies.end(), t.shed_latencies_ns.begin(),
                          t.shed_latencies_ns.end());
  }
  latencies.assign(total.latencies_ns.begin(), total.latencies_ns.end());
  const stats::Summary latency = stats::summarize(std::move(latencies));
  const stats::Summary shed_latency = stats::summarize(std::move(shed_latencies));

  std::printf(
      "volcal_load: sent %lld, results %lld, shed %lld, invalid %lld in %.3f s "
      "(%.0f qps)\n",
      static_cast<long long>(total.sent), static_cast<long long>(total.results),
      static_cast<long long>(total.shed), static_cast<long long>(total.invalid),
      wall_seconds,
      wall_seconds > 0 ? static_cast<double>(total.results) / wall_seconds : 0.0);
  std::printf("volcal_load: latency p50 %.0f ns, p95 %.0f ns, p99 %.0f ns (%zu samples)\n",
              latency.median, latency.p95, latency.p99, latency.count);
  if (shed_latency.count > 0) {
    std::printf(
        "volcal_load: shed round-trips p50 %.0f ns, p99 %.0f ns (%zu samples)"
        "; retries %lld (%lld honored retry-after)\n",
        shed_latency.median, shed_latency.p99, shed_latency.count,
        static_cast<long long>(total.retries),
        static_cast<long long>(total.retry_compliant));
  }
  if (plan.expected != nullptr) {
    std::printf("volcal_load: verify %s — %lld mismatch(es) across %lld result(s)\n",
                total.mismatches == 0 ? "OK" : "FAILED",
                static_cast<long long>(total.mismatches),
                static_cast<long long>(total.results));
  }

  if (!artifact_path.empty() &&
      !write_artifact(artifact_path, total, latency, shed_latency, wall_seconds)) {
    return 1;
  }
  for (const char c : ok) {
    if (c == 0) return 1;
  }
  if (total.mismatches > 0) return 1;
  return 0;
}

}  // namespace
}  // namespace volcal

int main(int argc, char** argv) { return volcal::run(argc, argv); }
