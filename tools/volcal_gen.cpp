// volcal_gen — snapshot generator: build every registry family over a
// doubling n-sweep and write each instance as a versioned binary snapshot
// (io/snapshot.hpp) named <family>-t<target>-s<seed>.vsnap.
//
// The point is to decouple instance *generation* from instance *use*: large
// instances are generated once (possibly on a bigger machine or overnight)
// and volcal_bench / volcal_fuzz mmap-load them, which is what lets doubling
// sweeps extend decades past n = 2^20 without paying generator wall time or
// generator RAM per run.  File names embed the sweep target (not the
// realized n) so loaders can look up snapshots by the same doubling schedule
// they would have generated with.
//
// Usage: volcal_gen [--out-dir DIR] [--seed S] [--max-n N] [--min-n N]
//                   [--filter S] [--validate]
//   --out-dir DIR  destination directory (default ".", must exist)
//   --seed S       generator seed (default 7, the bench default)
//   --max-n N      largest sweep target (default 4096)
//   --min-n N      smallest sweep target (default 256)
//   --filter S     only families whose name contains S
//   --validate     mmap-load each written snapshot back and fail unless the
//                  CSR/ID arrays are bit-identical to the in-RAM instance
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "volcal/io.hpp"
#include "volcal/problems.hpp"

namespace volcal {
namespace {

bool validate_roundtrip(const ErasedInstance& inst, const std::string& path) {
  ErasedInstance loaded = io::load_instance(path);
  if (loaded.family() != inst.family() || loaded.node_count() != inst.node_count()) {
    std::fprintf(stderr, "volcal_gen: %s: family/size did not round-trip\n", path.c_str());
    return false;
  }
  const GraphView a = inst.graph();
  const GraphView b = loaded.graph();
  const auto n = static_cast<std::size_t>(a.node_count());
  if (a.max_degree() != b.max_degree() || a.edge_count() != b.edge_count() ||
      std::memcmp(a.offsets_data(), b.offsets_data(), sizeof(std::size_t) * (n + 1)) != 0 ||
      (a.edge_count() > 0 &&
       std::memcmp(a.adjacency_data(), b.adjacency_data(),
                   sizeof(NodeIndex) * static_cast<std::size_t>(2 * a.edge_count())) != 0)) {
    std::fprintf(stderr, "volcal_gen: %s: CSR arrays are not bit-identical\n", path.c_str());
    return false;
  }
  for (NodeIndex v = 0; v < a.node_count(); ++v) {
    if (inst.ids().id_of(v) != loaded.ids().id_of(v)) {
      std::fprintf(stderr, "volcal_gen: %s: ID table diverged at node %lld\n", path.c_str(),
                   static_cast<long long>(v));
      return false;
    }
  }
  return true;
}

int run(int argc, char** argv) {
  std::string out_dir = ".";
  std::string filter;
  std::uint64_t seed = 7;
  std::int64_t max_n = 4096;
  std::int64_t min_n = 256;
  bool validate = false;
  for (int i = 1; i < argc; ++i) {
    auto value_of = [&](const char* name) -> const char* {
      const std::size_t len = std::strlen(name);
      if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
        return argv[i] + len + 1;
      }
      if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = value_of("--out-dir")) {
      out_dir = v;
    } else if (const char* v = value_of("--seed")) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--max-n")) {
      max_n = std::atoll(v);
    } else if (const char* v = value_of("--min-n")) {
      min_n = std::atoll(v);
    } else if (const char* v = value_of("--filter")) {
      filter = v;
    } else if (std::strcmp(argv[i], "--validate") == 0) {
      validate = true;
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "volcal_gen — write registry instances as binary snapshots\n\n"
          "  --out-dir <d>  destination directory [.]\n"
          "  --seed <s>     generator seed [7]\n"
          "  --max-n <n>    largest sweep target [4096]\n"
          "  --min-n <n>    smallest sweep target [256]\n"
          "  --filter <s>   only families whose name contains <s>\n"
          "  --validate     mmap-load each snapshot back and compare\n");
      return 0;
    } else {
      std::fprintf(stderr, "volcal_gen: unknown argument '%s' (try --help)\n", argv[i]);
      return 2;
    }
  }
  if (min_n < 1 || max_n < min_n) {
    std::fprintf(stderr, "volcal_gen: bad sweep range [%lld, %lld]\n",
                 static_cast<long long>(min_n), static_cast<long long>(max_n));
    return 2;
  }

  const auto entries = ProblemRegistry::global().match(filter);
  if (entries.empty()) {
    std::fprintf(stderr, "volcal_gen: no registry entries match filter '%s'\n",
                 filter.c_str());
    return 2;
  }

  int written = 0;
  for (const RegistryEntry* entry : entries) {
    std::int64_t last_node_count = -1;
    for (std::int64_t target = min_n; target <= max_n; target *= 2) {
      const ErasedInstance inst = entry->make(static_cast<NodeIndex>(target), seed);
      const auto n = static_cast<std::int64_t>(inst.node_count());
      // Same dedup rule as the bench sweep: families map n_target onto their
      // natural size parameter, so successive small targets can collapse onto
      // one instance.  Skipped targets have no file; loaders fall back to
      // generating (and would skip the duplicate point anyway).
      if (n == last_node_count) continue;
      last_node_count = n;
      const std::string path = out_dir + "/" + entry->name + "-t" +
                               std::to_string(target) + "-s" + std::to_string(seed) +
                               ".vsnap";
      try {
        inst.save_snapshot(path);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "volcal_gen: cannot write %s: %s\n", path.c_str(), e.what());
        return 1;
      }
      if (validate && !validate_roundtrip(inst, path)) return 1;
      std::printf("%s  n=%lld%s\n", path.c_str(), static_cast<long long>(n),
                  validate ? "  [validated]" : "");
      ++written;
    }
  }
  std::printf("volcal_gen: %d snapshot(s) written to %s\n", written, out_dir.c_str());
  return 0;
}

}  // namespace
}  // namespace volcal

int main(int argc, char** argv) { return volcal::run(argc, argv); }
