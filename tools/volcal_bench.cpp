// volcal_bench — the benchmark-telemetry orchestrator behind the CI perf
// gate.  Runs every registry family through the shared bench::Args pipeline
// on an n-sweep, verifies each family's outputs once at the smallest size,
// and writes one canonical BENCH_<family>.json artifact per family plus a
// merged BENCH_SUMMARY.json (perf/artifact.hpp schema v2).
//
// The cost curves (volume / distance / queries vs n) are deterministic: the
// sweep engine is bit-identical at any thread count and every generator is
// seeded, so committed baselines (bench/baselines/) reproduce exactly on any
// machine and tools/volcal_bench_diff treats any drift as a hard regression.
//
// With --snapshot-dir, each sweep point first looks for the volcal_gen
// snapshot <dir>/<family>-t<target>-s<seed>.vsnap and mmap-loads it instead
// of regenerating; the wall time lands in a "load" phase (vs "generate"), so
// schema-v2 artifacts record the load-vs-generate comparison directly.  Cost
// curves are identical either way — snapshots round-trip bit-identically —
// which is what lets sweeps extend past RAM-comfortable generator sizes.
//
// Usage: volcal_bench [--out-dir DIR] [--seed S] [--snapshot-dir DIR]
//                     [bench::Args flags]
//   --max-n N     largest instance target (default 4096)
//   --filter S    restrict to registry entries whose name contains S
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "lcl/registry.hpp"
#include "volcal/io.hpp"
#include "perf/artifact.hpp"
#include "perf/probe.hpp"
#include "volcal/runtime.hpp"

namespace volcal::bench {
namespace {

constexpr std::int64_t kDefaultMaxN = 4096;
constexpr std::int64_t kMinN = 256;
constexpr NodeIndex kStartSample = 16;
constexpr std::uint64_t kSeed = 7;

// One registry family -> one bench-family artifact: generate an n-sweep,
// verify once at the smallest size, sweep sampled starts at every size, and
// fit the three cost curves.
perf::BenchArtifact run_family(const RegistryEntry& entry, std::int64_t max_n,
                               std::uint64_t seed, const std::string& snapshot_dir) {
  perf::BenchArtifact art;
  art.kind = "bench-family";
  art.tool = "volcal_bench";
  art.family = entry.name;
  art.title = entry.title;
  art.theta = entry.theta;
  art.algorithm = entry.algorithm;

  perf::ArtifactCurve volume{.name = "volume", .claim = entry.theta};
  perf::ArtifactCurve distance{.name = "distance", .claim = entry.theta};
  perf::ArtifactCurve queries{.name = "queries", .claim = entry.theta};

  const perf::AllocStats alloc_base = perf::alloc_snapshot();
  perf::PhaseTimer phases;
  WallTimer total;

  bool verified = false;
  std::int64_t last_node_count = -1;
  for (std::int64_t target = kMinN; target <= max_n; target *= 2) {
    ErasedInstance inst = [&]() -> ErasedInstance {
      if (!snapshot_dir.empty()) {
        const std::string snap = snapshot_dir + "/" + entry.name + "-t" +
                                 std::to_string(target) + "-s" + std::to_string(seed) +
                                 ".vsnap";
        if (io::sniff_snapshot(snap)) {
          auto scope = phases.scope("load");
          return io::load_instance(snap);
        }
      }
      auto scope = phases.scope("generate");
      return entry.make(static_cast<NodeIndex>(target), seed);
    }();
    const auto n = static_cast<std::int64_t>(inst.node_count());
    // Families map n_target onto their natural size parameter; small targets
    // can collapse onto the same instance.  One point per distinct size.
    if (n == last_node_count) continue;
    last_node_count = n;

    if (!verified) {
      auto scope = phases.scope("verify");
      auto result = run_at_all_nodes(inst.graph(), inst.ids(),
                                     [&](Execution& exec) { return inst.solve(exec); });
      const VerifyResult v = inst.verify(result.output);
      if (!v.ok) {
        std::fprintf(stderr,
                     "volcal_bench: %s outputs INVALID at n=%lld (%lld violations, "
                     "first at node %lld)\n",
                     entry.name.c_str(), static_cast<long long>(n),
                     static_cast<long long>(v.violations),
                     static_cast<long long>(v.first_bad));
        std::exit(1);
      }
      verified = true;
    }

    SweepStats cost;
    {
      auto scope = phases.scope("sweep");
      const auto starts = sampled_starts(inst.node_count(), kStartSample);
      cost = measure(inst.graph(), inst.ids(), starts,
                     [&](Execution& exec) { return inst.solve(exec); },
                     /*tape=*/nullptr, /*threads=*/0, entry.plan);
    }
    art.cache += cost.cache;
    const auto nd = static_cast<double>(n);
    // The sweep's wall time rides on the volume curve only, so per-curve
    // attribution in the diff tool does not triple-count it.
    volume.points.push_back({nd, static_cast<double>(cost.max_volume), cost.wall_seconds});
    distance.points.push_back({nd, static_cast<double>(cost.max_distance), 0.0});
    queries.points.push_back({nd, static_cast<double>(cost.total_queries), 0.0});
  }

  {
    auto scope = phases.scope("fit");
    volume.refit();
    distance.refit();
    queries.refit();
  }
  art.curves.push_back(std::move(volume));
  art.curves.push_back(std::move(distance));
  art.curves.push_back(std::move(queries));
  art.phases = phases.phases();
  art.total_wall_seconds = total.seconds();
  art.stamp_probes(detail::resolve_thread_count(0), alloc_base);
  return art;
}

int run(int argc, char** argv) {
  auto args = Args::parse(&argc, argv, "volcal_bench");
  std::string out_dir = ".";
  std::string snapshot_dir;
  std::uint64_t seed = kSeed;
  for (int i = 1; i < argc; ++i) {
    auto value_of = [&](const char* name, std::size_t len) -> const char* {
      if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
        return argv[i] + len + 1;
      }
      if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = value_of("--out-dir", 9)) {
      out_dir = v;
    } else if (const char* v = value_of("--snapshot-dir", 14)) {
      snapshot_dir = v;
    } else if (const char* v = value_of("--seed", 6)) {
      seed = static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
    } else {
      std::fprintf(stderr, "volcal_bench: unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }
  if (seed != kSeed) {
    std::fprintf(stderr,
                 "volcal_bench: note: custom --seed %llu — artifacts will not match "
                 "baselines generated with the default seed\n",
                 static_cast<unsigned long long>(seed));
  }
  const std::int64_t max_n = args.max_n > 0 ? args.max_n : kDefaultMaxN;

  const auto entries = ProblemRegistry::global().match(args.filter);
  if (entries.empty()) {
    std::fprintf(stderr, "volcal_bench: no registry entries match filter '%s'\n",
                 args.filter.c_str());
    return 2;
  }

  perf::BenchSummary summary;
  summary.tool = "volcal_bench";
  WallTimer total;
  for (const RegistryEntry* entry : entries) {
    std::printf("== %s (%s) ==\n", entry->name.c_str(), entry->title.c_str());
    perf::BenchArtifact art = run_family(*entry, max_n, seed, snapshot_dir);
    for (const perf::ArtifactCurve& c : art.curves) {
      std::printf("  %-9s fitted %-14s (claim: %s)\n", c.name.c_str(), c.fitted.c_str(),
                  c.claim.c_str());
    }
    const std::string path = out_dir + "/BENCH_" + entry->name + ".json";
    if (!art.write_file(path)) {
      std::fprintf(stderr, "volcal_bench: cannot write %s\n", path.c_str());
      return 2;
    }
    std::printf("  [artifact: %s]\n", path.c_str());
    summary.families.push_back(std::move(art));
  }
  summary.total_wall_seconds = total.seconds();
  summary.env = perf::current_env(detail::resolve_thread_count(0));
  const std::string spath = out_dir + "/BENCH_SUMMARY.json";
  if (!summary.write_file(spath)) {
    std::fprintf(stderr, "volcal_bench: cannot write %s\n", spath.c_str());
    return 2;
  }
  std::printf("[summary: %s — %zu families]\n", spath.c_str(), summary.families.size());
  return 0;
}

}  // namespace
}  // namespace volcal::bench

int main(int argc, char** argv) { return volcal::bench::run(argc, argv); }
