// The LOCAL model as a view over the query model (paper Remark 2.3 and the
// simulation arguments of §1.2 / Lemma 2.5).
//
// A distance-T LOCAL algorithm is a function of the radius-T ball around the
// initiating node.  run_local materializes that ball through the query
// interface (so the run is charged exactly |N_v(T)| volume and T distance)
// and hands the algorithm a BallView.
//
// The two simulation directions of Lemma 2.5 are exposed as adapters:
//   * any volume-m algorithm already runs within distance m (no adapter
//     needed — the cost meter shows it);
//   * any distance-T algorithm runs within volume Δ^T + 1 via run_local.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "runtime/execution.hpp"

namespace volcal {

// The radius-T ball gathered by one LOCAL run: nodes in BFS order with their
// layer, plus membership lookup.  Input labels are read by the algorithm
// through its own instance reference (guarded by Execution's visited check).
class BallView {
 public:
  BallView(Execution& exec, std::int64_t radius)
      : exec_(&exec), radius_(radius), nodes_(explore_ball(exec, radius)) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      index_[nodes_[i]] = static_cast<std::int64_t>(i);
    }
  }

  Execution& execution() const { return *exec_; }
  NodeIndex center() const { return exec_->start(); }
  std::int64_t radius() const { return radius_; }
  const std::vector<NodeIndex>& nodes() const { return nodes_; }
  bool contains(NodeIndex v) const { return index_.contains(v); }
  std::int64_t size() const { return static_cast<std::int64_t>(nodes_.size()); }

 private:
  Execution* exec_;
  std::int64_t radius_;
  std::vector<NodeIndex> nodes_;
  std::unordered_map<NodeIndex, std::int64_t> index_;
};

// Runs a LOCAL algorithm of radius T: fn receives the materialized ball.
// The Execution's meters afterwards satisfy distance() <= T and
// volume() <= Δ^T + 1 — the second Lemma 2.5 inequality by construction.
template <typename Fn>
auto run_local(Execution& exec, std::int64_t radius, Fn&& fn) {
  BallView ball(exec, radius);
  return fn(ball);
}

}  // namespace volcal
