// Success-probability estimation for randomized algorithms (Definition 2.4:
// a randomized algorithm solves Π if the joint output is feasible with
// probability 1 - O(1/n) over every node's randomness).
//
// We estimate the success rate by re-running the whole-graph solve under
// `trials` independent tapes and verifying each joint output.
#pragma once

#include <cstdint>

#include "lcl/lcl.hpp"
#include "runtime/randomness.hpp"
#include "runtime/parallel_runner.hpp"
#include "util/hash.hpp"

namespace volcal {

struct SuccessEstimate {
  int trials = 0;
  int successes = 0;
  std::int64_t max_volume = 0;
  std::int64_t max_distance = 0;

  double rate() const { return trials == 0 ? 0.0 : static_cast<double>(successes) / trials; }
};

// solver_factory(tape) must return a callable Label(Execution&) using that
// tape; problem/instance as in verify_all.
template <typename Problem, typename Instance, typename SolverFactory>
SuccessEstimate estimate_success(const Problem& problem, const Instance& instance,
                                 SolverFactory&& solver_factory, int trials,
                                 std::uint64_t seed_base = 0x5eed,
                                 RandomnessModel model = RandomnessModel::Private) {
  SuccessEstimate est;
  est.trials = trials;
  for (int t = 0; t < trials; ++t) {
    RandomTape tape(instance.ids, mix64(seed_base, static_cast<std::uint64_t>(t)), model);
    auto solver = solver_factory(tape);
    auto result = run_at_all_nodes(instance.graph, instance.ids, solver, /*budget=*/0, &tape);
    if (verify_all(problem, instance, result.output).ok) ++est.successes;
    est.max_volume = std::max(est.max_volume, result.stats.max_volume);
    est.max_distance = std::max(est.max_distance, result.stats.max_distance);
  }
  return est;
}

}  // namespace volcal
