// Per-node random strings (paper Section 2.2 and the discussion in §7.4).
//
// Each node v carries an infinite random string r_v : N -> {0,1}; r_v is part
// of v's *input*, so every execution that queries v sees the same bits.  We
// realize r_v as one stream of 64-bit blocks, block b a deterministic hash of
// (seed, id(v), block-domain, b): reproducible, independent across nodes and
// positions for all statistical purposes here, and trivially shared between
// the many per-node executions of a run.  Bit i is bit (i mod 64) of block
// floor(i/64), and a word read at position i is exactly bits i..i+63 of the
// same stream — so bit and word reads at overlapping positions are consistent
// by construction, and word accounting (64 positions) matches the values
// actually consumed.  (Historically word_value hashed position 0x9000+i on
// the *bit* stream: words aliased far-away bit positions, and words at
// adjacent positions claimed overlapping bit ranges while returning
// independent values.  tests/randomness_correlation_test.cpp pins the
// single-stream semantics.)
//
// Bit-usage accounting: the model (§2.2, footnote 1) assumes bits are read
// sequentially and that the number of accessed bits is bounded whp.  The tape
// records the high-water mark per node so tests can assert the bound.
// Because tape *values* are pure hashes, only this accounting is mutable
// state; it is factored into TapeUsage so the parallel sweep engine can keep
// one usage ledger per worker and merge them (a per-node max, so the merged
// totals are independent of scheduling).  Accounting routes:
//   * inside a ScopedUsage (one per sweep worker): lock-free into the
//     worker-local ledger, merged into the tape when the scope closes;
//   * otherwise: into the tape's own ledger under a mutex — safe from any
//     thread, uncontended in serial code.
//
// Three access disciplines (§7.4):
//   * private  — any execution may read any visited node's tape (the paper's
//                main model),
//   * public   — one global tape, node-independent,
//   * secret   — an execution may only read the tape of its *initiating*
//                node.
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "graph/graph.hpp"
#include "labels/ids.hpp"
#include "util/hash.hpp"

namespace volcal {

enum class RandomnessModel : std::uint8_t { Private, Public, Secret };

// High-water marks of accessed tape positions, per node.  Plain data with a
// commutative merge (pointwise max): merging per-worker ledgers in any order
// yields the same totals, which is what makes parallel-sweep bit accounting
// deterministic.
class TapeUsage {
 public:
  void note(NodeIndex v, std::uint64_t position) {
    auto& hw = used_[v];
    hw = std::max(hw, position + 1);
  }

  void merge(const TapeUsage& other) {
    for (const auto& [v, bits] : other.used_) {
      auto& hw = used_[v];
      hw = std::max(hw, bits);
    }
  }

  std::uint64_t bits(NodeIndex v) const {
    auto it = used_.find(v);
    return it == used_.end() ? 0 : it->second;
  }

  std::uint64_t max_bits() const {
    std::uint64_t m = 0;
    for (const auto& [node, bits] : used_) m = std::max(m, bits);
    return m;
  }

  bool empty() const { return used_.empty(); }
  void clear() { used_.clear(); }

 private:
  std::unordered_map<NodeIndex, std::uint64_t> used_;
};

class RandomTape {
 private:
  // Where note_use routes on this thread: a worker-local ledger while a
  // ScopedUsage for this tape is alive, the tape's own mutex-guarded ledger
  // otherwise.
  struct Sink {
    const RandomTape* tape;
    TapeUsage* usage;
  };

 public:
  RandomTape(const IdAssignment& ids, std::uint64_t seed,
             RandomnessModel model = RandomnessModel::Private)
      : ids_(&ids), seed_(seed), model_(model) {}

  RandomnessModel model() const { return model_; }
  std::uint64_t seed() const { return seed_; }

  // r_v(i): the i-th bit of node v's random string.  `reader` is the node
  // whose execution is asking; the secret model rejects cross-node reads.
  bool bit(NodeIndex reader, NodeIndex v, std::uint64_t i) {
    check_access(reader, v);
    note_use(v, i);
    return bit_value(v, i);
  }

  // A uniform word built from 64 consecutive bits starting at position i
  // (positions i..i+63 count as used).
  std::uint64_t word(NodeIndex reader, NodeIndex v, std::uint64_t i) {
    check_access(reader, v);
    note_use(v, i + 63);
    return word_value(v, i);
  }

  // Uniform double in [0,1) consuming 64 bits at position i.
  double unit(NodeIndex reader, NodeIndex v, std::uint64_t i) {
    return to_unit_double(word(reader, v, i));
  }

  // Pure value functions: no access check, no accounting.  The hash makes
  // them safe from any thread.  Both read the one block stream, so
  // bit j of word_value(v, i) == bit_value(v, i + j) for all j in [0, 64).
  bool bit_value(NodeIndex v, std::uint64_t i) const {
    return ((block_value(v, i >> 6) >> (i & 63)) & 1) != 0;
  }
  std::uint64_t word_value(NodeIndex v, std::uint64_t i) const {
    const std::uint64_t off = i & 63;
    const std::uint64_t lo = block_value(v, i >> 6);
    if (off == 0) return lo;
    return (lo >> off) | (block_value(v, (i >> 6) + 1) << (64 - off));
  }

  // High-water mark of accessed positions on v's string (+1), i.e. the number
  // of consumed bits under sequential access.  0 if untouched.  Usage
  // recorded inside a still-open ScopedUsage becomes visible here only when
  // that scope closes.
  std::uint64_t bits_used(NodeIndex v) const {
    std::lock_guard<std::mutex> lock(usage_mutex_);
    return usage_.bits(v);
  }
  std::uint64_t max_bits_used_anywhere() const {
    std::lock_guard<std::mutex> lock(usage_mutex_);
    return usage_.max_bits();
  }

  void merge_usage(const TapeUsage& other) {
    std::lock_guard<std::mutex> lock(usage_mutex_);
    usage_.merge(other);
  }

  // RAII worker-local accounting: while alive on this thread, every bit read
  // through this tape is noted lock-free in a private ledger; the destructor
  // merges it into the tape.  One per sweep worker keeps the parallel hot
  // path free of the accounting mutex.  Scopes on different tapes nest.
  class ScopedUsage {
   public:
    explicit ScopedUsage(RandomTape& tape) : tape_(&tape), prev_(tls_sink_) {
      tls_sink_ = Sink{tape_, &local_};
    }
    ~ScopedUsage() {
      tls_sink_ = prev_;
      tape_->merge_usage(local_);
    }
    ScopedUsage(const ScopedUsage&) = delete;
    ScopedUsage& operator=(const ScopedUsage&) = delete;

    const TapeUsage& local() const { return local_; }

   private:
    RandomTape* tape_;
    TapeUsage local_;
    Sink prev_;
  };

 private:
  // Domain tag keeps the tape's block stream disjoint from every other use of
  // mix64 keyed by (seed, id) — generators, shuffled IDs — for any seed.
  static constexpr std::uint64_t kBlockDomain = 0x7461706562ull;  // "tapeb"

  std::uint64_t block_value(NodeIndex v, std::uint64_t b) const {
    return mix64(seed_, id_key(v), kBlockDomain, b);
  }

  std::uint64_t id_key(NodeIndex v) const {
    return (model_ == RandomnessModel::Public) ? 0 : ids_->id_of(v);
  }

  void check_access(NodeIndex reader, NodeIndex v) const {
    if (model_ == RandomnessModel::Secret && reader != v) {
      throw std::logic_error("RandomTape: secret-randomness violation: node " +
                             std::to_string(reader) + " read tape of " + std::to_string(v));
    }
  }

  void note_use(NodeIndex v, std::uint64_t i) {
    const NodeIndex key = (model_ == RandomnessModel::Public) ? 0 : v;
    if (tls_sink_.tape == this) {
      tls_sink_.usage->note(key, i);
      return;
    }
    std::lock_guard<std::mutex> lock(usage_mutex_);
    usage_.note(key, i);
  }

  const IdAssignment* ids_;
  std::uint64_t seed_;
  RandomnessModel model_;
  mutable std::mutex usage_mutex_;
  TapeUsage usage_;
  inline static thread_local Sink tls_sink_{nullptr, nullptr};
};

}  // namespace volcal
