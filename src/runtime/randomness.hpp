// Per-node random strings (paper Section 2.2 and the discussion in §7.4).
//
// Each node v carries an infinite random string r_v : N -> {0,1}; r_v is part
// of v's *input*, so every execution that queries v sees the same bits.  We
// realize r_v(i) as a deterministic hash of (seed, id(v), i): reproducible,
// independent across nodes and positions for all statistical purposes here,
// and trivially shared between the many per-node executions of a run.
//
// Bit-usage accounting: the model (§2.2, footnote 1) assumes bits are read
// sequentially and that the number of accessed bits is bounded whp.  The tape
// records the high-water mark per node so tests can assert the bound.
//
// Three access disciplines (§7.4):
//   * private  — any execution may read any visited node's tape (the paper's
//                main model),
//   * public   — one global tape, node-independent,
//   * secret   — an execution may only read the tape of its *initiating*
//                node.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <unordered_map>

#include "graph/graph.hpp"
#include "labels/ids.hpp"
#include "util/hash.hpp"

namespace volcal {

enum class RandomnessModel : std::uint8_t { Private, Public, Secret };

class RandomTape {
 public:
  RandomTape(const IdAssignment& ids, std::uint64_t seed,
             RandomnessModel model = RandomnessModel::Private)
      : ids_(&ids), seed_(seed), model_(model) {}

  RandomnessModel model() const { return model_; }
  std::uint64_t seed() const { return seed_; }

  // r_v(i): the i-th bit of node v's random string.  `reader` is the node
  // whose execution is asking; the secret model rejects cross-node reads.
  bool bit(NodeIndex reader, NodeIndex v, std::uint64_t i) {
    check_access(reader, v);
    note_use(v, i);
    const NodeIndex key = (model_ == RandomnessModel::Public) ? 0 : v;
    const std::uint64_t id =
        (model_ == RandomnessModel::Public) ? 0 : ids_->id_of(key);
    return (mix64(seed_, id, i) & 1) != 0;
  }

  // A uniform word built from 64 consecutive bits starting at position i
  // (positions i..i+63 count as used).
  std::uint64_t word(NodeIndex reader, NodeIndex v, std::uint64_t i) {
    check_access(reader, v);
    note_use(v, i + 63);
    const std::uint64_t id =
        (model_ == RandomnessModel::Public) ? 0 : ids_->id_of(v);
    return mix64(seed_, id, 0x9000 + i);
  }

  // Uniform double in [0,1) consuming 64 bits at position i.
  double unit(NodeIndex reader, NodeIndex v, std::uint64_t i) {
    return to_unit_double(word(reader, v, i));
  }

  // High-water mark of accessed positions on v's string (+1), i.e. the number
  // of consumed bits under sequential access.  0 if untouched.
  std::uint64_t bits_used(NodeIndex v) const {
    auto it = used_.find(v);
    return it == used_.end() ? 0 : it->second;
  }
  std::uint64_t max_bits_used_anywhere() const {
    std::uint64_t m = 0;
    for (const auto& [node, bits] : used_) m = std::max(m, bits);
    return m;
  }

 private:
  void check_access(NodeIndex reader, NodeIndex v) const {
    if (model_ == RandomnessModel::Secret && reader != v) {
      throw std::logic_error("RandomTape: secret-randomness violation: node " +
                             std::to_string(reader) + " read tape of " + std::to_string(v));
    }
  }
  void note_use(NodeIndex v, std::uint64_t i) {
    auto& hw = used_[model_ == RandomnessModel::Public ? 0 : v];
    hw = std::max(hw, i + 1);
  }

  const IdAssignment* ids_;
  std::uint64_t seed_;
  RandomnessModel model_;
  std::unordered_map<NodeIndex, std::uint64_t> used_;
};

}  // namespace volcal
