#include "runtime/parallel_runner.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "obs/registry.hpp"
#include "util/env.hpp"

namespace volcal::detail {

int resolve_thread_count(int requested) {
  if (requested > 0) return std::min(requested, 256);
  // Strict parse: `VOLCAL_THREADS=eight` used to run serial without a word.
  if (const auto parsed = env::positive_int("VOLCAL_THREADS", 256, "1 thread")) {
    return static_cast<int>(*parsed);
  }
  return 1;
}

std::int64_t sweep_chunk(std::int64_t items, int workers) {
  if (workers <= 1) return std::max<std::int64_t>(items, 1);
  // Aim for ~8 chunks per worker so a slow chunk cannot strand the pool,
  // capped so the atomic counter stays cold relative to the work per chunk.
  const std::int64_t target = items / (static_cast<std::int64_t>(workers) * 8);
  return std::clamp<std::int64_t>(target, 1, 1024);
}

void run_on_workers(int workers, const std::function<void(int)>& body) {
  if (workers <= 1) {
    body(0);
    return;
  }
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(workers));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers) - 1);
  for (int w = 1; w < workers; ++w) {
    pool.emplace_back([&body, &errors, w] {
      try {
        body(w);
      } catch (...) {
        errors[static_cast<std::size_t>(w)] = std::current_exception();
      }
    });
  }
  try {
    body(0);
  } catch (...) {
    errors[0] = std::current_exception();
  }
  for (auto& t : pool) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void note_sweep(const SweepStats& stats) {
  // Handles resolved once: the registry lookup (mutex + map) runs on the
  // first sweep only, later sweeps are a handful of relaxed fetch_adds.
  auto& reg = obs::MetricsRegistry::global();
  static obs::Counter* const c_runs = reg.counter("sweep.runs");
  static obs::Counter* const c_starts = reg.counter("sweep.starts");
  static obs::Counter* const c_queries = reg.counter("sweep.total_queries");
  static obs::Counter* const c_volume = reg.counter("sweep.total_volume");
  static obs::Counter* const c_truncated = reg.counter("sweep.truncated");
  static obs::Counter* const c_cache_hits = reg.counter("sweep.cache.hits");
  static obs::Counter* const c_cache_misses = reg.counter("sweep.cache.misses");
  static obs::Histogram* const h_max_volume = reg.histogram("sweep.max_volume");
  c_runs->inc();
  c_starts->inc(stats.starts);
  c_queries->inc(stats.total_queries);
  c_volume->inc(stats.total_volume);
  c_truncated->inc(stats.truncated);
  c_cache_hits->inc(stats.cache.hits);
  c_cache_misses->inc(stats.cache.misses);
  h_max_volume->add(stats.max_volume);
}

}  // namespace volcal::detail
