#include "runtime/parallel_runner.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "util/env.hpp"

namespace volcal::detail {

int resolve_thread_count(int requested) {
  if (requested > 0) return std::min(requested, 256);
  // Strict parse: `VOLCAL_THREADS=eight` used to run serial without a word.
  if (const auto parsed = env::positive_int("VOLCAL_THREADS", 256, "1 thread")) {
    return static_cast<int>(*parsed);
  }
  return 1;
}

std::int64_t sweep_chunk(std::int64_t items, int workers) {
  if (workers <= 1) return std::max<std::int64_t>(items, 1);
  // Aim for ~8 chunks per worker so a slow chunk cannot strand the pool,
  // capped so the atomic counter stays cold relative to the work per chunk.
  const std::int64_t target = items / (static_cast<std::int64_t>(workers) * 8);
  return std::clamp<std::int64_t>(target, 1, 1024);
}

void run_on_workers(int workers, const std::function<void(int)>& body) {
  if (workers <= 1) {
    body(0);
    return;
  }
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(workers));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers) - 1);
  for (int w = 1; w < workers; ++w) {
    pool.emplace_back([&body, &errors, w] {
      try {
        body(w);
      } catch (...) {
        errors[static_cast<std::size_t>(w)] = std::current_exception();
      }
    });
  }
  try {
    body(0);
  } catch (...) {
    errors[0] = std::current_exception();
  }
  for (auto& t : pool) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace volcal::detail
