#include "runtime/execution.hpp"

#include <deque>
#include <unordered_set>

namespace volcal {

std::vector<NodeIndex> explore_ball(Execution& exec, std::int64_t radius) {
  std::vector<NodeIndex> order{exec.start()};
  std::deque<std::pair<NodeIndex, std::int64_t>> frontier{{exec.start(), 0}};
  std::unordered_set<NodeIndex> seen{exec.start()};
  while (!frontier.empty()) {
    auto [v, d] = frontier.front();
    frontier.pop_front();
    if (d == radius) continue;
    const int deg = exec.degree(v);
    for (Port p = 1; p <= deg; ++p) {
      const NodeIndex u = exec.query(v, p);
      if (seen.insert(u).second) {
        order.push_back(u);
        frontier.emplace_back(u, d + 1);
      }
    }
  }
  return order;
}

}  // namespace volcal
