// ViewCache — sweep-scoped memoization of radius-r ball constructions.
//
// Every upper-bound algorithm in the paper probes balls (Defs. 2.1-2.2), and
// a whole-graph sweep re-derives the same BFS ball at every start that
// revisits a center: Θ(n·Δ^r) redundant pointer-chasing for a ball(r) family.
// The cache stores, per center node, the *canonical BFS expansion* of the
// ball — discovery order plus per-depth windows and query counts — and
// serves any radius as an exact prefix of that expansion.
//
// Exactness contract (the reason results stay bit-identical under any
// policy, thread count, or eviction schedule):
//   * explore_ball's level-synchronous BFS from a fixed center on a fixed
//     graph is deterministic, and exploring to radius r is an exact prefix
//     (same discovery order, same query outcomes) of exploring to any
//     R >= r.  A cached entry of depth R therefore serves radius r <= R by
//     prefix replay, and radius r > R by replaying the stored prefix and
//     resuming the real BFS from the cached frontier — both produce the
//     state the direct path would have produced, query for query.
//   * Cost accounting is untouched: serving a prefix advances the volume,
//     distance and query-count meters by exactly the amounts the replayed
//     queries would have contributed.  The cache amortizes wall time, never
//     the model's costs (asserted per-sweep by bench_runner and fuzzed by
//     tools/volcal_fuzz --cache).
//   * Ineligible executions bypass the cache entirely: budget-limited runs
//     (the truncating query must fire at the identical point), non-fresh
//     executions (prior queries change freshness), and recording sinks
//     (traces must contain every query) always take the direct path.
//
// Concurrency: the table is sharded by mix64(center); lookups take a shard
// shared_mutex in shared mode (the hit path never takes an exclusive lock —
// LRU ticks are relaxed atomics), inserts/evictions take it exclusive.
// The hit/miss/eviction meters are obs::Counter (per-thread sharded), so
// concurrent hits on different worker threads never contend on one counter
// cache line; stats() sums the shards.
// Memory is bounded by a byte budget split across shards with
// LRU-by-shard eviction, so n = 2^20 sweeps cannot blow RSS.  Invalidation
// is O(1): an epoch bump, with shards lazily cleared on next touch.
// Hot-swap safety: epochs alone cannot order a store against a concurrent
// re-bind (a worker whose binding went stale before it captured the epoch
// would park old-graph balls at the post-swap epoch), so every entry also
// carries the StorageToken its ball was computed against — store() rejects
// a token that no longer matches the binding, and lookups only serve
// entries whose token equals the queried view's.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <iterator>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "obs/registry.hpp"
#include "runtime/sweep_stats.hpp"
#include "util/hash.hpp"

namespace volcal {

// Cache knob for a runner / sweep.  The environment form is what the bench
// flag `--cache <off|perstart|shared>` exports:
//   VOLCAL_CACHE    = off | perstart | shared   (default off)
//   VOLCAL_CACHE_MB = byte budget in MiB        (default 256)
struct CacheConfig {
  CachePolicy policy = CachePolicy::Off;
  std::size_t byte_budget = std::size_t{256} << 20;

  static CacheConfig from_env();
  static bool policy_from_name(const char* name, CachePolicy* out);
};

// The canonical BFS expansion of a ball, fully expanded to `depth` levels.
//   order[0..level_end[d])   — the ball N_center(d), in discovery order;
//   level_end[d]             — nodes at distance <= d (level_end[0] == 1);
//   cum_queries[d]           — query() calls explore_ball(center, d) makes;
//   exhausted                — the frontier emptied at `depth`: the ball is
//                              its whole component and serves any radius.
struct CachedBall {
  std::vector<NodeIndex> order;
  std::vector<std::int64_t> level_end;
  std::vector<std::int64_t> cum_queries;
  std::int64_t depth = 0;
  bool exhausted = false;

  std::size_t bytes() const {
    return sizeof(CachedBall) + order.capacity() * sizeof(NodeIndex) +
           (level_end.capacity() + cum_queries.capacity()) * sizeof(std::int64_t);
  }

  // Depth of the deepest non-empty level within the first `radius` levels —
  // what the distance meter of a served execution must read.
  std::int64_t max_layer(std::int64_t radius) const {
    for (std::int64_t d = std::min(radius, depth); d >= 1; --d) {
      if (level_end[static_cast<std::size_t>(d)] >
          level_end[static_cast<std::size_t>(d) - 1]) {
        return d;
      }
    }
    return 0;
  }
};

// The three cost meters of one served ball (ViewCache::serve_costs) —
// exactly what a BasicExecution running explore_ball(center, radius) would
// report as volume() / distance() / query_count().
struct BallCosts {
  std::int64_t volume = 0;
  std::int64_t distance = 0;
  std::int64_t queries = 0;
};

namespace detail {

// Expands `ball` in place from its stored depth toward `target` with real
// queries on `exec`.  Precondition: exec holds exactly the ball's prefix
// state (fresh execution + installed prefix, or a fresh execution and an
// empty ball seeded with the start node).  The loop is the level-window BFS
// of explore_ball with per-level bookkeeping recorded.
template <typename Exec>
void extend_cached_ball(Exec& exec, CachedBall& ball, std::int64_t target) {
  while (ball.depth < target && !ball.exhausted) {
    const auto d = static_cast<std::size_t>(ball.depth);
    const auto lb = static_cast<std::size_t>(d == 0 ? 0 : ball.level_end[d - 1]);
    const auto le = static_cast<std::size_t>(ball.level_end[d]);
    if (lb == le) {
      ball.exhausted = true;
      return;
    }
    std::int64_t queries = ball.cum_queries[d];
    for (std::size_t head = lb; head < le; ++head) {
      const NodeIndex v = ball.order[head];
      const int deg = exec.degree(v);
      queries += deg;
      for (Port p = 1; p <= deg; ++p) {
        const std::int64_t before = exec.volume();
        const NodeIndex u = exec.query(v, p);
        if (exec.volume() > before) ball.order.push_back(u);
      }
    }
    ball.level_end.push_back(static_cast<std::int64_t>(ball.order.size()));
    ball.cum_queries.push_back(queries);
    ++ball.depth;
  }
}

}  // namespace detail

class ViewCache {
 public:
  explicit ViewCache(CacheConfig config = {}) : config_(config) {
    shards_ = std::make_unique<Shard[]>(kShards);
    for (std::size_t s = 0; s < kShards; ++s) shards_[s].epoch = 0;
  }

  ViewCache(const ViewCache&) = delete;
  ViewCache& operator=(const ViewCache&) = delete;

  const CacheConfig& config() const { return config_; }

  // Binds the cache to one graph.  Entries are only valid for the bound
  // graph; binding a different one invalidates everything first.  Callers
  // reusing a persistent cache across graphs must re-bind (or invalidate)
  // between them — the engine binds on first explore.  Identity is the
  // view's storage *token* (graph_view.hpp), minted once per build / adopt /
  // snapshot load and never reused in a process — so an owning Graph and a
  // snapshot mapping of the same instance are, correctly, different cache
  // bindings, and a new snapshot mmap'ed at a recycled address can never
  // alias a previous binding (the pointer-ABA case).  Anonymous views
  // (token 0) are uncacheable and leave the binding untouched.
  void bind(GraphView g) {
    const StorageToken id = g.storage_identity();
    if (id == kAnonymousStorage) return;
    const StorageToken cur = bound_.load(std::memory_order_acquire);
    if (cur == id) return;
    if (cur != kAnonymousStorage) invalidate();
    bound_.store(id, std::memory_order_release);
  }

  // O(1) full invalidation: epoch bump; shards clear lazily on next touch.
  // This is the *engine-internal* flush — bind()'s graph-change path and the
  // PerStart policy's per-start scoping.  It is NOT the data-mutation signal:
  // mutations go through graph/mutation.hpp and invalidate_region(), which
  // evicts only the balls a structural delta can actually reach (and migrates
  // the rest to the new storage identity).  The old public spelling,
  // invalidate_all(), is a deprecated shim below (DESIGN.md ledger).
  void invalidate() {
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

  [[deprecated(
      "full flush is not the mutation signal anymore: apply deltas via "
      "MutationBatch (graph/mutation.hpp) and call invalidate_region(); "
      "see the DESIGN.md deprecation ledger")]]
  void invalidate_all() {
    invalidate();
  }

  // Outcome of one invalidate_region sweep (entry counts across all shards).
  struct RegionInvalidation {
    std::size_t evicted = 0;
    std::size_t retained = 0;
    bool fell_back_to_flush = false;  // preconditions unmet: full flush instead
  };

  // Scoped invalidation for a structural mutation, replacing the global epoch
  // bump.  `old_view` is the pre-mutation graph this cache is bound to;
  // `touched` are the mutation's structural endpoints (AppliedMutation::
  // touched); `new_token` is the post-mutation storage identity.  A cached
  // ball of depth d centered at c is *certified unchanged* when no touched
  // node lies within old-graph distance d of c:
  //
  //   Every adjacency list the canonical BFS replay of that ball reads
  //   belongs to a node at distance < d, and by induction on path length any
  //   new-graph path from c into the touched set must first enter the touched
  //   set over edges that exist unchanged in the old graph — so
  //   dist_old(c, touched) > d implies dist_new(c, touched) > d and
  //   ball_new(c, e) == ball_old(c, e) query-for-query at every e <= d.
  //   Exhausted entries are covered too: the ball is its whole component, so
  //   a touched node anywhere in the component sits at dist <= d and evicts.
  //
  // Distances come from one multi-source BFS from `touched`, bounded at
  // max_radius levels; entries deeper than max_radius cannot be certified
  // inside that horizon and are evicted outright (callers pass the deepest
  // radius their workload caches — the serve path uses its plan's radius).
  //
  // Surviving entries are re-stamped to `new_token` and the binding moves to
  // `new_token` with NO epoch bump — they go on serving the new graph, which
  // is the whole point.  The binding is moved *before* the shard sweep, so a
  // racing store of an old-graph ball is rejected by store()'s binding check
  // and a racing lookup through the old view misses on the per-entry token;
  // neither can slip a stale ball past the sweep.  (The serve path
  // additionally serializes this against worker re-binds under its target
  // lock; see QueryService::apply_mutations.)
  //
  // Preconditions: the cache is bound to old_view's token and both tokens are
  // real.  Otherwise nothing is certifiable and the call degrades to the full
  // flush (fell_back_to_flush in the result), binding to `new_token`.
  RegionInvalidation invalidate_region(GraphView old_view,
                                       std::span<const NodeIndex> touched,
                                       std::int64_t max_radius, StorageToken new_token) {
    RegionInvalidation out;
    const StorageToken old_token = old_view.storage_identity();
    if (old_token == kAnonymousStorage || new_token == kAnonymousStorage ||
        bound_.load(std::memory_order_acquire) != old_token || max_radius < 0) {
      invalidate();
      bound_.store(new_token, std::memory_order_release);
      out.fell_back_to_flush = true;
      return out;
    }
    bound_.store(new_token, std::memory_order_release);

    // dist[v] = old-graph distance from the touched set, -1 beyond the
    // max_radius horizon (or unreachable).
    const NodeIndex n = old_view.node_count();
    std::vector<std::int32_t> dist(static_cast<std::size_t>(n), -1);
    std::vector<NodeIndex> frontier;
    std::vector<NodeIndex> next;
    for (const NodeIndex v : touched) {
      if (v >= 0 && v < n && dist[static_cast<std::size_t>(v)] < 0) {
        dist[static_cast<std::size_t>(v)] = 0;
        frontier.push_back(v);
      }
    }
    for (std::int32_t d = 0; d < max_radius && !frontier.empty(); ++d) {
      for (const NodeIndex v : frontier) {
        for (const NodeIndex u : old_view.neighbors(v)) {
          auto& du = dist[static_cast<std::size_t>(u)];
          if (du < 0) {
            du = d + 1;
            next.push_back(u);
          }
        }
      }
      frontier.swap(next);
      next.clear();
    }

    const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
    for (std::size_t s = 0; s < kShards; ++s) {
      Shard& shard = shards_[s];
      std::unique_lock lock(shard.mu);
      reconcile_epoch_locked(shard, epoch);
      for (auto it = shard.map.begin(); it != shard.map.end();) {
        Entry& entry = *it->second;
        if (entry.token == new_token) {  // already a new-graph ball
          ++out.retained;
          ++it;
          continue;
        }
        const NodeIndex center = it->first;
        const std::int64_t d =
            (center >= 0 && center < n)
                ? static_cast<std::int64_t>(dist[static_cast<std::size_t>(center)])
                : 0;
        const bool certified = entry.token == old_token &&
                               entry.ball.depth <= max_radius &&
                               (d < 0 || d > entry.ball.depth);
        if (certified) {
          entry.token = new_token;
          ++out.retained;
          ++it;
        } else {
          shard.bytes -= entry.ball.bytes();
          it = shard.map.erase(it);
          evictions_.inc();
          ++out.evicted;
        }
      }
    }
    return out;
  }

  CacheStats stats() const {
    CacheStats s;
    s.policy = config_.policy;
    s.hits = hits_.value();
    s.misses = misses_.value();
    s.evictions = evictions_.value();
    s.served_nodes = served_nodes_.value();
    s.inserted_bytes = inserted_bytes_.value();
    return s;
  }

  // Entry count across shards (test / introspection helper; takes locks).
  std::size_t entry_count() const {
    std::size_t n = 0;
    for (std::size_t s = 0; s < kShards; ++s) {
      std::shared_lock lock(shards_[s].mu);
      if (shards_[s].epoch == epoch_.load(std::memory_order_acquire)) {
        n += shards_[s].map.size();
      }
    }
    return n;
  }

  // The cached explore_ball: serves exec's ball from the cache when
  // possible, resumes / builds with real queries otherwise, and stores the
  // result.  Exactness per the header contract; the caller (explore_ball)
  // has already checked the execution is eligible.
  template <typename Exec>
  std::vector<NodeIndex> explore(Exec& exec, std::int64_t radius) {
    const StorageToken id = exec.graph().storage_identity();
    StorageToken cur = bound_.load(std::memory_order_acquire);
    if (cur == kAnonymousStorage && id != kAnonymousStorage) {
      bind(exec.graph());
      cur = bound_.load(std::memory_order_acquire);
    }
    if (id == kAnonymousStorage || cur != id || radius < 0) {
      // Anonymous storage (no token to key on) or an unknown graph (caller
      // forgot to re-bind a persistent cache): stay exact by ignoring the
      // cache for this execution.
      CachedBall ball = seed(exec.start());
      detail::extend_cached_ball(exec, ball, radius);
      return std::move(ball.order);
    }

    const NodeIndex center = exec.start();
    Shard& shard = shard_of(center);
    const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);

    CachedBall work;
    bool resumed = false;
    bool stale = false;
    {
      std::shared_lock lock(shard.mu);
      if (shard.epoch != epoch) {
        stale = true;  // reconcile below, outside the shared lock
      } else {
        auto it = shard.map.find(center);
        // entry.token == id closes the hot-swap race window: between this
        // worker's binding check above and this lookup, a concurrent bind()
        // can have re-bound the cache and let another worker repopulate the
        // shard with balls for a *different* graph at the epoch we captured.
        // The entry's own token records which graph its ball was computed
        // on; a mismatch is a miss, never a served ball.
        if (it != shard.map.end() && it->second->token == id) {
          Entry& entry = *it->second;
          entry.last_used.store(tick(), std::memory_order_relaxed);
          const CachedBall& ball = entry.ball;
          if (ball.depth >= radius || ball.exhausted) {
            // Full service under the shared lock: install the prefix into
            // the execution's meters and return the served order.
            const std::int64_t d = std::min(radius, ball.depth);
            const auto count = static_cast<std::size_t>(
                ball.level_end[static_cast<std::size_t>(d)]);
            exec.install_ball_prefix(ball.order.data(), ball.level_end.data(), d,
                                     ball.cum_queries[static_cast<std::size_t>(d)]);
            hits_.inc();
            served_nodes_.inc(static_cast<std::int64_t>(count));
            return {ball.order.begin(),
                    ball.order.begin() + static_cast<std::ptrdiff_t>(count)};
          }
          // Partial hit: install the whole stored prefix, copy it out, and
          // resume the real BFS outside the lock.
          exec.install_ball_prefix(ball.order.data(), ball.level_end.data(), ball.depth,
                                   ball.cum_queries[static_cast<std::size_t>(ball.depth)]);
          work = ball;
          resumed = true;
          hits_.inc();
          served_nodes_.inc(static_cast<std::int64_t>(work.order.size()));
        }
      }
    }
    if (stale) reconcile_epoch(shard, epoch);
    if (!resumed) {
      misses_.inc();
      work = seed(center);
    }
    detail::extend_cached_ball(exec, work, radius);
    std::vector<NodeIndex> out = work.order;
    store(center, std::move(work), epoch, id);
    return out;
  }

  // Cost-only full-hit service for the batched backend: when the cache holds
  // a full expansion of N_center(radius), writes the exact meters a served
  // execution would report (volume / distance / queries) and counts a hit;
  // otherwise counts a miss and returns false so the caller rebuilds the
  // ball (partial entries are not resumed on this path — the batched
  // executor rebuilds from scratch and store() keeps the deeper result).
  // Caller must have bound the cache to `g` first.
  bool serve_costs(GraphView g, NodeIndex center, std::int64_t radius,
                   BallCosts* out) {
    const StorageToken id = g.storage_identity();
    if (id == kAnonymousStorage ||
        bound_.load(std::memory_order_acquire) != id || radius < 0) {
      return false;
    }
    Shard& shard = shard_of(center);
    const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
    {
      std::shared_lock lock(shard.mu);
      if (shard.epoch == epoch) {
        auto it = shard.map.find(center);
        // Same token guard as explore(): an entry stored for a different
        // graph during a racing hot swap must read as a miss, not a hit.
        if (it != shard.map.end() && it->second->token == id) {
          Entry& entry = *it->second;
          const CachedBall& ball = entry.ball;
          if (ball.depth >= radius || ball.exhausted) {
            entry.last_used.store(tick(), std::memory_order_relaxed);
            const std::int64_t d = std::min(radius, ball.depth);
            out->volume = ball.level_end[static_cast<std::size_t>(d)];
            out->distance = ball.max_layer(radius);
            out->queries = ball.cum_queries[static_cast<std::size_t>(d)];
            hits_.inc();
            served_nodes_.inc(out->volume);
            return true;
          }
        }
      }
    }
    misses_.inc();
    return false;
  }

  // Inserts (or deepens) the entry for `center`, evicting LRU entries of the
  // shard until the shard byte budget holds.  `token` is the storage identity
  // the ball was computed against; a store whose token no longer matches the
  // current binding is dropped.  The epoch check alone cannot catch a worker
  // whose binding went stale *before* it captured the epoch (it would store
  // old-graph balls at the post-swap epoch); the token check under the shard
  // lock rejects that store, and the per-entry token validated on lookup
  // covers the residual window where bound_ has not yet moved.  Public so
  // tests can exercise eviction and the rejection paths directly.
  void store(NodeIndex center, CachedBall&& ball, std::uint64_t at_epoch,
             StorageToken token) {
    if (token == kAnonymousStorage) return;
    Shard& shard = shard_of(center);
    ball.order.shrink_to_fit();
    ball.level_end.shrink_to_fit();
    ball.cum_queries.shrink_to_fit();
    const std::size_t size = ball.bytes();
    const std::size_t budget = std::max<std::size_t>(config_.byte_budget / kShards, 1);
    std::unique_lock lock(shard.mu);
    if (at_epoch != epoch_.load(std::memory_order_acquire)) return;  // stale build
    if (bound_.load(std::memory_order_acquire) != token) return;     // stale binding
    reconcile_epoch_locked(shard, at_epoch);
    auto it = shard.map.find(center);
    if (it != shard.map.end()) {
      if (it->second->token == token && it->second->ball.depth >= ball.depth) {
        return;  // raced with a deeper store of the same graph's ball
      }
      shard.bytes -= it->second->ball.bytes();
      shard.map.erase(it);
    }
    if (size > budget) {
      // A single ball larger than the shard budget is never cached.
      evictions_.inc();
      return;
    }
    while (shard.bytes + size > budget && !shard.map.empty()) {
      evict_lru_locked(shard);
    }
    auto entry = std::make_unique<Entry>();
    entry->ball = std::move(ball);
    entry->token = token;
    entry->last_used.store(tick(), std::memory_order_relaxed);
    shard.bytes += size;
    inserted_bytes_.inc(static_cast<std::int64_t>(size));
    shard.map.emplace(center, std::move(entry));
  }

  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

 private:
  struct Entry {
    CachedBall ball;
    // Storage identity the ball was computed against — lookups serve an
    // entry only when it matches the queried view's token, so balls parked
    // by a worker racing a hot swap can never answer for the wrong graph.
    StorageToken token = kAnonymousStorage;
    std::atomic<std::uint64_t> last_used{0};
  };

  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<NodeIndex, std::unique_ptr<Entry>> map;
    std::size_t bytes = 0;
    std::uint64_t epoch = 0;
  };

  static constexpr std::size_t kShards = 64;  // power of two

  static CachedBall seed(NodeIndex center) {
    CachedBall ball;
    ball.order.push_back(center);
    ball.level_end.push_back(1);
    ball.cum_queries.push_back(0);
    return ball;
  }

  Shard& shard_of(NodeIndex center) const {
    return shards_[splitmix64(static_cast<std::uint64_t>(center)) & (kShards - 1)];
  }

  std::uint64_t tick() { return tick_.fetch_add(1, std::memory_order_relaxed); }

  // Lazy epoch reconciliation: drop the shard's content if the cache was
  // invalidated since the shard was last touched.
  void reconcile_epoch(Shard& shard, std::uint64_t epoch) {
    {
      std::shared_lock lock(shard.mu);
      if (shard.epoch == epoch) return;
    }
    std::unique_lock lock(shard.mu);
    reconcile_epoch_locked(shard, epoch);
  }

  void reconcile_epoch_locked(Shard& shard, std::uint64_t epoch) {
    if (shard.epoch == epoch) return;
    shard.map.clear();
    shard.bytes = 0;
    shard.epoch = epoch;
  }

  void evict_lru_locked(Shard& shard) {
    auto victim = shard.map.begin();
    std::uint64_t oldest = victim->second->last_used.load(std::memory_order_relaxed);
    for (auto it = std::next(shard.map.begin()); it != shard.map.end(); ++it) {
      const std::uint64_t used = it->second->last_used.load(std::memory_order_relaxed);
      if (used < oldest) {
        oldest = used;
        victim = it;
      }
    }
    shard.bytes -= victim->second->ball.bytes();
    shard.map.erase(victim);
    evictions_.inc();
  }

  CacheConfig config_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<StorageToken> bound_{kAnonymousStorage};
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<std::uint64_t> tick_{1};
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter evictions_;
  obs::Counter served_nodes_;
  obs::Counter inserted_bytes_;
};

}  // namespace volcal
