#include "runtime/congest.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace volcal {

int CongestSim::run(const StepFn& step, const DoneFn& done, int max_rounds) {
  const Graph& g = *g_;
  const NodeIndex n = g.node_count();
  std::vector<PortMessages> inbox(n);
  for (NodeIndex v = 0; v < n; ++v) inbox[v].resize(g.degree(v));
  for (int round = 1; round <= max_rounds; ++round) {
    std::vector<PortMessages> next(n);
    for (NodeIndex v = 0; v < n; ++v) next[v].resize(g.degree(v));
    for (NodeIndex v = 0; v < n; ++v) {
      PortMessages out = step(v, round, inbox[v]);
      if (static_cast<int>(out.size()) > g.degree(v)) {
        throw std::logic_error("CongestSim: outbox larger than degree");
      }
      for (std::size_t pi = 0; pi < out.size(); ++pi) {
        if (out[pi].empty()) continue;
        const auto bits = static_cast<std::int64_t>(out[pi].size());
        if (bits > bandwidth_) {
          throw std::logic_error("CongestSim: message of " + std::to_string(bits) +
                                 " bits exceeds bandwidth " + std::to_string(bandwidth_));
        }
        total_bits_ += bits;
        max_message_bits_ = std::max(max_message_bits_, bits);
        const NodeIndex w = g.neighbor(v, static_cast<Port>(pi + 1));
        const Port back = g.port_to(w, v);
        next[w][back - 1] = std::move(out[pi]);
      }
    }
    inbox = std::move(next);
    if (done()) return round;
  }
  return max_rounds;
}

}  // namespace volcal
