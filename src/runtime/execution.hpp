// The query model of computing (paper Section 2.2) with exact cost
// accounting per Definitions 2.1 (distance cost) and 2.2 (volume cost).
//
// An Execution represents one run of an algorithm initiated at a node v.  The
// algorithm maintains a visited set V_v = {v}; each step queries
// query(w, j) for a previously visited w and a port j in [deg(w)], learning
// the neighbor's identity, degree, and entire input (which the algorithm
// reads through the instance labels after the node is visited).
//
// Cost accounting:
//   * volume() = |V_v| — exactly Def. 2.2;
//   * distance() = max over visited w of the node's BFS layer within the
//     *explored* subgraph.  On forests this equals the true graph distance
//     dist(v, w) of Def. 2.1 (paths are unique); on pseudo-forests it can
//     overestimate by at most the single cycle per component.  All instances
//     in this library are (pseudo-)forests plus lateral edges explored along
//     shortest routes, so bench numbers match Def. 2.1.  The discrepancy is
//     documented in DESIGN.md and pinned by the layer-tightening tests in
//     tests/runtime_test.cpp.
//
// Storage: visited/layer state lives in an ExecutionScratch — a pair of flat
// arrays sized to n plus an epoch stamp.  Starting a new execution is O(1)
// (bump the epoch); whole-graph sweeps reuse one scratch per worker thread
// and therefore perform zero allocations per start node.  The historical
// std::unordered_map implementation is preserved verbatim as the test-only
// differential reference in runtime/reference_execution.hpp.
//
// Observability: BasicExecution is parameterized on a compile-time sink
// policy.  The default NullQuerySink declares `enabled = false`, and every
// sink call is guarded by `if constexpr (Sink::enabled)`, so the disabled
// path compiles to exactly the pre-observability code — no branch, no
// pointer, no argument evaluation.  The recording sink (obs/trace.hpp)
// captures per-query events for the trace exporters and the replay oracle.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "graph/graph.hpp"
#include "labels/ids.hpp"
#include "runtime/view_cache.hpp"

namespace volcal {

struct QueryBudgetExceeded : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Reusable visited-set / BFS-layer bookkeeping for Execution.  One scratch
// serves any number of *consecutive* executions (each constructor call bumps
// the epoch, invalidating the previous execution's stamps in O(1)); it must
// not be shared by two live executions at once, nor by two threads.  The
// parallel sweep engine keeps one scratch per worker.
class ExecutionScratch {
 public:
  ExecutionScratch() = default;
  explicit ExecutionScratch(NodeIndex capacity) { reserve(capacity); }

  // Ensures capacity for graphs of up to n nodes (grow-only).
  void reserve(NodeIndex n) {
    if (static_cast<NodeIndex>(stamp_.size()) < n) {
      stamp_.resize(static_cast<std::size_t>(n), 0);
      layer_.resize(static_cast<std::size_t>(n), 0);
    }
  }

  NodeIndex capacity() const { return static_cast<NodeIndex>(stamp_.size()); }

  // Test hook for the wrap-around guard below: places the epoch counter at
  // an arbitrary point so the regression test can drive it over the edge
  // without 2^64 executions.
  void set_epoch_for_testing(std::uint64_t epoch) { epoch_ = epoch; }
  std::uint64_t epoch_for_testing() const { return epoch_; }

 private:
  // Start a fresh execution on a graph of n nodes: O(1) apart from first-use
  // (or growth) allocation and the O(previous volume) order_.clear(), which
  // releases no memory.
  void begin(NodeIndex n) {
    reserve(n);
    order_.clear();
    if (epoch_ == std::numeric_limits<std::uint64_t>::max()) {
      // Wrap-around guard: incrementing past 2^64-1 would land the epoch
      // back on values old stamps still hold, resurrecting nodes visited by
      // long-dead executions.  Unreachable by counting alone, but cheap to
      // rule out: re-zero the stamps and restart the epoch stream.
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 0;
    }
    ++epoch_;
  }

  bool stamped(NodeIndex v) const { return stamp_[static_cast<std::size_t>(v)] == epoch_; }

  std::vector<std::uint64_t> stamp_;  // epoch at which the slot was last visited
  std::vector<std::int64_t> layer_;   // BFS layer within the explored subgraph
  std::vector<NodeIndex> order_;      // visited nodes in discovery order
  std::uint64_t epoch_ = 0;           // 0 = no execution has used a slot yet

  template <typename Sink>
  friend class BasicExecution;
};

// Disabled-observability sink: `enabled = false` compiles every hook call
// out of BasicExecution (the hooks below are never instantiated).  Custom
// sinks must provide the same member functions with `enabled = true`; see
// obs/trace.hpp for the recording sink.
struct NullQuerySink {
  static constexpr bool enabled = false;

  void on_begin(GraphView, const IdAssignment&, NodeIndex /*start*/) {}
  void on_query(GraphView, const IdAssignment&, NodeIndex /*w*/, Port /*j*/,
                NodeIndex /*u*/, bool /*fresh*/, std::int64_t /*layer*/,
                std::int64_t /*volume*/) {}
  void on_truncated(NodeIndex /*w*/, Port /*j*/) {}
  void on_end(std::int64_t /*volume*/, std::int64_t /*distance*/,
              std::int64_t /*queries*/) {}
};

template <typename Sink = NullQuerySink>
class BasicExecution {
 public:
  // budget: hard cap on volume; exceeding it throws QueryBudgetExceeded
  // (used to truncate randomized algorithms per Remark 3.11 and to run
  // adversaries against budget-limited algorithms).  budget <= 0 = unlimited.
  //
  // The three-argument form owns a private scratch (one allocation); the
  // scratch-taking form borrows the caller's, making repeated executions
  // allocation-free.  Sinks are taken by value (recording sinks are thin
  // handles onto an externally owned trace buffer).
  BasicExecution(GraphView g, const IdAssignment& ids, NodeIndex start,
                 std::int64_t budget = 0, Sink sink = Sink{})
      : BasicExecution(g, ids, start, budget, nullptr, std::move(sink)) {}

  BasicExecution(GraphView g, const IdAssignment& ids, NodeIndex start,
                 std::int64_t budget, ExecutionScratch& scratch, Sink sink = Sink{})
      : BasicExecution(g, ids, start, budget, &scratch, std::move(sink)) {}

  ~BasicExecution() {
    if constexpr (Sink::enabled) {
      sink_.on_end(volume(), distance(), query_count());
    }
  }

  BasicExecution(const BasicExecution&) = delete;
  BasicExecution& operator=(const BasicExecution&) = delete;

  NodeIndex start() const { return start_; }
  GraphView graph() const { return g_; }

  bool visited(NodeIndex v) const { return g_.valid_node(v) && scratch_->stamped(v); }

  // Degree of a visited node is part of what its discovery revealed.
  int degree(NodeIndex v) const {
    require_visited(v);
    return g_.degree(v);
  }
  NodeId id(NodeIndex v) const {
    require_visited(v);
    return ids_->id_of(v);
  }

  // The query step.  Returns the discovered neighbor (which may already be
  // visited — re-discovery is free volume-wise).
  NodeIndex query(NodeIndex w, Port j) {
    require_visited(w);
    ++query_count_;
    const NodeIndex u = g_.neighbor_prevalidated(w, j);
    const std::int64_t candidate = scratch_->layer_[static_cast<std::size_t>(w)] + 1;
    const bool fresh = !scratch_->stamped(u);
    if (fresh) {
      if (budget_ > 0 && volume() + 1 > budget_) {
        if constexpr (Sink::enabled) sink_.on_truncated(w, j);
        throw QueryBudgetExceeded("query budget exceeded at node " + std::to_string(w));
      }
      scratch_->stamp_[static_cast<std::size_t>(u)] = scratch_->epoch_;
      scratch_->layer_[static_cast<std::size_t>(u)] = candidate;
      scratch_->order_.push_back(u);
      max_layer_ = std::max(max_layer_, candidate);
    } else if (candidate < scratch_->layer_[static_cast<std::size_t>(u)]) {
      scratch_->layer_[static_cast<std::size_t>(u)] = candidate;  // tighter layer seen later; no propagation
    }
    if constexpr (Sink::enabled) {
      sink_.on_query(g_, *ids_, w, j, u, fresh,
                     scratch_->layer_[static_cast<std::size_t>(u)], volume());
    }
    return u;
  }

  // Guard for label reads: algorithms must only read inputs of visited nodes.
  void require_visited(NodeIndex v) const {
    if (!visited(v)) {
      throw std::logic_error("Execution: access to unvisited node " + std::to_string(v));
    }
  }

  std::int64_t volume() const { return static_cast<std::int64_t>(scratch_->order_.size()); }
  std::int64_t distance() const { return max_layer_; }
  std::int64_t query_count() const { return query_count_; }
  std::int64_t budget() const { return budget_; }

  // BFS layer of a visited node within the explored subgraph (what
  // distance() takes the max of).  Used by the trace replay oracle.
  std::int64_t layer_of(NodeIndex v) const {
    require_visited(v);
    return scratch_->layer_[static_cast<std::size_t>(v)];
  }

  // Visited nodes in discovery order (the start node first).
  std::vector<NodeIndex> visited_nodes() const { return scratch_->order_; }

  // Attaches a ViewCache for explore_ball memoization (runtime/view_cache.hpp).
  // No-op for recording sinks: a trace must contain every query, so traced
  // executions always take the direct path — which also makes traces
  // trivially bit-identical across cache policies.
  void attach_view_cache(ViewCache* cache) {
    if constexpr (!Sink::enabled) cache_ = cache;
  }

  // The attached cache, iff this execution may be served from it without
  // changing any observable result: never for recording sinks (see above),
  // never under a query budget (the truncating query must fire at the
  // identical point, so budgeted runs go direct), and only while the
  // execution is fresh (prior queries change which discoveries are fresh).
  ViewCache* ball_cache_if_eligible() const {
    if constexpr (Sink::enabled) {
      return nullptr;
    } else {
      if (cache_ == nullptr || budget_ > 0) return nullptr;
      if (volume() != 1 || query_count_ != 0) return nullptr;
      return cache_;
    }
  }

 private:
  friend class ViewCache;

  // Cache service: installs a cached BFS prefix — levels 1..depth of `order`,
  // delimited by `level_end` — as if the `queries` replayed queries had been
  // performed.  The cost meters advance exactly as the direct exploration
  // would have advanced them; the cache amortizes wall time only.
  void install_ball_prefix(const NodeIndex* order, const std::int64_t* level_end,
                           std::int64_t depth, std::int64_t queries) {
    const auto count = static_cast<std::size_t>(level_end[depth]);
    scratch_->order_.insert(scratch_->order_.end(), order + 1, order + count);
    for (std::int64_t d = depth; d >= 1; --d) {
      if (level_end[d] > level_end[d - 1]) {
        max_layer_ = std::max(max_layer_, d);
        break;
      }
    }
    const std::uint64_t epoch = scratch_->epoch_;
    for (std::int64_t d = 1; d <= depth; ++d) {
      const auto lb = static_cast<std::size_t>(level_end[d - 1]);
      const auto le = static_cast<std::size_t>(level_end[d]);
      for (std::size_t i = lb; i < le; ++i) {
        const auto u = static_cast<std::size_t>(order[i]);
        scratch_->stamp_[u] = epoch;
        scratch_->layer_[u] = d;
      }
    }
    query_count_ += queries;
  }

  BasicExecution(GraphView g, const IdAssignment& ids, NodeIndex start,
                 std::int64_t budget, ExecutionScratch* scratch, Sink sink)
      : g_(g),
        ids_(&ids),
        start_(start),
        budget_(budget),
        scratch_(scratch),
        sink_(std::move(sink)) {
    if (!g.valid_node(start)) throw std::out_of_range("Execution: bad start node");
    if (scratch_ == nullptr) {
      owned_ = std::make_unique<ExecutionScratch>(g.node_count());
      scratch_ = owned_.get();
    }
    scratch_->begin(g.node_count());
    scratch_->stamp_[static_cast<std::size_t>(start)] = scratch_->epoch_;
    scratch_->layer_[static_cast<std::size_t>(start)] = 0;
    scratch_->order_.push_back(start);
    if constexpr (Sink::enabled) sink_.on_begin(g, ids, start);
  }

  GraphView g_;
  const IdAssignment* ids_;
  NodeIndex start_;
  std::int64_t budget_;
  std::unique_ptr<ExecutionScratch> owned_;
  ExecutionScratch* scratch_;
  std::int64_t max_layer_ = 0;
  std::int64_t query_count_ = 0;
  ViewCache* cache_ = nullptr;
  [[no_unique_address]] Sink sink_;
};

// The default, observability-free execution — the type every solver and test
// in the library is written against.  Identical layout and codegen to the
// pre-sink Execution: NullQuerySink is empty ([[no_unique_address]]) and all
// hook calls are compiled out.
using Execution = BasicExecution<NullQuerySink>;

// Convenience: explore the full ball N_v(r) through the query interface (the
// LOCAL-model simulation of Remark 2.3: a distance-T algorithm is one whose
// execution stays within N_v(T)).  Returns nodes in BFS order.
//
// Generic over the execution type so the test-only map-based reference runs
// the same exploration; freshness of a discovered node is detected through
// the volume meter, so no per-call visited set is allocated.
//
// When the execution carries an eligible ViewCache (attach_view_cache), the
// ball is served from / recorded into the cache — bit-identical order and
// costs, amortized wall time.  See runtime/view_cache.hpp for the exactness
// contract.
template <typename Exec>
std::vector<NodeIndex> explore_ball(Exec& exec, std::int64_t radius) {
  if constexpr (requires { exec.ball_cache_if_eligible(); }) {
    if (ViewCache* cache = exec.ball_cache_if_eligible(); cache != nullptr) {
      return cache->explore(exec, radius);
    }
  }
  std::vector<NodeIndex> order{exec.start()};
  // Level windows [level_begin, level_end) track the current BFS depth, so no
  // per-node depth bookkeeping (or its allocations) is needed; the query
  // sequence is identical to per-node-depth BFS.
  std::size_t level_begin = 0, level_end = 1;
  for (std::int64_t d = 0; d < radius && level_begin < level_end; ++d) {
    for (std::size_t head = level_begin; head < level_end; ++head) {
      const NodeIndex v = order[head];
      const int deg = exec.degree(v);
      for (Port p = 1; p <= deg; ++p) {
        const std::int64_t before = exec.volume();
        const NodeIndex u = exec.query(v, p);
        if (exec.volume() > before) order.push_back(u);  // u was fresh
      }
    }
    level_begin = level_end;
    level_end = order.size();
  }
  return order;
}

}  // namespace volcal
