// The query model of computing (paper Section 2.2) with exact cost
// accounting per Definitions 2.1 (distance cost) and 2.2 (volume cost).
//
// An Execution represents one run of an algorithm initiated at a node v.  The
// algorithm maintains a visited set V_v = {v}; each step queries
// query(w, j) for a previously visited w and a port j in [deg(w)], learning
// the neighbor's identity, degree, and entire input (which the algorithm
// reads through the instance labels after the node is visited).
//
// Cost accounting:
//   * volume() = |V_v| — exactly Def. 2.2;
//   * distance() = max over visited w of the node's BFS layer within the
//     *explored* subgraph.  On forests this equals the true graph distance
//     dist(v, w) of Def. 2.1 (paths are unique); on pseudo-forests it can
//     overestimate by at most the single cycle per component.  All instances
//     in this library are (pseudo-)forests plus lateral edges explored along
//     shortest routes, so bench numbers match Def. 2.1.  The discrepancy is
//     documented in DESIGN.md.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "labels/ids.hpp"

namespace volcal {

struct QueryBudgetExceeded : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Execution {
 public:
  // budget: hard cap on volume; exceeding it throws QueryBudgetExceeded
  // (used to truncate randomized algorithms per Remark 3.11 and to run
  // adversaries against budget-limited algorithms).  budget <= 0 = unlimited.
  Execution(const Graph& g, const IdAssignment& ids, NodeIndex start,
            std::int64_t budget = 0)
      : g_(&g), ids_(&ids), start_(start), budget_(budget) {
    if (!g.valid_node(start)) throw std::out_of_range("Execution: bad start node");
    layer_[start] = 0;
  }

  NodeIndex start() const { return start_; }
  const Graph& graph() const { return *g_; }

  bool visited(NodeIndex v) const { return layer_.contains(v); }

  // Degree of a visited node is part of what its discovery revealed.
  int degree(NodeIndex v) const {
    require_visited(v);
    return g_->degree(v);
  }
  NodeId id(NodeIndex v) const {
    require_visited(v);
    return ids_->id_of(v);
  }

  // The query step.  Returns the discovered neighbor (which may already be
  // visited — re-discovery is free volume-wise).
  NodeIndex query(NodeIndex w, Port j) {
    require_visited(w);
    ++query_count_;
    const NodeIndex u = g_->neighbor(w, j);
    auto it = layer_.find(u);
    const std::int64_t candidate = layer_.at(w) + 1;
    if (it == layer_.end()) {
      if (budget_ > 0 && volume() + 1 > budget_) {
        throw QueryBudgetExceeded("query budget exceeded at node " + std::to_string(w));
      }
      layer_.emplace(u, candidate);
      max_layer_ = std::max(max_layer_, candidate);
    } else if (candidate < it->second) {
      it->second = candidate;  // tighter layer seen later; no propagation
    }
    return u;
  }

  // Guard for label reads: algorithms must only read inputs of visited nodes.
  void require_visited(NodeIndex v) const {
    if (!visited(v)) {
      throw std::logic_error("Execution: access to unvisited node " + std::to_string(v));
    }
  }

  std::int64_t volume() const { return static_cast<std::int64_t>(layer_.size()); }
  std::int64_t distance() const { return max_layer_; }
  std::int64_t query_count() const { return query_count_; }
  std::int64_t budget() const { return budget_; }

  std::vector<NodeIndex> visited_nodes() const {
    std::vector<NodeIndex> out;
    out.reserve(layer_.size());
    for (const auto& [v, d] : layer_) out.push_back(v);
    return out;
  }

 private:
  const Graph* g_;
  const IdAssignment* ids_;
  NodeIndex start_;
  std::int64_t budget_;
  std::unordered_map<NodeIndex, std::int64_t> layer_;
  std::int64_t max_layer_ = 0;
  std::int64_t query_count_ = 0;
};

// Convenience: explore the full ball N_v(r) through the query interface (the
// LOCAL-model simulation of Remark 2.3: a distance-T algorithm is one whose
// execution stays within N_v(T)).  Returns nodes in BFS order.
std::vector<NodeIndex> explore_ball(Execution& exec, std::int64_t radius);

}  // namespace volcal
