// Synchronous CONGEST-model simulator (paper Section 7.3): per round, every
// node may send at most B bits along each incident edge.  Used to reproduce
// Observation 7.4 (BalancedTree solvable in O(log n) CONGEST rounds) and
// Example 7.6 (a problem with O(log n) volume but Ω(n/B) CONGEST rounds).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.hpp"

namespace volcal {

class CongestSim {
 public:
  // A message is a bit string; one slot per port (index p-1), empty = no
  // message on that edge this round.
  using Message = std::vector<std::uint8_t>;        // one 0/1 per element
  using PortMessages = std::vector<Message>;        // indexed by port-1
  // step(v, round, inbox) -> outbox.  inbox[p-1] holds what arrived on port p.
  using StepFn = std::function<PortMessages(NodeIndex, int, const PortMessages&)>;
  // done() is evaluated after each round; simulation stops when it returns
  // true or max_rounds elapse.
  using DoneFn = std::function<bool()>;

  CongestSim(const Graph& g, int bandwidth_bits)
      : g_(&g), bandwidth_(bandwidth_bits) {}

  int bandwidth_bits() const { return bandwidth_; }

  // Runs and returns the number of rounds executed (== max_rounds if done()
  // never fired).  Throws if any message exceeds the bandwidth.
  int run(const StepFn& step, const DoneFn& done, int max_rounds);

  std::int64_t total_bits_sent() const { return total_bits_; }
  std::int64_t max_message_bits() const { return max_message_bits_; }

 private:
  const Graph* g_;
  int bandwidth_;
  std::int64_t total_bits_ = 0;
  std::int64_t max_message_bits_ = 0;
};

}  // namespace volcal
