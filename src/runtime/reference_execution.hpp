// Test-only reference implementation of the query model: the historical
// std::unordered_map-based Execution, preserved verbatim so the flat
// epoch-stamped Execution (runtime/execution.hpp) can be differentially
// tested against it (tests/execution_diff_test.cpp) and benchmarked as the
// serial-map baseline (bench/bench_runner.cpp).
//
// Query/cost semantics are the contract: volume(), distance(),
// query_count(), budget behavior and the layer-tightening rule must match
// Execution exactly.  Do not "fix" one without the other.
#pragma once

#ifndef VOLCAL_ENABLE_REFERENCE_EXECUTION
#error \
    "reference_execution.hpp is a test-only reference implementation; define " \
    "VOLCAL_ENABLE_REFERENCE_EXECUTION (only the differential tests and " \
    "bench_runner do)"
#endif

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "labels/ids.hpp"
#include "runtime/execution.hpp"  // QueryBudgetExceeded

namespace volcal {

class ReferenceMapExecution {
 public:
  ReferenceMapExecution(GraphView g, const IdAssignment& ids, NodeIndex start,
                        std::int64_t budget = 0)
      : g_(g), ids_(&ids), start_(start), budget_(budget) {
    if (!g.valid_node(start)) throw std::out_of_range("Execution: bad start node");
    layer_[start] = 0;
  }

  NodeIndex start() const { return start_; }
  GraphView graph() const { return g_; }

  bool visited(NodeIndex v) const { return layer_.contains(v); }

  int degree(NodeIndex v) const {
    require_visited(v);
    return g_.degree(v);
  }
  NodeId id(NodeIndex v) const {
    require_visited(v);
    return ids_->id_of(v);
  }

  NodeIndex query(NodeIndex w, Port j) {
    require_visited(w);
    ++query_count_;
    const NodeIndex u = g_.neighbor(w, j);
    auto it = layer_.find(u);
    const std::int64_t candidate = layer_.at(w) + 1;
    if (it == layer_.end()) {
      if (budget_ > 0 && volume() + 1 > budget_) {
        throw QueryBudgetExceeded("query budget exceeded at node " + std::to_string(w));
      }
      layer_.emplace(u, candidate);
      max_layer_ = std::max(max_layer_, candidate);
    } else if (candidate < it->second) {
      it->second = candidate;  // tighter layer seen later; no propagation
    }
    return u;
  }

  void require_visited(NodeIndex v) const {
    if (!visited(v)) {
      throw std::logic_error("Execution: access to unvisited node " + std::to_string(v));
    }
  }

  std::int64_t volume() const { return static_cast<std::int64_t>(layer_.size()); }
  std::int64_t distance() const { return max_layer_; }
  std::int64_t query_count() const { return query_count_; }
  std::int64_t budget() const { return budget_; }

  std::vector<NodeIndex> visited_nodes() const {
    std::vector<NodeIndex> out;
    out.reserve(layer_.size());
    for (const auto& [v, d] : layer_) out.push_back(v);
    return out;
  }

 private:
  GraphView g_;
  const IdAssignment* ids_;
  NodeIndex start_;
  std::int64_t budget_;
  std::unordered_map<NodeIndex, std::int64_t> layer_;
  std::int64_t max_layer_ = 0;
  std::int64_t query_count_ = 0;
};

}  // namespace volcal
