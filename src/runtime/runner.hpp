// Whole-graph execution driver.  A "solver" is a callable
// Label(Execution&) producing the initiating node's output; the runner
// executes it once per node (each with a fresh Execution, as the model is
// stateless across nodes) and aggregates the costs of Definitions 2.1-2.2:
//
//   DIST_n(A) = sup over start nodes of the distance cost,
//   VOL_n(A)  = sup over start nodes of the volume cost.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "runtime/execution.hpp"

namespace volcal {

template <typename Label>
struct RunResult {
  std::vector<Label> output;
  std::vector<std::int64_t> volume;    // per start node
  std::vector<std::int64_t> distance;  // per start node
  std::int64_t max_volume = 0;         // VOL_n(A) on this instance
  std::int64_t max_distance = 0;       // DIST_n(A) on this instance
  std::int64_t total_queries = 0;
  // Nodes whose execution blew the query budget (their output is the
  // solver's fallback, or default Label if the solver rethrew).
  std::int64_t truncated = 0;
};

template <typename Solver>
auto run_at_all_nodes(const Graph& g, const IdAssignment& ids, Solver&& solver,
                      std::int64_t budget = 0) {
  using Label = decltype(solver(std::declval<Execution&>()));
  RunResult<Label> result;
  const NodeIndex n = g.node_count();
  result.output.resize(n);
  result.volume.resize(n);
  result.distance.resize(n);
  for (NodeIndex v = 0; v < n; ++v) {
    Execution exec(g, ids, v, budget);
    try {
      result.output[v] = solver(exec);
    } catch (const QueryBudgetExceeded&) {
      ++result.truncated;
      result.output[v] = Label{};  // arbitrary output per Remark 3.11
    }
    result.volume[v] = exec.volume();
    result.distance[v] = exec.distance();
    result.max_volume = std::max(result.max_volume, exec.volume());
    result.max_distance = std::max(result.max_distance, exec.distance());
    result.total_queries += exec.query_count();
  }
  return result;
}

// Lemma 2.5 sanity check on a completed run:
// DIST <= VOL and VOL <= Δ^DIST + 1 (the latter evaluated with overflow
// guard).  Returns true iff both inequalities hold for every node.
template <typename Label>
bool satisfies_lemma_2_5(const Graph& g, const RunResult<Label>& r) {
  const double delta = std::max(2, g.max_degree());
  for (std::size_t i = 0; i < r.volume.size(); ++i) {
    // DIST <= VOL: a connected visited set of m nodes spans distance <= m.
    if (r.distance[i] > r.volume[i]) return false;
    // VOL <= Δ^DIST + 1 (paper's ball bound); guard the power vs. overflow —
    // when Δ^DIST would exceed 2^62 the inequality is vacuously true.
    const double bound_log = static_cast<double>(r.distance[i]) * std::log2(delta);
    if (bound_log < 62.0) {
      const auto bound =
          static_cast<std::int64_t>(std::pow(delta, static_cast<double>(r.distance[i]))) + 1;
      if (r.volume[i] > bound) return false;
    }
  }
  return true;
}

}  // namespace volcal
