// Transitional shim — the whole-graph driver moved into
// runtime/parallel_runner.hpp (free run_at_all_nodes + satisfies_lemma_2_5
// now live beside the engine), and the public include is volcal/runtime.hpp.
// This header forwards there and will be removed one release after the
// volcal/ umbrella landed; see DESIGN.md "API surface and deprecations".
#pragma once

#pragma message( \
    "runtime/runner.hpp is deprecated: include \"volcal/runtime.hpp\" instead")

#include "runtime/parallel_runner.hpp"
