// Whole-graph execution driver.  A "solver" is a callable
// Label(Execution&) producing the initiating node's output; the runner
// executes it once per node (each with a fresh Execution, as the model is
// stateless across nodes) and aggregates the costs of Definitions 2.1-2.2:
//
//   DIST_n(A) = sup over start nodes of the distance cost,
//   VOL_n(A)  = sup over start nodes of the volume cost.
//
// run_at_all_nodes is a thin wrapper over the sweep engine in
// runtime/parallel_runner.hpp: serial (and allocation-free — one scratch
// reused across all starts) by default, parallel when VOLCAL_THREADS is set.
// Output is bit-identical either way; see parallel_runner.hpp.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "runtime/execution.hpp"
#include "runtime/parallel_runner.hpp"

namespace volcal {

// `tape` is optional: pass the solver's RandomTape to route its bit-usage
// accounting through worker-local ledgers (lock-free in parallel sweeps).
template <typename Solver>
auto run_at_all_nodes(const Graph& g, const IdAssignment& ids, Solver&& solver,
                      std::int64_t budget = 0, RandomTape* tape = nullptr) {
  return ParallelRunner().run_at_all_nodes(g, ids, std::forward<Solver>(solver), budget,
                                           tape);
}

// Lemma 2.5 sanity check on a completed run:
// DIST <= VOL and VOL <= Δ^DIST + 1 (the latter evaluated with overflow
// guard).  Returns true iff both inequalities hold for every node.
template <typename Label>
bool satisfies_lemma_2_5(const Graph& g, const RunResult<Label>& r) {
  const double delta = std::max(2, g.max_degree());
  for (std::size_t i = 0; i < r.volume.size(); ++i) {
    // DIST <= VOL: a connected visited set of m nodes spans distance <= m.
    if (r.distance[i] > r.volume[i]) return false;
    // VOL <= Δ^DIST + 1 (paper's ball bound); guard the power vs. overflow —
    // when Δ^DIST would exceed 2^62 the inequality is vacuously true.
    const double bound_log = static_cast<double>(r.distance[i]) * std::log2(delta);
    if (bound_log < 62.0) {
      const auto bound =
          static_cast<std::int64_t>(std::pow(delta, static_cast<double>(r.distance[i]))) + 1;
      if (r.volume[i] > bound) return false;
    }
  }
  return true;
}

}  // namespace volcal
