// SweepStats — the one cost-aggregate for whole-graph (or sampled) sweeps.
//
// Historically the runner's RunResult carried four loose scalars and the
// bench layer kept its own `bench::Cost` copy of the same fields; both now
// share this struct (bench::Cost remains as a deprecated alias for one
// release).  The sup fields are the paper's Definitions 2.1-2.2 evaluated
// over the swept start set:
//
//   max_volume   = VOL_n(A)  restricted to the starts,
//   max_distance = DIST_n(A) restricted to the starts.
//
// Every field except wall_seconds is bit-identical at any thread count (see
// parallel_runner.hpp for the determinism argument); wall_seconds is the
// engine's own measurement of the sweep.
#pragma once

#include <cstdint>

namespace volcal {

struct SweepStats {
  std::int64_t starts = 0;         // executions performed
  std::int64_t max_volume = 0;     // sup volume cost (Def. 2.2)
  std::int64_t max_distance = 0;   // sup distance cost (Def. 2.1)
  std::int64_t total_queries = 0;  // query() calls summed over starts
  std::int64_t total_volume = 0;   // visited nodes summed over starts
  // Executions that blew the query budget (output = solver fallback or
  // default Label, per Remark 3.11).
  std::int64_t truncated = 0;
  double wall_seconds = 0.0;

  // Deterministic fields only — the comparison the engine-equivalence tests
  // and benches use (wall_seconds is intentionally excluded).
  friend bool same_costs(const SweepStats& a, const SweepStats& b) {
    return a.starts == b.starts && a.max_volume == b.max_volume &&
           a.max_distance == b.max_distance && a.total_queries == b.total_queries &&
           a.total_volume == b.total_volume && a.truncated == b.truncated;
  }
};

}  // namespace volcal
