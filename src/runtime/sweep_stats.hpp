// SweepStats — the one cost-aggregate for whole-graph (or sampled) sweeps.
//
// Historically the runner's result carried four loose scalars and the bench
// layer kept its own `bench::Cost` copy of the same fields; both were folded
// into this struct in PR 5 (the deprecated aliases have since been removed).
// The sup fields are the paper's Definitions 2.1-2.2 evaluated over the
// swept start set:
//
//   max_volume   = VOL_n(A)  restricted to the starts,
//   max_distance = DIST_n(A) restricted to the starts.
//
// Every field except wall_seconds is bit-identical at any thread count (see
// parallel_runner.hpp for the determinism argument); wall_seconds is the
// engine's own measurement of the sweep.
#pragma once

#include <cstdint>

#include "plan/probe_plan.hpp"

namespace volcal {

// Ball-view memoization policy for a sweep (runtime/view_cache.hpp).
//   Off      — every explore_ball performs its queries directly (default);
//   PerStart — a cache scoped to one start node: exercises the insert/serve
//              machinery without any sharing (the bisection rung between Off
//              and Shared);
//   Shared   — one cache shared by all starts (and workers) of the sweep:
//              repeated centers are served from memory.
// The policy never changes any deterministic output: served balls replay the
// exact query outcome the direct path would produce, and the cost meters
// (volume / distance / query count, Defs. 2.1-2.2) advance identically.
enum class CachePolicy { Off, PerStart, Shared };

constexpr const char* cache_policy_name(CachePolicy p) {
  switch (p) {
    case CachePolicy::PerStart: return "perstart";
    case CachePolicy::Shared: return "shared";
    default: return "off";
  }
}

// View-cache counters for one sweep.  All of these describe wall-time
// amortization only — they are excluded from same_costs below because
// hit/eviction interleaving under parallel sweeps is scheduling-dependent
// (the *outputs* stay bit-identical; only these bookkeeping counters vary).
struct CacheStats {
  CachePolicy policy = CachePolicy::Off;
  std::int64_t hits = 0;            // lookups served (fully or by prefix)
  std::int64_t misses = 0;          // lookups that built the ball directly
  std::int64_t evictions = 0;       // entries dropped to honor the byte budget
  std::int64_t served_nodes = 0;    // visited-set entries installed from cache
  std::int64_t inserted_bytes = 0;  // bytes of entries stored or upgraded

  CacheStats& operator+=(const CacheStats& o) {
    if (o.policy != CachePolicy::Off) policy = o.policy;
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    served_nodes += o.served_nodes;
    inserted_bytes += o.inserted_bytes;
    return *this;
  }

  // Counter delta (for persistent caches observed across several sweeps).
  friend CacheStats operator-(CacheStats a, const CacheStats& b) {
    a.hits -= b.hits;
    a.misses -= b.misses;
    a.evictions -= b.evictions;
    a.served_nodes -= b.served_nodes;
    a.inserted_bytes -= b.inserted_bytes;
    return a;
  }
};

// Batched-backend counters for one sweep (runtime/batched_execution.hpp).
// Like CacheStats these describe how the work was performed, not what it
// computed: batch composition follows the engine's chunking, which depends on
// the thread count, so every field here is excluded from same_costs.
struct BatchStats {
  std::int64_t batches = 0;         // multi-start BFS batches executed
  std::int64_t batched_starts = 0;  // starts that ran inside a batch
  std::int64_t waves = 0;           // BFS waves summed over batches
  std::int64_t expanded_nodes = 0;  // union-frontier nodes gathered (the CSE:
                                    // each counts one adjacency walk serving
                                    // every start of its batch)

  BatchStats& operator+=(const BatchStats& o) {
    batches += o.batches;
    batched_starts += o.batched_starts;
    waves += o.waves;
    expanded_nodes += o.expanded_nodes;
    return *this;
  }
};

struct SweepStats {
  std::int64_t starts = 0;         // executions performed
  std::int64_t max_volume = 0;     // sup volume cost (Def. 2.2)
  std::int64_t max_distance = 0;   // sup distance cost (Def. 2.1)
  std::int64_t total_queries = 0;  // query() calls summed over starts
  std::int64_t total_volume = 0;   // visited nodes summed over starts
  // Executions that blew the query budget (output = solver fallback or
  // default Label, per Remark 3.11).
  std::int64_t truncated = 0;
  double wall_seconds = 0.0;
  // View-cache counters for the sweep (zeros under CachePolicy::Off).  Like
  // wall_seconds these describe how the work was performed, not what it
  // computed, and are excluded from same_costs.
  CacheStats cache;
  // How the sweep was executed (filled by ParallelRunner::run_planned; plain
  // run_at sweeps keep the defaults).  Tags and counters, not costs — all
  // excluded from same_costs: the whole point of the plan layer is that the
  // backend choice never changes a deterministic output.
  PlanKind plan = PlanKind::IndependentStarts;
  ExecBackend backend = ExecBackend::Basic;
  BatchStats batch;

  // Deterministic fields only — the comparison the engine-equivalence tests
  // and benches use (wall_seconds and the cache counters are intentionally
  // excluded).
  friend bool same_costs(const SweepStats& a, const SweepStats& b) {
    return a.starts == b.starts && a.max_volume == b.max_volume &&
           a.max_distance == b.max_distance && a.total_queries == b.total_queries &&
           a.total_volume == b.total_volume && a.truncated == b.truncated;
  }
};

}  // namespace volcal
