#include "runtime/view_cache.hpp"

#include <cstring>

#include "util/env.hpp"

namespace volcal {

bool CacheConfig::policy_from_name(const char* name, CachePolicy* out) {
  if (name == nullptr || out == nullptr) return false;
  if (std::strcmp(name, "off") == 0 || name[0] == '\0' || std::strcmp(name, "0") == 0) {
    *out = CachePolicy::Off;
    return true;
  }
  if (std::strcmp(name, "perstart") == 0 || std::strcmp(name, "per-start") == 0) {
    *out = CachePolicy::PerStart;
    return true;
  }
  if (std::strcmp(name, "shared") == 0) {
    *out = CachePolicy::Shared;
    return true;
  }
  return false;
}

CacheConfig CacheConfig::from_env() {
  CacheConfig config;
  if (const auto policy = env::raw("VOLCAL_CACHE")) {
    // Unrecognized values keep the safe default (Off) rather than aborting a
    // bench run over a typo — but loudly, exactly once: `VOLCAL_CACHE=sharde`
    // silently running uncached wastes a whole measurement session.
    CachePolicy parsed = CachePolicy::Off;
    if (policy_from_name(policy->c_str(), &parsed)) {
      config.policy = parsed;
    } else {
      env::warn_invalid("VOLCAL_CACHE", *policy, "not one of off|perstart|shared",
                        "policy off");
    }
  }
  // 1 TiB cap: far above any real budget, far below size_t overflow.
  if (const auto mb = env::positive_int("VOLCAL_CACHE_MB", std::int64_t{1} << 20,
                                        "default budget 256 MiB")) {
    config.byte_budget = env::mb_to_bytes(*mb);
  }
  return config;
}

}  // namespace volcal
