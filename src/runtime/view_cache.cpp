#include "runtime/view_cache.hpp"

#include <cstdlib>
#include <cstring>

namespace volcal {

bool CacheConfig::policy_from_name(const char* name, CachePolicy* out) {
  if (name == nullptr || out == nullptr) return false;
  if (std::strcmp(name, "off") == 0 || name[0] == '\0' || std::strcmp(name, "0") == 0) {
    *out = CachePolicy::Off;
    return true;
  }
  if (std::strcmp(name, "perstart") == 0 || std::strcmp(name, "per-start") == 0) {
    *out = CachePolicy::PerStart;
    return true;
  }
  if (std::strcmp(name, "shared") == 0) {
    *out = CachePolicy::Shared;
    return true;
  }
  return false;
}

CacheConfig CacheConfig::from_env() {
  CacheConfig config;
  if (const char* policy = std::getenv("VOLCAL_CACHE")) {
    // Unrecognized values keep the safe default (Off) rather than aborting a
    // bench run over a typo — the policy in effect is visible in the stats.
    CachePolicy parsed = CachePolicy::Off;
    if (policy_from_name(policy, &parsed)) config.policy = parsed;
  }
  if (const char* mb = std::getenv("VOLCAL_CACHE_MB")) {
    const long long v = std::atoll(mb);
    if (v > 0) config.byte_budget = static_cast<std::size_t>(v) << 20;
  }
  return config;
}

}  // namespace volcal
