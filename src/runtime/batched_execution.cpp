#include "runtime/batched_execution.hpp"

#include <cassert>

namespace volcal {

void BatchedBallExecutor::bind(GraphView g) {
  g_ = g;
  bound_ = true;
  const auto n = static_cast<std::size_t>(g.node_count());
  if (visited_mask_.size() < n) {
    visited_mask_.resize(n, 0);
    gather_stamp_.resize(n, 0);
    gather_pos_.resize(n, 0);
  }
  balls_.resize(static_cast<std::size_t>(kMaxBatch));
}

void BatchedBallExecutor::run(std::span<const NodeIndex> centers, std::int64_t radius) {
  assert(bound_ && !centers.empty() &&
         centers.size() <= static_cast<std::size_t>(kMaxBatch));
  const GraphView g = g_;
  const int batch = static_cast<int>(centers.size());
  radius_ = radius;
  waves_ = 0;
  expanded_nodes_ = 0;

  // Reset the visited masks of the previous batch (touched_ lists exactly the
  // nodes with a nonzero mask) and seed each slot: ball = {center}, level 0.
  for (const NodeIndex v : touched_) visited_mask_[static_cast<std::size_t>(v)] = 0;
  touched_.clear();
  std::uint64_t active = batch == kMaxBatch ? ~std::uint64_t{0}
                                            : (std::uint64_t{1} << batch) - 1;
  for (int b = 0; b < batch; ++b) {
    CachedBall& ball = balls_[static_cast<std::size_t>(b)];
    ball.order.clear();
    ball.level_end.clear();
    ball.cum_queries.clear();
    ball.depth = 0;
    ball.exhausted = false;
    const NodeIndex center = centers[static_cast<std::size_t>(b)];
    ball.order.push_back(center);
    ball.level_end.push_back(1);
    ball.cum_queries.push_back(0);
    auto& mask = visited_mask_[static_cast<std::size_t>(center)];
    if (mask == 0) touched_.push_back(center);
    mask |= std::uint64_t{1} << b;
  }

  for (std::int64_t d = 0; d < radius && active != 0; ++d) {
    ++waves_;
    const auto level = static_cast<std::size_t>(d);

    // Pass 1: gather the union frontier's adjacency, one CSR walk per node
    // regardless of how many slots' frontiers contain it.
    ++stamp_;
    wave_nodes_.clear();
    wave_off_.clear();
    wave_adj_.clear();
    for (int b = 0; b < batch; ++b) {
      if ((active >> b & 1) == 0) continue;
      const CachedBall& ball = balls_[static_cast<std::size_t>(b)];
      const auto lb = static_cast<std::size_t>(level == 0 ? 0 : ball.level_end[level - 1]);
      const auto le = static_cast<std::size_t>(ball.level_end[level]);
      for (std::size_t head = lb; head < le; ++head) {
        const auto v = static_cast<std::size_t>(ball.order[head]);
        if (gather_stamp_[v] == stamp_) continue;
        gather_stamp_[v] = stamp_;
        gather_pos_[v] = static_cast<std::uint32_t>(wave_nodes_.size());
        wave_nodes_.push_back(ball.order[head]);
        wave_off_.push_back(wave_adj_.size());
        const auto nb = g.neighbors(ball.order[head]);
        wave_adj_.insert(wave_adj_.end(), nb.begin(), nb.end());
      }
    }
    wave_off_.push_back(wave_adj_.size());
    expanded_nodes_ += static_cast<std::int64_t>(wave_nodes_.size());

    // Pass 2: expand each slot in its own canonical order against the
    // gathered buffer.  Freshness is one bit test per discovered neighbor.
    for (int b = 0; b < batch; ++b) {
      if ((active >> b & 1) == 0) continue;
      CachedBall& ball = balls_[static_cast<std::size_t>(b)];
      const auto lb = static_cast<std::size_t>(level == 0 ? 0 : ball.level_end[level - 1]);
      const auto le = static_cast<std::size_t>(ball.level_end[level]);
      if (lb == le) {
        // Matches detail::extend_cached_ball: an empty frontier before the
        // target radius marks exhaustion without pushing a level.
        ball.exhausted = true;
        active &= ~(std::uint64_t{1} << b);
        continue;
      }
      const std::uint64_t bit = std::uint64_t{1} << b;
      std::int64_t queries = ball.cum_queries[level];
      for (std::size_t head = lb; head < le; ++head) {
        const auto v = static_cast<std::size_t>(ball.order[head]);
        const std::size_t off = wave_off_[gather_pos_[v]];
        const std::size_t end = wave_off_[gather_pos_[v] + 1];
        // explore_ball queries every port of every frontier node, fresh or
        // not: one query per gathered edge.
        queries += static_cast<std::int64_t>(end - off);
        for (std::size_t i = off; i < end; ++i) {
          const NodeIndex u = wave_adj_[i];
          auto& mask = visited_mask_[static_cast<std::size_t>(u)];
          if ((mask & bit) == 0) {
            if (mask == 0) touched_.push_back(u);
            mask |= bit;
            ball.order.push_back(u);
          }
        }
      }
      ball.level_end.push_back(static_cast<std::int64_t>(ball.order.size()));
      ball.cum_queries.push_back(queries);
      ++ball.depth;
    }
  }
}

}  // namespace volcal
