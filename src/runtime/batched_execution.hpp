// BatchedExecution — the wave-synchronous multi-start BFS backend behind
// ProbePlan::BatchedBall (plan/probe_plan.hpp).
//
// A whole-graph sweep of a ball(r) family runs the *same* level-window BFS
// from every start; nearby starts re-walk the same edges once per start.
// This backend fuses up to kMaxBatch starts into one expansion that advances
// all of them level-by-level together:
//
//   * one visited bitmask word per graph node (bit b = "visited by slot b"),
//     so the freshness state of 64 concurrent executions costs 8 bytes per
//     node — against 16 bytes *per node per start* of stamp+layer scratch on
//     the per-start path;
//   * per wave, pass 1 gathers the adjacency of every node in the *union* of
//     the slot frontiers exactly once into one contiguous buffer (the
//     probe-level common-subexpression elimination: each edge is read from
//     the CSR once per wave, however many slots' frontiers contain its
//     endpoint), and pass 2 expands each slot against that hot buffer with a
//     branch-light test-and-set inner loop.
//
// Exactness (the argument is spelled out in DESIGN.md "Probe plans and
// backends"): pass 2 iterates each slot's level-d window in that slot's own
// discovery order and scans ports in ascending order, so every slot produces
// the *canonical* BFS expansion — bit-identical discovery order, level
// windows and per-level query counts to explore_ball on a BasicExecution.
// The output is a CachedBall per slot (runtime/view_cache.hpp), directly
// insertable into a shared ViewCache; per-slot volume / distance / query
// meters are read off the ball exactly as install_ball_prefix would advance
// them.  Exhaustion matches detail::extend_cached_ball: an empty frontier
// before the target radius marks the slot exhausted without pushing a level.
//
// One executor per worker thread; run() reuses all capacity across batches
// (zero steady-state allocations).  Not thread-safe — the parallel engine
// gives each worker its own instance, as it does with ExecutionScratch.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/view_cache.hpp"

namespace volcal {

class BatchedBallExecutor {
 public:
  // One visited-mask word = one batch; 64 starts per wave-synchronous run.
  static constexpr int kMaxBatch = 64;

  BatchedBallExecutor() = default;
  BatchedBallExecutor(const BatchedBallExecutor&) = delete;
  BatchedBallExecutor& operator=(const BatchedBallExecutor&) = delete;

  // Sizes the per-node arrays for `g` and pins the executor to it.
  void bind(GraphView g);

  // Expands N_center(radius) for every center simultaneously (1 <= size <=
  // kMaxBatch; duplicate centers are fine — slots are independent).  Requires
  // bind() first.  Results are valid until the next run()/bind().
  void run(std::span<const NodeIndex> centers, std::int64_t radius);

  // Per-slot cost meters, exactly what a BasicExecution running
  // explore_ball(center, radius) would report.
  std::int64_t volume(int slot) const {
    return static_cast<std::int64_t>(balls_[static_cast<std::size_t>(slot)].order.size());
  }
  std::int64_t distance(int slot) const {
    return balls_[static_cast<std::size_t>(slot)].max_layer(radius_);
  }
  std::int64_t queries(int slot) const {
    return balls_[static_cast<std::size_t>(slot)].cum_queries.back();
  }

  const CachedBall& ball(int slot) const {
    return balls_[static_cast<std::size_t>(slot)];
  }

  // Moves the slot's canonical expansion out (for ViewCache::store).  The
  // slot's meters are dead afterwards; the next run() reuses whatever
  // capacity the move left behind.
  CachedBall take_ball(int slot) {
    return std::move(balls_[static_cast<std::size_t>(slot)]);
  }

  // Telemetry for BatchStats: waves executed and union-frontier nodes
  // gathered by the last run().
  std::int64_t waves() const { return waves_; }
  std::int64_t expanded_nodes() const { return expanded_nodes_; }

 private:
  GraphView g_{};
  bool bound_ = false;
  std::int64_t radius_ = 0;
  std::int64_t waves_ = 0;
  std::int64_t expanded_nodes_ = 0;

  // Per-node state.  visited_mask_ is reset per run via touched_ (O(union
  // ball volume), not O(n)); the gather index is reset per wave via stamps.
  std::vector<std::uint64_t> visited_mask_;
  std::vector<NodeIndex> touched_;
  std::vector<std::uint64_t> gather_stamp_;
  std::vector<std::uint32_t> gather_pos_;
  std::uint64_t stamp_ = 0;

  // This wave's union frontier: gathered adjacency of wave_nodes_[i] is
  // wave_adj_[wave_off_[i] .. wave_off_[i + 1]).
  std::vector<NodeIndex> wave_nodes_;
  std::vector<std::size_t> wave_off_;
  std::vector<NodeIndex> wave_adj_;

  std::vector<CachedBall> balls_;
};

}  // namespace volcal
