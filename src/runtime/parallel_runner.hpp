// Parallel, allocation-free whole-graph sweep engine.
//
// A "solver" is a callable Label(Execution&) producing the initiating node's
// output; the engine executes it once per start node (each with a fresh
// Execution, as the model is stateless across nodes) and aggregates the costs
// of Definitions 2.1-2.2:
//
//   DIST_n(A) = sup over start nodes of the distance cost,
//   VOL_n(A)  = sup over start nodes of the volume cost.
//
// Parallelism: a small worker pool (std::thread) pulls chunks of start nodes
// off an atomic counter.  Each worker owns one ExecutionScratch (reused
// across its executions — zero allocations per start node) and, when a
// RandomTape is supplied, one RandomTape::ScopedUsage ledger (lock-free bit
// accounting, merged when the worker finishes).
//
// Determinism: RunResult is bit-identical regardless of thread count or
// scheduling, because
//   * each execution is a pure function of (instance, start, budget, tape)
//     — workers share nothing hot;
//   * per-start outputs/volumes/distances are written to disjoint
//     preassigned slots;
//   * sup-costs are reduced by a serial scan of those slots, and
//     truncated/total_queries are sums of per-worker integers — both
//     order-independent;
//   * tape bit accounting merges by pointwise max — also order-independent.
// tests/parallel_runner_test.cpp asserts this at 1, 2 and 8 threads for
// every problem family.
//
// Thread count: explicit constructor argument, else the VOLCAL_THREADS
// environment variable, else 1 (determinism-by-default; parallelism is an
// explicit opt-in).  Solvers run concurrently and so must be safe to invoke
// from multiple threads — true for every solver in this library, which
// construct their per-run state inside the call.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/execution.hpp"
#include "runtime/randomness.hpp"

namespace volcal {

template <typename Label>
struct RunResult {
  std::vector<Label> output;
  std::vector<std::int64_t> volume;    // per start node
  std::vector<std::int64_t> distance;  // per start node
  std::int64_t max_volume = 0;         // VOL_n(A) on this instance
  std::int64_t max_distance = 0;       // DIST_n(A) on this instance
  std::int64_t total_queries = 0;
  // Nodes whose execution blew the query budget (their output is the
  // solver's fallback, or default Label if the solver rethrew).
  std::int64_t truncated = 0;
};

namespace detail {

// Implemented in parallel_runner.cpp (the non-template engine core).
int resolve_thread_count(int requested);
std::int64_t sweep_chunk(std::int64_t items, int workers);
// Runs body(0..workers-1), body(0) on the calling thread; joins all workers
// and rethrows the first captured exception (lowest worker index).
void run_on_workers(int workers, const std::function<void(int)>& body);

}  // namespace detail

class ParallelRunner {
 public:
  // threads == 0: use VOLCAL_THREADS if set, else 1.
  explicit ParallelRunner(int threads = 0)
      : threads_(detail::resolve_thread_count(threads)) {}

  int threads() const { return threads_; }

  // Sweep an explicit start list; result vectors are indexed by position in
  // `starts`.  `tape` is optional and only used for worker-local bit-usage
  // accounting (values are read through the solver as usual).
  template <typename Solver>
  auto run_at(const Graph& g, const IdAssignment& ids, std::span<const NodeIndex> starts,
              Solver&& solver, std::int64_t budget = 0, RandomTape* tape = nullptr) const {
    using Label = std::decay_t<std::invoke_result_t<Solver&, Execution&>>;
    RunResult<Label> result;
    const std::int64_t count = static_cast<std::int64_t>(starts.size());
    result.volume.resize(static_cast<std::size_t>(count));
    result.distance.resize(static_cast<std::size_t>(count));

    // std::vector<bool> packs bits — concurrent writes to neighboring slots
    // would race.  Buffer bool outputs per-byte and convert at the end.
    using OutputSlot = std::conditional_t<std::is_same_v<Label, bool>, std::uint8_t, Label>;
    std::vector<OutputSlot> output(static_cast<std::size_t>(count));

    const int workers =
        static_cast<int>(std::min<std::int64_t>(threads_, std::max<std::int64_t>(count, 1)));
    const std::int64_t chunk = detail::sweep_chunk(count, workers);
    std::atomic<std::int64_t> next{0};
    std::vector<std::int64_t> truncated(static_cast<std::size_t>(workers), 0);
    std::vector<std::int64_t> queries(static_cast<std::size_t>(workers), 0);

    detail::run_on_workers(workers, [&](const int worker) {
      ExecutionScratch scratch(g.node_count());
      std::optional<RandomTape::ScopedUsage> usage;
      if (tape != nullptr) usage.emplace(*tape);
      std::int64_t local_truncated = 0;
      std::int64_t local_queries = 0;
      for (std::int64_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
           begin < count; begin = next.fetch_add(chunk, std::memory_order_relaxed)) {
        const std::int64_t end = std::min(count, begin + chunk);
        for (std::int64_t i = begin; i < end; ++i) {
          Execution exec(g, ids, starts[static_cast<std::size_t>(i)], budget, scratch);
          try {
            output[static_cast<std::size_t>(i)] =
                static_cast<OutputSlot>(solver(exec));
          } catch (const QueryBudgetExceeded&) {
            ++local_truncated;
            output[static_cast<std::size_t>(i)] =
                static_cast<OutputSlot>(Label{});  // arbitrary output per Remark 3.11
          }
          result.volume[static_cast<std::size_t>(i)] = exec.volume();
          result.distance[static_cast<std::size_t>(i)] = exec.distance();
          local_queries += exec.query_count();
        }
      }
      truncated[static_cast<std::size_t>(worker)] = local_truncated;
      queries[static_cast<std::size_t>(worker)] = local_queries;
    });

    if constexpr (std::is_same_v<Label, bool>) {
      result.output.assign(output.begin(), output.end());
    } else {
      result.output = std::move(output);
    }
    for (int w = 0; w < workers; ++w) {
      result.truncated += truncated[static_cast<std::size_t>(w)];
      result.total_queries += queries[static_cast<std::size_t>(w)];
    }
    for (std::int64_t i = 0; i < count; ++i) {
      result.max_volume = std::max(result.max_volume, result.volume[static_cast<std::size_t>(i)]);
      result.max_distance =
          std::max(result.max_distance, result.distance[static_cast<std::size_t>(i)]);
    }
    return result;
  }

  // Sweep every node of the graph; result vectors are indexed by NodeIndex.
  template <typename Solver>
  auto run_at_all_nodes(const Graph& g, const IdAssignment& ids, Solver&& solver,
                        std::int64_t budget = 0, RandomTape* tape = nullptr) const {
    const NodeIndex n = g.node_count();
    std::vector<NodeIndex> starts(static_cast<std::size_t>(n));
    for (NodeIndex v = 0; v < n; ++v) starts[static_cast<std::size_t>(v)] = v;
    return run_at(g, ids, starts, std::forward<Solver>(solver), budget, tape);
  }

 private:
  int threads_;
};

}  // namespace volcal
