// Parallel, allocation-free whole-graph sweep engine.
//
// A "solver" is a callable Label(Execution&) producing the initiating node's
// output; the engine executes it once per start node (each with a fresh
// Execution, as the model is stateless across nodes) and aggregates the costs
// of Definitions 2.1-2.2 into a SweepStats (runtime/sweep_stats.hpp):
//
//   DIST_n(A) = sup over start nodes of the distance cost,
//   VOL_n(A)  = sup over start nodes of the volume cost.
//
// Parallelism: a small worker pool (std::thread) pulls chunks of start nodes
// off an atomic counter.  Each worker owns one ExecutionScratch (reused
// across its executions — zero allocations per start node) and, when a
// RandomTape is supplied, one RandomTape::ScopedUsage ledger (lock-free bit
// accounting, merged when the worker finishes).
//
// Determinism: RunResult is bit-identical regardless of thread count or
// scheduling, because
//   * each execution is a pure function of (instance, start, budget, tape)
//     — workers share nothing hot;
//   * per-start outputs/volumes/distances are written to disjoint
//     preassigned slots;
//   * sup-costs are reduced by a serial scan of those slots, and
//     truncated/total_queries/total_volume are sums of per-worker integers —
//     both order-independent;
//   * tape bit accounting merges by pointwise max — also order-independent.
// tests/parallel_runner_test.cpp asserts this at 1, 2 and 8 threads for
// every problem family.  (SweepStats::wall_seconds and the optional
// SweepProfile are wall-clock measurements and are the only non-deterministic
// outputs.)
//
// Observability: run_at_observed() is the engine core, parameterized on an
// execution factory so the obs layer can run the identical sweep loop with
// BasicExecution<RecordingSink> (see obs/trace.hpp: run_at_traced).  An
// optional SweepProfile collects per-start wall times and worker assignment
// for the Chrome-trace exporter and SweepMetrics; attaching one does not
// change any deterministic output.
//
// Thread count: explicit constructor argument, else the VOLCAL_THREADS
// environment variable, else 1 (determinism-by-default; parallelism is an
// explicit opt-in).  Solvers run concurrently and so must be safe to invoke
// from multiple threads — true for every solver in this library, which
// construct their per-run state inside the call.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/execution.hpp"
#include "runtime/randomness.hpp"
#include "runtime/sweep_stats.hpp"

namespace volcal {

template <typename Label>
struct RunResult {
  std::vector<Label> output;
  std::vector<std::int64_t> volume;    // per start node
  std::vector<std::int64_t> distance;  // per start node
  std::vector<std::int64_t> queries;   // per start node
  SweepStats stats;                    // sup-costs + totals over the sweep
};

// Per-start wall-clock timing and worker assignment, filled by the engine
// when attached to a sweep.  Feeds the Chrome trace_event exporter and the
// per-worker breakdown in SweepMetrics; inherently non-deterministic (it is
// time), so it lives outside RunResult.
struct SweepProfile {
  std::vector<std::int64_t> begin_ns;  // per start, since sweep begin
  std::vector<std::int64_t> duration_ns;
  std::vector<int> worker;  // executing worker index

  void reset(std::size_t count) {
    begin_ns.assign(count, 0);
    duration_ns.assign(count, 0);
    worker.assign(count, 0);
  }
};

namespace detail {

// Implemented in parallel_runner.cpp (the non-template engine core).
int resolve_thread_count(int requested);
std::int64_t sweep_chunk(std::int64_t items, int workers);
// Runs body(0..workers-1), body(0) on the calling thread; joins all workers
// and rethrows the first captured exception (lowest worker index).
void run_on_workers(int workers, const std::function<void(int)>& body);

}  // namespace detail

class ParallelRunner {
 public:
  // threads == 0: use VOLCAL_THREADS if set, else 1.
  explicit ParallelRunner(int threads = 0)
      : threads_(detail::resolve_thread_count(threads)) {}

  int threads() const { return threads_; }

  // The engine core.  `make_exec(i, scratch)` builds the execution for start
  // slot i on the worker's scratch; the default factory (run_at below) makes
  // plain Executions, the obs layer substitutes recording ones.
  // `node_capacity` sizes the per-worker scratches (the graph's node count).
  // `tape` is optional and only used for worker-local bit-usage accounting
  // (values are read through the solver as usual).
  template <typename Solver, typename MakeExec>
  auto run_at_observed(NodeIndex node_capacity, std::span<const NodeIndex> starts,
                       Solver&& solver, RandomTape* tape, SweepProfile* profile,
                       MakeExec&& make_exec) const {
    using Exec = std::invoke_result_t<MakeExec&, std::int64_t, ExecutionScratch&>;
    using Label = std::decay_t<std::invoke_result_t<Solver&, Exec&>>;
    const auto sweep_begin = std::chrono::steady_clock::now();
    RunResult<Label> result;
    const std::int64_t count = static_cast<std::int64_t>(starts.size());
    result.volume.resize(static_cast<std::size_t>(count));
    result.distance.resize(static_cast<std::size_t>(count));
    result.queries.resize(static_cast<std::size_t>(count));
    if (profile != nullptr) profile->reset(static_cast<std::size_t>(count));

    // std::vector<bool> packs bits — concurrent writes to neighboring slots
    // would race.  Buffer bool outputs per-byte and convert at the end.
    using OutputSlot = std::conditional_t<std::is_same_v<Label, bool>, std::uint8_t, Label>;
    std::vector<OutputSlot> output(static_cast<std::size_t>(count));

    const int workers =
        static_cast<int>(std::min<std::int64_t>(threads_, std::max<std::int64_t>(count, 1)));
    const std::int64_t chunk = detail::sweep_chunk(count, workers);
    std::atomic<std::int64_t> next{0};
    std::vector<std::int64_t> truncated(static_cast<std::size_t>(workers), 0);

    detail::run_on_workers(workers, [&](const int worker) {
      ExecutionScratch scratch(node_capacity);
      std::optional<RandomTape::ScopedUsage> usage;
      if (tape != nullptr) usage.emplace(*tape);
      std::int64_t local_truncated = 0;
      for (std::int64_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
           begin < count; begin = next.fetch_add(chunk, std::memory_order_relaxed)) {
        const std::int64_t end = std::min(count, begin + chunk);
        for (std::int64_t i = begin; i < end; ++i) {
          const auto exec_begin = profile ? std::chrono::steady_clock::now() : sweep_begin;
          {
            Exec exec = make_exec(i, scratch);
            try {
              output[static_cast<std::size_t>(i)] = static_cast<OutputSlot>(solver(exec));
            } catch (const QueryBudgetExceeded&) {
              ++local_truncated;
              output[static_cast<std::size_t>(i)] =
                  static_cast<OutputSlot>(Label{});  // arbitrary output per Remark 3.11
            }
            result.volume[static_cast<std::size_t>(i)] = exec.volume();
            result.distance[static_cast<std::size_t>(i)] = exec.distance();
            result.queries[static_cast<std::size_t>(i)] = exec.query_count();
          }  // exec destroyed here so recording sinks flush before profiling stamps
          if (profile != nullptr) {
            const auto exec_end = std::chrono::steady_clock::now();
            profile->begin_ns[static_cast<std::size_t>(i)] =
                std::chrono::duration_cast<std::chrono::nanoseconds>(exec_begin - sweep_begin)
                    .count();
            profile->duration_ns[static_cast<std::size_t>(i)] =
                std::chrono::duration_cast<std::chrono::nanoseconds>(exec_end - exec_begin)
                    .count();
            profile->worker[static_cast<std::size_t>(i)] = worker;
          }
        }
      }
      truncated[static_cast<std::size_t>(worker)] = local_truncated;
    });

    if constexpr (std::is_same_v<Label, bool>) {
      result.output.assign(output.begin(), output.end());
    } else {
      result.output = std::move(output);
    }
    result.stats.starts = count;
    for (int w = 0; w < workers; ++w) {
      result.stats.truncated += truncated[static_cast<std::size_t>(w)];
    }
    for (std::int64_t i = 0; i < count; ++i) {
      result.stats.max_volume =
          std::max(result.stats.max_volume, result.volume[static_cast<std::size_t>(i)]);
      result.stats.max_distance =
          std::max(result.stats.max_distance, result.distance[static_cast<std::size_t>(i)]);
      result.stats.total_volume += result.volume[static_cast<std::size_t>(i)];
      result.stats.total_queries += result.queries[static_cast<std::size_t>(i)];
    }
    result.stats.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_begin).count();
    return result;
  }

  // Sweep an explicit start list; result vectors are indexed by position in
  // `starts`.
  template <typename Solver>
  auto run_at(const Graph& g, const IdAssignment& ids, std::span<const NodeIndex> starts,
              Solver&& solver, std::int64_t budget = 0, RandomTape* tape = nullptr,
              SweepProfile* profile = nullptr) const {
    return run_at_observed(g.node_count(), starts, std::forward<Solver>(solver), tape,
                           profile,
                           [&g, &ids, starts, budget](std::int64_t i, ExecutionScratch& s) {
                             return Execution(g, ids, starts[static_cast<std::size_t>(i)],
                                              budget, s);
                           });
  }

  // Sweep every node of the graph; result vectors are indexed by NodeIndex.
  template <typename Solver>
  auto run_at_all_nodes(const Graph& g, const IdAssignment& ids, Solver&& solver,
                        std::int64_t budget = 0, RandomTape* tape = nullptr,
                        SweepProfile* profile = nullptr) const {
    const NodeIndex n = g.node_count();
    std::vector<NodeIndex> starts(static_cast<std::size_t>(n));
    for (NodeIndex v = 0; v < n; ++v) starts[static_cast<std::size_t>(v)] = v;
    return run_at(g, ids, starts, std::forward<Solver>(solver), budget, tape, profile);
  }

 private:
  int threads_;
};

}  // namespace volcal
