// Parallel, allocation-free whole-graph sweep engine.
//
// A "solver" is a callable Label(Execution&) producing the initiating node's
// output; the engine executes it once per start node (each with a fresh
// Execution, as the model is stateless across nodes) and aggregates the costs
// of Definitions 2.1-2.2 into a SweepStats (runtime/sweep_stats.hpp):
//
//   DIST_n(A) = sup over start nodes of the distance cost,
//   VOL_n(A)  = sup over start nodes of the volume cost.
//
// Parallelism: a small worker pool (std::thread) pulls chunks of start nodes
// off an atomic counter.  Each worker owns one ExecutionScratch (reused
// across its executions — zero allocations per start node) and, when a
// RandomTape is supplied, one RandomTape::ScopedUsage ledger (lock-free bit
// accounting, merged when the worker finishes).
//
// Determinism: SweepResult is bit-identical regardless of thread count or
// scheduling, because
//   * each execution is a pure function of (instance, start, budget, tape)
//     — workers share nothing hot;
//   * per-start outputs/volumes/distances are written to disjoint
//     preassigned slots;
//   * sup-costs are reduced by a serial scan of those slots, and
//     truncated/total_queries/total_volume are sums of per-worker integers —
//     both order-independent;
//   * tape bit accounting merges by pointwise max — also order-independent.
// tests/parallel_runner_test.cpp asserts this at 1, 2 and 8 threads for
// every problem family.  (SweepStats::wall_seconds and the optional
// SweepProfile are wall-clock measurements and are the only non-deterministic
// outputs.)
//
// Observability: run_at_observed() is the engine core, parameterized on an
// execution factory so the obs layer can run the identical sweep loop with
// BasicExecution<RecordingSink> (see obs/trace.hpp: run_at_traced).  An
// optional SweepProfile collects per-start wall times and worker assignment
// for the Chrome-trace exporter and SweepMetrics; attaching one does not
// change any deterministic output.
//
// Plan dispatch: run_planned() takes a ProbePlan (plan/probe_plan.hpp) and
// routes batchable plans to the wave-synchronous BatchedBallExecutor
// (runtime/batched_execution.hpp) when the runner's backend allows it — same
// outputs and per-start costs, bit for bit, amortized graph traversal.  Every
// other combination falls back to the per-start loop below.
//
// Thread count: explicit constructor argument, else the VOLCAL_THREADS
// environment variable, else 1 (determinism-by-default; parallelism is an
// explicit opt-in).  Solvers run concurrently and so must be safe to invoke
// from multiple threads — true for every solver in this library, which
// construct their per-run state inside the call.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "plan/probe_plan.hpp"
#include "runtime/batched_execution.hpp"
#include "runtime/execution.hpp"
#include "runtime/randomness.hpp"
#include "runtime/sweep_stats.hpp"
#include "runtime/view_cache.hpp"

namespace volcal {

template <typename Label>
struct SweepResult {
  std::vector<Label> output;
  std::vector<std::int64_t> volume;    // per start node
  std::vector<std::int64_t> distance;  // per start node
  std::vector<std::int64_t> queries;   // per start node
  SweepStats stats;                    // sup-costs + totals over the sweep
};

// Per-start wall-clock timing and worker assignment, filled by the engine
// when attached to a sweep.  Feeds the Chrome trace_event exporter and the
// per-worker breakdown in SweepMetrics; inherently non-deterministic (it is
// time), so it lives outside SweepResult.
//
// Batched sweeps amortize one batch's wall time uniformly over its starts
// (per-start times inside a fused BFS are not separable) and additionally
// fill the per-worker batch columns, from which batch occupancy — starts per
// wave — is derived (worker_batched_starts[w] / worker_waves[w]).
struct SweepProfile {
  std::vector<std::int64_t> begin_ns;  // per start, since sweep begin
  std::vector<std::int64_t> duration_ns;
  std::vector<int> worker;  // executing worker index

  // Per-worker batched-backend columns (empty for per-start sweeps).
  std::vector<std::int64_t> worker_batches;
  std::vector<std::int64_t> worker_batched_starts;
  std::vector<std::int64_t> worker_waves;

  void reset(std::size_t count) {
    begin_ns.assign(count, 0);
    duration_ns.assign(count, 0);
    worker.assign(count, 0);
    worker_batches.clear();
    worker_batched_starts.clear();
    worker_waves.clear();
  }
};

namespace detail {

// Implemented in parallel_runner.cpp (the non-template engine core).
int resolve_thread_count(int requested);
std::int64_t sweep_chunk(std::int64_t items, int workers);
// Runs body(0..workers-1), body(0) on the calling thread; joins all workers
// and rethrows the first captured exception (lowest worker index).
void run_on_workers(int workers, const std::function<void(int)>& body);

// Folds one finished sweep's totals into obs::MetricsRegistry::global()
// ("sweep.runs", "sweep.starts", "sweep.total_queries", ...): once per
// sweep, off the per-start hot path, so long-running processes that embed
// the engine expose sweep throughput in the same Stats snapshot namespace.
void note_sweep(const SweepStats& stats);

}  // namespace detail

class ParallelRunner {
 public:
  // threads == 0: use VOLCAL_THREADS if set, else 1.  The cache policy for
  // the runner's sweeps defaults to the environment (VOLCAL_CACHE /
  // VOLCAL_CACHE_MB — off unless set), so `--cache shared` reaches every
  // runner a bench builds; pass a CacheConfig to pin it programmatically.
  explicit ParallelRunner(int threads = 0)
      : ParallelRunner(threads, CacheConfig::from_env()) {}

  ParallelRunner(int threads, CacheConfig cache)
      : threads_(detail::resolve_thread_count(threads)), cache_config_(cache) {}

  int threads() const { return threads_; }
  const CacheConfig& cache_config() const { return cache_config_; }

  // Execution backend for plan-dispatched sweeps (run_planned).  Defaults to
  // the environment (VOLCAL_BACKEND, Batched unless overridden — the batched
  // backend is bit-identical by contract); plain run_at sweeps carry no plan
  // and never batch.
  void set_backend(ExecBackend backend) { backend_ = backend; }
  ExecBackend backend() const { return backend_; }

  // Routes Shared-policy sweeps through a caller-owned ViewCache instead of
  // a sweep-scoped one, so warm entries persist across sweeps on the same
  // graph (the serving regime of the bench_runner cache ablation).  The
  // caller keeps the cache alive for the runner's lifetime and re-binds (or
  // invalidates) it when switching graphs.
  void attach_cache(ViewCache* cache) { external_cache_ = cache; }

  // The engine core.  `make_exec(i, scratch)` builds the execution for start
  // slot i on the worker's scratch; the default factory (run_at below) makes
  // plain Executions, the obs layer substitutes recording ones.
  // `node_capacity` sizes the per-worker scratches (the graph's node count).
  // `tape` is optional and only used for worker-local bit-usage accounting
  // (values are read through the solver as usual).
  template <typename Solver, typename MakeExec>
  auto run_at_observed(NodeIndex node_capacity, std::span<const NodeIndex> starts,
                       Solver&& solver, RandomTape* tape, SweepProfile* profile,
                       MakeExec&& make_exec) const {
    using Exec = std::invoke_result_t<MakeExec&, std::int64_t, ExecutionScratch&>;
    using Label = std::decay_t<std::invoke_result_t<Solver&, Exec&>>;
    const auto sweep_begin = std::chrono::steady_clock::now();
    SweepResult<Label> result;
    const std::int64_t count = static_cast<std::int64_t>(starts.size());
    result.volume.resize(static_cast<std::size_t>(count));
    result.distance.resize(static_cast<std::size_t>(count));
    result.queries.resize(static_cast<std::size_t>(count));
    if (profile != nullptr) profile->reset(static_cast<std::size_t>(count));

    // std::vector<bool> packs bits — concurrent writes to neighboring slots
    // would race.  Buffer bool outputs per-byte and convert at the end.
    using OutputSlot = std::conditional_t<std::is_same_v<Label, bool>, std::uint8_t, Label>;
    std::vector<OutputSlot> output(static_cast<std::size_t>(count));

    const int workers =
        static_cast<int>(std::min<std::int64_t>(threads_, std::max<std::int64_t>(count, 1)));
    const std::int64_t chunk = detail::sweep_chunk(count, workers);
    std::atomic<std::int64_t> next{0};
    std::vector<std::int64_t> truncated(static_cast<std::size_t>(workers), 0);

    // View-cache scope per policy: Shared = one cache for the whole sweep
    // (the attached persistent one when present, else sweep-scoped);
    // PerStart = one cache per worker, invalidated before every start.
    // Execution factories whose type has no attach_view_cache (the test-only
    // map reference) simply run uncached.
    ViewCache* shared_cache = external_cache_;
    std::optional<ViewCache> sweep_cache;
    if (shared_cache == nullptr && cache_config_.policy == CachePolicy::Shared) {
      sweep_cache.emplace(cache_config_);
      shared_cache = &*sweep_cache;
    }
    const CacheStats cache_before =
        shared_cache != nullptr ? shared_cache->stats() : CacheStats{};
    std::vector<CacheStats> worker_cache(static_cast<std::size_t>(workers));

    detail::run_on_workers(workers, [&](const int worker) {
      ExecutionScratch scratch(node_capacity);
      std::optional<RandomTape::ScopedUsage> usage;
      if (tape != nullptr) usage.emplace(*tape);
      std::optional<ViewCache> per_start_cache;
      if (shared_cache == nullptr && cache_config_.policy == CachePolicy::PerStart) {
        per_start_cache.emplace(cache_config_);
      }
      std::int64_t local_truncated = 0;
      for (std::int64_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
           begin < count; begin = next.fetch_add(chunk, std::memory_order_relaxed)) {
        const std::int64_t end = std::min(count, begin + chunk);
        for (std::int64_t i = begin; i < end; ++i) {
          const auto exec_begin = profile ? std::chrono::steady_clock::now() : sweep_begin;
          {
            Exec exec = make_exec(i, scratch);
            if constexpr (requires { exec.attach_view_cache(nullptr); }) {
              if (per_start_cache.has_value()) {
                per_start_cache->invalidate();  // cache scope = this start only
                exec.attach_view_cache(&*per_start_cache);
              } else if (shared_cache != nullptr) {
                exec.attach_view_cache(shared_cache);
              }
            }
            try {
              output[static_cast<std::size_t>(i)] = static_cast<OutputSlot>(solver(exec));
            } catch (const QueryBudgetExceeded&) {
              ++local_truncated;
              output[static_cast<std::size_t>(i)] =
                  static_cast<OutputSlot>(Label{});  // arbitrary output per Remark 3.11
            }
            result.volume[static_cast<std::size_t>(i)] = exec.volume();
            result.distance[static_cast<std::size_t>(i)] = exec.distance();
            result.queries[static_cast<std::size_t>(i)] = exec.query_count();
          }  // exec destroyed here so recording sinks flush before profiling stamps
          if (profile != nullptr) {
            const auto exec_end = std::chrono::steady_clock::now();
            profile->begin_ns[static_cast<std::size_t>(i)] =
                std::chrono::duration_cast<std::chrono::nanoseconds>(exec_begin - sweep_begin)
                    .count();
            profile->duration_ns[static_cast<std::size_t>(i)] =
                std::chrono::duration_cast<std::chrono::nanoseconds>(exec_end - exec_begin)
                    .count();
            profile->worker[static_cast<std::size_t>(i)] = worker;
          }
        }
      }
      truncated[static_cast<std::size_t>(worker)] = local_truncated;
      if (per_start_cache.has_value()) {
        worker_cache[static_cast<std::size_t>(worker)] = per_start_cache->stats();
      }
    });

    if constexpr (std::is_same_v<Label, bool>) {
      result.output.assign(output.begin(), output.end());
    } else {
      result.output = std::move(output);
    }
    result.stats.starts = count;
    for (int w = 0; w < workers; ++w) {
      result.stats.truncated += truncated[static_cast<std::size_t>(w)];
    }
    for (std::int64_t i = 0; i < count; ++i) {
      result.stats.max_volume =
          std::max(result.stats.max_volume, result.volume[static_cast<std::size_t>(i)]);
      result.stats.max_distance =
          std::max(result.stats.max_distance, result.distance[static_cast<std::size_t>(i)]);
      result.stats.total_volume += result.volume[static_cast<std::size_t>(i)];
      result.stats.total_queries += result.queries[static_cast<std::size_t>(i)];
    }
    if (shared_cache != nullptr) {
      result.stats.cache = shared_cache->stats() - cache_before;
      result.stats.cache.policy = cache_config_.policy == CachePolicy::Off
                                      ? CachePolicy::Shared  // attached external cache
                                      : cache_config_.policy;
    } else {
      for (int w = 0; w < workers; ++w) {
        result.stats.cache += worker_cache[static_cast<std::size_t>(w)];
      }
      result.stats.cache.policy = cache_config_.policy;
    }
    result.stats.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_begin).count();
    detail::note_sweep(result.stats);
    return result;
  }

  // Sweep an explicit start list; result vectors are indexed by position in
  // `starts`.
  template <typename Solver>
  auto run_at(GraphView g, const IdAssignment& ids, std::span<const NodeIndex> starts,
              Solver&& solver, std::int64_t budget = 0, RandomTape* tape = nullptr,
              SweepProfile* profile = nullptr) const {
    return run_at_observed(g.node_count(), starts, std::forward<Solver>(solver), tape,
                           profile,
                           [g, &ids, starts, budget](std::int64_t i, ExecutionScratch& s) {
                             return Execution(g, ids, starts[static_cast<std::size_t>(i)],
                                              budget, s);
                           });
  }

  // Sweep every node of the graph; result vectors are indexed by NodeIndex.
  template <typename Solver>
  auto run_at_all_nodes(GraphView g, const IdAssignment& ids, Solver&& solver,
                        std::int64_t budget = 0, RandomTape* tape = nullptr,
                        SweepProfile* profile = nullptr) const {
    const NodeIndex n = g.node_count();
    std::vector<NodeIndex> starts(static_cast<std::size_t>(n));
    for (NodeIndex v = 0; v < n; ++v) starts[static_cast<std::size_t>(v)] = v;
    return run_at(g, ids, starts, std::forward<Solver>(solver), budget, tape, profile);
  }

  // Plan-dispatched sweep.  Batchable plans (BatchedBall / SharedFrontier)
  // run on the wave-synchronous backend when the runner's backend is Batched
  // and the sweep is eligible: no query budget (the truncating query must
  // fire at the identical point, so budgeted runs stay per-start), no random
  // tape (a batchable plan's solver is deterministic by promise), and an
  // integral output (the plan's contract is output == ball size).  Everything
  // else takes the per-start loop with the plan recorded in the stats.
  //
  // CachePolicy composition on the batched path: Shared serves full hits
  // from the cache, batches only the misses, and inserts every completed
  // expansion; PerStart — a per-start-scoped cache — is semantically a no-op
  // for a single-ball solver and runs uncached.
  template <typename Solver>
  auto run_planned(GraphView g, const IdAssignment& ids,
                   std::span<const NodeIndex> starts, const ProbePlan& plan,
                   Solver&& solver, std::int64_t budget = 0, RandomTape* tape = nullptr,
                   SweepProfile* profile = nullptr) const {
    using Label = std::decay_t<std::invoke_result_t<Solver&, Execution&>>;
    if constexpr (std::is_integral_v<Label> && !std::is_same_v<Label, bool>) {
      if (backend_ == ExecBackend::Batched && plan.batchable() && budget == 0 &&
          tape == nullptr) {
        return run_batched_balls<Label>(g, starts, plan, profile);
      }
    }
    auto result =
        run_at(g, ids, starts, std::forward<Solver>(solver), budget, tape, profile);
    result.stats.plan = plan.kind;
    return result;
  }

 private:
  // The batched engine loop: workers pull 64-start batches of *consecutive*
  // starts (neighboring balls overlap most) off the atomic counter, serve
  // full cache hits, fuse the misses into one BatchedBallExecutor run, and
  // write per-start meters to disjoint slots.  Structure mirrors
  // run_at_observed; the reduction is the same serial scan.
  template <typename Label>
  SweepResult<Label> run_batched_balls(GraphView g, std::span<const NodeIndex> starts,
                                       const ProbePlan& plan,
                                       SweepProfile* profile) const {
    const auto sweep_begin = std::chrono::steady_clock::now();
    SweepResult<Label> result;
    const std::int64_t count = static_cast<std::int64_t>(starts.size());
    result.output.resize(static_cast<std::size_t>(count));
    result.volume.resize(static_cast<std::size_t>(count));
    result.distance.resize(static_cast<std::size_t>(count));
    result.queries.resize(static_cast<std::size_t>(count));
    if (profile != nullptr) profile->reset(static_cast<std::size_t>(count));

    const int workers =
        static_cast<int>(std::min<std::int64_t>(threads_, std::max<std::int64_t>(count, 1)));
    constexpr std::int64_t kBatch = BatchedBallExecutor::kMaxBatch;
    std::atomic<std::int64_t> next{0};

    ViewCache* shared_cache = external_cache_;
    std::optional<ViewCache> sweep_cache;
    if (shared_cache == nullptr && cache_config_.policy == CachePolicy::Shared) {
      sweep_cache.emplace(cache_config_);
      shared_cache = &*sweep_cache;
    }
    if (shared_cache != nullptr) shared_cache->bind(g);
    const CacheStats cache_before =
        shared_cache != nullptr ? shared_cache->stats() : CacheStats{};
    std::vector<BatchStats> worker_batch(static_cast<std::size_t>(workers));

    detail::run_on_workers(workers, [&](const int worker) {
      BatchedBallExecutor exec;
      exec.bind(g);
      NodeIndex centers[BatchedBallExecutor::kMaxBatch];
      std::int64_t slot_of[BatchedBallExecutor::kMaxBatch];
      BatchStats local;
      for (std::int64_t begin = next.fetch_add(kBatch, std::memory_order_relaxed);
           begin < count; begin = next.fetch_add(kBatch, std::memory_order_relaxed)) {
        const std::int64_t end = std::min(count, begin + kBatch);
        const auto batch_begin = profile ? std::chrono::steady_clock::now() : sweep_begin;
        const std::uint64_t epoch = shared_cache != nullptr ? shared_cache->epoch() : 0;
        int b = 0;
        for (std::int64_t i = begin; i < end; ++i) {
          const NodeIndex center = starts[static_cast<std::size_t>(i)];
          if (shared_cache != nullptr) {
            BallCosts costs;
            if (shared_cache->serve_costs(g, center, plan.radius, &costs)) {
              result.output[static_cast<std::size_t>(i)] = static_cast<Label>(costs.volume);
              result.volume[static_cast<std::size_t>(i)] = costs.volume;
              result.distance[static_cast<std::size_t>(i)] = costs.distance;
              result.queries[static_cast<std::size_t>(i)] = costs.queries;
              continue;
            }
          }
          centers[b] = center;
          slot_of[b] = i;
          ++b;
        }
        if (b > 0) {
          exec.run({centers, static_cast<std::size_t>(b)}, plan.radius);
          for (int s = 0; s < b; ++s) {
            const auto i = static_cast<std::size_t>(slot_of[s]);
            result.output[i] = static_cast<Label>(exec.volume(s));
            result.volume[i] = exec.volume(s);
            result.distance[i] = exec.distance(s);
            result.queries[i] = exec.queries(s);
          }
          if (shared_cache != nullptr) {
            for (int s = 0; s < b; ++s) {
              shared_cache->store(centers[s], exec.take_ball(s), epoch,
                                  g.storage_identity());
            }
          }
          ++local.batches;
          local.batched_starts += b;
          local.waves += exec.waves();
          local.expanded_nodes += exec.expanded_nodes();
        }
        if (profile != nullptr) {
          const auto batch_end = std::chrono::steady_clock::now();
          const std::int64_t begin_ns =
              std::chrono::duration_cast<std::chrono::nanoseconds>(batch_begin - sweep_begin)
                  .count();
          const std::int64_t per_start_ns =
              std::chrono::duration_cast<std::chrono::nanoseconds>(batch_end - batch_begin)
                  .count() /
              std::max<std::int64_t>(end - begin, 1);
          for (std::int64_t i = begin; i < end; ++i) {
            profile->begin_ns[static_cast<std::size_t>(i)] = begin_ns;
            profile->duration_ns[static_cast<std::size_t>(i)] = per_start_ns;
            profile->worker[static_cast<std::size_t>(i)] = worker;
          }
        }
      }
      worker_batch[static_cast<std::size_t>(worker)] = local;
    });

    result.stats.starts = count;
    for (std::int64_t i = 0; i < count; ++i) {
      result.stats.max_volume =
          std::max(result.stats.max_volume, result.volume[static_cast<std::size_t>(i)]);
      result.stats.max_distance =
          std::max(result.stats.max_distance, result.distance[static_cast<std::size_t>(i)]);
      result.stats.total_volume += result.volume[static_cast<std::size_t>(i)];
      result.stats.total_queries += result.queries[static_cast<std::size_t>(i)];
    }
    if (shared_cache != nullptr) {
      result.stats.cache = shared_cache->stats() - cache_before;
      result.stats.cache.policy = cache_config_.policy == CachePolicy::Off
                                      ? CachePolicy::Shared  // attached external cache
                                      : cache_config_.policy;
    } else {
      result.stats.cache.policy = cache_config_.policy;
    }
    result.stats.plan = plan.kind;
    result.stats.backend = ExecBackend::Batched;
    for (int w = 0; w < workers; ++w) {
      result.stats.batch += worker_batch[static_cast<std::size_t>(w)];
    }
    if (profile != nullptr) {
      profile->worker_batches.resize(static_cast<std::size_t>(workers));
      profile->worker_batched_starts.resize(static_cast<std::size_t>(workers));
      profile->worker_waves.resize(static_cast<std::size_t>(workers));
      for (int w = 0; w < workers; ++w) {
        const BatchStats& wb = worker_batch[static_cast<std::size_t>(w)];
        profile->worker_batches[static_cast<std::size_t>(w)] = wb.batches;
        profile->worker_batched_starts[static_cast<std::size_t>(w)] = wb.batched_starts;
        profile->worker_waves[static_cast<std::size_t>(w)] = wb.waves;
      }
    }
    result.stats.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_begin).count();
    detail::note_sweep(result.stats);
    return result;
  }

  int threads_;
  CacheConfig cache_config_;
  ViewCache* external_cache_ = nullptr;
  ExecBackend backend_ = backend_from_env();
};

// Whole-graph convenience wrapper over the sweep engine: serial (and
// allocation-free — one scratch reused across all starts) by default,
// parallel when VOLCAL_THREADS is set.  `tape` is optional: pass the
// solver's RandomTape to route its bit-usage accounting through
// worker-local ledgers (lock-free in parallel sweeps).
template <typename Solver>
auto run_at_all_nodes(GraphView g, const IdAssignment& ids, Solver&& solver,
                      std::int64_t budget = 0, RandomTape* tape = nullptr) {
  return ParallelRunner().run_at_all_nodes(g, ids, std::forward<Solver>(solver), budget,
                                           tape);
}

// Lemma 2.5 sanity check on a completed run:
// DIST <= VOL and VOL <= Δ^DIST + 1 (the latter evaluated with overflow
// guard).  Returns true iff both inequalities hold for every node.
template <typename Label>
bool satisfies_lemma_2_5(GraphView g, const SweepResult<Label>& r) {
  const double delta = std::max(2, g.max_degree());
  for (std::size_t i = 0; i < r.volume.size(); ++i) {
    // DIST <= VOL: a connected visited set of m nodes spans distance <= m.
    if (r.distance[i] > r.volume[i]) return false;
    // VOL <= Δ^DIST + 1 (paper's ball bound); guard the power vs. overflow —
    // when Δ^DIST would exceed 2^62 the inequality is vacuously true.
    const double bound_log = static_cast<double>(r.distance[i]) * std::log2(delta);
    if (bound_log < 62.0) {
      const auto bound =
          static_cast<std::int64_t>(std::pow(delta, static_cast<double>(r.distance[i]))) + 1;
      if (r.volume[i] > bound) return false;
    }
  }
  return true;
}

}  // namespace volcal
