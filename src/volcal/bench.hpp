// volcal/bench.hpp — the public measurement surface.
//
// One include for the library-resident measurement stack: execution
// observability (traced sweeps, SweepMetrics, Chrome-trace export), perf
// artifacts with schema-versioned JSON plus the baseline differ, and the
// growth-fitting statistics the benches report.  The bench/ directory's
// bench_util.hpp CLI harness builds on these but is tool plumbing, not
// library API.  New code should include this umbrella instead of the
// individual obs/ and perf/ headers (see DESIGN.md "API surface and
// deprecations").
#pragma once

#include "obs/metrics.hpp"
#include "obs/replay.hpp"
#include "obs/trace.hpp"
#include "perf/artifact.hpp"
#include "perf/diff.hpp"
#include "perf/probe.hpp"
#include "stats/growth.hpp"
#include "stats/table.hpp"
