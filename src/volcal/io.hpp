// volcal/io.hpp — instance persistence: binary snapshots, the text format,
// and the format-sniffing load_instance/save_instance entry points.
//
//   io/instance_io.hpp  load_instance / save_instance / sniff_format
//   io/snapshot.hpp     versioned binary snapshots + mmap GraphView loader
//   io/serialize.hpp    the text layer's typed writers/readers + DOT export
//                       (re-exported here; direct includes are deprecated —
//                       DESIGN.md, deprecation ledger)
#pragma once

#include "io/instance_io.hpp"
#include "io/snapshot.hpp"

#define VOLCAL_ALLOW_DIRECT_SERIALIZE_INCLUDE
#include "io/serialize.hpp"
