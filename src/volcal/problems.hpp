// volcal/problems.hpp — the public problem-family surface.
//
// One include for the LCL formalization (lcl/lcl.hpp), the instance
// generators and labelings the families are built on, and the type-erased
// ProblemRegistry that enumerates every implemented family with its
// predicted Θ-class.  Individual lcl/problems/... headers remain valid
// includes but are internal layout; new code should go through the registry
// or this umbrella (see DESIGN.md "API surface and deprecations").
#pragma once

#include "labels/generators.hpp"
#include "labels/instances.hpp"
#include "lcl/lcl.hpp"
#include "lcl/registry.hpp"
