// volcal/serve.hpp — the online query-service surface.
//
// One include for everything the serving regime needs: the wire protocol
// (length-prefixed frames + stream decoder), the concurrent QueryService
// (batched execution, admission control, hot snapshot swap, live mutation
// apply, cross-request ball cache), the per-request tracer / slow-query
// log, the Unix-socket transport used by tools/volcal_serve, and the typed
// ServeClient tools/volcal_load and tools/volcal_top talk through.  The
// fine-grained serve/... headers remain valid includes but are internal
// layout (see DESIGN.md "API surface and deprecations").
#pragma once

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/query_service.hpp"
#include "serve/server.hpp"
#include "serve/trace.hpp"
