// volcal/serve.hpp — the online query-service surface.
//
// One include for everything the serving regime needs: the wire protocol
// (length-prefixed frames + stream decoder), the concurrent QueryService
// (batched execution, admission control, hot snapshot swap, cross-request
// ball cache), the per-request tracer / slow-query log, and the Unix-socket
// transport used by tools/volcal_serve and tools/volcal_load.  The
// fine-grained serve/... headers remain valid includes but are internal
// layout (see DESIGN.md "API surface and deprecations").
#pragma once

#include "serve/protocol.hpp"
#include "serve/query_service.hpp"
#include "serve/server.hpp"
#include "serve/trace.hpp"
