// volcal/volcal.hpp — everything: the full public API in one include.
//
//   volcal/runtime.hpp   graphs, executions, sweep engine, view cache
//   volcal/problems.hpp  LCL formalization, instance generators, registry
//   volcal/io.hpp        instance persistence: snapshots + text + sniffing
//   volcal/bench.hpp     observability, perf artifacts, growth fitting
//
// Include the narrower umbrella when the translation unit only needs one
// layer; include this when exploring or writing examples.
#pragma once

#include "volcal/bench.hpp"
#include "volcal/io.hpp"
#include "volcal/problems.hpp"
#include "volcal/runtime.hpp"
