// volcal/runtime.hpp — the public execution surface.
//
// One include for everything needed to run a volume/distance-metered local
// algorithm: graphs and id assignments, the query-metered Execution (paper
// §2.2, Definitions 2.1-2.2), the parallel sweep engine with its
// SweepResult/SweepStats aggregates, the probe-plan IR with the batched
// multi-start backend, the ball-view cache, and the shared randomness tape.  The fine-grained runtime/... headers remain valid
// includes but are considered internal layout; new code should include the
// volcal/ umbrella headers (see DESIGN.md "API surface and deprecations").
#pragma once

#include "graph/bfs.hpp"
#include "graph/graph.hpp"
#include "graph/mutation.hpp"
#include "labels/ids.hpp"
#include "plan/probe_plan.hpp"
#include "runtime/batched_execution.hpp"
#include "runtime/execution.hpp"
#include "runtime/parallel_runner.hpp"
#include "runtime/randomness.hpp"
#include "runtime/success.hpp"
#include "runtime/sweep_stats.hpp"
#include "runtime/view_cache.hpp"
