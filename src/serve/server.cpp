#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

namespace volcal::serve {

namespace {

// Full write with EINTR retry; false once the peer is gone or the socket's
// send timeout (SO_SNDTIMEO, surfacing as EAGAIN) expired.  MSG_NOSIGNAL:
// a dead peer must surface as EPIPE here, not as a process-wide SIGPIPE —
// this runs inside servers, tests, and clients that have not installed the
// SIG_IGN disposition volcal_serve does.
bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t wrote = ::send(fd, data, len, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += wrote;
    len -= static_cast<std::size_t>(wrote);
  }
  return true;
}

void set_write_timeout(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

bool fill_sockaddr(const std::string& path, sockaddr_un* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr->sun_path)) {
    std::fprintf(stderr, "volcal_serve: socket path too long (%zu bytes, max %zu): %s\n",
                 path.size(), sizeof(addr->sun_path) - 1, path.c_str());
    return false;
  }
  std::memcpy(addr->sun_path, path.c_str(), path.size());
  return true;
}

}  // namespace

// One accepted connection: the fd, a write mutex (service workers write
// responses concurrently), and a closed flag.  Held via shared_ptr by the
// reader thread and by every in-flight completion callback, so the fd stays
// valid until the last response for this connection has been written.
struct SocketServer::Connection {
  int fd = -1;
  std::mutex write_mu;
  bool closed = false;

  void send(const std::vector<std::uint8_t>& bytes) {
    std::lock_guard lock(write_mu);
    if (closed) return;
    if (!write_all(fd, bytes.data(), bytes.size())) {
      // Peer gone or send timeout (a client that stopped reading): drop the
      // connection.  The shutdown wakes the reader so it reaps immediately;
      // later sends return without touching the socket, so one stuck client
      // costs each worker at most one timeout, never a wedge.
      closed = true;
      ::shutdown(fd, SHUT_RDWR);
    }
  }

  void shutdown_both() {
    std::lock_guard lock(write_mu);
    closed = true;
    ::shutdown(fd, SHUT_RDWR);
  }

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
};

bool SocketServer::start(QueryService& service, const std::string& socket_path,
                         int write_timeout_ms) {
  sockaddr_un addr;
  if (!fill_sockaddr(socket_path, &addr)) return false;
  service_ = &service;
  path_ = socket_path;
  write_timeout_ms_ = write_timeout_ms;
  c_connections_total_ = service.metrics().counter("serve.connections_total");
  c_accept_retries_ = service.metrics().counter("serve.accept_retries");
  service.metrics().gauge_fn("serve.connections", [this] {
    return static_cast<std::int64_t>(connection_count());
  });
  ::unlink(socket_path.c_str());
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    std::perror("volcal_serve: socket");
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::fprintf(stderr, "volcal_serve: cannot bind %s: %s\n", socket_path.c_str(),
                 std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 64) != 0) {
    std::perror("volcal_serve: listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  acceptor_ = std::thread([this] { accept_loop(); });
  return true;
}

void SocketServer::accept_loop() {
  while (!stopped_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopped_.load(std::memory_order_acquire)) return;  // socket closed by stop()
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Resource pressure is transient (fds free as dead connections
        // reap): keep the acceptor alive instead of silently refusing every
        // future client, but back off so the retry loop does not spin.
        c_accept_retries_->inc();
        std::fprintf(stderr, "volcal_serve: accept: %s (retrying)\n",
                     std::strerror(errno));
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      return;  // genuinely fatal (EBADF/EINVAL outside shutdown is a bug)
    }
    set_write_timeout(fd, write_timeout_ms_);
    c_connections_total_->inc();
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::vector<std::thread> finished;
    {
      std::lock_guard lock(conns_mu_);
      if (stopped_.load(std::memory_order_acquire)) {
        return;  // raced with stop(): ~Connection closes the late fd
      }
      conns_.push_back(conn);
      readers_.emplace(conn.get(), std::thread([this, conn] { reader_loop(conn); }));
      finished.swap(finished_readers_);
    }
    // Join readers of already-disconnected clients (they have exited; the
    // join is immediate) so thread objects do not pile up until stop().
    for (std::thread& t : finished) t.join();
  }
}

void SocketServer::reader_loop(std::shared_ptr<Connection> conn) {
  FrameReader reader;
  std::uint8_t buf[4096];
  while (true) {
    const ssize_t got = ::read(conn->fd, buf, sizeof buf);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) break;  // EOF or error: client went away
    reader.feed(buf, static_cast<std::size_t>(got));
    Frame frame;
    while (reader.next(&frame)) {
      if (frame.type == FrameType::StatsRequest) {
        // Answered here, on the reader thread: a stats poll never enters the
        // admission queue, so it cannot displace (or be shed like) a query.
        conn->send(encode_stats(frame.stats_request.request_id,
                                service_->stats_json()));
        continue;
      }
      if (frame.type == FrameType::Update) {
        // Also answered on the reader thread: apply_mutations serializes on
        // the service's target mutex and must not ride the admission queue —
        // an update shed under load would silently fork the client's view of
        // the graph.  In-flight query waves keep running against the old
        // target while this blocks; only this connection's reader waits.
        const MutationOutcome mo = service_->apply_mutations(frame.update.batch);
        UpdateResultFrame uf;
        uf.request_id = frame.update.request_id;
        uf.status = mo.ok ? UpdateStatus::Ok : UpdateStatus::Invalid;
        uf.cache_evicted = mo.cache_evicted;
        uf.cache_retained = mo.cache_retained;
        uf.flushed = mo.flushed ? 1 : 0;
        uf.apply_ns = mo.apply_ns;
        conn->send(encode_update_result(uf));
        continue;
      }
      if (frame.type != FrameType::Query) continue;  // queries, stats, updates only
      const QueryFrame q = frame.query;
      const Admission adm = service_->submit(
          q.request_id, q.node, [conn](const QueryResult& r) {
            ResultFrame rf;
            rf.request_id = r.request_id;
            rf.status = r.status;
            rf.node = r.node;
            rf.label = r.label;
            rf.volume = r.volume;
            rf.distance = r.distance;
            rf.queries = r.queries;
            rf.latency_ns = r.latency_ns;
            conn->send(encode_result(rf));
          });
      if (adm != Admission::Accepted) {
        ShedFrame sf;
        sf.request_id = q.request_id;
        // retry_after_ms == 0 tells the client the service is draining for
        // good; a transient full queue advertises the configured backoff.
        sf.retry_after_ms =
            adm == Admission::Shed ? service_->config().retry_after_ms : 0;
        conn->send(encode_shed(sf));
      }
    }
    if (reader.corrupt()) break;  // no resync in a length-prefixed stream
  }
  conn->shutdown_both();
  // Reap: drop the server's handle (the fd closes when the last in-flight
  // response releases its shared_ptr) and park this thread's object for the
  // accept loop / stop() to join — a disconnected client must not hold an
  // fd slot or a thread object for the server's lifetime.
  std::lock_guard lock(conns_mu_);
  if (stopped_.load(std::memory_order_acquire)) return;  // stop() owns cleanup
  conns_.erase(std::remove(conns_.begin(), conns_.end(), conn), conns_.end());
  auto it = readers_.find(conn.get());
  if (it != readers_.end()) {
    finished_readers_.push_back(std::move(it->second));
    readers_.erase(it);
  }
}

void SocketServer::stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  if (listen_fd_ >= 0) {
    // Closing the listening socket fails the blocking accept() and ends the
    // acceptor; shutdown first for kernels that keep accept() sleeping on a
    // closed fd.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (service_ != nullptr) {
    // Replace the connection-count callback with a constant: a snapshot
    // taken after the transport is gone must not call into a dead server.
    service_->metrics().gauge_fn("serve.connections",
                                 [] { return std::int64_t{0}; });
  }
  std::vector<std::shared_ptr<Connection>> conns;
  std::unordered_map<const Connection*, std::thread> readers;
  std::vector<std::thread> finished;
  {
    std::lock_guard lock(conns_mu_);
    conns.swap(conns_);
    readers.swap(readers_);
    finished.swap(finished_readers_);
  }
  for (auto& conn : conns) {
    conn->send(encode_bye(ByeFrame{0}));
    conn->shutdown_both();
  }
  for (auto& [_, t] : readers) {
    if (t.joinable()) t.join();
  }
  for (std::thread& t : finished) {
    if (t.joinable()) t.join();
  }
  if (!path_.empty()) ::unlink(path_.c_str());
}

std::size_t SocketServer::connection_count() const {
  std::lock_guard lock(conns_mu_);
  return conns_.size();
}

SocketServer::~SocketServer() { stop(); }

SocketClient::~SocketClient() { close(); }

bool SocketClient::connect(const std::string& socket_path) {
  sockaddr_un addr;
  if (!fill_sockaddr(socket_path, &addr)) return false;
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  return true;
}

void SocketClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool SocketClient::send_query(std::uint64_t request_id, std::int64_t node) {
  if (fd_ < 0) return false;
  QueryFrame q;
  q.request_id = request_id;
  q.node = node;
  const std::vector<std::uint8_t> bytes = encode_query(q);
  return write_all(fd_, bytes.data(), bytes.size());
}

bool SocketClient::send_stats_request(std::uint64_t request_id) {
  if (fd_ < 0) return false;
  const std::vector<std::uint8_t> bytes = encode_stats_request(request_id);
  return write_all(fd_, bytes.data(), bytes.size());
}

bool SocketClient::send_update(std::uint64_t request_id, const MutationBatch& batch) {
  if (fd_ < 0) return false;
  UpdateFrame u;
  u.request_id = request_id;
  u.batch = batch;
  const std::vector<std::uint8_t> bytes = encode_update(u);
  return write_all(fd_, bytes.data(), bytes.size());
}

bool SocketClient::recv_frame(Frame* out) {
  if (fd_ < 0) return false;
  std::uint8_t buf[4096];
  while (true) {
    if (reader_.next(out)) return true;
    if (reader_.corrupt()) return false;
    const ssize_t got = ::read(fd_, buf, sizeof buf);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) return false;
    reader_.feed(buf, static_cast<std::size_t>(got));
  }
}

}  // namespace volcal::serve
