#include "serve/trace.hpp"

#include <cinttypes>
#include <cstdio>

namespace volcal::serve {
namespace {

struct FileHandle {
  explicit FileHandle(const std::string& path) : f(std::fopen(path.c_str(), "w")) {
    if (f == nullptr) {
      std::fprintf(stderr, "serve: cannot open %s for writing\n", path.c_str());
    }
  }
  ~FileHandle() {
    if (f != nullptr) std::fclose(f);
  }
  FileHandle(const FileHandle&) = delete;
  FileHandle& operator=(const FileHandle&) = delete;

  std::FILE* f;
};

void emit_slice(std::FILE* f, bool* first, const RequestSpan& s, const char* name,
                std::int64_t begin_ns, std::int64_t end_ns) {
  const double ts_us = static_cast<double>(begin_ns) / 1000.0;
  const double dur_us = static_cast<double>(end_ns - begin_ns < 0 ? 0 : end_ns - begin_ns) / 1000.0;
  std::fprintf(f,
               "%s{\"name\":\"%s\",\"cat\":\"serve\",\"ph\":\"X\",\"ts\":%.3f"
               ",\"dur\":%.3f,\"pid\":0,\"tid\":%d,\"args\":{\"seq\":%" PRIu64
               ",\"id\":%" PRIu64 ",\"node\":%" PRId64 ",\"wave\":%" PRIu64
               ",\"volume\":%" PRId64 ",\"cache_hit\":%s}}",
               *first ? "" : ",", name, ts_us, dur_us, s.worker < 0 ? 0 : s.worker,
               s.seq, s.client_id, s.node, s.wave, s.volume,
               s.cache_hit ? "true" : "false");
  *first = false;
}

}  // namespace

bool write_serve_chrome_trace(const std::string& path,
                              std::span<const RequestSpan> spans) {
  FileHandle file(path);
  if (file.f == nullptr) return false;
  std::fprintf(file.f, "{\"traceEvents\":[");
  bool first = true;
  for (const RequestSpan& s : spans) {
    emit_slice(file.f, &first, s, "queue", s.admit_ns, s.dequeue_ns);
    emit_slice(file.f, &first, s, "execute", s.dequeue_ns, s.exec_end_ns);
    emit_slice(file.f, &first, s, "write", s.exec_end_ns, s.done_ns);
  }
  std::fprintf(file.f, "],\"displayTimeUnit\":\"ms\"}\n");
  return true;
}

bool write_slow_query_log(const std::string& path, std::span<const SlowQuery> slow) {
  FileHandle file(path);
  if (file.f == nullptr) return false;
  for (const SlowQuery& q : slow) {
    std::fprintf(file.f,
                 "{\"seq\":%" PRIu64 ",\"id\":%" PRIu64 ",\"node\":%" PRId64
                 ",\"wave\":%" PRIu64 ",\"latency_ns\":%" PRId64 ",\"volume\":%" PRId64
                 ",\"cache_hit\":%s,\"invalid\":%s}\n",
                 q.seq, q.client_id, q.node, q.wave, q.latency_ns, q.volume,
                 q.cache_hit ? "true" : "false", q.invalid ? "true" : "false");
  }
  return true;
}

}  // namespace volcal::serve
