#include "serve/query_service.hpp"

#include <algorithm>

#include "runtime/batched_execution.hpp"
#include "runtime/execution.hpp"
#include "runtime/parallel_runner.hpp"

namespace volcal::serve {

ServeTarget make_serve_target(std::shared_ptr<const ErasedInstance> instance) {
  ServeTarget target;
  const RegistryEntry* entry =
      instance ? ProblemRegistry::global().find(instance->family()) : nullptr;
  target.plan = entry != nullptr ? entry->plan : ProbePlan::independent();
  target.instance = std::move(instance);
  return target;
}

QueryService::QueryService(ServeTarget target, ServeConfig config)
    : config_(config),
      threads_(detail::resolve_thread_count(config.threads)),
      batch_max_(std::clamp(config.batch_max, 1, BatchedBallExecutor::kMaxBatch)),
      target_(std::make_shared<const ServeTarget>(std::move(target))),
      cache_(config.cache) {
  workers_.reserve(static_cast<std::size_t>(threads_));
  for (int w = 0; w < threads_; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

QueryService::~QueryService() { drain_and_stop(); }

std::shared_ptr<const ServeTarget> QueryService::current_target() const {
  std::lock_guard lock(target_mu_);
  return target_;
}

NodeIndex QueryService::node_count() const {
  return current_target()->instance->node_count();
}

Admission QueryService::submit(std::uint64_t request_id, std::int64_t node,
                               std::function<void(const QueryResult&)> done) {
  {
    std::lock_guard lock(mu_);
    if (draining_ || stop_) {
      std::lock_guard slock(stats_mu_);
      ++counters_.shed;
      return Admission::Stopped;
    }
    if (queue_.size() >= config_.queue_capacity) {
      std::lock_guard slock(stats_mu_);
      ++counters_.shed;
      return Admission::Shed;
    }
    Request req;
    req.id = request_id;
    req.node = node;
    req.done = std::move(done);
    req.enqueued = std::chrono::steady_clock::now();
    queue_.push_back(std::move(req));
  }
  not_empty_.notify_one();
  {
    std::lock_guard slock(stats_mu_);
    ++counters_.accepted;
  }
  return Admission::Accepted;
}

void QueryService::swap_target(ServeTarget next) {
  auto holder = std::make_shared<const ServeTarget>(std::move(next));
  {
    std::lock_guard lock(target_mu_);
    target_ = std::move(holder);
  }
  // No explicit cache invalidation: the next batch binds the cache to the
  // new view, and bind() invalidates on the token change.  A swap to a view
  // with the *same* token (a copy sharing the mapping) correctly keeps every
  // warm entry.
  std::lock_guard slock(stats_mu_);
  ++counters_.swaps;
}

void QueryService::drain_and_stop() {
  {
    std::unique_lock lock(mu_);
    draining_ = true;
    idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
    stop_ = true;
  }
  not_empty_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

ServeCounters QueryService::counters() const {
  std::lock_guard lock(stats_mu_);
  return counters_;
}

std::vector<std::int64_t> QueryService::latencies_ns() const {
  std::lock_guard lock(stats_mu_);
  return latencies_;
}

stats::Summary QueryService::latency_summary() const {
  std::vector<double> values;
  {
    std::lock_guard lock(stats_mu_);
    values.assign(latencies_.begin(), latencies_.end());
  }
  return stats::summarize(std::move(values));
}

void QueryService::finish(Request& req, QueryResult result,
                          std::vector<std::int64_t>& local_latencies) {
  result.request_id = req.id;
  result.node = req.node;
  result.latency_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - req.enqueued)
                          .count();
  local_latencies.push_back(result.latency_ns);
  if (req.done) req.done(result);
}

void QueryService::worker_loop() {
  ExecutionScratch scratch;
  BatchedBallExecutor exec;
  StorageToken exec_token = kAnonymousStorage;
  bool exec_bound = false;
  std::vector<Request> batch;
  std::vector<std::int64_t> local_latencies;
  NodeIndex centers[BatchedBallExecutor::kMaxBatch];
  std::size_t slot_of[BatchedBallExecutor::kMaxBatch];

  const bool use_cache = config_.cache.policy == CachePolicy::Shared;

  while (true) {
    batch.clear();
    {
      std::unique_lock lock(mu_);
      not_empty_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      const std::size_t take =
          std::min(queue_.size(), static_cast<std::size_t>(batch_max_));
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      in_flight_ += take;
    }

    // Snapshot the target for this whole batch: a concurrent swap_target
    // cannot pull the mapping out from under us, and every request in the
    // batch is answered against one consistent instance.
    const std::shared_ptr<const ServeTarget> target = current_target();
    const ErasedInstance& inst = *target->instance;
    const GraphView g = inst.graph();
    const NodeIndex n = g.node_count();
    scratch.reserve(n);
    ViewCache* cache = use_cache ? &cache_ : nullptr;
    if (cache != nullptr) cache->bind(g);

    local_latencies.clear();
    std::int64_t local_invalid = 0;

    if (target->plan.batchable()) {
      // The fused path, mirroring ParallelRunner::run_batched_balls: serve
      // full cache hits, run the misses as one wave-synchronous expansion,
      // store completed expansions at the epoch captured before the batch.
      if (!exec_bound || exec_token != g.storage_identity() ||
          exec_token == kAnonymousStorage) {
        exec.bind(g);
        exec_token = g.storage_identity();
        exec_bound = true;
      }
      const std::uint64_t epoch = cache != nullptr ? cache->epoch() : 0;
      int b = 0;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        Request& req = batch[i];
        if (req.node < 0 || req.node >= static_cast<std::int64_t>(n)) {
          QueryResult result;
          result.status = QueryStatus::InvalidNode;
          ++local_invalid;
          finish(req, result, local_latencies);
          continue;
        }
        const auto center = static_cast<NodeIndex>(req.node);
        if (cache != nullptr) {
          BallCosts costs;
          if (cache->serve_costs(g, center, target->plan.radius, &costs)) {
            QueryResult result;
            result.label = static_cast<int>(costs.volume);
            result.volume = costs.volume;
            result.distance = costs.distance;
            result.queries = costs.queries;
            finish(req, result, local_latencies);
            continue;
          }
        }
        centers[b] = center;
        slot_of[b] = i;
        ++b;
      }
      if (b > 0) {
        exec.run({centers, static_cast<std::size_t>(b)}, target->plan.radius);
        for (int s = 0; s < b; ++s) {
          QueryResult result;
          result.label = static_cast<int>(exec.volume(s));
          result.volume = exec.volume(s);
          result.distance = exec.distance(s);
          result.queries = exec.queries(s);
          finish(batch[slot_of[s]], result, local_latencies);
        }
        if (cache != nullptr) {
          // exec_token is the storage identity of the snapshotted target;
          // store() drops these balls if a hot swap re-bound the cache after
          // we captured the epoch (entry tokens cover the residual window).
          for (int s = 0; s < b; ++s) {
            cache->store(centers[s], exec.take_ball(s), epoch, exec_token);
          }
        }
      }
    } else {
      // Per-request path: the family's own solve() on a plain Execution —
      // by definition the offline per-start loop's answer.
      for (Request& req : batch) {
        QueryResult result;
        if (req.node < 0 || req.node >= static_cast<std::int64_t>(n)) {
          result.status = QueryStatus::InvalidNode;
          ++local_invalid;
        } else {
          Execution e(g, inst.ids(), static_cast<NodeIndex>(req.node), 0, scratch);
          if (cache != nullptr) e.attach_view_cache(cache);
          result.label = inst.solve(e);
          result.volume = e.volume();
          result.distance = e.distance();
          result.queries = e.query_count();
        }
        finish(req, result, local_latencies);
      }
    }

    {
      std::lock_guard slock(stats_mu_);
      counters_.completed += static_cast<std::int64_t>(batch.size());
      counters_.invalid += local_invalid;
      latencies_.insert(latencies_.end(), local_latencies.begin(),
                        local_latencies.end());
    }
    {
      std::lock_guard lock(mu_);
      in_flight_ -= batch.size();
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace volcal::serve
