#include "serve/query_service.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "runtime/batched_execution.hpp"
#include "runtime/execution.hpp"
#include "runtime/parallel_runner.hpp"

namespace volcal::serve {

namespace {

// Bound on the sliding-window sample ring.  At 2^16 completions the window
// covers the newest 65536 requests — more than stats_window_seconds of
// traffic at any rate the percentiles are meaningful for.
constexpr std::size_t kWindowRingCapacity = std::size_t{1} << 16;

// Certification radius apply_mutations uses for solver-driven (non-batchable)
// families when the caller passes -1: the cache can hold balls of any depth
// the solver explored, so the bound must cover every plausible exploration
// depth.  64 is far past the O(log n) depths the registry families reach at
// servable sizes while keeping the BFS cheap.
constexpr std::int64_t kDefaultMutationRadius = 64;

}  // namespace

ServeTarget make_serve_target(std::shared_ptr<const ErasedInstance> instance) {
  ServeTarget target;
  const RegistryEntry* entry =
      instance ? ProblemRegistry::global().find(instance->family()) : nullptr;
  target.plan = entry != nullptr ? entry->plan : ProbePlan::independent();
  target.instance = std::move(instance);
  return target;
}

QueryService::QueryService(ServeTarget target, ServeConfig config)
    : config_(config),
      threads_(detail::resolve_thread_count(config.threads)),
      batch_max_(std::clamp(config.batch_max, 1, BatchedBallExecutor::kMaxBatch)),
      start_(std::chrono::steady_clock::now()),
      target_(std::make_shared<const ServeTarget>(std::move(target))),
      cache_(config.cache) {
  c_accepted_ = metrics_.counter("serve.accepted");
  c_completed_ = metrics_.counter("serve.completed");
  c_shed_ = metrics_.counter("serve.shed");
  c_invalid_ = metrics_.counter("serve.invalid");
  c_swaps_ = metrics_.counter("serve.swaps");
  c_batches_ = metrics_.counter("serve.batched_runs");
  c_waves_ = metrics_.counter("serve.waves");
  c_batched_starts_ = metrics_.counter("serve.batched_starts");
  c_cache_hit_serves_ = metrics_.counter("serve.cache_hit_serves");
  c_slow_ = metrics_.counter("serve.slow_queries");
  c_mutations_ = metrics_.counter("serve.mutations");
  c_mut_evicted_ = metrics_.counter("serve.mutate.cache_evicted");
  c_mut_retained_ = metrics_.counter("serve.mutate.cache_retained");
  h_latency_us_ = metrics_.histogram("serve.latency_us");
  // Live levels: evaluated at snapshot time.  The callbacks take mu_ (or the
  // cache's shard state) *after* the registry mutex — nothing in the service
  // takes those locks and then re-enters the registry, so the order is safe.
  metrics_.gauge_fn("serve.queue_depth",
                    [this] { return static_cast<std::int64_t>(queue_depth()); });
  metrics_.gauge_fn("serve.in_flight",
                    [this] { return static_cast<std::int64_t>(in_flight()); });
  metrics_.gauge_fn("serve.cache.hits", [this] { return cache_.stats().hits; });
  metrics_.gauge_fn("serve.cache.misses", [this] { return cache_.stats().misses; });
  metrics_.gauge_fn("serve.cache.evictions",
                    [this] { return cache_.stats().evictions; });
  metrics_.gauge_fn("serve.cache.served_nodes",
                    [this] { return cache_.stats().served_nodes; });
  metrics_.gauge_fn("serve.cache.inserted_bytes",
                    [this] { return cache_.stats().inserted_bytes; });
  workers_.reserve(static_cast<std::size_t>(threads_));
  for (int w = 0; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

QueryService::~QueryService() { drain_and_stop(); }

std::shared_ptr<const ServeTarget> QueryService::current_target() const {
  std::lock_guard lock(target_mu_);
  return target_;
}

std::shared_ptr<const ServeTarget> QueryService::snapshot_target_and_bind(
    ViewCache* cache) {
  std::lock_guard lock(target_mu_);
  if (cache != nullptr) cache->bind(target_->instance->graph());
  return target_;
}

NodeIndex QueryService::node_count() const {
  return current_target()->instance->node_count();
}

Admission QueryService::submit(std::uint64_t request_id, std::int64_t node,
                               std::function<void(const QueryResult&)> done) {
  {
    std::lock_guard lock(mu_);
    if (draining_ || stop_) {
      c_shed_->inc();
      return Admission::Stopped;
    }
    if (queue_.size() >= config_.queue_capacity) {
      c_shed_->inc();
      return Admission::Shed;
    }
    Request req;
    req.id = request_id;
    req.node = node;
    req.done = std::move(done);
    req.enqueued = std::chrono::steady_clock::now();
    req.seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    // Bump accepted before the request becomes poppable: once the lock drops
    // a worker may run the whole request, and a completion must never be
    // observable before its admission (stats readers check completed <=
    // accepted).
    c_accepted_->inc();
    queue_.push_back(std::move(req));
  }
  not_empty_.notify_one();
  return Admission::Accepted;
}

void QueryService::swap_target(ServeTarget next) {
  auto holder = std::make_shared<const ServeTarget>(std::move(next));
  {
    std::lock_guard lock(target_mu_);
    target_ = std::move(holder);
  }
  // No explicit cache invalidation: the next batch binds the cache to the
  // new view, and bind() invalidates on the token change.  A swap to a view
  // with the *same* token (a copy sharing the mapping) correctly keeps every
  // warm entry.
  c_swaps_->inc();
}

MutationOutcome QueryService::apply_mutations(const MutationBatch& batch,
                                              std::int64_t max_radius) {
  MutationOutcome out;
  const auto t0 = std::chrono::steady_clock::now();
  // One critical section covers mutate + invalidate + swap: workers snapshot
  // the target and bind the cache under the same mutex
  // (snapshot_target_and_bind), so no wave can bind to the new graph before
  // the region invalidation has re-stamped the surviving entries — the
  // token-change full flush inside bind() never fires on a mutation.
  std::lock_guard lock(target_mu_);
  const std::shared_ptr<const ServeTarget> old = target_;
  std::vector<NodeIndex> touched;
  std::shared_ptr<const ErasedInstance> next;
  try {
    next = std::make_shared<const ErasedInstance>(
        old->instance->mutated(batch, &touched));
  } catch (const std::invalid_argument& e) {
    out.error = e.what();
    return out;
  }
  if (config_.cache.policy == CachePolicy::Shared) {
    std::int64_t radius = max_radius;
    if (radius < 0) {
      radius = old->plan.batchable() ? old->plan.radius : kDefaultMutationRadius;
    }
    const ViewCache::RegionInvalidation inv = cache_.invalidate_region(
        old->instance->graph(), touched, radius, next->graph().storage_identity());
    out.cache_evicted = inv.evicted;
    out.cache_retained = inv.retained;
    out.flushed = inv.fell_back_to_flush;
  }
  auto holder = std::make_shared<const ServeTarget>(
      ServeTarget{std::move(next), old->plan});
  target_ = std::move(holder);
  c_swaps_->inc();
  c_mutations_->inc();
  c_mut_evicted_->inc(static_cast<std::int64_t>(out.cache_evicted));
  c_mut_retained_->inc(static_cast<std::int64_t>(out.cache_retained));
  out.apply_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  out.ok = true;
  return out;
}

void QueryService::drain_and_stop() {
  {
    std::unique_lock lock(mu_);
    draining_ = true;
    idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
    stop_ = true;
  }
  not_empty_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

ServeCounters QueryService::counters() const {
  ServeCounters out;
  // Read completed before accepted: the reads race with live traffic, and a
  // request finishing between them then skews accepted high — the harmless
  // direction, since every completion was an admission first.  The reverse
  // order could snapshot completed > accepted, which readers rightly treat
  // as impossible.
  out.completed = c_completed_->value();
  out.invalid = c_invalid_->value();
  out.shed = c_shed_->value();
  out.swaps = c_swaps_->value();
  out.accepted = c_accepted_->value();
  return out;
}

std::vector<std::int64_t> QueryService::latencies_ns() const {
  std::lock_guard lock(stats_mu_);
  return latencies_;
}

stats::Summary QueryService::latency_summary() const {
  std::vector<double> values;
  {
    std::lock_guard lock(stats_mu_);
    values.assign(latencies_.begin(), latencies_.end());
  }
  return stats::summarize(std::move(values));
}

stats::Summary QueryService::window_latency_summary() const {
  const std::int64_t now_ns = since_start_ns(std::chrono::steady_clock::now());
  const auto span_ns =
      static_cast<std::int64_t>(config_.stats_window_seconds * 1e9);
  const std::int64_t cutoff = now_ns - span_ns;
  std::vector<double> values;
  {
    std::lock_guard lock(stats_mu_);
    values.reserve(window_ring_.size());
    for (const LatencySample& s : window_ring_) {
      if (s.done_ns >= cutoff) values.push_back(static_cast<double>(s.latency_ns));
    }
  }
  return stats::summarize(std::move(values));
}

std::size_t QueryService::queue_depth() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

std::size_t QueryService::in_flight() const {
  std::lock_guard lock(mu_);
  return in_flight_;
}

double QueryService::uptime_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
      .count();
}

std::vector<SlowQuery> QueryService::slow_queries() const {
  std::lock_guard lock(slow_mu_);
  return {slow_.begin(), slow_.end()};
}

namespace {

void append_summary(std::string& out, const char* key, const stats::Summary& s) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "\"%s\": {\"count\": %zu, \"p50_ns\": %.0f, \"p95_ns\": %.0f"
                ", \"p99_ns\": %.0f, \"mean_ns\": %.1f, \"max_ns\": %.0f}",
                key, s.count, s.median, s.p95, s.p99, s.mean, s.max);
  out += buf;
}

}  // namespace

std::string QueryService::stats_json() const {
  const double uptime = uptime_seconds();
  const std::size_t depth = queue_depth();
  const std::size_t inflight = in_flight();
  const ServeCounters c = counters();
  // Both latency views under one lock hold: read separately, a batch landing
  // between the reads could give the window more samples than "since start"
  // claims to have — an impossible state for consumers that cross-check the
  // two (check_artifacts.py does).
  std::vector<double> lat_values, win_values;
  {
    const std::int64_t now_ns = since_start_ns(std::chrono::steady_clock::now());
    const std::int64_t cutoff =
        now_ns - static_cast<std::int64_t>(config_.stats_window_seconds * 1e9);
    std::lock_guard lock(stats_mu_);
    lat_values.assign(latencies_.begin(), latencies_.end());
    win_values.reserve(window_ring_.size());
    for (const LatencySample& s : window_ring_) {
      if (s.done_ns >= cutoff) win_values.push_back(static_cast<double>(s.latency_ns));
    }
  }
  const stats::Summary lat = stats::summarize(std::move(lat_values));
  const stats::Summary win = stats::summarize(std::move(win_values));
  const CacheStats cache = cache_.stats();
  const std::int64_t waves = c_waves_->value();
  const std::int64_t batched_runs = c_batches_->value();
  const std::int64_t batched_starts = c_batched_starts_->value();

  std::string out;
  out.reserve(4096);
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\"kind\": \"serve-stats\", \"schema_version\": 1"
                ", \"uptime_seconds\": %.6f, \"queue_depth\": %zu"
                ", \"in_flight\": %zu, \"accepted\": %" PRId64
                ", \"completed\": %" PRId64 ", \"shed\": %" PRId64
                ", \"invalid\": %" PRId64 ", \"swaps\": %" PRId64
                ", \"slow_queries\": %" PRId64 ", ",
                uptime, depth, inflight, c.accepted, c.completed, c.shed,
                c.invalid, c.swaps, c_slow_->value());
  out += buf;
  append_summary(out, "latency", lat);
  out += ", \"window\": {";
  std::snprintf(buf, sizeof buf, "\"seconds\": %.3f, ",
                config_.stats_window_seconds);
  out += buf;
  append_summary(out, "latency", win);
  out += "}, ";
  std::snprintf(buf, sizeof buf,
                "\"cache\": {\"hits\": %" PRId64 ", \"misses\": %" PRId64
                ", \"evictions\": %" PRId64 ", \"served_nodes\": %" PRId64
                ", \"inserted_bytes\": %" PRId64 "}, ",
                cache.hits, cache.misses, cache.evictions, cache.served_nodes,
                cache.inserted_bytes);
  out += buf;
  const double occupancy =
      batched_runs > 0
          ? static_cast<double>(batched_starts) / static_cast<double>(batched_runs)
          : 0.0;
  std::snprintf(buf, sizeof buf,
                "\"batch\": {\"waves\": %" PRId64 ", \"batched_runs\": %" PRId64
                ", \"batched_starts\": %" PRId64 ", \"batch_max\": %d"
                ", \"mean_occupancy\": %.3f}, \"metrics\": ",
                waves, batched_runs, batched_starts, batch_max_, occupancy);
  out += buf;
  metrics_.snapshot().append_json(out);
  out += '}';
  return out;
}

void QueryService::finish(Request& req, QueryResult result,
                          const FinishContext& ctx,
                          std::vector<LatencySample>& local_samples) {
  result.request_id = req.id;
  result.node = req.node;
  const auto now = std::chrono::steady_clock::now();
  result.latency_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          now - req.enqueued)
                          .count();
  local_samples.push_back({since_start_ns(now), result.latency_ns});
  const bool invalid = result.status == QueryStatus::InvalidNode;
  c_completed_->inc();
  if (invalid) c_invalid_->inc();
  if (ctx.cache_hit) c_cache_hit_serves_->inc();
  h_latency_us_->add(result.latency_ns / 1000);
  if (ctx.volume_hist != nullptr && !invalid) {
    ctx.volume_hist->add(result.volume);
  }
  if (config_.slow_threshold_ns >= 0 &&
      result.latency_ns >= config_.slow_threshold_ns) {
    c_slow_->inc();
    SlowQuery q;
    q.seq = req.seq;
    q.client_id = req.id;
    q.node = req.node;
    q.wave = ctx.wave;
    q.latency_ns = result.latency_ns;
    q.volume = result.volume;
    q.cache_hit = ctx.cache_hit;
    q.invalid = invalid;
    std::lock_guard lock(slow_mu_);
    slow_.push_back(q);
    while (slow_.size() > config_.slow_log_capacity) slow_.pop_front();
  }
  if (req.done) req.done(result);
  if (config_.tracer != nullptr) {
    // done_ns stamps *after* the callback so the "write" slice covers the
    // response write; latency_ns keeps the repo-wide enqueue->dispatch
    // definition.
    RequestSpan span;
    span.seq = req.seq;
    span.client_id = req.id;
    span.node = req.node;
    span.worker = ctx.worker;
    span.wave = ctx.wave;
    span.admit_ns = config_.tracer->to_ns(req.enqueued);
    span.dequeue_ns = config_.tracer->to_ns(ctx.dequeued);
    span.exec_end_ns = config_.tracer->to_ns(ctx.exec_end);
    span.done_ns = config_.tracer->now_ns();
    span.volume = result.volume;
    span.latency_ns = result.latency_ns;
    span.cache_hit = ctx.cache_hit;
    span.invalid = invalid;
    config_.tracer->record(span);
  }
}

void QueryService::worker_loop(int worker) {
  ExecutionScratch scratch;
  BatchedBallExecutor exec;
  StorageToken exec_token = kAnonymousStorage;
  bool exec_bound = false;
  std::vector<Request> batch;
  std::vector<LatencySample> local_samples;
  NodeIndex centers[BatchedBallExecutor::kMaxBatch];
  std::size_t slot_of[BatchedBallExecutor::kMaxBatch];
  // Per-family volume histogram handle, re-resolved only when the served
  // family changes (i.e. across a hot swap) — lookups take the registry
  // mutex, so keep them off the per-wave path.
  std::string volume_family;
  obs::Histogram* volume_hist = nullptr;

  const bool use_cache = config_.cache.policy == CachePolicy::Shared;

  while (true) {
    batch.clear();
    {
      std::unique_lock lock(mu_);
      not_empty_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      const std::size_t take =
          std::min(queue_.size(), static_cast<std::size_t>(batch_max_));
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      in_flight_ += take;
    }
    c_waves_->inc();

    // Snapshot the target for this whole batch: a concurrent swap_target
    // cannot pull the mapping out from under us, and every request in the
    // batch is answered against one consistent instance.  Binding the cache
    // happens inside the same target_mu_ hold — see snapshot_target_and_bind.
    ViewCache* cache = use_cache ? &cache_ : nullptr;
    const std::shared_ptr<const ServeTarget> target = snapshot_target_and_bind(cache);
    const ErasedInstance& inst = *target->instance;
    const GraphView g = inst.graph();
    const NodeIndex n = g.node_count();
    scratch.reserve(n);

    if (inst.family() != volume_family) {
      volume_family = inst.family();
      volume_hist = metrics_.histogram("serve.volume." + volume_family);
    }

    FinishContext ctx;
    ctx.worker = worker;
    ctx.wave = wave_.fetch_add(1, std::memory_order_relaxed) + 1;
    ctx.dequeued = std::chrono::steady_clock::now();
    ctx.volume_hist = volume_hist;

    local_samples.clear();

    if (target->plan.batchable()) {
      // The fused path, mirroring ParallelRunner::run_batched_balls: serve
      // full cache hits, run the misses as one wave-synchronous expansion,
      // store completed expansions at the epoch captured before the batch.
      if (!exec_bound || exec_token != g.storage_identity() ||
          exec_token == kAnonymousStorage) {
        exec.bind(g);
        exec_token = g.storage_identity();
        exec_bound = true;
      }
      const std::uint64_t epoch = cache != nullptr ? cache->epoch() : 0;
      int b = 0;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        Request& req = batch[i];
        if (req.node < 0 || req.node >= static_cast<std::int64_t>(n)) {
          QueryResult result;
          result.status = QueryStatus::InvalidNode;
          ctx.cache_hit = false;
          ctx.exec_end = std::chrono::steady_clock::now();
          finish(req, result, ctx, local_samples);
          continue;
        }
        const auto center = static_cast<NodeIndex>(req.node);
        if (cache != nullptr) {
          BallCosts costs;
          if (cache->serve_costs(g, center, target->plan.radius, &costs)) {
            QueryResult result;
            result.label = static_cast<int>(costs.volume);
            result.volume = costs.volume;
            result.distance = costs.distance;
            result.queries = costs.queries;
            // A cache hit's execute slice collapses to its triage instant.
            ctx.cache_hit = true;
            ctx.exec_end = std::chrono::steady_clock::now();
            finish(req, result, ctx, local_samples);
            continue;
          }
        }
        centers[b] = center;
        slot_of[b] = i;
        ++b;
      }
      ctx.cache_hit = false;
      if (b > 0) {
        exec.run({centers, static_cast<std::size_t>(b)}, target->plan.radius);
        c_batches_->inc();
        c_batched_starts_->inc(b);
        ctx.exec_end = std::chrono::steady_clock::now();
        for (int s = 0; s < b; ++s) {
          QueryResult result;
          result.label = static_cast<int>(exec.volume(s));
          result.volume = exec.volume(s);
          result.distance = exec.distance(s);
          result.queries = exec.queries(s);
          finish(batch[slot_of[s]], result, ctx, local_samples);
        }
        if (cache != nullptr) {
          // exec_token is the storage identity of the snapshotted target;
          // store() drops these balls if a hot swap re-bound the cache after
          // we captured the epoch (entry tokens cover the residual window).
          for (int s = 0; s < b; ++s) {
            cache->store(centers[s], exec.take_ball(s), epoch, exec_token);
          }
        }
      }
    } else {
      // Per-request path: the family's own solve() on a plain Execution —
      // by definition the offline per-start loop's answer.
      ctx.cache_hit = false;
      for (Request& req : batch) {
        QueryResult result;
        if (req.node < 0 || req.node >= static_cast<std::int64_t>(n)) {
          result.status = QueryStatus::InvalidNode;
        } else {
          Execution e(g, inst.ids(), static_cast<NodeIndex>(req.node), 0, scratch);
          if (cache != nullptr) e.attach_view_cache(cache);
          result.label = inst.solve(e);
          result.volume = e.volume();
          result.distance = e.distance();
          result.queries = e.query_count();
        }
        ctx.exec_end = std::chrono::steady_clock::now();
        finish(req, result, ctx, local_samples);
      }
    }

    {
      std::lock_guard slock(stats_mu_);
      latencies_.reserve(latencies_.size() + local_samples.size());
      for (const LatencySample& s : local_samples) {
        latencies_.push_back(s.latency_ns);
        if (window_ring_.size() < kWindowRingCapacity) {
          window_ring_.push_back(s);
        } else {
          window_ring_[window_next_] = s;
          window_next_ = (window_next_ + 1) % kWindowRingCapacity;
        }
      }
    }
    {
      std::lock_guard lock(mu_);
      in_flight_ -= batch.size();
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace volcal::serve
