// Per-request tracing for the query service.
//
// The service mints a monotone sequence number for every accepted request at
// admission and, when a ServeTracer is attached (ServeConfig::tracer —
// volcal_serve --trace-serve), records one RequestSpan per completed
// request: the admission → queue → wave → execute → write timeline, the
// request's ball volume, and its cache outcome.  Spans export to the Chrome
// trace_event format (chrome://tracing / Perfetto), one lane per worker,
// three "X" slices per request:
//
//   queue    admit -> dequeue     time spent in the admission queue
//   execute  dequeue -> exec end  wave execution (fused requests in one
//                                 wave share the wave's execute window;
//                                 cache hits collapse to their triage
//                                 instant)
//   write    exec end -> done     completion callback (response write)
//
// Args carry {seq, id, node, wave, volume, cache_hit} so a slow span can be
// attributed to a hot ball or a cold cache directly in the viewer.
//
// The slow-query log is the always-cheap sibling: requests whose latency
// meets ServeConfig::slow_threshold_ns are recorded in a bounded ring
// (newest kept) with the same attribution fields, written as JSONL by
// volcal_serve --slow-log.  Both collectors are bounded — a long-running
// server cannot grow them without limit (the tracer counts what it drops).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace volcal::serve {

// One request's life through the service; timestamps are nanoseconds since
// the tracer's epoch (its construction).
struct RequestSpan {
  std::uint64_t seq = 0;        // service-minted admission sequence number
  std::uint64_t client_id = 0;  // client-chosen request_id
  std::int64_t node = 0;
  int worker = -1;
  std::uint64_t wave = 0;  // service-wide wave (batch) sequence number
  std::int64_t admit_ns = 0;
  std::int64_t dequeue_ns = 0;
  std::int64_t exec_end_ns = 0;
  std::int64_t done_ns = 0;
  std::int64_t volume = 0;
  std::int64_t latency_ns = 0;
  bool cache_hit = false;
  bool invalid = false;
};

// Thread-safe bounded span collector.  record() past capacity drops the
// span and counts it — tracing must never become the service's memory leak.
class ServeTracer {
 public:
  explicit ServeTracer(std::size_t capacity = std::size_t{1} << 20)
      : epoch_(std::chrono::steady_clock::now()), capacity_(capacity) {}

  ServeTracer(const ServeTracer&) = delete;
  ServeTracer& operator=(const ServeTracer&) = delete;

  std::int64_t to_ns(std::chrono::steady_clock::time_point tp) const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(tp - epoch_).count();
  }
  std::int64_t now_ns() const { return to_ns(std::chrono::steady_clock::now()); }

  void record(const RequestSpan& span) {
    std::lock_guard lock(mu_);
    if (spans_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    spans_.push_back(span);
  }

  std::vector<RequestSpan> spans() const {
    std::lock_guard lock(mu_);
    return spans_;
  }

  std::int64_t dropped() const {
    std::lock_guard lock(mu_);
    return dropped_;
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<RequestSpan> spans_;
  std::int64_t dropped_ = 0;
};

// One slow-query record (latency >= ServeConfig::slow_threshold_ns).
struct SlowQuery {
  std::uint64_t seq = 0;
  std::uint64_t client_id = 0;
  std::int64_t node = 0;
  std::uint64_t wave = 0;
  std::int64_t latency_ns = 0;
  std::int64_t volume = 0;
  bool cache_hit = false;
  bool invalid = false;
};

// Chrome trace_event export of collected spans (queue/execute/write slices
// per request, tid = worker).
bool write_serve_chrome_trace(const std::string& path,
                              std::span<const RequestSpan> spans);

// JSONL export of the slow-query log, one record per line.
bool write_slow_query_log(const std::string& path, std::span<const SlowQuery> slow);

}  // namespace volcal::serve
