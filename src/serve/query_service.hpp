// QueryService — the long-running concurrent query core behind volcal_serve.
//
// The offline engine (ParallelRunner) answers "label every node" sweeps; the
// service answers the online form of the same question: per-node label
// queries arriving one at a time, from many clients, against a loaded
// instance (typically a .vsnap mapping).  Three properties carry over from
// the sweep engine, by construction:
//
//   * Bit-identical answers.  The batched path below mirrors
//     ParallelRunner::run_batched_balls query-for-query (cache full hits via
//     serve_costs, misses fused into one BatchedBallExecutor run, completed
//     expansions stored back at the captured epoch); the basic path runs the
//     family's solve() on a plain Execution.  Either way a served label
//     equals the offline run_at_all_nodes output for that node — volcal_load
//     --verify asserts this end to end.
//
//   * Exact cost meters.  Each result carries the volume / distance /
//     query-count the paper's Definitions 2.1-2.2 assign to that start,
//     cache or no cache.
//
//   * Safe hot swap.  swap_target() atomically replaces the served instance;
//     in-flight batches finish against the target they snapshotted (the
//     shared_ptr keeps the old mapping alive until the last batch drops it),
//     new batches bind the cache to the new view.  Because cache identity is
//     the storage *token* (graph_view.hpp) — never an address — a new
//     snapshot mmap'ed at a recycled address cannot be served stale balls
//     (the pointer-ABA case this PR's regression tests pin).
//
// Admission control: a bounded FIFO queue.  submit() returns Shed when the
// queue is full (the caller answers with retry_after_ms) and Stopped once
// draining — accepted requests are never dropped.  drain_and_stop() stops
// admission, waits for the queue and all in-flight batches to finish (every
// accepted callback has run by return), then joins the workers.
//
// Threading: `threads` workers pop up to `batch_max` requests at a time;
// completion callbacks run on worker threads and must be fast and
// thread-safe (the socket layer serializes per-connection writes).  Latency
// is measured enqueue -> callback-dispatch per request and summarized with
// stats::summarize (nearest-rank p50/p95/p99, same definition everywhere in
// this repo).
//
// Observability: every counter lives in the service's obs::MetricsRegistry
// (per-thread sharded atomics — the query path bumps them without taking a
// lock), readable at any moment via metrics() or as one JSON snapshot via
// stats_json(): uptime, queue depth, in-flight, admission counters, exact
// since-start latency percentiles, windowed percentiles over the last
// stats_window_seconds, cache counters, wave/batch occupancy, and the
// per-family volume histograms ("serve.volume.<family>").  The transport
// answers the protocol's Stats frame with exactly this snapshot.  Optional
// per-request spans (ServeConfig::tracer) and a bounded slow-query log
// (slow_threshold_ns) attribute tail latency to specific requests.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "lcl/registry.hpp"
#include "obs/registry.hpp"
#include "plan/probe_plan.hpp"
#include "runtime/view_cache.hpp"
#include "serve/protocol.hpp"
#include "serve/trace.hpp"
#include "stats/growth.hpp"

namespace volcal::serve {

// What the service answers queries against: a loaded instance plus the
// family's probe plan (the registry's plan for the instance's family —
// batchable plans take the fused multi-start path).  The shared_ptr is the
// hot-swap unit: workers snapshot it per batch, so an old target's mapping
// stays alive exactly until the last batch against it completes.
struct ServeTarget {
  std::shared_ptr<const ErasedInstance> instance;
  ProbePlan plan = ProbePlan::independent();
};

// Builds a ServeTarget from an instance by looking the family's plan up in
// the global registry (IndependentStarts when the family is unknown).
ServeTarget make_serve_target(std::shared_ptr<const ErasedInstance> instance);

struct ServeConfig {
  // Worker threads; 0 resolves like the sweep engine (VOLCAL_THREADS, else 1).
  int threads = 0;
  // Bounded admission queue; submits beyond this are shed.
  std::size_t queue_capacity = 1024;
  // Requests a worker pops per wave, clamped to [1, BatchedBallExecutor::
  // kMaxBatch] (the visited-mask width of the fused backend).
  int batch_max = 64;
  // Advisory retry hint attached to shed responses.
  std::uint32_t retry_after_ms = 50;
  // Cross-request ball cache (policy Shared to enable; Off serves uncached).
  CacheConfig cache;
  // Sliding window for the windowed percentiles in stats_json().
  double stats_window_seconds = 10.0;
  // Slow-query log: completed requests with latency_ns >= slow_threshold_ns
  // are kept (newest slow_log_capacity of them); < 0 disables the log.
  std::int64_t slow_threshold_ns = -1;
  std::size_t slow_log_capacity = 1024;
  // Optional per-request span collection (caller-owned, must outlive the
  // service); see serve/trace.hpp.
  ServeTracer* tracer = nullptr;
};

// Outcome of one applied MutationBatch (apply_mutations).  On success the
// service is serving the mutated instance and the cache counters say how the
// radius-bounded invalidation went; on failure (`ok == false`) the batch was
// rejected before any state changed and `error` carries the reason.
struct MutationOutcome {
  bool ok = false;
  std::string error;
  std::size_t cache_evicted = 0;
  std::size_t cache_retained = 0;
  bool flushed = false;  // invalidation fell back to the full flush
  std::int64_t apply_ns = 0;
};

// One answered query; `status == InvalidNode` leaves label/meters zero.
struct QueryResult {
  std::uint64_t request_id = 0;
  std::int64_t node = 0;
  int label = 0;
  std::int64_t volume = 0;
  std::int64_t distance = 0;
  std::int64_t queries = 0;
  std::int64_t latency_ns = 0;
  QueryStatus status = QueryStatus::Ok;
};

enum class Admission {
  Accepted,  // callback will run exactly once
  Shed,      // queue full — retry after ServeConfig::retry_after_ms
  Stopped,   // draining/stopped — no retry
};

// Monotonic counter snapshot (swaps counts completed swap_target calls).
// The live values are registry counters ("serve.accepted", ...); this struct
// is the point-in-time read counters() returns.
struct ServeCounters {
  std::int64_t accepted = 0;
  std::int64_t completed = 0;
  std::int64_t shed = 0;
  std::int64_t invalid = 0;
  std::int64_t swaps = 0;
};

class QueryService {
 public:
  QueryService(ServeTarget target, ServeConfig config);
  ~QueryService();  // drains if the caller has not

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Enqueues one query.  On Accepted, `done` runs exactly once, on a worker
  // thread, before drain_and_stop() returns.  On Shed/Stopped, `done` never
  // runs (the transport answers with a Shed frame).
  Admission submit(std::uint64_t request_id, std::int64_t node,
                   std::function<void(const QueryResult&)> done);

  // Atomically replaces the served target.  In-flight batches complete
  // against the old target; the old mapping is released when its last
  // holder drops it.  Safe under full load.
  void swap_target(ServeTarget next);

  // Applies `batch` to the served instance copy-on-write and swaps the
  // mutated instance in, invalidating only the cache entries the mutation
  // can reach: entries whose center is within their cached depth of a
  // touched node (ViewCache::invalidate_region) are evicted, everything
  // farther away stays warm.  In-flight waves finish against the old target
  // exactly as under swap_target — the old mapping outlives its last batch.
  //
  // `max_radius` bounds the certification BFS; -1 resolves automatically
  // (the plan radius for batchable families, a generous fixed bound for
  // solver-driven ones).  An invalid batch (bad rewire, unsupported label
  // channel) is rejected whole: `ok == false`, the served target and the
  // cache are untouched.  Safe under full load and from any thread; calls
  // serialize with each other and with swap_target.
  MutationOutcome apply_mutations(const MutationBatch& batch,
                                  std::int64_t max_radius = -1);

  // Stops admission, completes every accepted request, joins the workers.
  // Idempotent; submit() returns Stopped from the moment this starts.
  void drain_and_stop();

  int threads() const { return threads_; }
  const ServeConfig& config() const { return config_; }
  NodeIndex node_count() const;

  ServeCounters counters() const;
  CacheStats cache_stats() const { return cache_.stats(); }

  // Enqueue->completion latencies of every completed request, and their
  // nearest-rank summary.  Snapshot under lock; callable at any time.
  std::vector<std::int64_t> latencies_ns() const;
  stats::Summary latency_summary() const;
  // Nearest-rank summary over completions of the last
  // config().stats_window_seconds (bounded ring — under sustained load the
  // window may cover only the newest samples).
  stats::Summary window_latency_summary() const;

  // The service's metric namespace.  The transport registers its own
  // gauges/counters here (serve.connections, serve.accept_retries) so one
  // Stats snapshot covers the whole serving stack.
  obs::MetricsRegistry& metrics() { return metrics_; }

  std::size_t queue_depth() const;
  std::size_t in_flight() const;
  double uptime_seconds() const;

  // The slow-query log, oldest first (empty unless slow_threshold_ns >= 0).
  std::vector<SlowQuery> slow_queries() const;

  // One JSON object: the live metrics snapshot served as the Stats frame
  // payload and written per --stats-interval tick.  Layout documented in
  // DESIGN.md "Live observability".
  std::string stats_json() const;

 private:
  struct Request {
    std::uint64_t id = 0;
    std::int64_t node = 0;
    std::function<void(const QueryResult&)> done;
    std::chrono::steady_clock::time_point enqueued;
    std::uint64_t seq = 0;  // admission sequence — the tracing request ID
  };

  // Per-request completion context the worker threads hand to finish():
  // which wave the request rode, its timeline so far, and its cache outcome.
  struct FinishContext {
    int worker = -1;
    std::uint64_t wave = 0;
    std::chrono::steady_clock::time_point dequeued;
    std::chrono::steady_clock::time_point exec_end;
    bool cache_hit = false;
    obs::Histogram* volume_hist = nullptr;
  };

  // One completed latency sample with its completion time (steady ns since
  // start_), feeding both the exact since-start vector and the window ring.
  struct LatencySample {
    std::int64_t done_ns = 0;
    std::int64_t latency_ns = 0;
  };

  std::shared_ptr<const ServeTarget> current_target() const;
  // Snapshots the target and (when `cache` is non-null) binds the cache to
  // its view in one critical section on target_mu_.  Workers must use this
  // rather than current_target() + bind(): bind() outside the lock could
  // observe a *newer* graph than the snapshotted target after a racing
  // swap/mutation and full-flush entries apply_mutations just certified.
  std::shared_ptr<const ServeTarget> snapshot_target_and_bind(ViewCache* cache);
  void worker_loop(int worker);
  void finish(Request& req, QueryResult result, const FinishContext& ctx,
              std::vector<LatencySample>& local_samples);
  std::int64_t since_start_ns(std::chrono::steady_clock::time_point tp) const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(tp - start_).count();
  }

  ServeConfig config_;
  int threads_ = 1;
  int batch_max_ = 64;
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex target_mu_;
  std::shared_ptr<const ServeTarget> target_;

  ViewCache cache_;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;  // workers wait for requests / stop
  std::condition_variable idle_;       // drain waits for queue+in-flight == 0
  std::deque<Request> queue_;
  std::size_t in_flight_ = 0;
  bool draining_ = false;
  bool stop_ = false;

  // Metric namespace of this service instance (per-instance so tests and
  // multi-service processes keep exact per-service counts); handles cached
  // at construction, bumped lock-free on the query path.
  obs::MetricsRegistry metrics_;
  obs::Counter* c_accepted_ = nullptr;
  obs::Counter* c_completed_ = nullptr;
  obs::Counter* c_shed_ = nullptr;
  obs::Counter* c_invalid_ = nullptr;
  obs::Counter* c_swaps_ = nullptr;
  obs::Counter* c_batches_ = nullptr;
  obs::Counter* c_waves_ = nullptr;
  obs::Counter* c_batched_starts_ = nullptr;
  obs::Counter* c_cache_hit_serves_ = nullptr;
  obs::Counter* c_slow_ = nullptr;
  obs::Counter* c_mutations_ = nullptr;
  obs::Counter* c_mut_evicted_ = nullptr;
  obs::Counter* c_mut_retained_ = nullptr;
  obs::Histogram* h_latency_us_ = nullptr;

  std::atomic<std::uint64_t> seq_{0};   // admission sequence
  std::atomic<std::uint64_t> wave_{0};  // wave (popped batch) sequence

  // Exact latency samples (since-start percentiles) plus a bounded ring of
  // recent completions for the sliding window.
  mutable std::mutex stats_mu_;
  std::vector<std::int64_t> latencies_;
  std::vector<LatencySample> window_ring_;
  std::size_t window_next_ = 0;

  mutable std::mutex slow_mu_;
  std::deque<SlowQuery> slow_;

  std::vector<std::thread> workers_;
};

}  // namespace volcal::serve
