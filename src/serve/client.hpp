// ServeClient — the typed client for one volcal_serve connection.
//
// SocketClient (serve/server.hpp) is the transport: it moves frames.  This
// wrapper is the protocol: each call sends one request and returns the
// matching typed reply, so tools and tests stop hand-rolling the
// send-frame / switch-on-frame-type / match-request-id dance.
//
//   ServeClient client;
//   client.connect(path);
//   auto q = client.query(7);                 // Result or Shed, typed
//   std::string json;
//   client.stats(&json);                      // the live metrics snapshot
//   auto u = client.update(batch);            // apply a MutationBatch
//   client.bye();                             // done
//
// Two usage modes, per connection:
//
//   * Synchronous (query/stats/update): one request in flight; the call
//     blocks until its own reply arrives.  Request ids are drawn from a
//     private high-bit-tagged counter so they can never collide with
//     pipelined ids.
//   * Pipelined (post_query/poll): the open-loop load-generator shape —
//     fire-and-forget sends from one thread, a receiver thread polling
//     typed frames and correlating request ids itself.  The two modes must
//     not be interleaved concurrently (the client is not thread-safe; the
//     pipelined split is exactly one sender plus one poller).
//
// Replies are matched by request id; stray frames from earlier pipelined
// traffic are skipped, a Bye frame (server draining) fails the call.  Every
// `ok == false` reply means the connection is no longer usable — the server
// is gone, draining, or the stream corrupted — and the caller should close().
#pragma once

#include <cstdint>
#include <string>

#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace volcal::serve {

class ServeClient {
 public:
  // One answered query.  `ok == false`: transport failure / server draining.
  // `shed == true`: the service shed the request (retry_after_ms == 0 means
  // draining for good); `result` is meaningful only when ok && !shed.
  struct QueryReply {
    bool ok = false;
    bool shed = false;
    std::uint32_t retry_after_ms = 0;
    ResultFrame result;
  };

  // One answered update.  `ok == false`: transport failure; `result.status`
  // distinguishes an applied batch from one the service rejected.
  struct UpdateReply {
    bool ok = false;
    UpdateResultFrame result;
  };

  bool connect(const std::string& socket_path) { return sock_.connect(socket_path); }
  void close() { sock_.close(); }
  bool connected() const { return sock_.connected(); }

  // --- synchronous calls: one request, one matched reply -------------------

  QueryReply query(std::int64_t node) {
    QueryReply out;
    const std::uint64_t id = next_id();
    if (!sock_.send_query(id, node)) return out;
    Frame frame;
    while (sock_.recv_frame(&frame)) {
      if (frame.type == FrameType::Result && frame.result.request_id == id) {
        out.ok = true;
        out.result = frame.result;
        return out;
      }
      if (frame.type == FrameType::Shed && frame.shed.request_id == id) {
        out.ok = true;
        out.shed = true;
        out.retry_after_ms = frame.shed.retry_after_ms;
        return out;
      }
      if (frame.type == FrameType::Bye) return out;
    }
    return out;
  }

  // Fetches the live metrics snapshot (the Stats frame payload) into *json.
  bool stats(std::string* json) {
    const std::uint64_t id = next_id();
    if (!sock_.send_stats_request(id)) return false;
    Frame frame;
    while (sock_.recv_frame(&frame)) {
      if (frame.type == FrameType::Stats && frame.stats.request_id == id) {
        *json = std::move(frame.stats.json);
        return true;
      }
      if (frame.type == FrameType::Bye) return false;
    }
    return false;
  }

  // Applies one MutationBatch server-side (QueryService::apply_mutations)
  // and returns the typed outcome.  Throws std::length_error if the batch
  // exceeds the protocol's update-frame bound.
  UpdateReply update(const MutationBatch& batch) {
    UpdateReply out;
    const std::uint64_t id = next_id();
    if (!sock_.send_update(id, batch)) return out;
    Frame frame;
    while (sock_.recv_frame(&frame)) {
      if (frame.type == FrameType::UpdateResult &&
          frame.update_result.request_id == id) {
        out.ok = true;
        out.result = frame.update_result;
        return out;
      }
      if (frame.type == FrameType::Bye) return out;
    }
    return out;
  }

  // Ends the conversation.  The protocol has no client-side farewell frame —
  // the server's reader treats EOF as the goodbye — so this just closes.
  void bye() { sock_.close(); }

  // --- pipelined primitives: many requests in flight -----------------------

  // Fire-and-forget query with a caller-chosen id.  Keep caller ids below
  // the top bit (bit 63 tags the synchronous counter above).
  bool post_query(std::uint64_t request_id, std::int64_t node) {
    return sock_.send_query(request_id, node);
  }

  // Blocks until one complete typed frame arrives.  False on EOF / error /
  // corrupt stream.
  bool poll(Frame* out) { return sock_.recv_frame(out); }

 private:
  std::uint64_t next_id() { return (std::uint64_t{1} << 63) | next_seq_++; }

  SocketClient sock_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace volcal::serve
