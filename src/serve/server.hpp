// SocketServer — the transport in front of QueryService: a Unix-domain
// stream socket speaking the length-prefixed frame protocol
// (serve/protocol.hpp).
//
// One accept thread plus one reader thread per connection.  Queries are
// submitted to the service as they decode; completion callbacks run on
// service worker threads and write Result frames under the connection's
// write mutex (responses interleave across requests — the request_id is the
// correlation key).  Shed/Stopped admissions answer immediately with a Shed
// frame (retry_after_ms == 0 when the service is draining for good).
//
// Shutdown: stop() closes the listening socket, shuts down every live
// connection (reader threads see EOF), and joins them.  The caller drains
// the service first — the callbacks of accepted requests hold connection
// handles via shared_ptr, so a connection's fd outlives every response that
// still has to be written through it.
//
// SocketClient is the matching blocking client used by volcal_load and the
// serve tests: connect(), send queries (fire-and-forget), poll responses.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/query_service.hpp"

namespace volcal::serve {

class SocketServer {
 public:
  // Binds and listens on `socket_path` (an existing file at the path is
  // unlinked first — serve sockets are owned by their server).  Returns
  // false with a message on stderr if the socket cannot be set up.
  bool start(QueryService& service, const std::string& socket_path);

  // Stops accepting, closes every connection, joins all threads.  Drain the
  // service before calling (accepted requests must have answered).
  void stop();

  ~SocketServer();

  const std::string& socket_path() const { return path_; }

 private:
  struct Connection;

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);

  QueryService* service_ = nullptr;
  std::string path_;
  int listen_fd_ = -1;
  std::thread acceptor_;
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> readers_;
  bool stopped_ = false;
};

// Blocking client for one serve connection.  Not thread-safe; volcal_load
// uses one client per connection thread.
class SocketClient {
 public:
  ~SocketClient();

  bool connect(const std::string& socket_path);
  void close();
  bool connected() const { return fd_ >= 0; }

  // Writes one Query frame (fire-and-forget; responses arrive via recv).
  bool send_query(std::uint64_t request_id, std::int64_t node);

  // Blocks until one complete frame arrives (Result, Shed, or Bye).  False
  // on EOF / error / corrupt stream.
  bool recv_frame(Frame* out);

 private:
  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace volcal::serve
