// SocketServer — the transport in front of QueryService: a Unix-domain
// stream socket speaking the length-prefixed frame protocol
// (serve/protocol.hpp).
//
// One accept thread plus one reader thread per connection.  Queries are
// submitted to the service as they decode; completion callbacks run on
// service worker threads and write Result frames under the connection's
// write mutex (responses interleave across requests — the request_id is the
// correlation key).  Shed/Stopped admissions answer immediately with a Shed
// frame (retry_after_ms == 0 when the service is draining for good).
//
// Lifecycle of a connection: when the client disconnects, its reader thread
// reaps the connection immediately — it drops the server's handle (the fd
// closes once the last in-flight response releases its shared_ptr) and
// parks its own thread object for an opportunistic join — so a long-running
// server's fd/thread footprint tracks *live* clients, not total ever
// accepted.  The accept loop survives transient failures (ECONNABORTED,
// and EMFILE/ENFILE/ENOBUFS fd pressure, retried after a short sleep); it
// exits only when stop() closes the listening socket.
//
// Writes carry a send timeout (SO_SNDTIMEO): a client that submits queries
// but never reads its responses fills its socket buffer, times the next
// write out, and gets its connection dropped — it cannot wedge a service
// worker inside a completion callback or block graceful drain.
//
// Observability: a StatsRequest frame is answered directly on the reader
// thread with a Stats frame carrying service_->stats_json() — it never
// enters the admission queue, so polling a loaded server cannot displace a
// query or be shed.  The server registers its own metrics in the service's
// registry at start(): the "serve.connections" live gauge, and the
// "serve.connections_total" / "serve.accept_retries" counters (accepts
// survived and transient accept failures retried) — one Stats snapshot
// covers transport and service together.  Declare the server after the
// service (the usual pattern) so the registered callback never outlives the
// registry.
//
// Shutdown: stop() closes the listening socket, shuts down every live
// connection (reader threads see EOF), and joins them.  The caller drains
// the service first — the callbacks of accepted requests hold connection
// handles via shared_ptr, so a connection's fd outlives every response that
// still has to be written through it.
//
// SocketClient is the matching blocking client used by volcal_load and the
// serve tests: connect(), send queries (fire-and-forget), poll responses.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/query_service.hpp"

namespace volcal::serve {

class SocketServer {
 public:
  // Binds and listens on `socket_path` (an existing file at the path is
  // unlinked first — serve sockets are owned by their server).  Returns
  // false with a message on stderr if the socket cannot be set up.
  // `write_timeout_ms` bounds how long a response write may block on a
  // client that stopped reading before the connection is dropped (<= 0
  // disables the timeout; tests use small values).
  bool start(QueryService& service, const std::string& socket_path,
             int write_timeout_ms = 5000);

  // Stops accepting, closes every connection, joins all threads.  Drain the
  // service before calling (accepted requests must have answered).
  void stop();

  ~SocketServer();

  const std::string& socket_path() const { return path_; }

  // Live (not yet reaped) connections — introspection for tests.
  std::size_t connection_count() const;

 private:
  struct Connection;

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);

  QueryService* service_ = nullptr;
  obs::Counter* c_connections_total_ = nullptr;
  obs::Counter* c_accept_retries_ = nullptr;
  std::string path_;
  int listen_fd_ = -1;
  int write_timeout_ms_ = 5000;
  std::thread acceptor_;
  mutable std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  // Reader threads of live connections, keyed by their connection; a reader
  // that sees its client disconnect moves its own entry to finished_readers_
  // (it cannot join itself), which the accept loop and stop() drain.
  std::unordered_map<const Connection*, std::thread> readers_;
  std::vector<std::thread> finished_readers_;
  std::atomic<bool> stopped_{false};
};

// Blocking client for one serve connection.  Not thread-safe; volcal_load
// uses one client per connection thread.
class SocketClient {
 public:
  ~SocketClient();

  bool connect(const std::string& socket_path);
  void close();
  bool connected() const { return fd_ >= 0; }

  // Writes one Query frame (fire-and-forget; responses arrive via recv).
  bool send_query(std::uint64_t request_id, std::int64_t node);

  // Writes one StatsRequest frame; the matching Stats frame arrives via
  // recv_frame (interleaved with any in-flight query responses).
  bool send_stats_request(std::uint64_t request_id);

  // Writes one Update frame carrying a MutationBatch; the matching
  // UpdateResult arrives via recv_frame.  Throws std::length_error if the
  // batch exceeds kMaxUpdateFrameBytes.
  bool send_update(std::uint64_t request_id, const MutationBatch& batch);

  // Blocks until one complete frame arrives (Result, Shed, Stats,
  // UpdateResult, or Bye).  False on EOF / error / corrupt stream.
  bool recv_frame(Frame* out);

 private:
  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace volcal::serve
