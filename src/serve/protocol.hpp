// Wire protocol of the volcal_serve query front-end: length-prefixed binary
// frames over a byte stream (Unix-domain socket in the shipped tools; the
// codec itself is transport-agnostic and unit-tested without sockets).
//
// Frame layout (all integers little-endian, matching the snapshot format's
// endianness stance — snapshot.cpp refuses to build big-endian):
//
//   u32  frame_bytes     length of everything after this prefix
//   u8   type            FrameType
//   ...  payload         fixed layout per type, below
//
//   Query  (client -> server):  u64 request_id | i64 node
//   Result (server -> client):  u64 request_id | u8 status | i64 node |
//                               i64 label | i64 volume | i64 distance |
//                               i64 queries | i64 latency_ns
//   Shed   (server -> client):  u64 request_id | u32 retry_after_ms
//                               (retry_after_ms == 0: the service is
//                               draining and will not accept a retry)
//   Bye    (server -> client):  u8 reason (0 = graceful drain)
//   StatsRequest (client -> server):  u64 request_id
//   Stats  (server -> client):  u64 request_id | UTF-8 JSON (rest of frame)
//                               — the live metrics snapshot, answered off
//                               the reader thread without touching the
//                               query queue
//   Update (client -> server):  u64 request_id | u32 rewires | u32 labels |
//                               rewires × (i64 leaf | i64 new_parent) |
//                               labels × (i64 node | u8 channel | i32 value)
//                               — one MutationBatch (graph/mutation.hpp),
//                               applied copy-on-write through
//                               QueryService::apply_mutations
//   UpdateResult (server -> client):  u64 request_id | u8 status |
//                               u64 cache_evicted | u64 cache_retained |
//                               u8 flushed | i64 apply_ns
//
// Every Query is answered by exactly one Result or Shed carrying the same
// request_id; every StatsRequest by exactly one Stats; every Update by
// exactly one UpdateResult.  Ids are client-chosen and opaque to the server
// (responses may arrive out of submission order — the service batches and
// reorders).
//
// FrameReader is the stream-side decoder: feed() whatever bytes arrived,
// next() yields complete frames and buffers partials across reads.  A frame
// whose declared length exceeds its type's bound (kMaxFrameBytes for the
// fixed-layout types, kMaxStatsFrameBytes / kMaxUpdateFrameBytes for the
// variable-length Stats and Update frames) or whose payload does not match
// its type marks the stream
// corrupt — the transport must drop the connection (there is no
// resynchronization in a length-prefixed stream).
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "graph/mutation.hpp"

namespace volcal::serve {

enum class FrameType : std::uint8_t {
  Query = 1,
  Result = 2,
  Shed = 3,
  Bye = 4,
  StatsRequest = 5,
  Stats = 6,
  Update = 7,
  UpdateResult = 8,
};

enum class QueryStatus : std::uint8_t {
  Ok = 0,
  InvalidNode = 1,  // node outside [0, n): label/meters are zero
};

struct QueryFrame {
  std::uint64_t request_id = 0;
  std::int64_t node = 0;
};

struct ResultFrame {
  std::uint64_t request_id = 0;
  QueryStatus status = QueryStatus::Ok;
  std::int64_t node = 0;
  std::int64_t label = 0;
  std::int64_t volume = 0;
  std::int64_t distance = 0;
  std::int64_t queries = 0;
  std::int64_t latency_ns = 0;
};

struct ShedFrame {
  std::uint64_t request_id = 0;
  std::uint32_t retry_after_ms = 0;
};

struct ByeFrame {
  std::uint8_t reason = 0;
};

struct StatsRequestFrame {
  std::uint64_t request_id = 0;
};

struct StatsFrame {
  std::uint64_t request_id = 0;
  std::string json;  // one JSON object — the metrics snapshot
};

struct UpdateFrame {
  std::uint64_t request_id = 0;
  MutationBatch batch;
};

enum class UpdateStatus : std::uint8_t {
  Ok = 0,
  Invalid = 1,  // batch rejected (bad rewire / unsupported label channel)
};

struct UpdateResultFrame {
  std::uint64_t request_id = 0;
  UpdateStatus status = UpdateStatus::Ok;
  std::uint64_t cache_evicted = 0;
  std::uint64_t cache_retained = 0;
  std::uint8_t flushed = 0;  // 1: invalidation fell back to the full flush
  std::int64_t apply_ns = 0;
};

// Decoded frame: `type` selects which member is meaningful.
struct Frame {
  FrameType type = FrameType::Bye;
  QueryFrame query;
  ResultFrame result;
  ShedFrame shed;
  ByeFrame bye;
  StatsRequestFrame stats_request;
  StatsFrame stats;
  UpdateFrame update;
  UpdateResultFrame update_result;
};

// Largest legal frame_bytes value for the fixed-layout types.  Result is the
// biggest such frame (1 + 8 + 1 + 6*8 = 58); anything bigger than this bound
// is stream corruption unless its type byte says Stats — the one
// variable-length frame, bounded separately below.
inline constexpr std::size_t kMaxFrameBytes = 64;
// The Stats response carries a JSON document (counters + gauges + per-family
// histograms); 1 MiB is orders of magnitude above any real snapshot while
// still bounding a hostile length prefix.
inline constexpr std::size_t kMaxStatsFrameBytes = std::size_t{1} << 20;
// The Update frame carries a whole MutationBatch; 1 MiB bounds it at ~65k
// rewires or ~80k label writes per frame — far above any sane delta while
// keeping a hostile length prefix from allocating unbounded memory.
inline constexpr std::size_t kMaxUpdateFrameBytes = std::size_t{1} << 20;

namespace wire {

inline void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

inline std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

inline std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

inline std::int64_t get_i64(const std::uint8_t* p) {
  return static_cast<std::int64_t>(get_u64(p));
}

}  // namespace wire

// Encoders — each returns a complete frame including the length prefix,
// ready to write to the stream.
inline std::vector<std::uint8_t> encode_query(const QueryFrame& f) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + 1 + 16);
  wire::put_u32(out, 1 + 16);
  wire::put_u8(out, static_cast<std::uint8_t>(FrameType::Query));
  wire::put_u64(out, f.request_id);
  wire::put_i64(out, f.node);
  return out;
}

inline std::vector<std::uint8_t> encode_result(const ResultFrame& f) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + 1 + 57);
  wire::put_u32(out, 1 + 8 + 1 + 6 * 8);
  wire::put_u8(out, static_cast<std::uint8_t>(FrameType::Result));
  wire::put_u64(out, f.request_id);
  wire::put_u8(out, static_cast<std::uint8_t>(f.status));
  wire::put_i64(out, f.node);
  wire::put_i64(out, f.label);
  wire::put_i64(out, f.volume);
  wire::put_i64(out, f.distance);
  wire::put_i64(out, f.queries);
  wire::put_i64(out, f.latency_ns);
  return out;
}

inline std::vector<std::uint8_t> encode_shed(const ShedFrame& f) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + 1 + 12);
  wire::put_u32(out, 1 + 8 + 4);
  wire::put_u8(out, static_cast<std::uint8_t>(FrameType::Shed));
  wire::put_u64(out, f.request_id);
  wire::put_u32(out, f.retry_after_ms);
  return out;
}

inline std::vector<std::uint8_t> encode_bye(const ByeFrame& f) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + 2);
  wire::put_u32(out, 2);
  wire::put_u8(out, static_cast<std::uint8_t>(FrameType::Bye));
  wire::put_u8(out, f.reason);
  return out;
}

inline std::vector<std::uint8_t> encode_stats_request(std::uint64_t request_id) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + 1 + 8);
  wire::put_u32(out, 1 + 8);
  wire::put_u8(out, static_cast<std::uint8_t>(FrameType::StatsRequest));
  wire::put_u64(out, request_id);
  return out;
}

inline std::vector<std::uint8_t> encode_stats(std::uint64_t request_id,
                                              std::string_view json) {
  // A snapshot that would overflow the frame bound is replaced by an error
  // object — truncated JSON would corrupt the stream for the peer.
  if (1 + 8 + json.size() > kMaxStatsFrameBytes) {
    json = "{\"error\": \"stats snapshot exceeds frame bound\"}";
  }
  std::vector<std::uint8_t> out;
  out.reserve(4 + 1 + 8 + json.size());
  wire::put_u32(out, static_cast<std::uint32_t>(1 + 8 + json.size()));
  wire::put_u8(out, static_cast<std::uint8_t>(FrameType::Stats));
  wire::put_u64(out, request_id);
  out.insert(out.end(), json.begin(), json.end());
  return out;
}

inline std::vector<std::uint8_t> encode_update(const UpdateFrame& f) {
  const std::size_t body = 1 + 8 + 4 + 4 + f.batch.rewires.size() * 16 +
                           f.batch.label_updates.size() * 13;
  if (body > kMaxUpdateFrameBytes) {
    throw std::length_error("encode_update: batch exceeds kMaxUpdateFrameBytes");
  }
  std::vector<std::uint8_t> out;
  out.reserve(4 + body);
  wire::put_u32(out, static_cast<std::uint32_t>(body));
  wire::put_u8(out, static_cast<std::uint8_t>(FrameType::Update));
  wire::put_u64(out, f.request_id);
  wire::put_u32(out, static_cast<std::uint32_t>(f.batch.rewires.size()));
  wire::put_u32(out, static_cast<std::uint32_t>(f.batch.label_updates.size()));
  for (const LeafRewire& r : f.batch.rewires) {
    wire::put_i64(out, static_cast<std::int64_t>(r.leaf));
    wire::put_i64(out, static_cast<std::int64_t>(r.new_parent));
  }
  for (const LabelUpdate& u : f.batch.label_updates) {
    wire::put_i64(out, static_cast<std::int64_t>(u.node));
    wire::put_u8(out, static_cast<std::uint8_t>(u.channel));
    wire::put_u32(out, static_cast<std::uint32_t>(u.value));
  }
  return out;
}

inline std::vector<std::uint8_t> encode_update_result(const UpdateResultFrame& f) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + 1 + 8 + 1 + 8 + 8 + 1 + 8);
  wire::put_u32(out, 1 + 8 + 1 + 8 + 8 + 1 + 8);
  wire::put_u8(out, static_cast<std::uint8_t>(FrameType::UpdateResult));
  wire::put_u64(out, f.request_id);
  wire::put_u8(out, static_cast<std::uint8_t>(f.status));
  wire::put_u64(out, f.cache_evicted);
  wire::put_u64(out, f.cache_retained);
  wire::put_u8(out, f.flushed);
  wire::put_i64(out, f.apply_ns);
  return out;
}

// Decodes the body of one frame (everything after the length prefix).
// Returns false — without touching `out` beyond its type field — when the
// type is unknown or the payload length does not match the type.
inline bool decode_frame(const std::uint8_t* body, std::size_t len, Frame* out) {
  if (len < 1) return false;
  const auto type = static_cast<FrameType>(body[0]);
  const std::uint8_t* p = body + 1;
  const std::size_t payload = len - 1;
  switch (type) {
    case FrameType::Query:
      if (payload != 16) return false;
      out->type = type;
      out->query.request_id = wire::get_u64(p);
      out->query.node = wire::get_i64(p + 8);
      return true;
    case FrameType::Result:
      if (payload != 8 + 1 + 6 * 8) return false;
      out->type = type;
      out->result.request_id = wire::get_u64(p);
      out->result.status = static_cast<QueryStatus>(p[8]);
      out->result.node = wire::get_i64(p + 9);
      out->result.label = wire::get_i64(p + 17);
      out->result.volume = wire::get_i64(p + 25);
      out->result.distance = wire::get_i64(p + 33);
      out->result.queries = wire::get_i64(p + 41);
      out->result.latency_ns = wire::get_i64(p + 49);
      return true;
    case FrameType::Shed:
      if (payload != 12) return false;
      out->type = type;
      out->shed.request_id = wire::get_u64(p);
      out->shed.retry_after_ms = wire::get_u32(p + 8);
      return true;
    case FrameType::Bye:
      if (payload != 1) return false;
      out->type = type;
      out->bye.reason = p[0];
      return true;
    case FrameType::StatsRequest:
      if (payload != 8) return false;
      out->type = type;
      out->stats_request.request_id = wire::get_u64(p);
      return true;
    case FrameType::Stats:
      if (payload < 8) return false;
      out->type = type;
      out->stats.request_id = wire::get_u64(p);
      out->stats.json.assign(reinterpret_cast<const char*>(p + 8), payload - 8);
      return true;
    case FrameType::Update: {
      if (payload < 16) return false;
      const std::uint64_t request_id = wire::get_u64(p);
      const std::uint32_t rewires = wire::get_u32(p + 8);
      const std::uint32_t labels = wire::get_u32(p + 12);
      if (payload != 16 + std::uint64_t{rewires} * 16 + std::uint64_t{labels} * 13) {
        return false;
      }
      out->type = type;
      out->update.request_id = request_id;
      out->update.batch.rewires.clear();
      out->update.batch.label_updates.clear();
      out->update.batch.rewires.reserve(rewires);
      out->update.batch.label_updates.reserve(labels);
      const std::uint8_t* q = p + 16;
      for (std::uint32_t i = 0; i < rewires; ++i, q += 16) {
        LeafRewire r;
        r.leaf = static_cast<NodeIndex>(wire::get_i64(q));
        r.new_parent = static_cast<NodeIndex>(wire::get_i64(q + 8));
        out->update.batch.rewires.push_back(r);
      }
      for (std::uint32_t i = 0; i < labels; ++i, q += 13) {
        LabelUpdate u;
        u.node = static_cast<NodeIndex>(wire::get_i64(q));
        u.channel = static_cast<LabelChannel>(q[8]);
        u.value = static_cast<int>(static_cast<std::int32_t>(wire::get_u32(q + 9)));
        out->update.batch.label_updates.push_back(u);
      }
      return true;
    }
    case FrameType::UpdateResult:
      if (payload != 8 + 1 + 8 + 8 + 1 + 8) return false;
      out->type = type;
      out->update_result.request_id = wire::get_u64(p);
      out->update_result.status = static_cast<UpdateStatus>(p[8]);
      out->update_result.cache_evicted = wire::get_u64(p + 9);
      out->update_result.cache_retained = wire::get_u64(p + 17);
      out->update_result.flushed = p[25];
      out->update_result.apply_ns = wire::get_i64(p + 26);
      return true;
  }
  return false;
}

// Incremental stream decoder: buffers partial frames across feed() calls.
class FrameReader {
 public:
  void feed(const std::uint8_t* data, std::size_t len) {
    buf_.insert(buf_.end(), data, data + len);
  }

  // Pops the next complete frame.  False when the buffer holds no complete
  // frame yet — or the stream is corrupt (check corrupt(); once set, no
  // further frame is ever produced).
  bool next(Frame* out) {
    if (corrupt_) return false;
    if (buf_.size() - pos_ < 4) {
      compact();
      return false;
    }
    const std::uint32_t frame_bytes = wire::get_u32(buf_.data() + pos_);
    if (frame_bytes == 0) {
      corrupt_ = true;
      return false;
    }
    if (frame_bytes > kMaxFrameBytes) {
      // Only the variable-length types (Stats response, Update batch) may
      // exceed the fixed-layout bound; peek the type byte (wait for it if the
      // prefix arrived alone) before deciding between "large but legal" and
      // corruption.
      if (buf_.size() - pos_ < 5) {
        compact();
        return false;
      }
      const auto peeked = static_cast<FrameType>(buf_[pos_ + 4]);
      const bool legal =
          (peeked == FrameType::Stats && frame_bytes <= kMaxStatsFrameBytes) ||
          (peeked == FrameType::Update && frame_bytes <= kMaxUpdateFrameBytes);
      if (!legal) {
        corrupt_ = true;
        return false;
      }
    }
    if (buf_.size() - pos_ < 4 + static_cast<std::size_t>(frame_bytes)) {
      compact();
      return false;
    }
    if (!decode_frame(buf_.data() + pos_ + 4, frame_bytes, out)) {
      corrupt_ = true;
      return false;
    }
    pos_ += 4 + frame_bytes;
    return true;
  }

  bool corrupt() const { return corrupt_; }

 private:
  // Drop consumed bytes when nothing is in flight (keeps the buffer from
  // growing across a long-lived connection).
  void compact() {
    if (pos_ > 0) {
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
      pos_ = 0;
    }
  }

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  bool corrupt_ = false;
};

}  // namespace volcal::serve
