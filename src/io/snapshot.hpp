// Versioned binary instance snapshots + the mmap-backed zero-copy loader.
//
// A snapshot is the on-disk form of one generated Instance: the CSR graph
// (offsets + port-symmetric adjacency), the ID table, and the family's label
// tables, laid out so the engine can execute against the file mapping with
// zero copies for the hot arrays.  volcal_gen writes them once per (family,
// size, seed); volcal_bench / volcal_fuzz load them instead of regenerating,
// which is what lets doubling sweeps leave RAM-resident generator territory
// (n >= 2^26).
//
// File layout (all fields little-endian; the writer and loader refuse to
// build on big-endian targets, see snapshot.cpp):
//
//   Header (104 bytes at offset 0)
//     0   char magic[8]        "VOLCSNP1"
//     8   u32  version         format schema, currently 1
//     12  u32  header_bytes    104 (offset of the section table)
//     16  char family[32]      registry key, NUL-padded ("leaf-coloring"...)
//     48  i64  node_count      n
//     56  u64  adjacency_count 2 * edge_count (== offsets[n])
//     64  i32  max_degree
//     68  u32  section_count
//     72  u64  payload_offset  first byte after the section table, 8-aligned
//     80  u64  payload_bytes   checksummed region [payload_offset, +bytes)
//     88  u64  checksum        FNV-1a 64 over the payload region
//     96  u64  reserved        0
//
//   Section table: section_count entries of 32 bytes
//     0   char tag[8]          NUL-padded ("offsets", "adj", "ids", ...)
//     8   u32  elem_bytes
//     12  u32  reserved        0
//     16  u64  count           element count
//     24  u64  offset          absolute file offset, 8-byte aligned
//
//   Payload: the section arrays, 8-byte aligned, zero padding between them
//   (padding is part of the checksummed region, so any flipped byte in the
//   payload fails verification).
//
// Sections by family (n-sized unless noted):
//   always            offsets u64 x (n+1) | adj i64 x adjacency_count |
//                     ids u64
//   tree labelings    parent, left, right        i32
//   colored (+hthc)   color                      u8
//   balanced-tree     leftnbr, rightnbr          i32
//   hybrid            + color, levelin           i32/u8
//   hh                + side                     u8
//
// Versioning: readers accept exactly the versions they know; any layout
// change bumps `version`.  Unknown section tags are ignored on load, so
// additive extensions may reuse version 1.
//
// Ownership / lifetime: Snapshot keeps the mapping alive via a shared
// handle.  GraphView / span accessors borrow the mapping; whoever adopts
// them into longer-lived objects (Graph::adopt, IdAssignment::adopt) must
// retain mapping() alongside — load_snapshot_instance (lcl/registry.hpp)
// parks it in the erased instance's keep-alive slot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph_view.hpp"
#include "labels/instances.hpp"

namespace volcal::io {

struct SnapshotError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

inline constexpr char kSnapshotMagic[8] = {'V', 'O', 'L', 'C', 'S', 'N', 'P', '1'};
inline constexpr std::uint32_t kSnapshotVersion = 1;

// Read-only mmap of a whole file (RAII).  Kept behind shared_ptr so views
// into the mapping can outlive the Snapshot that produced them.
class MappedFile {
 public:
  static std::shared_ptr<const MappedFile> map(const std::string& path);
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  MappedFile() = default;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

// A loaded, validated snapshot.  Cheap to move; accessors return borrowed
// views into the mapping (see the lifetime contract above).
class Snapshot {
 public:
  struct Options {
    // Verify the payload checksum on load.  On by default — a corrupt
    // snapshot must never reach the engine; the bench's load phase includes
    // this cost deliberately (it is part of an honest load path).
    bool verify_checksum = true;
  };

  static Snapshot load(const std::string& path);
  static Snapshot load(const std::string& path, Options opts);

  const std::string& path() const { return path_; }
  const std::string& family() const { return family_; }
  NodeIndex node_count() const { return node_count_; }
  std::uint64_t adjacency_count() const { return adjacency_count_; }
  int max_degree() const { return max_degree_; }

  // The CSR graph, zero-copy over the mapping.  Every view returned by one
  // Snapshot object (and its copies, which share the mapping) carries the
  // same storage token, minted once at load.
  GraphView graph() const;

  // The storage-identity token minted for this load (see graph_view.hpp).
  StorageToken storage_token() const { return token_; }

  // The ID table, zero-copy over the mapping.
  std::span<const NodeId> ids() const;

  bool has_section(std::string_view tag) const { return find(tag) != nullptr; }

  // Typed accessors for label sections; throw SnapshotError when the tag is
  // absent or has a different element width.
  std::span<const Port> ports(std::string_view tag) const;          // i32 sections
  std::span<const std::uint8_t> bytes(std::string_view tag) const;  // u8 sections

  // Keep-alive handle for adopted views (Graph::adopt / IdAssignment::adopt).
  std::shared_ptr<const void> mapping() const { return map_; }

 private:
  struct Section {
    std::string tag;
    std::uint32_t elem_bytes = 0;
    std::uint64_t count = 0;
    std::uint64_t offset = 0;
  };

  const Section* find(std::string_view tag) const;
  const Section& require(std::string_view tag, std::uint32_t elem_bytes,
                         std::uint64_t count) const;

  std::shared_ptr<const MappedFile> map_;
  std::string path_;
  std::string family_;
  NodeIndex node_count_ = 0;
  std::uint64_t adjacency_count_ = 0;
  int max_degree_ = 0;
  StorageToken token_ = kAnonymousStorage;
  std::vector<Section> sections_;
};

// Writers — one per labeling shape; `family` is the registry key recorded in
// the header (what load_snapshot_instance rehydrates the solver from).
void write_snapshot(const std::string& path, std::string_view family,
                    const LeafColoringInstance& inst);
void write_snapshot(const std::string& path, std::string_view family,
                    const BalancedTreeInstance& inst);
void write_snapshot(const std::string& path, std::string_view family,
                    const HybridInstance& inst);
void write_snapshot(const std::string& path, std::string_view family,
                    const HHInstance& inst);

// True iff `path` exists and begins with the snapshot magic (format sniffing
// for io::load_instance; never throws).
bool sniff_snapshot(const std::string& path);

}  // namespace volcal::io
