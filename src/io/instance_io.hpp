// One-call instance persistence over both on-disk formats.
//
// The repo has two serialized instance forms:
//   * the line-oriented text format (io/serialize.hpp) — human-diffable,
//     writers exist for the families with a natural text shape;
//   * the versioned binary snapshot (io/snapshot.hpp) — the zero-copy,
//     mmap-loadable form volcal_gen produces and the bench/fuzz tools load.
//
// load_instance() sniffs the format from the file header (snapshot magic vs
// the text magic line), parses it, and rehydrates the recorded family's
// solver/verifier wiring via lcl/registry's erase_instance — so callers get
// a ready-to-execute ErasedInstance regardless of which format the file is.
//
// This header (re-exported as volcal/io.hpp) is the intended include for
// instance persistence; direct includes of io/serialize.hpp are deprecated
// outside the io layer itself (see DESIGN.md, deprecation ledger).
#pragma once

#include <string>

#include "io/snapshot.hpp"
#include "lcl/registry.hpp"

namespace volcal::io {

enum class InstanceFormat {
  snapshot,  // binary snapshot (io/snapshot.hpp)
  text,      // line-oriented text (io/serialize.hpp)
};

// Sniffs the serialized format at `path` from its leading bytes.  Throws
// SnapshotError when the file is unreadable or matches neither header.
InstanceFormat sniff_format(const std::string& path);

// Loads either format into an executable ErasedInstance of its recorded
// family.  Snapshot loads are zero-copy for the CSR graph and ID table (the
// instance keeps the mapping alive); text loads parse into owned storage.
ErasedInstance load_instance(const std::string& path);

// Saves in the requested format.  InstanceFormat::text throws
// std::invalid_argument for families without a text form
// (inst.has_text_format() == false); the snapshot form covers every family.
void save_instance(const ErasedInstance& inst, const std::string& path,
                   InstanceFormat format = InstanceFormat::snapshot);

}  // namespace volcal::io
