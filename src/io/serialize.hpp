// Instance (de)serialization and Graphviz export.
//
// Text format (line-oriented, self-describing) so instances can be archived,
// diffed, and fed to external tooling:
//
//   volcal-instance v1 <kind>
//   n <node_count>
//   node <index> id <id> [kind-specific label fields]
//   edge <u> <pu> <v> <pv>
//   end
//
// Kinds: leafcoloring (colored tree labeling), balancedtree, hybrid, hh.
// DOT export renders the claimed structure: tree claims as solid directed
// edges (parent -> child), lateral claims dashed, colors as fill.
#pragma once

// Deprecated as a direct include: instance persistence is consolidated
// behind volcal/io.hpp (load_instance/save_instance sniff the format, so
// callers need not care whether a file is text or a binary snapshot).  The
// io layer itself defines the macro; anything else hitting this message
// should migrate — see the DESIGN.md deprecation ledger.
#ifndef VOLCAL_ALLOW_DIRECT_SERIALIZE_INCLUDE
#pragma message( \
    "io/serialize.hpp included directly; use volcal/io.hpp (load_instance/save_instance) instead")
#endif

#include <iosfwd>
#include <string>

#include "labels/instances.hpp"

namespace volcal::io {

void write_instance(std::ostream& os, const LeafColoringInstance& inst);
void write_instance(std::ostream& os, const BalancedTreeInstance& inst);
void write_instance(std::ostream& os, const HybridInstance& inst);

LeafColoringInstance read_leafcoloring(std::istream& is);
BalancedTreeInstance read_balancedtree(std::istream& is);
HybridInstance read_hybrid(std::istream& is);

// Graphviz rendering of the labeled structure; `max_nodes` guards against
// accidentally dumping megabyte graphs (0 = no limit).
std::string to_dot(const LeafColoringInstance& inst, NodeIndex max_nodes = 0);
std::string to_dot(const BalancedTreeInstance& inst, NodeIndex max_nodes = 0);

}  // namespace volcal::io
