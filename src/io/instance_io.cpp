#include "io/instance_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#define VOLCAL_ALLOW_DIRECT_SERIALIZE_INCLUDE
#include "io/serialize.hpp"

namespace volcal::io {
namespace {

// Text kind token (header line "volcal-instance v1 <kind>") -> registry
// family.  Text files predate multi-family colored-tree reuse, so a
// leafcoloring file always rehydrates as the leaf-coloring entry; snapshots
// record the exact family instead.
std::string family_for_text_kind(const std::string& kind) {
  if (kind == "leafcoloring") return "leaf-coloring";
  if (kind == "balancedtree") return "balanced-tree";
  if (kind == "hybrid") return "hybrid-2";
  throw SnapshotError("io: text instance kind '" + kind + "' has no loader");
}

}  // namespace

InstanceFormat sniff_format(const std::string& path) {
  if (sniff_snapshot(path)) return InstanceFormat::snapshot;
  std::ifstream is(path);
  if (!is) throw SnapshotError("io: cannot open '" + path + "'");
  std::string w1, w2;
  is >> w1 >> w2;
  if (w1 == "volcal-instance" && w2 == "v1") return InstanceFormat::text;
  throw SnapshotError("io: '" + path + "' is neither a snapshot nor a text instance");
}

ErasedInstance load_instance(const std::string& path) {
  if (sniff_format(path) == InstanceFormat::snapshot) {
    return load_snapshot_instance(Snapshot::load(path));
  }
  std::ifstream is(path);
  if (!is) throw SnapshotError("io: cannot open '" + path + "'");
  std::string w1, w2, kind;
  is >> w1 >> w2 >> kind;
  is.seekg(0);
  const std::string family = family_for_text_kind(kind);
  if (kind == "leafcoloring") return erase_instance(family, read_leafcoloring(is));
  if (kind == "balancedtree") return erase_instance(family, read_balancedtree(is));
  return erase_instance(family, read_hybrid(is));
}

void save_instance(const ErasedInstance& inst, const std::string& path,
                   InstanceFormat format) {
  if (format == InstanceFormat::snapshot) {
    inst.save_snapshot(path);
    return;
  }
  if (!inst.has_text_format()) {
    throw std::invalid_argument("io: family '" + inst.family() +
                                "' has no text format; use the snapshot form");
  }
  std::ofstream os(path);
  if (!os) throw SnapshotError("io: cannot open '" + path + "' for writing");
  inst.save_text(os);
  if (!os) throw SnapshotError("io: write to '" + path + "' failed");
}

}  // namespace volcal::io
