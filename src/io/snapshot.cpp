#include "io/snapshot.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>

namespace volcal::io {

// The format is little-endian by definition and the writer/loader below
// reinterpret in-memory arrays directly; refuse to build anywhere that would
// silently produce byte-swapped files.
static_assert(std::endian::native == std::endian::little,
              "volcal snapshots are little-endian; add byte-swapping before "
              "building this translation unit on a big-endian target");
static_assert(sizeof(std::size_t) == 8, "CSR offsets are serialized as u64");
static_assert(sizeof(Port) == 4, "port sections are serialized as i32");
static_assert(sizeof(NodeIndex) == 8, "adjacency is serialized as i64");
static_assert(sizeof(NodeId) == 8, "ids are serialized as u64");
static_assert(sizeof(Color) == 1, "color sections are serialized as u8");

namespace {

constexpr std::uint32_t kHeaderBytes = 104;
constexpr std::uint32_t kSectionEntryBytes = 32;
constexpr std::size_t kFamilyBytes = 32;
constexpr std::size_t kTagBytes = 8;

std::uint64_t fnv1a(std::uint64_t h, const std::uint8_t* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

constexpr std::uint64_t kFnvBasis = 14695981039346656037ull;

std::uint64_t align8(std::uint64_t x) { return (x + 7) & ~std::uint64_t{7}; }

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw SnapshotError("snapshot " + path + ": " + what);
}

// --- writer -----------------------------------------------------------------

struct PendingSection {
  const char* tag;
  std::uint32_t elem_bytes;
  std::uint64_t count;
  const void* data;

  std::uint64_t byte_size() const { return count * elem_bytes; }
};

void put_u32(std::uint8_t* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void put_u64(std::uint8_t* p, std::uint64_t v) { std::memcpy(p, &v, 8); }

class FileWriter {
 public:
  FileWriter(std::FILE* f, const std::string& path) : f_(f), path_(path) {}

  void write(const void* data, std::size_t n) {
    if (n != 0 && std::fwrite(data, 1, n, f_) != n) {
      fail(path_, "write failed: " + std::string(std::strerror(errno)));
    }
  }

  void pad_to(std::uint64_t offset, std::uint64_t current) {
    static constexpr std::uint8_t zeros[8] = {};
    write(zeros, static_cast<std::size_t>(offset - current));
  }

 private:
  std::FILE* f_;
  const std::string& path_;
};

void write_snapshot_file(const std::string& path, std::string_view family,
                         GraphView g, std::span<const NodeId> ids,
                         const std::vector<PendingSection>& labels) {
  if (family.size() >= kFamilyBytes) fail(path, "family name too long: " + std::string(family));
  const auto n = static_cast<std::uint64_t>(g.node_count());
  const std::uint64_t adj_count = g.offsets_data()[n];

  std::vector<PendingSection> sections;
  sections.push_back({"offsets", 8, n + 1, g.offsets_data()});
  sections.push_back({"adj", 8, adj_count, g.adjacency_data()});
  sections.push_back({"ids", 8, n, ids.data()});
  for (const PendingSection& s : labels) sections.push_back(s);

  // Lay out the payload: sections in declaration order, each 8-aligned.
  const std::uint64_t payload_offset =
      align8(kHeaderBytes + sections.size() * kSectionEntryBytes);
  std::vector<std::uint64_t> offsets(sections.size());
  std::uint64_t cursor = payload_offset;
  for (std::size_t i = 0; i < sections.size(); ++i) {
    cursor = align8(cursor);
    offsets[i] = cursor;
    cursor += sections[i].byte_size();
  }
  const std::uint64_t payload_bytes = cursor - payload_offset;

  // Checksum pass: FNV-1a over the payload region exactly as it will land on
  // disk (inter-section zero padding included).
  std::uint64_t checksum = kFnvBasis;
  {
    std::uint64_t pos = payload_offset;
    static constexpr std::uint8_t zeros[8] = {};
    for (std::size_t i = 0; i < sections.size(); ++i) {
      checksum = fnv1a(checksum, zeros, static_cast<std::size_t>(offsets[i] - pos));
      checksum = fnv1a(checksum, static_cast<const std::uint8_t*>(sections[i].data),
                       static_cast<std::size_t>(sections[i].byte_size()));
      pos = offsets[i] + sections[i].byte_size();
    }
  }

  std::uint8_t header[kHeaderBytes] = {};
  std::memcpy(header, kSnapshotMagic, sizeof(kSnapshotMagic));
  put_u32(header + 8, kSnapshotVersion);
  put_u32(header + 12, kHeaderBytes);
  std::memcpy(header + 16, family.data(), family.size());
  put_u64(header + 48, n);  // node_count is non-negative; bit pattern == i64
  put_u64(header + 56, adj_count);
  put_u32(header + 64, static_cast<std::uint32_t>(g.max_degree()));
  put_u32(header + 68, static_cast<std::uint32_t>(sections.size()));
  put_u64(header + 72, payload_offset);
  put_u64(header + 80, payload_bytes);
  put_u64(header + 88, checksum);

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) fail(path, "cannot open for writing: " + std::string(std::strerror(errno)));
  FileWriter out(f, path);
  out.write(header, kHeaderBytes);
  std::uint64_t pos = kHeaderBytes;
  for (std::size_t i = 0; i < sections.size(); ++i) {
    std::uint8_t entry[kSectionEntryBytes] = {};
    std::memcpy(entry, sections[i].tag,
                std::min(std::strlen(sections[i].tag), kTagBytes));
    put_u32(entry + 8, sections[i].elem_bytes);
    put_u64(entry + 16, sections[i].count);
    put_u64(entry + 24, offsets[i]);
    out.write(entry, kSectionEntryBytes);
    pos += kSectionEntryBytes;
  }
  for (std::size_t i = 0; i < sections.size(); ++i) {
    out.pad_to(offsets[i], pos);
    out.write(sections[i].data, static_cast<std::size_t>(sections[i].byte_size()));
    pos = offsets[i] + sections[i].byte_size();
  }
  if (std::fclose(f) != 0) fail(path, "close failed: " + std::string(std::strerror(errno)));
}

PendingSection port_section(const char* tag, const std::vector<Port>& v) {
  return {tag, 4, v.size(), v.data()};
}

}  // namespace

// --- MappedFile -------------------------------------------------------------

std::shared_ptr<const MappedFile> MappedFile::map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail(path, "cannot open: " + std::string(std::strerror(errno)));
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    fail(path, "stat failed: " + std::string(std::strerror(err)));
  }
  // Distinct diagnostics for the distinct misuses: a directory opens fine on
  // Linux but cannot be mapped, a zero-size file maps to nothing (mmap would
  // return EINVAL), and a file larger than the address space cannot be mapped
  // whole.  Each used to surface as a generic mmap/size error.
  if (S_ISDIR(st.st_mode)) {
    ::close(fd);
    fail(path, "is a directory, not a snapshot file");
  }
  if (st.st_size == 0) {
    ::close(fd);
    fail(path, "empty file (zero bytes; not a snapshot)");
  }
  if (static_cast<std::uint64_t>(st.st_size) >
      std::numeric_limits<std::size_t>::max() / 2) {
    ::close(fd);
    fail(path, "file too large to map (" + std::to_string(st.st_size) + " bytes)");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  const int err = errno;
  ::close(fd);  // the mapping holds its own reference
  if (addr == MAP_FAILED) fail(path, "mmap failed: " + std::string(std::strerror(err)));
  auto file = std::shared_ptr<MappedFile>(new MappedFile());
  file->data_ = static_cast<const std::uint8_t*>(addr);
  file->size_ = size;
  return file;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
}

// --- Snapshot ---------------------------------------------------------------

namespace {

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

Snapshot Snapshot::load(const std::string& path) { return load(path, Options{}); }

Snapshot Snapshot::load(const std::string& path, Options opts) {
  Snapshot snap;
  snap.path_ = path;
  snap.map_ = MappedFile::map(path);
  // One identity per load: views handed out by this snapshot all carry the
  // same token, and a reload of the same file (or a different file mapped at
  // a recycled address) gets a different one.  This is what keeps a
  // persistent ViewCache from serving balls across snapshot swaps.
  snap.token_ = mint_storage_token();
  const std::uint8_t* base = snap.map_->data();
  const std::uint64_t file_size = snap.map_->size();

  if (file_size < kHeaderBytes) fail(path, "truncated header");
  if (std::memcmp(base, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    fail(path, "bad magic (not a volcal snapshot)");
  }
  const std::uint32_t version = get_u32(base + 8);
  if (version != kSnapshotVersion) {
    fail(path, "unsupported version " + std::to_string(version) + " (reader knows " +
                   std::to_string(kSnapshotVersion) + ")");
  }
  if (get_u32(base + 12) != kHeaderBytes) fail(path, "bad header size");

  const char* fam = reinterpret_cast<const char*>(base + 16);
  const std::size_t fam_len = ::strnlen(fam, kFamilyBytes);
  if (fam_len == 0 || fam_len == kFamilyBytes) fail(path, "bad family field");
  snap.family_.assign(fam, fam_len);

  const auto node_count = static_cast<std::int64_t>(get_u64(base + 48));
  if (node_count < 0) fail(path, "negative node count");
  snap.node_count_ = node_count;
  snap.adjacency_count_ = get_u64(base + 56);
  snap.max_degree_ = static_cast<int>(get_u32(base + 64));

  const std::uint32_t section_count = get_u32(base + 68);
  const std::uint64_t payload_offset = get_u64(base + 72);
  const std::uint64_t payload_bytes = get_u64(base + 80);
  const std::uint64_t checksum = get_u64(base + 88);
  const std::uint64_t table_end =
      kHeaderBytes + std::uint64_t{section_count} * kSectionEntryBytes;
  if (section_count == 0 || table_end > file_size) fail(path, "bad section table");
  if (payload_offset < table_end || payload_offset > file_size ||
      payload_bytes > file_size - payload_offset) {
    fail(path, "payload out of bounds (truncated file?)");
  }

  snap.sections_.reserve(section_count);
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::uint8_t* e = base + kHeaderBytes + std::uint64_t{i} * kSectionEntryBytes;
    Section s;
    const char* tag = reinterpret_cast<const char*>(e);
    s.tag.assign(tag, ::strnlen(tag, kTagBytes));
    s.elem_bytes = get_u32(e + 8);
    s.count = get_u64(e + 16);
    s.offset = get_u64(e + 24);
    if (s.tag.empty() || s.elem_bytes == 0) fail(path, "bad section entry " + s.tag);
    if (s.offset % 8 != 0) fail(path, "misaligned section " + s.tag);
    const std::uint64_t bytes = s.count * s.elem_bytes;
    if (s.count != 0 && bytes / s.count != s.elem_bytes) fail(path, "section overflow");
    if (s.offset < payload_offset || s.offset > payload_offset + payload_bytes ||
        bytes > payload_offset + payload_bytes - s.offset) {
      fail(path, "section " + s.tag + " out of bounds (truncated file?)");
    }
    snap.sections_.push_back(std::move(s));
  }

  if (opts.verify_checksum &&
      fnv1a(kFnvBasis, base + payload_offset, static_cast<std::size_t>(payload_bytes)) !=
          checksum) {
    fail(path, "checksum mismatch (corrupt payload)");
  }

  // Structural invariants of the CSR sections (O(1); deep validation is
  // volcal_gen --validate's job, payload corruption is the checksum's).
  const auto n = static_cast<std::uint64_t>(snap.node_count_);
  const Section& offsets = snap.require("offsets", 8, n + 1);
  snap.require("adj", 8, snap.adjacency_count_);
  snap.require("ids", 8, n);
  const auto* off =
      reinterpret_cast<const std::size_t*>(base + offsets.offset);
  if (off[0] != 0 || off[n] != snap.adjacency_count_) {
    fail(path, "inconsistent CSR offsets");
  }
  return snap;
}

const Snapshot::Section* Snapshot::find(std::string_view tag) const {
  for (const Section& s : sections_) {
    if (s.tag == tag) return &s;
  }
  return nullptr;
}

const Snapshot::Section& Snapshot::require(std::string_view tag, std::uint32_t elem_bytes,
                                           std::uint64_t count) const {
  const Section* s = find(tag);
  if (s == nullptr) fail(path_, "missing section " + std::string(tag));
  if (s->elem_bytes != elem_bytes || s->count != count) {
    fail(path_, "section " + std::string(tag) + " has unexpected shape");
  }
  return *s;
}

GraphView Snapshot::graph() const {
  const auto n = static_cast<std::uint64_t>(node_count_);
  const Section& off = require("offsets", 8, n + 1);
  const Section& adj = require("adj", 8, adjacency_count_);
  return GraphView(reinterpret_cast<const std::size_t*>(map_->data() + off.offset),
                   reinterpret_cast<const NodeIndex*>(map_->data() + adj.offset),
                   node_count_, max_degree_, token_);
}

std::span<const NodeId> Snapshot::ids() const {
  const auto n = static_cast<std::uint64_t>(node_count_);
  const Section& s = require("ids", 8, n);
  return {reinterpret_cast<const NodeId*>(map_->data() + s.offset),
          static_cast<std::size_t>(n)};
}

std::span<const Port> Snapshot::ports(std::string_view tag) const {
  const Section& s = require(tag, 4, static_cast<std::uint64_t>(node_count_));
  return {reinterpret_cast<const Port*>(map_->data() + s.offset),
          static_cast<std::size_t>(s.count)};
}

std::span<const std::uint8_t> Snapshot::bytes(std::string_view tag) const {
  const Section& s = require(tag, 1, static_cast<std::uint64_t>(node_count_));
  return {map_->data() + s.offset, static_cast<std::size_t>(s.count)};
}

// --- typed writers ----------------------------------------------------------

namespace {

std::vector<PendingSection> tree_sections(const TreeLabeling& t) {
  return {port_section("parent", t.parent), port_section("left", t.left),
          port_section("right", t.right)};
}

PendingSection color_section(const std::vector<Color>& c) {
  return {"color", 1, c.size(), c.data()};
}

}  // namespace

void write_snapshot(const std::string& path, std::string_view family,
                    const LeafColoringInstance& inst) {
  auto sections = tree_sections(inst.labels.tree);
  sections.push_back(color_section(inst.labels.color));
  write_snapshot_file(path, family, inst.graph, inst.ids.span(), sections);
}

void write_snapshot(const std::string& path, std::string_view family,
                    const BalancedTreeInstance& inst) {
  auto sections = tree_sections(inst.labels.tree);
  sections.push_back(port_section("leftnbr", inst.labels.left_nbr));
  sections.push_back(port_section("rightnbr", inst.labels.right_nbr));
  write_snapshot_file(path, family, inst.graph, inst.ids.span(), sections);
}

void write_snapshot(const std::string& path, std::string_view family,
                    const HybridInstance& inst) {
  auto sections = tree_sections(inst.labels.bal.tree);
  sections.push_back(port_section("leftnbr", inst.labels.bal.left_nbr));
  sections.push_back(port_section("rightnbr", inst.labels.bal.right_nbr));
  sections.push_back(color_section(inst.labels.color));
  sections.push_back({"levelin", 4, inst.labels.level_in.size(), inst.labels.level_in.data()});
  write_snapshot_file(path, family, inst.graph, inst.ids.span(), sections);
}

void write_snapshot(const std::string& path, std::string_view family,
                    const HHInstance& inst) {
  const HybridLabeling& h = inst.labels.hybrid;
  auto sections = tree_sections(h.bal.tree);
  sections.push_back(port_section("leftnbr", h.bal.left_nbr));
  sections.push_back(port_section("rightnbr", h.bal.right_nbr));
  sections.push_back(color_section(h.color));
  sections.push_back({"levelin", 4, h.level_in.size(), h.level_in.data()});
  sections.push_back({"side", 1, inst.labels.side.size(), inst.labels.side.data()});
  write_snapshot_file(path, family, inst.graph, inst.ids.span(), sections);
}

bool sniff_snapshot(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char head[sizeof(kSnapshotMagic)];
  const bool ok = std::fread(head, 1, sizeof(head), f) == sizeof(head) &&
                  std::memcmp(head, kSnapshotMagic, sizeof(head)) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace volcal::io
