#define VOLCAL_ALLOW_DIRECT_SERIALIZE_INCLUDE  // this TU is the text layer
#include "io/serialize.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace volcal::io {
namespace {

constexpr const char* kMagic = "volcal-instance v1";

void write_edges(std::ostream& os, const Graph& g) {
  for (NodeIndex v = 0; v < g.node_count(); ++v) {
    auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeIndex w = nbrs[i];
      if (v < w) {
        os << "edge " << v << ' ' << (i + 1) << ' ' << w << ' ' << g.port_to(w, v)
           << '\n';
      }
    }
  }
}

void write_tree_fields(std::ostream& os, const TreeLabeling& t, NodeIndex v) {
  os << " p " << t.parent[v] << " lc " << t.left[v] << " rc " << t.right[v];
}

struct Parser {
  std::istream* is;
  std::string kind;
  NodeIndex n = 0;

  explicit Parser(std::istream& stream, const std::string& expected_kind) : is(&stream) {
    std::string line;
    if (!std::getline(*is, line)) throw std::runtime_error("io: empty stream");
    std::istringstream head(line);
    std::string w1, w2;
    head >> w1 >> w2 >> kind;
    if (w1 + " " + w2 != kMagic) throw std::runtime_error("io: bad magic: " + line);
    if (kind != expected_kind) {
      throw std::runtime_error("io: expected kind " + expected_kind + ", got " + kind);
    }
    std::string tag;
    *is >> tag >> n;
    if (tag != "n" || n < 0) throw std::runtime_error("io: bad node count line");
  }

  // Dispatches the remaining lines to the two callbacks until "end".
  template <typename NodeFn, typename EdgeFn>
  void parse(NodeFn&& on_node, EdgeFn&& on_edge) {
    std::string tag;
    while (*is >> tag) {
      if (tag == "end") return;
      if (tag == "node") {
        NodeIndex v;
        *is >> v;
        if (v < 0 || v >= n) throw std::runtime_error("io: node index out of range");
        on_node(v);
      } else if (tag == "edge") {
        NodeIndex u, v;
        Port pu, pv;
        *is >> u >> pu >> v >> pv;
        on_edge(u, pu, v, pv);
      } else {
        throw std::runtime_error("io: unknown tag " + tag);
      }
    }
    throw std::runtime_error("io: missing end marker");
  }

  // Reads "key value" where key must match; returns value.
  template <typename T>
  T field(const std::string& key) {
    std::string tag;
    T value;
    *is >> tag >> value;
    if (tag != key) throw std::runtime_error("io: expected field " + key + ", got " + tag);
    return value;
  }
};

char color_code(Color c) { return c == Color::Red ? 'R' : 'B'; }

Color parse_color(char c) {
  if (c == 'R') return Color::Red;
  if (c == 'B') return Color::Blue;
  throw std::runtime_error(std::string("io: bad color code ") + c);
}

}  // namespace

// ---------------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------------

void write_instance(std::ostream& os, const LeafColoringInstance& inst) {
  os << kMagic << " leafcoloring\n" << "n " << inst.node_count() << '\n';
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    os << "node " << v << " id " << inst.ids.id_of(v);
    write_tree_fields(os, inst.labels.tree, v);
    os << " chi " << color_code(inst.labels.color[v]) << '\n';
  }
  write_edges(os, inst.graph);
  os << "end\n";
}

void write_instance(std::ostream& os, const BalancedTreeInstance& inst) {
  os << kMagic << " balancedtree\n" << "n " << inst.node_count() << '\n';
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    os << "node " << v << " id " << inst.ids.id_of(v);
    write_tree_fields(os, inst.labels.tree, v);
    os << " ln " << inst.labels.left_nbr[v] << " rn " << inst.labels.right_nbr[v] << '\n';
  }
  write_edges(os, inst.graph);
  os << "end\n";
}

void write_instance(std::ostream& os, const HybridInstance& inst) {
  os << kMagic << " hybrid\n" << "n " << inst.node_count() << '\n';
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    os << "node " << v << " id " << inst.ids.id_of(v);
    write_tree_fields(os, inst.labels.bal.tree, v);
    os << " ln " << inst.labels.bal.left_nbr[v] << " rn " << inst.labels.bal.right_nbr[v]
       << " chi " << color_code(inst.labels.color[v]) << " lvl "
       << inst.labels.level_in[v] << '\n';
  }
  write_edges(os, inst.graph);
  os << "end\n";
}

// ---------------------------------------------------------------------------
// Readers
// ---------------------------------------------------------------------------

namespace {

template <typename Labels, typename NodeFields>
Instance<Labels> read_generic(std::istream& is, const std::string& kind,
                              NodeFields&& node_fields) {
  Parser parser(is, kind);
  Graph::Builder builder(parser.n);
  Labels labels(parser.n);
  std::vector<NodeId> ids(static_cast<std::size_t>(parser.n), 0);
  parser.parse(
      [&](NodeIndex v) {
        ids[static_cast<std::size_t>(v)] = parser.field<NodeId>("id");
        node_fields(parser, labels, v);
      },
      [&](NodeIndex u, Port pu, NodeIndex v, Port pv) {
        builder.add_edge_with_ports(u, v, pu, pv);
      });
  return {std::move(builder).build(), IdAssignment(std::move(ids)), std::move(labels)};
}

void read_tree_fields(Parser& p, TreeLabeling& t, NodeIndex v) {
  t.parent[v] = p.field<Port>("p");
  t.left[v] = p.field<Port>("lc");
  t.right[v] = p.field<Port>("rc");
}

}  // namespace

LeafColoringInstance read_leafcoloring(std::istream& is) {
  return read_generic<ColoredTreeLabeling>(
      is, "leafcoloring", [](Parser& p, ColoredTreeLabeling& l, NodeIndex v) {
        read_tree_fields(p, l.tree, v);
        l.color[v] = parse_color(p.field<char>("chi"));
      });
}

BalancedTreeInstance read_balancedtree(std::istream& is) {
  return read_generic<BalancedTreeLabeling>(
      is, "balancedtree", [](Parser& p, BalancedTreeLabeling& l, NodeIndex v) {
        read_tree_fields(p, l.tree, v);
        l.left_nbr[v] = p.field<Port>("ln");
        l.right_nbr[v] = p.field<Port>("rn");
      });
}

HybridInstance read_hybrid(std::istream& is) {
  return read_generic<HybridLabeling>(
      is, "hybrid", [](Parser& p, HybridLabeling& l, NodeIndex v) {
        read_tree_fields(p, l.bal.tree, v);
        l.bal.left_nbr[v] = p.field<Port>("ln");
        l.bal.right_nbr[v] = p.field<Port>("rn");
        l.color[v] = parse_color(p.field<char>("chi"));
        l.level_in[v] = p.field<int>("lvl");
      });
}

// ---------------------------------------------------------------------------
// DOT export
// ---------------------------------------------------------------------------

namespace {

void dot_tree_edges(std::ostream& os, const Graph& g, const TreeLabeling& t, NodeIndex n) {
  for (NodeIndex v = 0; v < n; ++v) {
    for (const auto& [port, tag] :
         {std::pair{t.left[v], "LC"}, std::pair{t.right[v], "RC"}}) {
      const NodeIndex child = resolve(g, v, port);
      if (child != kNoNode && child < n) {
        os << "  n" << v << " -> n" << child << " [label=\"" << tag << "\"];\n";
      }
    }
  }
}

}  // namespace

std::string to_dot(const LeafColoringInstance& inst, NodeIndex max_nodes) {
  const NodeIndex n =
      max_nodes > 0 ? std::min(max_nodes, inst.node_count()) : inst.node_count();
  std::ostringstream os;
  os << "digraph leafcoloring {\n  node [style=filled];\n";
  for (NodeIndex v = 0; v < n; ++v) {
    const char* fill = inst.labels.color[v] == Color::Red ? "salmon" : "lightblue";
    const NodeKind kind = classify(inst.graph, inst.labels.tree, v);
    const char* shape = kind == NodeKind::Internal ? "circle"
                        : kind == NodeKind::Leaf   ? "doublecircle"
                                                   : "box";
    os << "  n" << v << " [label=\"" << inst.ids.id_of(v) << "\", fillcolor=" << fill
       << ", shape=" << shape << "];\n";
  }
  dot_tree_edges(os, inst.graph, inst.labels.tree, n);
  os << "}\n";
  return os.str();
}

std::string to_dot(const BalancedTreeInstance& inst, NodeIndex max_nodes) {
  const NodeIndex n =
      max_nodes > 0 ? std::min(max_nodes, inst.node_count()) : inst.node_count();
  std::ostringstream os;
  os << "digraph balancedtree {\n  node [style=filled, fillcolor=white];\n";
  for (NodeIndex v = 0; v < n; ++v) {
    os << "  n" << v << " [label=\"" << inst.ids.id_of(v) << "\"];\n";
  }
  dot_tree_edges(os, inst.graph, inst.labels.tree, n);
  for (NodeIndex v = 0; v < n; ++v) {
    const NodeIndex rn = resolve(inst.graph, v, inst.labels.right_nbr[v]);
    if (rn != kNoNode && rn < n) {
      os << "  n" << v << " -> n" << rn << " [style=dashed, constraint=false];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace volcal::io
