// Communication-complexity lower-bound machinery (paper Section 2.5 and
// Proposition 4.9).
//
// The embedding (E, g) of DISJ into BalancedTree: E(a, b) is the Fig.-5
// instance, g reads the root's output — g = 1 ("balanced") iff disj(a,b) = 1.
// Every query has communication cost 0 except queries revealing a leaf pair
// (u_i, w_i)'s lateral labels, which cost 2 bits (Alice and Bob exchange a_i
// and b_i).  Theorem 2.9 then turns the Ω(N) randomized communication bound
// for DISJ into an Ω(n) volume bound.
//
// We reproduce the *reduction*: CommAccountant charges exactly those bits to
// any algorithm's execution, and the fooling-pair duel demonstrates the lower
// bound mechanism executably against deterministic algorithms with a sublinear
// budget.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "labels/generators.hpp"
#include "lcl/problems/balanced_tree.hpp"
#include "runtime/execution.hpp"

namespace volcal {

inline bool disj(const std::vector<std::uint8_t>& a, const std::vector<std::uint8_t>& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] && b[i]) return false;  // disj = 0 when the sets intersect
  }
  return true;
}

// Per-query communication accounting over a DISJ embedding: counts 2 bits for
// every *first* visit of a u_i or w_i (the only nodes whose labels depend on
// (a_i, b_i)); everything else is simulated for free (Prop. 4.9).
class CommAccountant {
 public:
  explicit CommAccountant(const DisjInstance& embedding);

  // Total bits Alice and Bob exchange to answer the queries recorded in
  // `exec` (call after the algorithm has run).
  std::int64_t bits_for(const Execution& exec) const;

  // Indices i whose leaf pair was (at least partly) visited.
  std::vector<std::uint8_t> pairs_touched(const Execution& exec) const;

 private:
  const DisjInstance* embedding_;
  std::vector<std::int64_t> pair_of_;  // node -> pair index, -1 otherwise
};

// A deterministic BalancedTree algorithm from the root, given a query budget.
// Returns the root's output.
using RootedBtAlgorithm =
    std::function<BtOutput(const BalancedTreeInstance&, Execution&)>;

struct FoolingResult {
  bool algorithm_exceeded_budget = false;
  bool fooled = false;              // found an instance pair the algorithm gets wrong
  std::int64_t pair_index = -1;     // the untouched index used for fooling
  std::int64_t bits_used = 0;       // communication bits on the base instance
  std::int64_t volume_used = 0;
  BtOutput base_output;             // on E(0,0) (compatible; truth = Balanced)
  BtOutput planted_output;          // on E(e_i,e_i) (incompatible at v_i; truth = Unbalanced)
};

// The executable lower-bound mechanism (Prop. 4.9 via fooling pairs): run the
// algorithm from the root of E(0,0) within `budget` volume; if some leaf pair
// i was never visited, plant an intersection at i — the algorithm's execution
// is unchanged, so its (identical) answer is wrong on one of the two
// instances.
FoolingResult duel_balancedtree_volume(const RootedBtAlgorithm& algorithm, int depth,
                                       std::int64_t budget);

}  // namespace volcal
