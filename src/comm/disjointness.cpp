#include "comm/disjointness.hpp"

namespace volcal {

CommAccountant::CommAccountant(const DisjInstance& embedding) : embedding_(&embedding) {
  pair_of_.assign(embedding.instance.node_count(), -1);
  for (std::size_t i = 0; i < embedding.u.size(); ++i) {
    pair_of_[embedding.u[i]] = static_cast<std::int64_t>(i);
    pair_of_[embedding.w[i]] = static_cast<std::int64_t>(i);
  }
}

std::int64_t CommAccountant::bits_for(const Execution& exec) const {
  // Charge 2 bits per visited pair member: answering any query that reveals
  // u_i's or w_i's labels requires knowing both a_i and b_i (Prop. 4.9).
  std::int64_t bits = 0;
  for (const NodeIndex v : exec.visited_nodes()) {
    if (pair_of_[v] >= 0) bits += 2;
  }
  return bits;
}

std::vector<std::uint8_t> CommAccountant::pairs_touched(const Execution& exec) const {
  std::vector<std::uint8_t> touched(embedding_->u.size(), 0);
  for (const NodeIndex v : exec.visited_nodes()) {
    if (pair_of_[v] >= 0) touched[static_cast<std::size_t>(pair_of_[v])] = 1;
  }
  return touched;
}

FoolingResult duel_balancedtree_volume(const RootedBtAlgorithm& algorithm, int depth,
                                       std::int64_t budget) {
  FoolingResult result;
  const auto big_n = std::size_t{1} << (depth - 1);
  const std::vector<std::uint8_t> zeros(big_n, 0);
  DisjInstance base = make_disj_embedding(depth, zeros, zeros);
  CommAccountant accountant(base);

  Execution exec(base.instance.graph, base.instance.ids, base.root, budget);
  try {
    result.base_output = algorithm(base.instance, exec);
  } catch (const QueryBudgetExceeded&) {
    result.algorithm_exceeded_budget = true;
    return result;
  }
  result.bits_used = accountant.bits_for(exec);
  result.volume_used = exec.volume();

  const auto touched = accountant.pairs_touched(exec);
  std::int64_t untouched = -1;
  for (std::size_t i = 0; i < touched.size(); ++i) {
    if (!touched[i]) {
      untouched = static_cast<std::int64_t>(i);
      break;
    }
  }
  if (untouched < 0) return result;  // algorithm saw every pair: not fooled
  result.pair_index = untouched;

  // Plant the intersection at the untouched index; the deterministic
  // algorithm's view is unchanged so its answer cannot change.
  std::vector<std::uint8_t> a(big_n, 0), b(big_n, 0);
  a[static_cast<std::size_t>(untouched)] = 1;
  b[static_cast<std::size_t>(untouched)] = 1;
  DisjInstance planted = make_disj_embedding(depth, a, b);
  Execution exec2(planted.instance.graph, planted.instance.ids, planted.root, budget);
  try {
    result.planted_output = algorithm(planted.instance, exec2);
  } catch (const QueryBudgetExceeded&) {
    result.algorithm_exceeded_budget = true;
    return result;
  }

  // Truth: E(0,0) is globally compatible => root must say Balanced (Lemma
  // 4.7); E(e_i, e_i) has an incompatible v_i below the root => root must say
  // Unbalanced.  Identical answers are wrong on one side; differing answers
  // would contradict determinism (the executions see identical labels).
  const bool base_right = result.base_output.beta == Balance::Balanced;
  const bool planted_right = result.planted_output.beta == Balance::Unbalanced;
  result.fooled = !(base_right && planted_right);
  return result;
}

}  // namespace volcal
