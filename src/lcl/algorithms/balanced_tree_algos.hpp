// BalancedTree algorithms (paper Section 4).
//
// One algorithm serves both measurements (Prop. 4.8): starting from an
// internal node it BFS-explores G_T descendants down to the nearest-leaf
// depth d, compat-checking each — distance O(d) = O(log n), volume Θ(2^d)
// (= Θ(n) from the root of a balanced instance, matching the Ω(n) volume
// lower bound of Prop. 4.9, which no algorithm can beat).
//
// BalancedSource concept = TreeSource + ln_port(v) / rn_port(v).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>

#include "lcl/algorithms/local_view.hpp"
#include "lcl/problems/balanced_tree.hpp"

namespace volcal {

// Definition 4.2 evaluated through queries (only meaningful for consistent v).
template <typename Source>
bool query_bt_compatible(Source& src, NodeIndex v) {
  TreeView<Source> view(src);
  if (view.kind(v) == NodeKind::Inconsistent) return false;
  const bool v_internal = view.internal(v);
  const NodeIndex ln = view.follow(v, src.ln_port(v));
  const NodeIndex rn = view.follow(v, src.rn_port(v));

  // type-preserving (+ the `leaves` condition).
  if (src.ln_port(v) != kNoPort) {
    if (ln == kNoNode) return false;
    if (v_internal ? !view.internal(ln) : !view.leaf(ln)) return false;
  }
  if (src.rn_port(v) != kNoPort) {
    if (rn == kNoNode) return false;
    if (v_internal ? !view.internal(rn) : !view.leaf(rn)) return false;
  }
  // agreement.
  if (ln != kNoNode && view.follow(ln, src.rn_port(ln)) != v) return false;
  if (rn != kNoNode && view.follow(rn, src.ln_port(rn)) != v) return false;

  if (v_internal) {
    const NodeIndex lc = view.left(v);
    const NodeIndex rc = view.right(v);
    // siblings.
    if (view.follow(lc, src.rn_port(lc)) != rc) return false;
    if (view.follow(rc, src.ln_port(rc)) != lc) return false;
    // persistence (see balanced_tree.cpp for the paper-typo note): the
    // child-level lateral chain continues across sibling groups.
    if (rn != kNoNode) {
      if (!view.internal(rn)) return false;
      const NodeIndex wl = view.left(rn);
      if (view.follow(rc, src.rn_port(rc)) != wl) return false;
      if (wl == kNoNode || view.follow(wl, src.ln_port(wl)) != rc) return false;
    }
    if (ln != kNoNode) {
      if (!view.internal(ln)) return false;
      const NodeIndex ur = view.right(ln);
      if (view.follow(lc, src.ln_port(lc)) != ur) return false;
      if (ur == kNoNode || view.follow(ur, src.rn_port(ur)) != lc) return false;
    }
  }
  return true;
}

// Prop. 4.8.  `depth_limit` <= 0 means "no limit" (the exhaustive-volume
// flavor); the distance-optimal flavor passes ~log2(n) + O(1), which Lemma
// 4.6 guarantees is enough to hit either a leaf or an incompatible node.
// `at` lets embedding problems (Hybrid-THC) solve for a node other than the
// execution's start; kNoNode means src.start().
template <typename Source>
BtOutput balancedtree_solve(Source& src, std::int64_t depth_limit = 0,
                            NodeIndex at = kNoNode) {
  TreeView<Source> view(src);
  const NodeIndex start = at == kNoNode ? src.start() : at;
  const NodeKind k = view.kind(start);
  if (k == NodeKind::Inconsistent) return {Balance::Unbalanced, kNoPort};  // unconstrained
  if (!query_bt_compatible(src, start)) {
    return {Balance::Unbalanced, kNoPort};  // condition 1
  }
  if (k == NodeKind::Leaf) {
    return {Balance::Balanced, src.parent_port(start)};  // condition 2
  }

  // Internal & compatible: BFS descendants (LC before RC, so the first
  // incompatible node found at its depth is the leftmost one) down to the
  // nearest-leaf depth d; any incompatible descendant within d forces
  // (U, first hop towards it), otherwise (B, P(v)).
  struct Entry {
    NodeIndex node;
    std::int64_t depth;
    Port first_hop;  // port at `start` beginning the path to this node
  };
  std::deque<Entry> frontier;
  std::unordered_set<NodeIndex> seen{start};
  std::int64_t leaf_depth = -1;
  frontier.push_back({start, 0, kNoPort});
  Port defect_hop = kNoPort;
  while (!frontier.empty()) {
    const Entry e = frontier.front();
    frontier.pop_front();
    if (leaf_depth >= 0 && e.depth >= leaf_depth) break;     // scanned depth <= d
    if (depth_limit > 0 && e.depth >= depth_limit) break;    // defensive cutoff
    const NodeIndex lc = view.left(e.node);
    const NodeIndex rc = view.right(e.node);
    int child_slot = 0;
    for (const NodeIndex child : {lc, rc}) {
      const Port hop = e.depth == 0 ? (child_slot == 0 ? src.left_port(start)
                                                       : src.right_port(start))
                                    : e.first_hop;
      ++child_slot;
      if (child == kNoNode || !seen.insert(child).second) continue;
      if (!query_bt_compatible(src, child) && defect_hop == kNoPort) {
        defect_hop = hop;  // nearest (BFS) leftmost (LC-first) incompatible
      }
      if (!view.internal(child)) {
        if (leaf_depth < 0) leaf_depth = e.depth + 1;
      } else {
        frontier.push_back({child, e.depth + 1, hop});
      }
    }
    if (defect_hop != kNoPort) break;
  }
  if (defect_hop != kNoPort) return {Balance::Unbalanced, defect_hop};
  return {Balance::Balanced, src.parent_port(start)};
}

}  // namespace volcal
