// Hybrid-THC(k) algorithms (paper Section 6).
//
//  * Distance solver (Θ(log n), Thm. 6.3): BalancedTree is always solvable,
//    so every level-1 node solves its component with the Prop.-4.8 algorithm
//    and every node at level >= 2 goes exempt after an O(1) certificate check
//    — "every node at any level >= 2 can simply output X, knowing that every
//    level-1 sub-instance can be solved".
//  * Volume solver (Θ̃(n^{1/k}) randomized): the Section-5 waypoint machinery
//    with the recursion floor replaced by budgeted BalancedTree solving —
//    level-1 components are solved exhaustively iff they are light
//    (<= bt_limit nodes); heavy components decline unanimously.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_set>
#include <vector>

#include "lcl/algorithms/balanced_tree_algos.hpp"
#include "lcl/algorithms/hthc_algos.hpp"
#include "lcl/problems/hybrid_thc.hpp"

namespace volcal {

// Size of v's level-1 component discovered by BFS over hierarchy links,
// stopping early at `limit` (returns limit+1 when the component is larger).
// Also reports the component's node set when within the limit.
template <typename Source>
std::int64_t level1_component(HierView<Source>& view, NodeIndex v, std::int64_t limit,
                              std::vector<NodeIndex>* nodes_out = nullptr) {
  std::deque<NodeIndex> frontier{v};
  std::unordered_set<NodeIndex> seen{v};
  while (!frontier.empty()) {
    const NodeIndex u = frontier.front();
    frontier.pop_front();
    for (const NodeIndex nb : {view.link_up(u), view.link_lc(u), view.link_rc(u)}) {
      if (nb == kNoNode || view.level(nb) != 1 || !seen.insert(nb).second) continue;
      if (static_cast<std::int64_t>(seen.size()) > limit) return limit + 1;
      frontier.push_back(nb);
    }
  }
  if (nodes_out != nullptr) nodes_out->assign(seen.begin(), seen.end());
  return static_cast<std::int64_t>(seen.size());
}

struct HybridConfig {
  HthcConfig thc;            // window etc. for levels >= 2
  std::int64_t bt_limit = 0; // level-1 lightness threshold (4·ceil(n^{1/k}))
  std::int64_t bt_depth_limit = 0;  // 0 = unbounded BalancedTree search

  static HybridConfig make(int k, std::int64_t n, bool waypoints = false,
                           RandomTape* tape = nullptr) {
    HybridConfig cfg;
    cfg.thc = HthcConfig::make(k, n, waypoints, tape);
    cfg.bt_limit = 2 * cfg.thc.window;  // = 4·ceil(n^{1/k})
    return cfg;
  }
};

// Distance-optimal solver (Thm. 6.3 upper bound).
template <typename Source>
HybridOutput hybrid_solve_distance(Source& src, const HybridConfig& cfg) {
  const NodeIndex v = src.start();
  auto level_of = [&src](NodeIndex u) { return src.level_in(u); };
  HierView<Source> view(src, cfg.thc.k + 1, level_of);
  const int level = view.level(v);
  if (level == 1) {
    const std::int64_t depth_limit =
        cfg.bt_depth_limit > 0
            ? cfg.bt_depth_limit
            : static_cast<std::int64_t>(std::ceil(std::log2(std::max<double>(src.n(), 2)))) + 4;
    return HybridOutput::balanced(balancedtree_solve(src, depth_limit));
  }
  // Level >= 2 (or exempt): X is always feasible because BalancedTree always
  // solves below; at level 2 we verify the certificate link exists (O(1)).
  if (level == 2 && view.down(v) == kNoNode) {
    return HybridOutput::symbol(ThcColor::D);  // corrupt input: decline
  }
  return HybridOutput::symbol(ThcColor::X);
}

// Volume solver: the waypoint HthcSolver over explicit levels, with the
// level-2 certificate "the BalancedTree component below is light" and a
// level-1 floor that solves light components and declines heavy ones.
template <typename Source>
class HybridVolumeSolver {
 public:
  HybridVolumeSolver(Source& src, const HybridConfig& cfg) : src_(&src), cfg_(cfg) {
    HthcConfig thc = cfg.thc;
    thc.level_override = [this](NodeIndex u) { return src_->level_in(u); };
    thc.level2_certifier = [this](NodeIndex u) { return certify_level2(u); };
    solver_.emplace(src, thc);
  }

  HybridOutput solve() { return solve_at(src_->start()); }

  HybridOutput solve_at(NodeIndex v) {
    if (src_->level_in(v) == 1) {
      HierView<Source>& view = solver_->view();
      const std::int64_t size = level1_component(view, v, cfg_.bt_limit);
      if (size > cfg_.bt_limit) {
        return HybridOutput::symbol(ThcColor::D);  // heavy: decline unanimously
      }
      return HybridOutput::balanced(balancedtree_solve(*src_, /*depth_limit=*/0, v));
    }
    return HybridOutput::symbol(solver_->solve_at(v));
  }

 private:
  bool certify_level2(NodeIndex u) {
    // The component below u certifies exemption iff it is light — exactly the
    // decision its own nodes make, so the certificate agrees with their
    // outputs (solved vs declined).
    HierView<Source>& view = solver_->view();
    const NodeIndex d = view.down(u);
    if (d == kNoNode) return false;
    return level1_component(view, d, cfg_.bt_limit) <= cfg_.bt_limit;
  }

  Source* src_;
  HybridConfig cfg_;
  std::optional<HthcSolver<Source>> solver_;
};

template <typename Source>
HybridOutput hybrid_solve_volume(Source& src, const HybridConfig& cfg) {
  HybridVolumeSolver<Source> solver(src, cfg);
  return solver.solve();
}

}  // namespace volcal
