// Concrete CONGEST algorithms (paper Section 7.3).
//
//  * BalancedTree flooding (Observation 7.4): every incompatible /
//    inconsistent node announces a defect; nodes rebroadcast for O(log n)
//    rounds; a node outputs Unbalanced iff a defect announcement reached it
//    from below.  Rounds O(log n) with 1-bit messages — contrasted with the
//    Ω(n) query lower bound.
//  * Two-tree bit relay (Example 7.6): each u-leaf must output the bit held
//    by the mirrored v-leaf; all traffic crosses the single root-root edge,
//    forcing Θ(depth + 2^depth / B) rounds under bandwidth B — contrasted
//    with O(log n) volume for the same problem.
#pragma once

#include <cstdint>
#include <vector>

#include "labels/generators.hpp"
#include "lcl/problems/balanced_tree.hpp"
#include "runtime/congest.hpp"

namespace volcal {

struct CongestRunStats {
  int rounds = 0;
  std::int64_t total_bits = 0;
  bool solved = false;
};

// Runs defect flooding on a BalancedTree instance; returns per-node
// "defect reached me from my subtree" flags and the round count.  A correct
// output for BalancedTree follows by combining the flag with local state.
struct BtFloodResult {
  CongestRunStats stats;
  std::vector<std::uint8_t> defect_below;  // 1 if some defect is in v's subtree
};
BtFloodResult congest_balancedtree_flood(const BalancedTreeInstance& inst, int bandwidth_bits,
                                         int max_rounds);

// The full Observation 7.4 solver: runs the defect flood and derives every
// node's (β, p) output — compatible leaves pass up, internal nodes point at
// the child whose subtree reported a defect.  O(log n) rounds with 1-bit
// messages, versus the Ω(n) query volume of Prop. 4.9.
struct BtCongestSolveResult {
  CongestRunStats stats;
  std::vector<BtOutput> output;
};
BtCongestSolveResult congest_balancedtree_solve(const BalancedTreeInstance& inst,
                                                int bandwidth_bits, int max_rounds);

// Solves the two-tree gadget: every u-leaf learns its mirrored bit.  Bits are
// pipelined up the v-tree, across the root edge (B per round), and down the
// u-tree.  Returns the rounds needed until all u-leaves hold their bit.
struct TwoTreeResult {
  CongestRunStats stats;
  std::vector<std::uint8_t> learned;  // learned[i] = bit delivered to u_leaves[i]
};
TwoTreeResult congest_two_tree_relay(const TwoTreeGadget& gadget, int bandwidth_bits,
                                     int max_rounds);

// The same two-tree problem in the query model: each u-leaf walks up to the
// roots and down to its mirror — volume O(depth) = O(log n).
std::uint8_t query_two_tree_bit(const TwoTreeGadget& gadget, NodeIndex u_leaf,
                                std::int64_t* volume_out);

// LeafColoring in CONGEST (the Obs. 7.4 pattern applied to §3): each leaf
// starts a 2-bit announcement of its χ_in; internal nodes adopt the first
// child announcement they hear (deterministic tie-break on port order) and
// forward it upward.  O(log n) rounds on instances whose nearest-leaf depth
// is O(log n) — matching D-DIST, far below the Θ(n) query volume.
struct LeafColoringCongestResult {
  CongestRunStats stats;
  std::vector<Color> output;
  bool all_decided = false;
};
LeafColoringCongestResult congest_leafcoloring(const LeafColoringInstance& inst,
                                               int bandwidth_bits, int max_rounds);

}  // namespace volcal
