#include "lcl/algorithms/congest_algos.hpp"

#include <algorithm>
#include <cmath>

#include "graph/bfs.hpp"
#include "lcl/problems/balanced_tree.hpp"
#include "runtime/execution.hpp"

namespace volcal {

BtFloodResult congest_balancedtree_flood(const BalancedTreeInstance& inst, int bandwidth_bits,
                                         int max_rounds) {
  const Graph& g = inst.graph;
  const NodeIndex n = g.node_count();
  BtFloodResult out;
  out.defect_below.assign(n, 0);

  // Round 0 (local): every node knows whether it is itself a defect.
  std::vector<std::uint8_t> defect(n, 0);
  for (NodeIndex v = 0; v < n; ++v) {
    if (is_consistent(g, inst.labels.tree, v) && !bt_compatible(g, inst.labels, v)) {
      defect[v] = 1;
      out.defect_below[v] = 1;
    }
  }

  // Flood "defect below" claims upward along parent claims: each node that
  // learns of a defect in its subtree tells its parent with a 1-bit message.
  std::vector<std::uint8_t> announced(n, 0);
  CongestSim sim(g, bandwidth_bits);
  auto step = [&](NodeIndex v, int, const CongestSim::PortMessages& inbox)
      -> CongestSim::PortMessages {
    CongestSim::PortMessages outbox(g.degree(v));
    // Any inbound defect bit from a child port marks the subtree dirty.
    for (std::size_t pi = 0; pi < inbox.size(); ++pi) {
      if (!inbox[pi].empty() && inbox[pi][0] == 1) {
        const NodeIndex sender = g.neighbor(v, static_cast<Port>(pi + 1));
        // Count it only if the sender claims v as parent (an upward edge).
        if (parent_of(g, inst.labels.tree, sender) == v) out.defect_below[v] = 1;
      }
    }
    if (out.defect_below[v] && !announced[v]) {
      announced[v] = 1;
      const Port pp = inst.labels.tree.parent[v];
      if (pp >= 1 && pp <= g.degree(v)) outbox[pp - 1] = {1};
    }
    return outbox;
  };
  int rounds = sim.run(step, [] { return false; }, max_rounds);
  out.stats.rounds = rounds;
  out.stats.total_bits = sim.total_bits_sent();
  out.stats.solved = true;
  return out;
}

BtCongestSolveResult congest_balancedtree_solve(const BalancedTreeInstance& inst,
                                                int bandwidth_bits, int max_rounds) {
  const Graph& g = inst.graph;
  const BalancedTreeLabeling& l = inst.labels;
  const NodeIndex n = g.node_count();
  auto flood = congest_balancedtree_flood(inst, bandwidth_bits, max_rounds);
  BtCongestSolveResult out;
  out.stats = flood.stats;
  out.output.assign(n, BtOutput{Balance::Unbalanced, kNoPort});
  for (NodeIndex v = 0; v < n; ++v) {
    if (!is_consistent(g, l.tree, v)) continue;  // unconstrained
    if (!bt_compatible(g, l, v)) continue;       // (U, ⊥) already set
    if (is_leaf(g, l.tree, v)) {
      out.output[v] = {Balance::Balanced, l.tree.parent[v]};
      continue;
    }
    // Internal compatible: point at a child whose subtree flooded a defect;
    // no defect below means the subtree is a balanced binary tree (Lemma
    // 4.6), so pass (B, P) upward.
    const NodeIndex lc = left_child_of(g, l.tree, v);
    const NodeIndex rc = right_child_of(g, l.tree, v);
    if (lc != kNoNode && flood.defect_below[lc]) {
      out.output[v] = {Balance::Unbalanced, l.tree.left[v]};
    } else if (rc != kNoNode && flood.defect_below[rc]) {
      out.output[v] = {Balance::Unbalanced, l.tree.right[v]};
    } else {
      out.output[v] = {Balance::Balanced, l.tree.parent[v]};
    }
  }
  return out;
}

TwoTreeResult congest_two_tree_relay(const TwoTreeGadget& gadget, int bandwidth_bits,
                                     int max_rounds) {
  const Graph& g = gadget.graph;
  const NodeIndex n = g.node_count();
  const auto leaf_count = static_cast<std::int64_t>(gadget.v_leaves.size());

  // Node roles: leaf index for v-leaves (bit sources) and u-leaves (sinks).
  std::vector<std::int64_t> v_leaf_index(n, -1), u_leaf_index(n, -1);
  for (std::size_t i = 0; i < gadget.v_leaves.size(); ++i) {
    v_leaf_index[gadget.v_leaves[i]] = static_cast<std::int64_t>(i);
    u_leaf_index[gadget.u_leaves[i]] = static_cast<std::int64_t>(i);
  }

  // Message format: repeated records of (index, bit); the index takes
  // ceil(log2 N) bits — CONGEST's canonical O(log n)-bit word.
  int idx_bits = 1;
  while ((std::int64_t{1} << idx_bits) < leaf_count) ++idx_bits;
  const int record_bits = idx_bits + 1;
  const int records_per_msg = std::max(1, bandwidth_bits / record_bits);

  struct NodeState {
    std::vector<std::pair<std::int64_t, std::uint8_t>> pending_up;    // toward own root
    std::vector<std::pair<std::int64_t, std::uint8_t>> pending_down;  // toward u-leaves
  };
  std::vector<NodeState> state(n);
  for (std::size_t i = 0; i < gadget.v_leaves.size(); ++i) {
    state[gadget.v_leaves[i]].pending_up.emplace_back(static_cast<std::int64_t>(i),
                                                      gadget.bits[i]);
  }

  TwoTreeResult result;
  result.learned.assign(gadget.u_leaves.size(), 2);  // 2 = unknown
  std::int64_t delivered = 0;

  // Routing: in the v-tree, "up" is port 1 (root edge at the root); in the
  // u-tree, a record for leaf index i descends left/right by index range.
  const NodeIndex tree_n = gadget.root_v;  // == nodes per tree
  auto in_u_tree = [&](NodeIndex v) { return v < tree_n; };

  auto encode = [&](std::vector<std::pair<std::int64_t, std::uint8_t>>& queue)
      -> CongestSim::Message {
    CongestSim::Message msg;
    const int take = std::min<std::int64_t>(records_per_msg,
                                            static_cast<std::int64_t>(queue.size()));
    for (int r = 0; r < take; ++r) {
      auto [idx, bit] = queue[static_cast<std::size_t>(r)];
      for (int b = 0; b < idx_bits; ++b) msg.push_back((idx >> b) & 1);
      msg.push_back(bit);
    }
    queue.erase(queue.begin(), queue.begin() + take);
    return msg;
  };
  auto decode = [&](const CongestSim::Message& msg) {
    std::vector<std::pair<std::int64_t, std::uint8_t>> records;
    const auto rb = static_cast<std::size_t>(record_bits);
    for (std::size_t off = 0; off + rb <= msg.size(); off += rb) {
      std::int64_t idx = 0;
      for (int b = 0; b < idx_bits; ++b) idx |= static_cast<std::int64_t>(msg[off + b]) << b;
      records.emplace_back(idx, msg[off + static_cast<std::size_t>(idx_bits)]);
    }
    return records;
  };

  // u-tree leaf index ranges for downward routing: leaf i sits under the
  // child whose heap subtree contains heap index first_leaf + i.
  const NodeIndex first_leaf = gadget.u_leaves.front();

  CongestSim sim(g, bandwidth_bits);
  auto step = [&](NodeIndex v, int, const CongestSim::PortMessages& inbox)
      -> CongestSim::PortMessages {
    CongestSim::PortMessages outbox(g.degree(v));
    for (const auto& msg : inbox) {
      if (msg.empty()) continue;
      for (auto [idx, bit] : decode(msg)) {
        if (!in_u_tree(v)) {
          state[v].pending_up.emplace_back(idx, bit);  // still in the v-tree
        } else if (u_leaf_index[v] >= 0) {
          if (result.learned[static_cast<std::size_t>(idx)] == 2) {
            result.learned[static_cast<std::size_t>(idx)] = bit;
            ++delivered;
          }
        } else {
          state[v].pending_down.emplace_back(idx, bit);
        }
      }
    }
    if (!in_u_tree(v)) {
      // Send up toward the v-root; the v-root sends across the root edge.
      if (!state[v].pending_up.empty()) {
        outbox[0] = encode(state[v].pending_up);  // port 1 = parent / root edge
      }
    } else {
      // Route records down by leaf index range.
      auto& queue = state[v].pending_down;
      if (!queue.empty()) {
        // Partition up to one message per child port (2 = left, 3 = right).
        std::vector<std::pair<std::int64_t, std::uint8_t>> left_q, right_q, rest;
        for (auto rec : queue) {
          // Walk the heap path from v to leaf first_leaf + rec.first.
          NodeIndex target = first_leaf + rec.first;
          NodeIndex cur = target;
          NodeIndex hop = target;
          while (cur != v && cur != 0) {
            hop = cur;
            cur = (cur - 1) / 2;
          }
          if (cur != v) continue;  // mis-routed; drop (cannot happen from root path)
          (hop == 2 * v + 1 ? left_q : right_q).push_back(rec);
        }
        CongestSim::Message lm = encode(left_q), rm = encode(right_q);
        if (!lm.empty()) outbox[1] = std::move(lm);
        if (!rm.empty()) outbox[2] = std::move(rm);
        rest = std::move(left_q);
        rest.insert(rest.end(), right_q.begin(), right_q.end());
        queue = std::move(rest);
      }
    }
    return outbox;
  };
  const int rounds =
      sim.run(step, [&] { return delivered == leaf_count; }, max_rounds);
  result.stats.rounds = rounds;
  result.stats.total_bits = sim.total_bits_sent();
  result.stats.solved = delivered == leaf_count;
  return result;
}

LeafColoringCongestResult congest_leafcoloring(const LeafColoringInstance& inst,
                                               int bandwidth_bits, int max_rounds) {
  const Graph& g = inst.graph;
  const NodeIndex n = g.node_count();
  LeafColoringCongestResult out;
  out.output.assign(n, Color::Red);

  // Role assignment (local, round 0).
  std::vector<std::uint8_t> decided(n, 0);
  std::vector<std::uint8_t> pending(n, 0);  // has an announcement to send up
  for (NodeIndex v = 0; v < n; ++v) {
    if (!is_internal(g, inst.labels.tree, v)) {
      out.output[v] = inst.labels.color[v];  // leaf/inconsistent echoes χ_in
      decided[v] = 1;
      if (is_leaf(g, inst.labels.tree, v)) pending[v] = 1;
    }
  }

  // Message: one bit, the announced color (R=0, B=1).  A node relays the
  // color to its claimed parent; internal nodes adopt the first announcement
  // arriving from an acknowledged child (lowest port on ties).
  std::int64_t undecided = 0;
  for (NodeIndex v = 0; v < n; ++v) undecided += decided[v] ? 0 : 1;
  CongestSim sim(g, bandwidth_bits);
  auto step = [&](NodeIndex v, int, const CongestSim::PortMessages& inbox)
      -> CongestSim::PortMessages {
    CongestSim::PortMessages outbox(g.degree(v));
    if (!decided[v]) {
      for (std::size_t pi = 0; pi < inbox.size(); ++pi) {
        if (inbox[pi].empty()) continue;
        const NodeIndex sender = g.neighbor(v, static_cast<Port>(pi + 1));
        // Only child announcements count (the child names v as parent and v
        // claims it as a child) — exactly the G_T edges of Obs. 3.7.
        if (parent_of(g, inst.labels.tree, sender) != v) continue;
        if (left_child_of(g, inst.labels.tree, v) != sender &&
            right_child_of(g, inst.labels.tree, v) != sender) {
          continue;
        }
        out.output[v] = inbox[pi][0] ? Color::Blue : Color::Red;
        decided[v] = 1;
        pending[v] = 1;
        --undecided;
        break;
      }
    }
    if (pending[v] && decided[v]) {
      const Port pp = inst.labels.tree.parent[v];
      if (pp >= 1 && pp <= g.degree(v)) {
        outbox[pp - 1] = {static_cast<std::uint8_t>(out.output[v] == Color::Blue)};
      }
      pending[v] = 0;
    }
    return outbox;
  };
  const int rounds = sim.run(step, [&] { return undecided == 0; }, max_rounds);
  out.stats.rounds = rounds;
  out.stats.total_bits = sim.total_bits_sent();
  out.stats.solved = undecided == 0;
  out.all_decided = undecided == 0;
  return out;
}

std::uint8_t query_two_tree_bit(const TwoTreeGadget& gadget, NodeIndex u_leaf,
                                std::int64_t* volume_out) {
  Execution exec(gadget.graph, gadget.ids, u_leaf);
  // Walk up to the u-root (heap parent steps), across, then descend the
  // v-tree mirroring the heap path.
  std::vector<Port> path_down;  // child ports (2 = left, 3 = right), root first
  NodeIndex cur = u_leaf;
  while (cur != 0) {
    const NodeIndex parent = (cur - 1) / 2;
    path_down.push_back(cur == 2 * parent + 1 ? 2 : 3);
    cur = exec.query(cur, 1);  // port 1 = parent (root edge at the root)
  }
  std::reverse(path_down.begin(), path_down.end());
  NodeIndex mirror = exec.query(0, 1);  // across the root-root edge
  for (const Port p : path_down) mirror = exec.query(mirror, p);
  if (volume_out != nullptr) *volume_out = exec.volume();
  // The bit lives in the gadget's side table (it is the mirrored leaf's input).
  const auto it = std::find(gadget.v_leaves.begin(), gadget.v_leaves.end(), mirror);
  return gadget.bits[static_cast<std::size_t>(it - gadget.v_leaves.begin())];
}

}  // namespace volcal
