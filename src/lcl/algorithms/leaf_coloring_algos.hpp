// LeafColoring algorithms (paper Section 3), written against the TreeSource
// concept so they run both on materialized instances and against adaptive
// adversaries.
//
//  * nearest-leaf search (Prop. 3.9): deterministic, distance O(log n); its
//    *volume* is Θ(n) on complete trees, matching the D-VOL lower bound.
//  * leftmost descent: deterministic alternative with volume = depth of the
//    leftmost descendant leaf (Θ(n) worst case; the natural "cheap when
//    lucky" deterministic strategy the Prop. 3.13 adversary defeats).
//  * RWtoLeaf (Algorithm 1, Prop. 3.10): randomized, volume O(log n) whp;
//    truncation per Remark 3.11.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "lcl/algorithms/local_view.hpp"
#include "runtime/randomness.hpp"
#include "util/stamped_set.hpp"

namespace volcal {

// Prop. 3.9: if internal, BFS the G_T descendants level by level until the
// first level containing a leaf; output χ_in of the leftmost (LC-before-RC
// in BFS order) leaf at that level.  Leaves/inconsistent nodes echo χ_in.
template <typename Source>
Color leafcoloring_nearest_leaf(Source& src) {
  TreeView<Source> view(src);
  const NodeIndex start = src.start();
  if (!view.internal(start)) return src.color(start);
  // BFS scratch reused across calls (whole-graph sweeps call this from every
  // start node, so per-call containers would dominate the wall time): a
  // vector-with-head-index queue and an epoch-stamped seen set, both
  // allocation-free in steady state.  Not reentrant; nothing calls this
  // solver from within itself.
  thread_local std::vector<NodeIndex> frontier;
  thread_local StampedNodeSet seen;
  frontier.clear();
  seen.clear();
  frontier.push_back(start);
  seen.insert(start);
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const NodeIndex v = frontier[head];
    // Children of an internal node are always in G_T (a non-internal child
    // of an internal parent is a leaf), so expansion is two-way.
    for (const NodeIndex child : {view.left(v), view.right(v)}) {
      if (child == kNoNode || !seen.insert(child)) continue;
      if (!view.internal(child)) return src.color(child);  // nearest leftmost leaf
      frontier.push_back(child);
    }
  }
  return src.color(start);  // unreachable on well-formed inputs (Lemma 3.8)
}

// Deterministic LC-only descent; on detecting a pure-LC cycle outputs Red
// (any unanimous color is feasible around such a cycle).
template <typename Source>
Color leafcoloring_leftmost_descent(Source& src) {
  TreeView<Source> view(src);
  NodeIndex cur = src.start();
  if (!view.internal(cur)) return src.color(cur);
  std::unordered_set<NodeIndex> seen{cur};
  while (true) {
    const NodeIndex next = view.left(cur);
    if (next == kNoNode) return src.color(cur);  // defensive
    if (!view.internal(next)) return src.color(next);
    if (!seen.insert(next).second) return Color::Red;  // LC-cycle
    cur = next;
  }
}

struct RwStats {
  Color output = Color::Red;
  std::int64_t steps = 0;
  bool truncated = false;
  bool revisited_start = false;
};

// Algorithm 1 with instrumentation.  max_steps <= 0 disables truncation;
// otherwise after max_steps walk steps the node outputs χ_in of the walk's
// current position (arbitrary output is permitted by Remark 3.11; using a
// live value keeps failures observable instead of masked).
template <typename Source>
RwStats rw_to_leaf_stats(Source& src, RandomTape& tape, std::int64_t max_steps = 0) {
  TreeView<Source> view(src);
  const NodeIndex v0 = src.start();
  RwStats stats;
  NodeIndex cur = v0;
  bool left_start = false;
  while (true) {
    if (!view.internal(cur)) {  // leaf or inconsistent: adopt its input color
      stats.output = src.color(cur);
      return stats;
    }
    if (max_steps > 0 && stats.steps >= max_steps) {
      stats.truncated = true;
      stats.output = src.color(cur);
      return stats;
    }
    bool b = tape.bit(v0, cur, 0);
    if (left_start && cur == v0) {
      // Algorithm 1 line 4: on revisiting the start take the other branch;
      // the walk then leaves the component's unique cycle for good.
      b = !b;
      stats.revisited_start = true;
    }
    const NodeIndex next = b ? view.right(cur) : view.left(cur);
    if (next == kNoNode) {  // defensive: internal nodes have both children
      stats.output = src.color(cur);
      return stats;
    }
    ++stats.steps;
    left_start = true;
    cur = next;
  }
}

template <typename Source>
Color rw_to_leaf(Source& src, RandomTape& tape, std::int64_t max_steps = 0) {
  return rw_to_leaf_stats(src, tape, max_steps).output;
}

}  // namespace volcal
