// Hierarchical-THC(k) algorithms (paper Section 5).
//
// One memoized solver implements both variants:
//  * deterministic RecursiveHTHC (Algorithm 2, Prop. 5.12): every backbone
//    node's RC-subtree may be recursed into — distance O(k·n^{1/k}),
//    volume Θ̃(n) in the worst case;
//  * randomized waypoint variant (Prop. 5.14): recursion is attempted only at
//    way-points, sampled from each node's *own* random string (footnote 3)
//    with probability p = c·log n / n^{1/k} — volume O(n^{1/k} · log^{O(k)} n)
//    with high probability.
//
// HierView recomputes levels and hierarchy links locally through queries,
// mirroring labels/hierarchy.hpp's global semantics (Obs. 5.3).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "lcl/algorithms/local_view.hpp"
#include "lcl/problems/hierarchical_thc.hpp"
#include "runtime/randomness.hpp"

namespace volcal {

// Query-side mirror of the Hierarchy link/level structure.
template <typename Source>
class HierView {
 public:
  // `level_override` (optional) replaces the RC-chain level computation with
  // an externally supplied one — Hybrid-THC's explicit level(v) input labels
  // (Def. 6.1).  The override is responsible for its own label-access costs.
  HierView(Source& src, int cap, std::function<int(NodeIndex)> level_override = nullptr)
      : src_(&src), tree_(src), cap_(cap), level_override_(std::move(level_override)) {}

  int cap() const { return cap_; }
  TreeView<Source>& tree() { return tree_; }

  NodeIndex link_lc(NodeIndex v) {
    const Port pl = src_->left_port(v);
    const Port pr = src_->right_port(v);
    const Port pp = src_->parent_port(v);
    if (pl == kNoPort || pl == pr) return kNoNode;
    if (pp != kNoPort && pp == pl) return kNoNode;
    const NodeIndex u = tree_.follow(v, pl);
    if (u == kNoNode || u == v || tree_.parent(u) != v) return kNoNode;
    return u;
  }

  NodeIndex link_rc(NodeIndex v) {
    const Port pl = src_->left_port(v);
    const Port pr = src_->right_port(v);
    const Port pp = src_->parent_port(v);
    if (pr == kNoPort || pl == pr) return kNoNode;
    if (pp != kNoPort && pp == pr) return kNoNode;
    const NodeIndex u = tree_.follow(v, pr);
    if (u == kNoNode || u == v || tree_.parent(u) != v) return kNoNode;
    if (u == link_lc(v)) return kNoNode;
    return u;
  }

  NodeIndex link_up(NodeIndex v) {
    const NodeIndex p = tree_.parent(v);
    if (p == kNoNode) return kNoNode;
    if (link_lc(p) == v || link_rc(p) == v) return p;
    return kNoNode;
  }

  // Capped RC-chain level (memoized).  A value of cap() means "> k".
  int level(NodeIndex v) {
    if (level_override_) return std::clamp(level_override_(v), 1, cap_);
    auto it = level_memo_.find(v);
    if (it != level_memo_.end()) return it->second;
    std::vector<NodeIndex> chain;
    NodeIndex cur = v;
    int base;
    while (true) {
      auto hit = level_memo_.find(cur);
      if (hit != level_memo_.end()) {
        base = hit->second;
        break;
      }
      if (static_cast<int>(chain.size()) > cap_) {
        base = cap_;
        break;
      }
      chain.push_back(cur);
      const NodeIndex rc = link_rc(cur);
      if (rc == kNoNode) {
        base = 0;  // cur itself has level 1
        break;
      }
      cur = rc;
    }
    while (!chain.empty()) {
      base = std::min(base + 1, cap_);
      level_memo_[chain.back()] = base;
      chain.pop_back();
    }
    return level_memo_.at(v);
  }

  bool in_hierarchy(NodeIndex v) { return level(v) < cap_; }

  NodeIndex backbone_next(NodeIndex v) {
    if (!in_hierarchy(v)) return kNoNode;
    const NodeIndex lc = link_lc(v);
    if (lc == kNoNode || level(lc) != level(v)) return kNoNode;
    return lc;
  }

  NodeIndex backbone_prev(NodeIndex v) {
    if (!in_hierarchy(v)) return kNoNode;
    const NodeIndex p = link_up(v);
    if (p == kNoNode || level(p) != level(v) || link_lc(p) != v) return kNoNode;
    return p;
  }

  NodeIndex down(NodeIndex v) {
    if (!in_hierarchy(v)) return kNoNode;
    const NodeIndex rc = link_rc(v);
    if (rc == kNoNode || level(rc) != level(v) - 1) return kNoNode;
    return rc;
  }

  bool is_level_leaf(NodeIndex v) { return in_hierarchy(v) && backbone_next(v) == kNoNode; }

  bool is_level_root(NodeIndex v) {
    if (!in_hierarchy(v)) return false;
    const NodeIndex p = link_up(v);
    if (p == kNoNode) return true;
    if (link_rc(p) == v) return true;
    return backbone_prev(v) == kNoNode && level(p) != level(v);
  }

 private:
  Source* src_;
  TreeView<Source> tree_;
  int cap_;
  std::function<int(NodeIndex)> level_override_;
  std::unordered_map<NodeIndex, int> level_memo_;
};

struct HthcConfig {
  int k = 2;
  // Component-size threshold of Def. 5.10: components larger than `window`
  // (= 2·ceil(n^{1/k})) are deep.  Filled by make() if left 0.
  std::int64_t window = 0;
  // Randomized (Prop. 5.14) vs deterministic (Prop. 5.12) recursion gating.
  bool use_waypoints = false;
  double waypoint_c = 3.0;   // p = min(1, c·log2(n) / n^{1/k})
  RandomTape* tape = nullptr;
  // Bit position in each node's string reserved for the way-point coin.
  std::uint64_t waypoint_bit_base = 128;
  // Hybrid-THC hooks (Def. 6.1): explicit input levels, and the level-2
  // exemption certificate "the BalancedTree component below u solves".
  std::function<int(NodeIndex)> level_override;
  std::function<bool(NodeIndex)> level2_certifier;

  static HthcConfig make(int k, std::int64_t n, bool waypoints = false,
                         RandomTape* tape = nullptr, double c = 3.0) {
    HthcConfig cfg;
    cfg.k = k;
    const double root = std::pow(static_cast<double>(n), 1.0 / static_cast<double>(k));
    cfg.window = 2 * static_cast<std::int64_t>(std::ceil(root));
    cfg.use_waypoints = waypoints;
    cfg.tape = tape;
    cfg.waypoint_c = c;
    return cfg;
  }

  double waypoint_p(std::int64_t n) const {
    const double root = std::pow(static_cast<double>(n), 1.0 / static_cast<double>(k));
    return std::min(1.0, waypoint_c * std::log2(std::max<double>(n, 2)) / root);
  }
};

// Per-solver instrumentation: how the work of Prop. 5.12/5.14 splits up.
struct HthcStats {
  std::int64_t computes = 0;        // distinct component_color evaluations
  std::int64_t shallow_hits = 0;    // line 2-4 shortcut taken
  std::int64_t level1_declines = 0; // line 5-6
  std::int64_t scans = 0;           // line 10-18 executed
  std::int64_t scan_steps = 0;      // backbone nodes examined across scans
  std::int64_t certify_calls = 0;   // rc_certifies with a recursion attempted
  std::int64_t waypoint_skips = 0;  // rc_certifies gated off by sampling
  std::int64_t memo_hits = 0;
};

// The memoized RecursiveHTHC engine.  A solver object persists across start
// nodes (share it via FreeSource for the global output pass; use a fresh one
// per Execution for cost measurement).
template <typename Source>
class HthcSolver {
 public:
  HthcSolver(Source& src, const HthcConfig& cfg)
      : src_(&src),
        view_(src, cfg.k + 1, cfg.level_override),
        cfg_(cfg),
        p_(cfg.waypoint_p(src.n())) {}

  HierView<Source>& view() { return view_; }

  // Output of the node the source currently starts at.
  ThcColor solve() { return solve_at(src_->start()); }

  // Output of an already-visited node v.
  ThcColor solve_at(NodeIndex v) {
    auto it = memo_.find(v);
    if (it != memo_.end()) {
      ++stats_.memo_hits;
      return it->second;
    }
    ++stats_.computes;
    const ThcColor result = compute(v);
    memo_.emplace(v, result);
    return result;
  }

  const HthcStats& stats() const { return stats_; }

 private:
  bool is_waypoint(NodeIndex u) {
    if (!cfg_.use_waypoints) return true;  // deterministic: everyone recurses
    return cfg_.tape->unit(u, u, cfg_.waypoint_bit_base) < p_;
  }

  // Does the component below u certify u's exemption?  (RecursiveHTHC lines
  // 7/12/15/23: the recursive call returns a value in {R, B, X}.)  In the
  // randomized variant only way-points pay for the recursion; everyone else
  // pessimistically assumes D (Prop. 5.14).
  bool rc_certifies(NodeIndex u) {
    const NodeIndex d = view_.down(u);
    if (d == kNoNode) return false;
    if (!is_waypoint(u)) {
      ++stats_.waypoint_skips;
      return false;
    }
    ++stats_.certify_calls;
    if (view_.level(u) == 2 && cfg_.level2_certifier) {
      return cfg_.level2_certifier(u);  // Hybrid-THC: BalancedTree certificate
    }
    const ThcColor r = solve_at(d);
    return r == ThcColor::R || r == ThcColor::B || r == ThcColor::X;
  }

  ThcColor compute(NodeIndex v) {
    const int level = view_.level(v);
    if (level > cfg_.k) return ThcColor::X;  // condition 1

    // Algorithm 2 line 1: discover the backbone component C around v.  Both
    // directions get their own window-sized budget — the downward walk also
    // serves the u-scan and the upward walk the w-scan (lines 10-18), so
    // exhausting one budget must not starve the other.
    std::vector<NodeIndex> below{};  // successors of v in order
    NodeIndex cur = v;
    bool cycle = false;
    while (static_cast<std::int64_t>(below.size()) <= cfg_.window + 1) {
      const NodeIndex nxt = view_.backbone_next(cur);
      if (nxt == kNoNode) break;
      if (nxt == v) {
        cycle = true;
        break;
      }
      below.push_back(nxt);
      cur = nxt;
    }
    std::vector<NodeIndex> above{};
    if (!cycle) {
      cur = v;
      while (static_cast<std::int64_t>(above.size()) <= cfg_.window + 1) {
        const NodeIndex prv = view_.backbone_prev(cur);
        if (prv == kNoNode) break;
        above.push_back(prv);
        cur = prv;
      }
    }
    const std::int64_t seen = 1 + static_cast<std::int64_t>(below.size() + above.size());
    const bool shallow = cycle ? seen <= cfg_.window
                               : (seen <= cfg_.window &&
                                  (below.empty() || view_.backbone_next(below.back()) == kNoNode) &&
                                  (above.empty() ? view_.backbone_prev(v) == kNoNode
                                                 : view_.backbone_prev(above.back()) == kNoNode));

    if (shallow) {
      ++stats_.shallow_hits;
      // Line 2-4: unanimous color from the canonical representative u0 —
      // the (unique) level leaf of a path, or the minimum-ID node of a cycle.
      NodeIndex u0;
      if (cycle) {
        u0 = v;
        NodeId best = src_->id(v);
        for (const NodeIndex w : below) {
          if (src_->id(w) < best) {
            best = src_->id(w);
            u0 = w;
          }
        }
      } else {
        u0 = below.empty() ? v : below.back();
      }
      return to_thc(src_->color(u0));
    }

    if (level == 1) {
      ++stats_.level1_declines;  // line 5-6: deep level-1 components decline
      return ThcColor::D;
    }

    // Line 7-9: exempt if own subtree certifies.
    if (rc_certifies(v)) return ThcColor::X;

    // Lines 10-18: scan for the nearest qualifying descendant u (level leaf
    // or certifying) and ancestor w (level root or certifying).
    ++stats_.scans;
    std::int64_t du = -1, dw = -1;
    NodeIndex u = kNoNode;
    if (view_.is_level_leaf(v)) {
      u = v;
      du = 0;
    } else {
      for (std::size_t i = 0; i < below.size(); ++i) {
        const NodeIndex cand = below[i];
        ++stats_.scan_steps;
        if (view_.is_level_leaf(cand) || rc_certifies(cand)) {
          u = cand;
          du = static_cast<std::int64_t>(i) + 1;
          break;
        }
      }
    }
    if (view_.is_level_root(v)) {
      dw = 0;
    } else {
      for (std::size_t i = 0; i < above.size(); ++i) {
        const NodeIndex cand = above[i];
        ++stats_.scan_steps;
        if (view_.is_level_root(cand) || rc_certifies(cand)) {
          dw = static_cast<std::int64_t>(i) + 1;
          break;
        }
      }
    }

    // Lines 22-29.
    if (du >= 0 && dw >= 0 && du + dw <= cfg_.window) {
      if (u != kNoNode && rc_certifies(u)) {
        // u will output X; the segment adopts χ_in of u's backbone parent.
        const NodeIndex pu = du == 0 ? kNoNode : (du == 1 ? v : below[du - 2]);
        if (pu != kNoNode) return to_thc(src_->color(pu));
        // du == 0: v itself certifies — handled above; defensive fallthrough.
        return to_thc(src_->color(v));
      }
      // u is a level leaf (or absent when v is both leaf & root): echo χ_in.
      return to_thc(src_->color(u == kNoNode ? v : u));
    }
    return ThcColor::D;  // line 29
  }

  Source* src_;
  HierView<Source> view_;
  HthcConfig cfg_;
  double p_;
  std::unordered_map<NodeIndex, ThcColor> memo_;
  HthcStats stats_;
};

// Convenience single-shot solves.
template <typename Source>
ThcColor hthc_solve(Source& src, const HthcConfig& cfg) {
  HthcSolver<Source> solver(src, cfg);
  return solver.solve();
}

}  // namespace volcal
