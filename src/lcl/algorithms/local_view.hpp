// Query-side sources and views.
//
// Algorithms in this library are written against a *source* — the query
// interface of Section 2.2 — rather than a concrete graph, so that the same
// algorithm code runs both on materialized instances (via Execution) and
// against the adaptive adversaries of Props. 3.13 / 5.20, which invent the
// graph in response to queries.
//
// TreeSource concept (duck-typed):
//   NodeIndex start();
//   std::int64_t n();                  // number of nodes, known to all (§2.1)
//   int degree(NodeIndex v);           // of a visited node
//   NodeIndex query(NodeIndex v, Port p);
//   Port parent_port/left_port/right_port(NodeIndex v);
//   Color color(NodeIndex v);
//
// TreeView<Source> layers the O(1)-query local classification primitives of
// Def. 3.3 on top ("in O(1) rounds, v determines if it is internal, a leaf,
// or inconsistent" — Prop. 3.9 and friends).
#pragma once

#include <cstdint>

#include "labels/instances.hpp"
#include "labels/tree_labeling.hpp"
#include "runtime/execution.hpp"

namespace volcal {

// Source backed by a materialized instance + cost-accounting Execution.
// Works for any Labels type that embeds a TreeLabeling reachable via
// `tree_of()` and a color vector via `colors_of()` (overloads below).
inline const TreeLabeling& tree_of(const ColoredTreeLabeling& l) { return l.tree; }
inline const TreeLabeling& tree_of(const BalancedTreeLabeling& l) { return l.tree; }
inline const TreeLabeling& tree_of(const HybridLabeling& l) { return l.bal.tree; }
inline const TreeLabeling& tree_of(const HHLabeling& l) { return l.hybrid.bal.tree; }

// Exec defaults to the flat-scratch Execution; the test-only map-based
// reference (runtime/reference_execution.hpp) plugs in for differential
// testing and the bench_runner baseline.
template <typename Labels, typename Exec = Execution>
class InstanceSource {
 public:
  InstanceSource(const Instance<Labels>& inst, Exec& exec)
      : inst_(&inst), exec_(&exec) {}

  const Instance<Labels>& instance() const { return *inst_; }
  Exec& execution() const { return *exec_; }

  NodeIndex start() const { return exec_->start(); }
  std::int64_t n() const { return inst_->node_count(); }
  int degree(NodeIndex v) const { return exec_->degree(v); }
  NodeIndex query(NodeIndex v, Port p) const { return exec_->query(v, p); }
  NodeId id(NodeIndex v) const { return exec_->id(v); }

  Port parent_port(NodeIndex v) const { return labels_checked(v).parent[v]; }
  Port left_port(NodeIndex v) const { return labels_checked(v).left[v]; }
  Port right_port(NodeIndex v) const { return labels_checked(v).right[v]; }

  Color color(NodeIndex v) const {
    exec_->require_visited(v);
    if constexpr (requires { inst_->labels.color; }) {
      return inst_->labels.color[v];
    } else if constexpr (requires { inst_->labels.hybrid.color; }) {
      return inst_->labels.hybrid.color[v];
    } else {
      return Color::Red;
    }
  }

  // Balanced-labeling accessors (only instantiated when present).
  Port ln_port(NodeIndex v) const {
    exec_->require_visited(v);
    return balanced_labels().left_nbr[v];
  }
  Port rn_port(NodeIndex v) const {
    exec_->require_visited(v);
    return balanced_labels().right_nbr[v];
  }

  // Hybrid/HH accessors.
  int level_in(NodeIndex v) const {
    exec_->require_visited(v);
    if constexpr (requires { inst_->labels.level_in; }) {
      return inst_->labels.level_in[v];
    } else {
      return inst_->labels.hybrid.level_in[v];
    }
  }
  int side(NodeIndex v) const {
    exec_->require_visited(v);
    return inst_->labels.side[v];
  }

 private:
  const TreeLabeling& labels_checked(NodeIndex v) const {
    exec_->require_visited(v);
    return tree_of(inst_->labels);
  }
  const BalancedTreeLabeling& balanced_labels() const {
    if constexpr (requires { inst_->labels.left_nbr; }) {
      return inst_->labels;
    } else if constexpr (requires { inst_->labels.bal; }) {
      return inst_->labels.bal;
    } else {
      return inst_->labels.hybrid.bal;
    }
  }

  const Instance<Labels>* inst_;
  Exec* exec_;
};

// Cost-free source over a materialized instance: same interface as
// InstanceSource but with no Execution, no budget and a movable start.  Used
// for the "global output pass" — computing every node's output of a memoized
// algorithm in amortized linear time so the LCL checker can verify runs whose
// per-node query cost would make an all-nodes sweep quadratic.
template <typename Labels>
class FreeSource {
 public:
  explicit FreeSource(const Instance<Labels>& inst) : inst_(&inst) {}

  void set_start(NodeIndex v) { start_ = v; }
  NodeIndex start() const { return start_; }
  std::int64_t n() const { return inst_->node_count(); }
  int degree(NodeIndex v) const { return inst_->graph.degree(v); }
  NodeIndex query(NodeIndex v, Port p) const { return inst_->graph.neighbor(v, p); }
  NodeId id(NodeIndex v) const { return inst_->ids.id_of(v); }

  Port parent_port(NodeIndex v) const { return tree_of(inst_->labels).parent[v]; }
  Port left_port(NodeIndex v) const { return tree_of(inst_->labels).left[v]; }
  Port right_port(NodeIndex v) const { return tree_of(inst_->labels).right[v]; }

  Color color(NodeIndex v) const {
    if constexpr (requires { inst_->labels.color; }) {
      return inst_->labels.color[v];
    } else if constexpr (requires { inst_->labels.hybrid.color; }) {
      return inst_->labels.hybrid.color[v];
    } else {
      return Color::Red;
    }
  }
  Port ln_port(NodeIndex v) const { return balanced_labels().left_nbr[v]; }
  Port rn_port(NodeIndex v) const { return balanced_labels().right_nbr[v]; }
  int level_in(NodeIndex v) const {
    if constexpr (requires { inst_->labels.level_in; }) {
      return inst_->labels.level_in[v];
    } else {
      return inst_->labels.hybrid.level_in[v];
    }
  }
  int side(NodeIndex v) const { return inst_->labels.side[v]; }

 private:
  const BalancedTreeLabeling& balanced_labels() const {
    if constexpr (requires { inst_->labels.left_nbr; }) {
      return inst_->labels;
    } else if constexpr (requires { inst_->labels.bal; }) {
      return inst_->labels.bal;
    } else {
      return inst_->labels.hybrid.bal;
    }
  }

  const Instance<Labels>* inst_;
  NodeIndex start_ = 0;
};

// O(1)-query classification of Def. 3.3 over any TreeSource.
template <typename Source>
class TreeView {
 public:
  explicit TreeView(Source& src) : src_(&src) {}

  Source& source() const { return *src_; }

  NodeIndex follow(NodeIndex v, Port p) const {
    if (p == kNoPort) return kNoNode;
    if (p < 1 || p > src_->degree(v)) return kNoNode;  // dangling claim
    return src_->query(v, p);
  }

  NodeIndex parent(NodeIndex v) const { return follow(v, src_->parent_port(v)); }
  NodeIndex left(NodeIndex v) const { return follow(v, src_->left_port(v)); }
  NodeIndex right(NodeIndex v) const { return follow(v, src_->right_port(v)); }

  bool internal(NodeIndex v) const {
    const Port pl = src_->left_port(v);
    const Port pr = src_->right_port(v);
    const Port pp = src_->parent_port(v);
    if (pl == kNoPort || pr == kNoPort || pl == pr) return false;
    if (pp != kNoPort && (pp == pl || pp == pr)) return false;
    const NodeIndex lc = follow(v, pl);
    const NodeIndex rc = follow(v, pr);
    if (lc == kNoNode || rc == kNoNode || lc == rc || lc == v || rc == v) return false;
    if (parent(lc) != v || parent(rc) != v) return false;
    const NodeIndex p = follow(v, pp);
    if (p != kNoNode && (p == lc || p == rc)) return false;
    return true;
  }

  bool leaf(NodeIndex v) const {
    if (internal(v)) return false;
    const NodeIndex p = parent(v);
    return p != kNoNode && internal(p);
  }

  NodeKind kind(NodeIndex v) const {
    if (internal(v)) return NodeKind::Internal;
    if (leaf(v)) return NodeKind::Leaf;
    return NodeKind::Inconsistent;
  }

 private:
  Source* src_;
};

}  // namespace volcal
