// HH-THC(k, ℓ) solvers (paper Section 6.1): per-node dispatch on the selector
// bit — side 0 runs the Hierarchical-THC(ℓ) machinery, side 1 runs the
// Hybrid-THC(k) machinery.  Costs combine as maxima (Thm. 6.5).
#pragma once

#include "lcl/algorithms/hthc_algos.hpp"
#include "lcl/algorithms/hybrid_algos.hpp"
#include "lcl/problems/hh_thc.hpp"

namespace volcal {

struct HHConfig {
  HthcConfig hier;     // parameter ℓ side
  HybridConfig hybrid;  // parameter k side

  static HHConfig make(int k, int l, std::int64_t n, bool waypoints = false,
                       RandomTape* tape = nullptr) {
    HHConfig cfg;
    cfg.hier = HthcConfig::make(l, n, waypoints, tape);
    cfg.hybrid = HybridConfig::make(k, n, waypoints, tape);
    return cfg;
  }
};

// Distance flavor: side 0 deterministic RecursiveHTHC (Θ(n^{1/ℓ}) distance),
// side 1 the Θ(log n) hybrid distance solver.
template <typename Source>
HybridOutput hh_solve_distance(Source& src, const HHConfig& cfg) {
  const NodeIndex v = src.start();
  if (src.side(v) == 0) {
    HthcConfig hier = cfg.hier;
    hier.use_waypoints = false;
    return HybridOutput::symbol(hthc_solve(src, hier));
  }
  return hybrid_solve_distance(src, cfg.hybrid);
}

// Volume flavor: both sides use their waypoint machinery (Θ̃(n^{1/k})
// randomized volume overall, the hybrid side dominating when k <= ℓ).
template <typename Source>
HybridOutput hh_solve_volume(Source& src, const HHConfig& cfg) {
  const NodeIndex v = src.start();
  if (src.side(v) == 0) {
    return HybridOutput::symbol(hthc_solve(src, cfg.hier));
  }
  return hybrid_solve_volume(src, cfg.hybrid);
}

}  // namespace volcal
