// ProblemRegistry — one string-keyed catalogue of the paper's problem
// families, replacing the hand-wired per-binary switch statements in the
// bench and example mains.
//
// Each entry bundles, type-erased behind a uniform interface:
//   * an instance generator (family-shaped: n_target is mapped onto the
//     family's natural size parameter, so node_count() is approximate);
//   * the paper's upper-bound algorithm for the family (the one Table 1
//     measures), runnable on both the plain and the recording execution so
//     registry entries compose with the trace/replay oracle;
//   * the LCL verifier (Def. 2.6 conjunction over nodes);
//   * the paper's Θ-claims for the four complexity measures.
//
// Bench/example binaries resolve entries by name (`--filter <name>`), tests
// iterate all() to get per-family coverage for free.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/mutation.hpp"
#include "labels/instances.hpp"
#include "lcl/lcl.hpp"
#include "obs/trace.hpp"
#include "plan/probe_plan.hpp"
#include "runtime/execution.hpp"

namespace volcal {

namespace io {
class Snapshot;
}  // namespace io

// A generated instance with its problem machinery erased to:
// graph/ids + solve (output encoded as int) + verify (decodes internally).
class ErasedInstance {
 public:
  struct Impl {
    std::shared_ptr<const void> held;  // keeps the instance (+ problem) alive
    std::string family;                // registry key the instance belongs to
    GraphView graph{};
    const IdAssignment* ids = nullptr;
    std::function<int(Execution&)> solve;
    std::function<int(obs::TracedExecution&)> solve_traced;
    std::function<VerifyResult(const std::vector<int>&)> verify;
    // Serializers for the held typed instance; save_text is null for
    // families without a text form (the binary snapshot covers everything).
    std::function<void(const std::string& path)> save_snapshot;
    std::function<void(std::ostream& os)> save_text;
    // Dynamic-graph hooks (graph/mutation.hpp), installed by the one erase()
    // wiring point so generated, text-loaded and snapshot-loaded instances
    // all mutate identically.  `mutate` applies a batch copy-on-write and
    // returns a freshly wired instance (optionally reporting the structural
    // endpoints); `mutate_naive` is the Builder-based reference path the
    // differential harness compares against; `propose_mutation` draws a
    // deterministic in-domain batch for fuzzing and load generation.
    std::function<ErasedInstance(const MutationBatch&, std::vector<NodeIndex>*)> mutate;
    std::function<ErasedInstance(const MutationBatch&)> mutate_naive;
    std::function<MutationBatch(std::uint64_t seed, int rewires, int label_updates)>
        propose_mutation;
  };

  explicit ErasedInstance(Impl impl) : impl_(std::move(impl)) {}

  // The registry key this instance was built for ("leaf-coloring", ...).
  const std::string& family() const { return impl_.family; }

  GraphView graph() const { return impl_.graph; }
  const IdAssignment& ids() const { return *impl_.ids; }
  NodeIndex node_count() const { return impl_.graph.node_count(); }

  // Writes the instance as a versioned binary snapshot (io/snapshot.hpp);
  // io::load_instance() round-trips it into an equivalent ErasedInstance.
  void save_snapshot(const std::string& path) const { impl_.save_snapshot(path); }

  // The line-oriented text form (io/serialize.hpp), where the family has one.
  bool has_text_format() const { return static_cast<bool>(impl_.save_text); }
  void save_text(std::ostream& os) const { impl_.save_text(os); }

  // The family's upper-bound algorithm from one start node; the returned int
  // is the encoded output label (encoding is entry-private — only verify()
  // needs to understand it).
  int solve(Execution& exec) const { return impl_.solve(exec); }
  int solve(obs::TracedExecution& exec) const { return impl_.solve_traced(exec); }

  // Whole-graph verification of encoded per-node outputs (Def. 2.6).
  VerifyResult verify(const std::vector<int>& encoded_outputs) const {
    return impl_.verify(encoded_outputs);
  }

  // --- dynamic graphs (graph/mutation.hpp) ---------------------------------

  // Applies `batch` copy-on-write: this instance (and every view borrowed
  // from it) is untouched; the returned instance owns fresh graph storage
  // under a fresh StorageToken, carries copies of the ids and the mutated
  // labels, and is wired through the same solver/verifier closures.  If
  // `touched` is non-null it receives the batch's structural endpoints,
  // sorted — the set ViewCache::invalidate_region certifies distances
  // against.  Throws std::invalid_argument on an invalid rewire or a label
  // channel the family does not carry.
  ErasedInstance mutated(const MutationBatch& batch,
                         std::vector<NodeIndex>* touched = nullptr) const {
    return impl_.mutate(batch, touched);
  }

  // Reference path for the differential harness: identical semantics replayed
  // through Graph::Builder (port bijectivity re-validated from scratch).
  ErasedInstance mutated_naive(const MutationBatch& batch) const {
    return impl_.mutate_naive(batch);
  }

  // Draws a deterministic, in-domain batch: up to `rewires` pairwise
  // non-adjacent degree-1 leaves re-hung on nodes outside the leaf set, plus
  // `label_updates` channel writes within the family's claim domains.  Fewer
  // rewires than requested are returned when the instance has too few
  // eligible leaves.
  MutationBatch propose_mutation(std::uint64_t seed, int rewires,
                                 int label_updates) const {
    return impl_.propose_mutation(seed, rewires, label_updates);
  }

 private:
  Impl impl_;
};

struct RegistryEntry {
  std::string name;       // stable key, e.g. "leaf-coloring"
  std::string title;      // human name, e.g. "LeafColoring (Def. 3.4)"
  std::string theta;      // paper Θ-claims for the four measures
  std::string algorithm;  // which upper-bound algorithm solve() runs

  // The family's probe plan (plan/probe_plan.hpp), chosen at registration:
  // what the solver's access pattern is, statically.  IndependentStarts by
  // default; a family declaring BatchedBall{r} promises its solve() is
  // exactly explore_ball(v, r) with the ball size as output, which lets the
  // engine run whole-graph sweeps on the batched backend (the fuzz
  // differential cross-checks the promise on every case).
  ProbePlan plan = ProbePlan::independent();

  // Builds an instance of roughly n_target nodes (clamped to the family's
  // sane range; exact size is family-shaped).  Equivalent to
  // make_variant(n_target, seed, 0).
  std::function<ErasedInstance(NodeIndex n_target, std::uint64_t seed)> make;

  // Shape mutators for the differential-fuzzing harness (src/check/): each
  // family exposes `variants` instance shapes, 0 being make()'s canonical one
  // and 1..variants-1 degree/shape perturbations (random full trees,
  // caterpillars, pseudo-forest cycles, unbalanced defects, mixed per-level
  // backbone lengths, skewed splits) — every one inside what the family's
  // upper-bound algorithm and verifier are specified for, so solve+verify
  // must stay clean on all of them.  Requires 0 <= variant < variants.
  int variants = 1;
  std::function<ErasedInstance(NodeIndex n_target, std::uint64_t seed, int variant)>
      make_variant;
};

// Wraps an externally built typed instance (text reader, snapshot loader,
// tests) in the named family's solver/verifier machinery — the same closures
// the family's generator path installs.  Throws std::invalid_argument if the
// family is unknown or uses a different labeling type.  `keep_alive` is
// retained for the instance's lifetime (the snapshot loader parks the file
// mapping here; see io/snapshot.hpp for the adoption contract).
ErasedInstance erase_instance(std::string_view family, LeafColoringInstance&& inst,
                              std::shared_ptr<const void> keep_alive = nullptr);
ErasedInstance erase_instance(std::string_view family, BalancedTreeInstance&& inst,
                              std::shared_ptr<const void> keep_alive = nullptr);
ErasedInstance erase_instance(std::string_view family, HybridInstance&& inst,
                              std::shared_ptr<const void> keep_alive = nullptr);
ErasedInstance erase_instance(std::string_view family, HHInstance&& inst,
                              std::shared_ptr<const void> keep_alive = nullptr);

// Rehydrates a loaded snapshot into an ErasedInstance of its recorded family:
// the CSR graph and the ID table stay zero-copy views into the mapping (kept
// alive by the instance), label tables are decoded into the typed labeling.
ErasedInstance load_snapshot_instance(io::Snapshot&& snap);

class ProblemRegistry {
 public:
  static const ProblemRegistry& global();

  const std::vector<RegistryEntry>& entries() const { return entries_; }

  // Exact-name lookup; nullptr if absent.
  const RegistryEntry* find(std::string_view name) const;

  // Case-sensitive substring filter; an empty filter matches everything.
  std::vector<const RegistryEntry*> match(std::string_view filter) const;

 private:
  ProblemRegistry();

  std::vector<RegistryEntry> entries_;
};

}  // namespace volcal
