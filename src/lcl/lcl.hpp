// LCL framework (paper Definition 2.6 and Section 2.4).
//
// A locally checkable labeling problem over finite input/output alphabets is
// characterized by a constant radius c and a per-node validity predicate that
// depends only on the radius-c ball around the node.  Each concrete problem
// in lcl/problems/ supplies:
//   * an Instance type (graph + input labeling),
//   * an Output label type,
//   * int radius(),
//   * bool valid_at(instance, output, v)  — the local predicate,
// and the framework provides the global verifier (conjunction over nodes) and
// the "locality audit" used by tests: valid_at must be invariant under any
// mutation of labels outside N_v(c).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace volcal {

struct VerifyResult {
  bool ok = true;
  NodeIndex first_bad = kNoNode;
  std::int64_t violations = 0;
};

// Global verification: output O is feasible iff it is feasible at every node
// (Def. 2.6).  `Problem` supplies valid_at(instance, output, v).
template <typename Problem, typename Instance, typename Output>
VerifyResult verify_all(const Problem& problem, const Instance& instance,
                        const Output& output) {
  VerifyResult r;
  for (NodeIndex v = 0; v < instance.node_count(); ++v) {
    if (!problem.valid_at(instance, output, v)) {
      if (r.ok) r.first_bad = v;
      r.ok = false;
      ++r.violations;
    }
  }
  return r;
}

}  // namespace volcal
