// The finite-description view of LCLs (paper Section 2.4): "every LCL has a
// finite description: it is enough to enumerate every possible input labeling
// of every c-radius neighborhood of a node, together with the list of valid
// output labelings".
//
// ball_signature canonically encodes the radius-c labeled ball around a node
// — structure (port-ordered BFS), degrees, and the input/output labels each
// problem supplies through a callback.  A DescriptionTable accumulates
// (signature -> valid-at-center) entries; because an LCL's validity predicate
// is a function of the ball, two occurrences of the same signature must agree
// — the table throws on conflict, so building it over many instances is an
// executable proof of local checkability (complementing the mutation audits
// in lcl_locality_test), and the resulting table IS the problem's finite
// description restricted to the neighborhoods seen.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"

namespace volcal {

// Produces the label text of a node (input and/or output parts); must not
// depend on node identity, only on labels — LCL descriptions are
// ID-independent.
using NodeLabelFn = std::function<std::string(NodeIndex)>;

// Canonical encoding of N_center(radius): nodes are numbered in port-ordered
// BFS discovery order; for every ball node we record its degree, its label
// text, and its neighbor list as local indices (or '.' for neighbors outside
// the ball, whose labels the predicate must not need).
std::string ball_signature(const Graph& g, NodeIndex center, int radius,
                           const NodeLabelFn& label);

class DescriptionTable {
 public:
  struct Stats {
    std::size_t entries = 0;
    std::int64_t records = 0;
    std::int64_t valid_entries = 0;
  };

  // Records one observation; throws std::logic_error on a conflicting
  // revisit (which would disprove radius-c checkability).
  void record(const std::string& signature, bool valid_at_center) {
    auto [it, inserted] = table_.emplace(signature, valid_at_center);
    if (!inserted && it->second != valid_at_center) {
      throw std::logic_error(
          "DescriptionTable: conflicting validity for one neighborhood — the "
          "predicate is not a function of the radius-c ball");
    }
    ++records_;
  }

  std::optional<bool> lookup(const std::string& signature) const {
    auto it = table_.find(signature);
    if (it == table_.end()) return std::nullopt;
    return it->second;
  }

  Stats stats() const {
    Stats s;
    s.entries = table_.size();
    s.records = records_;
    for (const auto& [sig, valid] : table_) s.valid_entries += valid ? 1 : 0;
    return s;
  }

 private:
  std::unordered_map<std::string, bool> table_;
  std::int64_t records_ = 0;
};

// Convenience: sweep a whole instance+output into a table (or validate an
// output against an existing table, returning the number of novel
// neighborhoods that had to fall back to `direct`).
template <typename DirectValidFn>
std::int64_t table_check(const Graph& g, int radius, const NodeLabelFn& label,
                         DescriptionTable& table, DirectValidFn&& direct,
                         bool record_new = true) {
  std::int64_t novel = 0;
  for (NodeIndex v = 0; v < g.node_count(); ++v) {
    const std::string sig = ball_signature(g, v, radius, label);
    const auto known = table.lookup(sig);
    const bool valid = direct(v);
    if (known.has_value()) {
      if (*known != valid) {
        throw std::logic_error("DescriptionTable: table disagrees with direct checker");
      }
    } else {
      ++novel;
      if (record_new) table.record(sig, valid);
    }
  }
  return novel;
}

}  // namespace volcal
