// Landscape examples (paper Figures 1-2).
//
//  * RingColoring: proper 3-coloring of a directed ring — the canonical
//    class-B ("symmetry breaking") LCL, solvable in Θ(log* n) distance and,
//    via Even et al.'s technique cited in §1.2, Θ(log* n) volume.  We
//    implement the classic Cole-Vishkin color reduction through the query
//    interface: each node reads the IDs of O(log* n) successors.
//  * TrivialParity: class A — each node outputs its degree parity; volume
//    and distance Θ(1).
//  * SinklessOrientation: checker only (its volume complexity is the open
//    Question 7.3); included so the landscape benches can tabulate it.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "labels/generators.hpp"
#include "labels/ids.hpp"
#include "runtime/execution.hpp"

namespace volcal {

// --- Ring 3-coloring ---------------------------------------------------------

struct RingColoringProblem {
  // Proper coloring is radius-1 checkable.
  static constexpr int radius() { return 1; }

  static bool valid(const Graph& g, const std::vector<int>& colors) {
    for (NodeIndex v = 0; v < g.node_count(); ++v) {
      if (colors[v] < 0 || colors[v] > 2) return false;
      for (NodeIndex w : g.neighbors(v)) {
        if (colors[v] == colors[w]) return false;
      }
    }
    return true;
  }
};

// Cole-Vishkin on a ring through the query interface.  Port 1 = successor.
// Each node gathers the ID chain of its next O(log* n) successors, runs the
// bit-index color reduction locally down to 6 colors, then three shift-down
// rounds to 3.  Deterministic; volume = distance = O(log* n).
int ring_color_cole_vishkin(const RingInstance& inst, Execution& exec);

// Number of successor IDs the CV reduction needs for rings of n nodes
// (the simulated round count; exposed for the bench tables).
int ring_cv_rounds(std::int64_t n);

// --- Trivial class-A example -------------------------------------------------

// Output = parity of own degree; checkable and solvable at radius 0.
inline int trivial_parity(const Graph& g, NodeIndex v) { return g.degree(v) % 2; }

// --- Sinkless orientation (checker only, §7.2) -------------------------------

// Output: for each node, the port of the out-edge it "owns" (0 = none).  An
// orientation is sinkless if every node of degree >= 3 has at least one
// outgoing edge.  (Formally SO is stated for d-regular graphs with d >= 3.)
bool sinkless_orientation_valid(const Graph& g, const std::vector<Port>& out_port);

}  // namespace volcal
