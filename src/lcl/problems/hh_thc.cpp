#include "lcl/problems/hh_thc.hpp"

namespace volcal {

namespace {

// Validity of the BalancedTree disjunction for a level-1 node on the hybrid
// side (mirrors hybrid_thc.cpp; duplicated here because the label paths
// differ — HH wraps the hybrid labeling one level deeper).
bool bt_valid_here(const HHInstance& inst, const std::vector<HybridOutput>& out,
                   NodeIndex v) {
  const Graph& g = inst.graph;
  const BalancedTreeLabeling& l = inst.labels.hybrid.bal;
  if (!is_consistent(g, l.tree, v)) return true;
  if (!out[v].is_bt) return false;
  const BtOutput& o = out[v].bt;
  if (!bt_compatible(g, l, v)) return o == BtOutput{Balance::Unbalanced, kNoPort};
  if (is_leaf(g, l.tree, v)) return o == BtOutput{Balance::Balanced, l.tree.parent[v]};
  const NodeIndex lc = left_child_of(g, l.tree, v);
  const NodeIndex rc = right_child_of(g, l.tree, v);
  if (!out[lc].is_bt || !out[rc].is_bt) return false;
  const BtOutput& ol = out[lc].bt;
  const BtOutput& orr = out[rc].bt;
  const bool children_balanced = ol == BtOutput{Balance::Balanced, l.tree.parent[lc]} &&
                                 orr == BtOutput{Balance::Balanced, l.tree.parent[rc]};
  if (children_balanced) return o == BtOutput{Balance::Balanced, l.tree.parent[v]};
  if (ol.beta == Balance::Unbalanced && o == BtOutput{Balance::Unbalanced, l.tree.left[v]}) {
    return true;
  }
  if (orr.beta == Balance::Unbalanced &&
      o == BtOutput{Balance::Unbalanced, l.tree.right[v]}) {
    return true;
  }
  return false;
}

}  // namespace

HHTHCProblem::HHTHCProblem(const InstanceType& inst, int k, int l)
    : k_(k),
      l_(l),
      hier_side_(std::make_shared<Hierarchy>(inst.graph, inst.labels.hybrid.bal.tree, l + 1)),
      hybrid_side_(std::make_shared<Hierarchy>(inst.graph, inst.labels.hybrid.bal.tree, k + 1,
                                               inst.labels.hybrid.level_in)) {}

bool HHTHCProblem::valid_at(const InstanceType& inst, const Output& out, NodeIndex v) const {
  const std::vector<Color>& chi = inst.labels.hybrid.color;

  if (inst.labels.side[v] == 0) {
    // Hierarchical-THC(ℓ) on the induced side-0 subgraph; our instances keep
    // the sides in disjoint components, so full-graph hierarchy links agree
    // with induced-subgraph ones.
    if (out[v].is_bt) return false;
    std::vector<ThcColor> thc(out.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      thc[i] = out[i].is_bt ? ThcColor::D : out[i].thc;
    }
    ThcValidityOptions opt;
    opt.k = l_;
    return thc_conditions_hold(*hier_side_, chi, thc, v, opt);
  }

  // Side 1: Hybrid-THC(k).
  const Hierarchy& h = *hybrid_side_;
  const int level = h.level(v);
  if (level == 1) {
    if (bt_valid_here(inst, out, v)) return true;
    if (out[v].is_bt || out[v].thc != ThcColor::D) return false;
    for (const NodeIndex nb : {h.up(v), h.lc(v), h.rc(v)}) {
      if (nb == kNoNode || h.level(nb) != 1) continue;
      if (out[nb].is_bt || out[nb].thc != ThcColor::D) return false;
    }
    return true;
  }
  if (out[v].is_bt) return false;
  std::vector<ThcColor> thc(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    thc[i] = out[i].is_bt ? ThcColor::D : out[i].thc;
  }
  std::vector<std::uint8_t> certified(out.size(), 0);
  if (level == 2) {
    const NodeIndex d = h.down(v);
    certified[v] = (d != kNoNode && out[d].is_bt) ? 1 : 0;
  }
  ThcValidityOptions opt;
  opt.k = k_;
  opt.hybrid_level2 = true;
  return thc_conditions_hold(h, chi, thc, v, opt, &certified);
}

}  // namespace volcal
