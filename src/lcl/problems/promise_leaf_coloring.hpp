// Promise-LeafColoring (paper §7.4): LeafColoring restricted to inputs whose
// leaves all carry the same color.  This is the paper's example of a problem
// where *secret* randomness already beats determinism: any leaf answers, so
// each internal node can walk down using only its own coins — no
// coordination between executions is needed, unlike general LeafColoring
// where Algorithm 1's walks must coalesce via visit-shared bits.
#pragma once

#include "labels/instances.hpp"
#include "labels/tree_labeling.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "lcl/problems/leaf_coloring.hpp"
#include "runtime/randomness.hpp"

namespace volcal {

// Whether the instance satisfies the promise.
inline bool satisfies_leaf_promise(const LeafColoringInstance& inst) {
  bool seen = false;
  Color common = Color::Red;
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    if (!is_leaf(inst.graph, inst.labels.tree, v)) continue;
    if (!seen) {
      common = inst.labels.color[v];
      seen = true;
    } else if (inst.labels.color[v] != common) {
      return false;
    }
  }
  return true;
}

// The promise problem shares LeafColoring's validity conditions; only the
// admissible inputs shrink.  (On promise inputs the unique valid output is
// the unanimous leaf color, by the Prop. 3.12 induction.)
struct PromiseLeafColoringProblem : LeafColoringProblem {
  using LeafColoringProblem::valid_at;
  static bool admissible(const LeafColoringInstance& inst) {
    return satisfies_leaf_promise(inst);
  }
};

// Secret-coin downward walk: step i of the walk started at v0 is decided by
// r_{v0}(i) alone, so it is legal under RandomnessModel::Secret.  Terminates
// at *a* leaf in O(log n) steps whp (same analysis as Prop. 3.10 — every
// step has probability >= 1/2 of halving the reachable set); under the
// promise, any leaf is the right answer.
template <typename Source>
Color promise_rw_secret(Source& src, RandomTape& tape, std::int64_t max_steps = 0) {
  TreeView<Source> view(src);
  const NodeIndex v0 = src.start();
  NodeIndex cur = v0;
  std::uint64_t step = 0;
  while (view.internal(cur)) {
    if (max_steps > 0 && static_cast<std::int64_t>(step) >= max_steps) break;
    const bool b = tape.bit(v0, v0, step++);
    const NodeIndex next = b ? view.right(cur) : view.left(cur);
    if (next == kNoNode) break;
    // Escape hatch for the (unique) pseudo-tree cycle: after revisiting the
    // start, bias away from the branch taken first (mirrors Alg. 1 line 4
    // but with the start's own coins).
    cur = next;
  }
  return src.color(cur);
}

}  // namespace volcal
