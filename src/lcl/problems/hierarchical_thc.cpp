#include "lcl/problems/hierarchical_thc.hpp"

namespace volcal {

namespace {

bool is_color(ThcColor c) { return c == ThcColor::R || c == ThcColor::B; }
bool in_rbx(ThcColor c) { return is_color(c) || c == ThcColor::X; }
bool in_rbd(ThcColor c) { return is_color(c) || c == ThcColor::D; }

}  // namespace

bool thc_conditions_hold(const Hierarchy& h, const std::vector<Color>& chi_in,
                         const std::vector<ThcColor>& out, NodeIndex v,
                         const ThcValidityOptions& opt,
                         const std::vector<std::uint8_t>* down_certified_override) {
  const int k = opt.k;
  const int level = h.level(v);

  // Condition 1: nodes above the hierarchy are exempt.
  if (level > k) return out[v] == ThcColor::X;

  const bool leaf = h.is_level_leaf(v);
  const NodeIndex next = h.backbone_next(v);
  const NodeIndex down = h.down(v);

  // "The component below v certifies itself": for plain THC the RC-child must
  // output R/B/X (conditions 4(b)/5(a)); Hybrid-THC overrides the level-2
  // rule with a BalancedTree-specific certificate supplied by the caller.
  auto down_certifies = [&]() {
    if (down_certified_override != nullptr && level == 2 && opt.hybrid_level2) {
      return (*down_certified_override)[v] != 0;
    }
    return down != kNoNode && in_rbx(out[down]);
  };

  // Condition 2: level-ℓ leaves may echo, decline, or go exempt.
  if (leaf) {
    if (out[v] != to_thc(chi_in[v]) && out[v] != ThcColor::D && out[v] != ThcColor::X) {
      return false;
    }
  }

  if (level == 1) {
    // Condition 3.
    if (!in_rbd(out[v])) return false;                       // 3(a)
    if (!leaf && out[v] != out[next]) return false;          // 3(b)
    return true;
  }

  // Def. 6.1 routes level 2 to condition 4 (with the modified exemption) even
  // when k = 2; plain Hierarchical-THC uses condition 4 strictly below k.
  if (level < k || (opt.hybrid_level2 && level == 2)) {
    // Condition 4 (only constrains non-leaves; leaves were handled by 2).
    if (leaf) return true;
    const bool case_a = out[v] == out[next] && in_rbd(out[v]);
    const bool case_b = out[v] == ThcColor::X && down_certifies();
    const bool case_c =
        (out[v] == to_thc(chi_in[v]) || out[v] == ThcColor::D) && out[next] == ThcColor::X;
    return case_a || case_b || case_c;
  }

  // level == k: condition 5.
  if (!in_rbx(out[v])) return false;
  if (out[v] == ThcColor::X && !down_certifies()) return false;  // 5(a)
  if (!leaf && out[v] != ThcColor::X) {
    const bool via_child = out[next] != ThcColor::X && out[v] == out[next];
    const bool after_exempt = out[next] == ThcColor::X && out[v] == to_thc(chi_in[v]);
    if (!via_child && !after_exempt) return false;  // 5(b)
  }
  return true;
}

bool HierarchicalTHCProblem::valid_at(const InstanceType& inst, const Output& out,
                                      NodeIndex v) const {
  ThcValidityOptions opt;
  opt.k = k_;
  return thc_conditions_hold(*hierarchy_, inst.labels.color, out, v, opt);
}

}  // namespace volcal
