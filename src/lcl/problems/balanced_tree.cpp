#include "lcl/problems/balanced_tree.hpp"

namespace volcal {

namespace {

NodeIndex ln_of(const Graph& g, const BalancedTreeLabeling& l, NodeIndex v) {
  return v == kNoNode ? kNoNode : resolve(g, v, l.left_nbr[v]);
}
NodeIndex rn_of(const Graph& g, const BalancedTreeLabeling& l, NodeIndex v) {
  return v == kNoNode ? kNoNode : resolve(g, v, l.right_nbr[v]);
}

}  // namespace

bool bt_compatible(const Graph& g, const BalancedTreeLabeling& l, NodeIndex v) {
  const TreeLabeling& t = l.tree;
  if (!is_consistent(g, t, v)) return false;
  const bool v_internal = is_internal(g, t, v);
  const NodeIndex ln = ln_of(g, l, v);
  const NodeIndex rn = rn_of(g, l, v);

  // type-preserving (covers the redundant `leaves` condition too): lateral
  // neighbors must share v's internal/leaf status or be absent.
  if (l.left_nbr[v] != kNoPort) {
    if (ln == kNoNode) return false;  // dangling lateral claim
    if (v_internal ? !is_internal(g, t, ln) : !is_leaf(g, t, ln)) return false;
  }
  if (l.right_nbr[v] != kNoPort) {
    if (rn == kNoNode) return false;
    if (v_internal ? !is_internal(g, t, rn) : !is_leaf(g, t, rn)) return false;
  }

  // agreement: LN(v) ≠ ⊥ => RN(LN(v)) = v; RN(v) ≠ ⊥ => LN(RN(v)) = v.
  if (ln != kNoNode && rn_of(g, l, ln) != v) return false;
  if (rn != kNoNode && ln_of(g, l, rn) != v) return false;

  if (v_internal) {
    const NodeIndex lc = left_child_of(g, t, v);
    const NodeIndex rc = right_child_of(g, t, v);
    // siblings: RN(LC(v)) = RC(v) and LN(RC(v)) = LC(v).
    if (rn_of(g, l, lc) != rc || ln_of(g, l, rc) != lc) return false;
    // persistence: w = RN(v) ≠ ⊥ => w internal and the child-level lateral
    // chain continues across the sibling groups: RN(RC(v)) = LC(w) (and v's
    // rightmost child is LC(w)'s left neighbor).  The paper prints this as
    // "RN(RC(v)) = LN(LC(w))", which is false on the genuine balanced
    // structure (there RN(RC(v)) = LC(w) while LN(LC(w)) = RC(v)); we
    // implement the evident intent.  Symmetrically for u = LN(v).
    if (rn != kNoNode) {
      if (!is_internal(g, t, rn)) return false;
      const NodeIndex wl = left_child_of(g, t, rn);
      if (rn_of(g, l, rc) != wl || ln_of(g, l, wl) != rc) return false;
    }
    if (ln != kNoNode) {
      if (!is_internal(g, t, ln)) return false;
      const NodeIndex ur = right_child_of(g, t, ln);
      if (ln_of(g, l, lc) != ur || rn_of(g, l, ur) != lc) return false;
    }
  }
  return true;
}

bool BalancedTreeProblem::valid_at(const InstanceType& inst, const Output& out,
                                   NodeIndex v) const {
  const Graph& g = inst.graph;
  const BalancedTreeLabeling& l = inst.labels;
  if (!is_consistent(g, l.tree, v)) return true;  // Def. 4.3 constrains consistent nodes
  const BtOutput& o = out[v];
  if (!bt_compatible(g, l, v)) {
    return o == BtOutput{Balance::Unbalanced, kNoPort};  // condition 1
  }
  if (is_leaf(g, l.tree, v)) {
    return o == BtOutput{Balance::Balanced, l.tree.parent[v]};  // condition 2
  }
  // Compatible internal node: condition 3.
  const NodeIndex lc = left_child_of(g, l.tree, v);
  const NodeIndex rc = right_child_of(g, l.tree, v);
  const BtOutput& ol = out[lc];
  const BtOutput& orr = out[rc];
  const bool children_balanced = ol == BtOutput{Balance::Balanced, l.tree.parent[lc]} &&
                                 orr == BtOutput{Balance::Balanced, l.tree.parent[rc]};
  if (children_balanced) {
    return o == BtOutput{Balance::Balanced, l.tree.parent[v]};  // condition 3(a)
  }
  // Condition 3(b): point at an Unbalanced child.
  if (ol.beta == Balance::Unbalanced && o == BtOutput{Balance::Unbalanced, l.tree.left[v]}) {
    return true;
  }
  if (orr.beta == Balance::Unbalanced && o == BtOutput{Balance::Unbalanced, l.tree.right[v]}) {
    return true;
  }
  return false;
}

}  // namespace volcal
