#include "lcl/problems/ring_coloring.hpp"

#include <algorithm>
#include <bit>
#include <vector>

namespace volcal {

namespace {

// One Cole-Vishkin reduction step: from the pair (own color, successor
// color), produce 2i + bit_i(own), where i is the lowest differing bit.
std::uint64_t cv_step(std::uint64_t own, std::uint64_t next) {
  const std::uint64_t diff = own ^ next;
  const int i = std::countr_zero(diff == 0 ? std::uint64_t{1} : diff);
  return 2 * static_cast<std::uint64_t>(i) + ((own >> i) & 1);
}

// Rounds until 64-bit colors stabilize at 3 bits (colors 0..7).
int cv_core_rounds() {
  int rounds = 0;
  int bits = 64;
  while (bits > 3) {
    int next = 1;
    while ((1 << next) < bits) ++next;  // ceil(log2(bits))
    bits = next + 1;
    ++rounds;
  }
  return rounds;
}

}  // namespace

int ring_cv_rounds(std::int64_t) {
  // IDs fit in 64 bits for every n we run; the classical bound is
  // log*(n) + O(1) and our fixed-width tape realizes it as a constant-ish
  // value — the bench tables report the *measured volume*, which is what
  // exhibits the Θ(log* n) landscape point.
  return cv_core_rounds() + 5;  // + five 8->3 recoloring rounds
}

int ring_color_cole_vishkin(const RingInstance& /*inst*/, Execution& exec) {
  const int core = cv_core_rounds();
  constexpr int kRecolor = 5;   // retire colors 7,6,5,4,3
  constexpr int kMargin = kRecolor + 2;  // keep start comfortably interior
  // Gather the ID chain positions -kMargin .. core + kMargin around start
  // (port 1 = successor, port 2 = predecessor).
  std::vector<NodeIndex> chain;  // position p stored at index p + kMargin
  {
    std::vector<NodeIndex> back;
    NodeIndex cur = exec.start();
    for (int i = 0; i < kMargin; ++i) {
      cur = exec.query(cur, 2);
      back.push_back(cur);
    }
    chain.assign(back.rbegin(), back.rend());
    chain.push_back(exec.start());
    cur = exec.start();
    for (int i = 0; i < core + kMargin; ++i) {
      cur = exec.query(cur, 1);
      chain.push_back(cur);
    }
  }
  // Core reduction: after r rounds, colors are defined for chain indices
  // [0, len - 1 - r].
  std::vector<std::uint64_t> color(chain.size());
  for (std::size_t i = 0; i < chain.size(); ++i) color[i] = exec.id(chain[i]);
  std::size_t live = chain.size();
  for (int r = 0; r < core; ++r) {
    for (std::size_t i = 0; i + 1 < live; ++i) color[i] = cv_step(color[i], color[i + 1]);
    --live;
  }
  // Shift-down-free recoloring: retire colors 7..3 one per round; a node of
  // the retired color picks the smallest of {0,1,2} unused by its neighbors.
  // Each round shrinks the valid window by one on both sides.
  std::size_t lo = 0, hi = live - 1;
  for (int retired = 7; retired >= 3; --retired) {
    std::vector<std::uint64_t> next_color(color);
    for (std::size_t i = lo + 1; i < hi; ++i) {
      if (color[i] == static_cast<std::uint64_t>(retired)) {
        for (std::uint64_t c = 0; c < 3; ++c) {
          if (color[i - 1] != c && color[i + 1] != c) {
            next_color[i] = c;
            break;
          }
        }
      }
    }
    color = std::move(next_color);
    ++lo;
    --hi;
  }
  return static_cast<int>(color[kMargin]);
}

bool sinkless_orientation_valid(const Graph& g, const std::vector<Port>& out_port) {
  for (NodeIndex v = 0; v < g.node_count(); ++v) {
    if (g.degree(v) < 3) continue;
    const Port p = out_port[v];
    if (p < 1 || p > g.degree(v)) return false;  // degree->=3 nodes need an out-edge
  }
  return true;
}

}  // namespace volcal
