// LeafColoring (paper Section 3, Definition 3.4).
//
// Input:  a colored tree labeling (P/LC/RC port claims + χ_in ∈ {R,B}).
// Output: χ_out ∈ {R,B} per node.
// Valid:  leaves and inconsistent nodes echo their input color; every
//         internal node outputs the color of one of its two children.
//
// The separation it witnesses (Thm. 3.6): all of R-DIST, D-DIST, R-VOL are
// Θ(log n), yet D-VOL = Θ(n) — randomness helps volume exponentially even
// though it cannot help distance here.
#pragma once

#include <vector>

#include "labels/instances.hpp"
#include "labels/tree_labeling.hpp"
#include "lcl/lcl.hpp"

namespace volcal {

class LeafColoringProblem {
 public:
  using InstanceType = LeafColoringInstance;
  using Output = std::vector<Color>;

  // Checkability radius: "is v a leaf" needs the internal-status of v's
  // claimed parent, whose own check looks one hop further (Lemma 3.5).
  static constexpr int radius() { return 2; }

  bool valid_at(const InstanceType& inst, const Output& out, NodeIndex v) const {
    const Graph& g = inst.graph;
    const ColoredTreeLabeling& l = inst.labels;
    if (is_internal(g, l.tree, v)) {
      // χ_out(v) ∈ {χ_out(LC(v)), χ_out(RC(v))}.
      const NodeIndex lc = left_child_of(g, l.tree, v);
      const NodeIndex rc = right_child_of(g, l.tree, v);
      return (lc != kNoNode && out[v] == out[lc]) || (rc != kNoNode && out[v] == out[rc]);
    }
    // Leaf or inconsistent: echo the input color.
    return out[v] == l.color[v];
  }
};

}  // namespace volcal
