// BallCensus(r) — report |N_v(r)|, the size of the radius-r ball (§2.2).
//
// Not one of the paper's separation families: its role in the registry is to
// pin the query model itself.  The solver is a bare explore_ball(exec, r), so
// its volume cost IS its output and its verifier recomputes the ball offline
// (graph/bfs.hpp) with no execution in the loop — any disagreement means the
// metered exploration visited the wrong node set.  It is also the family
// whose whole-graph sweeps re-explore maximally overlapping views, which
// makes it the canonical workload for the view-cache equivalence suite and
// the bench_runner cache ablation.
//
// Checkability radius is r: |N_v(r)| is a function of the radius-r ball.
#pragma once

#include <vector>

#include "graph/bfs.hpp"
#include "labels/instances.hpp"
#include "labels/tree_labeling.hpp"
#include "lcl/lcl.hpp"

namespace volcal {

class BallCensusProblem {
 public:
  using InstanceType = LeafColoringInstance;
  using Output = std::vector<int>;

  explicit BallCensusProblem(int radius) : radius_(radius) {}

  int radius() const { return radius_; }

  bool valid_at(const InstanceType& inst, const Output& out, NodeIndex v) const {
    return out[static_cast<std::size_t>(v)] ==
           static_cast<int>(ball(inst.graph, v, radius_).size());
  }

 private:
  int radius_;
};

}  // namespace volcal
