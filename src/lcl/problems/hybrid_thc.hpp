// Hybrid balanced 2½-coloring, Hybrid-THC(k) (paper Section 6,
// Definition 6.1): the hierarchy of Section 5 with the level-1 floor replaced
// by BalancedTree instances.
//
// Levels are *input labels* level(v) ∈ [k+1].  Level-1 components host
// BalancedTree: either solved (β/port outputs everywhere) or declined
// (unanimous D per component).  A level-2 node may go exempt only when the
// BalancedTree component hanging below it is solved; levels > 2 follow
// Def. 5.5 verbatim.
//
// The separation it witnesses (Thm. 6.3): distance collapses to Θ(log n)
// (BalancedTree is distance-easy) while volume stays Θ̃(n^{1/k}) randomized /
// Θ̃(n) deterministic (BalancedTree is volume-hard).
#pragma once

#include <memory>
#include <vector>

#include "labels/hierarchy.hpp"
#include "labels/instances.hpp"
#include "lcl/problems/balanced_tree.hpp"
#include "lcl/problems/hierarchical_thc.hpp"

namespace volcal {

// A Hybrid-THC output is either a BalancedTree pair (level-1 nodes that
// solved their component) or a THC symbol (everything else; level-1 nodes
// that declined output D).
struct HybridOutput {
  bool is_bt = false;
  BtOutput bt;
  ThcColor thc = ThcColor::D;

  friend bool operator==(const HybridOutput&, const HybridOutput&) = default;

  static HybridOutput balanced(BtOutput o) { return {true, o, ThcColor::D}; }
  static HybridOutput symbol(ThcColor c) { return {false, {}, c}; }
};

class HybridTHCProblem {
 public:
  using InstanceType = HybridInstance;
  using Output = std::vector<HybridOutput>;

  HybridTHCProblem(const InstanceType& inst, int k);

  int k() const { return k_; }
  const Hierarchy& hierarchy() const { return *hierarchy_; }

  int radius() const { return 2 * (k_ + 2); }

  bool valid_at(const InstanceType& inst, const Output& out, NodeIndex v) const;

 private:
  int k_;
  std::shared_ptr<Hierarchy> hierarchy_;  // levels from input labels
};

}  // namespace volcal
