// Maximal matching — the third stock LCL of Def. 2.6 ("k-coloring, maximal
// independent set, and maximal matching") and a standard target of the LCA
// literature ([30] Mansour-Vardi, [31] Mansour et al.).
//
// Output encoding: each node names the port of its matched edge (kNoPort if
// single).  Validity (radius 1): matched ports must be mutual, and no edge
// may have both endpoints single (maximality).
//
// Query-model algorithm: random edge priorities (derived from both
// endpoints' random strings, symmetric in the endpoints so the two sides
// agree), greedy rule evaluated recursively:
//
//   InMatching(e)  <=>  no adjacent edge f with priority(f) > priority(e)
//                       has InMatching(f).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "graph/graph.hpp"
#include "labels/ids.hpp"
#include "runtime/execution.hpp"
#include "runtime/randomness.hpp"
#include "util/hash.hpp"

namespace volcal {

struct MatchingProblem {
  static constexpr int radius() { return 1; }

  static bool valid(const Graph& g, const std::vector<Port>& match_port) {
    for (NodeIndex v = 0; v < g.node_count(); ++v) {
      const Port p = match_port[v];
      if (p != kNoPort) {
        if (p < 1 || p > g.degree(v)) return false;
        const NodeIndex w = g.neighbor(v, p);
        if (match_port[w] == kNoPort || g.neighbor(w, match_port[w]) != v) {
          return false;  // matching must be mutual
        }
      } else {
        // Maximality: some neighbor must be matched (to anyone).
        for (NodeIndex w : g.neighbors(v)) {
          if (match_port[w] == kNoPort) return false;
        }
      }
    }
    return true;
  }
};

// Per-execution matching LCA.  Edges are keyed by their (unordered) endpoint
// pair; priorities mix both endpoints' tape words so every execution that
// evaluates an edge sees the same coin.
class MatchingLca {
 public:
  MatchingLca(Execution& exec, RandomTape& tape) : exec_(&exec), tape_(&tape) {}

  // The port v is matched through, or kNoPort.  v must be visited.
  Port matched_port(NodeIndex v) {
    const int deg = exec_->degree(v);
    for (Port p = 1; p <= deg; ++p) {
      const NodeIndex w = exec_->query(v, p);
      if (in_matching(v, w)) return p;
    }
    return kNoPort;
  }

 private:
  using EdgeKey = std::pair<NodeIndex, NodeIndex>;  // ordered (min, max)

  static EdgeKey key(NodeIndex a, NodeIndex b) {
    return a < b ? EdgeKey{a, b} : EdgeKey{b, a};
  }

  std::pair<std::uint64_t, std::uint64_t> priority(NodeIndex a, NodeIndex b) {
    const auto [lo, hi] = key(a, b);
    // Symmetric in the endpoints; position 320 keeps clear of the other
    // consumers of the tape.
    const std::uint64_t word = mix64(tape_->word(exec_->start(), lo, 320),
                                     tape_->word(exec_->start(), hi, 320));
    return {word, static_cast<std::uint64_t>(exec_->id(lo)) << 20 ^ exec_->id(hi)};
  }

  bool in_matching(NodeIndex a, NodeIndex b) {
    const EdgeKey e = key(a, b);
    auto it = memo_.find(e);
    if (it != memo_.end()) return it->second;
    memo_[e] = false;  // never observed: recursion ascends in priority
    const auto pe = priority(a, b);
    bool in = true;
    for (const NodeIndex endpoint : {a, b}) {
      const int deg = exec_->degree(endpoint);
      for (Port p = 1; p <= deg && in; ++p) {
        const NodeIndex other = exec_->query(endpoint, p);
        if (key(endpoint, other) == e) continue;
        if (priority(endpoint, other) > pe && in_matching(endpoint, other)) in = false;
      }
      if (!in) break;
    }
    memo_[e] = in;
    return in;
  }

  Execution* exec_;
  RandomTape* tape_;
  std::map<EdgeKey, bool> memo_;
};

inline Port matching_lca_query(Execution& exec, RandomTape& tape) {
  MatchingLca lca(exec, tape);
  return lca.matched_port(exec.start());
}

}  // namespace volcal
