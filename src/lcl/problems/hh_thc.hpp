// Hierarchical-or-hybrid 2½-coloring, HH-THC(k, ℓ) (paper Section 6.1,
// Definition 6.4): every node carries a selector bit b_v; nodes with b = 0
// solve Hierarchical-THC(ℓ) (input levels ignored), nodes with b = 1 solve
// Hybrid-THC(k).
//
// The separation it witnesses (Thm. 6.5): DIST = Θ(n^{1/ℓ}) (driven by the
// hierarchical side), R-VOL = Θ̃(n^{1/k}) (driven by the hybrid side),
// D-VOL = Θ̃(n).
#pragma once

#include <memory>
#include <vector>

#include "labels/hierarchy.hpp"
#include "labels/instances.hpp"
#include "lcl/problems/hybrid_thc.hpp"

namespace volcal {

class HHTHCProblem {
 public:
  using InstanceType = HHInstance;
  using Output = std::vector<HybridOutput>;  // side-0 nodes use the THC symbols

  HHTHCProblem(const InstanceType& inst, int k, int l);

  int k() const { return k_; }
  int l() const { return l_; }

  int radius() const { return 2 * (l_ + 2); }

  bool valid_at(const InstanceType& inst, const Output& out, NodeIndex v) const;

 private:
  int k_;
  int l_;
  std::shared_ptr<Hierarchy> hier_side_;    // RC-chain levels, cap l+1 (b = 0)
  std::shared_ptr<Hierarchy> hybrid_side_;  // input levels, cap k+1 (b = 1)
};

}  // namespace volcal
