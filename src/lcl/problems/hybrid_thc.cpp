#include "lcl/problems/hybrid_thc.hpp"

namespace volcal {

namespace {

// Validity of the BalancedTree conditions (Def. 4.3) for a level-1 node of a
// Hybrid instance, reading child outputs through the HybridOutput wrapper.
// Children that declined (non-bt outputs) fail the bt branch — Def. 6.1 then
// requires the whole component to decline unanimously.
bool bt_valid_here(const HybridInstance& inst, const std::vector<HybridOutput>& out,
                   NodeIndex v) {
  const Graph& g = inst.graph;
  const BalancedTreeLabeling& l = inst.labels.bal;
  if (!is_consistent(g, l.tree, v)) return true;
  if (!out[v].is_bt) return false;
  const BtOutput& o = out[v].bt;
  if (!bt_compatible(g, l, v)) return o == BtOutput{Balance::Unbalanced, kNoPort};
  if (is_leaf(g, l.tree, v)) return o == BtOutput{Balance::Balanced, l.tree.parent[v]};
  const NodeIndex lc = left_child_of(g, l.tree, v);
  const NodeIndex rc = right_child_of(g, l.tree, v);
  if (!out[lc].is_bt || !out[rc].is_bt) return false;
  const BtOutput& ol = out[lc].bt;
  const BtOutput& orr = out[rc].bt;
  const bool children_balanced = ol == BtOutput{Balance::Balanced, l.tree.parent[lc]} &&
                                 orr == BtOutput{Balance::Balanced, l.tree.parent[rc]};
  if (children_balanced) return o == BtOutput{Balance::Balanced, l.tree.parent[v]};
  if (ol.beta == Balance::Unbalanced && o == BtOutput{Balance::Unbalanced, l.tree.left[v]}) {
    return true;
  }
  if (orr.beta == Balance::Unbalanced &&
      o == BtOutput{Balance::Unbalanced, l.tree.right[v]}) {
    return true;
  }
  return false;
}

}  // namespace

HybridTHCProblem::HybridTHCProblem(const InstanceType& inst, int k)
    : k_(k),
      hierarchy_(std::make_shared<Hierarchy>(inst.graph, inst.labels.bal.tree, k + 1,
                                             inst.labels.level_in)) {}

bool HybridTHCProblem::valid_at(const InstanceType& inst, const Output& out,
                                NodeIndex v) const {
  const Hierarchy& h = *hierarchy_;
  const int level = h.level(v);

  if (level == 1) {
    // Option A: BalancedTree-valid at v.  Option B: v and all its level-1
    // G_T neighbors declined.
    if (bt_valid_here(inst, out, v)) return true;
    if (out[v].is_bt || out[v].thc != ThcColor::D) return false;
    for (const NodeIndex nb : {h.up(v), h.lc(v), h.rc(v)}) {
      if (nb == kNoNode || h.level(nb) != 1) continue;
      if (out[nb].is_bt || out[nb].thc != ThcColor::D) return false;
    }
    return true;
  }

  // Levels >= 2 (and exempt > k) speak the THC symbol alphabet.
  if (out[v].is_bt) return false;
  std::vector<ThcColor> thc(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    thc[i] = out[i].is_bt ? ThcColor::D : out[i].thc;
  }
  // Level-2 exemption certificate: the BalancedTree component below solved
  // (its root produced a bt output) — Def. 6.1's replacement of 4(b)/5(a).
  std::vector<std::uint8_t> certified(out.size(), 0);
  if (level == 2) {
    const NodeIndex d = h.down(v);
    certified[v] = (d != kNoNode && out[d].is_bt) ? 1 : 0;
  }
  ThcValidityOptions opt;
  opt.k = k_;
  opt.hybrid_level2 = true;
  return thc_conditions_hold(h, inst.labels.color, thc, v, opt, &certified);
}

}  // namespace volcal
