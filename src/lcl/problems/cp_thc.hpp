// The Chang-Pettie-flavored hierarchical 2½-coloring variant sketched in
// Remark 5.7, as a foil for the paper's Hierarchical-THC:
//
//   * non-exempt backbone segments are *properly* 2-colored by {R, B}
//     (adjacent nodes differ) instead of unanimously colored, or unanimously
//     declined;
//   * exemption is *mandatory*: a node whose RC component certifies
//     (outputs anything but D) MUST output X — the paper's version merely
//     allows it.
//
// The remark claims the paper's relaxations "seem necessary in order for the
// problem to have small volume complexity".  This module makes the claim
// executable: the way-point algorithm's whole point is to pay for only a
// sampled subset of RC recursions, but mandatory exemption makes every
// node's output depend on its own subtree's solvability — so the sampled
// outputs violate CP-validity wherever a certifying subtree went unsampled
// (see cp_thc_test and bench_ablations).
//
// The exact rules of [12] differ in presentation; this is a faithful
// rendering of the two differences Remark 5.7 names, on top of the Def.-5.5
// scaffolding.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "labels/hierarchy.hpp"
#include "labels/instances.hpp"
#include "lcl/algorithms/hthc_algos.hpp"
#include "lcl/problems/hierarchical_thc.hpp"

namespace volcal {

class CpTHCProblem {
 public:
  using InstanceType = HierarchicalInstance;
  using Output = std::vector<ThcColor>;

  CpTHCProblem(const InstanceType& inst, int k)
      : k_(k),
        hierarchy_(std::make_shared<Hierarchy>(inst.graph, inst.labels.tree, k + 1)) {}

  int k() const { return k_; }
  const Hierarchy& hierarchy() const { return *hierarchy_; }
  int radius() const { return 2 * (k_ + 2); }

  bool valid_at(const InstanceType& inst, const Output& out, NodeIndex v) const;

 private:
  int k_;
  std::shared_ptr<Hierarchy> hierarchy_;
};

// Deterministic CP solver: recursively decides every RC component (no
// sampling is possible under mandatory exemption), outputs X wherever the
// component below certifies, and properly 2-colors the residual segments by
// parity from each segment's bottom anchor.  Works on instances whose
// backbones are within the 2n^{1/k} window (the balanced Prop.-5.13 family);
// declines deep level-1 components like Algorithm 2.
template <typename Source>
class CpSolver {
 public:
  CpSolver(Source& src, const HthcConfig& cfg)
      : src_(&src), view_(src, cfg.k + 1), cfg_(cfg) {}

  ThcColor solve_at(NodeIndex v) {
    auto it = memo_.find(v);
    if (it != memo_.end()) return it->second;
    const ThcColor result = compute(v);
    memo_.emplace(v, result);
    return result;
  }

 private:
  bool rc_certifies(NodeIndex u) {
    const NodeIndex d = view_.down(u);
    if (d == kNoNode) return false;
    const ThcColor r = solve_at(d);
    return r != ThcColor::D;
  }

  static ThcColor flip(ThcColor c) { return c == ThcColor::R ? ThcColor::B : ThcColor::R; }

  ThcColor compute(NodeIndex v) {
    const int level = view_.level(v);
    if (level > cfg_.k) return ThcColor::X;
    // Mandatory exemption first: the output is forced whenever the component
    // below certifies, regardless of anything else.
    if (level >= 2 && rc_certifies(v)) return ThcColor::X;

    // Walk down to the segment anchor: the first node below v (inclusive)
    // that is a level leaf or would be exempt.  Parity from the anchor gives
    // the proper coloring; the anchor itself echoes χ_in.
    NodeIndex cur = v;
    std::int64_t steps = 0;
    while (true) {
      const NodeIndex next = view_.backbone_next(cur);
      if (next == kNoNode) break;  // cur is the level leaf: anchor
      if (level >= 2 && rc_certifies(next)) break;  // next is exempt: cur anchors
      cur = next;
      ++steps;
      if (steps > cfg_.window + 1) {
        // Segment longer than the window: decline (valid below level k when
        // the whole segment declines; the balanced family never gets here).
        return ThcColor::D;
      }
    }
    const ThcColor anchor_color = to_thc(src_->color(cur));
    return (steps % 2 == 0) ? anchor_color : flip(anchor_color);
  }

  Source* src_;
  HierView<Source> view_;
  HthcConfig cfg_;
  std::unordered_map<NodeIndex, ThcColor> memo_;
};

}  // namespace volcal
