// Maximal independent set — one of the paper's stock examples of an LCL
// (Def. 2.6 names it alongside k-coloring and maximal matching) and the
// flagship problem of the local computation algorithms literature the volume
// model formalizes ([39] Rubinfeld et al., [1] Alon et al.).
//
// Query-model algorithm: the classic random-priority LCA.  Each node draws a
// priority from its own random string; membership is the greedy rule
//
//   InMIS(v)  <=>  no neighbor w with higher priority has InMIS(w),
//
// evaluated recursively.  On bounded-degree graphs the dependency chains are
// short with high probability, so the volume is polylogarithmic — a class-A/B
// style landscape point for Figure 2's volume axis.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "labels/ids.hpp"
#include "runtime/execution.hpp"
#include "runtime/randomness.hpp"

namespace volcal {

struct MisProblem {
  // Independence + maximality are radius-1 checkable.
  static constexpr int radius() { return 1; }

  static bool valid(const Graph& g, const std::vector<std::uint8_t>& in_set) {
    for (NodeIndex v = 0; v < g.node_count(); ++v) {
      bool dominated = in_set[v] != 0;
      for (NodeIndex w : g.neighbors(v)) {
        if (in_set[v] && in_set[w]) return false;  // independence
        dominated |= in_set[w] != 0;
      }
      if (!dominated) return false;  // maximality
    }
    return true;
  }
};

// One membership query through the cost-metered query interface.  The
// per-execution memo keeps the recursion a DAG walk; ties are broken by node
// ID, so priorities form a total order and the recursion terminates.
class MisLca {
 public:
  MisLca(Execution& exec, RandomTape& tape) : exec_(&exec), tape_(&tape) {}

  bool in_mis(NodeIndex v) {
    auto it = memo_.find(v);
    if (it != memo_.end()) return it->second;
    // Mark in-progress defensively; the priority order makes recursion
    // acyclic, so this value is never observed.
    memo_[v] = false;
    const auto pv = priority(v);
    bool in = true;
    const int deg = exec_->degree(v);
    for (Port p = 1; p <= deg && in; ++p) {
      const NodeIndex w = exec_->query(v, p);
      if (priority(w) > pv && in_mis(w)) in = false;
    }
    memo_[v] = in;
    return in;
  }

 private:
  std::pair<std::uint64_t, NodeId> priority(NodeIndex v) {
    return {tape_->word(exec_->start(), v, 256), exec_->id(v)};
  }

  Execution* exec_;
  RandomTape* tape_;
  std::unordered_map<NodeIndex, bool> memo_;
};

inline bool mis_lca_query(Execution& exec, RandomTape& tape) {
  MisLca lca(exec, tape);
  return lca.in_mis(exec.start());
}

}  // namespace volcal
