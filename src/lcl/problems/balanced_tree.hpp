// BalancedTree (paper Section 4, Definitions 4.1-4.3).
//
// Input:  a balanced tree labeling (tree claims + lateral LN/RN claims).
// Output: (β, p) ∈ {B, U} × P per node — "my subtree is a balanced binary
//         tree, continue upward via p" or "unbalanced, defect is via p".
// Valid:  Definition 4.3 — incompatible nodes declare (U, ⊥); compatible
//         leaves pass (B, P(v)) up; compatible internal nodes aggregate.
//
// The separation it witnesses (Thm. 4.5): DIST = Θ(log n) for both models,
// but *both* R-VOL and D-VOL are Θ(n) — by reduction from two-party set
// disjointness (Prop. 4.9).
#pragma once

#include <cstdint>
#include <vector>

#include "labels/instances.hpp"
#include "labels/tree_labeling.hpp"
#include "lcl/lcl.hpp"

namespace volcal {

enum class Balance : std::uint8_t { Balanced, Unbalanced };

struct BtOutput {
  Balance beta = Balance::Unbalanced;
  Port p = kNoPort;

  friend bool operator==(const BtOutput&, const BtOutput&) = default;
};

// Definition 4.2 evaluated globally (the checker's view; solvers re-derive it
// through queries).  Only meaningful for consistent v.
bool bt_compatible(const Graph& g, const BalancedTreeLabeling& l, NodeIndex v);

class BalancedTreeProblem {
 public:
  using InstanceType = BalancedTreeInstance;
  using Output = std::vector<BtOutput>;

  // Compatibility inspects labels of lateral neighbors' neighbors plus the
  // internal-status of adjacent nodes: a radius-3 predicate (Lemma 4.4).
  static constexpr int radius() { return 3; }

  bool valid_at(const InstanceType& inst, const Output& out, NodeIndex v) const;
};

}  // namespace volcal
