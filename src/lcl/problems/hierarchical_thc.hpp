// Hierarchical 2½-coloring, Hierarchical-THC(k) (paper Section 5,
// Definition 5.5) — the Chang-Pettie-style hierarchy variant with unanimous
// (not proper) component colors and relaxed exemption (Remark 5.7).
//
// Output alphabet: {R, B, D, X} — color, color, "decline", "exempt".
// Each backbone (equal-level component of the hierarchical forest G_k) must
// be colored unanimously between exempt nodes; a node may go exempt only when
// the component hanging below it via RC certifies itself (outputs R/B/X).
//
// The separation it witnesses (Thm. 5.9): R-DIST = D-DIST = Θ(n^{1/k}),
// R-VOL = Θ̃(n^{1/k}), D-VOL = Θ̃(n).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "labels/hierarchy.hpp"
#include "labels/instances.hpp"
#include "lcl/lcl.hpp"

namespace volcal {

enum class ThcColor : std::uint8_t { R, B, D, X };

inline ThcColor to_thc(Color c) { return c == Color::Red ? ThcColor::R : ThcColor::B; }

inline char thc_char(ThcColor c) {
  switch (c) {
    case ThcColor::R: return 'R';
    case ThcColor::B: return 'B';
    case ThcColor::D: return 'D';
    case ThcColor::X: return 'X';
  }
  return '?';
}

// Shared validity core: evaluates the numbered conditions of Def. 5.5 at v
// given the hierarchy h (levels may come from the RC-chain or, for Hybrid,
// from input labels).  `chi_in` is v's input color.  `k` is the problem
// parameter; h.cap() must be k+1.
//
// `modified_exemption_at_2` implements Def. 6.1's replacement of 4(b) at
// level 2 for Hybrid-THC, where the sub-level-1 certificate set is supplied
// by the caller via `down_certifies`.
struct ThcValidityOptions {
  int k = 1;
  bool hybrid_level2 = false;  // level-2 X gated by BalancedTree output below
};

class HierarchicalTHCProblem {
 public:
  using InstanceType = HierarchicalInstance;
  using Output = std::vector<ThcColor>;

  HierarchicalTHCProblem(const InstanceType& inst, int k)
      : k_(k),
        hierarchy_(std::make_shared<Hierarchy>(inst.graph, tree_labels(inst), k + 1)) {}

  int k() const { return k_; }
  const Hierarchy& hierarchy() const { return *hierarchy_; }

  // Level computation walks the RC-chain O(k) hops and backbone membership
  // one more: radius O(k), a constant for fixed k (Obs. 5.3, Lemma 5.8).
  int radius() const { return 2 * (k_ + 2); }

  bool valid_at(const InstanceType& inst, const Output& out, NodeIndex v) const;

 private:
  static const TreeLabeling& tree_labels(const InstanceType& inst) {
    return inst.labels.tree;
  }

  int k_;
  std::shared_ptr<Hierarchy> hierarchy_;
};

// The condition engine shared by Hierarchical-, Hybrid-, and HH-THC.
// `down_out(v)` must return the output of the node hanging below v via RC
// (or D if absent — which never certifies), and `next_out(v)` the output of
// v's backbone successor.
bool thc_conditions_hold(const Hierarchy& h, const std::vector<Color>& chi_in,
                         const std::vector<ThcColor>& out, NodeIndex v,
                         const ThcValidityOptions& opt,
                         const std::vector<std::uint8_t>* down_certified_override = nullptr);

}  // namespace volcal
