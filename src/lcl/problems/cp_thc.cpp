#include "lcl/problems/cp_thc.hpp"

namespace volcal {

namespace {

bool is_color(ThcColor c) { return c == ThcColor::R || c == ThcColor::B; }

}  // namespace

bool CpTHCProblem::valid_at(const InstanceType& inst, const Output& out,
                            NodeIndex v) const {
  const Hierarchy& h = *hierarchy_;
  const int level = h.level(v);
  if (level > k_) return out[v] == ThcColor::X;  // exempt above the hierarchy

  const NodeIndex next = h.backbone_next(v);
  const NodeIndex down = h.down(v);
  const bool leaf = h.is_level_leaf(v);

  // Mandatory exemption (the first Remark-5.7 difference): a certifying
  // component below forces X; conversely X still requires the certificate.
  if (level >= 2 && down != kNoNode) {
    const bool certified = out[down] != ThcColor::D;
    if (certified && out[v] != ThcColor::X) return false;
    if (!certified && out[v] == ThcColor::X) return false;
  } else if (out[v] == ThcColor::X) {
    return false;  // no component below: nothing can exempt v (incl. level 1)
  }
  if (out[v] == ThcColor::X) return true;

  // Leaves echo their input color or decline.
  if (leaf) {
    return out[v] == to_thc(inst.labels.color[v]) || out[v] == ThcColor::D;
  }

  // Non-exempt interior nodes: unanimous D with the successor, or a *proper*
  // 2-coloring across the successor (the second Remark-5.7 difference).
  if (out[v] == ThcColor::D) {
    return next != kNoNode && (out[next] == ThcColor::D || out[next] == ThcColor::X);
  }
  if (!is_color(out[v])) return false;
  if (next == kNoNode) return false;  // non-leaf must have a successor
  if (out[next] == ThcColor::X) return true;  // segment ends at an exemption
  return is_color(out[next]) && out[next] != out[v];  // properly colored
}

}  // namespace volcal
