#include "lcl/description.hpp"

#include <deque>
#include <sstream>
#include <unordered_map>

namespace volcal {

std::string ball_signature(const Graph& g, NodeIndex center, int radius,
                           const NodeLabelFn& label) {
  // Port-ordered BFS gives a canonical local numbering: the same labeled
  // ball always serializes identically, independent of global indices.
  std::vector<NodeIndex> order{center};
  std::unordered_map<NodeIndex, std::int64_t> local{{center, 0}};
  std::deque<std::pair<NodeIndex, int>> frontier{{center, 0}};
  while (!frontier.empty()) {
    const auto [v, d] = frontier.front();
    frontier.pop_front();
    if (d == radius) continue;
    const int deg = g.degree(v);
    for (Port p = 1; p <= deg; ++p) {
      const NodeIndex w = g.neighbor(v, p);
      if (local.emplace(w, static_cast<std::int64_t>(order.size())).second) {
        order.push_back(w);
        frontier.emplace_back(w, d + 1);
      }
    }
  }
  std::ostringstream os;
  os << "r" << radius << ";";
  for (const NodeIndex v : order) {
    os << "[d" << g.degree(v) << "|" << label(v) << "|";
    const int deg = g.degree(v);
    for (Port p = 1; p <= deg; ++p) {
      const NodeIndex w = g.neighbor(v, p);
      const auto it = local.find(w);
      if (it == local.end()) {
        os << ". ";  // outside the ball: the predicate may not depend on it
      } else {
        os << it->second << ' ';
      }
    }
    os << "]";
  }
  return os.str();
}

}  // namespace volcal
