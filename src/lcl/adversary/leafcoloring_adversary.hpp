// The adversary process P of Proposition 3.13: against any deterministic
// algorithm that halts within a query budget, P adaptively constructs a
// binary tree in which the algorithm never sees a leaf, then completes the
// tree with leaves colored opposite to the algorithm's output — forcing an
// invalid answer on an instance of ~3x the budget's size.
//
// The adversary presents a TreeSource (see local_view.hpp): every node it
// reveals claims P = 1, LC = 2, RC = 3 (LC = 1, RC = 2 at the root), has
// degree 3 (2 at the root), and input color Red.  Querying an unexplored
// child port spawns a fresh internal-looking node; the parent port returns
// the spawning node.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "labels/instances.hpp"
#include "runtime/execution.hpp"

namespace volcal {

class LeafColoringAdversarySource {
 public:
  // budget: maximum number of *nodes* the algorithm may cause to exist; a
  // query that would spawn past the budget throws QueryBudgetExceeded (the
  // algorithm "used too many queries" and the adversary gives up).
  explicit LeafColoringAdversarySource(std::int64_t declared_n, std::int64_t budget);

  // --- TreeSource interface -------------------------------------------------
  NodeIndex start() const { return 0; }
  std::int64_t n() const { return declared_n_; }
  int degree(NodeIndex v) const { return v == 0 ? 2 : 3; }
  NodeIndex query(NodeIndex v, Port p);
  Port parent_port(NodeIndex v) const { return v == 0 ? kNoPort : 1; }
  Port left_port(NodeIndex v) const { return v == 0 ? 1 : 2; }
  Port right_port(NodeIndex v) const { return v == 0 ? 2 : 3; }
  Color color(NodeIndex) const { return Color::Red; }

  std::int64_t nodes_spawned() const { return static_cast<std::int64_t>(nodes_.size()); }

  // Materialize the final instance G_A: explored nodes keep their labels;
  // every unassigned child port receives a fresh leaf with input color
  // `leaf_color` (the adversary picks the color the algorithm did NOT
  // output at the root).
  LeafColoringInstance materialize(Color leaf_color) const;

 private:
  struct NodeRec {
    NodeIndex parent = kNoNode;
    NodeIndex lc = kNoNode;
    NodeIndex rc = kNoNode;
  };
  std::int64_t declared_n_;
  std::int64_t budget_;
  std::vector<NodeRec> nodes_;
};

struct AdversaryDuelResult {
  bool algorithm_exceeded_budget = false;
  bool algorithm_failed = true;  // the adversary's claim: output invalid
  Color root_output = Color::Red;
  std::int64_t nodes_spawned = 0;
  std::int64_t instance_size = 0;  // |G_A| after completion
  LeafColoringInstance instance;   // the defeating instance (when failed)
};

// Runs `algorithm` (deterministic, Color(LeafColoringAdversarySource&))
// against the adversary with the given node budget, materializes the
// defeating instance, and checks that no completion-consistent output can
// make the root's answer valid.
AdversaryDuelResult duel_leafcoloring_adversary(
    const std::function<Color(LeafColoringAdversarySource&)>& algorithm,
    std::int64_t declared_n, std::int64_t budget);

}  // namespace volcal
