#include "lcl/adversary/hthc_adversary.hpp"

#include <stdexcept>

namespace volcal {

HthcAdversarySource::HthcAdversarySource(int k, std::int64_t declared_n, std::int64_t budget)
    : k_(k), declared_n_(declared_n), budget_(budget) {
  if (k < 1) throw std::invalid_argument("hthc adversary: k >= 1");
}

void HthcAdversarySource::check_budget() const {
  if (budget_ > 0 && nodes_spawned() >= budget_) {
    throw QueryBudgetExceeded("hthc adversary: node budget exhausted");
  }
}

NodeIndex HthcAdversarySource::spawn(int level, Color color, bool leaf) {
  check_budget();
  nodes_.push_back({level, color, leaf, kNoNode, kNoNode, kNoNode});
  return nodes_spawned() - 1;
}

NodeIndex HthcAdversarySource::make_seed(int level, Color paint) {
  return spawn(level, paint, false);
}

NodeIndex HthcAdversarySource::append_leaf(NodeIndex tail, Color chi) {
  if (nodes_[tail].lc != kNoNode || nodes_[tail].leaf) {
    throw std::logic_error("hthc adversary: tail LC already assigned");
  }
  const NodeIndex leaf = spawn(nodes_[tail].level, chi, true);
  nodes_[tail].lc = leaf;
  nodes_[leaf].parent = tail;
  return leaf;
}

// Port layout (labels are per-node, so conventions may differ by role):
//   interior, level >= 2: P=1, LC=2, RC=3 (degree 3)
//   interior, level == 1: P=1, LC=2       (degree 2)
//   leaf,     level >= 2: P=1, RC=2       (degree 2)
//   leaf,     level == 1: P=1             (degree 1)
int HthcAdversarySource::degree(NodeIndex v) const {
  const NodeRec& r = nodes_[v];
  if (r.leaf) return r.level >= 2 ? 2 : 1;
  return r.level >= 2 ? 3 : 2;
}
Port HthcAdversarySource::parent_port(NodeIndex) const { return 1; }
Port HthcAdversarySource::left_port(NodeIndex v) const {
  return nodes_[v].leaf ? kNoPort : 2;
}
Port HthcAdversarySource::right_port(NodeIndex v) const {
  const NodeRec& r = nodes_[v];
  if (r.level < 2) return kNoPort;
  return r.leaf ? 2 : 3;
}

NodeIndex HthcAdversarySource::query(NodeIndex v, Port p) {
  if (v < 0 || v >= nodes_spawned()) {
    throw std::logic_error("hthc adversary: query from unrevealed node");
  }
  if (p < 1 || p > degree(v)) throw std::out_of_range("hthc adversary: bad port");
  NodeRec& r = nodes_[v];
  const bool is_rc_port = (p == right_port(v));
  if (p == 1) {
    // Parent: extend the backbone upward — the explored region never shows a
    // level root.  (New parent is an interior same-level node whose LC is v.)
    if (r.parent == kNoNode) {
      const NodeIndex up = spawn(r.level, r.color, false);
      // Re-fetch: spawn may reallocate nodes_.
      nodes_[up].lc = v;
      nodes_[v].parent = up;
    }
    return nodes_[v].parent;
  }
  if (!r.leaf && p == 2) {
    // LC: extend the backbone downward.
    if (r.lc == kNoNode) {
      const NodeIndex down = spawn(r.level, r.color, false);
      nodes_[down].parent = v;
      nodes_[v].lc = down;
    }
    return nodes_[v].lc;
  }
  if (is_rc_port) {
    // RC: root of a fresh level-(ℓ-1) component.
    if (r.rc == kNoNode) {
      const NodeIndex below = spawn(r.level - 1, r.color, false);
      nodes_[below].parent = v;
      nodes_[v].rc = below;
    }
    return nodes_[v].rc;
  }
  throw std::logic_error("hthc adversary: unreachable port");
}

NodeIndex HthcAdversarySource::backbone_tail(NodeIndex v) const {
  NodeIndex cur = v;
  while (nodes_[cur].lc != kNoNode) cur = nodes_[cur].lc;
  return cur;
}

std::vector<NodeIndex> HthcAdversarySource::chain(NodeIndex a, NodeIndex b) const {
  std::vector<NodeIndex> out{a};
  NodeIndex cur = a;
  while (cur != b) {
    cur = nodes_[cur].lc;
    if (cur == kNoNode) throw std::logic_error("hthc adversary: b not below a");
    out.push_back(cur);
  }
  return out;
}

HierarchicalInstance HthcAdversarySource::materialize() const {
  // Working copy of the records; completion appends never-revealed nodes.
  struct Rec {
    int level;
    Color color;
    bool leaf;     // revealed leaf layout (no LC port)
    bool root;     // completion-only: no parent port (degree shrinks by one)
    NodeIndex parent = kNoNode, lc = kNoNode, rc = kNoNode;
  };
  std::vector<Rec> recs;
  recs.reserve(nodes_.size());
  for (const auto& r : nodes_) {
    recs.push_back({r.level, r.color, r.leaf, false, r.parent, r.lc, r.rc});
  }
  const auto revealed = static_cast<NodeIndex>(recs.size());

  // A "leaf spine": a level-ℓ leaf-type node whose RC chain descends to level
  // 1 — the cheapest completion that keeps level arithmetic consistent.
  // Returns the spine's top node.
  auto append_spine = [&recs](int level, Color color, NodeIndex parent) {
    const auto top = static_cast<NodeIndex>(recs.size());
    NodeIndex up = parent;
    for (int l = level; l >= 1; --l) {
      const auto idx = static_cast<NodeIndex>(recs.size());
      recs.push_back({l, color, /*leaf=*/true, /*root=*/false, up, kNoNode, kNoNode});
      if (l > 1) recs[idx].rc = idx + 1;  // next spine node, created next turn
      up = idx;
    }
    return top;
  };

  // Close every unassigned port of revealed nodes.
  for (NodeIndex v = 0; v < revealed; ++v) {
    const int level = recs[v].level;
    const Color color = recs[v].color;
    if (recs[v].parent == kNoNode) {
      // Root-type parent (never revealed): v hangs off its LC; its RC gets a
      // spine one level down when needed.
      const auto p = static_cast<NodeIndex>(recs.size());
      recs.push_back({level, color, /*leaf=*/false, /*root=*/true, kNoNode, v, kNoNode});
      recs[v].parent = p;
      if (level >= 2) recs[p].rc = append_spine(level - 1, color, p);
    }
    if (!recs[v].leaf && recs[v].lc == kNoNode) {
      recs[v].lc = append_spine(level, color, v);
    }
    if (level >= 2 && recs[v].rc == kNoNode) {
      recs[v].rc = append_spine(level - 1, color, v);
    }
  }

  // Materialize graph + labels.  Port layout per node kind:
  //   interior non-root: P=1, LC=2, RC=3 (level 1: no RC)
  //   interior root:           LC=1, RC=2
  //   leaf-type:         P=1,        RC=2 (level 1: P only)
  const auto n = static_cast<NodeIndex>(recs.size());
  Graph::Builder builder(n);
  ColoredTreeLabeling labels(n);
  for (NodeIndex v = 0; v < n; ++v) {
    const Rec& r = recs[v];
    Port next = 1;
    if (!r.root) labels.tree.parent[v] = next++;
    if (!r.leaf) {
      labels.tree.left[v] = next++;
      // Children claim their parent on port 1 (they are never root-type).
      builder.add_edge_with_ports(v, r.lc, labels.tree.left[v], 1);
    }
    if (r.level >= 2) {
      labels.tree.right[v] = next++;
      builder.add_edge_with_ports(v, r.rc, labels.tree.right[v], 1);
    }
    labels.color[v] = r.color;
  }
  return {std::move(builder).build(), IdAssignment::sequential(n), std::move(labels)};
}

// ---------------------------------------------------------------------------
// The driver
// ---------------------------------------------------------------------------

namespace {

Color opposite(ThcColor c) { return c == ThcColor::R ? Color::Blue : Color::Red; }

struct Driver {
  const HthcCandidate* algorithm;
  HthcAdversarySource* src;
  HthcDuelResult result;

  ThcColor simulate(NodeIndex v) {
    src->set_start(v);
    ++result.simulations;
    const ThcColor out = (*algorithm)(*src);
    result.committed.emplace_back(v, out);
    return out;
  }

  void defeat(int level, std::string why, NodeIndex a = kNoNode, NodeIndex b = kNoNode) {
    result.defeated = true;
    result.defeat_level = level;
    result.verdict = std::move(why);
    result.witness_a = a;
    result.witness_b = b;
  }

  // Both endpoints committed with distinct non-X outputs on one backbone:
  // close in on an adjacent violating pair, or find an X and descend.
  void binary_search(int level, NodeIndex a, ThcColor oa, NodeIndex b, ThcColor ob) {
    auto nodes = src->chain(a, b);
    std::size_t ia = 0, ib = nodes.size() - 1;
    while (ib - ia > 1) {
      const std::size_t im = (ia + ib) / 2;
      const ThcColor om = simulate(nodes[im]);
      if (om == ThcColor::X) {
        descend(level, nodes[im]);
        return;
      }
      if (om == oa) {
        ia = im;
      } else {
        ib = im;
        ob = om;
      }
    }
    defeat(level,
           "adjacent backbone nodes committed to '" + std::string(1, thc_char(oa)) +
               "' and '" + std::string(1, thc_char(ob)) +
               "' with no exemption between them (conditions 3(b)/4/5(b))",
           nodes[ia], nodes[ib]);
  }

  // x_node committed to X at `level`: condition 4(b)/5(a) commits RC(x) to a
  // non-D output — recurse one level down.
  void descend(int level, NodeIndex x_node) {
    if (level == 1) {
      defeat(1, "level-1 node committed to X (condition 3(a) forbids exemption)", x_node);
      return;
    }
    const NodeIndex below = src->query(x_node, src->right_port(x_node));
    phase(level - 1, below, /*under_x=*/true);
  }

  // Simulate at v (level ℓ); under_x marks that v's parent committed to X.
  void phase(int level, NodeIndex v, bool under_x) {
    const ThcColor o = simulate(v);
    if (result.defeated) return;
    if (o == ThcColor::X) {
      if (level == 1) {
        defeat(1, "level-1 node output X (condition 3(a))", v);
        return;
      }
      descend(level, v);
      return;
    }
    if (o == ThcColor::D) {
      if (level == src->k()) {
        defeat(level, "level-k node output D (condition 5 allows only R/B/X)", v);
        return;
      }
      if (under_x) {
        defeat(level + 1,
               "component under an exempt node declined (condition 4(b)/5(a) "
               "requires its output in {R,B,X})",
               v);
        return;
      }
      // Unreachable in this driver: phases below the top are always entered
      // under a committed X.
      defeat(level, "unexpected decline at a fresh component", v);
      return;
    }
    // A color: the leaf trick.  The algorithm committed to `o` having seen a
    // monochromatic region with no backbone ends; append a level-ℓ leaf of
    // the *opposite* input color below everything it explored.
    const NodeIndex tail = src->backbone_tail(v);
    const NodeIndex leaf = src->append_leaf(tail, opposite(o));
    const ThcColor q = simulate(leaf);
    if (result.defeated) return;
    if (q == o) {
      defeat(level,
             "level leaf echoed the backbone color instead of its own "
             "input color (condition 2)",
             leaf);
      return;
    }
    if (q == ThcColor::X) {
      if (level == 1) {
        defeat(1, "level-1 leaf output X (condition 3(a))", leaf);
        return;
      }
      descend(level, leaf);
      return;
    }
    if (q == ThcColor::D && level == src->k()) {
      defeat(level, "level-k leaf declined (condition 5)", leaf);
      return;
    }
    // q ∈ {opposite color, D}: two committed distinct non-X outputs on one
    // backbone — a violating adjacent pair exists between them.
    binary_search(level, v, o, leaf, q);
  }
};

}  // namespace

HthcDuelResult duel_hthc_adversary(const HthcCandidate& algorithm, int k,
                                   std::int64_t declared_n, std::int64_t budget) {
  HthcAdversarySource src(k, declared_n, budget);
  Driver driver{&algorithm, &src, {}};
  try {
    // Phase k: a fresh blue component at the top level.
    const NodeIndex seed = src.make_seed(k, Color::Blue);
    driver.phase(k, seed, /*under_x=*/false);
  } catch (const QueryBudgetExceeded&) {
    driver.result.exceeded_budget = true;
    driver.result.verdict = "algorithm exhausted the volume budget before committing";
  }
  driver.result.nodes_spawned = src.nodes_spawned();
  return driver.result;
}

}  // namespace volcal
