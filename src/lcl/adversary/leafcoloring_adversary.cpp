#include "lcl/adversary/leafcoloring_adversary.hpp"

#include <stdexcept>

#include "lcl/problems/leaf_coloring.hpp"

namespace volcal {

LeafColoringAdversarySource::LeafColoringAdversarySource(std::int64_t declared_n,
                                                         std::int64_t budget)
    : declared_n_(declared_n), budget_(budget) {
  nodes_.push_back({});  // v0, the root: ID 0 in the paper; index 0 here
}

NodeIndex LeafColoringAdversarySource::query(NodeIndex v, Port p) {
  if (v < 0 || v >= nodes_spawned()) {
    throw std::logic_error("adversary: query from unrevealed node");
  }
  if (p < 1 || p > degree(v)) {
    throw std::out_of_range("adversary: port out of range");
  }
  if (v != 0 && p == 1) {
    // Parent port.  The root of the construction has no parent; for every
    // other node the parent is whoever spawned it.
    return nodes_[v].parent;
  }
  const bool left = (v == 0 ? p == 1 : p == 2);
  const NodeIndex existing = left ? nodes_[v].lc : nodes_[v].rc;
  if (existing != kNoNode) return existing;  // previously spawned
  if (budget_ > 0 && nodes_spawned() >= budget_) {
    throw QueryBudgetExceeded("leafcoloring adversary: node budget exhausted");
  }
  // Spawn a fresh node that looks internal (P=1, LC=2, RC=3, color Red).
  // Note: push_back may reallocate, so record into nodes_[v] afterwards.
  const NodeIndex child = nodes_spawned();
  nodes_.push_back({v, kNoNode, kNoNode});
  (left ? nodes_[v].lc : nodes_[v].rc) = child;
  return child;
}

LeafColoringInstance LeafColoringAdversarySource::materialize(Color leaf_color) const {
  // Explored nodes keep their claimed labels; every unassigned child port
  // receives a fresh leaf with χ_in = leaf_color.
  const auto explored = nodes_spawned();
  std::int64_t leaves = 0;
  for (const auto& rec : nodes_) {
    leaves += (rec.lc == kNoNode ? 1 : 0) + (rec.rc == kNoNode ? 1 : 0);
  }
  const NodeIndex n = explored + leaves;
  Graph::Builder builder(n);
  ColoredTreeLabeling labels(n);
  NodeIndex next_leaf = explored;
  for (NodeIndex v = 0; v < explored; ++v) {
    labels.tree.parent[v] = parent_port(v);
    labels.tree.left[v] = left_port(v);
    labels.tree.right[v] = right_port(v);
    labels.color[v] = Color::Red;
    for (const bool left : {true, false}) {
      NodeIndex child = left ? nodes_[v].lc : nodes_[v].rc;
      const Port pv = left ? left_port(v) : right_port(v);
      if (child == kNoNode) {
        child = next_leaf++;
        labels.tree.parent[child] = 1;
        labels.tree.left[child] = kNoPort;
        labels.tree.right[child] = kNoPort;
        labels.color[child] = leaf_color;
        builder.add_edge_with_ports(v, child, pv, 1);
      } else {
        builder.add_edge_with_ports(v, child, pv, 1);
      }
    }
  }
  return {std::move(builder).build(), IdAssignment::sequential(n), std::move(labels)};
}

AdversaryDuelResult duel_leafcoloring_adversary(
    const std::function<Color(LeafColoringAdversarySource&)>& algorithm,
    std::int64_t declared_n, std::int64_t budget) {
  AdversaryDuelResult result;
  LeafColoringAdversarySource source(declared_n, budget);
  Color out;
  try {
    out = algorithm(source);
  } catch (const QueryBudgetExceeded&) {
    result.algorithm_exceeded_budget = true;
    result.algorithm_failed = false;
    result.nodes_spawned = source.nodes_spawned();
    return result;
  }
  result.root_output = out;
  result.nodes_spawned = source.nodes_spawned();
  // The adversary colors every completion leaf with the color the root did
  // NOT output.  In the completed tree, all leaves carry that color, so the
  // unique valid output colors every node with it — the root is wrong.
  const Color opposite = (out == Color::Red) ? Color::Blue : Color::Red;
  result.instance = source.materialize(opposite);
  result.instance_size = result.instance.node_count();
  // Demonstrate the forced failure: any global output extending
  // χ_out(v0) = out violates validity somewhere.  Take the *best case* for
  // the algorithm — all other nodes answer with the unique valid color —
  // and verify that the labeling still fails.
  LeafColoringProblem problem;
  std::vector<Color> output(result.instance.node_count(), opposite);
  output[0] = out;
  const auto verdict = verify_all(problem, result.instance, output);
  result.algorithm_failed = !verdict.ok;
  return result;
}

}  // namespace volcal
