// The multi-phase adversary process P of Proposition 5.20:
// D-VOL(Hierarchical-THC(k)) = Ω(n / (k log n)).
//
// P builds a colored tree labeling with level structure adaptively.  Every
// query for an unassigned port spawns a fresh node: parents and LC-children
// extend the current backbone (same level), RC-children root a fresh
// level-(ℓ-1) component.  Within the explored region there are never level
// roots or leaves, and colors are monochromatic per component — so a
// deterministic algorithm that answers after o(n) queries has committed to
// an output that some completion contradicts.
//
// The driver descends through the phases of the paper's proof:
//   * a D at level k, an X at level 1, or a D below a committed X are
//     immediate local violations;
//   * a color answer triggers the leaf trick: P appends a level-ℓ leaf with
//     the *opposite* input color below the explored backbone and simulates
//     the algorithm there — echo, decline, and exempt answers each close a
//     case (adjacent distinct non-X outputs violate conditions 3(b)/4/5(b));
//   * an X answer descends to the component below (condition 4(b)/5(a)
//     commits the RC child to a non-D output), losing one level — after at
//     most k descents phase 1 always convicts.
//
// All committed outputs come from simulations against the one growing
// instance, so they are exactly what the deterministic algorithm outputs on
// any completion — the violations are completion-independent.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "labels/instances.hpp"
#include "lcl/problems/hierarchical_thc.hpp"
#include "runtime/execution.hpp"

namespace volcal {

class HthcAdversarySource {
 public:
  HthcAdversarySource(int k, std::int64_t declared_n, std::int64_t budget);

  // --- TreeSource interface --------------------------------------------------
  NodeIndex start() const { return start_; }
  std::int64_t n() const { return declared_n_; }
  int degree(NodeIndex v) const;
  NodeIndex query(NodeIndex v, Port p);
  Port parent_port(NodeIndex v) const;
  Port left_port(NodeIndex v) const;
  Port right_port(NodeIndex v) const;
  Color color(NodeIndex v) const { return nodes_[v].color; }
  NodeId id(NodeIndex v) const { return static_cast<NodeId>(v) + 1; }

  // --- adversary controls ----------------------------------------------------
  void set_start(NodeIndex v) { start_ = v; }
  // Fresh interior node at `level` seeding a new component of `paint` color.
  NodeIndex make_seed(int level, Color paint);
  // Append a level-`level(of tail)` leaf below the backbone tail (the tail's
  // LC port must be unassigned) with the given input color.
  NodeIndex append_leaf(NodeIndex tail, Color chi);
  // The materialized LC-chain from `a` downward to `b` (inclusive); both must
  // lie on one backbone.
  std::vector<NodeIndex> chain(NodeIndex a, NodeIndex b) const;
  // Deepest LC-descendant of v spawned so far (v itself if none).
  NodeIndex backbone_tail(NodeIndex v) const;

  int level_of(NodeIndex v) const { return nodes_[v].level; }
  bool is_leaf_node(NodeIndex v) const { return nodes_[v].leaf; }
  std::int64_t nodes_spawned() const { return static_cast<std::int64_t>(nodes_.size()); }
  int k() const { return k_; }

  // Complete the adaptively-built structure into a well-formed instance:
  // every unassigned port of a *revealed* node gets a real edge (so the
  // degrees and levels the algorithm observed stay true), closed off with
  // never-revealed leaf spines and root-type parents.  Spawned nodes keep
  // their indices; the returned instance extends them.
  HierarchicalInstance materialize() const;

 private:
  struct NodeRec {
    int level = 1;
    Color color = Color::Red;
    bool leaf = false;
    NodeIndex parent = kNoNode;  // node the P port leads to
    NodeIndex lc = kNoNode;
    NodeIndex rc = kNoNode;
  };
  NodeIndex spawn(int level, Color color, bool leaf);
  void check_budget() const;

  int k_;
  std::int64_t declared_n_;
  std::int64_t budget_;
  NodeIndex start_ = kNoNode;
  std::vector<NodeRec> nodes_;
};

// A deterministic algorithm under test: produces the output of the node the
// source currently starts at.
using HthcCandidate = std::function<ThcColor(HthcAdversarySource&)>;

struct HthcDuelResult {
  bool exceeded_budget = false;  // consistent with the Ω̃(n) bound
  bool defeated = false;         // a committed local violation was exhibited
  std::string verdict;           // human-readable account of the violation
  int defeat_level = 0;          // level at which the contradiction closed
  std::int64_t nodes_spawned = 0;
  std::int64_t simulations = 0;  // number of times the algorithm was invoked
  // Every output the deterministic algorithm committed to (node, output),
  // and the node(s) whose validity the completion contradicts (witness_b may
  // be kNoNode for single-node violations).
  std::vector<std::pair<NodeIndex, ThcColor>> committed;
  NodeIndex witness_a = kNoNode;
  NodeIndex witness_b = kNoNode;
};

HthcDuelResult duel_hthc_adversary(const HthcCandidate& algorithm, int k,
                                   std::int64_t declared_n, std::int64_t budget);

}  // namespace volcal
