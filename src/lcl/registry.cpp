#include "lcl/registry.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <span>
#include <utility>

// This file *is* part of the io consolidation surface (it wires the text and
// snapshot serializers into the erased instances), so the direct include is
// intentional; everyone else goes through volcal/io.hpp.
#define VOLCAL_ALLOW_DIRECT_SERIALIZE_INCLUDE
#include "io/serialize.hpp"
#include "io/snapshot.hpp"
#include "labels/generators.hpp"
#include "labels/label_mutation.hpp"
#include "lcl/algorithms/balanced_tree_algos.hpp"
#include "lcl/algorithms/hh_algos.hpp"
#include "lcl/algorithms/hthc_algos.hpp"
#include "lcl/algorithms/hybrid_algos.hpp"
#include "lcl/algorithms/leaf_coloring_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "lcl/problems/balanced_tree.hpp"
#include "lcl/problems/ball_census.hpp"
#include "lcl/problems/hh_thc.hpp"
#include "lcl/problems/hierarchical_thc.hpp"
#include "lcl/problems/hybrid_thc.hpp"
#include "lcl/problems/leaf_coloring.hpp"
#include "util/hash.hpp"

namespace volcal {
namespace {

// --- int erasure of the per-family output alphabets -------------------------
//
// Every output alphabet here is finite (Def. 2.6) apart from the port in
// BtOutput, which is bounded by the maximum degree; the layouts below pack
// each alphabet into disjoint bit ranges of one int so verify() can decode
// without knowing which entry produced the value.
//   bits  0..15  BtOutput::p        (ports in these families are <= 4)
//   bits 16..17  BtOutput::beta
//   bits 18..19  ThcColor
//   bit  20      HybridOutput::is_bt

int encode_color(Color c) { return static_cast<int>(c); }
Color decode_color(int e) { return static_cast<Color>(e & 1); }

int encode_bt(BtOutput o) {
  return (static_cast<int>(o.beta) << 16) | static_cast<int>(o.p & 0xffff);
}
BtOutput decode_bt(int e) {
  return {static_cast<Balance>((e >> 16) & 0x3), static_cast<Port>(e & 0xffff)};
}

int encode_thc(ThcColor c) { return static_cast<int>(c) << 18; }
ThcColor decode_thc(int e) { return static_cast<ThcColor>((e >> 18) & 0x3); }

int encode_hybrid(HybridOutput o) {
  return o.is_bt ? ((1 << 20) | encode_bt(o.bt)) : encode_thc(o.thc);
}
HybridOutput decode_hybrid(int e) {
  if ((e >> 20) & 1) return HybridOutput::balanced(decode_bt(e));
  return HybridOutput::symbol(decode_thc(e));
}

// --- mutation plumbing ------------------------------------------------------
//
// Which LabelUpdate channels each labeling carries, and how an in-domain
// value for a channel is drawn.  propose_mutation keeps every draw inside
// the claim domains the family's solver and verifier are specified for: port
// claims range over [0, Δ] (0 = ⊥; dangling claims are ordinary
// inconsistencies), color/side are bits, and level values are sampled from
// the levels already present in the instance.

std::span<const LabelChannel> mutable_channels(const ColoredTreeLabeling&) {
  static constexpr LabelChannel k[] = {LabelChannel::Parent, LabelChannel::Left,
                                       LabelChannel::Right, LabelChannel::InColor};
  return k;
}
std::span<const LabelChannel> mutable_channels(const BalancedTreeLabeling&) {
  static constexpr LabelChannel k[] = {LabelChannel::Parent, LabelChannel::Left,
                                       LabelChannel::Right, LabelChannel::LeftNbr,
                                       LabelChannel::RightNbr};
  return k;
}
std::span<const LabelChannel> mutable_channels(const HybridLabeling&) {
  static constexpr LabelChannel k[] = {
      LabelChannel::Parent,  LabelChannel::Left,     LabelChannel::Right,
      LabelChannel::InColor, LabelChannel::LeftNbr,  LabelChannel::RightNbr,
      LabelChannel::Level};
  return k;
}
std::span<const LabelChannel> mutable_channels(const HHLabeling&) {
  static constexpr LabelChannel k[] = {
      LabelChannel::Parent,  LabelChannel::Left,     LabelChannel::Right,
      LabelChannel::InColor, LabelChannel::LeftNbr,  LabelChannel::RightNbr,
      LabelChannel::Level,   LabelChannel::Side};
  return k;
}

int channel_value(const ColoredTreeLabeling&, LabelChannel c, GraphView g,
                  std::uint64_t h) {
  if (c == LabelChannel::InColor) return static_cast<int>(h & 1);
  return static_cast<int>(h % static_cast<std::uint64_t>(g.max_degree() + 1));
}
int channel_value(const BalancedTreeLabeling&, LabelChannel, GraphView g,
                  std::uint64_t h) {
  return static_cast<int>(h % static_cast<std::uint64_t>(g.max_degree() + 1));
}
int channel_value(const HybridLabeling& l, LabelChannel c, GraphView g,
                  std::uint64_t h) {
  if (c == LabelChannel::InColor) return static_cast<int>(h & 1);
  if (c == LabelChannel::Level) {
    return l.level_in[static_cast<std::size_t>(h % l.level_in.size())];
  }
  return static_cast<int>(h % static_cast<std::uint64_t>(g.max_degree() + 1));
}
int channel_value(const HHLabeling& l, LabelChannel c, GraphView g, std::uint64_t h) {
  if (c == LabelChannel::Side) return static_cast<int>(h & 1);
  return channel_value(l.hybrid, c, g, h);
}

// Deterministic in-domain batch for fuzzing / load generation.  Rewired
// leaves are pairwise non-adjacent (so each is still degree-1 at its turn in
// the sequential application) and reattachment targets avoid the chosen leaf
// set (so no chosen leaf gains degree before its turn).
template <typename Labels>
MutationBatch propose_batch(const Instance<Labels>& inst, std::uint64_t seed,
                            int rewires, int label_updates) {
  MutationBatch batch;
  const GraphView g = inst.graph.view();
  const NodeIndex n = g.node_count();
  if (n < 2) return batch;

  if (rewires > 0) {
    std::vector<NodeIndex> leaves;
    for (NodeIndex v = 0; v < n; ++v) {
      if (g.degree(v) == 1) leaves.push_back(v);
    }
    std::vector<char> blocked(static_cast<std::size_t>(n), 0);
    std::vector<char> chosen(static_cast<std::size_t>(n), 0);
    std::vector<NodeIndex> picked;
    for (int i = 0; i < rewires * 4 && static_cast<int>(picked.size()) < rewires &&
                    !leaves.empty();
         ++i) {
      const std::uint64_t h = mix64(seed, 0x6c656166ull, static_cast<std::uint64_t>(i));
      const NodeIndex leaf = leaves[h % leaves.size()];
      const NodeIndex parent = g.neighbor(leaf, 1);
      if (blocked[static_cast<std::size_t>(leaf)] ||
          blocked[static_cast<std::size_t>(parent)]) {
        continue;
      }
      blocked[static_cast<std::size_t>(leaf)] = 1;
      blocked[static_cast<std::size_t>(parent)] = 1;
      chosen[static_cast<std::size_t>(leaf)] = 1;
      picked.push_back(leaf);
    }
    for (std::size_t i = 0; i < picked.size(); ++i) {
      const NodeIndex leaf = picked[i];
      const std::uint64_t h = mix64(seed, 0x74677464ull, static_cast<std::uint64_t>(i));
      NodeIndex target = static_cast<NodeIndex>(h % static_cast<std::uint64_t>(n));
      while (target == leaf || chosen[static_cast<std::size_t>(target)]) {
        target = (target + 1) % n;
      }
      batch.rewires.push_back({leaf, target});
    }
  }

  for (int i = 0; i < label_updates; ++i) {
    const std::uint64_t h0 = mix64(seed, 0x6c61626cull, static_cast<std::uint64_t>(i));
    const std::uint64_t h1 = mix64(seed, 0x6368616eull, static_cast<std::uint64_t>(i));
    const std::uint64_t h2 = mix64(seed, 0x76616c75ull, static_cast<std::uint64_t>(i));
    const auto channels = mutable_channels(inst.labels);
    LabelUpdate u;
    u.node = static_cast<NodeIndex>(h0 % static_cast<std::uint64_t>(n));
    u.channel = channels[h1 % channels.size()];
    u.value = channel_value(inst.labels, u.channel, g, h2);
    batch.label_updates.push_back(u);
  }
  return batch;
}

// --- erasure plumbing -------------------------------------------------------

// Owns the instance and the problem built over it.  The problem is
// constructed *after* the instance has landed at its final address (several
// problem constructors snapshot a Hierarchy over the instance's graph).
// `keep` is an opaque retainer destroyed *after* the instance — snapshot
// loads park the file mapping here, so adopted CSR views stay valid for the
// instance's whole lifetime.
template <typename Labels, typename Problem>
struct Held {
  std::shared_ptr<const void> keep;  // declared first => destroyed last
  Instance<Labels> inst;
  Problem problem;

  template <typename MakeProblem>
  Held(Instance<Labels>&& i, MakeProblem make_problem,
       std::shared_ptr<const void> keep_alive = nullptr)
      : keep(std::move(keep_alive)), inst(std::move(i)), problem(make_problem(inst)) {}
};

// Builds the Impl from a held instance+problem, a generic solver functor
// (callable on an InstanceSource over either execution type, returning the
// problem's per-node output value), and an encode/decode pair.  This is the
// single wiring point shared by the generator path (registry entries) and
// the deserialization paths (erase_instance / load_snapshot_instance), so a
// loaded instance gets exactly the closures a generated one gets.
template <typename Labels, typename Problem, typename Solve, typename Encode,
          typename Decode>
ErasedInstance erase(std::string family, std::shared_ptr<Held<Labels, Problem>> held,
                     Solve solve, Encode enc, Decode dec) {
  typename ErasedInstance::Impl impl;
  impl.family = family;
  impl.graph = held->inst.graph;
  impl.ids = &held->inst.ids;
  impl.solve = [held, solve, enc](Execution& exec) {
    InstanceSource<Labels, Execution> src(held->inst, exec);
    return enc(solve(src));
  };
  impl.solve_traced = [held, solve, enc](obs::TracedExecution& exec) {
    InstanceSource<Labels, obs::TracedExecution> src(held->inst, exec);
    return enc(solve(src));
  };
  impl.verify = [held, dec](const std::vector<int>& encoded) {
    typename Problem::Output out;
    out.reserve(encoded.size());
    for (const int e : encoded) out.push_back(dec(e));
    return verify_all(held->problem, held->inst, out);
  };
  impl.save_snapshot = [held, family](const std::string& path) {
    io::write_snapshot(path, family, held->inst);
  };
  if constexpr (requires(std::ostream& os, const Instance<Labels>& i) {
                  io::write_instance(os, i);
                }) {
    impl.save_text = [held](std::ostream& os) { io::write_instance(os, held->inst); };
  }
  // Dynamic-graph hooks.  Each returned instance re-enters erase_instance, so
  // a mutation of a mutation is wired exactly like the original — and the new
  // Held owns fresh graph/ids/labels with no retainer chained to the old one
  // (repeated mutations must not accumulate dead generations).
  impl.mutate = [held, family](const MutationBatch& batch,
                               std::vector<NodeIndex>* touched) {
    AppliedMutation applied = apply_mutation(held->inst.graph.view(), batch);
    Instance<Labels> next;
    next.graph = std::move(applied.graph);
    const auto ids = held->inst.ids.span();
    next.ids = IdAssignment(std::vector<NodeId>(ids.begin(), ids.end()));
    next.labels = held->inst.labels;
    apply_label_updates(next.labels, batch);
    if (touched != nullptr) *touched = std::move(applied.touched);
    return erase_instance(family, std::move(next));
  };
  impl.mutate_naive = [held, family](const MutationBatch& batch) {
    Instance<Labels> next;
    next.graph = apply_mutation_naive(held->inst.graph.view(), batch);
    const auto ids = held->inst.ids.span();
    next.ids = IdAssignment(std::vector<NodeId>(ids.begin(), ids.end()));
    next.labels = held->inst.labels;
    apply_label_updates(next.labels, batch);
    return erase_instance(family, std::move(next));
  };
  impl.propose_mutation = [held](std::uint64_t seed, int rewires, int label_updates) {
    return propose_batch(held->inst, seed, rewires, label_updates);
  };
  impl.held = std::move(held);
  return ErasedInstance(std::move(impl));
}

// --- n_target -> family parameter maps --------------------------------------

int tree_depth_for(NodeIndex n_target) {
  // Complete binary tree of depth d has 2^{d+1} - 1 nodes.  The cap bounds
  // single-instance RAM/disk (depth 26 = 2^27-1 nodes ~ a 6.4 GB snapshot),
  // comfortably past the extended out-of-core sweeps.
  int depth = 1;
  while (depth < 27 && ((NodeIndex{1} << (depth + 2)) - 1) <= n_target) ++depth;
  return depth;
}

NodeIndex backbone_for(int k, NodeIndex n_target) {
  // make_hierarchical_instance(k, b) has ~b^k nodes.
  const double b = std::pow(static_cast<double>(std::max<NodeIndex>(n_target, 8)),
                            1.0 / static_cast<double>(k));
  return std::max<NodeIndex>(3, static_cast<NodeIndex>(std::llround(b)));
}

// --- per-family wiring ------------------------------------------------------
//
// One function per registry family, taking an already built typed instance.
// Generators, the text reader, and the snapshot loader all funnel through
// these, so every path yields identically wired ErasedInstances.

[[noreturn]] void unknown_family(std::string_view family, const char* labels) {
  throw std::invalid_argument("erase_instance: family '" + std::string(family) +
                              "' is unknown or does not use " + labels + " labels");
}

ErasedInstance erase_colored_tree(std::string_view family, LeafColoringInstance&& inst,
                                  std::shared_ptr<const void> keep) {
  if (family == "leaf-coloring") {
    auto held = std::make_shared<Held<ColoredTreeLabeling, LeafColoringProblem>>(
        std::move(inst), [](const auto&) { return LeafColoringProblem{}; },
        std::move(keep));
    return erase("leaf-coloring", std::move(held),
                 [](auto& src) { return leafcoloring_nearest_leaf(src); }, encode_color,
                 decode_color);
  }
  if (family == "ball-4") {
    auto held = std::make_shared<Held<ColoredTreeLabeling, BallCensusProblem>>(
        std::move(inst), [](const auto&) { return BallCensusProblem(4); },
        std::move(keep));
    // Output is the ball size itself.  Identity encoding: counts are
    // family-local (enc/dec pairs never cross entries), so the packed bit
    // layout above does not apply.
    return erase(
        "ball-4", std::move(held),
        [](auto& src) {
          return static_cast<int>(explore_ball(src.execution(), 4).size());
        },
        [](int size) { return size; }, [](int e) { return e; });
  }
  if (family == "hthc-2" || family == "hthc-3") {
    const int k = family.back() - '0';
    auto held = std::make_shared<Held<ColoredTreeLabeling, HierarchicalTHCProblem>>(
        std::move(inst),
        [k](const auto& i) { return HierarchicalTHCProblem(i, k); }, std::move(keep));
    const HthcConfig cfg = HthcConfig::make(k, held->inst.node_count(), false, nullptr);
    return erase(
        std::string(family), std::move(held),
        [cfg](auto& src) {
          HthcSolver<std::decay_t<decltype(src)>> solver(src, cfg);
          return solver.solve();
        },
        encode_thc, decode_thc);
  }
  unknown_family(family, "colored-tree");
}

}  // namespace

ErasedInstance erase_instance(std::string_view family, LeafColoringInstance&& inst,
                              std::shared_ptr<const void> keep_alive) {
  return erase_colored_tree(family, std::move(inst), std::move(keep_alive));
}

ErasedInstance erase_instance(std::string_view family, BalancedTreeInstance&& inst,
                              std::shared_ptr<const void> keep_alive) {
  if (family != "balanced-tree") unknown_family(family, "balanced-tree");
  auto held = std::make_shared<Held<BalancedTreeLabeling, BalancedTreeProblem>>(
      std::move(inst), [](const auto&) { return BalancedTreeProblem{}; },
      std::move(keep_alive));
  return erase("balanced-tree", std::move(held),
               [](auto& src) { return balancedtree_solve(src); }, encode_bt, decode_bt);
}

ErasedInstance erase_instance(std::string_view family, HybridInstance&& inst,
                              std::shared_ptr<const void> keep_alive) {
  if (family != "hybrid-2") unknown_family(family, "hybrid");
  auto held = std::make_shared<Held<HybridLabeling, HybridTHCProblem>>(
      std::move(inst), [](const auto& i) { return HybridTHCProblem(i, 2); },
      std::move(keep_alive));
  const HybridConfig cfg = HybridConfig::make(2, held->inst.node_count());
  return erase("hybrid-2", std::move(held),
               [cfg](auto& src) { return hybrid_solve_distance(src, cfg); },
               encode_hybrid, decode_hybrid);
}

ErasedInstance erase_instance(std::string_view family, HHInstance&& inst,
                              std::shared_ptr<const void> keep_alive) {
  if (family != "hh-2-3") unknown_family(family, "hh");
  auto held = std::make_shared<Held<HHLabeling, HHTHCProblem>>(
      std::move(inst), [](const auto& i) { return HHTHCProblem(i, 2, 3); },
      std::move(keep_alive));
  const HHConfig cfg = HHConfig::make(2, 3, held->inst.node_count());
  return erase("hh-2-3", std::move(held),
               [cfg](auto& src) { return hh_solve_distance(src, cfg); }, encode_hybrid,
               decode_hybrid);
}

ErasedInstance load_snapshot_instance(io::Snapshot&& snap) {
  const NodeIndex n = snap.node_count();
  const std::string family = snap.family();
  std::shared_ptr<const void> keep = snap.mapping();

  // Graph + IDs stay zero-copy views into the mapping (kept alive through
  // the erased instance's retainer); label tables are small O(n) arrays and
  // are decoded into the typed labeling vectors.
  auto assign_ports = [&snap](std::vector<Port>& dst, const char* tag) {
    const auto s = snap.ports(tag);
    dst.assign(s.begin(), s.end());
  };
  auto assign_tree = [&](TreeLabeling& t) {
    assign_ports(t.parent, "parent");
    assign_ports(t.left, "left");
    assign_ports(t.right, "right");
  };
  auto assign_colors = [&snap](std::vector<Color>& dst) {
    const auto s = snap.bytes("color");
    dst.resize(s.size());
    std::memcpy(dst.data(), s.data(), s.size());
  };
  auto base = [&](auto& inst) {
    inst.graph = Graph::adopt(snap.graph());
    inst.ids = IdAssignment::adopt(snap.ids().data(), n);
  };

  // The labeling shape is determined by which label sections are present —
  // erase_instance then cross-checks it against what `family` expects.
  if (snap.has_section("side")) {
    HHInstance inst;
    base(inst);
    assign_tree(inst.labels.hybrid.bal.tree);
    assign_ports(inst.labels.hybrid.bal.left_nbr, "leftnbr");
    assign_ports(inst.labels.hybrid.bal.right_nbr, "rightnbr");
    assign_colors(inst.labels.hybrid.color);
    assign_ports(inst.labels.hybrid.level_in, "levelin");
    const auto side = snap.bytes("side");
    inst.labels.side.assign(side.begin(), side.end());
    return erase_instance(family, std::move(inst), std::move(keep));
  }
  if (snap.has_section("levelin")) {
    HybridInstance inst;
    base(inst);
    assign_tree(inst.labels.bal.tree);
    assign_ports(inst.labels.bal.left_nbr, "leftnbr");
    assign_ports(inst.labels.bal.right_nbr, "rightnbr");
    assign_colors(inst.labels.color);
    assign_ports(inst.labels.level_in, "levelin");
    return erase_instance(family, std::move(inst), std::move(keep));
  }
  if (snap.has_section("leftnbr")) {
    BalancedTreeInstance inst;
    base(inst);
    assign_tree(inst.labels.tree);
    assign_ports(inst.labels.left_nbr, "leftnbr");
    assign_ports(inst.labels.right_nbr, "rightnbr");
    return erase_instance(family, std::move(inst), std::move(keep));
  }
  LeafColoringInstance inst;
  base(inst);
  assign_tree(inst.labels.tree);
  assign_colors(inst.labels.color);
  return erase_instance(family, std::move(inst), std::move(keep));
}

const ProblemRegistry& ProblemRegistry::global() {
  static const ProblemRegistry registry;
  return registry;
}

const RegistryEntry* ProblemRegistry::find(std::string_view name) const {
  for (const RegistryEntry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::vector<const RegistryEntry*> ProblemRegistry::match(std::string_view filter) const {
  std::vector<const RegistryEntry*> out;
  for (const RegistryEntry& e : entries_) {
    if (filter.empty() || e.name.find(filter) != std::string::npos) out.push_back(&e);
  }
  return out;
}

ProblemRegistry::ProblemRegistry() {
  // All registered algorithms are the paper's *deterministic* upper bounds:
  // registry solves must be reproducible from (entry, n_target, seed, start)
  // alone so recorded traces replay bit-identically (tests/obs_test.cpp).
  // The randomized variants (RWtoLeaf, way-points) stay bench-only, where the
  // tape is threaded explicitly.
  //
  // Every entry is registered through its make_variant; make is derived as
  // variant 0, so the canonical shapes are unchanged.  Each non-canonical
  // variant reuses a generator whose solver/verifier compatibility is pinned
  // by that family's unit tests.  Solver/verifier wiring lives in the
  // erase_instance overloads above, shared with the snapshot/text loaders.
  auto add = [this](RegistryEntry e) {
    auto mv = e.make_variant;
    e.make = [mv](NodeIndex n_target, std::uint64_t seed) { return mv(n_target, seed, 0); };
    entries_.push_back(std::move(e));
  };

  // The colored-tree instance shapes shared by leaf-coloring and ball-4.
  auto colored_tree_variant = [](NodeIndex n_target, std::uint64_t seed,
                                 int variant) -> LeafColoringInstance {
    switch (variant) {
      case 1:
        return make_random_full_binary_tree(std::max<NodeIndex>(n_target, 3), seed);
      case 2:
        return make_caterpillar(std::max<NodeIndex>(n_target / 2, 2), seed);
      case 3:
        // ~16 nodes per cycle node at hang_depth 3.
        return make_cycle_pseudotree(
            static_cast<int>(std::max<NodeIndex>(n_target / 16, 3)), 3, seed);
      default:
        return make_complete_binary_tree(tree_depth_for(n_target), Color::Red,
                                         Color::Blue);
    }
  };

  {
    RegistryEntry e;
    e.name = "leaf-coloring";
    e.title = "LeafColoring (Def. 3.4)";
    e.theta = "R-DIST = D-DIST Th(log n), R-VOL Th(log n), D-VOL Th(n)";
    e.algorithm = "deterministic nearest-leaf (Prop. 3.9)";
    e.variants = 4;  // complete / random full / caterpillar / cycle pseudotree
    e.make_variant = [colored_tree_variant](NodeIndex n_target, std::uint64_t seed,
                                            int variant) {
      return erase_instance("leaf-coloring", colored_tree_variant(n_target, seed, variant));
    };
    add(std::move(e));
  }

  {
    RegistryEntry e;
    e.name = "balanced-tree";
    e.title = "BalancedTree (Def. 4.3)";
    e.theta = "R-DIST = D-DIST Th(log n), R-VOL = D-VOL Th(n)";
    e.algorithm = "exhaustive compatibility search (Prop. 4.8)";
    e.variants = 2;  // globally compatible / pruned-subtree defect (Lemma 4.6)
    e.make_variant = [](NodeIndex n_target, std::uint64_t seed, int variant) {
      auto built = [&]() -> BalancedTreeInstance {
        if (variant == 1) {
          const int depth = std::max(2, tree_depth_for(n_target));
          return make_unbalanced_instance(depth, std::max(1, depth - 2), seed);
        }
        return make_balanced_instance(tree_depth_for(n_target));
      }();
      return erase_instance("balanced-tree", std::move(built));
    };
    add(std::move(e));
  }

  {
    RegistryEntry e;
    e.name = "ball-4";
    e.title = "BallCensus(4) (query-model pin)";
    e.theta = "R-DIST = D-DIST Th(1), R-VOL = D-VOL Th(1)";
    e.algorithm = "bare explore_ball(v, 4); verifier recomputes N_v(4) offline";
    // The solver *is* explore_ball(v, 4) with the ball size as output — the
    // BatchedBall contract verbatim, so sweeps of this family batch.
    e.plan = ProbePlan::batched_ball(4);
    e.variants = 4;  // same instance shapes as leaf-coloring
    e.make_variant = [colored_tree_variant](NodeIndex n_target, std::uint64_t seed,
                                            int variant) {
      return erase_instance("ball-4", colored_tree_variant(n_target, seed, variant));
    };
    add(std::move(e));
  }

  for (const int k : {2, 3}) {
    RegistryEntry e;
    e.name = "hthc-" + std::to_string(k);
    e.title = "Hierarchical-THC(" + std::to_string(k) + ") (Def. 5.8)";
    e.theta = "R-DIST = D-DIST Th(n^{1/" + std::to_string(k) + "}), R-VOL Th~(n^{1/" +
              std::to_string(k) + "}), D-VOL Th~(n)";
    e.algorithm = "RecursiveHTHC (Alg. 2, Prop. 5.12)";
    e.variants = 3;  // uniform backbones / per-level lens mix / top-cycle (Obs. 5.4)
    const std::string name = e.name;
    e.make_variant = [k, name](NodeIndex n_target, std::uint64_t seed, int variant) {
      auto built = [&]() -> HierarchicalInstance {
        const NodeIndex b = backbone_for(k, n_target);
        switch (variant) {
          case 1: {
            // Deep and shallow backbones mixed, lens[l] in [2, 3b/2].
            std::vector<NodeIndex> lens(static_cast<std::size_t>(k));
            for (int l = 0; l < k; ++l) {
              const std::uint64_t h = mix64(seed, 0x6c656e73ull, static_cast<std::uint64_t>(l));
              lens[static_cast<std::size_t>(l)] =
                  std::max<NodeIndex>(2, b / 2 + static_cast<NodeIndex>(h % (b + 1)));
            }
            return make_hierarchical_instance_lens(lens, seed);
          }
          case 2:
            return make_hierarchical_cycle_instance(k, std::max<NodeIndex>(3, b),
                                                    std::max<NodeIndex>(2, b / 2), seed);
          default:
            return make_hierarchical_instance(k, b, seed);
        }
      }();
      return erase_instance(name, std::move(built));
    };
    add(std::move(e));
  }

  {
    RegistryEntry e;
    e.name = "hybrid-2";
    e.title = "Hybrid-THC(2) (Def. 6.1)";
    e.theta = "R-DIST = D-DIST Th(log n), R-VOL Th~(n^{1/2}), D-VOL Th~(n)";
    e.algorithm = "hybrid distance solver (Thm 6.3)";
    e.variants = 2;  // canonical aspect / squat floors (longer relative backbone)
    e.make_variant = [](NodeIndex n_target, std::uint64_t seed, int variant) {
      // n ~ 2 b^2 for backbone length b and floor depth log2(b).
      const NodeIndex b = std::max<NodeIndex>(
          4, static_cast<NodeIndex>(
                 std::llround(std::sqrt(static_cast<double>(n_target) / 2.0))));
      int d = std::max(2, static_cast<int>(std::floor(std::log2(static_cast<double>(b)))));
      NodeIndex backbone = b;
      if (variant == 1) {
        d = std::max(2, d - 1);       // shallower BalancedTree floors...
        backbone = b + b / 2;         // ...under a relatively longer backbone
      }
      return erase_instance("hybrid-2", make_hybrid_instance(2, backbone, d, seed));
    };
    add(std::move(e));
  }

  {
    RegistryEntry e;
    e.name = "hh-2-3";
    e.title = "HH-THC(2,3) (Def. 6.4)";
    e.theta = "R-DIST = D-DIST Th(n^{1/3}), R-VOL Th~(n^{1/2}), D-VOL Th~(n)";
    e.algorithm = "HH distance solver (Thm 6.5)";
    e.variants = 2;  // even split / skewed split between the two sides
    e.make_variant = [](NodeIndex n_target, std::uint64_t seed, int variant) {
      const NodeIndex n_half = variant == 1 ? std::max<NodeIndex>(n_target / 4, 48)
                                            : std::max<NodeIndex>(n_target / 2, 64);
      return erase_instance("hh-2-3", make_hh_instance(2, 3, n_half, seed));
    };
    add(std::move(e));
  }
}

}  // namespace volcal
