#include "lcl/registry.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "labels/generators.hpp"
#include "lcl/algorithms/balanced_tree_algos.hpp"
#include "lcl/algorithms/hh_algos.hpp"
#include "lcl/algorithms/hthc_algos.hpp"
#include "lcl/algorithms/hybrid_algos.hpp"
#include "lcl/algorithms/leaf_coloring_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "lcl/problems/balanced_tree.hpp"
#include "lcl/problems/ball_census.hpp"
#include "lcl/problems/hh_thc.hpp"
#include "lcl/problems/hierarchical_thc.hpp"
#include "lcl/problems/hybrid_thc.hpp"
#include "lcl/problems/leaf_coloring.hpp"
#include "util/hash.hpp"

namespace volcal {
namespace {

// --- int erasure of the per-family output alphabets -------------------------
//
// Every output alphabet here is finite (Def. 2.6) apart from the port in
// BtOutput, which is bounded by the maximum degree; the layouts below pack
// each alphabet into disjoint bit ranges of one int so verify() can decode
// without knowing which entry produced the value.
//   bits  0..15  BtOutput::p        (ports in these families are <= 4)
//   bits 16..17  BtOutput::beta
//   bits 18..19  ThcColor
//   bit  20      HybridOutput::is_bt

int encode_color(Color c) { return static_cast<int>(c); }
Color decode_color(int e) { return static_cast<Color>(e & 1); }

int encode_bt(BtOutput o) {
  return (static_cast<int>(o.beta) << 16) | static_cast<int>(o.p & 0xffff);
}
BtOutput decode_bt(int e) {
  return {static_cast<Balance>((e >> 16) & 0x3), static_cast<Port>(e & 0xffff)};
}

int encode_thc(ThcColor c) { return static_cast<int>(c) << 18; }
ThcColor decode_thc(int e) { return static_cast<ThcColor>((e >> 18) & 0x3); }

int encode_hybrid(HybridOutput o) {
  return o.is_bt ? ((1 << 20) | encode_bt(o.bt)) : encode_thc(o.thc);
}
HybridOutput decode_hybrid(int e) {
  if ((e >> 20) & 1) return HybridOutput::balanced(decode_bt(e));
  return HybridOutput::symbol(decode_thc(e));
}

// --- erasure plumbing -------------------------------------------------------

// Owns the instance and the problem built over it.  The problem is
// constructed *after* the instance has landed at its final address (several
// problem constructors snapshot a Hierarchy over the instance's graph).
template <typename Labels, typename Problem>
struct Held {
  Instance<Labels> inst;
  Problem problem;

  template <typename MakeProblem>
  Held(Instance<Labels>&& i, MakeProblem make_problem)
      : inst(std::move(i)), problem(make_problem(inst)) {}
};

// Builds the Impl from a held instance+problem, a generic solver functor
// (callable on an InstanceSource over either execution type, returning the
// problem's per-node output value), and an encode/decode pair.
template <typename Labels, typename Problem, typename Solve, typename Encode,
          typename Decode>
ErasedInstance erase(std::shared_ptr<Held<Labels, Problem>> held, Solve solve, Encode enc,
                     Decode dec) {
  typename ErasedInstance::Impl impl;
  impl.graph = &held->inst.graph;
  impl.ids = &held->inst.ids;
  impl.solve = [held, solve, enc](Execution& exec) {
    InstanceSource<Labels, Execution> src(held->inst, exec);
    return enc(solve(src));
  };
  impl.solve_traced = [held, solve, enc](obs::TracedExecution& exec) {
    InstanceSource<Labels, obs::TracedExecution> src(held->inst, exec);
    return enc(solve(src));
  };
  impl.verify = [held, dec](const std::vector<int>& encoded) {
    typename Problem::Output out;
    out.reserve(encoded.size());
    for (const int e : encoded) out.push_back(dec(e));
    return verify_all(held->problem, held->inst, out);
  };
  impl.held = std::move(held);
  return ErasedInstance(std::move(impl));
}

// --- n_target -> family parameter maps --------------------------------------

int tree_depth_for(NodeIndex n_target) {
  // Complete binary tree of depth d has 2^{d+1} - 1 nodes.
  int depth = 1;
  while (depth < 24 && ((NodeIndex{1} << (depth + 2)) - 1) <= n_target) ++depth;
  return depth;
}

NodeIndex backbone_for(int k, NodeIndex n_target) {
  // make_hierarchical_instance(k, b) has ~b^k nodes.
  const double b = std::pow(static_cast<double>(std::max<NodeIndex>(n_target, 8)),
                            1.0 / static_cast<double>(k));
  return std::max<NodeIndex>(3, static_cast<NodeIndex>(std::llround(b)));
}

}  // namespace

const ProblemRegistry& ProblemRegistry::global() {
  static const ProblemRegistry registry;
  return registry;
}

const RegistryEntry* ProblemRegistry::find(std::string_view name) const {
  for (const RegistryEntry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::vector<const RegistryEntry*> ProblemRegistry::match(std::string_view filter) const {
  std::vector<const RegistryEntry*> out;
  for (const RegistryEntry& e : entries_) {
    if (filter.empty() || e.name.find(filter) != std::string::npos) out.push_back(&e);
  }
  return out;
}

ProblemRegistry::ProblemRegistry() {
  // All registered algorithms are the paper's *deterministic* upper bounds:
  // registry solves must be reproducible from (entry, n_target, seed, start)
  // alone so recorded traces replay bit-identically (tests/obs_test.cpp).
  // The randomized variants (RWtoLeaf, way-points) stay bench-only, where the
  // tape is threaded explicitly.
  //
  // Every entry is registered through its make_variant; make is derived as
  // variant 0, so the canonical shapes are unchanged.  Each non-canonical
  // variant reuses a generator whose solver/verifier compatibility is pinned
  // by that family's unit tests.
  auto add = [this](RegistryEntry e) {
    auto mv = e.make_variant;
    e.make = [mv](NodeIndex n_target, std::uint64_t seed) { return mv(n_target, seed, 0); };
    entries_.push_back(std::move(e));
  };

  {
    RegistryEntry e;
    e.name = "leaf-coloring";
    e.title = "LeafColoring (Def. 3.4)";
    e.theta = "R-DIST = D-DIST Th(log n), R-VOL Th(log n), D-VOL Th(n)";
    e.algorithm = "deterministic nearest-leaf (Prop. 3.9)";
    e.variants = 4;  // complete / random full / caterpillar / cycle pseudotree
    e.make_variant = [](NodeIndex n_target, std::uint64_t seed, int variant) {
      auto built = [&]() -> LeafColoringInstance {
        switch (variant) {
          case 1:
            return make_random_full_binary_tree(std::max<NodeIndex>(n_target, 3), seed);
          case 2:
            return make_caterpillar(std::max<NodeIndex>(n_target / 2, 2), seed);
          case 3:
            // ~16 nodes per cycle node at hang_depth 3.
            return make_cycle_pseudotree(
                static_cast<int>(std::max<NodeIndex>(n_target / 16, 3)), 3, seed);
          default:
            return make_complete_binary_tree(tree_depth_for(n_target), Color::Red,
                                             Color::Blue);
        }
      }();
      auto held = std::make_shared<Held<ColoredTreeLabeling, LeafColoringProblem>>(
          std::move(built), [](const auto&) { return LeafColoringProblem{}; });
      return erase(std::move(held),
                   [](auto& src) { return leafcoloring_nearest_leaf(src); },
                   encode_color, decode_color);
    };
    add(std::move(e));
  }

  {
    RegistryEntry e;
    e.name = "balanced-tree";
    e.title = "BalancedTree (Def. 4.3)";
    e.theta = "R-DIST = D-DIST Th(log n), R-VOL = D-VOL Th(n)";
    e.algorithm = "exhaustive compatibility search (Prop. 4.8)";
    e.variants = 2;  // globally compatible / pruned-subtree defect (Lemma 4.6)
    e.make_variant = [](NodeIndex n_target, std::uint64_t seed, int variant) {
      auto built = [&]() -> BalancedTreeInstance {
        if (variant == 1) {
          const int depth = std::max(2, tree_depth_for(n_target));
          return make_unbalanced_instance(depth, std::max(1, depth - 2), seed);
        }
        return make_balanced_instance(tree_depth_for(n_target));
      }();
      auto held = std::make_shared<Held<BalancedTreeLabeling, BalancedTreeProblem>>(
          std::move(built), [](const auto&) { return BalancedTreeProblem{}; });
      return erase(std::move(held), [](auto& src) { return balancedtree_solve(src); },
                   encode_bt, decode_bt);
    };
    add(std::move(e));
  }

  {
    RegistryEntry e;
    e.name = "ball-4";
    e.title = "BallCensus(4) (query-model pin)";
    e.theta = "R-DIST = D-DIST Th(1), R-VOL = D-VOL Th(1)";
    e.algorithm = "bare explore_ball(v, 4); verifier recomputes N_v(4) offline";
    // The solver *is* explore_ball(v, 4) with the ball size as output — the
    // BatchedBall contract verbatim, so sweeps of this family batch.
    e.plan = ProbePlan::batched_ball(4);
    e.variants = 4;  // same instance shapes as leaf-coloring
    e.make_variant = [](NodeIndex n_target, std::uint64_t seed, int variant) {
      auto built = [&]() -> LeafColoringInstance {
        switch (variant) {
          case 1:
            return make_random_full_binary_tree(std::max<NodeIndex>(n_target, 3), seed);
          case 2:
            return make_caterpillar(std::max<NodeIndex>(n_target / 2, 2), seed);
          case 3:
            return make_cycle_pseudotree(
                static_cast<int>(std::max<NodeIndex>(n_target / 16, 3)), 3, seed);
          default:
            return make_complete_binary_tree(tree_depth_for(n_target), Color::Red,
                                             Color::Blue);
        }
      }();
      auto held = std::make_shared<Held<ColoredTreeLabeling, BallCensusProblem>>(
          std::move(built), [](const auto&) { return BallCensusProblem(4); });
      // Output is the ball size itself.  Identity encoding: counts are
      // family-local (enc/dec pairs never cross entries), so the packed bit
      // layout above does not apply.
      return erase(
          std::move(held),
          [](auto& src) {
            return static_cast<int>(explore_ball(src.execution(), 4).size());
          },
          [](int size) { return size; }, [](int e) { return e; });
    };
    add(std::move(e));
  }

  for (const int k : {2, 3}) {
    RegistryEntry e;
    e.name = "hthc-" + std::to_string(k);
    e.title = "Hierarchical-THC(" + std::to_string(k) + ") (Def. 5.8)";
    e.theta = "R-DIST = D-DIST Th(n^{1/" + std::to_string(k) + "}), R-VOL Th~(n^{1/" +
              std::to_string(k) + "}), D-VOL Th~(n)";
    e.algorithm = "RecursiveHTHC (Alg. 2, Prop. 5.12)";
    e.variants = 3;  // uniform backbones / per-level lens mix / top-cycle (Obs. 5.4)
    e.make_variant = [k](NodeIndex n_target, std::uint64_t seed, int variant) {
      auto built = [&]() -> HierarchicalInstance {
        const NodeIndex b = backbone_for(k, n_target);
        switch (variant) {
          case 1: {
            // Deep and shallow backbones mixed, lens[l] in [2, 3b/2].
            std::vector<NodeIndex> lens(static_cast<std::size_t>(k));
            for (int l = 0; l < k; ++l) {
              const std::uint64_t h = mix64(seed, 0x6c656e73ull, static_cast<std::uint64_t>(l));
              lens[static_cast<std::size_t>(l)] =
                  std::max<NodeIndex>(2, b / 2 + static_cast<NodeIndex>(h % (b + 1)));
            }
            return make_hierarchical_instance_lens(lens, seed);
          }
          case 2:
            return make_hierarchical_cycle_instance(k, std::max<NodeIndex>(3, b),
                                                    std::max<NodeIndex>(2, b / 2), seed);
          default:
            return make_hierarchical_instance(k, b, seed);
        }
      }();
      auto held = std::make_shared<Held<ColoredTreeLabeling, HierarchicalTHCProblem>>(
          std::move(built), [k](const auto& inst) { return HierarchicalTHCProblem(inst, k); });
      const HthcConfig cfg = HthcConfig::make(k, held->inst.node_count(), false, nullptr);
      return erase(
          std::move(held),
          [cfg](auto& src) {
            HthcSolver<std::decay_t<decltype(src)>> solver(src, cfg);
            return solver.solve();
          },
          encode_thc, decode_thc);
    };
    add(std::move(e));
  }

  {
    RegistryEntry e;
    e.name = "hybrid-2";
    e.title = "Hybrid-THC(2) (Def. 6.1)";
    e.theta = "R-DIST = D-DIST Th(log n), R-VOL Th~(n^{1/2}), D-VOL Th~(n)";
    e.algorithm = "hybrid distance solver (Thm 6.3)";
    e.variants = 2;  // canonical aspect / squat floors (longer relative backbone)
    e.make_variant = [](NodeIndex n_target, std::uint64_t seed, int variant) {
      // n ~ 2 b^2 for backbone length b and floor depth log2(b).
      const NodeIndex b = std::max<NodeIndex>(
          4, static_cast<NodeIndex>(
                 std::llround(std::sqrt(static_cast<double>(n_target) / 2.0))));
      int d = std::max(2, static_cast<int>(std::floor(std::log2(static_cast<double>(b)))));
      NodeIndex backbone = b;
      if (variant == 1) {
        d = std::max(2, d - 1);       // shallower BalancedTree floors...
        backbone = b + b / 2;         // ...under a relatively longer backbone
      }
      auto held = std::make_shared<Held<HybridLabeling, HybridTHCProblem>>(
          make_hybrid_instance(2, backbone, d, seed),
          [](const auto& inst) { return HybridTHCProblem(inst, 2); });
      const HybridConfig cfg = HybridConfig::make(2, held->inst.node_count());
      return erase(std::move(held),
                   [cfg](auto& src) { return hybrid_solve_distance(src, cfg); },
                   encode_hybrid, decode_hybrid);
    };
    add(std::move(e));
  }

  {
    RegistryEntry e;
    e.name = "hh-2-3";
    e.title = "HH-THC(2,3) (Def. 6.4)";
    e.theta = "R-DIST = D-DIST Th(n^{1/3}), R-VOL Th~(n^{1/2}), D-VOL Th~(n)";
    e.algorithm = "HH distance solver (Thm 6.5)";
    e.variants = 2;  // even split / skewed split between the two sides
    e.make_variant = [](NodeIndex n_target, std::uint64_t seed, int variant) {
      const NodeIndex n_half = variant == 1 ? std::max<NodeIndex>(n_target / 4, 48)
                                            : std::max<NodeIndex>(n_target / 2, 64);
      auto held = std::make_shared<Held<HHLabeling, HHTHCProblem>>(
          make_hh_instance(2, 3, n_half, seed),
          [](const auto& inst) { return HHTHCProblem(inst, 2, 3); });
      const HHConfig cfg = HHConfig::make(2, 3, held->inst.node_count());
      return erase(std::move(held),
                   [cfg](auto& src) { return hh_solve_distance(src, cfg); },
                   encode_hybrid, decode_hybrid);
    };
    add(std::move(e));
  }
}

}  // namespace volcal
