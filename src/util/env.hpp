// Strict environment-variable parsing with loud (but one-time) fallback.
//
// Every VOLCAL_* knob used to have its own ad-hoc parser, and each one
// swallowed misconfiguration silently: `VOLCAL_CACHE=sharde` ran uncached,
// `VOLCAL_CACHE_MB=abc` (atoll → 0) kept the default budget, and
// `VOLCAL_THREADS=eight` ran serial — all without a word.  These helpers
// parse strictly (whole string must be consumed, value must be in range) and
// emit exactly one stderr warning per variable per process naming the
// variable, the rejected value, and the fallback actually used.  A valid
// value never warns, and an unset variable is not a misconfiguration.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace volcal::env {

// getenv(name) parsed as a strictly positive integer <= max_value.  Returns
// nullopt (after a one-time warning describing `fallback_desc`) when the
// variable is set but empty, non-numeric, has trailing junk, is <= 0, or
// exceeds max_value; nullopt silently when unset.
std::optional<std::int64_t> positive_int(const char* name, std::int64_t max_value,
                                         const std::string& fallback_desc);

// getenv(name) as a raw string, or nullopt when unset.  Callers that parse
// enumerations combine this with warn_invalid on rejection.
std::optional<std::string> raw(const char* name);

// Records a misconfiguration of `name`: one warning per variable per process,
//   volcal: ignoring NAME="value" (reason); using fallback
// Safe to call from multiple threads; later calls for the same name are
// dropped.
void warn_invalid(const char* name, const std::string& value,
                  const std::string& reason, const std::string& fallback);

// MiB → bytes without overflow: values that would overflow std::size_t are
// clamped to the largest representable whole-MiB budget.
std::size_t mb_to_bytes(std::int64_t mb);

// Number of warnings emitted so far (test hook; counts each variable once).
int warning_count_for_testing();

// Forgets which variables have warned so tests can re-provoke warnings.
void reset_warnings_for_testing();

}  // namespace volcal::env
