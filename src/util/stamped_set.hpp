// Epoch-stamped open-addressing set of NodeIndex with O(1) clear.
//
// Built for hot sweep loops that construct a fresh small visited set per
// start node: clear() bumps the epoch (invalidating every slot at once), so
// steady-state use performs zero allocations and no memset — the same trick
// ExecutionScratch plays for the query engine, here for solver-side
// bookkeeping where keys are sparse and no dense n-slot array is available.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/hash.hpp"

namespace volcal {

class StampedNodeSet {
 public:
  StampedNodeSet() { rehash(64); }

  void clear() {
    ++epoch_;
    size_ = 0;
  }

  // Inserts v; returns true iff it was not yet present.
  bool insert(NodeIndex v) {
    if ((size_ + 1) * 2 > slots_.size()) grow();
    std::size_t i = slot_of(v);
    while (slots_[i].epoch == epoch_) {
      if (slots_[i].key == v) return false;
      i = (i + 1) & mask_;
    }
    slots_[i].epoch = epoch_;
    slots_[i].key = v;
    ++size_;
    return true;
  }

  bool contains(NodeIndex v) const {
    std::size_t i = slot_of(v);
    while (slots_[i].epoch == epoch_) {
      if (slots_[i].key == v) return true;
      i = (i + 1) & mask_;
    }
    return false;
  }

  std::size_t size() const { return size_; }

 private:
  struct Slot {
    std::uint64_t epoch = 0;  // live iff equal to the set's current epoch
    NodeIndex key = 0;
  };

  std::size_t slot_of(NodeIndex v) const {
    return static_cast<std::size_t>(splitmix64(static_cast<std::uint64_t>(v))) & mask_;
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    rehash(old.size() * 2);
    for (const Slot& s : old) {
      if (s.epoch != epoch_) continue;
      std::size_t i = slot_of(s.key);
      while (slots_[i].epoch == epoch_) i = (i + 1) & mask_;
      slots_[i].epoch = epoch_;
      slots_[i].key = s.key;
      ++size_;
    }
  }

  void rehash(std::size_t n) {  // n must be a power of two
    slots_.assign(n, Slot{});
    mask_ = n - 1;
    size_ = 0;
    // Fresh table: any epoch > 0 reads as empty, keep the current one.
    if (epoch_ == 0) epoch_ = 1;
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::uint64_t epoch_ = 1;
};

}  // namespace volcal
