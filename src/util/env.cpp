#include "util/env.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <set>

namespace volcal::env {

namespace {

std::mutex& warn_mu() {
  static std::mutex mu;
  return mu;
}

std::set<std::string>& warned_names() {
  static std::set<std::string> names;
  return names;
}

int warn_count = 0;

}  // namespace

void warn_invalid(const char* name, const std::string& value,
                  const std::string& reason, const std::string& fallback) {
  std::lock_guard lock(warn_mu());
  if (!warned_names().insert(name).second) return;
  ++warn_count;
  std::fprintf(stderr, "volcal: ignoring %s=\"%s\" (%s); using %s\n", name,
               value.c_str(), reason.c_str(), fallback.c_str());
}

std::optional<std::string> raw(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return std::nullopt;
  return std::string(v);
}

std::optional<std::int64_t> positive_int(const char* name, std::int64_t max_value,
                                         const std::string& fallback_desc) {
  const char* v = std::getenv(name);
  if (v == nullptr) return std::nullopt;
  if (*v == '\0') {
    warn_invalid(name, v, "empty value", fallback_desc);
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0') {
    warn_invalid(name, v, "not an integer", fallback_desc);
    return std::nullopt;
  }
  if (errno == ERANGE || parsed > max_value) {
    warn_invalid(name, v, "exceeds maximum " + std::to_string(max_value),
                 fallback_desc);
    return std::nullopt;
  }
  if (parsed <= 0) {
    warn_invalid(name, v, "must be a positive integer", fallback_desc);
    return std::nullopt;
  }
  return parsed;
}

std::size_t mb_to_bytes(std::int64_t mb) {
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  const auto unsigned_mb = static_cast<std::uint64_t>(mb);
  if (unsigned_mb > (kMax >> 20)) return (kMax >> 20) << 20;
  return static_cast<std::size_t>(unsigned_mb) << 20;
}

int warning_count_for_testing() {
  std::lock_guard lock(warn_mu());
  return warn_count;
}

void reset_warnings_for_testing() {
  std::lock_guard lock(warn_mu());
  warned_names().clear();
  warn_count = 0;
}

}  // namespace volcal::env
