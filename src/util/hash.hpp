// Deterministic mixing functions used wherever the library needs reproducible
// pseudorandomness keyed by (seed, node, position): random tapes, shuffled ID
// assignments, random instance generators.  splitmix64-style finalizer.
#pragma once

#include <cstdint>

namespace volcal {

inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

inline std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  return splitmix64(splitmix64(a) ^ (0x9e3779b97f4a7c15ull + b));
}

inline std::uint64_t mix64(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return mix64(mix64(a, b), c);
}

inline std::uint64_t mix64(std::uint64_t a, std::uint64_t b, std::uint64_t c, std::uint64_t d) {
  return mix64(mix64(a, b, c), d);
}

// Uniform double in [0, 1) from a mixed word.
inline double to_unit_double(std::uint64_t word) {
  return static_cast<double>(word >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace volcal
