// Borrowed, trivially-copyable view of a port-numbered CSR graph.
//
// GraphView is the type every engine entry point consumes: it is four words
// (offsets pointer, adjacency pointer, node count, max degree) and carries no
// ownership.  An owning Graph converts to it implicitly, and the mmap-backed
// snapshot loader (io/snapshot.hpp) produces one directly over the file
// mapping — so in-RAM and on-disk instances are indistinguishable to the
// backends.
//
// Lifetime contract: a GraphView borrows storage.  Whoever hands one out
// (Graph, io::Snapshot) must keep the underlying arrays alive and unmodified
// for as long as the view is used.  The engine never stores a view past the
// lifetime of the sweep it was bound for.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace volcal {

using NodeIndex = std::int64_t;
using Port = int;  // 1-based; 0 is reserved for "no port" (the label ⊥)

inline constexpr NodeIndex kNoNode = -1;
inline constexpr Port kNoPort = 0;

// Process-unique identity of one logical graph storage (one Builder::build,
// one Graph::adopt of a fresh mapping, one snapshot load).  Raw pointers are
// NOT identity: munmap/mmap recycles addresses, so a persistent ViewCache
// keyed on a pointer can serve balls from a previous snapshot that happened
// to land at the same address (pointer ABA).  Tokens are minted from a
// monotonic counter and never reused within a process.
//
// Token 0 is reserved for "anonymous" storage — a bare GraphView constructed
// over raw arrays with no minting owner.  The ViewCache refuses to bind to or
// serve anonymous views (it cannot tell two of them apart).
using StorageToken = std::uint64_t;

inline constexpr StorageToken kAnonymousStorage = 0;

inline StorageToken mint_storage_token() {
  static std::atomic<StorageToken> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

namespace detail {

// The one place the out-of-range contracts live.  Graph::neighbor,
// Graph::neighbor_prevalidated and GraphView all funnel through these, so the
// wording and semantics cannot drift between the owning and view types.
[[noreturn]] inline void throw_node_out_of_range(NodeIndex v) {
  throw std::out_of_range("Graph: node " + std::to_string(v) + " out of range");
}

[[noreturn]] inline void throw_port_out_of_range(NodeIndex v, Port p, std::int64_t deg) {
  throw std::out_of_range("Graph::neighbor: port " + std::to_string(p) +
                          " out of range for node " + std::to_string(v) +
                          " with degree " + std::to_string(deg));
}

// Port-checked CSR lookup: v's neighbor on port p (1-based).  Assumes v is a
// valid node; throws on an out-of-range port — in the query model a malformed
// query is a programming error of the algorithm.
inline NodeIndex csr_neighbor(const std::size_t* offsets, const NodeIndex* adjacency,
                              NodeIndex v, Port p) {
  const std::size_t off = offsets[v];
  const auto deg = static_cast<std::int64_t>(offsets[v + 1] - off);
  if (p < 1 || static_cast<std::int64_t>(p) > deg) throw_port_out_of_range(v, p, deg);
  return adjacency[off + static_cast<std::size_t>(p) - 1];
}

}  // namespace detail

class GraphView {
 public:
  constexpr GraphView() = default;
  constexpr GraphView(const std::size_t* offsets, const NodeIndex* adjacency,
                      NodeIndex node_count, int max_degree)
      : offsets_(offsets), adjacency_(adjacency), n_(node_count), max_degree_(max_degree) {}
  constexpr GraphView(const std::size_t* offsets, const NodeIndex* adjacency,
                      NodeIndex node_count, int max_degree, StorageToken token)
      : offsets_(offsets),
        adjacency_(adjacency),
        n_(node_count),
        max_degree_(max_degree),
        token_(token) {}

  NodeIndex node_count() const { return n_; }
  std::int64_t edge_count() const {
    return n_ == 0 ? 0 : static_cast<std::int64_t>(offsets_[n_]) / 2;
  }

  int degree(NodeIndex v) const {
    check_node(v);
    return static_cast<int>(offsets_[v + 1] - offsets_[v]);
  }

  int max_degree() const { return max_degree_; }

  // v's neighbor on port p (1-based).  Same contract and exception wording as
  // Graph::neighbor — both delegate to detail::csr_neighbor.
  NodeIndex neighbor(NodeIndex v, Port p) const {
    check_node(v);
    return detail::csr_neighbor(offsets_, adjacency_, v, p);
  }

  // Same contract and errors as neighbor(), for callers that have already
  // established v is valid (the query engine validates the node through its
  // visited set first): skips only the node-validity recheck, keeping the
  // port check and its exception.
  NodeIndex neighbor_prevalidated(NodeIndex v, Port p) const {
    return detail::csr_neighbor(offsets_, adjacency_, v, p);
  }

  // All neighbors of v in port order.
  std::span<const NodeIndex> neighbors(NodeIndex v) const {
    check_node(v);
    return {adjacency_ + offsets_[v], adjacency_ + offsets_[v + 1]};
  }

  // The port number p with neighbor(v, p) == w, or kNoPort if w is not
  // adjacent to v.  Linear in deg(v), which is O(Δ) = O(1).
  Port port_to(NodeIndex v, NodeIndex w) const {
    auto nbrs = neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] == w) return static_cast<Port>(i + 1);
    }
    return kNoPort;
  }

  bool adjacent(NodeIndex v, NodeIndex w) const { return port_to(v, w) != kNoPort; }

  bool valid_node(NodeIndex v) const { return v >= 0 && v < n_; }

  const std::size_t* offsets_data() const { return offsets_; }
  const NodeIndex* adjacency_data() const { return adjacency_; }

  // Identity of the underlying storage: the token minted when the storage
  // was built or adopted (Graph, io::Snapshot).  This is what ViewCache keys
  // its binding on.  Pointer equality is deliberately NOT used — munmap/mmap
  // recycles addresses across snapshot swaps, so two distinct graphs can
  // share an offsets pointer over a process lifetime.  kAnonymousStorage (0)
  // means "no minting owner"; the cache treats such views as uncacheable.
  StorageToken storage_identity() const { return token_; }

 private:
  void check_node(NodeIndex v) const {
    if (!valid_node(v)) detail::throw_node_out_of_range(v);
  }

  // CSR layout: neighbors of v are adjacency_[offsets_[v] .. offsets_[v+1]),
  // stored in port order (port p at offset p-1).
  const std::size_t* offsets_ = nullptr;
  const NodeIndex* adjacency_ = nullptr;
  NodeIndex n_ = 0;
  int max_degree_ = 0;
  StorageToken token_ = kAnonymousStorage;
};

static_assert(std::is_trivially_copyable_v<GraphView>,
              "GraphView must stay a borrowed, trivially-copyable handle");

}  // namespace volcal
