// Delta mutations against a port-numbered graph (the "dynamic graphs" layer).
//
// A MutationBatch is a small, explicit description of change: label channel
// rewrites (interpreted by the labeling layer — graph code never sees label
// types) and leaf-level edge rewires (detach a degree-1 node from its unique
// neighbor, reattach it elsewhere).  Rewires are the structural delta class
// every tree/pseudotree family in the registry stays closed under: detaching
// a leaf and re-hanging it keeps the graph simple and the port assignment a
// bijection at every node.
//
// Apply semantics (sequential, batch order):
//   * rewire {leaf, new_parent} requires deg(leaf) == 1 at its turn and
//     leaf != new_parent.  The edge at the old parent's port q is removed and
//     later ports compact down by one (ports stay exactly 1..deg); the new
//     edge lands on new_parent's next free port, and the leaf keeps port 1.
//   * new_parent == old_parent is allowed: the port renumbering at the parent
//     is a real structural edit (the leaf moves to the last port).
//
// Copy-on-write contract: apply_mutation never touches the input storage.  It
// materializes the post-batch CSR into *fresh owned arrays* with a freshly
// minted StorageToken, so every GraphView borrowed from the old graph stays
// valid and cache entries keyed by the old token can never alias the new
// structure.  In-flight readers finish against the old view; the ViewCache
// migrates certified entries to the new token via invalidate_region
// (runtime/view_cache.hpp).
//
// Two independent implementations back the differential harness:
// apply_mutation edits per-node port vectors directly; apply_mutation_naive
// replays the same semantics through Graph::Builder (whose build() validates
// port bijectivity from scratch).  check_mutation_case requires the two CSRs
// to be byte-identical on every fuzz case.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace volcal {

// One leaf-level structural edit: detach degree-1 node `leaf` from its
// unique neighbor, reattach it to `new_parent`.
struct LeafRewire {
  NodeIndex leaf = kNoNode;
  NodeIndex new_parent = kNoNode;
};

// Label channels a LabelUpdate may address.  The graph layer only transports
// these; which channels a problem family supports — and what `value` means —
// is interpreted by labels/label_mutation.hpp and enforced by the registry's
// mutate path (unsupported channel => std::invalid_argument).
enum class LabelChannel : std::uint8_t {
  Parent = 0,    // P(v) port claim (0 = the label ⊥)
  Left = 1,      // LC(v) port claim
  Right = 2,     // RC(v) port claim
  InColor = 3,   // χ_in ∈ {0 = Red, 1 = Blue}
  LeftNbr = 4,   // LN(v) port claim (balanced-tree labelings)
  RightNbr = 5,  // RN(v) port claim
  Level = 6,     // level(v) (hybrid / HH labelings)
  Side = 7,      // selector bit b_v ∈ {0, 1} (HH labelings)
};

inline const char* label_channel_name(LabelChannel c) {
  switch (c) {
    case LabelChannel::Parent: return "parent";
    case LabelChannel::Left: return "left";
    case LabelChannel::Right: return "right";
    case LabelChannel::InColor: return "color";
    case LabelChannel::LeftNbr: return "leftnbr";
    case LabelChannel::RightNbr: return "rightnbr";
    case LabelChannel::Level: return "level";
    case LabelChannel::Side: return "side";
  }
  return "?";
}

struct LabelUpdate {
  NodeIndex node = kNoNode;
  LabelChannel channel = LabelChannel::Parent;
  int value = 0;
};

struct MutationBatch {
  std::vector<LeafRewire> rewires;
  std::vector<LabelUpdate> label_updates;

  bool empty() const { return rewires.empty() && label_updates.empty(); }
};

// Result of applying a batch's structural part.
struct AppliedMutation {
  Graph graph;  // fresh owned storage, fresh StorageToken

  // Structural endpoints of the batch — for each rewire the leaf, its old
  // parent (resolved at the rewire's turn in the sequential application), and
  // the new parent — sorted and deduplicated.  This is exactly the touched
  // set invalidate_region certifies distances against: label updates are NOT
  // included (cached balls memoize structure, never labels, so a label-only
  // batch invalidates nothing).
  std::vector<NodeIndex> touched;
};

// Applies `batch`'s rewires to `g`, producing fresh storage (see the
// copy-on-write contract above).  Throws std::invalid_argument on an invalid
// rewire (node out of range, deg(leaf) != 1 at its turn, self-rewire); the
// input is never modified either way.  Label updates are not interpreted
// here (the labeling layer owns them) but their node indices are validated.
AppliedMutation apply_mutation(GraphView g, const MutationBatch& batch);

// Reference implementation: replays the identical semantics on explicit
// (port, neighbor) tables and rebuilds through Graph::Builder — whose
// build() re-validates port bijectivity from scratch.  Differential-harness
// use only.
Graph apply_mutation_naive(GraphView g, const MutationBatch& batch);

}  // namespace volcal
