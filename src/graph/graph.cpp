#include "graph/graph.hpp"

#include <algorithm>

namespace volcal {

void Graph::Builder::check_node(NodeIndex v) const {
  if (v < 0 || v >= node_count()) {
    throw std::out_of_range("Graph::Builder: node " + std::to_string(v) + " out of range");
  }
}

std::pair<Port, Port> Graph::Builder::add_edge(NodeIndex v, NodeIndex w) {
  check_node(v);
  check_node(w);
  if (v == w) throw std::invalid_argument("Graph::Builder: self-loops are not allowed");
  auto next_port = [this](NodeIndex u) {
    Port max_port = 0;
    for (const auto& e : ports_[u]) max_port = std::max(max_port, e.port);
    return max_port + 1;
  };
  Port pv = next_port(v);
  Port pw = next_port(w);
  ports_[v].push_back({pv, w});
  ports_[w].push_back({pw, v});
  return {pv, pw};
}

void Graph::Builder::add_edge_with_ports(NodeIndex v, NodeIndex w, Port pv, Port pw) {
  check_node(v);
  check_node(w);
  if (v == w) throw std::invalid_argument("Graph::Builder: self-loops are not allowed");
  if (pv < 1 || pw < 1) throw std::invalid_argument("Graph::Builder: ports are 1-based");
  ports_[v].push_back({pv, w});
  ports_[w].push_back({pw, v});
}

Graph Graph::Builder::build() && {
  Graph g;
  g.offsets_.clear();
  g.offsets_.reserve(ports_.size() + 1);
  g.offsets_.push_back(0);
  std::size_t total = 0;
  for (auto& edges : ports_) {
    std::sort(edges.begin(), edges.end(),
              [](const PortedEdge& a, const PortedEdge& b) { return a.port < b.port; });
    // Port numbers must form exactly 1..deg(v): the paper's port ordering is a
    // bijection between incident edges and [deg(v)].
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (edges[i].port != static_cast<Port>(i + 1)) {
        throw std::invalid_argument(
            "Graph::Builder: ports at a node must form exactly 1..deg(v)");
      }
    }
    total += edges.size();
    g.offsets_.push_back(total);
  }
  g.adjacency_.reserve(total);
  for (const auto& edges : ports_) {
    for (const auto& e : edges) g.adjacency_.push_back(e.to);
  }
  g.max_degree_ = 0;
  for (NodeIndex v = 0; v < g.node_count(); ++v) {
    g.max_degree_ = std::max(g.max_degree_, g.degree(v));
  }
  return g;
}

}  // namespace volcal
