// Bounded-degree port-numbered graphs (paper Section 2.1).
//
// A Graph is an undirected simple graph where each node v orders its incident
// edges by "ports" 1..deg(v).  Port numbers are the only way algorithms in the
// query model address edges, so they are first-class here: neighbor(v, p)
// answers "who is v's p-th neighbor" in O(1).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace volcal {

using NodeIndex = std::int64_t;
using Port = int;  // 1-based; 0 is reserved for "no port" (the label ⊥)

inline constexpr NodeIndex kNoNode = -1;
inline constexpr Port kNoPort = 0;

class Graph {
 public:
  class Builder;

  Graph() = default;

  NodeIndex node_count() const { return static_cast<NodeIndex>(offsets_.size()) - 1; }
  std::int64_t edge_count() const { return static_cast<std::int64_t>(adjacency_.size()) / 2; }

  int degree(NodeIndex v) const {
    check_node(v);
    return static_cast<int>(offsets_[v + 1] - offsets_[v]);
  }

  int max_degree() const { return max_degree_; }

  // v's neighbor on port p (1-based).  Throws on an out-of-range port: in the
  // query model a malformed query is a programming error of the algorithm.
  NodeIndex neighbor(NodeIndex v, Port p) const {
    check_node(v);
    if (p < 1 || p > degree(v)) {
      throw std::out_of_range("Graph::neighbor: port " + std::to_string(p) +
                              " out of range for node " + std::to_string(v) +
                              " with degree " + std::to_string(degree(v)));
    }
    return adjacency_[offsets_[v] + p - 1];
  }

  // Same contract and errors as neighbor(), for callers that have already
  // established v is valid (the query engine validates the node through its
  // visited set first): skips only the node-validity rechecks, keeping the
  // port check and its exception.
  NodeIndex neighbor_prevalidated(NodeIndex v, Port p) const {
    const std::size_t off = offsets_[v];
    const std::size_t deg = offsets_[v + 1] - off;
    if (p < 1 || static_cast<std::size_t>(p) > deg) {
      throw std::out_of_range("Graph::neighbor: port " + std::to_string(p) +
                              " out of range for node " + std::to_string(v) +
                              " with degree " + std::to_string(deg));
    }
    return adjacency_[off + static_cast<std::size_t>(p) - 1];
  }

  // All neighbors of v in port order.
  std::span<const NodeIndex> neighbors(NodeIndex v) const {
    check_node(v);
    return {adjacency_.data() + offsets_[v], adjacency_.data() + offsets_[v + 1]};
  }

  // The port number p with neighbor(v, p) == w, or kNoPort if w is not
  // adjacent to v.  Linear in deg(v), which is O(Δ) = O(1).
  Port port_to(NodeIndex v, NodeIndex w) const {
    check_node(v);
    auto nbrs = neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] == w) return static_cast<Port>(i + 1);
    }
    return kNoPort;
  }

  bool adjacent(NodeIndex v, NodeIndex w) const { return port_to(v, w) != kNoPort; }

  bool valid_node(NodeIndex v) const { return v >= 0 && v < node_count(); }

 private:
  void check_node(NodeIndex v) const {
    if (!valid_node(v)) {
      throw std::out_of_range("Graph: node " + std::to_string(v) + " out of range");
    }
  }

  // CSR layout: neighbors of v are adjacency_[offsets_[v] .. offsets_[v+1]),
  // stored in port order (port p at offset p-1).
  std::vector<std::size_t> offsets_{0};
  std::vector<NodeIndex> adjacency_;
  int max_degree_ = 0;

  friend class Builder;
};

// Incremental construction.  Edges may be added with explicit ports or with
// ports assigned in insertion order; the two styles can be mixed as long as
// the final port assignment is a bijection onto 1..deg(v) at every node.
class Graph::Builder {
 public:
  explicit Builder(NodeIndex node_count) : ports_(node_count) {}

  NodeIndex node_count() const { return static_cast<NodeIndex>(ports_.size()); }

  NodeIndex add_node() {
    ports_.emplace_back();
    return static_cast<NodeIndex>(ports_.size()) - 1;
  }

  // Add edge {v, w}; ports are appended after the largest port used so far at
  // each endpoint.  Returns the pair of assigned ports (port at v, port at w).
  std::pair<Port, Port> add_edge(NodeIndex v, NodeIndex w);

  // Add edge {v, w} with explicit port numbers pv (at v) and pw (at w).
  void add_edge_with_ports(NodeIndex v, NodeIndex w, Port pv, Port pw);

  // Validates port bijectivity and freezes the structure.
  Graph build() &&;

 private:
  struct PortedEdge {
    Port port;
    NodeIndex to;
  };
  void check_node(NodeIndex v) const;

  std::vector<std::vector<PortedEdge>> ports_;
};

}  // namespace volcal
