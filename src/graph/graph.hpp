// Bounded-degree port-numbered graphs (paper Section 2.1).
//
// A Graph is an undirected simple graph where each node v orders its incident
// edges by "ports" 1..deg(v).  Port numbers are the only way algorithms in the
// query model address edges, so they are first-class here: neighbor(v, p)
// answers "who is v's p-th neighbor" in O(1).
//
// Graph either owns its CSR arrays (the Builder path) or borrows them from an
// external mapping via Graph::adopt (the snapshot path).  Either way, all
// reads go through the GraphView it hands out, so the two storage modes are
// indistinguishable to callers — including the exception contracts, which
// live in one place (graph_view.hpp, detail::csr_neighbor).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph_view.hpp"

namespace volcal {

class Graph {
 public:
  class Builder;

  Graph() = default;

  // Borrow externally owned CSR storage (e.g. an mmap-ed snapshot section).
  // The caller must keep that storage alive and unmodified for the lifetime
  // of the returned Graph and every view taken from it; see
  // io/snapshot.hpp for the keep-alive pattern used by the loader.
  static Graph adopt(GraphView v) {
    Graph g;
    g.adopted_ = v;
    g.offsets_.clear();
    return g;
  }

  // The borrowed view of this graph's storage (owned vectors or adopted
  // mapping).  Cheap: four words, computed on access so copies and moves of
  // Graph never need fix-up.
  GraphView view() const {
    if (adopted_.offsets_data() != nullptr) return adopted_;
    return GraphView(offsets_.data(), adjacency_.data(),
                     static_cast<NodeIndex>(offsets_.size()) - 1, max_degree_);
  }

  // Every engine entry point takes GraphView; an owning Graph converts
  // implicitly so call sites don't care which one they hold.
  operator GraphView() const { return view(); }  // NOLINT(google-explicit-constructor)

  NodeIndex node_count() const { return view().node_count(); }
  std::int64_t edge_count() const { return view().edge_count(); }

  int degree(NodeIndex v) const { return view().degree(v); }

  int max_degree() const { return view().max_degree(); }

  // v's neighbor on port p (1-based).  Throws on an out-of-range port: in the
  // query model a malformed query is a programming error of the algorithm.
  NodeIndex neighbor(NodeIndex v, Port p) const { return view().neighbor(v, p); }

  // Same contract and errors as neighbor(), for callers that have already
  // established v is valid (the query engine validates the node through its
  // visited set first): skips only the node-validity rechecks, keeping the
  // port check and its exception.
  NodeIndex neighbor_prevalidated(NodeIndex v, Port p) const {
    return view().neighbor_prevalidated(v, p);
  }

  // All neighbors of v in port order.
  std::span<const NodeIndex> neighbors(NodeIndex v) const { return view().neighbors(v); }

  // The port number p with neighbor(v, p) == w, or kNoPort if w is not
  // adjacent to v.  Linear in deg(v), which is O(Δ) = O(1).
  Port port_to(NodeIndex v, NodeIndex w) const { return view().port_to(v, w); }

  bool adjacent(NodeIndex v, NodeIndex w) const { return view().adjacent(v, w); }

  bool valid_node(NodeIndex v) const { return view().valid_node(v); }

 private:
  // CSR layout: neighbors of v are adjacency_[offsets_[v] .. offsets_[v+1]),
  // stored in port order (port p at offset p-1).  Empty (offsets_ cleared)
  // when the storage is adopted from elsewhere.
  std::vector<std::size_t> offsets_{0};
  std::vector<NodeIndex> adjacency_;
  int max_degree_ = 0;
  GraphView adopted_{};

  friend class Builder;
};

// Incremental construction.  Edges may be added with explicit ports or with
// ports assigned in insertion order; the two styles can be mixed as long as
// the final port assignment is a bijection onto 1..deg(v) at every node.
class Graph::Builder {
 public:
  explicit Builder(NodeIndex node_count) : ports_(node_count) {}

  NodeIndex node_count() const { return static_cast<NodeIndex>(ports_.size()); }

  NodeIndex add_node() {
    ports_.emplace_back();
    return static_cast<NodeIndex>(ports_.size()) - 1;
  }

  // Add edge {v, w}; ports are appended after the largest port used so far at
  // each endpoint.  Returns the pair of assigned ports (port at v, port at w).
  std::pair<Port, Port> add_edge(NodeIndex v, NodeIndex w);

  // Add edge {v, w} with explicit port numbers pv (at v) and pw (at w).
  void add_edge_with_ports(NodeIndex v, NodeIndex w, Port pv, Port pw);

  // Validates port bijectivity and freezes the structure.
  Graph build() &&;

 private:
  struct PortedEdge {
    Port port;
    NodeIndex to;
  };
  void check_node(NodeIndex v) const;

  std::vector<std::vector<PortedEdge>> ports_;
};

}  // namespace volcal
