// Bounded-degree port-numbered graphs (paper Section 2.1).
//
// A Graph is an undirected simple graph where each node v orders its incident
// edges by "ports" 1..deg(v).  Port numbers are the only way algorithms in the
// query model address edges, so they are first-class here: neighbor(v, p)
// answers "who is v's p-th neighbor" in O(1).
//
// Graph either owns its CSR arrays (the Builder path) or borrows them from an
// external mapping via Graph::adopt (the snapshot path).  Either way, all
// reads go through the GraphView it hands out, so the two storage modes are
// indistinguishable to callers — including the exception contracts, which
// live in one place (graph_view.hpp, detail::csr_neighbor).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph_view.hpp"

namespace volcal {

class Graph {
 public:
  class Builder;

  Graph() = default;

  // Storage-token bookkeeping: owned storage is unique to this object, so
  // copying an owning Graph copies the CSR arrays into fresh storage and
  // mints a fresh identity.  Adopted storage is shared with the external
  // owner, so copies of an adopted Graph keep the same identity (they alias
  // the same bytes).  Moves transfer the storage, so the identity moves too.
  Graph(const Graph& other)
      : offsets_(other.offsets_),
        adjacency_(other.adjacency_),
        max_degree_(other.max_degree_),
        adopted_(other.adopted_),
        token_(other.adopted() ? other.token_ : mint_storage_token()) {}
  Graph& operator=(const Graph& other) {
    if (this == &other) return *this;
    offsets_ = other.offsets_;
    adjacency_ = other.adjacency_;
    max_degree_ = other.max_degree_;
    adopted_ = other.adopted_;
    token_ = other.adopted() ? other.token_ : mint_storage_token();
    return *this;
  }
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  // Wrap already-laid-out CSR arrays in an owning Graph.  `offsets` must have
  // n+1 entries with offsets[0] == 0, monotone, offsets[n] == adjacency.size();
  // adjacency holds each node's neighbors in port order.  The port-bijectivity
  // invariant is the caller's responsibility (Builder::build validates it; the
  // mutation fast path in graph/mutation.cpp maintains it edit-by-edit and is
  // cross-checked against the Builder path by check_mutation_case).  A fresh
  // StorageToken is minted: the result is a *different* cache identity from
  // whatever the arrays were derived from.
  static Graph from_csr(std::vector<std::size_t> offsets, std::vector<NodeIndex> adjacency,
                        int max_degree) {
    if (offsets.empty() || offsets.front() != 0 || offsets.back() != adjacency.size()) {
      throw std::invalid_argument("Graph::from_csr: malformed offsets array");
    }
    Graph g;
    g.offsets_ = std::move(offsets);
    g.adjacency_ = std::move(adjacency);
    g.max_degree_ = max_degree;
    return g;
  }

  // Borrow externally owned CSR storage (e.g. an mmap-ed snapshot section).
  // The caller must keep that storage alive and unmodified for the lifetime
  // of the returned Graph and every view taken from it; see
  // io/snapshot.hpp for the keep-alive pattern used by the loader.  If the
  // incoming view already carries a storage token (a snapshot view), that
  // identity is preserved; an anonymous view gets a fresh token minted for
  // this adoption.
  static Graph adopt(GraphView v) {
    Graph g;
    if (v.storage_identity() != kAnonymousStorage) g.token_ = v.storage_identity();
    g.adopted_ = GraphView(v.offsets_data(), v.adjacency_data(), v.node_count(),
                           v.max_degree(), g.token_);
    g.offsets_.clear();
    return g;
  }

  // The borrowed view of this graph's storage (owned vectors or adopted
  // mapping).  Cheap: five words, computed on access so copies and moves of
  // Graph never need fix-up.
  GraphView view() const {
    if (adopted_.offsets_data() != nullptr) return adopted_;
    return GraphView(offsets_.data(), adjacency_.data(),
                     static_cast<NodeIndex>(offsets_.size()) - 1, max_degree_, token_);
  }

  bool adopted() const { return adopted_.offsets_data() != nullptr; }

  // Every engine entry point takes GraphView; an owning Graph converts
  // implicitly so call sites don't care which one they hold.
  operator GraphView() const { return view(); }  // NOLINT(google-explicit-constructor)

  NodeIndex node_count() const { return view().node_count(); }
  std::int64_t edge_count() const { return view().edge_count(); }

  int degree(NodeIndex v) const { return view().degree(v); }

  int max_degree() const { return view().max_degree(); }

  // v's neighbor on port p (1-based).  Throws on an out-of-range port: in the
  // query model a malformed query is a programming error of the algorithm.
  NodeIndex neighbor(NodeIndex v, Port p) const { return view().neighbor(v, p); }

  // Same contract and errors as neighbor(), for callers that have already
  // established v is valid (the query engine validates the node through its
  // visited set first): skips only the node-validity rechecks, keeping the
  // port check and its exception.
  NodeIndex neighbor_prevalidated(NodeIndex v, Port p) const {
    return view().neighbor_prevalidated(v, p);
  }

  // All neighbors of v in port order.
  std::span<const NodeIndex> neighbors(NodeIndex v) const { return view().neighbors(v); }

  // The port number p with neighbor(v, p) == w, or kNoPort if w is not
  // adjacent to v.  Linear in deg(v), which is O(Δ) = O(1).
  Port port_to(NodeIndex v, NodeIndex w) const { return view().port_to(v, w); }

  bool adjacent(NodeIndex v, NodeIndex w) const { return view().adjacent(v, w); }

  bool valid_node(NodeIndex v) const { return view().valid_node(v); }

 private:
  // CSR layout: neighbors of v are adjacency_[offsets_[v] .. offsets_[v+1]),
  // stored in port order (port p at offset p-1).  Empty (offsets_ cleared)
  // when the storage is adopted from elsewhere.
  std::vector<std::size_t> offsets_{0};
  std::vector<NodeIndex> adjacency_;
  int max_degree_ = 0;
  GraphView adopted_{};
  StorageToken token_ = mint_storage_token();

  friend class Builder;
};

// Incremental construction.  Edges may be added with explicit ports or with
// ports assigned in insertion order; the two styles can be mixed as long as
// the final port assignment is a bijection onto 1..deg(v) at every node.
class Graph::Builder {
 public:
  explicit Builder(NodeIndex node_count) : ports_(node_count) {}

  NodeIndex node_count() const { return static_cast<NodeIndex>(ports_.size()); }

  NodeIndex add_node() {
    ports_.emplace_back();
    return static_cast<NodeIndex>(ports_.size()) - 1;
  }

  // Add edge {v, w}; ports are appended after the largest port used so far at
  // each endpoint.  Returns the pair of assigned ports (port at v, port at w).
  std::pair<Port, Port> add_edge(NodeIndex v, NodeIndex w);

  // Add edge {v, w} with explicit port numbers pv (at v) and pw (at w).
  void add_edge_with_ports(NodeIndex v, NodeIndex w, Port pv, Port pw);

  // Validates port bijectivity and freezes the structure.
  Graph build() &&;

 private:
  struct PortedEdge {
    Port port;
    NodeIndex to;
  };
  void check_node(NodeIndex v) const;

  std::vector<std::vector<PortedEdge>> ports_;
};

}  // namespace volcal
