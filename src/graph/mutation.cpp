#include "graph/mutation.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace volcal {
namespace {

void check_index(NodeIndex v, NodeIndex n, const char* what) {
  if (v < 0 || v >= n) {
    throw std::invalid_argument("apply_mutation: " + std::string(what) + " " +
                                std::to_string(v) + " out of range for n = " +
                                std::to_string(n));
  }
}

[[noreturn]] void throw_not_a_leaf(NodeIndex leaf, std::size_t deg) {
  throw std::invalid_argument("apply_mutation: rewire of node " + std::to_string(leaf) +
                              " with degree " + std::to_string(deg) +
                              " (only degree-1 leaves can be rewired)");
}

[[noreturn]] void throw_self_rewire(NodeIndex leaf) {
  throw std::invalid_argument("apply_mutation: self-rewire of node " +
                              std::to_string(leaf));
}

}  // namespace

AppliedMutation apply_mutation(GraphView g, const MutationBatch& batch) {
  const NodeIndex n = g.node_count();
  for (const LabelUpdate& u : batch.label_updates) {
    check_index(u.node, n, "label-update node");
  }

  // Per-node neighbor lists, port order implicit in position (port p lives at
  // index p-1) — erase *is* the port compaction, push_back *is* "next free
  // port".  The Builder-based reference path below carries explicit port
  // numbers instead, so the two implementations share no representation.
  std::vector<std::vector<NodeIndex>> nbrs(static_cast<std::size_t>(n));
  for (NodeIndex v = 0; v < n; ++v) {
    const auto span = g.neighbors(v);
    nbrs[static_cast<std::size_t>(v)].assign(span.begin(), span.end());
  }

  std::vector<NodeIndex> touched;
  touched.reserve(batch.rewires.size() * 3);
  for (const LeafRewire& r : batch.rewires) {
    check_index(r.leaf, n, "rewire leaf");
    check_index(r.new_parent, n, "rewire new_parent");
    if (r.leaf == r.new_parent) throw_self_rewire(r.leaf);
    auto& ln = nbrs[static_cast<std::size_t>(r.leaf)];
    if (ln.size() != 1) throw_not_a_leaf(r.leaf, ln.size());
    const NodeIndex old_parent = ln.front();
    auto& pn = nbrs[static_cast<std::size_t>(old_parent)];
    pn.erase(std::find(pn.begin(), pn.end(), r.leaf));
    nbrs[static_cast<std::size_t>(r.new_parent)].push_back(r.leaf);
    ln.front() = r.new_parent;
    touched.push_back(r.leaf);
    touched.push_back(old_parent);
    touched.push_back(r.new_parent);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  std::vector<std::size_t> offsets;
  offsets.reserve(static_cast<std::size_t>(n) + 1);
  offsets.push_back(0);
  std::size_t total = 0;
  int max_degree = 0;
  for (NodeIndex v = 0; v < n; ++v) {
    const auto deg = nbrs[static_cast<std::size_t>(v)].size();
    total += deg;
    offsets.push_back(total);
    max_degree = std::max(max_degree, static_cast<int>(deg));
  }
  std::vector<NodeIndex> adjacency;
  adjacency.reserve(total);
  for (NodeIndex v = 0; v < n; ++v) {
    const auto& vn = nbrs[static_cast<std::size_t>(v)];
    adjacency.insert(adjacency.end(), vn.begin(), vn.end());
  }

  AppliedMutation out;
  out.graph = Graph::from_csr(std::move(offsets), std::move(adjacency), max_degree);
  out.touched = std::move(touched);
  return out;
}

Graph apply_mutation_naive(GraphView g, const MutationBatch& batch) {
  const NodeIndex n = g.node_count();
  struct PortedEdge {
    Port port;
    NodeIndex to;
  };
  std::vector<std::vector<PortedEdge>> ports(static_cast<std::size_t>(n));
  for (NodeIndex v = 0; v < n; ++v) {
    const int deg = g.degree(v);
    for (Port p = 1; p <= deg; ++p) {
      ports[static_cast<std::size_t>(v)].push_back({p, g.neighbor(v, p)});
    }
  }

  for (const LeafRewire& r : batch.rewires) {
    check_index(r.leaf, n, "rewire leaf");
    check_index(r.new_parent, n, "rewire new_parent");
    if (r.leaf == r.new_parent) throw_self_rewire(r.leaf);
    auto& ln = ports[static_cast<std::size_t>(r.leaf)];
    if (ln.size() != 1) throw_not_a_leaf(r.leaf, ln.size());
    const NodeIndex old_parent = ln.front().to;
    auto& pn = ports[static_cast<std::size_t>(old_parent)];
    const auto it = std::find_if(pn.begin(), pn.end(),
                                 [&](const PortedEdge& e) { return e.to == r.leaf; });
    const Port removed = it->port;
    pn.erase(it);
    for (PortedEdge& e : pn) {
      if (e.port > removed) --e.port;  // explicit port compaction
    }
    ports[static_cast<std::size_t>(r.new_parent)].push_back(
        {static_cast<Port>(ports[static_cast<std::size_t>(r.new_parent)].size() + 1),
         r.leaf});
    ln.front() = {1, r.new_parent};
  }

  Graph::Builder b(n);
  for (NodeIndex v = 0; v < n; ++v) {
    for (const PortedEdge& e : ports[static_cast<std::size_t>(v)]) {
      if (v > e.to) continue;  // each undirected edge added once
      const auto& back = ports[static_cast<std::size_t>(e.to)];
      const auto bit = std::find_if(back.begin(), back.end(),
                                    [&](const PortedEdge& w) { return w.to == v; });
      b.add_edge_with_ports(v, e.to, e.port, bit->port);
    }
  }
  return std::move(b).build();
}

}  // namespace volcal
