// Breadth-first search utilities: distance layers, balls N_v(d), and
// connected components.  These back both the LOCAL-model simulator (a
// distance-T algorithm sees exactly the ball N_v(T)) and the LCL checker
// (which inspects radius-c balls).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace volcal {

// Distances from `source` to every node, kUnreachable where disconnected.
inline constexpr std::int64_t kUnreachable = -1;
std::vector<std::int64_t> bfs_distances(GraphView g, NodeIndex source);

// Nodes within distance `radius` of `center`, in BFS (hence distance) order.
// This is the vertex set of the paper's N_v(d).
std::vector<NodeIndex> ball(GraphView g, NodeIndex center, std::int64_t radius);

// Like `ball` but also reports each node's distance from the center
// (parallel arrays: result.nodes[i] is at distance result.dist[i]).
struct BallWithDistances {
  std::vector<NodeIndex> nodes;
  std::vector<std::int64_t> dist;
};
BallWithDistances ball_with_distances(GraphView g, NodeIndex center, std::int64_t radius);

// Eccentricity of `source` within its connected component.
std::int64_t eccentricity(GraphView g, NodeIndex source);

// component_of[v] = id of v's connected component (ids are 0-based, assigned
// in order of smallest contained node index).
struct Components {
  std::vector<std::int64_t> component_of;
  std::int64_t count = 0;
};
Components connected_components(GraphView g);

}  // namespace volcal
