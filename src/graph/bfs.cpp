#include "graph/bfs.hpp"

#include <algorithm>
#include <deque>

namespace volcal {

std::vector<std::int64_t> bfs_distances(GraphView g, NodeIndex source) {
  std::vector<std::int64_t> dist(g.node_count(), kUnreachable);
  std::deque<NodeIndex> frontier{source};
  dist[source] = 0;
  while (!frontier.empty()) {
    NodeIndex v = frontier.front();
    frontier.pop_front();
    for (NodeIndex w : g.neighbors(v)) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[v] + 1;
        frontier.push_back(w);
      }
    }
  }
  return dist;
}

BallWithDistances ball_with_distances(GraphView g, NodeIndex center, std::int64_t radius) {
  BallWithDistances out;
  if (radius < 0) return out;
  // Local visited map keyed by node; a full vector<bool> of size n would make
  // small-ball extraction O(n), defeating the point of volume accounting.
  // We use a sorted probe into `out.nodes` only when balls are tiny, otherwise
  // a per-call hash would be fine; in practice balls here are small relative
  // to n, but a vector<char> is simplest and BFS callers amortize it.
  std::vector<char> seen(g.node_count(), 0);
  std::deque<NodeIndex> frontier{center};
  seen[center] = 1;
  out.nodes.push_back(center);
  out.dist.push_back(0);
  std::size_t head = 0;
  while (head < out.nodes.size()) {
    NodeIndex v = out.nodes[head];
    std::int64_t dv = out.dist[head];
    ++head;
    if (dv == radius) continue;
    for (NodeIndex w : g.neighbors(v)) {
      if (!seen[w]) {
        seen[w] = 1;
        out.nodes.push_back(w);
        out.dist.push_back(dv + 1);
      }
    }
  }
  return out;
}

std::vector<NodeIndex> ball(GraphView g, NodeIndex center, std::int64_t radius) {
  return ball_with_distances(g, center, radius).nodes;
}

std::int64_t eccentricity(GraphView g, NodeIndex source) {
  auto dist = bfs_distances(g, source);
  std::int64_t ecc = 0;
  for (auto d : dist) ecc = std::max(ecc, d);
  return ecc;
}

Components connected_components(GraphView g) {
  Components out;
  out.component_of.assign(g.node_count(), -1);
  for (NodeIndex v = 0; v < g.node_count(); ++v) {
    if (out.component_of[v] != -1) continue;
    std::deque<NodeIndex> frontier{v};
    out.component_of[v] = out.count;
    while (!frontier.empty()) {
      NodeIndex u = frontier.front();
      frontier.pop_front();
      for (NodeIndex w : g.neighbors(u)) {
        if (out.component_of[w] == -1) {
          out.component_of[w] = out.count;
          frontier.push_back(w);
        }
      }
    }
    ++out.count;
  }
  return out;
}

}  // namespace volcal
