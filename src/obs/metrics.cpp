#include "obs/metrics.hpp"

#include <bit>
#include <cinttypes>
#include <cstdio>

namespace volcal::obs {

int LogHistogram::bucket_of(std::int64_t v) {
  if (v <= 0) return 0;
  return std::bit_width(static_cast<std::uint64_t>(v));
}

void LogHistogram::add(std::int64_t v) {
  ++buckets[static_cast<std::size_t>(bucket_of(v))];
  if (count == 0) {
    min = max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  ++count;
  sum += v;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.count == 0) return;
  for (std::size_t b = 0; b < buckets.size(); ++b) buckets[b] += other.buckets[b];
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
}

void SweepMetrics::merge(const SweepMetrics& other) {
  sweeps += other.sweeps;
  stats.starts += other.stats.starts;
  stats.max_volume = std::max(stats.max_volume, other.stats.max_volume);
  stats.max_distance = std::max(stats.max_distance, other.stats.max_distance);
  stats.total_queries += other.stats.total_queries;
  stats.total_volume += other.stats.total_volume;
  stats.truncated += other.stats.truncated;
  stats.wall_seconds += other.stats.wall_seconds;
  stats.cache += other.stats.cache;
  stats.batch += other.stats.batch;
  batched_sweeps += other.batched_sweeps;
  volume_hist.merge(other.volume_hist);
  distance_hist.merge(other.distance_hist);
  queries_hist.merge(other.queries_hist);
  start_wall_us_hist.merge(other.start_wall_us_hist);
  for (std::size_t w = 0; w < worker_busy_ns.size(); ++w) {
    worker_busy_ns[w] += other.worker_busy_ns[w];
    worker_starts[w] += other.worker_starts[w];
    worker_batches[w] += other.worker_batches[w];
    worker_batched_starts[w] += other.worker_batched_starts[w];
    worker_waves[w] += other.worker_waves[w];
  }
  workers_seen = std::max(workers_seen, other.workers_seen);
  tape_max_bits = std::max(tape_max_bits, other.tape_max_bits);
  phases.merge(other.phases);
}

namespace {

void append_histogram(std::string& out, const char* name, const LogHistogram& h) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "\"%s\": {\"count\": %" PRId64 ", \"min\": %" PRId64 ", \"max\": %" PRId64
                ", \"sum\": %" PRId64 ", \"buckets\": {",
                name, h.count, h.min, h.max, h.sum);
  out += buf;
  bool first = true;
  for (std::size_t b = 0; b < h.buckets.size(); ++b) {
    if (h.buckets[b] == 0) continue;
    // Bucket key is the inclusive value range it covers.
    const std::int64_t lo = b == 0 ? 0 : (std::int64_t{1} << (b - 1));
    const std::int64_t hi = b == 0 ? 0 : (std::int64_t{1} << b) - 1;
    std::snprintf(buf, sizeof buf, "%s\"%" PRId64 "-%" PRId64 "\": %" PRId64,
                  first ? "" : ", ", lo, hi, h.buckets[b]);
    out += buf;
    first = false;
  }
  out += "}}";
}

}  // namespace

std::string SweepMetrics::to_json(const std::string& tool) const {
  char buf[512];
  std::string out = "{\"tool\": \"" + tool + "\", ";
  std::snprintf(buf, sizeof buf,
                "\"sweeps\": %" PRId64 ", \"totals\": {\"starts\": %" PRId64
                ", \"max_volume\": %" PRId64 ", \"max_distance\": %" PRId64
                ", \"total_queries\": %" PRId64 ", \"total_volume\": %" PRId64
                ", \"truncated\": %" PRId64 ", \"wall_seconds\": %.6f}, \"tape_max_bits\": %" PRIu64
                ", ",
                sweeps, stats.starts, stats.max_volume, stats.max_distance,
                stats.total_queries, stats.total_volume, stats.truncated, stats.wall_seconds,
                tape_max_bits);
  out += buf;
  append_histogram(out, "volume", volume_hist);
  out += ", ";
  append_histogram(out, "distance", distance_hist);
  out += ", ";
  append_histogram(out, "queries", queries_hist);
  out += ", ";
  append_histogram(out, "start_wall_us", start_wall_us_hist);
  out += ", \"workers\": [";
  for (int w = 0; w < workers_seen; ++w) {
    const auto ws = static_cast<std::size_t>(w);
    // Batch occupancy = batched starts per wave: how full the worker's
    // 64-slot frontier actually ran.
    const double occupancy =
        worker_waves[ws] > 0 ? static_cast<double>(worker_batched_starts[ws]) /
                                   static_cast<double>(worker_waves[ws])
                             : 0.0;
    std::snprintf(buf, sizeof buf,
                  "%s{\"worker\": %d, \"starts\": %" PRId64 ", \"busy_ns\": %" PRId64
                  ", \"batches\": %" PRId64 ", \"batched_starts\": %" PRId64
                  ", \"waves\": %" PRId64 ", \"batch_occupancy\": %.3f}",
                  w ? ", " : "", w, worker_starts[ws], worker_busy_ns[ws],
                  worker_batches[ws], worker_batched_starts[ws], worker_waves[ws],
                  occupancy);
    out += buf;
  }
  out += "], \"phases\": [";
  for (std::size_t i = 0; i < phases.phases().size(); ++i) {
    const auto& p = phases.phases()[i];
    std::snprintf(buf, sizeof buf, "%s{\"name\": \"%s\", \"wall_seconds\": %.6g}",
                  i ? ", " : "", p.name.c_str(), p.wall_seconds);
    out += buf;
  }
  std::snprintf(buf, sizeof buf,
                "], \"cache\": {\"policy\": \"%s\", \"hits\": %" PRId64
                ", \"misses\": %" PRId64 ", \"evictions\": %" PRId64
                ", \"served_nodes\": %" PRId64 ", \"inserted_bytes\": %" PRId64 "}",
                cache_policy_name(stats.cache.policy), stats.cache.hits, stats.cache.misses,
                stats.cache.evictions, stats.cache.served_nodes, stats.cache.inserted_bytes);
  out += buf;
  std::snprintf(buf, sizeof buf,
                ", \"batch\": {\"batched_sweeps\": %" PRId64 ", \"batches\": %" PRId64
                ", \"batched_starts\": %" PRId64 ", \"waves\": %" PRId64
                ", \"expanded_nodes\": %" PRId64 "}",
                batched_sweeps, stats.batch.batches, stats.batch.batched_starts,
                stats.batch.waves, stats.batch.expanded_nodes);
  out += buf;
  // Process-global probe samples, taken at serialization time.
  const perf::AllocStats alloc = perf::alloc_snapshot();
  std::snprintf(buf, sizeof buf,
                ", \"alloc\": {\"instrumented\": %s, \"allocs\": %" PRIu64
                ", \"frees\": %" PRIu64 ", \"bytes\": %" PRIu64 ", \"peak_bytes\": %" PRIu64
                "}, \"rss_high_water_kb\": %" PRId64 "}\n",
                perf::alloc_hook_active() ? "true" : "false", alloc.allocs, alloc.frees,
                alloc.bytes, alloc.peak_bytes, perf::rss_high_water_kb());
  out += buf;
  return out;
}

bool SweepMetrics::write_file(const std::string& path, const std::string& tool) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::string doc = to_json(tool);
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace volcal::obs
