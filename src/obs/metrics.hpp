// SweepMetrics — aggregate observability for whole-graph sweeps.
//
// Where a trace (obs/trace.hpp) answers "what exactly did execution i do",
// metrics answer "what did the sweep look like in aggregate": log2 histograms
// of per-start volume / distance / query counts, totals matching SweepStats,
// tape-bit high-water mark, and (when a SweepProfile was attached) wall time
// per start and per-worker busy time.
//
// Determinism: every field except the wall-time and view-cache ones is
// derived from the SweepResult's per-start slot vectors, which the engine guarantees are
// bit-identical at any thread count — so metrics aggregated over a parallel
// sweep equal the serial ones by construction (the same argument as the
// runner's sup-cost merge).  tests/obs_test.cpp asserts totals equal the
// legacy Cost fields.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "perf/probe.hpp"
#include "runtime/parallel_runner.hpp"
#include "runtime/randomness.hpp"

namespace volcal::obs {

// Power-of-two bucket histogram: bucket b counts values v with
// bit_width(v) == b, i.e. bucket 0 holds v=0, bucket 1 holds v=1,
// bucket 2 holds 2-3, bucket 3 holds 4-7, ...  Fixed 64 buckets — covers the
// full int64 range, trivially mergeable.
struct LogHistogram {
  std::array<std::int64_t, 64> buckets{};
  std::int64_t count = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  std::int64_t sum = 0;

  static int bucket_of(std::int64_t v);

  void add(std::int64_t v);
  void merge(const LogHistogram& other);

  friend bool operator==(const LogHistogram&, const LogHistogram&) = default;
};

struct SweepMetrics {
  std::int64_t sweeps = 0;  // measure()/run_at calls folded in
  SweepStats stats;         // totals and sups across all folded sweeps
  LogHistogram volume_hist;
  LogHistogram distance_hist;
  LogHistogram queries_hist;
  // Wall-clock (non-deterministic) — only populated when a SweepProfile was
  // attached to the sweep.
  LogHistogram start_wall_us_hist;       // per-start execution wall micros
  std::array<std::int64_t, 256> worker_busy_ns{};  // per-worker total
  std::array<std::int64_t, 256> worker_starts{};
  int workers_seen = 0;
  // Batched-backend accounting: sweeps executed on the batched backend and,
  // when a SweepProfile was attached, the per-worker batch columns from
  // which occupancy (starts per wave) is derived.  stats.batch holds the
  // sweep-level totals.
  std::int64_t batched_sweeps = 0;
  std::array<std::int64_t, 256> worker_batches{};
  std::array<std::int64_t, 256> worker_batched_starts{};
  std::array<std::int64_t, 256> worker_waves{};
  // RandomTape high-water mark: max bits consumed at any node (§2.2 fn. 1).
  std::uint64_t tape_max_bits = 0;
  // Perf probes (wall-clock / process-global, non-deterministic like the
  // fields above): named phase accumulation fed by the bench Observer, plus
  // allocation counters and the RSS high-water mark sampled when the metrics
  // are serialized.  Alloc numbers only advance in binaries that link the
  // volcal_alloc_hook counting allocator.
  perf::PhaseTimer phases;

  // Folds one sweep in.  Per-start histograms come from the slot vectors;
  // totals from result.stats.
  template <typename Label>
  void observe(const SweepResult<Label>& result, const SweepProfile* profile = nullptr,
               const RandomTape* tape = nullptr) {
    ++sweeps;
    stats.starts += result.stats.starts;
    stats.max_volume = std::max(stats.max_volume, result.stats.max_volume);
    stats.max_distance = std::max(stats.max_distance, result.stats.max_distance);
    stats.total_queries += result.stats.total_queries;
    stats.total_volume += result.stats.total_volume;
    stats.truncated += result.stats.truncated;
    stats.wall_seconds += result.stats.wall_seconds;
    stats.cache += result.stats.cache;
    stats.batch += result.stats.batch;
    if (result.stats.backend == ExecBackend::Batched) ++batched_sweeps;
    for (std::size_t i = 0; i < result.volume.size(); ++i) {
      volume_hist.add(result.volume[i]);
      distance_hist.add(result.distance[i]);
      queries_hist.add(result.queries[i]);
    }
    if (profile != nullptr && profile->duration_ns.size() == result.volume.size()) {
      for (std::size_t i = 0; i < profile->duration_ns.size(); ++i) {
        start_wall_us_hist.add(profile->duration_ns[i] / 1000);
        const int w = profile->worker[i];
        if (w >= 0 && w < static_cast<int>(worker_busy_ns.size())) {
          worker_busy_ns[static_cast<std::size_t>(w)] += profile->duration_ns[i];
          ++worker_starts[static_cast<std::size_t>(w)];
          workers_seen = std::max(workers_seen, w + 1);
        }
      }
    }
    if (profile != nullptr) {
      const auto seen = static_cast<int>(
          std::min(profile->worker_batches.size(), worker_batches.size()));
      for (int w = 0; w < seen; ++w) {
        worker_batches[static_cast<std::size_t>(w)] +=
            profile->worker_batches[static_cast<std::size_t>(w)];
        worker_batched_starts[static_cast<std::size_t>(w)] +=
            profile->worker_batched_starts[static_cast<std::size_t>(w)];
        worker_waves[static_cast<std::size_t>(w)] +=
            profile->worker_waves[static_cast<std::size_t>(w)];
        workers_seen = std::max(workers_seen, w + 1);
      }
    }
    if (tape != nullptr) {
      tape_max_bits = std::max(tape_max_bits, tape->max_bits_used_anywhere());
    }
  }

  void merge(const SweepMetrics& other);

  // JSON document (single object) — what `--metrics <path>` writes.
  std::string to_json(const std::string& tool) const;
  bool write_file(const std::string& path, const std::string& tool) const;
};

}  // namespace volcal::obs
