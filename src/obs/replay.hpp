// Trace replay — traces as a correctness oracle.
//
// replay_trace() re-executes a recorded ExecutionTrace against a fresh
// (untraced) Execution on the same instance and asserts, probe by probe,
// that the engine reveals exactly what the trace recorded: same discovered
// node, same identity, same degree, same BFS layer, same running volume —
// and the same final costs.  A drift anywhere (engine regression, instance
// mismatch, nondeterministic solver) is reported with the offending probe.
//
// For truncated executions the trace records the (node, port) of the probe
// that blew the budget; replay re-issues it and demands the same
// QueryBudgetExceeded.
#pragma once

#include <cstdint>
#include <string>

#include "obs/trace.hpp"

namespace volcal::obs {

struct ReplayReport {
  bool ok = true;
  std::string error;          // empty when ok
  std::int64_t probes = 0;    // events successfully replayed

  explicit operator bool() const { return ok; }
};

// `budget` must be the budget the trace was recorded under (0 = unlimited);
// it is needed to reproduce truncation faithfully.
ReplayReport replay_trace(GraphView g, const IdAssignment& ids, const ExecutionTrace& trace,
                          std::int64_t budget = 0);

// Replays every trace of a recorded sweep; stops at the first failure.
ReplayReport replay_sweep(GraphView g, const IdAssignment& ids,
                          const std::vector<ExecutionTrace>& traces, std::int64_t budget = 0);

}  // namespace volcal::obs
