#include "obs/replay.hpp"

#include <cinttypes>
#include <cstdio>

namespace volcal::obs {
namespace {

std::string probe_error(const ExecutionTrace& trace, std::size_t seq, const char* what,
                        std::int64_t expected, std::int64_t got) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "start %" PRId64 " probe %zu: %s mismatch (trace %" PRId64 ", replay %" PRId64
                ")",
                trace.start, seq, what, expected, got);
  return buf;
}

}  // namespace

ReplayReport replay_trace(GraphView g, const IdAssignment& ids, const ExecutionTrace& trace,
                          std::int64_t budget) {
  ReplayReport report;
  auto fail = [&](std::string message) {
    report.ok = false;
    report.error = std::move(message);
    return report;
  };
  if (!g.valid_node(trace.start)) return fail("trace start is not a node of this graph");
  Execution exec(g, ids, trace.start, budget);
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const TraceEvent& ev = trace.events[i];
    if (!exec.visited(ev.queried)) {
      return fail(probe_error(trace, i, "queried-node-not-visited", ev.queried, -1));
    }
    if (ev.port < 1 || ev.port > exec.degree(ev.queried)) {
      return fail(probe_error(trace, i, "port-out-of-range", ev.port, exec.degree(ev.queried)));
    }
    NodeIndex u = kNoNode;
    try {
      u = exec.query(ev.queried, ev.port);
    } catch (const QueryBudgetExceeded&) {
      return fail(probe_error(trace, i, "unexpected-truncation", ev.found, -1));
    }
    if (u != ev.found) return fail(probe_error(trace, i, "discovered-node", ev.found, u));
    if (exec.id(u) != ev.found_id) {
      return fail(probe_error(trace, i, "discovered-id",
                              static_cast<std::int64_t>(ev.found_id),
                              static_cast<std::int64_t>(exec.id(u))));
    }
    if (exec.degree(u) != ev.found_degree) {
      return fail(probe_error(trace, i, "discovered-degree", ev.found_degree, exec.degree(u)));
    }
    if (exec.layer_of(u) != ev.layer) {
      return fail(probe_error(trace, i, "bfs-layer", ev.layer, exec.layer_of(u)));
    }
    if (exec.volume() != ev.volume) {
      return fail(probe_error(trace, i, "running-volume", ev.volume, exec.volume()));
    }
    ++report.probes;
  }
  if (trace.truncated) {
    // The recorded execution's next probe blew the budget; ours must too.
    bool threw = false;
    try {
      exec.query(trace.truncated_at_node, trace.truncated_at_port);
    } catch (const QueryBudgetExceeded&) {
      threw = true;
    }
    if (!threw) {
      return fail(probe_error(trace, trace.events.size(), "expected-truncation",
                              trace.truncated_at_node, -1));
    }
  }
  if (exec.volume() != trace.final_volume) {
    return fail(probe_error(trace, trace.events.size(), "final-volume", trace.final_volume,
                            exec.volume()));
  }
  if (exec.distance() != trace.final_distance) {
    return fail(probe_error(trace, trace.events.size(), "final-distance",
                            trace.final_distance, exec.distance()));
  }
  const std::int64_t expected_queries =
      static_cast<std::int64_t>(trace.events.size()) + (trace.truncated ? 1 : 0);
  if (trace.query_count != expected_queries) {
    return fail(probe_error(trace, trace.events.size(), "query-count", trace.query_count,
                            expected_queries));
  }
  return report;
}

ReplayReport replay_sweep(GraphView g, const IdAssignment& ids,
                          const std::vector<ExecutionTrace>& traces, std::int64_t budget) {
  ReplayReport total;
  for (const ExecutionTrace& t : traces) {
    ReplayReport r = replay_trace(g, ids, t, budget);
    total.probes += r.probes;
    if (!r.ok) {
      total.ok = false;
      total.error = std::move(r.error);
      return total;
    }
  }
  return total;
}

}  // namespace volcal::obs
