// MetricsRegistry — lock-cheap named metrics for long-running processes.
//
// SweepMetrics (obs/metrics.hpp) aggregates *after* a sweep finishes; the
// serving regime needs counters that are cheap enough to bump on the query
// hot path and readable at any moment from another thread.  This header
// provides the three primitives and the registry that names them:
//
//   Counter    monotone int64, per-thread atomic shards summed on read — a
//              bump is one relaxed fetch_add on a shard the incrementing
//              thread (almost always) owns alone, so worker threads never
//              contend on a shared cache line.
//   Gauge      single atomic level (set/add) — queue depths, connection
//              counts; also registrable as a callback (gauge_fn) evaluated
//              at snapshot time for values owned elsewhere.
//   Histogram  the LogHistogram bucketing (bucket b = values with
//              bit_width(v) == b; bucket 0 holds v <= 0) with count/sum/
//              min/max, sharded like Counter and merged on read.
//
// Shard-merge determinism: every shard field is an order-independent
// reduction (sum, min, max), so a snapshot taken after N adds reads the
// same totals whether the adds came from 1 thread or 8 — asserted by
// tests/obs_registry_test.cpp.
//
// Snapshots are deterministic: metrics iterate in name order (std::map), so
// two snapshots of the same state render byte-identical JSON.  Registration
// (counter()/gauge()/histogram()) takes the registry mutex and is idempotent
// by name — callers register once and keep the stable handle; handles live
// as long as the registry.  The process-wide instance is global(); contexts
// needing isolated counters (one QueryService per test) own their own
// MetricsRegistry instead.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace volcal::obs {

namespace detail {

// Stable small index for the calling thread, handed out round-robin so the
// first kShards threads get exclusive shards and later ones wrap.
unsigned thread_shard_slot();

inline constexpr std::size_t kMetricShards = 16;

// Relaxed CAS min/max — shard collisions are rare (two threads sharing a
// slot), so the loop almost never retries.
inline void atomic_min(std::atomic<std::int64_t>& a, std::int64_t v) {
  std::int64_t cur = a.load(std::memory_order_relaxed);
  while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

inline void atomic_max(std::atomic<std::int64_t>& a, std::int64_t v) {
  std::int64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

class Counter {
 public:
  Counter() : slots_(std::make_unique<Slot[]>(detail::kMetricShards)) {}

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::int64_t delta = 1) {
    slots_[detail::thread_shard_slot() % detail::kMetricShards].v.fetch_add(
        delta, std::memory_order_relaxed);
  }

  std::int64_t value() const {
    std::int64_t total = 0;
    for (std::size_t s = 0; s < detail::kMetricShards; ++s) {
      total += slots_[s].v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::int64_t> v{0};
  };
  std::unique_ptr<Slot[]> slots_;
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Merged read of one Histogram: same bucketing as obs::LogHistogram
// (bucket_of(v) = bit_width(v), clamped to 0 for v <= 0).
struct HistogramSnapshot {
  std::array<std::int64_t, 64> buckets{};
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;

  // Nearest-rank quantile resolved to the upper bound of the holding bucket
  // (exact for bucket 0/1, a <= 2x overestimate above) — good enough for a
  // dashboard; exact percentiles come from sample vectors where they matter.
  std::int64_t approx_quantile(double q) const;

  friend bool operator==(const HistogramSnapshot&, const HistogramSnapshot&) = default;
};

class Histogram {
 public:
  Histogram() : slots_(std::make_unique<Slot[]>(detail::kMetricShards)) {}

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  static int bucket_of(std::int64_t v) {
    return v <= 0 ? 0 : std::bit_width(static_cast<std::uint64_t>(v));
  }

  void add(std::int64_t v) {
    Slot& slot = slots_[detail::thread_shard_slot() % detail::kMetricShards];
    slot.buckets[static_cast<std::size_t>(bucket_of(v))].fetch_add(
        1, std::memory_order_relaxed);
    slot.count.fetch_add(1, std::memory_order_relaxed);
    slot.sum.fetch_add(v, std::memory_order_relaxed);
    detail::atomic_min(slot.min, v);
    detail::atomic_max(slot.max, v);
  }

  HistogramSnapshot snapshot() const;

 private:
  struct alignas(64) Slot {
    std::array<std::atomic<std::int64_t>, 64> buckets{};
    std::atomic<std::int64_t> count{0};
    std::atomic<std::int64_t> sum{0};
    std::atomic<std::int64_t> min{INT64_MAX};
    std::atomic<std::int64_t> max{INT64_MIN};
  };
  std::unique_ptr<Slot[]> slots_;
};

// One deterministic read of a whole registry (metrics in name order, gauge
// callbacks evaluated at snapshot time).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  std::int64_t counter(const std::string& name, std::int64_t fallback = 0) const;
  std::int64_t gauge(const std::string& name, std::int64_t fallback = 0) const;

  // {"counters": {...}, "gauges": {...}, "histograms": {"name": {"count",
  // "min", "max", "sum", "buckets": {"<bucket>": n, ...}}, ...}} — bucket
  // keys are bucket indices, matching the SweepMetrics JSON convention.
  std::string to_json() const;
  void append_json(std::string& out) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Idempotent by name: the first call creates, later calls return the same
  // handle.  Handles stay valid for the registry's lifetime.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  // Callback gauge for a value owned elsewhere (queue depth, connection
  // count); evaluated under the registry mutex at snapshot time, so keep it
  // O(1) and never have it call back into this registry.  Re-registering a
  // name replaces the callback.
  void gauge_fn(const std::string& name, std::function<std::int64_t()> fn);

  MetricsSnapshot snapshot() const;

  // The process-wide registry (sweep-engine adoption folds here).
  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::function<std::int64_t()>> gauge_fns_;
};

}  // namespace volcal::obs
