#include "obs/registry.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace volcal::obs {

namespace detail {

unsigned thread_shard_slot() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace detail

std::int64_t HistogramSnapshot::approx_quantile(double q) const {
  if (count <= 0) return 0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the smallest rank covering fraction q of the samples.
  const auto rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(clamped * static_cast<double>(count))));
  std::int64_t cum = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cum += buckets[b];
    if (cum >= rank) {
      // Upper bound of bucket b: 0 for b == 0, else 2^b - 1.
      return b == 0 ? 0 : static_cast<std::int64_t>((std::uint64_t{1} << b) - 1);
    }
  }
  return max;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  for (std::size_t s = 0; s < detail::kMetricShards; ++s) {
    const Slot& slot = slots_[s];
    const std::int64_t n = slot.count.load(std::memory_order_relaxed);
    if (n == 0) continue;
    out.count += n;
    out.sum += slot.sum.load(std::memory_order_relaxed);
    out.min = out.count == n ? slot.min.load(std::memory_order_relaxed)
                             : std::min(out.min, slot.min.load(std::memory_order_relaxed));
    out.max = out.count == n ? slot.max.load(std::memory_order_relaxed)
                             : std::max(out.max, slot.max.load(std::memory_order_relaxed));
    for (std::size_t b = 0; b < out.buckets.size(); ++b) {
      out.buckets[b] += slot.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::int64_t MetricsSnapshot::counter(const std::string& name,
                                      std::int64_t fallback) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return fallback;
}

std::int64_t MetricsSnapshot::gauge(const std::string& name,
                                    std::int64_t fallback) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return fallback;
}

namespace {

// Metric names are code-chosen identifiers plus a family name; escape the
// JSON-special characters anyway so a hostile family name cannot break the
// document.
void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

template <typename T>
void append_scalar_map(std::string& out, const char* key,
                       const std::vector<std::pair<std::string, T>>& entries) {
  out += '"';
  out += key;
  out += "\": {";
  bool first = true;
  char buf[32];
  for (const auto& [name, value] : entries) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    append_escaped(out, name);
    out += "\": ";
    std::snprintf(buf, sizeof buf, "%" PRId64, static_cast<std::int64_t>(value));
    out += buf;
  }
  out += '}';
}

}  // namespace

void MetricsSnapshot::append_json(std::string& out) const {
  out += '{';
  append_scalar_map(out, "counters", counters);
  out += ", ";
  append_scalar_map(out, "gauges", gauges);
  out += ", \"histograms\": {";
  char buf[128];
  bool first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    append_escaped(out, name);
    std::snprintf(buf, sizeof buf,
                  "\": {\"count\": %" PRId64 ", \"min\": %" PRId64 ", \"max\": %" PRId64
                  ", \"sum\": %" PRId64 ", \"buckets\": {",
                  h.count, h.count > 0 ? h.min : 0, h.count > 0 ? h.max : 0, h.sum);
    out += buf;
    bool first_bucket = true;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      std::snprintf(buf, sizeof buf, "%s\"%zu\": %" PRId64,
                    first_bucket ? "" : ", ", b, h.buckets[b]);
      out += buf;
      first_bucket = false;
    }
    out += "}}";
  }
  out += "}}";
}

std::string MetricsSnapshot::to_json() const {
  std::string out;
  append_json(out);
  return out;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::gauge_fn(const std::string& name,
                               std::function<std::int64_t()> fn) {
  std::lock_guard lock(mu_);
  gauge_fns_[name] = std::move(fn);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard lock(mu_);
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.counters.emplace_back(name, c->value());
  // Owned gauges and callback gauges share one namespace in the snapshot; a
  // callback re-registered under an owned gauge's name wins (callbacks read
  // live state, which is the point of registering one).
  std::map<std::string, std::int64_t> gauges;
  for (const auto& [name, g] : gauges_) gauges[name] = g->value();
  for (const auto& [name, fn] : gauge_fns_) gauges[name] = fn ? fn() : 0;
  out.gauges.assign(gauges.begin(), gauges.end());
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.histograms.emplace_back(name, h->snapshot());
  }
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

}  // namespace volcal::obs
