#include "obs/trace.hpp"

#include <cinttypes>
#include <cstdio>

namespace volcal::obs {
namespace {

struct FileHandle {
  explicit FileHandle(const std::string& path) : f(std::fopen(path.c_str(), "w")) {
    if (f == nullptr) std::fprintf(stderr, "obs: cannot open %s for writing\n", path.c_str());
  }
  ~FileHandle() {
    if (f != nullptr) std::fclose(f);
  }
  FileHandle(const FileHandle&) = delete;
  FileHandle& operator=(const FileHandle&) = delete;

  std::FILE* f;
};

void escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  escape_into(out, s);
  return out;
}

}  // namespace

bool write_trace_jsonl(const std::string& path, std::span<const SweepTrace> sweeps) {
  FileHandle file(path);
  if (file.f == nullptr) return false;
  for (std::size_t s = 0; s < sweeps.size(); ++s) {
    const SweepTrace& sweep = sweeps[s];
    std::fprintf(file.f,
                 "{\"type\":\"sweep\",\"seq\":%zu,\"label\":\"%s\",\"n\":%" PRId64
                 ",\"plan\":\"%s\",\"starts\":%zu}\n",
                 s, escaped(sweep.label).c_str(), sweep.n, escaped(sweep.plan).c_str(),
                 sweep.traces.size());
    for (const ExecutionTrace& t : sweep.traces) {
      std::fprintf(file.f,
                   "{\"type\":\"exec\",\"sweep\":%zu,\"start\":%" PRId64
                   ",\"volume\":%" PRId64 ",\"distance\":%" PRId64 ",\"queries\":%" PRId64
                   ",\"truncated\":%s}\n",
                   s, t.start, t.final_volume, t.final_distance, t.query_count,
                   t.truncated ? "true" : "false");
      for (std::size_t e = 0; e < t.events.size(); ++e) {
        const TraceEvent& ev = t.events[e];
        std::fprintf(file.f,
                     "{\"type\":\"query\",\"sweep\":%zu,\"start\":%" PRId64
                     ",\"seq\":%zu,\"queried\":%" PRId64 ",\"port\":%d,\"found\":%" PRId64
                     ",\"found_id\":%" PRIu64 ",\"found_degree\":%d,\"layer\":%" PRId64
                     ",\"volume\":%" PRId64 "}\n",
                     s, t.start, e, ev.queried, ev.port, ev.found, ev.found_id,
                     ev.found_degree, ev.layer, ev.volume);
      }
    }
  }
  return true;
}

bool write_chrome_trace(const std::string& path, std::span<const SweepTrace> sweeps) {
  FileHandle file(path);
  if (file.f == nullptr) return false;
  std::fprintf(file.f, "{\"traceEvents\":[");
  bool first = true;
  // Sweeps without a profile are laid out sequentially on tid 0 with
  // synthetic 1us slots so the viewer still shows the probe structure.
  std::int64_t synthetic_us = 0;
  for (std::size_t s = 0; s < sweeps.size(); ++s) {
    const SweepTrace& sweep = sweeps[s];
    const bool profiled = sweep.profile.begin_ns.size() == sweep.traces.size();
    for (std::size_t i = 0; i < sweep.traces.size(); ++i) {
      const ExecutionTrace& t = sweep.traces[i];
      const double ts_us =
          profiled ? static_cast<double>(sweep.profile.begin_ns[i]) / 1000.0
                   : static_cast<double>(synthetic_us);
      const double dur_us =
          profiled ? static_cast<double>(sweep.profile.duration_ns[i]) / 1000.0 : 1.0;
      const int tid = profiled ? sweep.profile.worker[i] : 0;
      synthetic_us += 1;
      std::fprintf(file.f,
                   "%s{\"name\":\"start %" PRId64 "\",\"cat\":\"%s\",\"ph\":\"X\""
                   ",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%zu,\"tid\":%d,\"args\":{"
                   "\"volume\":%" PRId64 ",\"distance\":%" PRId64 ",\"queries\":%" PRId64
                   ",\"truncated\":%s}}",
                   first ? "" : ",", t.start, escaped(sweep.label).c_str(), ts_us, dur_us, s,
                   tid, t.final_volume, t.final_distance, t.query_count,
                   t.truncated ? "true" : "false");
      first = false;
    }
  }
  std::fprintf(file.f, "],\"displayTimeUnit\":\"ms\"}\n");
  return true;
}

}  // namespace volcal::obs
