// Execution tracing — the recording side of the BasicExecution sink hook.
//
// The query model's probe sequence is itself the object of study (which
// nodes an algorithm looks at, in which order, and what each probe reveals),
// so traces are first-class: a recorded ExecutionTrace is a complete,
// machine-checkable transcript of one execution, strong enough to *replay*
// against a fresh Execution and assert bit-identical behaviour
// (obs/replay.hpp) — a correctness oracle, not just a log.
//
// Event schema (one TraceEvent per successful query):
//   queried  w   — the previously visited node whose port was probed
//   port     j   — the probed port, 1-based
//   found    u   — the neighbor revealed by the probe
//   found_id     — u's globally unique identifier
//   found_degree — deg(u), part of what discovery reveals
//   layer        — u's BFS layer within the explored subgraph after the probe
//   volume       — running volume |V_v| after the probe
//
// Determinism: an execution is a pure function of (instance, start, budget,
// tape), so its trace is too.  TraceRecorder gives every start slot its own
// preassigned ExecutionTrace — workers write disjoint slots, hence a sweep's
// trace set is bit-identical at any thread count (asserted by
// tests/obs_test.cpp at 1 vs 8 threads).
//
// Exporters (trace.cpp): JSONL (one JSON object per line: sweep / exec /
// query records) and the Chrome trace_event format loadable in
// chrome://tracing or https://ui.perfetto.dev.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "runtime/parallel_runner.hpp"

namespace volcal::obs {

struct TraceEvent {
  NodeIndex queried = kNoNode;
  Port port = kNoPort;
  NodeIndex found = kNoNode;
  NodeId found_id = 0;
  int found_degree = 0;
  std::int64_t layer = 0;
  std::int64_t volume = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

// Transcript of one execution.  `truncated_at` holds the (node, port) of the
// query that blew the budget, so the replay oracle can re-provoke the
// exception; it is (kNoNode, kNoPort) for completed executions.
struct ExecutionTrace {
  NodeIndex start = kNoNode;
  std::vector<TraceEvent> events;
  std::int64_t final_volume = 0;
  std::int64_t final_distance = 0;
  std::int64_t query_count = 0;
  bool truncated = false;
  NodeIndex truncated_at_node = kNoNode;
  Port truncated_at_port = kNoPort;

  friend bool operator==(const ExecutionTrace&, const ExecutionTrace&) = default;
};

// Sink policy for BasicExecution: appends to an externally owned
// ExecutionTrace.  Thin handle, copied by value into the execution.
class RecordingSink {
 public:
  static constexpr bool enabled = true;

  explicit RecordingSink(ExecutionTrace* trace) : trace_(trace) {}

  void on_begin(GraphView, const IdAssignment&, NodeIndex start) {
    trace_->start = start;
    trace_->events.clear();
    trace_->truncated = false;
    trace_->truncated_at_node = kNoNode;
    trace_->truncated_at_port = kNoPort;
  }

  void on_query(GraphView g, const IdAssignment& ids, NodeIndex w, Port j, NodeIndex u,
                bool /*fresh*/, std::int64_t layer, std::int64_t volume) {
    trace_->events.push_back(
        {w, j, u, ids.id_of(u), g.degree(u), layer, volume});
  }

  void on_truncated(NodeIndex w, Port j) {
    trace_->truncated = true;
    trace_->truncated_at_node = w;
    trace_->truncated_at_port = j;
  }

  void on_end(std::int64_t volume, std::int64_t distance, std::int64_t queries) {
    trace_->final_volume = volume;
    trace_->final_distance = distance;
    trace_->query_count = queries;
  }

 private:
  ExecutionTrace* trace_;
};

// The recording execution type.  Solvers written generically (templated on
// the source/execution type, or generic lambdas) run unchanged on it; the
// sink only observes, it never alters query semantics.
using TracedExecution = BasicExecution<RecordingSink>;

// Preassigned per-start trace slots for one sweep — the same disjoint-slot
// determinism trick the runner uses for outputs.
class TraceRecorder {
 public:
  void reset(std::span<const NodeIndex> starts) {
    traces_.assign(starts.size(), ExecutionTrace{});
  }

  ExecutionTrace& slot(std::int64_t i) { return traces_[static_cast<std::size_t>(i)]; }
  const std::vector<ExecutionTrace>& traces() const { return traces_; }
  std::vector<ExecutionTrace>& traces() { return traces_; }

 private:
  std::vector<ExecutionTrace> traces_;
};

// Runs the identical sweep loop as ParallelRunner::run_at, but on
// TracedExecution with one trace slot per start.  The solver must be
// invocable with TracedExecution& (generic solvers are; see
// bench::measure for the dispatch).  Costs and outputs are bit-identical to
// the untraced sweep — tests/obs_test.cpp asserts it.
template <typename Solver>
auto run_at_traced(const ParallelRunner& runner, GraphView g, const IdAssignment& ids,
                   std::span<const NodeIndex> starts, Solver&& solver,
                   TraceRecorder& recorder, std::int64_t budget = 0,
                   RandomTape* tape = nullptr, SweepProfile* profile = nullptr) {
  recorder.reset(starts);
  return runner.run_at_observed(
      g.node_count(), starts, std::forward<Solver>(solver), tape, profile,
      [&g, &ids, starts, budget, &recorder](std::int64_t i, ExecutionScratch& s) {
        return TracedExecution(g, ids, starts[static_cast<std::size_t>(i)], budget, s,
                               RecordingSink(&recorder.slot(i)));
      });
}

// A recorded sweep bundled with its identity — what the exporters consume.
struct SweepTrace {
  std::string label;        // e.g. "bench_table1/leaf-coloring/det"
  std::int64_t n = 0;       // instance size
  // ProbePlan kind the sweep was dispatched with (plan_kind_name).  Traced
  // sweeps always *execute* per-start — a trace must contain every query —
  // but the plan identifies what the engine would batch.
  std::string plan = "independent-starts";
  std::vector<ExecutionTrace> traces;
  SweepProfile profile;     // empty vectors if profiling was off
};

// --- Exporters (obs/trace.cpp) ---------------------------------------------

// JSONL: one object per line.  Line types: {"type":"sweep",...} header per
// sweep, {"type":"exec",...} summary per execution, {"type":"query",...} per
// event.  Returns false (with a message on stderr) if the file cannot be
// written.
bool write_trace_jsonl(const std::string& path, std::span<const SweepTrace> sweeps);

// Chrome trace_event JSON ("X" duration events, one per execution, tid =
// worker).  Sweeps recorded without a profile get zero-duration events in
// slot order.  Load in chrome://tracing or ui.perfetto.dev.
bool write_chrome_trace(const std::string& path, std::span<const SweepTrace> sweeps);

}  // namespace volcal::obs
