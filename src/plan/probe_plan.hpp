// ProbePlan — the probe-plan IR between "what a family's sweep probes" and
// "how the engine executes it" (the plan → backend split).
//
// A whole-graph sweep is one probe pattern repeated from n starts, and for
// most of the paper's families that pattern is known *statically*: the
// BallCensus solver is exactly explore_ball(v, r) for a fixed r, so the
// engine does not need to re-discover the access pattern query by query.
// Each registry family declares a ProbePlan at registration time; the
// ParallelRunner dispatches on it (run_planned) and may hand batchable plans
// to the wave-synchronous BatchedExecution backend
// (runtime/batched_execution.hpp), which advances all starts of a worker's
// chunk level-by-level together and walks each node's adjacency once per
// wave instead of once per start — probe-level common-subexpression
// elimination across executions.
//
// Plan kinds:
//   IndependentStarts — no statically known structure; every start runs its
//                       own BasicExecution (the classic engine path).  The
//                       default, and always a correct fallback.
//   BatchedBall{r}    — the sweep's execution from v is explore_ball(v, r)
//                       and the output is the ball size |N_v(r)|.  The
//                       batched backend may fuse a chunk of starts into one
//                       multi-start BFS; per-start costs and outputs stay
//                       bit-identical to BasicExecution (the exactness
//                       argument lives in DESIGN.md "Probe plans and
//                       backends").
//   SharedFrontier{r} — reserved refinement of BatchedBall for the future
//                       SIMD/NUMA backend (ROADMAP): one fused frontier over
//                       the *whole* sweep instead of per-chunk batches.
//                       Executes as BatchedBall today; no registry family
//                       uses it yet.
//
// The backend knob is orthogonal: ExecBackend::Basic forces every plan down
// the per-start path (the ablation / differential baseline), Batched (the
// default) lets batchable plans use the batched backend.  VOLCAL_BACKEND
// selects it process-wide, the bench flag --backend exports it.
#pragma once

#include <cstdint>

namespace volcal {

enum class PlanKind { IndependentStarts, BatchedBall, SharedFrontier };

constexpr const char* plan_kind_name(PlanKind k) {
  switch (k) {
    case PlanKind::BatchedBall: return "batched-ball";
    case PlanKind::SharedFrontier: return "shared-frontier";
    default: return "independent-starts";
  }
}

struct ProbePlan {
  PlanKind kind = PlanKind::IndependentStarts;
  // Ball radius for BatchedBall / SharedFrontier; unused (0) otherwise.
  std::int64_t radius = 0;

  static constexpr ProbePlan independent() { return {}; }
  static constexpr ProbePlan batched_ball(std::int64_t radius) {
    return {PlanKind::BatchedBall, radius};
  }
  static constexpr ProbePlan shared_frontier(std::int64_t radius) {
    return {PlanKind::SharedFrontier, radius};
  }

  // Whether the batched backend can execute this plan at all.  Eligibility
  // of a concrete sweep is narrower (no query budget, not recording); the
  // runner checks that at dispatch time.
  constexpr bool batchable() const {
    return (kind == PlanKind::BatchedBall || kind == PlanKind::SharedFrontier) &&
           radius >= 0;
  }

  constexpr const char* name() const { return plan_kind_name(kind); }

  friend constexpr bool operator==(const ProbePlan&, const ProbePlan&) = default;
};

// Which execution backend a runner uses for plan-dispatched sweeps
// (run_planned).  Basic = always per-start BasicExecution; Batched = use the
// wave-synchronous multi-start backend whenever the plan and the sweep are
// eligible, per-start otherwise.  Plain run_at sweeps carry no plan and are
// unaffected by the knob.
enum class ExecBackend { Basic, Batched };

constexpr const char* backend_name(ExecBackend b) {
  return b == ExecBackend::Basic ? "basic" : "batched";
}

// "basic" | "batched" -> ExecBackend; false on anything else.
bool backend_from_name(const char* name, ExecBackend* out);

// VOLCAL_BACKEND environment default (what the bench flag --backend
// exports); Batched when unset or unparseable — the batched backend is
// bit-identical by contract, so it is safe to prefer.
ExecBackend backend_from_env();

}  // namespace volcal
