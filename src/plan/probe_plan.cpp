#include "plan/probe_plan.hpp"

#include <cstring>

#include "util/env.hpp"

namespace volcal {

bool backend_from_name(const char* name, ExecBackend* out) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "basic") == 0) {
    *out = ExecBackend::Basic;
    return true;
  }
  if (std::strcmp(name, "batched") == 0) {
    *out = ExecBackend::Batched;
    return true;
  }
  return false;
}

ExecBackend backend_from_env() {
  ExecBackend backend = ExecBackend::Batched;
  if (const auto name = env::raw("VOLCAL_BACKEND")) {
    if (!backend_from_name(name->c_str(), &backend)) {
      // Typos keep the (safe, bit-identical) default — but say so once:
      // `VOLCAL_BACKEND=basick` silently benchmarking the batched backend
      // invalidates an ablation.
      env::warn_invalid("VOLCAL_BACKEND", *name, "not one of basic|batched",
                        "backend batched");
    }
  }
  return backend;
}

}  // namespace volcal
