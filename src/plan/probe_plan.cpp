#include "plan/probe_plan.hpp"

#include <cstdlib>
#include <cstring>

namespace volcal {

bool backend_from_name(const char* name, ExecBackend* out) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "basic") == 0) {
    *out = ExecBackend::Basic;
    return true;
  }
  if (std::strcmp(name, "batched") == 0) {
    *out = ExecBackend::Batched;
    return true;
  }
  return false;
}

ExecBackend backend_from_env() {
  ExecBackend backend = ExecBackend::Batched;
  backend_from_name(std::getenv("VOLCAL_BACKEND"), &backend);
  return backend;
}

}  // namespace volcal
