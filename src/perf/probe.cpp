#include "perf/probe.hpp"

#include "plan/probe_plan.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace volcal::perf {

AllocCounters& alloc_counters() {
  static AllocCounters counters;
  return counters;
}

AllocStats alloc_snapshot() {
  const AllocCounters& c = alloc_counters();
  AllocStats s;
  s.allocs = c.allocs.load(std::memory_order_relaxed);
  s.frees = c.frees.load(std::memory_order_relaxed);
  s.bytes = c.bytes.load(std::memory_order_relaxed);
  s.peak_bytes = c.peak_bytes.load(std::memory_order_relaxed);
  return s;
}

bool alloc_hook_active() {
  return alloc_counters().hook_linked.load(std::memory_order_relaxed);
}

std::int64_t rss_high_water_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return usage.ru_maxrss / 1024;  // bytes on macOS
#else
  return usage.ru_maxrss;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

EnvFingerprint current_env(int threads) {
  EnvFingerprint env;
#if defined(VOLCAL_GIT_SHA)
  env.git_sha = VOLCAL_GIT_SHA;
#else
  env.git_sha = "unknown";
#endif
#if defined(__clang__)
  env.compiler = "clang " __clang_version__;
#elif defined(__GNUC__)
  env.compiler = "gcc " __VERSION__;
#else
  env.compiler = "unknown";
#endif
#if defined(VOLCAL_CXX_FLAGS)
  env.flags = VOLCAL_CXX_FLAGS;
#endif
#if defined(VOLCAL_BUILD_TYPE)
  env.build_type = VOLCAL_BUILD_TYPE;
#endif
#if defined(__linux__)
  env.os = "linux";
#elif defined(__APPLE__)
  env.os = "darwin";
#elif defined(_WIN32)
  env.os = "windows";
#else
  env.os = "unknown";
#endif
  env.threads = threads;
  env.backend = backend_name(backend_from_env());
  return env;
}

}  // namespace volcal::perf
