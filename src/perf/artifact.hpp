// The canonical benchmark telemetry artifact — ONE versioned JSON schema for
// every perf number this repo produces, emitted by all bench binaries
// (--json), by the tools/volcal_bench orchestrator (BENCH_<family>.json +
// BENCH_SUMMARY.json), and consumed by tools/volcal_bench_diff and the CI
// perf gate.
//
// Schema v2, one JSON object per artifact:
//
//   {
//     "schema_version": 2,
//     "kind": "bench-report" | "bench-family" | "bench-summary",
//     "tool": "...",                      // emitting binary
//     "family": "...", "title": "...",    // bench-family only: registry
//     "theta": "...", "algorithm": "...", //   metadata (Θ-claims included)
//     "env": {"git_sha", "compiler", "flags", "build_type", "os", "threads",
//             "backend"},                      // v2: plan execution backend
//     "curves": [{"name", "claim", "fitted", "exponent", "r_squared",
//                 "points": [{"n", "cost", "wall_seconds"}, ...]}, ...],
//     "phases": [{"name", "wall_seconds"}, ...],
//     "cache": {"policy", "hits", "misses", "evictions",   // v2: view-cache
//               "served_nodes", "inserted_bytes"},         //   counters
//     "serve": {"accepted", "completed", "shed", "invalid", "swaps",
//               "latency_samples", "p50_ns", "p95_ns", "p99_ns", "mean_ns",
//               "max_ns", "qps", "wall_seconds",   // optional: query-service
//               "shed_latency_samples",            //   runs (volcal_serve /
//               "shed_p50_ns", "shed_p95_ns",      //   volcal_load) only;
//               "shed_p99_ns", "retries",          //   shed_* / retr* fields
//               "retry_compliant"},                //   additive (default 0)
//     "mutate": {"updates", "applied", "rejected",    // optional: dynamic-
//                "cache_evicted", "cache_retained",   //   graph runs only
//                "flushes", "update_p50_ns",          //   (volcal_load
//                "update_p95_ns", "update_p99_ns",    //   --update-rate,
//                "apply_p50_ns"},                     //   churn ablation)
//     "alloc": {"instrumented", "allocs", "frees", "bytes", "peak_bytes"},
//     "rss_high_water_kb": N,
//     "total_wall_seconds": S,
//     "families": [...]                   // bench-summary only: embedded
//   }                                     //   bench-family artifacts
//
// v1 artifacts (no "cache" block) still load — the reader defaults the
// counters to zero with policy "off", which is exactly what a v1-era run
// measured.
//
// Determinism contract: "n", "cost", "fitted", "exponent", "r_squared" and
// the curve/point ordering are pure functions of the code (the sweep engine
// is bit-identical at any thread count), so the diff tool treats any drift
// in them as a hard regression.  Everything else — wall times, env, alloc,
// RSS, cache counters — is measurement, compared with tolerance or reported
// only.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "perf/json.hpp"
#include "perf/probe.hpp"
#include "runtime/sweep_stats.hpp"
#include "stats/growth.hpp"

namespace volcal::perf {

inline constexpr int kArtifactSchemaVersion = 2;
// Oldest artifact version the readers still accept (v1 = pre-view-cache).
inline constexpr int kMinArtifactSchemaVersion = 1;

struct CurvePoint {
  double n = 0.0;
  double cost = 0.0;
  double wall_seconds = 0.0;

  friend bool operator==(const CurvePoint&, const CurvePoint&) = default;
};

struct ArtifactCurve {
  std::string name;
  std::string claim;   // the paper's Θ-claim for this curve, "" when n/a
  std::string fitted;  // growth label, "(n/a)" below 3 points
  double exponent = 0.0;
  double r_squared = 0.0;
  std::vector<CurvePoint> points;

  // Total measured wall time across points (the diff tool's per-curve
  // attribution unit).
  double wall_seconds() const {
    double t = 0.0;
    for (const CurvePoint& p : points) t += p.wall_seconds;
    return t;
  }

  // Fills fitted/exponent/r_squared from the points via
  // stats::classify_growth; below 3 points the fit is marked "(n/a)".
  void refit();
};

// Query-service telemetry (tools/volcal_serve server-side, tools/volcal_load
// client-side): request counters, nearest-rank latency percentiles in
// nanoseconds, and sustained throughput.  Optional and additive within
// schema v2 — artifacts without the block load with has_value() == false.
struct ServeStatsBlock {
  std::int64_t accepted = 0;
  std::int64_t completed = 0;
  std::int64_t shed = 0;
  std::int64_t invalid = 0;
  std::int64_t swaps = 0;
  std::int64_t latency_samples = 0;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double p99_ns = 0.0;
  double mean_ns = 0.0;
  double max_ns = 0.0;
  double qps = 0.0;           // completed / wall_seconds
  double wall_seconds = 0.0;  // measured serving window
  // Client-side shed accounting (volcal_load): shed round-trips are timed
  // separately so the query percentiles above stay pure, and retried sheds
  // record whether the client honored the advertised retry_after_ms.
  std::int64_t shed_latency_samples = 0;
  double shed_p50_ns = 0.0;
  double shed_p95_ns = 0.0;
  double shed_p99_ns = 0.0;
  std::int64_t retries = 0;          // shed requests re-submitted
  std::int64_t retry_compliant = 0;  // retries waiting >= retry_after_ms

  friend bool operator==(const ServeStatsBlock&, const ServeStatsBlock&) = default;
};

// Dynamic-graph telemetry (volcal_load --update-rate client-side, the churn
// ablation bench-side): update counts, the region-invalidation eviction /
// retention totals reported by UpdateResult frames, and client-observed
// update round-trip / server-reported apply-time percentiles in nanoseconds.
// Optional and additive within schema v2, exactly like the serve block.
struct MutateStatsBlock {
  std::int64_t updates = 0;         // update requests issued
  std::int64_t applied = 0;         // acknowledged Ok
  std::int64_t rejected = 0;        // acknowledged Invalid
  std::int64_t cache_evicted = 0;   // summed over UpdateResult frames
  std::int64_t cache_retained = 0;
  std::int64_t flushes = 0;         // region invalidations that fell back
  double update_p50_ns = 0.0;       // client round-trip
  double update_p95_ns = 0.0;
  double update_p99_ns = 0.0;
  double apply_p50_ns = 0.0;        // server-side apply_mutations time

  friend bool operator==(const MutateStatsBlock&, const MutateStatsBlock&) = default;
};

struct BenchArtifact {
  int schema_version = kArtifactSchemaVersion;
  std::string kind = "bench-report";
  std::string tool;
  // Registry metadata — populated for kind == "bench-family".
  std::string family;
  std::string title;
  std::string theta;
  std::string algorithm;

  EnvFingerprint env;
  std::vector<ArtifactCurve> curves;
  std::vector<PhaseTimer::Phase> phases;
  // View-cache counters accumulated over the tool's measured sweeps (schema
  // v2; zeros with policy Off for v1 artifacts and cache-less runs).
  CacheStats cache;
  // Query-service block — present only for serve/load runs.
  std::optional<ServeStatsBlock> serve;
  // Dynamic-graph block — present only for mixed update/query runs.
  std::optional<MutateStatsBlock> mutate;
  AllocStats alloc;
  bool alloc_instrumented = false;
  std::int64_t rss_high_water_kb = 0;
  double total_wall_seconds = 0.0;

  const ArtifactCurve* find_curve(const std::string& name) const;

  // Samples env/alloc/RSS probes into the artifact.  `alloc_base` subtracts
  // a snapshot taken before the measured section (per-family deltas in the
  // orchestrator); pass a default AllocStats for process totals.
  void stamp_probes(int threads, const AllocStats& alloc_base = {});

  std::string to_json() const;
  bool write_file(const std::string& path) const;

  static std::optional<BenchArtifact> from_json(const JsonValue& doc, std::string* err);
  static std::optional<BenchArtifact> load(const std::string& path, std::string* err);
};

struct BenchSummary {
  int schema_version = kArtifactSchemaVersion;
  std::string tool;
  EnvFingerprint env;
  std::vector<BenchArtifact> families;
  double total_wall_seconds = 0.0;

  std::string to_json() const;
  bool write_file(const std::string& path) const;

  static std::optional<BenchSummary> load(const std::string& path, std::string* err);
};

// JSON string escaping shared by every perf writer (same contract as
// bench::json_escape; duplicated here so the library does not depend on
// bench/ headers).
std::string json_escape(const std::string& s);

}  // namespace volcal::perf
