// Noise-aware comparison of benchmark telemetry artifacts — the policy
// behind tools/volcal_bench_diff and the CI perf gate.
//
// Two classes of fields, two policies:
//
//   * Deterministic fields — curve point counts, n values, costs, fitted
//     growth labels (and exponent/r² up to a tiny float epsilon, since they
//     are recomputed from identical integer costs) — are pure functions of
//     the code: the sweep engine is bit-identical at any thread count and
//     every generator is seeded.  ANY drift is a hard failure; there is no
//     such thing as cost-curve noise in this repo.
//
//   * Wall-clock fields — per-artifact total, per-phase, per-point — are
//     measurement.  The gate compares the artifact total against a
//     configurable tolerance (default 10% slower) and, when it trips,
//     attributes the regression: which curves and which phases absorbed the
//     extra time.  `ignore_wall` drops the wall gate entirely (what CI uses:
//     shared runners cannot hold a 10% bound honestly).
//
// Env fingerprints are reported when they differ but never gate — baselines
// are expected to come from another machine and commit.
#pragma once

#include <string>
#include <vector>

#include "perf/artifact.hpp"

namespace volcal::perf {

struct DiffOptions {
  double wall_tolerance = 0.10;  // candidate total wall may exceed base by 10%
  bool ignore_wall = false;      // skip the wall gate (cost curves still hard)
  double fit_epsilon = 1e-6;     // |Δexponent|, |Δr²| allowed for identical costs
  // Wall totals below this are never gated: at sub-millisecond scale the
  // scheduler owns the number, not the code.
  double wall_floor_seconds = 0.005;
};

struct DiffFinding {
  enum class Severity { Hard, Wall, Note };
  Severity severity = Severity::Note;
  std::string artifact;  // family or tool name
  std::string what;

  bool fails(const DiffOptions& opt) const {
    if (severity == Severity::Hard) return true;
    return severity == Severity::Wall && !opt.ignore_wall;
  }
};

struct DiffResult {
  std::vector<DiffFinding> findings;
  DiffOptions options;

  bool ok() const {
    for (const DiffFinding& f : findings) {
      if (f.fails(options)) return false;
    }
    return true;
  }
  // Human-readable report, one line per finding plus a verdict line.
  std::string render() const;
};

// Compares one artifact pair (matched by caller).
void diff_artifact(const BenchArtifact& base, const BenchArtifact& cand,
                   const DiffOptions& opt, DiffResult& out);

// Compares two artifact sets matched by family (falling back to tool name
// for bench-report artifacts).  A family present in the baseline but missing
// from the candidate is a hard failure; a new candidate family is a note.
DiffResult diff_artifact_sets(const std::vector<BenchArtifact>& base,
                              const std::vector<BenchArtifact>& cand,
                              const DiffOptions& opt);

}  // namespace volcal::perf
