#include "perf/artifact.hpp"

#include <cinttypes>
#include <cstdio>

#include "runtime/view_cache.hpp"

namespace volcal::perf {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes (Θ, …) pass through untouched
        }
    }
  }
  return out;
}

void ArtifactCurve::refit() {
  fitted = "(n/a)";
  exponent = 0.0;
  r_squared = 0.0;
  if (points.size() < 3) return;
  std::vector<double> ns, costs;
  ns.reserve(points.size());
  costs.reserve(points.size());
  for (const CurvePoint& p : points) {
    if (p.n <= 0.0 || p.cost <= 0.0) return;  // classify_growth precondition
    ns.push_back(p.n);
    costs.push_back(p.cost);
  }
  for (std::size_t i = 1; i < ns.size(); ++i) {
    if (ns[i] <= ns[i - 1]) return;  // strictly increasing n required
  }
  const stats::GrowthFit fit = stats::classify_growth(ns, costs);
  fitted = fit.label;
  exponent = fit.exponent;
  r_squared = fit.r_squared;
}

const ArtifactCurve* BenchArtifact::find_curve(const std::string& name) const {
  for (const ArtifactCurve& c : curves) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

void BenchArtifact::stamp_probes(int threads, const AllocStats& alloc_base) {
  env = current_env(threads);
  alloc = alloc_snapshot() - alloc_base;
  alloc_instrumented = alloc_hook_active();
  rss_high_water_kb = perf::rss_high_water_kb();
}

namespace {

void append_env(std::string& out, const EnvFingerprint& env) {
  out += "\"env\": {\"git_sha\": \"" + json_escape(env.git_sha) + "\", \"compiler\": \"" +
         json_escape(env.compiler) + "\", \"flags\": \"" + json_escape(env.flags) +
         "\", \"build_type\": \"" + json_escape(env.build_type) + "\", \"os\": \"" +
         json_escape(env.os) + "\", \"threads\": " + std::to_string(env.threads) +
         ", \"backend\": \"" + json_escape(env.backend) + "\"}";
}

void append_curve(std::string& out, const ArtifactCurve& c) {
  char buf[192];
  out += "{\"name\": \"" + json_escape(c.name) + "\", \"claim\": \"" +
         json_escape(c.claim) + "\", \"fitted\": \"" + json_escape(c.fitted) + "\", ";
  std::snprintf(buf, sizeof buf, "\"exponent\": %.17g, \"r_squared\": %.17g, \"points\": [",
                c.exponent, c.r_squared);
  out += buf;
  for (std::size_t i = 0; i < c.points.size(); ++i) {
    const CurvePoint& p = c.points[i];
    std::snprintf(buf, sizeof buf, "%s{\"n\": %.17g, \"cost\": %.17g, \"wall_seconds\": %.6g}",
                  i ? ", " : "", p.n, p.cost, p.wall_seconds);
    out += buf;
  }
  out += "]}";
}

void append_body(std::string& out, const BenchArtifact& a) {
  char buf[256];
  out += "\"schema_version\": " + std::to_string(a.schema_version) + ", \"kind\": \"" +
         json_escape(a.kind) + "\", \"tool\": \"" + json_escape(a.tool) + "\", ";
  if (a.kind == "bench-family") {
    out += "\"family\": \"" + json_escape(a.family) + "\", \"title\": \"" +
           json_escape(a.title) + "\", \"theta\": \"" + json_escape(a.theta) +
           "\", \"algorithm\": \"" + json_escape(a.algorithm) + "\", ";
  }
  append_env(out, a.env);
  out += ", \"curves\": [";
  for (std::size_t i = 0; i < a.curves.size(); ++i) {
    if (i) out += ", ";
    append_curve(out, a.curves[i]);
  }
  out += "], \"phases\": [";
  for (std::size_t i = 0; i < a.phases.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%s{\"name\": \"%s\", \"wall_seconds\": %.6g}",
                  i ? ", " : "", json_escape(a.phases[i].name).c_str(),
                  a.phases[i].wall_seconds);
    out += buf;
  }
  std::snprintf(buf, sizeof buf,
                "], \"cache\": {\"policy\": \"%s\", \"hits\": %" PRId64
                ", \"misses\": %" PRId64 ", \"evictions\": %" PRId64
                ", \"served_nodes\": %" PRId64 ", \"inserted_bytes\": %" PRId64 "}",
                cache_policy_name(a.cache.policy), a.cache.hits, a.cache.misses,
                a.cache.evictions, a.cache.served_nodes, a.cache.inserted_bytes);
  out += buf;
  if (a.serve.has_value()) {
    const ServeStatsBlock& s = *a.serve;
    char sbuf[768];
    std::snprintf(sbuf, sizeof sbuf,
                  ", \"serve\": {\"accepted\": %" PRId64 ", \"completed\": %" PRId64
                  ", \"shed\": %" PRId64 ", \"invalid\": %" PRId64
                  ", \"swaps\": %" PRId64 ", \"latency_samples\": %" PRId64
                  ", \"p50_ns\": %.17g, \"p95_ns\": %.17g, \"p99_ns\": %.17g"
                  ", \"mean_ns\": %.17g, \"max_ns\": %.17g, \"qps\": %.17g"
                  ", \"wall_seconds\": %.6g"
                  ", \"shed_latency_samples\": %" PRId64
                  ", \"shed_p50_ns\": %.17g, \"shed_p95_ns\": %.17g"
                  ", \"shed_p99_ns\": %.17g, \"retries\": %" PRId64
                  ", \"retry_compliant\": %" PRId64 "}",
                  s.accepted, s.completed, s.shed, s.invalid, s.swaps,
                  s.latency_samples, s.p50_ns, s.p95_ns, s.p99_ns, s.mean_ns,
                  s.max_ns, s.qps, s.wall_seconds, s.shed_latency_samples,
                  s.shed_p50_ns, s.shed_p95_ns, s.shed_p99_ns, s.retries,
                  s.retry_compliant);
    out += sbuf;
  }
  if (a.mutate.has_value()) {
    const MutateStatsBlock& m = *a.mutate;
    char mbuf[512];
    std::snprintf(mbuf, sizeof mbuf,
                  ", \"mutate\": {\"updates\": %" PRId64 ", \"applied\": %" PRId64
                  ", \"rejected\": %" PRId64 ", \"cache_evicted\": %" PRId64
                  ", \"cache_retained\": %" PRId64 ", \"flushes\": %" PRId64
                  ", \"update_p50_ns\": %.17g, \"update_p95_ns\": %.17g"
                  ", \"update_p99_ns\": %.17g, \"apply_p50_ns\": %.17g}",
                  m.updates, m.applied, m.rejected, m.cache_evicted,
                  m.cache_retained, m.flushes, m.update_p50_ns, m.update_p95_ns,
                  m.update_p99_ns, m.apply_p50_ns);
    out += mbuf;
  }
  std::snprintf(buf, sizeof buf,
                ", \"alloc\": {\"instrumented\": %s, \"allocs\": %" PRIu64
                ", \"frees\": %" PRIu64 ", \"bytes\": %" PRIu64 ", \"peak_bytes\": %" PRIu64
                "}, \"rss_high_water_kb\": %" PRId64 ", \"total_wall_seconds\": %.6g",
                a.alloc_instrumented ? "true" : "false", a.alloc.allocs, a.alloc.frees,
                a.alloc.bytes, a.alloc.peak_bytes, a.rss_high_water_kb,
                a.total_wall_seconds);
  out += buf;
}

bool write_text(const std::string& path, const std::string& doc) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf: cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  return true;
}

EnvFingerprint env_from_json(const JsonValue& v) {
  EnvFingerprint env;
  env.git_sha = v.string_at("git_sha");
  env.compiler = v.string_at("compiler");
  env.flags = v.string_at("flags");
  env.build_type = v.string_at("build_type");
  env.os = v.string_at("os");
  env.threads = static_cast<int>(v.int_at("threads", 1));
  // Pre-backend artifacts (through PR 5) predate the plan layer: every sweep
  // ran per-start, so the tolerant default is "basic".
  env.backend = v.string_at("backend", "basic");
  return env;
}

}  // namespace

std::string BenchArtifact::to_json() const {
  std::string out = "{";
  append_body(out, *this);
  out += "}\n";
  return out;
}

bool BenchArtifact::write_file(const std::string& path) const {
  return write_text(path, to_json());
}

std::optional<BenchArtifact> BenchArtifact::from_json(const JsonValue& doc,
                                                      std::string* err) {
  auto fail = [&](const std::string& why) -> std::optional<BenchArtifact> {
    if (err != nullptr) *err = why;
    return std::nullopt;
  };
  if (!doc.is_object()) return fail("artifact is not a JSON object");
  if (!doc.has("schema_version")) return fail("missing schema_version");
  BenchArtifact a;
  a.schema_version = static_cast<int>(doc.int_at("schema_version"));
  if (a.schema_version < kMinArtifactSchemaVersion ||
      a.schema_version > kArtifactSchemaVersion) {
    return fail("unsupported schema_version " + std::to_string(a.schema_version));
  }
  a.kind = doc.string_at("kind");
  if (a.kind != "bench-report" && a.kind != "bench-family") {
    return fail("unexpected kind '" + a.kind + "'");
  }
  a.tool = doc.string_at("tool");
  a.family = doc.string_at("family");
  a.title = doc.string_at("title");
  a.theta = doc.string_at("theta");
  a.algorithm = doc.string_at("algorithm");
  if (const JsonValue* env = doc.find("env")) a.env = env_from_json(*env);
  const JsonValue* curves = doc.find("curves");
  if (curves == nullptr || !curves->is_array()) return fail("missing curves array");
  for (const JsonValue& cv : curves->items()) {
    ArtifactCurve c;
    c.name = cv.string_at("name");
    c.claim = cv.string_at("claim");
    c.fitted = cv.string_at("fitted");
    c.exponent = cv.number_at("exponent");
    c.r_squared = cv.number_at("r_squared");
    const JsonValue* pts = cv.find("points");
    if (pts == nullptr || !pts->is_array()) {
      return fail("curve '" + c.name + "' missing points array");
    }
    for (const JsonValue& pv : pts->items()) {
      c.points.push_back(
          {pv.number_at("n"), pv.number_at("cost"), pv.number_at("wall_seconds")});
    }
    a.curves.push_back(std::move(c));
  }
  if (const JsonValue* phases = doc.find("phases"); phases != nullptr && phases->is_array()) {
    for (const JsonValue& pv : phases->items()) {
      a.phases.push_back({pv.string_at("name"), pv.number_at("wall_seconds")});
    }
  }
  // Absent in v1 artifacts: the defaults (zeros, policy Off) are correct.
  if (const JsonValue* cache = doc.find("cache")) {
    CachePolicy policy = CachePolicy::Off;
    CacheConfig::policy_from_name(cache->string_at("policy").c_str(), &policy);
    a.cache.policy = policy;
    a.cache.hits = cache->int_at("hits");
    a.cache.misses = cache->int_at("misses");
    a.cache.evictions = cache->int_at("evictions");
    a.cache.served_nodes = cache->int_at("served_nodes");
    a.cache.inserted_bytes = cache->int_at("inserted_bytes");
  }
  if (const JsonValue* serve = doc.find("serve")) {
    ServeStatsBlock s;
    s.accepted = serve->int_at("accepted");
    s.completed = serve->int_at("completed");
    s.shed = serve->int_at("shed");
    s.invalid = serve->int_at("invalid");
    s.swaps = serve->int_at("swaps");
    s.latency_samples = serve->int_at("latency_samples");
    s.p50_ns = serve->number_at("p50_ns");
    s.p95_ns = serve->number_at("p95_ns");
    s.p99_ns = serve->number_at("p99_ns");
    s.mean_ns = serve->number_at("mean_ns");
    s.max_ns = serve->number_at("max_ns");
    s.qps = serve->number_at("qps");
    s.wall_seconds = serve->number_at("wall_seconds");
    // Additive shed/retry fields (absent in pre-observability artifacts).
    s.shed_latency_samples = serve->int_at("shed_latency_samples");
    s.shed_p50_ns = serve->number_at("shed_p50_ns");
    s.shed_p95_ns = serve->number_at("shed_p95_ns");
    s.shed_p99_ns = serve->number_at("shed_p99_ns");
    s.retries = serve->int_at("retries");
    s.retry_compliant = serve->int_at("retry_compliant");
    a.serve = s;
  }
  if (const JsonValue* mutate = doc.find("mutate")) {
    MutateStatsBlock m;
    m.updates = mutate->int_at("updates");
    m.applied = mutate->int_at("applied");
    m.rejected = mutate->int_at("rejected");
    m.cache_evicted = mutate->int_at("cache_evicted");
    m.cache_retained = mutate->int_at("cache_retained");
    m.flushes = mutate->int_at("flushes");
    m.update_p50_ns = mutate->number_at("update_p50_ns");
    m.update_p95_ns = mutate->number_at("update_p95_ns");
    m.update_p99_ns = mutate->number_at("update_p99_ns");
    m.apply_p50_ns = mutate->number_at("apply_p50_ns");
    a.mutate = m;
  }
  if (const JsonValue* alloc = doc.find("alloc")) {
    a.alloc_instrumented = alloc->find("instrumented") != nullptr &&
                           alloc->find("instrumented")->as_bool();
    a.alloc.allocs = static_cast<std::uint64_t>(alloc->int_at("allocs"));
    a.alloc.frees = static_cast<std::uint64_t>(alloc->int_at("frees"));
    a.alloc.bytes = static_cast<std::uint64_t>(alloc->int_at("bytes"));
    a.alloc.peak_bytes = static_cast<std::uint64_t>(alloc->int_at("peak_bytes"));
  }
  a.rss_high_water_kb = doc.int_at("rss_high_water_kb");
  a.total_wall_seconds = doc.number_at("total_wall_seconds");
  return a;
}

std::optional<BenchArtifact> BenchArtifact::load(const std::string& path,
                                                 std::string* err) {
  std::string parse_err;
  JsonValue doc = parse_json_file(path, &parse_err);
  if (doc.is_null()) {
    if (err != nullptr) *err = parse_err.empty() ? path + ": unreadable" : parse_err;
    return std::nullopt;
  }
  std::string why;
  auto a = from_json(doc, &why);
  if (!a.has_value() && err != nullptr) *err = path + ": " + why;
  return a;
}

std::string BenchSummary::to_json() const {
  std::string out = "{\"schema_version\": " + std::to_string(schema_version) +
                    ", \"kind\": \"bench-summary\", \"tool\": \"" + json_escape(tool) +
                    "\", ";
  append_env(out, env);
  char buf[64];
  std::snprintf(buf, sizeof buf, ", \"total_wall_seconds\": %.6g", total_wall_seconds);
  out += buf;
  out += ", \"families\": [";
  for (std::size_t i = 0; i < families.size(); ++i) {
    if (i) out += ", ";
    out += "{";
    append_body(out, families[i]);
    out += "}";
  }
  out += "]}\n";
  return out;
}

bool BenchSummary::write_file(const std::string& path) const {
  return write_text(path, to_json());
}

std::optional<BenchSummary> BenchSummary::load(const std::string& path, std::string* err) {
  std::string parse_err;
  JsonValue doc = parse_json_file(path, &parse_err);
  auto fail = [&](const std::string& why) -> std::optional<BenchSummary> {
    if (err != nullptr) *err = path + ": " + why;
    return std::nullopt;
  };
  if (doc.is_null()) return fail(parse_err.empty() ? "unreadable" : parse_err);
  if (doc.string_at("kind") != "bench-summary") return fail("not a bench-summary artifact");
  BenchSummary s;
  s.schema_version = static_cast<int>(doc.int_at("schema_version"));
  if (s.schema_version < kMinArtifactSchemaVersion ||
      s.schema_version > kArtifactSchemaVersion) {
    return fail("unsupported schema_version " + std::to_string(s.schema_version));
  }
  s.tool = doc.string_at("tool");
  if (const JsonValue* env = doc.find("env")) s.env = env_from_json(*env);
  s.total_wall_seconds = doc.number_at("total_wall_seconds");
  const JsonValue* families = doc.find("families");
  if (families == nullptr || !families->is_array()) return fail("missing families array");
  for (const JsonValue& fv : families->items()) {
    std::string why;
    auto a = BenchArtifact::from_json(fv, &why);
    if (!a.has_value()) return fail("embedded family: " + why);
    s.families.push_back(std::move(*a));
  }
  return s;
}

}  // namespace volcal::perf
