#include "perf/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace volcal::perf {

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array() {
  JsonValue v;
  v.kind_ = Kind::Array;
  return v;
}

JsonValue JsonValue::make_object() {
  JsonValue v;
  v.kind_ = Kind::Object;
  return v;
}

bool JsonValue::as_bool(bool fallback) const {
  return kind_ == Kind::Bool ? bool_ : fallback;
}

double JsonValue::as_number(double fallback) const {
  return kind_ == Kind::Number ? number_ : fallback;
}

std::int64_t JsonValue::as_int(std::int64_t fallback) const {
  return kind_ == Kind::Number ? static_cast<std::int64_t>(number_) : fallback;
}

const std::string& JsonValue::as_string() const {
  static const std::string empty;
  return kind_ == Kind::String ? string_ : empty;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::number_at(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr ? v->as_number(fallback) : fallback;
}

std::int64_t JsonValue::int_at(const std::string& key, std::int64_t fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr ? v->as_int(fallback) : fallback;
}

std::string JsonValue::string_at(const std::string& key, const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

void JsonValue::set(std::string key, JsonValue v) {
  kind_ = Kind::Object;
  for (auto& [k, old] : members_) {
    if (k == key) {
      old = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* err) : text_(text), err_(err) {}

  JsonValue run() {
    JsonValue v = value();
    if (!failed_) {
      skip_ws();
      if (pos_ != text_.size()) fail("trailing characters after document");
    }
    return failed_ ? JsonValue() : v;
  }

 private:
  void fail(const char* why) {
    if (!failed_ && err_ != nullptr) {
      *err_ = "byte offset " + std::to_string(pos_) + ": " + why;
    }
    failed_ = true;
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return {};
    }
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return JsonValue::make_string(string());
    if (c == 't') {
      if (!literal("true")) fail("bad literal");
      return JsonValue::make_bool(true);
    }
    if (c == 'f') {
      if (!literal("false")) fail("bad literal");
      return JsonValue::make_bool(false);
    }
    if (c == 'n') {
      if (!literal("null")) fail("bad literal");
      return JsonValue::make_null();
    }
    return number();
  }

  JsonValue number() {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double d = std::strtod(begin, &end);
    if (end == begin) {
      fail("expected a value");
      return {};
    }
    pos_ += static_cast<std::size_t>(end - begin);
    return JsonValue::make_number(d);
  }

  std::string string() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return out;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else {
              fail("bad \\u escape");
              return out;
            }
          }
          // Encode the code point as UTF-8 (BMP only — the exporters never
          // write surrogate pairs; the escapes they emit are control chars).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          fail("unknown escape");
          return out;
      }
    }
    fail("unterminated string");
    return out;
  }

  JsonValue array() {
    ++pos_;  // '['
    JsonValue arr = JsonValue::make_array();
    skip_ws();
    if (consume(']')) return arr;
    while (!failed_) {
      arr.push_back(value());
      if (consume(']')) return arr;
      if (!consume(',')) {
        fail("expected ',' or ']' in array");
        return arr;
      }
    }
    return arr;
  }

  JsonValue object() {
    ++pos_;  // '{'
    JsonValue obj = JsonValue::make_object();
    skip_ws();
    if (consume('}')) return obj;
    while (!failed_) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected object key");
        return obj;
      }
      std::string key = string();
      if (!consume(':')) {
        fail("expected ':' after object key");
        return obj;
      }
      obj.set(std::move(key), value());
      if (consume('}')) return obj;
      if (!consume(',')) {
        fail("expected ',' or '}' in object");
        return obj;
      }
    }
    return obj;
  }

  const std::string& text_;
  std::string* err_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace

JsonValue parse_json(const std::string& text, std::string* err) {
  return Parser(text, err).run();
}

JsonValue parse_json_file(const std::string& path, std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (err != nullptr) *err = path + ": cannot open";
    return {};
  }
  std::string text;
  char buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
  std::fclose(f);
  std::string inner;
  JsonValue v = parse_json(text, &inner);
  if (v.is_null() && !inner.empty() && err != nullptr) *err = path + ": " + inner;
  return v;
}

}  // namespace volcal::perf
