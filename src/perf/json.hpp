// Minimal JSON document model + recursive-descent parser for the perf
// telemetry subsystem.  The repo's exporters write JSON with snprintf; this
// is the matching *reader* — volcal_bench_diff and the tests need to load
// artifacts back, and pulling in a third-party JSON library is not an option
// (the container has none).
//
// Scope is deliberately small: full JSON syntax on input (objects, arrays,
// strings with escapes, numbers, booleans, null), numbers held as double
// (artifact costs are int64 counts well inside the 2^53 exact range — the
// schema never emits larger integers), object keys kept in insertion order.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace volcal::perf {

class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;
  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double d);
  static JsonValue make_string(std::string s);
  static JsonValue make_array();
  static JsonValue make_object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_object() const { return kind_ == Kind::Object; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }

  // Typed accessors; defaults returned on kind mismatch (callers validate
  // presence via has()/find() where it matters).
  bool as_bool(bool fallback = false) const;
  double as_number(double fallback = 0.0) const;
  std::int64_t as_int(std::int64_t fallback = 0) const;
  const std::string& as_string() const;  // empty string on mismatch

  const std::vector<JsonValue>& items() const { return items_; }
  std::vector<JsonValue>& items() { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const { return members_; }

  // Object lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  bool has(const std::string& key) const { return find(key) != nullptr; }
  // Convenience: find(key) and coerce, with fallback.
  double number_at(const std::string& key, double fallback = 0.0) const;
  std::int64_t int_at(const std::string& key, std::int64_t fallback = 0) const;
  std::string string_at(const std::string& key, const std::string& fallback = "") const;

  void push_back(JsonValue v) { items_.push_back(std::move(v)); }
  void set(std::string key, JsonValue v);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;                              // Array
  std::vector<std::pair<std::string, JsonValue>> members_;    // Object
};

// Parses one JSON document.  On failure returns a Null value and, when `err`
// is non-null, a "byte offset N: reason" message.
JsonValue parse_json(const std::string& text, std::string* err = nullptr);

// Loads and parses a file; error strings are prefixed with the path.
JsonValue parse_json_file(const std::string& path, std::string* err = nullptr);

}  // namespace volcal::perf
