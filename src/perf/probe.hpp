// Process-level performance probes feeding the telemetry artifacts:
//
//   * PhaseTimer — named wall-clock phase accumulation ("generate", "sweep",
//     "verify", ...).  Phases keep first-seen order so artifacts diff
//     stably; re-entering a name accumulates.
//   * rss_high_water_kb() — the process RSS high-water mark (ru_maxrss).
//   * alloc_snapshot() — global allocation counters.  The counters are
//     defined here (always linkable) but only *advance* when the optional
//     hook translation unit (perf/alloc_hook.cpp, target volcal_alloc_hook)
//     is linked into the binary: it replaces global operator new/delete with
//     counting forwarders.  Bench and tool binaries link the hook; tests and
//     the library don't have to, and sanitizer builds compile the hook away
//     so ASan keeps its own allocator interception.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace volcal::perf {

// --- allocation counters ----------------------------------------------------

struct AllocCounters {
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> frees{0};
  std::atomic<std::uint64_t> bytes{0};       // cumulative bytes requested
  std::atomic<std::uint64_t> live_bytes{0};  // currently outstanding
  std::atomic<std::uint64_t> peak_bytes{0};  // high-water of live_bytes
  std::atomic<bool> hook_linked{false};      // set by alloc_hook.cpp's initializer
};

AllocCounters& alloc_counters();

// Plain-value snapshot, subtractable for per-section deltas.
struct AllocStats {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t bytes = 0;
  std::uint64_t peak_bytes = 0;

  friend AllocStats operator-(const AllocStats& a, const AllocStats& b) {
    // peak is a high-water mark, not a flow: the delta keeps the later peak.
    return {a.allocs - b.allocs, a.frees - b.frees, a.bytes - b.bytes, a.peak_bytes};
  }
  friend bool operator==(const AllocStats&, const AllocStats&) = default;
};

AllocStats alloc_snapshot();

// True when the counting operator new/delete hook is linked in (and not
// compiled away by a sanitizer build) — lets artifacts distinguish "zero
// allocations" from "not instrumented".
bool alloc_hook_active();

// --- RSS --------------------------------------------------------------------

// Resident-set-size high-water mark in KiB (getrusage ru_maxrss); 0 where
// unsupported.
std::int64_t rss_high_water_kb();

// --- phase timing -----------------------------------------------------------

class PhaseTimer {
 public:
  struct Phase {
    std::string name;
    double wall_seconds = 0.0;

    friend bool operator==(const Phase&, const Phase&) = default;
  };

  // RAII scope: accumulates elapsed wall time into the named phase on
  // destruction.
  class Scope {
   public:
    Scope(PhaseTimer& timer, std::string name)
        : timer_(&timer), name_(std::move(name)),
          begin_(std::chrono::steady_clock::now()) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() {
      timer_->add(name_, std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - begin_)
                             .count());
    }

   private:
    PhaseTimer* timer_;
    std::string name_;
    std::chrono::steady_clock::time_point begin_;
  };

  Scope scope(std::string name) { return Scope(*this, std::move(name)); }

  void add(const std::string& name, double seconds) {
    for (Phase& p : phases_) {
      if (p.name == name) {
        p.wall_seconds += seconds;
        return;
      }
    }
    phases_.push_back({name, seconds});
  }

  void merge(const PhaseTimer& other) {
    for (const Phase& p : other.phases_) add(p.name, p.wall_seconds);
  }

  double total_seconds() const {
    double t = 0.0;
    for (const Phase& p : phases_) t += p.wall_seconds;
    return t;
  }

  bool empty() const { return phases_.empty(); }
  const std::vector<Phase>& phases() const { return phases_; }

 private:
  std::vector<Phase> phases_;
};

// --- environment fingerprint ------------------------------------------------

// Identifies where a measurement came from.  Purely informational: the diff
// tool prints mismatches but never fails on them (artifacts are expected to
// be compared across machines and commits).
struct EnvFingerprint {
  std::string git_sha;     // VOLCAL_GIT_SHA at configure time, else "unknown"
  std::string compiler;    // e.g. "gcc 13.2.0"
  std::string flags;       // CMAKE_CXX_FLAGS at configure time
  std::string build_type;  // CMAKE_BUILD_TYPE at configure time
  std::string os;
  int threads = 1;  // resolved sweep-engine worker count
  // Plan execution backend the run used (VOLCAL_BACKEND / --backend).  Cost
  // curves are backend-invariant — the per-backend baseline directories exist
  // to compare wall time, and this field says which one an artifact belongs
  // to.  "batched" when unset (the engine default).
  std::string backend = "batched";
};

EnvFingerprint current_env(int threads);

}  // namespace volcal::perf
