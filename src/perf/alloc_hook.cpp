// Counting global operator new/delete — the allocation probe behind
// perf::alloc_snapshot().
//
// This translation unit is its own CMake target (volcal_alloc_hook, an
// OBJECT library) linked only into the bench and tool binaries: replacing
// the global allocation functions is a whole-program decision, and tests /
// library consumers should not inherit it implicitly.  Under ASan/MSan the
// hook compiles to nothing so the sanitizer keeps its own new/delete
// interception (and its alloc/dealloc mismatch checks).
//
// Counting is relaxed-atomic and allocation-free; sizes for the live-bytes
// ledger come from malloc_usable_size on glibc (requested size elsewhere),
// so live accounting stays consistent between sized and unsized deletes.

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_MEMORY__)
#define VOLCAL_ALLOC_HOOK_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(memory_sanitizer)
#define VOLCAL_ALLOC_HOOK_DISABLED 1
#endif
#endif

#ifndef VOLCAL_ALLOC_HOOK_DISABLED

#include <cstdlib>
#include <new>

#if defined(__GLIBC__)
#include <malloc.h>
#define VOLCAL_USABLE_SIZE(p) malloc_usable_size(p)
#else
#define VOLCAL_USABLE_SIZE(p) std::size_t{0}
#endif

#include "perf/probe.hpp"

namespace {

const bool hook_registered = [] {
  volcal::perf::alloc_counters().hook_linked.store(true, std::memory_order_relaxed);
  return true;
}();

void count_alloc(void* p, std::size_t requested) {
  auto& c = volcal::perf::alloc_counters();
  c.allocs.fetch_add(1, std::memory_order_relaxed);
  std::size_t sz = VOLCAL_USABLE_SIZE(p);
  if (sz == 0) sz = requested;
  c.bytes.fetch_add(sz, std::memory_order_relaxed);
  const std::uint64_t live = c.live_bytes.fetch_add(sz, std::memory_order_relaxed) + sz;
  std::uint64_t peak = c.peak_bytes.load(std::memory_order_relaxed);
  while (live > peak &&
         !c.peak_bytes.compare_exchange_weak(peak, live, std::memory_order_relaxed)) {
  }
}

void count_free(void* p, std::size_t known) {
  if (p == nullptr) return;
  auto& c = volcal::perf::alloc_counters();
  c.frees.fetch_add(1, std::memory_order_relaxed);
  std::size_t sz = VOLCAL_USABLE_SIZE(p);
  if (sz == 0) sz = known;
  c.live_bytes.fetch_sub(sz, std::memory_order_relaxed);
}

void* counted_new(std::size_t size) {
  if (size == 0) size = 1;
  for (;;) {
    void* p = std::malloc(size);
    if (p != nullptr) {
      count_alloc(p, size);
      return p;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* counted_new_aligned(std::size_t size, std::size_t align) {
  if (size == 0) size = 1;
  for (;;) {
    void* p = std::aligned_alloc(align, (size + align - 1) / align * align);
    if (p != nullptr) {
      count_alloc(p, size);
      return p;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

}  // namespace

void* operator new(std::size_t size) { return counted_new(size); }
void* operator new[](std::size_t size) { return counted_new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_new(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_new(size);
  } catch (...) {
    return nullptr;
  }
}

void* operator new(std::size_t size, std::align_val_t align) {
  return counted_new_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_new_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept {
  count_free(p, 0);
  std::free(p);
}
void operator delete[](void* p) noexcept {
  count_free(p, 0);
  std::free(p);
}
void operator delete(void* p, std::size_t size) noexcept {
  count_free(p, size);
  std::free(p);
}
void operator delete[](void* p, std::size_t size) noexcept {
  count_free(p, size);
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  count_free(p, 0);
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  count_free(p, 0);
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  count_free(p, 0);
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  count_free(p, 0);
  std::free(p);
}
void operator delete(void* p, std::size_t size, std::align_val_t) noexcept {
  count_free(p, size);
  std::free(p);
}
void operator delete[](void* p, std::size_t size, std::align_val_t) noexcept {
  count_free(p, size);
  std::free(p);
}

#endif  // VOLCAL_ALLOC_HOOK_DISABLED
