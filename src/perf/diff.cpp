#include "perf/diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace volcal::perf {
namespace {

std::string artifact_key(const BenchArtifact& a) {
  return !a.family.empty() ? a.family : a.tool;
}

std::string fmt(const char* format, ...) __attribute__((format(printf, 1, 2)));
std::string fmt(const char* format, ...) {
  char buf[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

void add(DiffResult& out, DiffFinding::Severity sev, const std::string& artifact,
         std::string what) {
  out.findings.push_back({sev, artifact, std::move(what)});
}

void diff_curve(const std::string& key, const ArtifactCurve& base,
                const ArtifactCurve& cand, const DiffOptions& opt, DiffResult& out) {
  using Sev = DiffFinding::Severity;
  const std::string where = "curve '" + base.name + "'";
  if (base.points.size() != cand.points.size()) {
    add(out, Sev::Hard, key,
        fmt("%s: point count changed %zu -> %zu", where.c_str(), base.points.size(),
            cand.points.size()));
    return;
  }
  for (std::size_t i = 0; i < base.points.size(); ++i) {
    const CurvePoint& b = base.points[i];
    const CurvePoint& c = cand.points[i];
    if (b.n != c.n) {
      add(out, Sev::Hard, key,
          fmt("%s point %zu: n changed %.0f -> %.0f (instance shape drift)",
              where.c_str(), i, b.n, c.n));
    } else if (b.cost != c.cost) {
      add(out, Sev::Hard, key,
          fmt("%s at n=%.0f: cost drifted %.17g -> %.17g (%+.2f%%)", where.c_str(), b.n,
              b.cost, c.cost, b.cost != 0.0 ? (c.cost - b.cost) / b.cost * 100.0 : 0.0));
    }
  }
  if (base.fitted != cand.fitted) {
    add(out, Sev::Hard, key,
        fmt("%s: fitted growth class changed '%s' -> '%s'", where.c_str(),
            base.fitted.c_str(), cand.fitted.c_str()));
  }
  if (std::abs(base.exponent - cand.exponent) > opt.fit_epsilon) {
    add(out, Sev::Hard, key,
        fmt("%s: fitted exponent drifted %.6f -> %.6f", where.c_str(), base.exponent,
            cand.exponent));
  }
  if (std::abs(base.r_squared - cand.r_squared) > opt.fit_epsilon) {
    add(out, Sev::Hard, key,
        fmt("%s: fit r^2 drifted %.6f -> %.6f", where.c_str(), base.r_squared,
            cand.r_squared));
  }
}

// Attribution lines for a tripped wall gate: where did the time go?
void attribute_wall(const std::string& key, const BenchArtifact& base,
                    const BenchArtifact& cand, DiffResult& out) {
  using Sev = DiffFinding::Severity;
  struct Delta {
    std::string what;
    double seconds;
  };
  std::vector<Delta> deltas;
  for (const PhaseTimer::Phase& bp : base.phases) {
    for (const PhaseTimer::Phase& cp : cand.phases) {
      if (bp.name == cp.name && cp.wall_seconds > bp.wall_seconds) {
        deltas.push_back({fmt("phase '%s': %.3fs -> %.3fs", bp.name.c_str(),
                              bp.wall_seconds, cp.wall_seconds),
                          cp.wall_seconds - bp.wall_seconds});
      }
    }
  }
  for (const ArtifactCurve& bc : base.curves) {
    const ArtifactCurve* cc = cand.find_curve(bc.name);
    if (cc == nullptr) continue;
    const double bw = bc.wall_seconds();
    const double cw = cc->wall_seconds();
    if (cw > bw) {
      deltas.push_back(
          {fmt("curve '%s': %.3fs -> %.3fs", bc.name.c_str(), bw, cw), cw - bw});
    }
  }
  std::sort(deltas.begin(), deltas.end(),
            [](const Delta& a, const Delta& b) { return a.seconds > b.seconds; });
  for (std::size_t i = 0; i < deltas.size() && i < 4; ++i) {
    add(out, Sev::Note, key, "  where it went: " + deltas[i].what);
  }
}

}  // namespace

void diff_artifact(const BenchArtifact& base, const BenchArtifact& cand,
                   const DiffOptions& opt, DiffResult& out) {
  using Sev = DiffFinding::Severity;
  const std::string key = artifact_key(base);
  // The reader normalizes every supported version into one struct (v1
  // artifacts read as v2 with zero cache counters), so a version change is
  // informational — the deterministic fields below are still compared 1:1.
  if (base.schema_version != cand.schema_version) {
    add(out, Sev::Note, key,
        fmt("schema_version changed %d -> %d (cross-version diff; cache counters "
            "default to zero on the older side)",
            base.schema_version, cand.schema_version));
  }
  if (base.env.compiler != cand.env.compiler || base.env.build_type != cand.env.build_type) {
    add(out, Sev::Note, key,
        "env differs: " + base.env.compiler + "/" + base.env.build_type + " vs " +
            cand.env.compiler + "/" + cand.env.build_type);
  }
  if (base.env.threads != cand.env.threads) {
    add(out, Sev::Note, key,
        fmt("env differs: %d threads vs %d (cost curves are thread-count invariant)",
            base.env.threads, cand.env.threads));
  }
  if (base.env.backend != cand.env.backend) {
    add(out, Sev::Note, key,
        "env differs: backend '" + base.env.backend + "' vs '" + cand.env.backend +
            "' (cost curves are backend-invariant; wall times not comparable 1:1)");
  }
  // View-cache counters are wall-time bookkeeping (scheduling-dependent under
  // parallel sweeps), never gated — but a policy change explains wall-time
  // movement, so say so.
  if (base.cache.policy != cand.cache.policy) {
    add(out, Sev::Note, key,
        fmt("cache policy changed '%s' -> '%s' (wall times not comparable 1:1)",
            cache_policy_name(base.cache.policy), cache_policy_name(cand.cache.policy)));
  } else if (base.cache.hits != cand.cache.hits || base.cache.misses != cand.cache.misses ||
             base.cache.evictions != cand.cache.evictions) {
    add(out, Sev::Note, key,
        fmt("cache counters moved: hits %lld -> %lld, misses %lld -> %lld, "
            "evictions %lld -> %lld",
            static_cast<long long>(base.cache.hits), static_cast<long long>(cand.cache.hits),
            static_cast<long long>(base.cache.misses),
            static_cast<long long>(cand.cache.misses),
            static_cast<long long>(base.cache.evictions),
            static_cast<long long>(cand.cache.evictions)));
  }
  // Deterministic fields: curves matched by name, both directions.
  for (const ArtifactCurve& bc : base.curves) {
    const ArtifactCurve* cc = cand.find_curve(bc.name);
    if (cc == nullptr) {
      add(out, Sev::Hard, key, "curve '" + bc.name + "' disappeared");
      continue;
    }
    diff_curve(key, bc, *cc, opt, out);
  }
  for (const ArtifactCurve& cc : cand.curves) {
    if (base.find_curve(cc.name) == nullptr) {
      add(out, Sev::Note, key, "new curve '" + cc.name + "' (not in baseline)");
    }
  }
  // Wall gate on the artifact total.
  const double bw = base.total_wall_seconds;
  const double cw = cand.total_wall_seconds;
  if (bw > opt.wall_floor_seconds && cw > bw * (1.0 + opt.wall_tolerance)) {
    add(out, Sev::Wall, key,
        fmt("wall time regressed %.3fs -> %.3fs (%+.1f%%, tolerance %.0f%%)", bw, cw,
            (cw - bw) / bw * 100.0, opt.wall_tolerance * 100.0));
    attribute_wall(key, base, cand, out);
  } else if (bw > opt.wall_floor_seconds && cw < bw * (1.0 - opt.wall_tolerance)) {
    add(out, Sev::Note, key,
        fmt("wall time improved %.3fs -> %.3fs (%+.1f%%) — consider refreshing the baseline",
            bw, cw, (cw - bw) / bw * 100.0));
  }
}

DiffResult diff_artifact_sets(const std::vector<BenchArtifact>& base,
                              const std::vector<BenchArtifact>& cand,
                              const DiffOptions& opt) {
  using Sev = DiffFinding::Severity;
  DiffResult out;
  out.options = opt;
  for (const BenchArtifact& b : base) {
    const BenchArtifact* match = nullptr;
    for (const BenchArtifact& c : cand) {
      if (artifact_key(c) == artifact_key(b)) {
        match = &c;
        break;
      }
    }
    if (match == nullptr) {
      add(out, Sev::Hard, artifact_key(b), "baseline artifact missing from candidate set");
      continue;
    }
    diff_artifact(b, *match, opt, out);
  }
  for (const BenchArtifact& c : cand) {
    bool known = false;
    for (const BenchArtifact& b : base) known = known || artifact_key(b) == artifact_key(c);
    if (!known) {
      add(out, Sev::Note, artifact_key(c),
          "new artifact (not in baseline — commit it to start tracking)");
    }
  }
  return out;
}

std::string DiffResult::render() const {
  std::string out;
  int hard = 0, wall = 0;
  for (const DiffFinding& f : findings) {
    const char* tag = "note";
    if (f.severity == DiffFinding::Severity::Hard) {
      tag = "FAIL";
      ++hard;
    } else if (f.severity == DiffFinding::Severity::Wall) {
      tag = options.ignore_wall ? "wall" : "WALL";
      if (!options.ignore_wall) ++wall;
    }
    out += std::string(tag) + "  [" + f.artifact + "] " + f.what + "\n";
  }
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%s: %d hard regression(s), %d wall regression(s), %zu finding(s) total\n",
                ok() ? "OK" : "REGRESSION", hard, wall, findings.size());
  out += buf;
  return out;
}

}  // namespace volcal::perf
