#include "check/repro.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>

namespace volcal::check {
namespace {

constexpr const char* kHeader = "volcal-fuzz-repro v1";

bool set_why(std::string* why, const std::string& message) {
  if (why != nullptr) *why = message;
  return false;
}

}  // namespace

std::string to_repro(const FuzzCase& c, const std::string& error) {
  std::ostringstream os;
  os << kHeader << "\n";
  os << "family " << c.family << "\n";
  os << "variant " << c.variant << "\n";
  os << "n_target " << c.n_target << "\n";
  os << "instance_seed " << c.instance_seed << "\n";
  os << "model " << model_name(c.model) << "\n";
  os << "budget " << c.budget << "\n";
  os << "start_count " << c.start_count << "\n";
  os << "tape_seed " << c.tape_seed << "\n";
  os << "mutation_seed " << c.mutation_seed << "\n";
  os << "mutation_rewires " << c.mutation_rewires << "\n";
  os << "mutation_labels " << c.mutation_labels << "\n";
  if (!error.empty()) {
    // The error is one line by construction (check_case emits single-line
    // messages); flatten defensively so the file stays parseable.
    std::string flat = error;
    for (char& ch : flat) {
      if (ch == '\n' || ch == '\r') ch = ' ';
    }
    os << "error " << flat << "\n";
  }
  return os.str();
}

bool parse_repro(const std::string& text, FuzzCase* out, std::string* error_out,
                 std::string* why) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    return set_why(why, "missing 'volcal-fuzz-repro v1' header");
  }
  FuzzCase c;
  bool have_family = false;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.find(' ');
    if (sp == std::string::npos) return set_why(why, "malformed line: " + line);
    const std::string key = line.substr(0, sp);
    const std::string value = line.substr(sp + 1);
    try {
      if (key == "family") {
        c.family = value;
        have_family = !value.empty();
      } else if (key == "variant") {
        c.variant = std::stoi(value);
      } else if (key == "n_target") {
        c.n_target = static_cast<NodeIndex>(std::stoll(value));
      } else if (key == "instance_seed") {
        c.instance_seed = std::stoull(value);
      } else if (key == "model") {
        if (!model_from_name(value, &c.model)) {
          return set_why(why, "unknown randomness model: " + value);
        }
      } else if (key == "budget") {
        c.budget = std::stoll(value);
      } else if (key == "start_count") {
        c.start_count = static_cast<NodeIndex>(std::stoll(value));
      } else if (key == "tape_seed") {
        c.tape_seed = std::stoull(value);
      } else if (key == "mutation_seed") {
        c.mutation_seed = std::stoull(value);
      } else if (key == "mutation_rewires") {
        c.mutation_rewires = std::stoi(value);
      } else if (key == "mutation_labels") {
        c.mutation_labels = std::stoi(value);
      } else if (key == "error") {
        if (error_out != nullptr) *error_out = value;
      }  // unknown keys: forward compatibility
    } catch (const std::exception&) {
      return set_why(why, "bad number in line: " + line);
    }
  }
  if (!have_family) return set_why(why, "missing family");
  *out = c;
  return true;
}

bool write_repro_file(const std::string& path, const FuzzCase& c, const std::string& error) {
  std::ofstream f(path);
  if (!f) return false;
  f << to_repro(c, error);
  return static_cast<bool>(f);
}

bool load_repro_file(const std::string& path, FuzzCase* out, std::string* error_out,
                     std::string* why) {
  std::ifstream f(path);
  if (!f) return set_why(why, "cannot open " + path);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  return parse_repro(buffer.str(), out, error_out, why);
}

}  // namespace volcal::check
