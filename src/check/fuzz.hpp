// Seeded differential fuzzing over the problem registry.
//
// Case generation is a pure hash of (seed, iteration): every field of the
// FuzzCase comes from mix64 with a field-specific domain tag, so a fuzz run
// is reproducible from its --seed alone and any single iteration can be
// regenerated without replaying the ones before it.  Generation sweeps every
// registry family round-robin (each family is hit every |registry| iters)
// and perturbs, per case: the shape variant, the instance size and seed, the
// randomness model, the query budget (unlimited half the time, punishingly
// small otherwise — small budgets are what exercise the truncation paths)
// and the start-set size (whole graph or a sampled subset).
//
// When check_case fails, the driver shrinks the case before reporting:
// greedy passes that halve n_target, drop the start set to a single node,
// canonicalize the variant and model, and lift the budget — each kept only
// if the predicate still fails — looping to a fixpoint.  The result is the
// smallest case this lattice reaches that still exhibits the bug, written as
// a reproducer file (check/repro.hpp) for the regression corpus.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/check.hpp"

namespace volcal::check {

struct FuzzOptions {
  std::uint64_t seed = 1;
  int iters = 200;
  std::string family_filter;  // substring over registry names; empty = all
  NodeIndex max_n = 600;      // upper bound for generated n_target
  std::string out_dir;        // reproducer directory; empty = none written
  bool log_cases = false;     // print every case before checking it
  bool cache = false;         // also run check_cache_case on every case
  bool backend = false;       // also run check_backend_case on every case
  bool snapshot = false;      // also run check_snapshot_case on every case
  bool mutate = false;        // also run check_mutation_case on every case
};

// The deterministic case for iteration `iter` of run `seed`.  `family_index`
// selects among the (filtered) families; callers normally pass
// iter % family_count to sweep the registry round-robin.
FuzzCase generate_case(std::uint64_t seed, std::uint64_t iter, const std::string& family,
                      int family_variants, NodeIndex max_n);

// Greedy minimization: returns the smallest case (under the shrink lattice
// above) for which `failing_predicate` still returns a failure.  The
// predicate is injected so tests can shrink against synthetic bugs; the
// driver passes check_case.
FuzzCase shrink_case(FuzzCase c,
                     const std::function<CheckResult(const FuzzCase&)>& failing_predicate);

struct FuzzFailure {
  FuzzCase original;    // as generated
  FuzzCase minimized;   // after shrinking
  std::string error;    // the minimized case's failure message
  std::string repro_path;  // written reproducer ("" if out_dir unset or write failed)
};

struct FuzzReport {
  int iters_run = 0;
  std::vector<FuzzFailure> failures;

  bool ok() const { return failures.empty(); }
};

// The full loop: generate, check, shrink failures, write reproducers.
// Progress and failures go to stderr.
FuzzReport run_fuzz(const FuzzOptions& opts);

}  // namespace volcal::check
